"""Bench FIG6: CNT tunnel FET — the gated PIN diode (paper Fig. 6)."""

from conftest import print_rows

from repro.experiments.fig6 import run_fig6


def test_fig6_regeneration(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    print_rows("Fig. 6 — CNT TFET, reverse bias -0.5 V", result.rows())

    # Paper: SS = 83 mV/dec average, individual intervals ~32.
    assert 30.0 < result.ss_mv_per_decade < 110.0
    # Paper: on-current density "in the range of 1 mA/um".
    assert 0.3 < result.on_current_density_a_per_m * 1e-3 < 30.0
    # Sharp reverse turn-on; forward branch gate-independent.
    assert result.reverse_on_off_ratio > 1e3
    assert result.forward_gate_modulation < 1.3

"""Bench FABRIC: the abstract's aligned-fabric integration requirement.

"strategies for achieving highly aligned carbon nanotube fabrics" —
drive density vs placement pitch and on/off integrity vs semiconducting
purity for sampled fabric transistors at VDD = 0.6 V.
"""

from conftest import print_rows

from repro.experiments.fabric_density import run_fabric_density


def test_fabric_density_regeneration(benchmark):
    result = benchmark.pedantic(run_fabric_density, rounds=1, iterations=1)
    print_rows("Fabric — pitch and purity requirements", result.rows())

    # Density grows monotonically as pitch tightens.
    densities = list(result.density_ma_per_um)
    assert all(a > b for a, b in zip(densities, densities[1:]))
    # At logic pitch the fabric out-drives the trigate at 0.6 V.
    assert result.density_ma_per_um[1] > result.trigate_density_ma_per_um
    # Purity below ~99 % collapses the on/off ratio via metallic shunts.
    assert result.median_on_off[0] < 1e3
    assert result.median_on_off[-1] > 1e4

"""Bench SURROGATE: physical-device circuits on cached spline tables.

The acceptance gate of the surrogate subsystem
(:mod:`repro.devices.surrogate`):

* a 20-step transient of a 5-stage inverter chain built from the
  paper's physical ballistic :class:`~repro.devices.cntfet.CNTFET`
  runs **>= 30x faster** through the compiled :class:`SurrogateFET`
  than through direct top-of-barrier evaluation (table compilation is
  excluded — it is a one-time cost amortised by the content-addressed
  disk cache under ``~/.cache/repro-surrogates``, which CI persists
  between runs);
* the surrogate's current error stays **<= 1e-4 relative** over the
  declared operating box;
* batched Monte Carlo on surrogate devices keeps the sweep engines'
  bitwise-invariance contract: identical results for any chunk size,
  instance order, and serial vs. process-pool execution.

Timings print as informational rows; the assertions are the gate.
"""

import time

import numpy as np

from conftest import print_rows

from repro.circuit.sweep import CircuitMonteCarlo, FETVariation
from repro.circuit.transient import transient
from repro.circuit.waveforms import Pulse
from repro.devices.cntfet import CNTFET
from repro.devices.surrogate import compile_surrogate, surrogate_fidelity
from repro.experiments.cascade import build_inverter_chain

T_STOP_S = 4e-10
DT_S = 2e-11  # 20 steps
SPEEDUP_BAR = 30.0
REL_ERROR_BAR = 1e-4


def _stimulus():
    return Pulse(
        0.0, 1.0, delay_s=4e-11, rise_s=2e-11, fall_s=2e-11,
        width_s=2e-10, period_s=4e-10,
    )


def _chain(device, n_stages=5):
    return build_inverter_chain(device, n_stages=n_stages, input_waveform=_stimulus())


def test_surrogate_meets_accuracy_bar():
    device = CNTFET.reference_device()
    surrogate = compile_surrogate(device)
    max_rel = surrogate_fidelity(surrogate, device)
    print_rows(
        "surrogate accuracy — reference CNT-FET",
        [("table points", float(surrogate.n_table_points)),
         ("fit residual (asinh)", float(surrogate.fit_error)),
         ("max rel current error", max_rel)],
    )
    assert max_rel <= REL_ERROR_BAR


def test_physical_chain_transient_speedup():
    device = CNTFET.reference_device()
    surrogate = compile_surrogate(device)

    sur_circuit = _chain(surrogate)
    start = time.perf_counter()
    sur_result = transient(sur_circuit, T_STOP_S, DT_S)
    sur_seconds = time.perf_counter() - start

    direct_circuit = _chain(device)
    start = time.perf_counter()
    direct_result = transient(direct_circuit, T_STOP_S, DT_S)
    direct_seconds = time.perf_counter() - start

    speedup = direct_seconds / sur_seconds
    worst_gap = max(
        float(np.max(np.abs(direct_result.voltage(f"s{i}") - sur_result.voltage(f"s{i}"))))
        for i in range(1, 6)
    )
    print_rows(
        "physical 5-stage chain, 20-step transient",
        [("direct [s]", direct_seconds),
         ("surrogate [s]", sur_seconds),
         ("speedup", speedup),
         ("worst node gap [V]", worst_gap)],
    )
    assert speedup >= SPEEDUP_BAR
    # The two solvers integrate *different* device models (1e-4
    # relative); node waveforms still have to agree to millivolts.
    assert worst_gap < 5e-3


def test_batched_mc_on_surrogates_is_bitwise_invariant():
    surrogate = compile_surrogate(CNTFET.reference_device())
    circuit = _chain(surrogate, n_stages=3)
    engine = CircuitMonteCarlo(circuit)
    variation = FETVariation.sample(
        96, len(engine.fet_names), seed=7, drive_sigma=0.15, vth_sigma_v=0.01
    )

    start = time.perf_counter()
    baseline = engine.run(variation, chunk_size=96)
    batched_seconds = time.perf_counter() - start

    chunked = engine.run(variation, chunk_size=17)
    assert np.array_equal(baseline.x, chunked.x)
    assert np.array_equal(baseline.converged, chunked.converged)

    order = np.random.default_rng(0).permutation(variation.n_instances)
    shuffled = engine.run(variation.take(order))
    assert np.array_equal(baseline.x[order], shuffled.x)

    pooled = engine.run(variation, chunk_size=24, workers=2)
    assert np.array_equal(baseline.x, pooled.x)
    assert np.array_equal(baseline.converged, pooled.converged)

    print_rows(
        "batched MC over surrogate chain (96 instances)",
        [("batched run [s]", batched_seconds),
         ("converged fraction", baseline.n_converged / baseline.n_instances)],
    )
    assert baseline.converged.all()

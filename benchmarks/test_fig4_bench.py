"""Bench FIG4: contact-resistance degradation of a CNT-FET (paper Fig. 4)."""

from conftest import print_rows

from repro.experiments.fig4 import run_fig4


def test_fig4_regeneration(benchmark):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    print_rows("Fig. 4 — ideal vs 2 x 50 kOhm contacts", result.rows())

    assert result.current_suppression > 3.0
    assert result.ideal_saturation > 0.9
    assert result.contacted_saturation < 0.3

"""Bench RESILIENCE: supervised execution overhead over the raw sweep.

The supervisor (:mod:`repro.circuit.resilience`) wraps every chunk in
per-future bookkeeping — fault lookup, merge-boundary validation,
attempt accounting, optional checkpoint writes.  The fault-free fast
path must stay cheap: this benchmark times a 1000-instance Monte Carlo
of the 5-stage inverter chain raw vs. supervised (same serial
execution, same chunking) and a supervised run with chunk checkpoints
enabled, asserting the results bitwise identical and the fault-free
supervision overhead loosely bounded (best-of-3 timings, 2x + 50 ms
slack — the identity asserts are the contract; timings are printed
for inspection).

Reference numbers (single-CPU container): raw ~13 ms, supervised
~15 ms (overhead ~14%), checkpointed first run ~23 ms, checkpointed
resume ~8 ms (all four chunks served from disk).
"""

import time

import numpy as np
import pytest

from conftest import print_rows

from repro.circuit.resilience import ExecutionPolicy
from repro.circuit.sweep import CircuitMonteCarlo, FETVariation
from repro.circuit.waveforms import DC
from repro.devices.empirical import AlphaPowerFET
from repro.experiments.cascade import build_inverter_chain

N_INSTANCES = 1000
CHAIN_STAGES = 5
CHUNK = 256
SEED = 20140314


@pytest.fixture(scope="module")
def engine():
    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=CHAIN_STAGES, input_waveform=DC(0.0)
    )
    return CircuitMonteCarlo(chain)


@pytest.fixture(scope="module")
def variation(engine):
    return FETVariation.sample(
        N_INSTANCES,
        len(engine.fet_names),
        seed=SEED,
        drive_sigma=0.2,
        vth_sigma_v=0.03,
    )


def _best_of(fn, repeats=3):
    """(last result, best wall time): damps scheduler noise on CI boxes."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_supervised_overhead(engine, variation, tmp_path_factory):
    raw, raw_s = _best_of(lambda: engine.run(variation, chunk_size=CHUNK))
    supervised, supervised_s = _best_of(
        lambda: engine.run(variation, chunk_size=CHUNK, policy=ExecutionPolicy())
    )

    root = tmp_path_factory.mktemp("checkpoints")
    first_t = time.perf_counter()
    checkpointed = engine.run(
        variation, chunk_size=CHUNK, policy=ExecutionPolicy(checkpoint_root=root)
    )
    first_s = time.perf_counter() - first_t

    resume_policy = ExecutionPolicy(checkpoint_root=root)
    resume_t = time.perf_counter()
    resumed = engine.run(variation, chunk_size=CHUNK, policy=resume_policy)
    resume_s = time.perf_counter() - resume_t

    # Supervision must never change the numbers.
    for other in (supervised, checkpointed, resumed):
        assert np.array_equal(raw.x, other.x)
        assert np.array_equal(raw.converged, other.converged)
    # The resume really is a resume: every chunk served from disk.
    counts = resume_policy.reports[-1].counts()
    assert set(counts) == {"cached"}

    print_rows(
        "resilience: supervised sweep overhead",
        [
            ("raw sweep [ms]", raw_s * 1e3),
            ("supervised, no checkpoints [ms]", supervised_s * 1e3),
            ("supervised + checkpoint writes [ms]", first_s * 1e3),
            ("supervised resume from disk [ms]", resume_s * 1e3),
            ("fault-free supervision overhead", supervised_s / raw_s - 1.0),
        ],
    )
    # Generous bar: supervision bookkeeping must stay a small fraction
    # of real solve work; the absolute slack absorbs timer noise at
    # this millisecond scale on loaded single-core CI boxes.
    assert supervised_s < raw_s * 2.0 + 0.05

"""Benchmark-suite helpers: uniform row printing for figure regeneration."""

from __future__ import annotations


def print_rows(title: str, rows) -> None:
    """Print (label, value...) rows in the format EXPERIMENTS.md quotes."""
    print(f"\n=== {title} ===")
    for row in rows:
        label, *values = row
        rendered = "  ".join(
            f"{v:.6g}" if isinstance(v, float) else str(v) for v in values
        )
        print(f"  {label:45s} {rendered}")

"""Bench RF: Section II's radio-frequency argument against GNR-FETs.

"short channel GNR show no current saturation, which ... leads to very
low voltage gain in the FET and this only enables very low values of
the maximum frequency of oscillation (fmax)."
"""

from conftest import print_rows

from repro.experiments.rf_comparison import run_rf_comparison


def test_rf_comparison_regeneration(benchmark):
    result = benchmark.pedantic(run_rf_comparison, rounds=1, iterations=1)
    print_rows("Section II — RF comparison at matched bias & C_gg", result.rows())

    # Saturating device: healthy intrinsic gain; linear device: < 1-ish.
    assert result.saturating.intrinsic_gain > 5.0
    assert result.non_saturating.intrinsic_gain < 2.0
    # f_T (gm / C) is comparable; f_max is what collapses.
    assert result.fmax_ratio > result.saturating.ft_hz / result.non_saturating.ft_hz
    assert result.fmax_ratio > 2.0

"""Bench FIG1: CNT-FET vs GNR-FET at equal band gap (paper Fig. 1).

Regenerates both panels and asserts the paper's three claims: log-scale
overlap, small linear-scale difference, and no saturation in real GNRs.
"""

from conftest import print_rows

from repro.experiments.fig1 import run_fig1


def test_fig1_regeneration(benchmark):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    print_rows("Fig. 1 — CNT vs GNR at E_g = 0.56 eV", result.rows())

    assert result.log_scale_max_deviation_decades < 0.5
    assert 1.2 < result.linear_scale_on_ratio < 3.0
    assert result.cnt_saturation > 0.9
    assert result.gnr_saturation > 0.9
    assert result.real_gnr_saturation < 0.05

"""Persist the per-PR perf trajectory: ``python benchmarks/perf_trajectory.py``.

Times the repo's headline workloads (the same cases the pytest
benchmarks in this directory gate on) with ``perf_counter`` and writes
``BENCH_<pr>.json`` at the repo root, so re-anchors can see the curve
across PRs instead of a single point.  Timings are machine-dependent —
the artifact records the shape of the trajectory, not absolute truth.

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py [--pr N] [--repeat K]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

# Mirrors benchmarks/test_sweep_bench.py so numbers stay comparable.
SEED = 20140314
CHAIN_STAGES = 5
N_INSTANCES = 1000
N_ARRAY_DEVICES = 10000
N_TRANSIENT = 256
T_STOP = 0.2e-9
DT = 1e-11
N_SPARSE = 256
SPARSE_STAGES = 200
N_AC_FREQUENCIES = 240
AC_DENSE_STAGES = 100
AC_SPARSE_STAGES = 600


def _timed(fn, repeat: int) -> float:
    """Best-of-``repeat`` wall time in seconds (first call may warm caches)."""
    best = float("inf")
    for _ in range(repeat):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


def bench_chain_mc(repeat: int) -> dict:
    from repro.circuit.sweep import CircuitMonteCarlo, FETVariation
    from repro.circuit.waveforms import DC
    from repro.devices.empirical import AlphaPowerFET
    from repro.experiments.cascade import build_inverter_chain

    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=CHAIN_STAGES, input_waveform=DC(0.0)
    )
    engine = CircuitMonteCarlo(chain)
    variation = FETVariation.sample(
        N_INSTANCES,
        len(engine.fet_names),
        seed=SEED,
        drive_sigma=0.15,
        vth_sigma_v=0.01,
    )
    seconds = _timed(lambda: engine.run(variation), repeat)
    return {
        "case": "dc_mc_chain_batched",
        "detail": f"{N_INSTANCES}-instance DC MC, {CHAIN_STAGES}-stage chain",
        "seconds": seconds,
    }


def bench_array_sampling(repeat: int) -> dict:
    from repro.integration.variability import CNFETArrayModel

    model = CNFETArrayModel()
    seconds = _timed(
        lambda: model.sample_array(n_devices=N_ARRAY_DEVICES, seed=SEED), repeat
    )
    return {
        "case": "cnfet_array_vectorized",
        "detail": f"{N_ARRAY_DEVICES}-device array, substream blocks",
        "seconds": seconds,
    }


def bench_transient_mc(repeat: int) -> dict:
    from repro.circuit.sweep import CircuitTransientMC, FETVariation
    from repro.circuit.waveforms import Pulse
    from repro.devices.empirical import AlphaPowerFET
    from repro.experiments.cascade import build_inverter_chain

    stimulus = Pulse(
        v1=0.0, v2=1.0, delay_s=0.02e-9, rise_s=10e-12, fall_s=10e-12,
        width_s=0.09e-9, period_s=0.0,
    )
    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=CHAIN_STAGES, input_waveform=stimulus
    )
    engine = CircuitTransientMC(chain)
    variation = FETVariation.sample(
        N_TRANSIENT,
        len(engine.fet_names),
        seed=SEED,
        drive_sigma=0.15,
        vth_sigma_v=0.01,
    )
    seconds = _timed(lambda: engine.run(variation, T_STOP, DT), repeat)
    return {
        "case": "transient_mc_batched",
        "detail": f"{N_TRANSIENT}-instance transient MC, 20-step window",
        "seconds": seconds,
    }


def bench_sparse_mc(repeat: int) -> dict:
    from repro.circuit.sweep import CircuitMonteCarlo, FETVariation
    from repro.circuit.waveforms import DC
    from repro.devices.empirical import AlphaPowerFET
    from repro.experiments.cascade import build_inverter_chain

    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=SPARSE_STAGES, input_waveform=DC(0.0)
    )
    engine = CircuitMonteCarlo(chain)
    if not engine.plan.use_sparse:
        raise SystemExit("sparse MC bench circuit fell below SPARSE_THRESHOLD")
    variation = FETVariation.sample(
        N_SPARSE,
        len(engine.fet_names),
        seed=SEED,
        drive_sigma=0.15,
        vth_sigma_v=0.01,
    )
    seconds = _timed(lambda: engine.run(variation), repeat)
    return {
        "case": "dc_mc_sparse_batched",
        "detail": (
            f"{N_SPARSE}-instance DC MC, {SPARSE_STAGES}-stage chain "
            f"({engine.plan.size} unknowns, sparse)"
        ),
        "seconds": seconds,
    }


def _ac_sweep_case(stages: int, repeat: int, case: str) -> dict:
    from repro.circuit.ac import ACPlan, dense_frequency_loop
    from repro.circuit.waveforms import DC
    from repro.devices.empirical import AlphaPowerFET
    from repro.experiments.cascade import build_inverter_chain

    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=stages, input_waveform=DC(0.0)
    )
    plan = ACPlan(chain, "VIN")
    frequencies = np.logspace(3, 11, N_AC_FREQUENCIES)
    conductance, capacitance, rhs = plan.dense_system()
    loop_seconds = _timed(
        lambda: dense_frequency_loop(conductance, capacitance, rhs, frequencies),
        max(1, repeat - 1),  # the 604-unknown loop runs ~5 s per pass
    )
    seconds = _timed(lambda: plan.sweep_samples(frequencies), repeat)
    regime = "sparse refactorization" if plan.use_sparse else "Schur-compiled"
    return {
        "case": case,
        "detail": (
            f"{N_AC_FREQUENCIES}-point AC sweep, {plan.size} unknowns "
            f"({regime}; per-frequency loop {loop_seconds * 1e3:.1f} ms)"
        ),
        "seconds": seconds,
    }


def bench_ac_sweep_dense(repeat: int) -> dict:
    return _ac_sweep_case(AC_DENSE_STAGES, repeat, "ac_sweep_dense_compiled")


def bench_ac_sweep_sparse(repeat: int) -> dict:
    return _ac_sweep_case(AC_SPARSE_STAGES, repeat, "ac_sweep_sparse_compiled")


def bench_contract_lint(repeat: int) -> dict:
    from repro.lint import run_lint

    result = run_lint()
    if not result.ok:  # the artifact must not paper over a dirty tree
        raise SystemExit("repro lint found violations; fix them first")
    seconds = _timed(run_lint, repeat)
    return {
        "case": "contract_lint_full_repo",
        "detail": f"repro.lint over {result.n_files} files + device registry",
        "seconds": seconds,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pr", type=int, default=10, help="PR number for the artifact name")
    parser.add_argument("--repeat", type=int, default=3, help="best-of repetitions")
    args = parser.parse_args(argv)

    results = [
        bench(args.repeat)
        for bench in (
            bench_chain_mc,
            bench_array_sampling,
            bench_transient_mc,
            bench_sparse_mc,
            bench_ac_sweep_dense,
            bench_ac_sweep_sparse,
            bench_contract_lint,
        )
    ]
    payload = {
        "pr": args.pr,
        "seed": SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }

    from repro.circuit.resilience import atomic_write_text

    target = REPO_ROOT / f"BENCH_{args.pr}.json"
    atomic_write_text(target, json.dumps(payload, indent=1) + "\n")
    for row in results:
        print(f"{row['case']:28s} {row['seconds'] * 1e3:10.2f} ms  ({row['detail']})")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Bench SCALING: 'will enable further voltage and gate length scaling'.

The paper's central thesis, quantified: complementary inverters from the
physical CNT-FET model vs the Si-trigate reference, swept over supply
voltage; the CNT fabric (8 nm pitch, iso-footprint with the trigate)
keeps noise margins and an order-of-magnitude drive advantage down to
0.3-0.4 V supplies.
"""

from conftest import print_rows

from repro.experiments.scaling import run_voltage_scaling


def test_voltage_scaling_regeneration(benchmark):
    result = benchmark.pedantic(run_voltage_scaling, rounds=1, iterations=1)
    print_rows("Voltage scaling — CNT fabric vs Si trigate", result.rows())

    # Logic-grade noise margins down to the lowest swept supply.
    assert all(p.nm_fraction > 0.3 for p in result.cnt)
    assert all(p.is_bistable for p in result.cnt)
    # Iso-footprint drive advantage, not shrinking with supply scaling.
    assert result.delay_advantage_at(0.4) > 3.0
    assert result.delay_advantage_at(0.4) >= result.delay_advantage_at(1.0)

"""Bench TAB1: the paper's in-text numeric claims (Sections II-III)."""

from conftest import print_rows

from repro.experiments.table1 import run_table1


def test_table1_regeneration(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = [
        (claim, paper, measured) for claim, paper, measured in result.rows()
    ]
    print_rows("Table 1 — in-text claims (paper vs measured)", rows)

    assert abs(result.trigate_current_a - 66e-6) / 66e-6 < 0.1
    assert abs(result.current_ratio - 1.0 / 3.0) < 0.12
    assert result.cross_section_ratio > 300.0
    assert abs(result.series_resistance_ohm - 11e3) / 11e3 < 0.15
    assert result.gnr_on_off_ratio > 1e5
    assert abs(result.gnr_density_ma_per_um - 2.0) < 0.2
    assert result.gnr_saturation_index < 0.05
    assert result.ss_cnt_9nm_mv < result.ss_si_9nm_mv < result.ss_inas_9nm_mv

"""Bench CASCADE: cascaded logic with and without saturation.

"the dynamic behavior of cascaded logic circuits based on FETs without
saturation would be difficult to predict, as there are no defined
logical 'high' and 'low' levels" — a 4-stage inverter chain driven by a
full-swing pulse, simulated with the transient engine.
"""

from conftest import print_rows

from repro.experiments.cascade import run_cascade


def test_cascade_regeneration(benchmark):
    result = benchmark.pedantic(run_cascade, rounds=1, iterations=1)
    print_rows("Cascaded inverter chains — per-stage swing", result.rows())

    # Saturating chain regenerates to the rails at every stage.
    assert all(s > 0.95 * result.vdd for s in result.stage_swings_sat)
    # Non-saturating chain attenuates geometrically: undefined levels.
    assert result.lin_attenuation_per_stage < 0.95
    assert result.lin_final_swing_fraction < 0.6

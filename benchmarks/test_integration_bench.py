"""Bench SEC5: wafer-scale integration statistics (paper Section V).

Growth purity, sorting cost, placement fill, the 10,000-device array,
and the Shulaker one-bit computer's yield with and without metallic-CNT
removal — including the program-level functional-yield Monte Carlo.
"""

from conftest import print_rows

from repro.experiments.integration_stats import run_integration_stats


def test_integration_stats_regeneration(benchmark):
    result = benchmark.pedantic(
        run_integration_stats,
        kwargs={"n_array_devices": 10000, "n_functional_trials": 60},
        rounds=1,
        iterations=1,
    )
    print_rows("Section V — integration statistics", result.rows())

    # As-grown material is ~2/3 semiconducting.
    assert abs(result.semiconducting_fraction - 2.0 / 3.0) < 0.05
    # Sorting reaches 4 nines at a real material cost.
    assert result.passes_to_4nines >= 1
    assert result.sorting_yield_4nines < 1.0
    # Park-class placement fills > 90 % of sites.
    assert result.trench_fill_fraction > 0.9
    # 10k-device array is mostly functional with sorted material.
    assert result.array_pass_fraction > 0.8
    # Metallic removal strictly improves the 178-FET computer yield.
    assert result.computer_yield_with_removal > result.computer_yield_no_removal
    assert result.computer_yield_with_removal > 0.9

"""Bench FIG2: inverter voltage transfer curves (paper Fig. 2).

Runs the full SPICE study — output families, both VTCs on the
from-scratch MNA simulator, and the 10 fF-loaded transient — and asserts
the noise-margin collapse without current saturation.
"""

from conftest import print_rows

from repro.experiments.fig2 import run_fig2


def test_fig2_regeneration(benchmark):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    print_rows("Fig. 2 — inverters with/without saturation, VDD = 1 V", result.rows())

    # Saturating pair: near-ideal inverter, NM ~ 0.4 V both sides.
    assert result.metrics_sat.max_abs_gain > 5.0
    assert abs(result.metrics_sat.nm_low - 0.4) < 0.08
    assert abs(result.metrics_sat.nm_high - 0.4) < 0.08
    # Non-saturating pair: gain never reaches unity, NM ~ 0.
    assert result.metrics_lin.max_abs_gain < 1.0
    assert result.metrics_lin.nm_low == 0.0
    assert result.metrics_lin.nm_high == 0.0
    # DC burn through the transition.
    assert result.short_circuit_charge_ratio > 2.0

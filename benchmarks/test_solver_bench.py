"""Bench SOLVER: MNA assembly/Newton throughput on inverter chains.

The perf baseline for the compiled stamp-plan assembly engine
(:mod:`repro.circuit.assembly`): ``evaluate()`` throughput and full
Newton-solve wall-clock on 1/5/20-stage complementary inverter chains,
plus a 200-step trapezoidal transient of the 20-stage chain.  Future
solver PRs should quote before/after numbers from this file.

Seed-implementation reference numbers (same machine class as the
introduction of this benchmark): 20-stage ``evaluate()`` ~359 us, Newton
~0.72 ms, 200-step transient ~0.218 s; the compiled engine landed at
~52 us / ~0.13 ms / ~0.041 s (6.9x / 5.4x / 5.3x).

The Newton benchmarks start from an alternating-rails guess so the
measured work is identical across implementations; the transient
benchmark cold-starts with no ``x0`` — the continuation subsystem's
structural seeder (:mod:`repro.circuit.continuation`) reconstructs the
rails automatically, which is the bug fix this file guards the cost of.
"""

import numpy as np
import pytest

from conftest import print_rows

from repro.circuit.solver import newton_solve
from repro.circuit.transient import transient
from repro.circuit.waveforms import Pulse
from repro.devices.empirical import AlphaPowerFET
from repro.experiments.cascade import build_inverter_chain

CHAIN_SIZES = (1, 5, 20)
T_STOP_S = 4e-10
DT_S = 2e-12


def _input_pulse():
    return Pulse(0.0, 1.0, delay_s=2e-11, rise_s=1e-11, fall_s=1e-11,
                 width_s=2e-10, period_s=4e-10)


def _chain(n_stages):
    return build_inverter_chain(
        AlphaPowerFET(), n_stages=n_stages, input_waveform=_input_pulse()
    )


def _rails_guess(system, n_stages):
    guess = np.zeros(system.size)
    for i in range(n_stages + 1):
        guess[system.node_index(f"s{i}")] = float(i % 2)
    guess[system.node_index("vdd")] = 1.0
    return guess


@pytest.mark.parametrize("n_stages", CHAIN_SIZES)
def test_evaluate_throughput(benchmark, n_stages):
    system = _chain(n_stages).build_system()
    x, converged = newton_solve(system, _rails_guess(system, n_stages))
    assert converged

    residual, _ = benchmark(system.evaluate, x)
    print_rows(
        f"evaluate() throughput — {n_stages}-stage chain",
        [("unknowns", float(system.size)),
         ("mean evaluate [us]", benchmark.stats.stats.mean * 1e6)],
    )
    assert float(np.max(np.abs(residual))) < 1e-9


@pytest.mark.parametrize("n_stages", CHAIN_SIZES)
def test_newton_solve_wall_clock(benchmark, n_stages):
    system = _chain(n_stages).build_system()
    guess = _rails_guess(system, n_stages)

    x, converged = benchmark(newton_solve, system, guess)
    print_rows(
        f"newton_solve wall-clock — {n_stages}-stage chain",
        [("mean solve [ms]", benchmark.stats.stats.mean * 1e3)],
    )
    assert converged
    residual, _ = system.evaluate(x)
    assert float(np.max(np.abs(residual))) < 1e-9


def test_chain20_transient_wall_clock(benchmark):
    circuit = _chain(20)

    result = benchmark.pedantic(
        transient, args=(circuit, T_STOP_S, DT_S), rounds=3, iterations=1,
    )
    print_rows(
        "20-stage chain transient (200 steps)",
        [("points", float(result.time_s.size)),
         ("mean run [ms]", benchmark.stats.stats.mean * 1e3)],
    )
    # The pulse has propagated: the final stage swings across the supply.
    swing = result.voltage("s20")
    assert swing.max() > 0.9 and swing.min() < 0.1

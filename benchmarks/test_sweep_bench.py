"""Bench SWEEP: batched Monte Carlo throughput vs the per-trial loop.

The perf baseline for the batched sweep engine
(:mod:`repro.circuit.sweep`): a 1000-instance Monte Carlo of a 5-stage
complementary inverter chain (drive-strength and threshold variation on
every FET), solved (a) as a per-trial Python loop — ``chunk_size=1``,
the pattern every variability/yield experiment used before the engine —
and (b) as one batched chunk, where each Newton iteration makes a
single ``linearize`` call across all instances and one batched LAPACK
solve.  Plus the array-statistics counterpart: the 10,000-device CNFET
array sampled device-by-device vs. in vectorised substream blocks.

The transient counterpart (``CircuitTransientMC``): a 256-instance
transient Monte Carlo of the same 5-stage chain, time-stepped in
lockstep vs. the per-instance scalar ``transient()`` loop over
explicitly perturbed circuits.  The batched waveforms are asserted
equal to the scalar path at 1e-9 (they are in fact bitwise identical),
bitwise invariant across chunk size / instance order / process pool,
and >= 5x faster than the loop.

The sparse counterpart: a 256-instance DC Monte Carlo of a 200-stage
chain (204 unknowns, above ``SPARSE_THRESHOLD``), solved through the
batched sparse plan — one symbolic analysis, per-instance numeric
refactorization of the stacked ``(m, nnz)`` CSR data — vs. the scalar
per-instance loop that used to be the silent fallback for every
over-threshold plan.  Solutions are asserted equal at 1e-9 and the
batched path >= 5x faster than the loop.

The compiled-AC counterpart (``ac_sweep``-tagged cases): a 240-point
frequency sweep of an inverter-chain linearization, solved by the
pre-compile per-frequency dense loop vs. the compiled plan — one QZ
(generalized Schur) reduction plus an all-frequency blocked triangular
backsubstitution below ``SPARSE_THRESHOLD``, per-frequency complex
numeric refactorization on the cached symbolic ordering above it.
Samples are asserted equal at 1e-9 and the compiled path >= 10x faster.

Reference numbers (container class of the engines' introduction):
1k-instance chain MC ~250 ms serial loop vs ~11 ms batched (~23x);
10k-device array ~65 ms loop vs ~6 ms vectorised (~11x); 256-instance
20-step transient MC ~15.6 s scalar loop vs ~0.24 s batched (~65x);
256-instance sparse 200-stage MC ~21 s scalar loop vs batched well
above the 5x bar; 240-point AC sweep ~64 ms loop vs ~3 ms compiled at
104 unknowns (~22x) and ~4.8 s loop vs ~0.34 s compiled at 604
unknowns (~14x).
"""

import time

import numpy as np
import pytest

from conftest import print_rows

from repro.circuit.ac import ACPlan, dense_frequency_loop
from repro.circuit.sweep import CircuitMonteCarlo, CircuitTransientMC, FETVariation
from repro.circuit.waveforms import DC, Pulse
from repro.devices.empirical import AlphaPowerFET
from repro.experiments.cascade import build_inverter_chain
from repro.integration.variability import CNFETArrayModel

N_INSTANCES = 1000
N_ARRAY_DEVICES = 10000
CHAIN_STAGES = 5
SEED = 20140314

# Transient MC case: 256 instances marched over a 20-step switching
# window (pulse edge inside), per the acceptance bar of the engine's PR.
N_TRANSIENT = 256
T_STOP = 0.2e-9
DT = 1e-11


@pytest.fixture(scope="module")
def engine():
    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=CHAIN_STAGES, input_waveform=DC(0.0)
    )
    return CircuitMonteCarlo(chain)


@pytest.fixture(scope="module")
def variation(engine):
    return FETVariation.sample(
        N_INSTANCES,
        len(engine.fet_names),
        seed=SEED,
        drive_sigma=0.15,
        vth_sigma_v=0.01,
    )


def test_monte_carlo_per_trial_loop(benchmark, engine, variation):
    """Baseline: one Newton solve per instance (chunk_size=1)."""
    result = benchmark(engine.run, variation, chunk_size=1)
    print_rows(
        f"{N_INSTANCES}-instance chain MC — per-trial loop",
        [("mean run [ms]", benchmark.stats.stats.mean * 1e3),
         ("converged fraction", result.n_converged / result.n_instances)],
    )
    assert result.converged.all()


def test_monte_carlo_batched(benchmark, engine, variation):
    """The engine's batched path, one chunk for all 1000 instances."""
    result = benchmark(engine.run, variation, chunk_size=N_INSTANCES)
    print_rows(
        f"{N_INSTANCES}-instance chain MC — batched",
        [("mean run [ms]", benchmark.stats.stats.mean * 1e3),
         ("converged fraction", result.n_converged / result.n_instances)],
    )
    assert result.converged.all()

    # Seed-for-seed identical statistics vs the per-trial loop: the same
    # variation draws, and per-instance solutions equal to solver
    # tolerance regardless of batching.
    loop = engine.run(variation, chunk_size=1)
    for node in (f"s{CHAIN_STAGES}", "s1"):
        batched_stats = result.statistics(node)
        loop_stats = loop.statistics(node)
        assert batched_stats.mean == pytest.approx(loop_stats.mean, abs=1e-12)
        assert batched_stats.std == pytest.approx(loop_stats.std, abs=1e-12)
    assert np.allclose(result.x, loop.x, atol=1e-10)


@pytest.fixture(scope="module")
def transient_engine():
    stimulus = Pulse(
        v1=0.0, v2=1.0, delay_s=0.02e-9, rise_s=10e-12, fall_s=10e-12,
        width_s=0.09e-9, period_s=0.0,
    )
    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=CHAIN_STAGES, input_waveform=stimulus
    )
    return CircuitTransientMC(chain)


@pytest.fixture(scope="module")
def transient_variation(transient_engine):
    return FETVariation.sample(
        N_TRANSIENT,
        len(transient_engine.fet_names),
        seed=SEED,
        drive_sigma=0.15,
        vth_sigma_v=0.01,
    )


# The scalar loop is expensive (~9 s): measure it once and share the
# (time, samples) pair between the loop and batched benchmark tests.
_transient_loop_cache: dict = {}


def _scalar_transient_loop(engine, variation):
    cached = _transient_loop_cache.get("loop")
    if cached is None:
        start = time.perf_counter()
        samples = engine.scalar_reference(variation, T_STOP, DT)
        cached = (time.perf_counter() - start, samples)
        _transient_loop_cache["loop"] = cached
    return cached


def test_transient_mc_per_instance_loop(
    benchmark, transient_engine, transient_variation
):
    """Baseline: scalar transient() per explicitly perturbed instance."""
    samples = benchmark.pedantic(
        lambda: _scalar_transient_loop(transient_engine, transient_variation)[1],
        rounds=1,
        iterations=1,
    )
    print_rows(
        f"{N_TRANSIENT}-instance transient MC — per-instance loop",
        [("one run [ms]",
          _scalar_transient_loop(transient_engine, transient_variation)[0] * 1e3)],
    )
    assert samples.shape[0] == N_TRANSIENT


def test_transient_mc_batched(benchmark, transient_engine, transient_variation):
    """The lockstep engine: >= 5x over the loop, waveforms equal at 1e-9."""
    result = benchmark(
        transient_engine.run, transient_variation, T_STOP, DT
    )
    assert result.converged.all()
    assert result.n_fallback == 0

    loop_time, loop_samples = _scalar_transient_loop(
        transient_engine, transient_variation
    )
    batched_time = benchmark.stats.stats.mean
    speedup = loop_time / batched_time
    print_rows(
        f"{N_TRANSIENT}-instance transient MC — batched lockstep",
        [("mean run [ms]", batched_time * 1e3),
         ("loop run [ms]", loop_time * 1e3),
         ("speedup", speedup),
         ("max |batched - loop|", float(np.abs(result.samples - loop_samples).max()))],
    )
    # Acceptance bar: waveforms equal to the scalar path at 1e-9 and a
    # >= 5x speedup over the per-instance loop.
    assert np.abs(result.samples - loop_samples).max() < 1e-9
    assert speedup >= 5.0


def test_transient_mc_bitwise_invariance(transient_engine, transient_variation):
    """Chunk size, instance order and pooling never change a single bit."""
    reference = transient_engine.run(transient_variation, T_STOP, DT)
    chunked = transient_engine.run(
        transient_variation, T_STOP, DT, chunk_size=37
    )
    assert np.array_equal(reference.samples, chunked.samples)
    permutation = np.random.default_rng(0).permutation(N_TRANSIENT)
    permuted = transient_engine.run(
        transient_variation.take(permutation), T_STOP, DT
    )
    assert np.array_equal(permuted.samples, reference.samples[permutation])
    pooled = transient_engine.run(
        transient_variation, T_STOP, DT, chunk_size=64, workers=2
    )
    assert np.array_equal(pooled.samples, reference.samples)


# Sparse batched MC case: a chain deep enough that its plan crosses
# SPARSE_THRESHOLD (200 stages -> 204 unknowns), per the acceptance bar
# of the sparse-batching PR.
N_SPARSE = 256
SPARSE_STAGES = 200


@pytest.fixture(scope="module")
def sparse_engine():
    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=SPARSE_STAGES, input_waveform=DC(0.0)
    )
    engine = CircuitMonteCarlo(chain)
    assert engine.plan.use_sparse
    return engine


@pytest.fixture(scope="module")
def sparse_variation(sparse_engine):
    return FETVariation.sample(
        N_SPARSE,
        len(sparse_engine.fet_names),
        seed=SEED,
        drive_sigma=0.15,
        vth_sigma_v=0.01,
    )


# The scalar loop runs 256 robust DC solves (~20 s): measure once and
# share between the loop and batched benchmark tests.
_sparse_loop_cache: dict = {}


def _scalar_sparse_loop(engine, variation):
    cached = _sparse_loop_cache.get("loop")
    if cached is None:
        start = time.perf_counter()
        result = engine.scalar_reference(variation)
        cached = (time.perf_counter() - start, result)
        _sparse_loop_cache["loop"] = cached
    return cached


def test_sparse_mc_per_instance_loop(benchmark, sparse_engine, sparse_variation):
    """Baseline: the old fallback — one scalar sparse solve per instance."""
    result = benchmark.pedantic(
        lambda: _scalar_sparse_loop(sparse_engine, sparse_variation)[1],
        rounds=1,
        iterations=1,
    )
    print_rows(
        f"{N_SPARSE}-instance {SPARSE_STAGES}-stage MC — per-instance loop",
        [("one run [ms]",
          _scalar_sparse_loop(sparse_engine, sparse_variation)[0] * 1e3)],
    )
    assert result.converged.all()


def test_sparse_mc_batched(benchmark, sparse_engine, sparse_variation):
    """Batched sparse Newton: >= 5x over the loop, solutions equal at 1e-9."""
    result = benchmark.pedantic(
        sparse_engine.run, args=(sparse_variation,), rounds=1, iterations=1
    )
    assert result.converged.all()
    # One symbolic analysis served every numeric refactorization.
    assert sparse_engine.plan.sparse_schedule.n_symbolic == 1

    loop_time, loop_result = _scalar_sparse_loop(sparse_engine, sparse_variation)
    batched_time = benchmark.stats.stats.mean
    speedup = loop_time / batched_time
    print_rows(
        f"{N_SPARSE}-instance {SPARSE_STAGES}-stage MC — batched sparse",
        [("one run [ms]", batched_time * 1e3),
         ("loop run [ms]", loop_time * 1e3),
         ("speedup", speedup),
         ("max |batched - loop|", float(np.abs(result.x - loop_result.x).max()))],
    )
    # Acceptance bar: solutions equal to the scalar path at 1e-9 and a
    # >= 5x speedup over the per-instance loop.
    assert np.abs(result.x - loop_result.x).max() < 1e-9
    assert speedup >= 5.0


# Compiled AC sweep cases (test names carry the "ac_sweep" tag the CI
# bench-smoke filters key on): one dense-regime chain (104 unknowns,
# below SPARSE_THRESHOLD -> one-time QZ reduction + all-frequency
# triangular backsubstitution) and one sparse-regime chain (604
# unknowns -> per-frequency complex numeric refactorization on the
# plan's cached symbolic ordering), both swept over a 240-point grid
# against the pre-compile per-frequency dense loop on the *identical*
# linearization.  Acceptance bar: samples equal at 1e-9 and >= 10x.
N_AC_FREQUENCIES = 240
AC_DENSE_STAGES = 100
AC_SPARSE_STAGES = 600

_ac_cache: dict = {}


def _ac_case(stages):
    """(plan, frequencies, loop_time, reference) for one chain size.

    The legacy loop is expensive (~5 s at 604 unknowns): run it once
    per module and share between the loop-baseline and compiled tests.
    """
    case = _ac_cache.get(stages)
    if case is None:
        chain = build_inverter_chain(
            AlphaPowerFET(), n_stages=stages, input_waveform=DC(0.0)
        )
        plan = ACPlan(chain, "VIN")
        frequencies = np.logspace(3, 11, N_AC_FREQUENCIES)
        conductance, capacitance, rhs = plan.dense_system()
        start = time.perf_counter()
        reference = dense_frequency_loop(conductance, capacitance, rhs, frequencies)
        loop_time = time.perf_counter() - start
        case = (plan, frequencies, loop_time, reference)
        _ac_cache[stages] = case
    return case


def _bench_ac_sweep(benchmark, stages, label):
    plan, frequencies, loop_time, reference = _ac_case(stages)
    samples = benchmark.pedantic(
        plan.sweep_samples, args=(frequencies,), rounds=3, iterations=1
    )
    compiled_time = benchmark.stats.stats.min
    speedup = loop_time / compiled_time
    print_rows(
        f"{N_AC_FREQUENCIES}-point AC sweep, {plan.size} unknowns — {label}",
        [("compiled sweep [ms]", compiled_time * 1e3),
         ("per-frequency loop [ms]", loop_time * 1e3),
         ("speedup", speedup),
         ("max |compiled - loop|", float(np.abs(samples - reference).max()))],
    )
    # Acceptance bar: compiled samples equal to the legacy loop at 1e-9
    # and a >= 10x speedup on the identical linearization.
    assert np.abs(samples - reference).max() < 1e-9
    assert speedup >= 10.0


def test_ac_sweep_dense_frequency_loop(benchmark):
    """Baseline: the pre-compile per-frequency dense solve loop."""
    plan, frequencies, loop_time, reference = _ac_case(AC_DENSE_STAGES)
    benchmark.pedantic(lambda: reference, rounds=1, iterations=1)
    print_rows(
        f"{N_AC_FREQUENCIES}-point AC sweep, {plan.size} unknowns — dense loop",
        [("one run [ms]", loop_time * 1e3)],
    )
    assert not plan.use_sparse


def test_ac_sweep_dense_compiled(benchmark):
    """Schur-compiled dense sweep: O(size^2) per frequency after one QZ."""
    _bench_ac_sweep(benchmark, AC_DENSE_STAGES, "compiled (Schur)")


def test_ac_sweep_sparse_frequency_loop(benchmark):
    """Baseline: the same dense loop at sparse-regime size (604 unknowns)."""
    plan, frequencies, loop_time, reference = _ac_case(AC_SPARSE_STAGES)
    benchmark.pedantic(lambda: reference, rounds=1, iterations=1)
    print_rows(
        f"{N_AC_FREQUENCIES}-point AC sweep, {plan.size} unknowns — dense loop",
        [("one run [ms]", loop_time * 1e3)],
    )
    assert plan.use_sparse


def test_ac_sweep_sparse_compiled(benchmark):
    """Canonical-pattern complex refactorization per frequency."""
    _bench_ac_sweep(benchmark, AC_SPARSE_STAGES, "compiled (sparse)")


def test_sample_array_device_loop(benchmark):
    """Baseline: the seed implementation's device-by-device sampling loop."""
    model = CNFETArrayModel()

    def loop():
        rng = np.random.default_rng(SEED)
        return tuple(model.sample_device(rng) for _ in range(N_ARRAY_DEVICES))

    devices = benchmark(loop)
    print_rows(
        f"{N_ARRAY_DEVICES}-device array — per-device loop",
        [("mean run [ms]", benchmark.stats.stats.mean * 1e3)],
    )
    assert len(devices) == N_ARRAY_DEVICES


def test_sample_array_vectorized(benchmark):
    """The engine path: vectorised substream blocks."""
    model = CNFETArrayModel()
    result = benchmark(model.sample_array, N_ARRAY_DEVICES, seed=SEED)
    print_rows(
        f"{N_ARRAY_DEVICES}-device array — vectorised blocks",
        [("mean run [ms]", benchmark.stats.stats.mean * 1e3),
         ("pass fraction", result.pass_fraction)],
    )
    assert result.n_devices == N_ARRAY_DEVICES
    assert 0.7 < result.pass_fraction < 1.0

"""Bench SWEEP: batched Monte Carlo throughput vs the per-trial loop.

The perf baseline for the batched sweep engine
(:mod:`repro.circuit.sweep`): a 1000-instance Monte Carlo of a 5-stage
complementary inverter chain (drive-strength and threshold variation on
every FET), solved (a) as a per-trial Python loop — ``chunk_size=1``,
the pattern every variability/yield experiment used before the engine —
and (b) as one batched chunk, where each Newton iteration makes a
single ``linearize`` call across all instances and one batched LAPACK
solve.  Plus the array-statistics counterpart: the 10,000-device CNFET
array sampled device-by-device vs. in vectorised substream blocks.

Reference numbers (container class of the engine's introduction):
1k-instance chain MC ~250 ms serial loop vs ~11 ms batched (~23x);
10k-device array ~65 ms loop vs ~6 ms vectorised (~11x).  Both easily
clear the >= 3x acceptance bar; the batched statistics are asserted
identical to the serial loop's (same seed, same substream draws).
"""

import numpy as np
import pytest

from conftest import print_rows

from repro.circuit.sweep import CircuitMonteCarlo, FETVariation
from repro.circuit.waveforms import DC
from repro.devices.empirical import AlphaPowerFET
from repro.experiments.cascade import build_inverter_chain
from repro.integration.variability import CNFETArrayModel

N_INSTANCES = 1000
N_ARRAY_DEVICES = 10000
CHAIN_STAGES = 5
SEED = 20140314


@pytest.fixture(scope="module")
def engine():
    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=CHAIN_STAGES, input_waveform=DC(0.0)
    )
    return CircuitMonteCarlo(chain)


@pytest.fixture(scope="module")
def variation(engine):
    return FETVariation.sample(
        N_INSTANCES,
        len(engine.fet_names),
        seed=SEED,
        drive_sigma=0.15,
        vth_sigma_v=0.01,
    )


def test_monte_carlo_per_trial_loop(benchmark, engine, variation):
    """Baseline: one Newton solve per instance (chunk_size=1)."""
    result = benchmark(engine.run, variation, chunk_size=1)
    print_rows(
        f"{N_INSTANCES}-instance chain MC — per-trial loop",
        [("mean run [ms]", benchmark.stats.stats.mean * 1e3),
         ("converged fraction", result.n_converged / result.n_instances)],
    )
    assert result.converged.all()


def test_monte_carlo_batched(benchmark, engine, variation):
    """The engine's batched path, one chunk for all 1000 instances."""
    result = benchmark(engine.run, variation, chunk_size=N_INSTANCES)
    print_rows(
        f"{N_INSTANCES}-instance chain MC — batched",
        [("mean run [ms]", benchmark.stats.stats.mean * 1e3),
         ("converged fraction", result.n_converged / result.n_instances)],
    )
    assert result.converged.all()

    # Seed-for-seed identical statistics vs the per-trial loop: the same
    # variation draws, and per-instance solutions equal to solver
    # tolerance regardless of batching.
    loop = engine.run(variation, chunk_size=1)
    for node in (f"s{CHAIN_STAGES}", "s1"):
        batched_stats = result.statistics(node)
        loop_stats = loop.statistics(node)
        assert batched_stats.mean == pytest.approx(loop_stats.mean, abs=1e-12)
        assert batched_stats.std == pytest.approx(loop_stats.std, abs=1e-12)
    assert np.allclose(result.x, loop.x, atol=1e-10)


def test_sample_array_device_loop(benchmark):
    """Baseline: the seed implementation's device-by-device sampling loop."""
    model = CNFETArrayModel()

    def loop():
        rng = np.random.default_rng(SEED)
        return tuple(model.sample_device(rng) for _ in range(N_ARRAY_DEVICES))

    devices = benchmark(loop)
    print_rows(
        f"{N_ARRAY_DEVICES}-device array — per-device loop",
        [("mean run [ms]", benchmark.stats.stats.mean * 1e3)],
    )
    assert len(devices) == N_ARRAY_DEVICES


def test_sample_array_vectorized(benchmark):
    """The engine path: vectorised substream blocks."""
    model = CNFETArrayModel()
    result = benchmark(model.sample_array, N_ARRAY_DEVICES, seed=SEED)
    print_rows(
        f"{N_ARRAY_DEVICES}-device array — vectorised blocks",
        [("mean run [ms]", benchmark.stats.stats.mean * 1e3),
         ("pass fraction", result.pass_fraction)],
    )
    assert result.n_devices == N_ARRAY_DEVICES
    assert 0.7 < result.pass_fraction < 1.0

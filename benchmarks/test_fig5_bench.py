"""Bench FIG5: del Alamo-style technology benchmark (paper Fig. 5).

I_on at V_DS = 0.5 V, normalised to I_off = 100 nA/um, for the reference
Si / InGaAs / InAs field, the measured CNT points, and this package's
model CNT-FET swept over gate length.
"""

from conftest import print_rows

from repro.benchmarking.fig5 import run_fig5_benchmark


def test_fig5_regeneration(benchmark):
    result = benchmark.pedantic(
        run_fig5_benchmark,
        kwargs={"gate_lengths_nm": (9.0, 20.0, 30.0, 100.0, 300.0)},
        rounds=1,
        iterations=1,
    )
    rows = [(f"{name} @ {length:g} nm", ion) for name, length, ion in result.rows()]
    print_rows("Fig. 5 — I_on [uA/um] at V_DS = 0.5 V, I_off = 100 nA/um", rows)

    # The paper's claim: "the CNTFET outperforms the alternatives".
    best_alternative = max(
        result.reference[name].best_ion()
        for name in ("Si", "InGaAs HEMT", "InAs HEMT")
    )
    measured_cnt = result.reference["CNT (measured)"].best_ion()
    assert measured_cnt > 2.0 * best_alternative
    for point in result.model_cnt:
        assert point.ion_ua_per_um > best_alternative

    # Shape: model on-current decreases with gate length (ballisticity).
    ions = [p.ion_ua_per_um for p in result.model_cnt]
    assert all(a > b for a, b in zip(ions, ions[1:]))

"""Bench ABL: ablations on the design choices the paper argues about.

Dark space (Skotnicki & Boeuf), ballisticity vs channel length, contact
length scaling, and TFET gate-oxide scaling.
"""

import numpy as np

from conftest import print_rows

from repro.experiments.ablations import (
    run_ballisticity_ablation,
    run_contact_length_ablation,
    run_dark_space_ablation,
    run_tfet_oxide_ablation,
)


def run_all_ablations():
    return (
        run_dark_space_ablation(),
        run_ballisticity_ablation(),
        run_contact_length_ablation(),
        run_tfet_oxide_ablation(),
    )


def test_ablations_regeneration(benchmark):
    dark, ballistic, contact, tfet = benchmark.pedantic(
        run_all_ablations, rounds=1, iterations=1
    )

    rows = []
    for material, ss in dark.ss_by_material.items():
        rows.append((f"SS @ 9 nm, {material} [mV/dec]", float(np.interp(
            9.0, dark.gate_lengths_nm, ss
        ))))
    rows += [
        (f"ballisticity @ {l:g} nm", float(t))
        for l, t in zip(ballistic.channel_lengths_nm, ballistic.transmission)
    ]
    rows += [
        (f"series R @ L_c = {l:g} nm [kOhm]", float(r / 1e3))
        for l, r in zip(contact.contact_lengths_nm, contact.series_resistance_ohm)
    ]
    rows += [
        (f"TFET I_on @ t_ox = {t:g} nm [uA]", float(i * 1e6))
        for t, i in zip(tfet.t_ox_nm, tfet.on_current_a)
    ]
    print_rows("Ablations", rows)

    # Dark space: CNT best, III-V worst, penalty shrinks at long L.
    assert dark.penalty_at(9.0, "InAs") > dark.penalty_at(9.0, "Si") > 1.0
    assert dark.penalty_at(30.0, "InAs") < dark.penalty_at(9.0, "InAs")
    # Ballisticity and contact resistance are monotone.
    assert np.all(np.diff(ballistic.on_current_a) < 0.0)
    assert np.all(np.diff(contact.series_resistance_ohm) < 0.0)
    # TFET: thinner oxide, more on-current (paper's improvement path).
    assert np.all(np.diff(tfet.on_current_a) < 0.0)

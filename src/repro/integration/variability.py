"""Monte-Carlo CNFET array variability: the 10,000-device statistics.

Park et al. (the paper's Ref. [22]) measured >10,000 CNT-FETs fabricated
blindly on self-assembled sites — "for the first time a statistical
analysis ... was available".  This module regenerates that kind of
dataset synthetically: each device receives a random number of tubes;
each tube is semiconducting with the material purity, has a
diameter-dependent on-current, and metallic tubes short the channel with
a gate-independent ohmic conductance.  Aggregating over tubes yields the
device-level I_on, I_off and on/off-ratio distributions, and the pass
fraction against a spec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.constants import CNT_QUANTUM_RESISTANCE_OHM

__all__ = ["ArraySpec", "DeviceSample", "ArrayResult", "CNFETArrayModel"]


@dataclass(frozen=True)
class ArraySpec:
    """Pass/fail specification for a device in the array."""

    min_on_current_a: float = 1e-6
    min_on_off_ratio: float = 1e3


@dataclass(frozen=True)
class DeviceSample:
    """One synthesized device."""

    n_tubes: int
    n_metallic: int
    i_on_a: float
    i_off_a: float

    @property
    def on_off_ratio(self) -> float:
        return self.i_on_a / self.i_off_a if self.i_off_a > 0.0 else np.inf

    @property
    def is_open(self) -> bool:
        return self.n_tubes == 0

    @property
    def is_shorted(self) -> bool:
        return self.n_metallic > 0


@dataclass(frozen=True)
class ArrayResult:
    """Aggregate statistics of a synthesized array."""

    devices: tuple[DeviceSample, ...]
    spec: ArraySpec

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def open_fraction(self) -> float:
        return sum(d.is_open for d in self.devices) / self.n_devices

    @property
    def shorted_fraction(self) -> float:
        return sum(d.is_shorted for d in self.devices) / self.n_devices

    @property
    def pass_fraction(self) -> float:
        return sum(self._passes(d) for d in self.devices) / self.n_devices

    def _passes(self, device: DeviceSample) -> bool:
        return (
            not device.is_open
            and device.i_on_a >= self.spec.min_on_current_a
            and device.on_off_ratio >= self.spec.min_on_off_ratio
        )

    def on_currents_a(self) -> np.ndarray:
        return np.array([d.i_on_a for d in self.devices])

    def on_off_ratios(self) -> np.ndarray:
        return np.array([d.on_off_ratio for d in self.devices])


class CNFETArrayModel:
    """Synthesizes CNFET arrays tube-by-tube.

    Parameters
    ----------
    semiconducting_purity:
        Probability a placed tube is semiconducting (post-sorting).
    mean_tubes_per_device:
        Poisson mean of the per-device tube count (set by placement).
    mean_on_current_per_tube_a / on_current_sigma_fraction:
        Log-normal-ish on-current distribution per semiconducting tube,
        driven by diameter/contact variability.
    semiconducting_off_current_a:
        Off-state leakage per semiconducting tube.
    metallic_resistance_ohm:
        Two-terminal resistance of a metallic tube (quantum limit x
        scattering factor); conducts identically in on and off states.
    """

    def __init__(
        self,
        semiconducting_purity: float = 0.99,
        mean_tubes_per_device: float = 3.0,
        mean_on_current_per_tube_a: float = 10e-6,
        on_current_sigma_fraction: float = 0.25,
        semiconducting_off_current_a: float = 10e-12,
        metallic_resistance_ohm: float = 3.0 * CNT_QUANTUM_RESISTANCE_OHM,
        read_voltage_v: float = 0.5,
    ):
        if not 0.0 <= semiconducting_purity <= 1.0:
            raise ValueError("purity must be in [0, 1]")
        if mean_tubes_per_device <= 0.0:
            raise ValueError("mean tubes per device must be positive")
        if mean_on_current_per_tube_a <= 0.0 or semiconducting_off_current_a <= 0.0:
            raise ValueError("current scales must be positive")
        if on_current_sigma_fraction < 0.0:
            raise ValueError("sigma fraction must be >= 0")
        if metallic_resistance_ohm <= 0.0 or read_voltage_v <= 0.0:
            raise ValueError("metallic resistance and read voltage must be positive")
        self.semiconducting_purity = semiconducting_purity
        self.mean_tubes_per_device = mean_tubes_per_device
        self.mean_on_current_per_tube_a = mean_on_current_per_tube_a
        self.on_current_sigma_fraction = on_current_sigma_fraction
        self.semiconducting_off_current_a = semiconducting_off_current_a
        self.metallic_resistance_ohm = metallic_resistance_ohm
        self.read_voltage_v = read_voltage_v

    def sample_device(self, rng: np.random.Generator) -> DeviceSample:
        n_tubes = int(rng.poisson(self.mean_tubes_per_device))
        if n_tubes == 0:
            return DeviceSample(n_tubes=0, n_metallic=0, i_on_a=0.0, i_off_a=0.0)
        n_metallic = int(rng.binomial(n_tubes, 1.0 - self.semiconducting_purity))
        n_semi = n_tubes - n_metallic
        if n_semi > 0:
            sigma = max(self.on_current_sigma_fraction, 1e-9)
            log_sigma = np.sqrt(np.log1p(sigma**2))
            draws = rng.lognormal(
                mean=np.log(self.mean_on_current_per_tube_a) - log_sigma**2 / 2.0,
                sigma=log_sigma,
                size=n_semi,
            )
            i_semi_on = float(draws.sum())
            i_semi_off = n_semi * self.semiconducting_off_current_a
        else:
            i_semi_on = i_semi_off = 0.0
        i_metal = n_metallic * self.read_voltage_v / self.metallic_resistance_ohm
        return DeviceSample(
            n_tubes=n_tubes,
            n_metallic=n_metallic,
            i_on_a=i_semi_on + i_metal,
            i_off_a=i_semi_off + i_metal,
        )

    def sample_array(
        self,
        n_devices: int = 10000,
        spec: ArraySpec | None = None,
        seed: int | None = None,
    ) -> ArrayResult:
        """Synthesize an array the size of the Park et al. dataset."""
        if n_devices < 1:
            raise ValueError("need at least one device")
        rng = np.random.default_rng(seed)
        devices = tuple(self.sample_device(rng) for _ in range(n_devices))
        return ArrayResult(devices=devices, spec=spec or ArraySpec())

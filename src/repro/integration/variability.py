"""Monte-Carlo CNFET array variability: the 10,000-device statistics.

Park et al. (the paper's Ref. [22]) measured >10,000 CNT-FETs fabricated
blindly on self-assembled sites — "for the first time a statistical
analysis ... was available".  This module regenerates that kind of
dataset synthetically: each device receives a random number of tubes;
each tube is semiconducting with the material purity, has a
diameter-dependent on-current, and metallic tubes short the channel with
a gate-independent ohmic conductance.  Aggregating over tubes yields the
device-level I_on, I_off and on/off-ratio distributions, and the pass
fraction against a spec.

Sampling runs through the batched sweep engine
(:class:`repro.circuit.sweep.SweepPlan`): devices are drawn in
vectorised blocks, each block from its own substream spawned from the
single user seed, so an array is reproducible seed-for-seed regardless
of chunk size, worker count, or serial vs. process-pool execution.  The
scalar :meth:`CNFETArrayModel.sample_device` survives as the one-device
reference implementation of the same distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.sweep import (
    ExecutionPolicy,
    SweepPlan,
    ensure_seed,
    lognormal_unit_mean,
)
from repro.physics.constants import CNT_QUANTUM_RESISTANCE_OHM

__all__ = [
    "ArraySpec",
    "DeviceSample",
    "ArrayResult",
    "CNFETArrayModel",
    "array_drive_sigma",
]


@dataclass(frozen=True)
class ArraySpec:
    """Pass/fail specification for a device in the array."""

    min_on_current_a: float = 1e-6
    min_on_off_ratio: float = 1e3


@dataclass(frozen=True)
class DeviceSample:
    """One synthesized device."""

    n_tubes: int
    n_metallic: int
    i_on_a: float
    i_off_a: float

    @property
    def on_off_ratio(self) -> float:
        return self.i_on_a / self.i_off_a if self.i_off_a > 0.0 else np.inf

    @property
    def is_open(self) -> bool:
        return self.n_tubes == 0

    @property
    def is_shorted(self) -> bool:
        return self.n_metallic > 0


class ArrayResult:
    """Aggregate statistics of a synthesized array.

    Array-backed: the four per-device columns (tube count, metallic
    count, on/off currents) are the storage, so every statistic below is
    one vectorised pass even for Park-scale arrays.  The ``devices``
    tuple of :class:`DeviceSample` objects is materialised lazily for
    callers that want per-device records.  An empty array (``n_devices
    == 0``) is a valid result whose fractions are all 0.0.
    """

    def __init__(
        self,
        devices: tuple[DeviceSample, ...] | None = None,
        spec: ArraySpec | None = None,
        *,
        n_tubes: np.ndarray | None = None,
        n_metallic: np.ndarray | None = None,
        i_on_a: np.ndarray | None = None,
        i_off_a: np.ndarray | None = None,
    ):
        self.spec = spec or ArraySpec()
        if devices is not None:
            self._devices: tuple[DeviceSample, ...] | None = tuple(devices)
            self._n_tubes = np.array([d.n_tubes for d in self._devices], dtype=np.intp)
            self._n_metallic = np.array(
                [d.n_metallic for d in self._devices], dtype=np.intp
            )
            self._i_on = np.array([d.i_on_a for d in self._devices], dtype=float)
            self._i_off = np.array([d.i_off_a for d in self._devices], dtype=float)
        else:
            if n_tubes is None or n_metallic is None or i_on_a is None or i_off_a is None:
                raise ValueError("give either devices or all four column arrays")
            self._devices = None
            self._n_tubes = np.asarray(n_tubes, dtype=np.intp)
            self._n_metallic = np.asarray(n_metallic, dtype=np.intp)
            self._i_on = np.asarray(i_on_a, dtype=float)
            self._i_off = np.asarray(i_off_a, dtype=float)
            lengths = {
                arr.shape for arr in (self._n_tubes, self._n_metallic, self._i_on, self._i_off)
            }
            if len(lengths) != 1 or self._n_tubes.ndim != 1:
                raise ValueError("column arrays must share one 1-D shape")

    @property
    def devices(self) -> tuple[DeviceSample, ...]:
        if self._devices is None:
            self._devices = tuple(
                DeviceSample(
                    n_tubes=int(t), n_metallic=int(m), i_on_a=float(on), i_off_a=float(off)
                )
                for t, m, on, off in zip(
                    self._n_tubes, self._n_metallic, self._i_on, self._i_off
                )
            )
        return self._devices

    @property
    def n_devices(self) -> int:
        return int(self._n_tubes.size)

    @property
    def open_fraction(self) -> float:
        """Fraction of devices with no tube at all (0.0 for an empty array)."""
        if self.n_devices == 0:
            return 0.0
        return float(np.count_nonzero(self._n_tubes == 0) / self.n_devices)

    @property
    def shorted_fraction(self) -> float:
        """Fraction of devices with >= 1 metallic tube (0.0 for an empty array)."""
        if self.n_devices == 0:
            return 0.0
        return float(np.count_nonzero(self._n_metallic > 0) / self.n_devices)

    @property
    def pass_fraction(self) -> float:
        """Fraction meeting the spec (0.0 for an empty array)."""
        if self.n_devices == 0:
            return 0.0
        return float(np.count_nonzero(self._pass_mask()) / self.n_devices)

    def _pass_mask(self) -> np.ndarray:
        return (
            (self._n_tubes > 0)
            & (self._i_on >= self.spec.min_on_current_a)
            & (self.on_off_ratios() >= self.spec.min_on_off_ratio)
        )

    def on_currents_a(self) -> np.ndarray:
        return self._i_on.copy()

    def on_off_ratios(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self._i_off > 0.0, self._i_on / self._i_off, np.inf)


def array_drive_sigma(array: ArrayResult, clip: float = 0.5) -> float:
    """Relative on-current spread of an array's conducting devices.

    This is the drive-strength coefficient of variation the array
    statistics predict for a logic transistor built from the same
    material — the bridge from tube-level Monte Carlo to circuit-level
    :class:`repro.circuit.sweep.FETVariation` draws (both the DC
    switching-threshold ladder and the transient delay distribution in
    :mod:`repro.experiments.integration_stats` feed on it).  Clipped at
    ``clip`` to keep the lognormal drive model well-posed; 0.0 when
    fewer than two devices conduct.
    """
    on = array.on_currents_a()
    conducting = on[on > 0.0]
    if conducting.size < 2:
        return 0.0
    return float(min(conducting.std() / conducting.mean(), clip))


def _sample_block(params_block, rng, model: "CNFETArrayModel"):
    """Vectorised block kernel: draw ``len(params_block)`` devices at once.

    Returns one ``(n_tubes, n_metallic, i_on, i_off)`` row per device.
    Per-tube lognormal draws are flattened across the block and summed
    back per device with a cumulative-sum segment reduction.
    """
    count = len(params_block)
    n_tubes = rng.poisson(model.mean_tubes_per_device, size=count)
    n_metallic = rng.binomial(n_tubes, 1.0 - model.semiconducting_purity)
    n_semi = n_tubes - n_metallic

    sigma = max(model.on_current_sigma_fraction, 1e-9)
    draws = model.mean_on_current_per_tube_a * lognormal_unit_mean(
        rng, sigma, int(n_semi.sum())
    )
    ends = np.cumsum(n_semi)
    csum = np.concatenate(([0.0], np.cumsum(draws)))
    i_semi_on = csum[ends] - csum[ends - n_semi]
    i_semi_off = n_semi * model.semiconducting_off_current_a

    i_metal = n_metallic * (model.read_voltage_v / model.metallic_resistance_ohm)
    rows = np.empty((count, 4))
    rows[:, 0] = n_tubes
    rows[:, 1] = n_metallic
    rows[:, 2] = i_semi_on + i_metal
    rows[:, 3] = i_semi_off + i_metal
    return rows


def _array_entry_validator(entry) -> bool:
    """Merge-boundary schema of one device row from :func:`_sample_block`.

    ``(n_tubes, n_metallic, i_on, i_off)`` — finite floats with the
    count ordering ``n_tubes >= n_metallic >= 0``; rejected rows force a
    chunk retry instead of poisoning the stacked array.
    """
    return (
        isinstance(entry, np.ndarray)
        and entry.shape == (4,)
        and entry.dtype.kind == "f"
        and bool(np.all(np.isfinite(entry)))
        and bool(entry[0] >= entry[1] >= 0.0)
    )


class CNFETArrayModel:
    """Synthesizes CNFET arrays tube-by-tube.

    Parameters
    ----------
    semiconducting_purity:
        Probability a placed tube is semiconducting (post-sorting).
    mean_tubes_per_device:
        Poisson mean of the per-device tube count (set by placement).
    mean_on_current_per_tube_a / on_current_sigma_fraction:
        Log-normal-ish on-current distribution per semiconducting tube,
        driven by diameter/contact variability.
    semiconducting_off_current_a:
        Off-state leakage per semiconducting tube.
    metallic_resistance_ohm:
        Two-terminal resistance of a metallic tube (quantum limit x
        scattering factor); conducts identically in on and off states.
    """

    def __init__(
        self,
        semiconducting_purity: float = 0.99,
        mean_tubes_per_device: float = 3.0,
        mean_on_current_per_tube_a: float = 10e-6,
        on_current_sigma_fraction: float = 0.25,
        semiconducting_off_current_a: float = 10e-12,
        metallic_resistance_ohm: float = 3.0 * CNT_QUANTUM_RESISTANCE_OHM,
        read_voltage_v: float = 0.5,
    ):
        if not 0.0 <= semiconducting_purity <= 1.0:
            raise ValueError("purity must be in [0, 1]")
        if mean_tubes_per_device <= 0.0:
            raise ValueError("mean tubes per device must be positive")
        if mean_on_current_per_tube_a <= 0.0 or semiconducting_off_current_a <= 0.0:
            raise ValueError("current scales must be positive")
        if on_current_sigma_fraction < 0.0:
            raise ValueError("sigma fraction must be >= 0")
        if metallic_resistance_ohm <= 0.0 or read_voltage_v <= 0.0:
            raise ValueError("metallic resistance and read voltage must be positive")
        self.semiconducting_purity = semiconducting_purity
        self.mean_tubes_per_device = mean_tubes_per_device
        self.mean_on_current_per_tube_a = mean_on_current_per_tube_a
        self.on_current_sigma_fraction = on_current_sigma_fraction
        self.semiconducting_off_current_a = semiconducting_off_current_a
        self.metallic_resistance_ohm = metallic_resistance_ohm
        self.read_voltage_v = read_voltage_v

    def sample_device(self, rng: np.random.Generator) -> DeviceSample:
        """Draw one device — the scalar reference for :func:`_sample_block`."""
        n_tubes = int(rng.poisson(self.mean_tubes_per_device))
        if n_tubes == 0:
            return DeviceSample(n_tubes=0, n_metallic=0, i_on_a=0.0, i_off_a=0.0)
        n_metallic = int(rng.binomial(n_tubes, 1.0 - self.semiconducting_purity))
        n_semi = n_tubes - n_metallic
        if n_semi > 0:
            sigma = max(self.on_current_sigma_fraction, 1e-9)
            draws = self.mean_on_current_per_tube_a * lognormal_unit_mean(
                rng, sigma, n_semi
            )
            i_semi_on = float(draws.sum())
            i_semi_off = n_semi * self.semiconducting_off_current_a
        else:
            i_semi_on = i_semi_off = 0.0
        i_metal = n_metallic * self.read_voltage_v / self.metallic_resistance_ohm
        return DeviceSample(
            n_tubes=n_tubes,
            n_metallic=n_metallic,
            i_on_a=i_semi_on + i_metal,
            i_off_a=i_semi_off + i_metal,
        )

    def sample_array(
        self,
        n_devices: int = 10000,
        spec: ArraySpec | None = None,
        seed: int | None = None,
        chunk_size: int | None = None,
        workers: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> ArrayResult:
        """Synthesize an array the size of the Park et al. dataset.

        Devices are drawn in vectorised substream blocks through the
        sweep engine: the result depends only on ``seed`` and
        ``n_devices`` — never on ``chunk_size`` (execution granularity)
        or ``workers`` (optional process pool).
        """
        if n_devices < 1:
            raise ValueError("need at least one device")
        sweep = SweepPlan(
            _sample_block,
            vectorized=True,
            payload=self,
            validate=_array_entry_validator,
        )
        rows = np.asarray(
            sweep.run(
                range(n_devices),
                seed=ensure_seed(seed),
                chunk_size=chunk_size,
                workers=workers,
                policy=policy,
            )
        )
        return ArrayResult(
            spec=spec or ArraySpec(),
            n_tubes=rows[:, 0],
            n_metallic=rows[:, 1],
            i_on_a=rows[:, 2],
            i_off_a=rows[:, 3],
        )

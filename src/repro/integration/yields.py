"""Circuit-level yield models: metallic shorts, removal, redundancy.

Connects the material statistics to the paper's end point — Shulaker's
one-bit CNT computer (Nature 501, 526 (2013), Ref. [20]), 178 CNT-FETs
that worked because the flow was *imperfection-immune*: metallic CNTs
are removed electrically (VMR: the paper's reference flow switches
semiconducting tubes off and burns the conducting metallic ones), and
the logic style tolerates missing tubes.

The model:

* a gate fails "short" if any metallic tube survives removal,
* a gate fails "open" if removal (or placement) leaves no tube at all,
* circuit yield is the product over gates, optionally boosted by
  k-of-n redundancy at the gate level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuit.sweep import SweepPlan, ensure_seed

__all__ = [
    "GateYieldModel",
    "CircuitYield",
    "MonteCarloGateYield",
    "circuit_yield",
    "monte_carlo_gate_yield",
    "shulaker_computer_yield",
    "purity_required_for_yield",
]


@dataclass(frozen=True)
class GateYieldModel:
    """Per-gate failure statistics from tube-level probabilities.

    Attributes
    ----------
    semiconducting_purity:
        Post-sorting probability that a tube is semiconducting.
    tubes_per_gate:
        Mean tube count under a gate (Poisson).
    removal_efficiency:
        Probability that a metallic tube is eliminated by VMR/burn-off.
    tube_survival:
        Probability a *semiconducting* tube survives processing (the VMR
        step also costs some good tubes).
    """

    semiconducting_purity: float = 0.99
    tubes_per_gate: float = 5.0
    removal_efficiency: float = 0.999
    tube_survival: float = 0.95

    def __post_init__(self) -> None:
        for name in ("semiconducting_purity", "removal_efficiency", "tube_survival"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.tubes_per_gate <= 0.0:
            raise ValueError("tubes per gate must be positive")

    @property
    def residual_metallic_rate(self) -> float:
        """Mean surviving metallic tubes per gate."""
        return self.tubes_per_gate * (1.0 - self.semiconducting_purity) * (
            1.0 - self.removal_efficiency
        )

    @property
    def p_short(self) -> float:
        """P(>= 1 surviving metallic tube) = 1 - exp(-rate)."""
        return 1.0 - math.exp(-self.residual_metallic_rate)

    @property
    def p_open(self) -> float:
        """P(no functional semiconducting tube remains)."""
        good_rate = self.tubes_per_gate * self.semiconducting_purity * self.tube_survival
        return math.exp(-good_rate)

    @property
    def gate_yield(self) -> float:
        """P(gate functional) = P(no short) * P(not open)."""
        return (1.0 - self.p_short) * (1.0 - self.p_open)


@dataclass(frozen=True)
class CircuitYield:
    """Yield summary of a circuit of identical gates."""

    n_gates: int
    gate_yield: float
    circuit_yield: float
    expected_failures: float


def circuit_yield(
    gate_model: GateYieldModel, n_gates: int, redundancy: int = 1
) -> CircuitYield:
    """Yield of an ``n_gates`` circuit, optionally with n-way gate sparing.

    ``redundancy`` = r means each logical gate is implemented r times and
    works if any copy works (idealised sparing; routing overhead ignored).
    """
    if n_gates < 1:
        raise ValueError(f"gate count must be >= 1, got {n_gates}")
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    per_gate = gate_model.gate_yield
    effective = 1.0 - (1.0 - per_gate) ** redundancy
    total = effective**n_gates
    return CircuitYield(
        n_gates=n_gates,
        gate_yield=effective,
        circuit_yield=total,
        expected_failures=n_gates * (1.0 - effective),
    )


@dataclass(frozen=True)
class MonteCarloGateYield:
    """Sampled per-gate failure statistics (cross-check of the analytic model)."""

    n_gates: int
    n_shorted: int
    n_open: int
    n_functional: int

    @property
    def p_short(self) -> float:
        return self.n_shorted / self.n_gates

    @property
    def p_open(self) -> float:
        return self.n_open / self.n_gates

    @property
    def gate_yield(self) -> float:
        return self.n_functional / self.n_gates


def _sample_gate_block(params_block, rng, model: GateYieldModel):
    """Vectorised block kernel: fabricate ``len(params_block)`` gates.

    Per gate: Poisson tube count, binomial metallic split, binomial
    VMR survival of metallic tubes and processing survival of
    semiconducting tubes — the sampled counterpart of the closed-form
    ``p_short``/``p_open`` Poisson-thinning arithmetic.
    """
    count = len(params_block)
    n_tubes = rng.poisson(model.tubes_per_gate, size=count)
    n_metallic = rng.binomial(n_tubes, 1.0 - model.semiconducting_purity)
    surviving_metallic = rng.binomial(n_metallic, 1.0 - model.removal_efficiency)
    surviving_good = rng.binomial(n_tubes - n_metallic, model.tube_survival)
    rows = np.empty((count, 2), dtype=bool)
    rows[:, 0] = surviving_metallic > 0  # shorted
    rows[:, 1] = surviving_good == 0  # open
    return rows


def _gate_entry_validator(entry) -> bool:
    """Merge-boundary schema of one gate row: ``(shorted, open)`` booleans."""
    return (
        isinstance(entry, np.ndarray)
        and entry.shape == (2,)
        and entry.dtype == np.bool_
    )


def monte_carlo_gate_yield(
    gate_model: GateYieldModel,
    n_gates: int = 10000,
    seed: int | None = 0,
    chunk_size: int | None = None,
    workers: int | None = None,
) -> MonteCarloGateYield:
    """Fabricate ``n_gates`` gates tube-by-tube through the sweep engine.

    The sampled short/open/functional fractions converge on the
    analytic :class:`GateYieldModel` properties; like every engine-run
    Monte Carlo, the result depends only on ``seed`` and ``n_gates``,
    not on chunking or worker count.
    """
    if n_gates < 1:
        raise ValueError("need at least one gate")
    sweep = SweepPlan(
        _sample_gate_block,
        vectorized=True,
        payload=gate_model,
        validate=_gate_entry_validator,
    )
    rows = np.asarray(
        sweep.run(
            range(n_gates),
            seed=ensure_seed(seed),
            chunk_size=chunk_size,
            workers=workers,
        )
    )
    shorted = rows[:, 0]
    opened = rows[:, 1]
    return MonteCarloGateYield(
        n_gates=n_gates,
        n_shorted=int(np.count_nonzero(shorted)),
        n_open=int(np.count_nonzero(opened)),
        n_functional=int(np.count_nonzero(~shorted & ~opened)),
    )


SHULAKER_TRANSISTOR_COUNT = 178
"""CNT-FET count of the Shulaker one-bit computer (Nature 501, 526)."""


def shulaker_computer_yield(
    semiconducting_purity: float,
    removal_efficiency: float = 0.999,
    tubes_per_gate: float = 10.0,
    redundancy: int = 1,
) -> CircuitYield:
    """Yield of a 178-transistor CNT computer at the given material quality."""
    model = GateYieldModel(
        semiconducting_purity=semiconducting_purity,
        tubes_per_gate=tubes_per_gate,
        removal_efficiency=removal_efficiency,
    )
    return circuit_yield(model, SHULAKER_TRANSISTOR_COUNT, redundancy=redundancy)


def purity_required_for_yield(
    target_yield: float,
    n_gates: int,
    tubes_per_gate: float = 5.0,
    removal_efficiency: float = 0.0,
) -> float:
    """Semiconducting purity needed for a target circuit yield (shorts only).

    Inverts Y = exp(-N * n_t * (1-p) * (1-eps)); ignores opens, so the
    result is the *minimum* purity requirement.  This is the quantitative
    form of the paper's point that wafer-scale CNT logic needs purity
    levels far beyond as-grown 2/3.
    """
    if not 0.0 < target_yield < 1.0:
        raise ValueError(f"target yield must be in (0, 1), got {target_yield}")
    if n_gates < 1 or tubes_per_gate <= 0.0:
        raise ValueError("invalid circuit description")
    if not 0.0 <= removal_efficiency < 1.0:
        raise ValueError("removal efficiency must be in [0, 1)")
    metallic_budget = -math.log(target_yield) / (
        n_gates * tubes_per_gate * (1.0 - removal_efficiency)
    )
    return max(0.0, 1.0 - metallic_budget)

"""Wafer-scale CNT placement models: aligned growth and solution deposition.

The paper's Section V describes the two integration routes and their
statistics:

* **Aligned growth on quartz** — atomic steps on miscut quartz guide CNTs
  during CVD growth into nearly parallel arrays (the route behind the
  Shulaker one-bit computers).  Modelled by a linear tube density and a
  Gaussian angular spread; a device of a given width then sees a
  Poisson-distributed tube count, and stray (badly misaligned) tubes can
  bridge adjacent devices.
* **Solution deposition into trenches** (Park et al., Nature Nano 7, 787
  (2012), paper Ref. [22]) — chemically functionalised trenches capture
  sorted CNTs from suspension; with >10,000 measurable FETs this gave the
  first large-sample CNT-FET statistics.  Modelled by Langmuir-like site
  filling: the number of tubes captured per site is Poisson with a mean
  set by concentration x time, so fill fraction = 1 - exp(-mu).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["AlignedGrowth", "TrenchDeposition", "PlacementStatistics"]


def _require_rng(rng: np.random.Generator | None) -> np.random.Generator:
    """Reject the implicit-entropy path: callers own the seed."""
    if rng is None:
        raise ValueError(
            "pass an explicit numpy Generator (e.g. np.random.default_rng(seed) "
            "or a SeedSequence substream): library code never draws OS entropy "
            "implicitly"
        )
    return rng


@dataclass(frozen=True)
class PlacementStatistics:
    """Per-site outcome probabilities of a placement process."""

    p_empty: float
    p_single: float
    p_multiple: float
    p_misaligned: float

    def __post_init__(self) -> None:
        for name in ("p_empty", "p_single", "p_multiple", "p_misaligned"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    @property
    def p_usable(self) -> float:
        """Site hosts at least one tube and no misaligned stray."""
        return (self.p_single + self.p_multiple) * (1.0 - self.p_misaligned)


@dataclass(frozen=True)
class AlignedGrowth:
    """Quartz-guided aligned CNT growth.

    Attributes
    ----------
    density_per_um:
        Linear density of tubes across the growth direction [1/um].
    angular_sigma_deg:
        Standard deviation of tube orientation around the step direction.
    misalignment_threshold_deg:
        Orientation beyond which a tube counts as a stray (may short
        neighbouring devices).
    """

    density_per_um: float = 5.0
    angular_sigma_deg: float = 1.0
    misalignment_threshold_deg: float = 5.0

    def __post_init__(self) -> None:
        if self.density_per_um <= 0.0:
            raise ValueError("density must be positive")
        if self.angular_sigma_deg <= 0.0:
            raise ValueError("angular sigma must be positive")
        if self.misalignment_threshold_deg <= 0.0:
            raise ValueError("misalignment threshold must be positive")

    def expected_tubes(self, device_width_um: float) -> float:
        """Mean tube count crossing a device of the given width."""
        if device_width_um <= 0.0:
            raise ValueError("device width must be positive")
        return self.density_per_um * device_width_um

    def misaligned_fraction(self) -> float:
        """Fraction of tubes beyond the misalignment threshold (2-sided)."""
        z = self.misalignment_threshold_deg / self.angular_sigma_deg
        return float(math.erfc(z / math.sqrt(2.0)))

    def statistics(self, device_width_um: float) -> PlacementStatistics:
        """Poisson site statistics for devices of the given width."""
        mu = self.expected_tubes(device_width_um)
        p0 = math.exp(-mu)
        p1 = mu * p0
        stray = self.misaligned_fraction()
        # Probability that no stray tube crosses the site.
        p_any_stray = 1.0 - math.exp(-mu * stray)
        return PlacementStatistics(
            p_empty=p0,
            p_single=p1,
            p_multiple=max(1.0 - p0 - p1, 0.0),
            p_misaligned=p_any_stray,
        )

    def sample_tube_counts(
        self, device_width_um: float, n_devices: int, rng=None
    ) -> np.ndarray:
        """Monte-Carlo tube counts for ``n_devices`` sites (``rng`` required)."""
        if n_devices < 1:
            raise ValueError("need at least one device")
        rng = _require_rng(rng)
        return rng.poisson(self.expected_tubes(device_width_um), size=n_devices)


@dataclass(frozen=True)
class TrenchDeposition:
    """Langmuir-like capture of solution-sorted CNTs into trenches.

    ``mean_tubes_per_site`` = capture rate x concentration x time; the
    Park et al. experiment reached >90 % filled sites, i.e. mu ~ 2.5.
    """

    mean_tubes_per_site: float = 2.5
    misplacement_probability: float = 0.02

    def __post_init__(self) -> None:
        if self.mean_tubes_per_site <= 0.0:
            raise ValueError("mean tubes per site must be positive")
        if not 0.0 <= self.misplacement_probability < 1.0:
            raise ValueError("misplacement probability must be in [0, 1)")

    def fill_fraction(self) -> float:
        """Fraction of sites holding at least one tube: 1 - exp(-mu)."""
        return 1.0 - math.exp(-self.mean_tubes_per_site)

    def statistics(self) -> PlacementStatistics:
        mu = self.mean_tubes_per_site
        p0 = math.exp(-mu)
        p1 = mu * p0
        return PlacementStatistics(
            p_empty=p0,
            p_single=p1,
            p_multiple=max(1.0 - p0 - p1, 0.0),
            p_misaligned=self.misplacement_probability,
        )

    def sample_tube_counts(self, n_sites: int, rng=None) -> np.ndarray:
        """Monte-Carlo tube counts for ``n_sites`` trenches (``rng`` required)."""
        if n_sites < 1:
            raise ValueError("need at least one site")
        rng = _require_rng(rng)
        return rng.poisson(self.mean_tubes_per_site, size=n_sites)

    def concentration_for_fill(self, target_fill: float) -> float:
        """Mean tubes/site needed to reach a target fill fraction."""
        if not 0.0 < target_fill < 1.0:
            raise ValueError("target fill must be in (0, 1)")
        return -math.log(1.0 - target_fill)

"""CNT growth populations: chirality statistics of as-grown material.

Section V of the paper: "CNTs can come in different flavors and can be
semiconducting, metallic, semi-metallic and it is currently unproven
whether pure batches of one sort could be achieved."  This module models
the as-grown population: chiralities enumerated in a diameter window and
weighted by a diameter distribution (CVD growth is approximately Gaussian
in diameter and unselective in chiral angle), which reproduces the
textbook ~1/3 metallic : 2/3 semiconducting split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.physics.cnt import Chirality, enumerate_chiralities

__all__ = ["GrowthDistribution"]


@dataclass
class GrowthDistribution:
    """A diameter-Gaussian chirality population.

    Attributes
    ----------
    mean_diameter_nm, sigma_diameter_nm:
        Diameter distribution of the growth recipe (e.g. 1.5 +- 0.25 nm
        for typical CVD; ~0.8 nm for CoMoCAT-class recipes).
    diameter_window_nm:
        Hard truncation of the enumerated chirality set.
    """

    mean_diameter_nm: float = 1.5
    sigma_diameter_nm: float = 0.25
    diameter_window_nm: tuple[float, float] = (0.6, 2.6)
    _chiralities: list[Chirality] = field(init=False, repr=False)
    _weights: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mean_diameter_nm <= 0.0 or self.sigma_diameter_nm <= 0.0:
            raise ValueError("diameter distribution parameters must be positive")
        lo, hi = self.diameter_window_nm
        self._chiralities = enumerate_chiralities(lo, hi)
        if not self._chiralities:
            raise ValueError(f"no chiralities in window [{lo}, {hi}] nm")
        diameters = np.array([c.diameter_nm for c in self._chiralities])
        weights = np.exp(
            -0.5 * ((diameters - self.mean_diameter_nm) / self.sigma_diameter_nm) ** 2
        )
        total = float(weights.sum())
        if total <= 0.0:
            raise ValueError("diameter window excludes all probability mass")
        self._weights = weights / total

    @property
    def chiralities(self) -> list[Chirality]:
        return list(self._chiralities)

    @property
    def probabilities(self) -> np.ndarray:
        return self._weights.copy()

    def semiconducting_fraction(self) -> float:
        """Probability that a grown tube is semiconducting (~2/3)."""
        mask = np.array([c.is_semiconducting for c in self._chiralities])
        return float(self._weights[mask].sum())

    def mean_bandgap_ev(self) -> float:
        """Population-averaged band gap of the semiconducting tubes [eV]."""
        gaps = np.array([c.bandgap_ev() for c in self._chiralities])
        mask = gaps > 0.0
        weight = self._weights[mask]
        return float((gaps[mask] * weight).sum() / weight.sum())

    def sample(self, n: int, rng: np.random.Generator | None = None) -> list[Chirality]:
        """Draw ``n`` tubes from the population (``rng`` is required)."""
        if n < 1:
            raise ValueError(f"sample size must be >= 1, got {n}")
        rng = _require_rng(rng)
        indices = rng.choice(len(self._chiralities), size=n, p=self._weights)
        return [self._chiralities[int(i)] for i in indices]

    def sample_diameters_nm(
        self, n: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Diameters [nm] of ``n`` sampled tubes (``rng`` is required)."""
        return np.array([c.diameter_nm for c in self.sample(n, rng)])


def _require_rng(rng: np.random.Generator | None) -> np.random.Generator:
    """Reject the implicit-entropy path: callers own the seed."""
    if rng is None:
        raise ValueError(
            "pass an explicit numpy Generator (e.g. np.random.default_rng(seed) "
            "or a SeedSequence substream): library code never draws OS entropy "
            "implicitly"
        )
    return rng

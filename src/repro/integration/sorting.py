"""Post-growth sorting: purity-vs-yield models of CNT separation processes.

Section V's second integration route "refines the CNT usually with the
help of liquid suspension and tries to do large-scale single-chirality
separation of single-wall carbon nanotubes by gel chromatography, density
gradient or DNA methods."  Each pass of a separation process is modelled
as a binary classifier over the semiconducting/metallic label with a
selectivity ratio ``s``: a semiconducting tube is retained with
probability ``retain_semiconducting`` and a metallic one with
``retain_semiconducting / s``.  Purity then evolves as

    p' = p r_s / (p r_s + (1 - p) r_m),

and the usable material fraction multiplies down pass over pass — the
purity/yield trade-off that makes ultra-pure material expensive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "SeparationProcess",
    "SortingResult",
    "GEL_CHROMATOGRAPHY",
    "DENSITY_GRADIENT",
    "DNA_SORTING",
    "passes_to_reach_purity",
]


@dataclass(frozen=True)
class SeparationProcess:
    """One sorting technology characterised by selectivity and retention."""

    name: str
    selectivity: float
    retain_semiconducting: float

    def __post_init__(self) -> None:
        if self.selectivity <= 1.0:
            raise ValueError(f"{self.name}: selectivity must exceed 1")
        if not 0.0 < self.retain_semiconducting <= 1.0:
            raise ValueError(f"{self.name}: retention must be in (0, 1]")

    @property
    def retain_metallic(self) -> float:
        return self.retain_semiconducting / self.selectivity

    def purity_after_pass(self, purity: float) -> float:
        """Semiconducting purity after one pass, given incoming ``purity``."""
        _check_probability("purity", purity)
        kept_semi = purity * self.retain_semiconducting
        kept_metal = (1.0 - purity) * self.retain_metallic
        total = kept_semi + kept_metal
        if total == 0.0:
            raise ValueError("separation pass retained no material")
        return kept_semi / total

    def yield_of_pass(self, purity: float) -> float:
        """Fraction of incoming material surviving one pass."""
        _check_probability("purity", purity)
        return purity * self.retain_semiconducting + (1.0 - purity) * self.retain_metallic

    def run(self, initial_purity: float, n_passes: int) -> "SortingResult":
        """Apply ``n_passes`` and track purity and cumulative yield."""
        if n_passes < 0:
            raise ValueError(f"pass count must be >= 0, got {n_passes}")
        purity = initial_purity
        cumulative_yield = 1.0
        purity_history = [purity]
        for _ in range(n_passes):
            cumulative_yield *= self.yield_of_pass(purity)
            purity = self.purity_after_pass(purity)
            purity_history.append(purity)
        return SortingResult(
            process=self,
            purity=purity,
            cumulative_yield=cumulative_yield,
            purity_history=tuple(purity_history),
        )


@dataclass(frozen=True)
class SortingResult:
    """Outcome of a multi-pass sorting run."""

    process: SeparationProcess
    purity: float
    cumulative_yield: float
    purity_history: tuple[float, ...]

    @property
    def n_passes(self) -> int:
        return len(self.purity_history) - 1

    @property
    def metallic_fraction(self) -> float:
        return 1.0 - self.purity

    def nines(self) -> float:
        """Purity expressed in "nines": -log10(metallic fraction)."""
        if self.purity >= 1.0:
            return math.inf
        return -math.log10(self.metallic_fraction)


# Representative technology presets (selectivity per pass, retention).
GEL_CHROMATOGRAPHY = SeparationProcess("gel chromatography", selectivity=200.0,
                                       retain_semiconducting=0.80)
DENSITY_GRADIENT = SeparationProcess("density gradient", selectivity=60.0,
                                     retain_semiconducting=0.70)
DNA_SORTING = SeparationProcess("DNA sorting", selectivity=1000.0,
                                retain_semiconducting=0.50)


def passes_to_reach_purity(
    process: SeparationProcess,
    target_purity: float,
    initial_purity: float = 2.0 / 3.0,
    max_passes: int = 50,
) -> SortingResult:
    """Run passes until ``target_purity`` is reached (raises if unreachable)."""
    _check_probability("target purity", target_purity)
    purity = initial_purity
    cumulative_yield = 1.0
    history = [purity]
    for _ in range(max_passes):
        if purity >= target_purity:
            break
        cumulative_yield *= process.yield_of_pass(purity)
        purity = process.purity_after_pass(purity)
        history.append(purity)
    else:
        raise ValueError(
            f"{process.name} cannot reach purity {target_purity} in {max_passes} passes"
        )
    return SortingResult(
        process=process,
        purity=purity,
        cumulative_yield=cumulative_yield,
        purity_history=tuple(history),
    )


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")

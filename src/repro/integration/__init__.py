"""Wafer-scale integration statistics (Section V of the paper).

Growth chirality populations, separation (sorting) processes, placement
models (quartz-aligned growth and trench deposition), Monte-Carlo CNFET
array variability, and circuit yield models including the Shulaker
one-bit-computer scenario.
"""

from repro.integration.growth import GrowthDistribution
from repro.integration.placement import (
    AlignedGrowth,
    PlacementStatistics,
    TrenchDeposition,
)
from repro.integration.sorting import (
    DENSITY_GRADIENT,
    DNA_SORTING,
    GEL_CHROMATOGRAPHY,
    SeparationProcess,
    SortingResult,
    passes_to_reach_purity,
)
from repro.integration.variability import (
    ArrayResult,
    ArraySpec,
    CNFETArrayModel,
    DeviceSample,
)
from repro.integration.yields import (
    CircuitYield,
    GateYieldModel,
    SHULAKER_TRANSISTOR_COUNT,
    circuit_yield,
    purity_required_for_yield,
    shulaker_computer_yield,
)

__all__ = [
    "AlignedGrowth",
    "ArrayResult",
    "ArraySpec",
    "CNFETArrayModel",
    "CircuitYield",
    "DENSITY_GRADIENT",
    "DNA_SORTING",
    "DeviceSample",
    "GEL_CHROMATOGRAPHY",
    "GateYieldModel",
    "GrowthDistribution",
    "PlacementStatistics",
    "SHULAKER_TRANSISTOR_COUNT",
    "SeparationProcess",
    "SortingResult",
    "TrenchDeposition",
    "circuit_yield",
    "passes_to_reach_purity",
    "purity_required_for_yield",
    "shulaker_computer_yield",
]

"""Self-consistent ballistic top-of-barrier FET model.

Implements the Rahman-Guo-Datta-Lundstrom "theory of ballistic
nanotransistors" (IEEE TED 50, 1853 (2003)) for 1D carbon channels — the
same modelling level behind the FETToy-class simulators used by Ouyang et
al. (the source of the paper's Fig. 1) and behind the Stanford CNT-FET
compact models.

Model summary
-------------
The channel is represented by its single most-restrictive point (the top
of the source-drain barrier) with a rigid potential energy shift ``U``
applied to all subbands:

    U = U_L + U_C
    U_L = -q (alpha_G V_G + alpha_D V_D)                (Laplace part)
    U_C = (q^2 / C_sigma) * (N(U) - N0)                  (charging part)

where ``N(U)`` is the carrier density at the barrier top: +k states are
populated from the source reservoir and -k states from the drain,

    N = sum_j g_j/(2 pi) * [ int_0^inf f(E_j(k)+U - mu_S) dk
                           + int_0^inf f(E_j(k)+U - mu_D) dk ].

The solved ``U`` yields the Landauer current in closed form (F0
integrals).  Charge is integrated in k-space, which removes the van Hove
singularity of the 1D DOS from the numerics.  Per-unit-length
capacitances and densities are used throughout, so the charging energy is
independent of an (arbitrary) barrier length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.physics.bands import BandStructure1D
from repro.physics.constants import KB_EV, Q, ROOM_TEMPERATURE_K
from repro.transport.landauer import subband_ballistic_current

__all__ = ["BallisticParameters", "OperatingPoint", "TopOfBarrierSolver"]

_K_SAMPLES = 1200
_MAX_NEWTON_ITERATIONS = 200
# Bias points per vectorised solve slab: bounds the (points x k-samples)
# work arrays to a few MB while keeping numpy dispatch overhead amortised.
_BATCH_CHUNK = 256


@dataclass(frozen=True)
class BallisticParameters:
    """Electrostatic and thermal parameters of a top-of-barrier FET.

    Attributes
    ----------
    c_ins_f_per_m:
        Gate-insulator capacitance per unit channel length [F/m]
        (e.g. from :func:`repro.physics.electrostatics.gate_all_around_capacitance`).
    alpha_g:
        Gate control of the barrier, d(-U)/d(qV_G) in [0, 1].  1 means
        perfect gate control; realistic GAA devices reach ~0.85-0.95.
    alpha_d:
        Drain coupling to the barrier (DIBL-like), typically 0.02-0.1.
    ef_offset_ev:
        Position of the equilibrium source Fermi level relative to the
        first subband edge, mu_S - E_c1 [eV].  Negative values mean a
        barrier at zero gate bias (enhancement-mode device).
    temperature_k:
        Lattice/reservoir temperature [K].
    transmission:
        Energy-independent channel transmission in (0, 1]; use
        :func:`repro.transport.scattering.ballisticity` for a finite
        channel length.
    """

    c_ins_f_per_m: float
    alpha_g: float = 0.88
    alpha_d: float = 0.035
    ef_offset_ev: float = -0.32
    temperature_k: float = ROOM_TEMPERATURE_K
    transmission: float = 1.0

    def __post_init__(self) -> None:
        if self.c_ins_f_per_m <= 0.0:
            raise ValueError(f"c_ins must be positive, got {self.c_ins_f_per_m}")
        if not 0.0 < self.alpha_g <= 1.0:
            raise ValueError(f"alpha_g must be in (0, 1], got {self.alpha_g}")
        if not 0.0 <= self.alpha_d < 1.0:
            raise ValueError(f"alpha_d must be in [0, 1), got {self.alpha_d}")
        if self.temperature_k <= 0.0:
            raise ValueError(f"temperature must be positive, got {self.temperature_k}")
        if not 0.0 < self.transmission <= 1.0:
            raise ValueError(f"transmission must be in (0, 1], got {self.transmission}")


@dataclass(frozen=True)
class OperatingPoint:
    """Solution of the self-consistent barrier problem at one bias point."""

    vgs: float
    vds: float
    barrier_ev: float
    charge_per_m: float
    current_a: float
    iterations: int


class TopOfBarrierSolver:
    """Self-consistent ballistic FET solver for a 1D band structure.

    The solver is stateless across bias points except for cached k-space
    grids; it is safe to reuse one instance for full I-V surfaces.
    """

    def __init__(self, bands: BandStructure1D, params: BallisticParameters):
        self.bands = bands
        self.params = params
        # Subband edges relative to the equilibrium source Fermi level
        # (mu_S = 0): the first edge sits at -ef_offset above mu_S.
        first_edge = bands.subbands[0].edge_ev
        self._edges_ev = [
            band.edge_ev - first_edge - params.ef_offset_ev for band in bands.subbands
        ]
        self._kt = KB_EV * params.temperature_k
        self._n0 = self._density_per_m(barrier_ev=0.0, mu_s=0.0, mu_d=0.0)

    # -- public API --------------------------------------------------------
    def solve(self, vgs: float, vds: float) -> OperatingPoint:
        """Solve the barrier self-consistency at (V_GS, V_DS) and report I_D."""
        params = self.params
        mu_s, mu_d = 0.0, -vds
        u_laplace = -(params.alpha_g * vgs + params.alpha_d * vds)
        charging_ev_m = Q / params.c_ins_f_per_m  # [eV per (1/m) of density]

        barrier = u_laplace  # initial guess: no charging feedback
        iterations = 0
        for iterations in range(1, _MAX_NEWTON_ITERATIONS + 1):
            density = self._density_per_m(barrier, mu_s, mu_d)
            residual = barrier - u_laplace - charging_ev_m * (density - self._n0)
            if abs(residual) < 1e-9:
                break
            ddensity = self._density_derivative(barrier, mu_s, mu_d)
            slope = 1.0 - charging_ev_m * ddensity  # ddensity < 0 -> slope > 1
            step = -residual / slope
            # Damp large steps: the charge integral is exponential in U.
            max_step = 10.0 * self._kt
            step = max(-max_step, min(max_step, step))
            barrier += step
        density = self._density_per_m(barrier, mu_s, mu_d)
        current = self._current_a(barrier, mu_s, mu_d)
        return OperatingPoint(
            vgs=vgs,
            vds=vds,
            barrier_ev=barrier,
            charge_per_m=density,
            current_a=current,
            iterations=iterations,
        )

    def current(self, vgs: float, vds: float) -> float:
        """Drain current I_D [A] at the given bias."""
        return self.solve(vgs, vds).current_a

    def currents(self, vgs_values, vds_values) -> np.ndarray:
        """Batched elementwise drain currents [A] (arrays must broadcast).

        Runs the same damped barrier Newton as :meth:`solve` on whole
        slabs of bias points at once: every k-space integral covers all
        still-unconverged points of a slab, and points drop out of the
        active set as their residual passes the scalar tolerance.  The
        per-point iterates match :meth:`solve` to rounding error, at a
        fraction of its per-point dispatch cost — this is the entry the
        vectorised device models (and through them the compiled circuit
        assembly and curve tabulation) call.
        """
        currents, _ = self.solve_currents(vgs_values, vds_values)
        return currents

    def solve_currents(self, vgs_values, vds_values, barrier_guess=None):
        """Batched solve returning ``(currents, barriers)`` (broadcast shape).

        The exposed form of the chunked barrier Newton: callers that
        sweep smoothly varying bias families (the surrogate table fill)
        can feed one solve's barriers back as ``barrier_guess`` for the
        next, cutting the iteration count roughly in half.  With no
        guess the iterates are identical to :meth:`solve`.
        """
        vgs = np.asarray(vgs_values, dtype=float)
        vds = np.asarray(vds_values, dtype=float)
        if vgs.shape != vds.shape:
            vgs, vds = np.broadcast_arrays(vgs, vds)
        flat_vgs = np.ascontiguousarray(vgs.ravel())
        flat_vds = np.ascontiguousarray(vds.ravel())
        flat_guess = None
        if barrier_guess is not None:
            flat_guess = np.ascontiguousarray(
                np.broadcast_to(np.asarray(barrier_guess, dtype=float), vgs.shape).ravel()
            )
        out = np.empty(flat_vgs.size)
        barriers = np.empty(flat_vgs.size)
        for start in range(0, flat_vgs.size, _BATCH_CHUNK):
            chunk = slice(start, start + _BATCH_CHUNK)
            guess = None if flat_guess is None else flat_guess[chunk]
            out[chunk], barriers[chunk] = self._solve_chunk(
                flat_vgs[chunk], flat_vds[chunk], guess
            )
        return out.reshape(vgs.shape), barriers.reshape(vgs.shape)

    def iv_surface(self, vgs_values, vds_values) -> np.ndarray:
        """I_D [A] on the outer product grid (len(vgs), len(vds))."""
        vgs_values = np.asarray(vgs_values, dtype=float)
        vds_values = np.asarray(vds_values, dtype=float)
        return self.currents(vgs_values[:, None], vds_values[None, :])

    def grid_currents(self, vgs_values, vds_values) -> np.ndarray:
        """Warm-started table fill on the outer grid (len(vgs), len(vds)).

        Solves one ``vds`` column at a time, seeding each column's
        barrier Newton with the previous column's converged barriers —
        the barrier moves smoothly with drain bias, so later columns
        converge in a fraction of the cold-start iterations.  This is
        the batched fill entry the surrogate compiler consumes through
        :meth:`repro.devices.base.FETModel.grid_currents`.
        """
        vgs = np.asarray(vgs_values, dtype=float)
        vds = np.asarray(vds_values, dtype=float)
        out = np.empty((vgs.size, vds.size))
        barriers = None
        for j in range(vds.size):
            out[:, j], barriers = self.solve_currents(
                vgs, np.full(vgs.size, vds[j]), barrier_guess=barriers
            )
        return out

    def with_transmission(self, transmission: float) -> "TopOfBarrierSolver":
        """A copy of this solver with a different channel transmission."""
        return TopOfBarrierSolver(self.bands, replace(self.params, transmission=transmission))

    # -- internals ----------------------------------------------------------
    def _k_grid(self, band, edge_abs_ev: float, mu_max: float):
        """k grid covering occupations up to ~30 kT above the higher Fermi level."""
        e_top_rel = max(mu_max - edge_abs_ev, 0.0) + 30.0 * self._kt
        k_max = float(band.wavevector_per_m(band.edge_ev + e_top_rel))
        return np.linspace(0.0, k_max, _K_SAMPLES)

    def _density_per_m(self, barrier_ev: float, mu_s: float, mu_d: float) -> float:
        total = 0.0
        mu_max = max(mu_s, mu_d)
        for band, edge in zip(self.bands.subbands, self._edges_ev):
            edge_abs = edge + barrier_ev
            k = self._k_grid(band, edge_abs, mu_max)
            energy_abs = edge_abs + (band.energy_ev(k) - band.edge_ev)
            occ_s = _fermi((energy_abs - mu_s) / self._kt)
            occ_d = _fermi((energy_abs - mu_d) / self._kt)
            total += band.degeneracy / (2.0 * math.pi) * float(
                np.trapezoid(occ_s + occ_d, k)
            )
        return total

    def _density_derivative(self, barrier_ev: float, mu_s: float, mu_d: float) -> float:
        """dN/dU [1/(m eV)]; always negative (raising the barrier empties it)."""
        total = 0.0
        mu_max = max(mu_s, mu_d)
        for band, edge in zip(self.bands.subbands, self._edges_ev):
            edge_abs = edge + barrier_ev
            k = self._k_grid(band, edge_abs, mu_max)
            energy_abs = edge_abs + (band.energy_ev(k) - band.edge_ev)
            for mu in (mu_s, mu_d):
                x = np.clip((energy_abs - mu) / self._kt, -250.0, 250.0)
                dfde = -1.0 / (4.0 * self._kt * np.cosh(x / 2.0) ** 2)
                total += band.degeneracy / (2.0 * math.pi) * float(np.trapezoid(dfde, k))
        return total

    def _current_a(self, barrier_ev: float, mu_s: float, mu_d: float) -> float:
        total = 0.0
        for band, edge in zip(self.bands.subbands, self._edges_ev):
            total += subband_ballistic_current(
                edge_ev=edge + barrier_ev,
                degeneracy=band.degeneracy,
                mu_source_ev=mu_s,
                mu_drain_ev=mu_d,
                temperature_k=self.params.temperature_k,
                transmission=self.params.transmission,
            )
        return total

    # -- batched internals (one array axis = bias points) -----------------------
    def _solve_chunk(
        self, vgs: np.ndarray, vds: np.ndarray, barrier_guess: np.ndarray | None = None
    ):
        """(currents, barriers) of one slab of bias points.

        Mirrors :meth:`solve` exactly: same initial guess (unless a
        warm-start ``barrier_guess`` is given), residual tolerance, step
        damping and iteration cap — applied elementwise, with converged
        points frozen out of the active set.
        """
        params = self.params
        mu_d = -vds
        u_laplace = -(params.alpha_g * vgs + params.alpha_d * vds)
        charging_ev_m = Q / params.c_ins_f_per_m
        max_step = 10.0 * self._kt

        barrier = u_laplace.copy() if barrier_guess is None else barrier_guess.copy()
        active = np.arange(vgs.size)
        for _ in range(_MAX_NEWTON_ITERATIONS):
            density, cache = self._density_batch(barrier[active], mu_d[active])
            residual = (
                barrier[active]
                - u_laplace[active]
                - charging_ev_m * (density - self._n0)
            )
            keep = np.abs(residual) >= 1e-9
            if not keep.any():
                break
            active = active[keep]
            ddensity = self._density_derivative_batch(cache, keep, mu_d[active])
            slope = 1.0 - charging_ev_m * ddensity
            step = np.clip(-residual[keep] / slope, -max_step, max_step)
            barrier[active] += step
        return self._current_batch(barrier, mu_d), barrier

    def _k_grid_batch(self, band, edge_abs_ev: np.ndarray, mu_max: np.ndarray):
        e_top_rel = np.maximum(mu_max - edge_abs_ev, 0.0) + 30.0 * self._kt
        k_max = band.wavevector_per_m(band.edge_ev + e_top_rel)
        return np.linspace(0.0, k_max, _K_SAMPLES, axis=-1), k_max / (_K_SAMPLES - 1)

    def _density_batch(self, barrier_ev: np.ndarray, mu_d: np.ndarray):
        """Carrier densities of a point slab plus the per-band (energies, dk)
        cache the derivative pass reuses (the grids depend on the barrier
        only, so rebuilding them for dN/dU would double the work)."""
        total = np.zeros(barrier_ev.size)
        mu_max = np.maximum(0.0, mu_d)
        kt = self._kt
        cache = []
        for band, edge in zip(self.bands.subbands, self._edges_ev):
            edge_abs = edge + barrier_ev
            k, dk = self._k_grid_batch(band, edge_abs, mu_max)
            energy_abs = edge_abs[:, None] + (band.energy_ev(k) - band.edge_ev)
            occ = _fermi(energy_abs / kt) + _fermi((energy_abs - mu_d[:, None]) / kt)
            total += band.degeneracy / (2.0 * math.pi) * _trapz_uniform(occ, dk)
            cache.append((band.degeneracy, energy_abs, dk))
        return total, cache

    def _density_derivative_batch(
        self, cache: list, keep: np.ndarray, mu_d: np.ndarray
    ) -> np.ndarray:
        total = np.zeros(mu_d.size)
        kt = self._kt
        for degeneracy, energy_abs, dk in cache:
            energy_kept = energy_abs[keep]
            dk_kept = dk[keep]
            for mu in (None, mu_d):
                shifted = energy_kept if mu is None else energy_kept - mu[:, None]
                x = np.clip(shifted / kt, -250.0, 250.0)
                dfde = -1.0 / (4.0 * kt * np.cosh(x / 2.0) ** 2)
                total += degeneracy / (2.0 * math.pi) * _trapz_uniform(dfde, dk_kept)
        return total

    def _current_batch(self, barrier_ev: np.ndarray, mu_d: np.ndarray) -> np.ndarray:
        total = np.zeros(barrier_ev.size)
        for band, edge in zip(self.bands.subbands, self._edges_ev):
            total += subband_ballistic_current(
                edge_ev=edge + barrier_ev,
                degeneracy=band.degeneracy,
                mu_source_ev=0.0,
                mu_drain_ev=mu_d,
                temperature_k=self.params.temperature_k,
                transmission=self.params.transmission,
            )
        return total


def _fermi(x):
    return 1.0 / (1.0 + np.exp(np.clip(x, -500.0, 500.0)))


def _trapz_uniform(y: np.ndarray, dk: np.ndarray) -> np.ndarray:
    """Trapezoid integral along the last axis on a uniform grid of step dk."""
    interior = y.sum(axis=-1) - 0.5 * (y[..., 0] + y[..., -1])
    return interior * dk

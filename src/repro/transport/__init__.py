"""Transport models: Landauer currents, ballistic FET solver, MFP, tunneling."""

from repro.transport.ballistic import (
    BallisticParameters,
    OperatingPoint,
    TopOfBarrierSolver,
)
from repro.transport.landauer import (
    ballistic_current,
    numeric_landauer_current,
    quantum_conductance,
    subband_ballistic_current,
)
from repro.transport.scattering import MeanFreePath, ballisticity
from repro.transport.tunneling import (
    JunctionProfile,
    imaginary_dispersion_per_m,
    junction_btbt_transmission,
    wkb_transmission_uniform_field,
)

__all__ = [
    "BallisticParameters",
    "JunctionProfile",
    "MeanFreePath",
    "OperatingPoint",
    "TopOfBarrierSolver",
    "ballistic_current",
    "ballisticity",
    "imaginary_dispersion_per_m",
    "junction_btbt_transmission",
    "numeric_landauer_current",
    "quantum_conductance",
    "subband_ballistic_current",
    "wkb_transmission_uniform_field",
]

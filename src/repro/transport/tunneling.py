"""Band-to-band and Schottky tunneling for carbon-nanotube junctions.

Supports the paper's Section IV (CNT tunnel FETs): the gated PIN diode of
Fig. 6 turns on by band-to-band tunneling (BTBT) at the p-i junction when
the gate pulls the intrinsic region's bands below the source valence-band
edge.  Two ingredients:

* the **two-band imaginary dispersion** inside a CNT gap (Flietner form),

      kappa(E) = sqrt((E_g/2)^2 - E^2) / (hbar v_F),

  exact for the hyperbolic dispersion used elsewhere in this package, and

* a **WKB transmission** through a junction whose band edges relax over a
  screening length ``lambda`` (exponential profile), integrated over the
  tunnel window with Landauer statistics.

The same WKB machinery provides Schottky-barrier transmissions used by
the contact models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.physics.constants import HBAR, Q, VFERMI

__all__ = [
    "imaginary_dispersion_per_m",
    "wkb_transmission_uniform_field",
    "JunctionProfile",
    "junction_btbt_transmission",
]


def imaginary_dispersion_per_m(energy_ev, gap_ev: float, fermi_velocity: float = VFERMI):
    """Two-band evanescent wavevector kappa(E) [1/m] inside the gap.

    ``energy_ev`` is measured from midgap; kappa is maximal at midgap
    (E_g / (2 hbar v_F)) and vanishes at the band edges.
    """
    if gap_ev <= 0.0:
        raise ValueError(f"gap must be positive, got {gap_ev}")
    energy_ev = np.asarray(energy_ev, dtype=float)
    half_gap = gap_ev / 2.0
    inside = np.clip(half_gap**2 - energy_ev**2, 0.0, None)
    return np.sqrt(inside) * Q / (HBAR * fermi_velocity)


def wkb_transmission_uniform_field(
    gap_ev: float, field_v_per_m: float, fermi_velocity: float = VFERMI
) -> float:
    """WKB BTBT transmission through a uniform field F.

    T = exp(-pi E_g^2 / (4 hbar v_F q F)) — the analytic two-band result
    (integral of kappa over the triangular barrier of width E_g / qF).
    """
    if field_v_per_m <= 0.0:
        raise ValueError(f"field must be positive, got {field_v_per_m}")
    # Exponent: pi (E_g[J])^2 / (4 hbar v_F qF); qF [N] is the slope of the
    # potential energy, so the expression is dimensionless.
    exponent = (
        math.pi
        * (gap_ev * Q) ** 2
        / (4.0 * HBAR * fermi_velocity * Q * field_v_per_m)
    )
    return math.exp(-exponent)


@dataclass(frozen=True)
class JunctionProfile:
    """Band-edge profile across a gated p-i junction.

    The conduction/valence edges move from the source values to the
    channel values over a screening length ``lambda_nm`` with an
    exponential relaxation — the natural solution of the 1D screened
    Poisson equation that also defines the TFET's steepest achievable
    turn-on.

    Energies are midgap-referenced on the *source* side; ``delta_ev`` is
    the electrostatic potential-energy shift of the channel relative to
    the source (negative = channel bands pulled down, as under positive
    back-gate drive of the n-side in reverse bias).
    """

    gap_ev: float
    delta_ev: float
    lambda_nm: float

    def __post_init__(self) -> None:
        if self.gap_ev <= 0.0:
            raise ValueError(f"gap must be positive, got {self.gap_ev}")
        if self.lambda_nm <= 0.0:
            raise ValueError(f"screening length must be positive, got {self.lambda_nm}")

    def midgap_ev(self, x_nm):
        """Local midgap energy [eV] vs position (x < 0 source, x > 0 channel)."""
        x_nm = np.asarray(x_nm, dtype=float)
        response = np.where(
            x_nm < 0.0,
            0.5 * np.exp(x_nm / self.lambda_nm),
            1.0 - 0.5 * np.exp(-x_nm / self.lambda_nm),
        )
        return self.delta_ev * response

    def tunnel_window_ev(self) -> tuple[float, float]:
        """Energy window (lo, hi) where source valence overlaps channel conduction.

        Empty (lo >= hi) until the junction is staggered past breakover,
        i.e. until |delta| exceeds the gap.
        """
        source_valence_top = -self.gap_ev / 2.0
        channel_conduction_bottom = self.delta_ev + self.gap_ev / 2.0
        return channel_conduction_bottom, source_valence_top


def junction_btbt_transmission(
    profile: JunctionProfile,
    energy_ev,
    fermi_velocity: float = VFERMI,
    n_points: int = 400,
):
    """WKB transmission T(E) through the junction's forbidden region.

    For each energy the classically forbidden segment is where
    |E - midgap(x)| < E_g/2; kappa is integrated over it numerically.
    Energies outside the tunnel window return 0 transmission (no final
    states) and energies with no forbidden segment return 1.
    """
    energy_ev = np.atleast_1d(np.asarray(energy_ev, dtype=float))
    lo, hi = profile.tunnel_window_ev()
    span = 12.0 * profile.lambda_nm
    x_nm = np.linspace(-span, span, n_points)
    midgap = profile.midgap_ev(x_nm)
    dx_m = (x_nm[1] - x_nm[0]) * 1e-9

    transmission = np.zeros_like(energy_ev)
    for i, energy in enumerate(energy_ev):
        if not lo < energy < hi:
            continue
        local = energy - midgap
        kappa = imaginary_dispersion_per_m(local, profile.gap_ev, fermi_velocity)
        action = float(np.sum(kappa) * dx_m)
        transmission[i] = math.exp(-2.0 * action)
    if transmission.size == 1:
        return float(transmission[0])
    return transmission

"""Mean-free-path and ballisticity models for carbon channels.

Short-channel CNT-FETs are quasi-ballistic: the paper's introduction
argues that in this regime the source injection velocity — not mobility —
sets the current, and a carrier that travels one mean free path has
effectively reached the drain.  The standard reduction captures this with
an energy-averaged transmission

    T = lambda / (lambda + L)

where ``lambda`` is the combined mean free path (MFP) and ``L`` the
channel length.  MFP values follow the CNT transport literature: acoustic
phonon scattering with lambda_ap ~ 300 nm (diameter- and temperature-
scaled) and optical phonon emission with lambda_op ~ 15 nm once carriers
gain the ~0.16 eV phonon energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physics.constants import ROOM_TEMPERATURE_K

__all__ = ["MeanFreePath", "ballisticity", "series_channel_resistance_ohm"]

OPTICAL_PHONON_ENERGY_EV = 0.16
"""Zone-boundary/optical phonon energy of carbon nanotubes [eV]."""


@dataclass(frozen=True)
class MeanFreePath:
    """Diameter- and temperature-scaled mean free paths of a CNT.

    Reference values are for a d = 1.5 nm tube at 300 K; both acoustic and
    optical MFPs scale linearly with diameter, and the acoustic MFP
    inversely with temperature (phonon occupation).
    """

    diameter_nm: float = 1.5
    temperature_k: float = ROOM_TEMPERATURE_K
    acoustic_ref_nm: float = 300.0
    optical_ref_nm: float = 15.0

    def __post_init__(self) -> None:
        if self.diameter_nm <= 0.0:
            raise ValueError(f"diameter must be positive, got {self.diameter_nm}")
        if self.temperature_k <= 0.0:
            raise ValueError(f"temperature must be positive, got {self.temperature_k}")

    @property
    def acoustic_nm(self) -> float:
        """Acoustic-phonon MFP [nm] ~ 300 nm * (d / 1.5 nm) * (300 K / T)."""
        return (
            self.acoustic_ref_nm
            * (self.diameter_nm / 1.5)
            * (ROOM_TEMPERATURE_K / self.temperature_k)
        )

    @property
    def optical_nm(self) -> float:
        """Optical-phonon emission MFP [nm] ~ 15 nm * (d / 1.5 nm)."""
        return self.optical_ref_nm * (self.diameter_nm / 1.5)

    def effective_nm(self, bias_v: float = 0.0) -> float:
        """Matthiessen-combined MFP [nm].

        Optical emission only contributes once carriers can gain the
        phonon energy from the bias; below ~0.16 V it is frozen out and
        the acoustic MFP dominates — one reason CNT-FETs stay
        quasi-ballistic at the low supply voltages the paper targets.
        """
        if bias_v < OPTICAL_PHONON_ENERGY_EV:
            return self.acoustic_nm
        inverse = 1.0 / self.acoustic_nm + 1.0 / self.optical_nm
        return 1.0 / inverse


def ballisticity(channel_length_nm: float, mfp_nm: float) -> float:
    """Channel transmission T = lambda / (lambda + L) in (0, 1]."""
    if channel_length_nm < 0.0:
        raise ValueError(f"channel length must be >= 0, got {channel_length_nm}")
    if mfp_nm <= 0.0:
        raise ValueError(f"mean free path must be positive, got {mfp_nm}")
    return mfp_nm / (mfp_nm + channel_length_nm)


def series_channel_resistance_ohm(
    channel_length_nm: float,
    mfp_nm: float,
    quantum_resistance_ohm: float,
) -> float:
    """Two-terminal resistance R = R_Q / T = R_Q (1 + L / lambda) [Ohm].

    Reproduces the length scaling of CNT resistance measured by Franklin &
    Chen (Nature Nano 5, 858 (2010)), the paper's reference [16] with its
    ~11 kOhm short-channel floor.
    """
    if quantum_resistance_ohm <= 0.0:
        raise ValueError(
            f"quantum resistance must be positive, got {quantum_resistance_ohm}"
        )
    return quantum_resistance_ohm / ballisticity(channel_length_nm, mfp_nm)

"""Landauer transport: ballistic currents and conductances of 1D channels.

The Landauer current through a 1D conductor is

    I = (q / h) * integral M(E) T(E) [f_S(E) - f_D(E)] dE

with M(E) the mode count and T(E) the transmission.  For a single
parabolic-free subband with constant transmission the integral has the
closed form used throughout the ballistic FET literature:

    I_j = g_j T_j (q kT / h) [F0(eta_S) - F0(eta_D)],
    eta = (mu - E_edge) / kT,  F0(x) = ln(1 + e^x).

This module provides both the closed form and a general numerical
integrator (used by the tunneling models where T(E) is not constant).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.physics.bands import BandStructure1D
from repro.physics.constants import H, KB, Q, ROOM_TEMPERATURE_K
from repro.physics.fermi import fermi_dirac, fermi_integral_f0

__all__ = [
    "subband_ballistic_current",
    "ballistic_current",
    "numeric_landauer_current",
    "quantum_conductance",
]


def subband_ballistic_current(
    edge_ev: float,
    degeneracy: int,
    mu_source_ev: float,
    mu_drain_ev: float,
    temperature_k: float = ROOM_TEMPERATURE_K,
    transmission: float = 1.0,
) -> float:
    """Ballistic current [A] of one subband with constant transmission."""
    if not 0.0 <= transmission <= 1.0:
        raise ValueError(f"transmission must be in [0, 1], got {transmission}")
    kt_ev = KB * temperature_k / Q
    eta_s = (mu_source_ev - edge_ev) / kt_ev
    eta_d = (mu_drain_ev - edge_ev) / kt_ev
    prefactor = degeneracy * transmission * Q * KB * temperature_k / H
    return prefactor * (fermi_integral_f0(eta_s) - fermi_integral_f0(eta_d))


def ballistic_current(
    bands: BandStructure1D,
    barrier_shift_ev: float,
    mu_source_ev: float,
    mu_drain_ev: float,
    temperature_k: float = ROOM_TEMPERATURE_K,
    transmission: float = 1.0,
) -> float:
    """Total ballistic electron current [A] over all conduction subbands.

    ``barrier_shift_ev`` displaces every subband edge rigidly (the
    self-consistent top-of-barrier potential); edges are taken relative to
    the band structure's own reference, so callers supply chemical
    potentials on the same scale.
    """
    total = 0.0
    for band in bands.subbands:
        total += subband_ballistic_current(
            edge_ev=band.edge_ev + barrier_shift_ev,
            degeneracy=band.degeneracy,
            mu_source_ev=mu_source_ev,
            mu_drain_ev=mu_drain_ev,
            temperature_k=temperature_k,
            transmission=transmission,
        )
    return total


def numeric_landauer_current(
    transmission_fn: Callable[[np.ndarray], np.ndarray],
    mu_source_ev: float,
    mu_drain_ev: float,
    e_min_ev: float,
    e_max_ev: float,
    temperature_k: float = ROOM_TEMPERATURE_K,
    degeneracy: int = 4,
    n_points: int = 2001,
) -> float:
    """General Landauer integral I = (g q / h) int T(E) (f_S - f_D) dE [A].

    ``transmission_fn`` receives energies [eV] and returns the per-mode
    transmission (mode count folded in by the caller if needed beyond the
    overall ``degeneracy``).
    """
    if e_max_ev <= e_min_ev:
        raise ValueError(f"empty energy window [{e_min_ev}, {e_max_ev}]")
    energies = np.linspace(e_min_ev, e_max_ev, n_points)
    transmission = np.clip(np.asarray(transmission_fn(energies), dtype=float), 0.0, None)
    window = fermi_dirac(energies, mu_source_ev, temperature_k) - fermi_dirac(
        energies, mu_drain_ev, temperature_k
    )
    integral_ev = float(np.trapezoid(transmission * window, energies))
    return degeneracy * Q * Q / H * integral_ev  # (q/h) * [eV -> J] = q^2/h per eV


def quantum_conductance(
    bands: BandStructure1D,
    mu_ev: float,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Small-bias ballistic conductance G = (q^2/h) sum_j g_j <T_j> [S].

    Thermally averaged mode occupation: G = (q^2/h) sum_j g_j F_{-1}(eta_j)
    with eta_j = (mu - E_j)/kT.  At T -> 0 this reduces to the step-wise
    quantum of conductance per occupied subband.
    """
    kt_ev = KB * temperature_k / Q
    conductance = 0.0
    for band in bands.subbands:
        eta = (mu_ev - band.edge_ev) / kt_ev
        occupation = 1.0 / (1.0 + np.exp(np.clip(-eta, -500.0, 500.0)))
        conductance += band.degeneracy * occupation
    return conductance * Q * Q / H

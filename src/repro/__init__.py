"""repro — carbon-electronics device & circuit toolkit.

A from-scratch reproduction of Kreupl, "Advancing CMOS with Carbon
Electronics" (DATE 2014): CNT/GNR band structure, ballistic FET models,
a SPICE-class circuit simulator, tunnel FETs, contact models, a
del Alamo-style benchmark harness, wafer-scale integration statistics,
and a SUBNEG one-bit computer — every figure of the paper regenerable
from :mod:`repro.experiments`.

Quick start::

    from repro.devices import CNTFET
    fet = CNTFET.reference_device()
    print(fet.current(vgs=0.6, vds=0.5))   # ~2e-5 A

    from repro.experiments import run_fig2
    print(run_fig2().rows())
"""

from repro import analysis, benchmarking, circuit, devices, integration, logic, physics
from repro.devices import CNTFET, CNTTunnelFET, GNRFET
from repro.physics import ArmchairGNR, Chirality

__version__ = "1.0.0"

__all__ = [
    "ArmchairGNR",
    "CNTFET",
    "CNTTunnelFET",
    "Chirality",
    "GNRFET",
    "analysis",
    "benchmarking",
    "circuit",
    "devices",
    "integration",
    "logic",
    "physics",
]

"""Command-line interface: regenerate any paper artefact from the shell.

Usage::

    python -m repro fig1          # one artefact
    python -m repro table1 rf     # several
    python -m repro --list        # what's available
    python -m repro all           # everything (minutes)
    python -m repro cascade --physical   # physical CNT-FET device stack
    python -m repro lint          # contract linter (see repro.lint)

Each experiment prints the same (label, value) rows its benchmark
prints, so shell users and EXPERIMENTS.md readers see identical numbers.
``--physical`` swaps the circuit-level experiments (``cascade``,
``timing``, ``integration``) onto the surrogate-compiled ballistic
CNT-FET instead of the behavioural alpha-power stand-in — affordable
because device evaluation happens on the cached spline table
(:mod:`repro.devices.surrogate`), not the k-space integrals.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Callable

__all__ = [
    "main",
    "EXPERIMENTS",
    "PHYSICAL_EXPERIMENTS",
    "RESUMABLE_EXPERIMENTS",
]


def _physical_device():
    """The surrogate-compiled benchmark CNT-FET of the --physical stack."""
    from repro.experiments.cascade import physical_saturating_fet

    return physical_saturating_fet()


def _run_fig1() -> list[tuple]:
    from repro.experiments.fig1 import run_fig1

    return run_fig1().rows()


def _run_fig2() -> list[tuple]:
    from repro.experiments.fig2 import run_fig2

    return run_fig2().rows()


def _run_fig4() -> list[tuple]:
    from repro.experiments.fig4 import run_fig4

    return run_fig4().rows()


def _run_fig5() -> list[tuple]:
    from repro.benchmarking.fig5 import run_fig5_benchmark

    result = run_fig5_benchmark(gate_lengths_nm=(9.0, 30.0, 100.0))
    return [(f"{name} @ {length:g} nm [uA/um]", ion) for name, length, ion in result.rows()]


def _run_fig6() -> list[tuple]:
    from repro.experiments.fig6 import run_fig6

    return run_fig6().rows()


def _run_table1() -> list[tuple]:
    from repro.experiments.table1 import run_table1

    return [
        (claim, paper, measured) for claim, paper, measured in run_table1().rows()
    ]


def _run_integration(policy=None) -> list[tuple]:
    from repro.experiments.integration_stats import run_integration_stats

    return run_integration_stats(
        n_array_devices=2000, n_functional_trials=30, policy=policy
    ).rows()


def _run_rf() -> list[tuple]:
    from repro.experiments.rf_comparison import run_rf_comparison

    return run_rf_comparison().rows()


def _run_scaling() -> list[tuple]:
    from repro.experiments.scaling import run_voltage_scaling

    return run_voltage_scaling(supplies_v=(0.4, 0.5, 1.0)).rows()


def _run_cascade() -> list[tuple]:
    from repro.experiments.cascade import run_cascade

    return run_cascade().rows()


def _run_fabric(policy=None) -> list[tuple]:
    from repro.experiments.fabric_density import run_fabric_density

    return run_fabric_density(
        pitches_nm=(8.0, 32.0), purities=(0.9, 1.0), n_samples=3, policy=policy
    ).rows()


def _run_timing(device=None) -> list[tuple]:
    from repro.analysis.timing import (
        cv_over_i_delay_s,
        delay_energy_distribution,
        transient_delay_corner_sweep,
    )
    from repro.devices.empirical import AlphaPowerFET

    device = AlphaPowerFET() if device is None else device
    rows: list[tuple] = [
        ("CV/I delay @ 10 fF, 1 V [ps]", cv_over_i_delay_s(device, 10e-15, 1.0) * 1e12)
    ]
    corners = {"slow": (0.7, 0.05), "typical": (1.0, 0.0), "fast": (1.3, -0.05)}
    sweep = transient_delay_corner_sweep(device, corners)
    for label, delay, energy in zip(
        sweep.labels, sweep.average_delays_s, sweep.energies_j
    ):
        rows.append((f"{label} corner delay [ps]", float(delay) * 1e12))
        rows.append((f"{label} corner energy [fJ]", float(energy) * 1e15))
    rows.append(("corner delay spread (max/min)", sweep.spread()))
    distribution = delay_energy_distribution(
        device, 64, drive_sigma=0.15, vth_sigma_v=0.01, seed=20140314
    )
    rows.append(("MC delay mean [ps]", distribution.delay_mean_s * 1e12))
    rows.append(("MC delay sigma [ps]", distribution.delay_sigma_s * 1e12))
    rows.append(("MC energy mean [fJ]", distribution.energy_mean_j * 1e15))
    rows.append(("MC energy sigma [fJ]", distribution.energy_sigma_j * 1e15))
    return rows


def _run_ablations() -> list[tuple]:
    from repro.experiments.ablations import (
        run_ballisticity_ablation,
        run_contact_length_ablation,
        run_dark_space_ablation,
    )

    rows: list[tuple] = []
    dark = run_dark_space_ablation()
    rows.append(("dark-space SS penalty, InAs vs CNT @ 9 nm", dark.penalty_at(9.0, "InAs")))
    rows.append(("dark-space SS penalty, Si vs CNT @ 9 nm", dark.penalty_at(9.0, "Si")))
    ballistic = run_ballisticity_ablation(channel_lengths_nm=(9.0, 100.0, 1000.0))
    for length, transmission in zip(
        ballistic.channel_lengths_nm, ballistic.transmission
    ):
        rows.append((f"ballisticity @ {length:g} nm", float(transmission)))
    contact = run_contact_length_ablation(contact_lengths_nm=(5.0, 20.0, 640.0))
    for length, resistance in zip(
        contact.contact_lengths_nm, contact.series_resistance_ohm
    ):
        rows.append((f"series R @ L_c = {length:g} nm [kOhm]", float(resistance / 1e3)))
    return rows


def _run_surrogate() -> list[tuple]:
    from repro.experiments.surrogate_report import run_surrogate_report

    return run_surrogate_report().rows()


def _run_cascade_physical() -> list[tuple]:
    from repro.experiments.cascade import run_cascade

    return run_cascade(device_stack="physical").rows()


def _run_timing_physical() -> list[tuple]:
    return _run_timing(device=_physical_device())


def _run_integration_physical() -> list[tuple]:
    from repro.experiments.integration_stats import run_integration_stats

    return run_integration_stats(
        n_array_devices=2000, n_functional_trials=30, device=_physical_device()
    ).rows()


EXPERIMENTS: dict[str, tuple[str, Callable[[], list[tuple]]]] = {
    "fig1": ("CNT vs GNR FET at equal band gap", _run_fig1),
    "fig2": ("inverter study: saturation vs not", _run_fig2),
    "fig4": ("contact-resistance degradation", _run_fig4),
    "fig5": ("technology benchmark (del Alamo style)", _run_fig5),
    "fig6": ("CNT tunnel FET (gated PIN diode)", _run_fig6),
    "table1": ("in-text numeric claims", _run_table1),
    "integration": ("Section V integration statistics", _run_integration),
    "rf": ("Section II RF comparison (variation-aware)", _run_rf),
    "scaling": ("voltage scaling: CNT fabric vs Si trigate", _run_scaling),
    "fabric": ("aligned-fabric pitch/purity requirements", _run_fabric),
    "cascade": ("cascaded logic: level restoration vs collapse", _run_cascade),
    "ablations": ("design-choice ablations", _run_ablations),
    "timing": ("transient delay/energy: corners + device-spread MC", _run_timing),
    "surrogate": ("spline-surrogate accuracy and speedup report", _run_surrogate),
}

# Experiments that support the --physical device stack: same artefact,
# surrogate-compiled ballistic CNT-FET instead of the behavioural model.
PHYSICAL_EXPERIMENTS: dict[str, Callable[[], list[tuple]]] = {
    "cascade": _run_cascade_physical,
    "timing": _run_timing_physical,
    "integration": _run_integration_physical,
}

# Experiments whose Monte Carlo sweeps accept an ExecutionPolicy: with
# --resume DIR they run supervised with chunk checkpoints under DIR, so
# a killed run picks up where it left off.
RESUMABLE_EXPERIMENTS: dict[str, Callable[..., list[tuple]]] = {
    "fabric": _run_fabric,
    "integration": _run_integration,
}


def _resume_policy(resume_dir: str):
    """Supervised execution with chunk checkpoints under ``resume_dir``."""
    from repro.circuit.resilience import ExecutionPolicy

    return ExecutionPolicy(timeout_s=300.0, max_retries=2, checkpoint_root=resume_dir)


def _persist_report(report, resume_dir: str | None) -> str:
    """Write the salvaged RunReport next to the checkpoints (or in cwd)."""
    from pathlib import Path

    from repro.circuit.resilience import atomic_write_text

    target = Path(resume_dir) if resume_dir is not None else Path(".")
    path = target / "run-report.json"
    atomic_write_text(path, report.to_json())
    return str(path)


def _print_rows(title: str, rows: list[tuple]) -> None:
    print(f"=== {title} ===")
    for row in rows:
        label, *values = row
        rendered = "  ".join(
            f"{v:.6g}" if isinstance(v, float) else str(v) for v in values
        )
        print(f"  {label:45s} {rendered}")
    print()


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Static-analysis subcommand: delegate to the contract linter.
        from repro.lint.cli import main as lint_main

        return lint_main(arguments[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts of Kreupl, 'Advancing CMOS with "
        "Carbon Electronics' (DATE 2014).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (or 'all'); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--physical",
        action="store_true",
        help="run on the surrogate-compiled physical CNT-FET device stack "
        f"(supported: {', '.join(sorted(PHYSICAL_EXPERIMENTS))})",
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="run Monte Carlo sweeps supervised with chunk checkpoints "
        "under DIR; a rerun after a crash skips finished chunks "
        f"(supported: {', '.join(sorted(RESUMABLE_EXPERIMENTS))})",
    )
    args = parser.parse_args(arguments)

    if args.list or not args.experiments:
        for name, (description, _) in EXPERIMENTS.items():
            physical = " [--physical]" if name in PHYSICAL_EXPERIMENTS else ""
            print(f"{name:12s} {description}{physical}")
        return 0

    requested = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    if args.physical:
        unsupported = [name for name in requested if name not in PHYSICAL_EXPERIMENTS]
        if unsupported:
            parser.error(
                "--physical is not supported by: " + ", ".join(unsupported)
            )
    if args.resume is not None:
        if args.physical:
            parser.error("--resume cannot be combined with --physical")
        unsupported = [
            name for name in requested if name not in RESUMABLE_EXPERIMENTS
        ]
        if unsupported:
            parser.error("--resume is not supported by: " + ", ".join(unsupported))

    from repro.circuit.resilience import SweepExecutionError

    for name in requested:
        description, runner = EXPERIMENTS[name]
        if args.physical:
            description += " (physical CNT-FET stack)"
            runner = PHYSICAL_EXPERIMENTS[name]
        call = runner
        if args.resume is not None:
            policy = _resume_policy(args.resume)
            call = functools.partial(RESUMABLE_EXPERIMENTS[name], policy=policy)
        try:
            rows = call()
        except SweepExecutionError as error:
            # Salvage: persist the structured report, exit with one line.
            report_path = _persist_report(error.report, args.resume)
            print(
                f"repro {name}: FAILED — {error.report.one_line()} "
                f"(report: {report_path})",
                file=sys.stderr,
            )
            return 2
        except Exception as error:  # noqa: BLE001 — boundary of the CLI
            print(
                f"repro {name}: FAILED — {type(error).__name__}: {error}",
                file=sys.stderr,
            )
            return 1
        _print_rows(f"{name} — {description}", rows)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""RF figures of merit: the Section II argument against GNR-FETs.

The paper (after Schwierz's review, its Ref. [8]): to make an RF FET
fast the gate must be short, "however short channel GNR show no current
saturation, which as a consequence leads to very low voltage gain in the
FET and this only enables very low values of the maximum frequency of
oscillation (f_max)".

Quantified here with the standard quasi-static expressions:

    A_v   = gm / gds                                  (intrinsic gain)
    f_T   = gm / (2 pi C_gg)                          (unity current gain)
    f_max = f_T / (2 sqrt(R_g (gds + 2 pi f_T C_gd))) (unity power gain)

A device without saturation has gds of the same order as gm at its bias
point, so A_v <~ 1 and f_max collapses far below f_T, no matter how
short the gate.

gm and gds come from the device protocol's linearization
(:func:`small_signal` -> ``linearize_point``): analytic derivatives for
models that provide them (the PR 5 surrogates, every analytic FET),
central differences with the model-owned step only as the protocol's
explicit fallback — this module owns no finite-difference stepping of
its own.  :func:`rf_metrics_batch` evaluates the same figures over
process corners with one batched ``linearize`` call, feeding the
variation-aware distributions of ``experiments/rf_comparison.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.devices.base import FETModel

__all__ = [
    "RFDistribution",
    "RFMetrics",
    "intrinsic_gain",
    "rf_metrics",
    "rf_metrics_batch",
    "small_signal",
]


def small_signal(device: FETModel, vgs: float, vds: float) -> tuple[float, float]:
    """(gm, gds) [S] at one bias point via the device protocol.

    Routes through :meth:`~repro.devices.base.FETModel.linearize_point`:
    analytic derivatives wherever the model overrides it, the
    protocol's model-owned central-difference step as the explicit
    fallback.  The single linearization entry for every RF consumer in
    this module.
    """
    _, gm, gds = device.linearize_point(vgs, vds)
    return float(gm), float(gds)


def intrinsic_gain(device: FETModel, vgs: float, vds: float) -> float:
    """Intrinsic voltage gain A_v = gm / gds at a bias point."""
    gm, gds = small_signal(device, vgs, vds)
    if gds <= 0.0:
        return math.inf
    return gm / gds


def _validate_parasitics(
    c_gate_total_f: float, c_gate_drain_f: float | None, gate_resistance_ohm: float
) -> float:
    """Check the parasitic triple; returns the resolved C_gd."""
    if c_gate_total_f <= 0.0:
        raise ValueError(f"gate capacitance must be positive, got {c_gate_total_f}")
    if gate_resistance_ohm <= 0.0:
        raise ValueError(f"gate resistance must be positive, got {gate_resistance_ohm}")
    c_gd = c_gate_total_f / 3.0 if c_gate_drain_f is None else c_gate_drain_f
    if c_gd <= 0.0 or c_gd > c_gate_total_f:
        raise ValueError("gate-drain capacitance must be in (0, C_gg]")
    return c_gd


@dataclass(frozen=True)
class RFMetrics:
    """Quasi-static RF figures of merit at one bias point."""

    gm_s: float
    gds_s: float
    ft_hz: float
    fmax_hz: float

    @property
    def intrinsic_gain(self) -> float:
        if self.gds_s <= 0.0:
            return math.inf
        return self.gm_s / self.gds_s

    @property
    def fmax_over_ft(self) -> float:
        return self.fmax_hz / self.ft_hz


def rf_metrics(
    device: FETModel,
    vgs: float,
    vds: float,
    c_gate_total_f: float,
    c_gate_drain_f: float | None = None,
    gate_resistance_ohm: float = 100.0,
) -> RFMetrics:
    """Compute f_T and f_max for a device at a bias point.

    Parameters
    ----------
    c_gate_total_f:
        Total gate capacitance C_gg [F] (from the device's gate stack).
    c_gate_drain_f:
        Gate-drain (Miller) capacitance; defaults to C_gg / 3, a typical
        self-aligned partition.
    gate_resistance_ohm:
        Series gate resistance entering the f_max expression.
    """
    c_gd = _validate_parasitics(c_gate_total_f, c_gate_drain_f, gate_resistance_ohm)
    gm, gds = small_signal(device, vgs, vds)
    gds = max(gds, 0.0)
    if gm <= 0.0:
        raise ValueError("device has no transconductance at this bias")
    ft = gm / (2.0 * math.pi * c_gate_total_f)
    denominator = gate_resistance_ohm * (gds + 2.0 * math.pi * ft * c_gd)
    fmax = ft / (2.0 * math.sqrt(denominator)) if denominator > 0.0 else math.inf
    return RFMetrics(gm_s=gm, gds_s=gds, ft_hz=ft, fmax_hz=fmax)


@dataclass(frozen=True)
class RFDistribution:
    """RF figures of merit over a stack of process corners.

    One entry per corner, in corner order; produced by
    :func:`rf_metrics_batch` from
    :class:`~repro.circuit.sweep.FETVariation` draws.
    """

    gm_s: np.ndarray
    gds_s: np.ndarray
    ft_hz: np.ndarray
    fmax_hz: np.ndarray

    @property
    def n_instances(self) -> int:
        return self.gm_s.shape[0]

    @property
    def intrinsic_gain(self) -> np.ndarray:
        """Per-corner A_v = gm / gds; +inf where gds is clipped to zero."""
        gain = np.full(self.n_instances, np.inf)
        positive = self.gds_s > 0.0
        gain[positive] = self.gm_s[positive] / self.gds_s[positive]
        return gain


def rf_metrics_batch(
    device: FETModel,
    vgs: float,
    vds: float,
    c_gate_total_f: float,
    *,
    drive_scale: np.ndarray,
    vth_shift_v: np.ndarray,
    c_gate_drain_f: float | None = None,
    gate_resistance_ohm: float = 100.0,
) -> RFDistribution:
    """RF figures of merit over process corners, one batched linearization.

    Applies the :class:`~repro.circuit.sweep.FETVariation` perturbation
    semantics — corner ``i`` conducts
    ``drive_scale[i] * I(vgs - vth_shift_v[i], vds)`` — so ``gm`` and
    ``gds`` scale with drive strength and follow the shifted gate
    overdrive.  All corners go through one batched
    :meth:`~repro.devices.base.FETModel.linearize` call (analytic for
    models that provide derivatives); with nominal variation
    (scale 1, shift 0) every entry matches the scalar
    :func:`rf_metrics` value to rounding.
    """
    c_gd = _validate_parasitics(c_gate_total_f, c_gate_drain_f, gate_resistance_ohm)
    scale = np.atleast_1d(np.asarray(drive_scale, dtype=float))
    shift = np.atleast_1d(np.asarray(vth_shift_v, dtype=float))
    if scale.shape != shift.shape or scale.ndim != 1:
        raise ValueError(
            "drive_scale and vth_shift_v must be matching 1-D corner vectors, "
            f"got {scale.shape} and {shift.shape}"
        )
    _, gm, gds = device.linearize(vgs - shift, np.full(shift.shape, float(vds)))
    gm = gm * scale
    gds = np.maximum(gds * scale, 0.0)
    if np.any(gm <= 0.0):
        raise ValueError("device has no transconductance at this bias")
    ft = gm / (2.0 * math.pi * c_gate_total_f)
    denominator = gate_resistance_ohm * (gds + 2.0 * math.pi * ft * c_gd)
    fmax = np.full(scale.shape, np.inf)
    positive = denominator > 0.0
    fmax[positive] = ft[positive] / (2.0 * np.sqrt(denominator[positive]))
    return RFDistribution(gm_s=gm, gds_s=gds, ft_hz=ft, fmax_hz=fmax)

"""RF figures of merit: the Section II argument against GNR-FETs.

The paper (after Schwierz's review, its Ref. [8]): to make an RF FET
fast the gate must be short, "however short channel GNR show no current
saturation, which as a consequence leads to very low voltage gain in the
FET and this only enables very low values of the maximum frequency of
oscillation (f_max)".

Quantified here with the standard quasi-static expressions:

    A_v   = gm / gds                                  (intrinsic gain)
    f_T   = gm / (2 pi C_gg)                          (unity current gain)
    f_max = f_T / (2 sqrt(R_g (gds + 2 pi f_T C_gd))) (unity power gain)

A device without saturation has gds of the same order as gm at its bias
point, so A_v <~ 1 and f_max collapses far below f_T, no matter how
short the gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.devices.base import FETModel, output_conductance, transconductance

__all__ = ["RFMetrics", "rf_metrics", "intrinsic_gain"]


def intrinsic_gain(device: FETModel, vgs: float, vds: float) -> float:
    """Intrinsic voltage gain A_v = gm / gds at a bias point."""
    gm = transconductance(device, vgs, vds)
    gds = output_conductance(device, vgs, vds)
    if gds <= 0.0:
        return math.inf
    return gm / gds


@dataclass(frozen=True)
class RFMetrics:
    """Quasi-static RF figures of merit at one bias point."""

    gm_s: float
    gds_s: float
    ft_hz: float
    fmax_hz: float

    @property
    def intrinsic_gain(self) -> float:
        if self.gds_s <= 0.0:
            return math.inf
        return self.gm_s / self.gds_s

    @property
    def fmax_over_ft(self) -> float:
        return self.fmax_hz / self.ft_hz


def rf_metrics(
    device: FETModel,
    vgs: float,
    vds: float,
    c_gate_total_f: float,
    c_gate_drain_f: float | None = None,
    gate_resistance_ohm: float = 100.0,
) -> RFMetrics:
    """Compute f_T and f_max for a device at a bias point.

    Parameters
    ----------
    c_gate_total_f:
        Total gate capacitance C_gg [F] (from the device's gate stack).
    c_gate_drain_f:
        Gate-drain (Miller) capacitance; defaults to C_gg / 3, a typical
        self-aligned partition.
    gate_resistance_ohm:
        Series gate resistance entering the f_max expression.
    """
    if c_gate_total_f <= 0.0:
        raise ValueError(f"gate capacitance must be positive, got {c_gate_total_f}")
    if gate_resistance_ohm <= 0.0:
        raise ValueError(f"gate resistance must be positive, got {gate_resistance_ohm}")
    c_gd = c_gate_total_f / 3.0 if c_gate_drain_f is None else c_gate_drain_f
    if c_gd <= 0.0 or c_gd > c_gate_total_f:
        raise ValueError("gate-drain capacitance must be in (0, C_gg]")

    gm = transconductance(device, vgs, vds)
    gds = max(output_conductance(device, vgs, vds), 0.0)
    if gm <= 0.0:
        raise ValueError("device has no transconductance at this bias")
    ft = gm / (2.0 * math.pi * c_gate_total_f)
    denominator = gate_resistance_ohm * (gds + 2.0 * math.pi * ft * c_gd)
    fmax = ft / (2.0 * math.sqrt(denominator)) if denominator > 0.0 else math.inf
    return RFMetrics(gm_s=gm, gds_s=gds, ft_hz=ft, fmax_hz=fmax)

"""Static noise margin of cross-coupled inverters (butterfly analysis).

Extends the paper's Fig. 2 noise-margin argument from a single inverter
to the storage element that depends on it: two cross-coupled inverters
hold a bit only if the butterfly plot (the VTC ``y = f(x)`` overlaid
with its mirror ``x = f(y)``) encloses two lobes; the static noise
margin (Seevinck) is the side of the largest square inscribed in the
smaller lobe.  Non-saturating devices — whose single-inverter gain never
reaches one — produce a butterfly with a single crossing and zero SNM:
they cannot store state.

Implementation: a square of side ``s`` fits in the upper-left lobe iff
its top-right corner stays under curve A and its bottom-left corner
stays right of curve B,

    y0 + s <= f(x0 + s)   and   x0 >= f(y0)  (i.e. y0 >= f^-1(x0)),

because ``f`` is monotone decreasing, so the corners are the binding
points.  Maximising ``s`` over ``x0`` (with ``y0`` at its minimum
``f^-1(x0)``) gives the upper-lobe SNM; the lower lobe is the mirror
image.  Bistability is checked first via the crossings of
``f(f(x)) = x``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.sweep import SweepPlan

__all__ = ["ButterflyResult", "SNMCornerSweep", "butterfly_snm", "snm_corner_sweep"]


@dataclass(frozen=True)
class ButterflyResult:
    """Static noise margins of a cross-coupled inverter pair."""

    snm_low: float
    snm_high: float
    is_bistable: bool

    @property
    def snm(self) -> float:
        """Worst-case static noise margin [V]."""
        return min(self.snm_low, self.snm_high)


def butterfly_snm(v_in, v_out, n_grid: int = 801) -> ButterflyResult:
    """SNM of a latch built from two inverters with the given VTC.

    ``v_in``/``v_out`` sample one inverter's transfer curve (input
    strictly increasing, output monotone non-increasing).
    """
    x = np.asarray(v_in, dtype=float)
    y = np.asarray(v_out, dtype=float)
    if x.size != y.size or x.size < 5:
        raise ValueError("need matching v_in/v_out arrays with >= 5 points")
    if np.any(np.diff(x) <= 0.0):
        raise ValueError("v_in must be strictly increasing")

    # Force strict monotone decrease so f and f^-1 are interpolatable.
    y_mono = np.minimum.accumulate(y)
    jitter = 1e-12 * np.arange(y_mono.size)
    y_mono = y_mono - jitter

    def f(values):
        return np.interp(values, x, y_mono)

    def f_inverse(values):
        return np.interp(values, y_mono[::-1], x[::-1])

    if not _is_bistable(x, f):
        return ButterflyResult(snm_low=0.0, snm_high=0.0, is_bistable=False)

    snm_high = _lobe_snm(x, f, f_inverse, n_grid)
    # Lower lobe: mirror the system through the diagonal — equivalent to
    # analysing the inverse curve g = f^-1 (swap the axes' roles).
    x_lo = np.sort(y_mono)
    snm_low = _lobe_snm(x_lo, f_inverse, f, n_grid)
    is_bistable = snm_low > 1e-6 and snm_high > 1e-6
    if not is_bistable:
        return ButterflyResult(snm_low=0.0, snm_high=0.0, is_bistable=False)
    return ButterflyResult(snm_low=snm_low, snm_high=snm_high, is_bistable=True)


@dataclass(frozen=True)
class SNMCornerSweep:
    """Butterfly SNM across device corners of a cross-coupled cell."""

    labels: tuple[str, ...]
    results: tuple[ButterflyResult, ...]

    @property
    def snm_v(self) -> np.ndarray:
        """Worst-case SNM [V] per corner, in label order."""
        return np.array([r.snm for r in self.results])

    def worst_corner(self) -> tuple[str, ButterflyResult]:
        """The corner with the smallest noise margin."""
        index = int(np.argmin(self.snm_v))
        return self.labels[index], self.results[index]

    def all_bistable(self) -> bool:
        return all(r.is_bistable for r in self.results)


def _snm_corner_kernel(corner, rng, payload):
    """Butterfly analysis of one (label, nfet, pfet) corner."""
    from repro.circuit.cells import inverter_vtc

    _label, nfet, pfet = corner
    vdd, n_points = payload
    v_in, v_out, _ = inverter_vtc(nfet, pfet, vdd=vdd, n_points=n_points)
    return butterfly_snm(v_in, v_out)


def snm_corner_sweep(
    corners,
    vdd: float = 1.0,
    n_points: int = 201,
    chunk_size: int | None = None,
    workers: int | None = None,
) -> SNMCornerSweep:
    """Butterfly SNM of a latch at every device corner, via the sweep engine.

    ``corners`` maps a label to either an n-type :class:`~repro.devices.
    base.FETModel` (the p-type is derived by mirroring) or an explicit
    ``(nfet, pfet)`` pair — e.g. slow/typical/fast drive corners of the
    paper's Fig. 2 devices.  Each corner solves its own continuation DC
    sweep, so large corner grids benefit from ``workers``.
    """
    labels: list[str] = []
    resolved: list[tuple] = []
    for label, devices in dict(corners).items():
        nfet, pfet = devices if isinstance(devices, tuple) else (devices, None)
        labels.append(str(label))
        resolved.append((str(label), nfet, pfet))
    if not resolved:
        raise ValueError("need at least one corner")
    sweep = SweepPlan(_snm_corner_kernel, payload=(vdd, n_points))
    results = sweep.run(resolved, chunk_size=chunk_size, workers=workers)
    return SNMCornerSweep(labels=tuple(labels), results=tuple(results))


def _is_bistable(x: np.ndarray, f) -> bool:
    """Loop gain above one at the metastable point f(x_m) = x_m.

    For a monotone VTC the latch is bistable exactly when the two-
    inverter loop gain |f'(x_m)|^2 exceeds 1, i.e. |f'(x_m)| > 1.
    """
    diff = f(x) - x
    signs = np.sign(diff)
    crossing = np.nonzero(np.diff(signs) != 0)[0]
    if crossing.size == 0:
        return False
    i = int(crossing[0])
    t = diff[i] / (diff[i] - diff[i + 1])
    x_m = float(x[i] + t * (x[i + 1] - x[i]))
    h = max(1e-4 * (x[-1] - x[0]), 1e-9)
    slope = (f(x_m + h) - f(x_m - h)) / (2.0 * h)
    return abs(slope) > 1.0


def _lobe_snm(x: np.ndarray, f, f_inverse, n_grid: int) -> float:
    """Largest inscribed square in one lobe (see module docstring)."""
    span = float(x[-1] - x[0])
    if span <= 0.0:
        return 0.0
    x0_grid = np.linspace(x[0], x[-1], n_grid)
    s_grid = np.linspace(0.0, span, n_grid)
    y0_min = f_inverse(x0_grid)  # smallest y0 right of curve B
    # headroom(x0, s) = f(x0 + s) - s - y0_min(x0); feasible where >= 0.
    corner_x = x0_grid[:, None] + s_grid[None, :]
    headroom = f(corner_x) - s_grid[None, :] - y0_min[:, None]
    feasible = headroom >= 0.0
    if not feasible.any():
        return 0.0
    best_index = np.max(np.where(feasible.any(axis=0))[0])
    return float(s_grid[best_index])

"""Voltage-transfer-curve metrics: noise margins, gain, switching threshold.

The paper's Fig. 2 argument is quantified here: an inverter built from
saturating FETs has unity-gain points close to the rails (noise margins
~0.4 V at VDD = 1 V), while the non-saturating inverter's gain never
reaches one, so its noise margin — "the voltage point in the voltage
transfer curve where the absolute gain reaches unity" — is essentially
zero and the logic levels are undefined.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VTCMetrics", "analyze_vtc"]


@dataclass(frozen=True)
class VTCMetrics:
    """Figures of merit of an inverter voltage transfer curve.

    ``nm_low``/``nm_high`` are the static noise margins; both are 0 when
    the curve never reaches unity gain (no regenerative region).
    ``switching_threshold_v`` is the V_in = V_out crossing.
    """

    v_out_high: float
    v_out_low: float
    v_il: float | None
    v_ih: float | None
    nm_low: float
    nm_high: float
    max_abs_gain: float
    switching_threshold_v: float
    has_regeneration: bool


def analyze_vtc(v_in, v_out) -> VTCMetrics:
    """Extract inverter metrics from a sampled VTC (v_in must be increasing)."""
    v_in = np.asarray(v_in, dtype=float)
    v_out = np.asarray(v_out, dtype=float)
    if v_in.size != v_out.size or v_in.size < 5:
        raise ValueError("need matching v_in/v_out arrays with >= 5 points")
    if np.any(np.diff(v_in) <= 0.0):
        raise ValueError("v_in must be strictly increasing")

    gain = np.gradient(v_out, v_in)
    max_abs_gain = float(np.max(np.abs(gain)))
    v_out_high = float(v_out[0])
    v_out_low = float(v_out[-1])

    unity = np.abs(gain) >= 1.0
    if not np.any(unity):
        v_il = v_ih = None
        nm_low = nm_high = 0.0
        has_regeneration = False
    else:
        first = int(np.argmax(unity))
        last = int(v_in.size - 1 - np.argmax(unity[::-1]))
        v_il = _interp_unity_crossing(v_in, gain, first, rising_into_region=True)
        v_ih = _interp_unity_crossing(v_in, gain, last, rising_into_region=False)
        # Classic static noise margins.
        nm_low = max(v_il - v_out_low, 0.0)
        nm_high = max(v_out_high - v_ih, 0.0)
        has_regeneration = True

    switching = _switching_threshold(v_in, v_out)
    return VTCMetrics(
        v_out_high=v_out_high,
        v_out_low=v_out_low,
        v_il=v_il,
        v_ih=v_ih,
        nm_low=nm_low,
        nm_high=nm_high,
        max_abs_gain=max_abs_gain,
        switching_threshold_v=switching,
        has_regeneration=has_regeneration,
    )


def _interp_unity_crossing(
    v_in: np.ndarray, gain: np.ndarray, index: int, rising_into_region: bool
) -> float:
    """Linearly interpolate where |gain| crosses 1 next to ``index``."""
    abs_gain = np.abs(gain)
    if rising_into_region:
        lo = max(index - 1, 0)
        hi = index
    else:
        lo = index
        hi = min(index + 1, v_in.size - 1)
    g_lo, g_hi = abs_gain[lo], abs_gain[hi]
    if g_hi == g_lo:
        return float(v_in[index])
    t = (1.0 - g_lo) / (g_hi - g_lo)
    t = float(np.clip(t, 0.0, 1.0))
    return float(v_in[lo] + t * (v_in[hi] - v_in[lo]))


def _switching_threshold(v_in: np.ndarray, v_out: np.ndarray) -> float:
    """First crossing of v_out = v_in.

    Samples lying exactly on the crossing (``diff == 0``, where
    ``np.sign`` returns 0) are answered directly instead of being fed
    into the interpolation, whose ``diff[i] - diff[i+1]`` denominator
    can vanish on such points.
    """
    diff = v_out - v_in
    exact = np.nonzero(diff == 0.0)[0]
    signs = np.sign(diff)
    crossings = np.nonzero(np.diff(signs) != 0)[0]
    if exact.size and (crossings.size == 0 or int(exact[0]) <= int(crossings[0]) + 1):
        return float(v_in[int(exact[0])])
    if crossings.size == 0:
        return float(v_in[int(np.argmin(np.abs(diff)))])
    i = int(crossings[0])
    denominator = diff[i] - diff[i + 1]
    if denominator == 0.0:
        return float(v_in[i])
    t = diff[i] / denominator
    return float(v_in[i] + t * (v_in[i + 1] - v_in[i]))

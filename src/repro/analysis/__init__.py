"""Figure-of-merit extraction: I-V metrics, VTC metrics, timing/energy."""

from repro.analysis.iv import (
    dibl_mv_per_v,
    ion_at_fixed_ioff,
    ion_ioff_ratio,
    saturation_index,
    subthreshold_swing_mv_per_decade,
    threshold_voltage,
)
from repro.analysis.rf import (
    RFDistribution,
    RFMetrics,
    intrinsic_gain,
    rf_metrics,
    rf_metrics_batch,
    small_signal,
)
from repro.analysis.snm import ButterflyResult, butterfly_snm
from repro.analysis.timing import (
    DelayMetrics,
    cv_over_i_delay_s,
    intrinsic_energy_delay,
    propagation_delays,
    supply_energy_j,
)
from repro.analysis.vtc import VTCMetrics, analyze_vtc

__all__ = [
    "DelayMetrics",
    "ButterflyResult",
    "RFDistribution",
    "RFMetrics",
    "VTCMetrics",
    "analyze_vtc",
    "butterfly_snm",
    "cv_over_i_delay_s",
    "dibl_mv_per_v",
    "intrinsic_energy_delay",
    "intrinsic_gain",
    "rf_metrics",
    "rf_metrics_batch",
    "small_signal",
    "ion_at_fixed_ioff",
    "ion_ioff_ratio",
    "propagation_delays",
    "saturation_index",
    "subthreshold_swing_mv_per_decade",
    "supply_energy_j",
    "threshold_voltage",
]

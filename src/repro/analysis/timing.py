"""Timing and energy metrics for logic transients.

Extracts propagation delays and switching energy from
:class:`repro.circuit.TransientResult` waveforms, and provides the
first-order CV/I delay estimator used to compare device technologies
before running full transients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.sweep import SweepPlan
from repro.circuit.transient import TransientResult
from repro.devices.base import FETModel

__all__ = [
    "DelayMetrics",
    "DelayCornerSweep",
    "propagation_delays",
    "supply_energy_j",
    "cv_over_i_delay_s",
    "delay_corner_sweep",
    "intrinsic_energy_delay",
]


@dataclass(frozen=True)
class DelayMetrics:
    """50 %-crossing propagation delays of one logic transition pair."""

    tp_hl_s: float
    tp_lh_s: float

    @property
    def average_s(self) -> float:
        return 0.5 * (self.tp_hl_s + self.tp_lh_s)


def _crossings(time_s: np.ndarray, signal: np.ndarray, level: float, rising: bool):
    above = signal > level
    if rising:
        mask = above[1:] & ~above[:-1]
    else:
        mask = ~above[1:] & above[:-1]
    indices = np.nonzero(mask)[0]
    times = []
    for i in indices:
        v0, v1 = signal[i], signal[i + 1]
        if v1 == v0:
            times.append(float(time_s[i]))
            continue
        t = (level - v0) / (v1 - v0)
        times.append(float(time_s[i] + t * (time_s[i + 1] - time_s[i])))
    return times


def propagation_delays(
    result: TransientResult,
    input_node: str,
    output_node: str,
    vdd: float,
) -> DelayMetrics:
    """tpHL / tpLH between the 50 % points of input and output waveforms."""
    t = result.time_s
    v_in = result.voltage(input_node)
    v_out = result.voltage(output_node)
    mid = vdd / 2.0
    in_rise = _crossings(t, v_in, mid, rising=True)
    in_fall = _crossings(t, v_in, mid, rising=False)
    out_fall = _crossings(t, v_out, mid, rising=False)
    out_rise = _crossings(t, v_out, mid, rising=True)
    tp_hl = _first_delay(in_rise, out_fall)
    tp_lh = _first_delay(in_fall, out_rise)
    if tp_hl is None or tp_lh is None:
        raise ValueError("waveforms do not contain a full output transition pair")
    return DelayMetrics(tp_hl_s=tp_hl, tp_lh_s=tp_lh)


def _first_delay(input_times, output_times) -> float | None:
    for t_in in input_times:
        later = [t for t in output_times if t > t_in]
        if later:
            return later[0] - t_in
    return None


def supply_energy_j(
    result: TransientResult,
    supply_source: str,
    vdd: float,
    t_start_s: float = 0.0,
    t_stop_s: float | None = None,
) -> float:
    """Energy drawn from the supply over a window: E = VDD * int i dt [J].

    The supply source current is negative when delivering power (branch
    convention), hence the sign flip.
    """
    t = result.time_s
    i = -result.source_current(supply_source)
    t_stop_s = float(t[-1]) if t_stop_s is None else t_stop_s
    mask = (t >= t_start_s) & (t <= t_stop_s)
    if mask.sum() < 2:
        raise ValueError("energy window contains fewer than 2 samples")
    return float(vdd * np.trapezoid(i[mask], t[mask]))


def cv_over_i_delay_s(
    device: FETModel, load_f: float, vdd: float
) -> float:
    """First-order switching delay C V / I_on [s] of a device driving a load."""
    if load_f <= 0.0 or vdd <= 0.0:
        raise ValueError("load and vdd must be positive")
    i_on = device.current(vdd, vdd)
    if i_on <= 0.0:
        raise ValueError("device delivers no on-current at (vdd, vdd)")
    return load_f * vdd / i_on


def intrinsic_energy_delay(
    device: FETModel, load_f: float, vdd: float
) -> tuple[float, float]:
    """(switching energy C V^2, CV/I delay) of a device-load stage."""
    return load_f * vdd * vdd, cv_over_i_delay_s(device, load_f, vdd)


@dataclass(frozen=True)
class DelayCornerSweep:
    """CV/I delay and switching energy across device corners."""

    labels: tuple[str, ...]
    delays_s: np.ndarray
    energies_j: np.ndarray

    def worst_corner(self) -> tuple[str, float]:
        """The slowest corner and its delay [s]."""
        index = int(np.argmax(self.delays_s))
        return self.labels[index], float(self.delays_s[index])

    def spread(self) -> float:
        """Max/min delay ratio across the corners."""
        return float(self.delays_s.max() / self.delays_s.min())


def _delay_corner_kernel(corner, rng, payload):
    """(energy, delay) of one (label, device) corner."""
    _label, device = corner
    load_f, vdd = payload
    return intrinsic_energy_delay(device, load_f, vdd)


def delay_corner_sweep(
    corners,
    load_f: float,
    vdd: float,
    chunk_size: int | None = None,
    workers: int | None = None,
) -> DelayCornerSweep:
    """First-order delay/energy at every device corner, via the sweep engine.

    ``corners`` maps a label to a device model (slow/typical/fast
    process corners, different technologies, ...); the corner loop
    routes through :meth:`repro.circuit.sweep.SweepPlan.run` like every
    other sweep-shaped analysis.
    """
    items = [(str(label), device) for label, device in dict(corners).items()]
    if not items:
        raise ValueError("need at least one corner")
    sweep = SweepPlan(_delay_corner_kernel, payload=(load_f, vdd))
    points = sweep.run(items, chunk_size=chunk_size, workers=workers)
    return DelayCornerSweep(
        labels=tuple(label for label, _ in items),
        delays_s=np.array([p[1] for p in points]),
        energies_j=np.array([p[0] for p in points]),
    )

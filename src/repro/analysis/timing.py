"""Timing and energy metrics for logic transients.

Extracts propagation delays and switching energy from
:class:`repro.circuit.TransientResult` waveforms, and provides the
first-order CV/I delay estimator used to compare device technologies
before running full transients.

Monte-Carlo-scale timing rides the batched transient engine
(:class:`repro.circuit.sweep.CircuitTransientMC`):
:func:`transient_delay_corner_sweep` time-steps every process corner of
one inverter in a single lockstep batch (actual switching waveforms,
not CV/I), and :func:`delay_energy_distribution` turns a device-spread
:class:`~repro.circuit.sweep.FETVariation` into the paper's delay and
energy-per-transition distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.cells import build_inverter
from repro.circuit.sweep import (
    CircuitTransientMC,
    ExecutionPolicy,
    FETVariation,
    SweepPlan,
)
from repro.circuit.transient import TransientResult
from repro.circuit.waveforms import Pulse
from repro.devices.base import FETModel

__all__ = [
    "DelayMetrics",
    "DelayCornerSweep",
    "TransientDelaySweep",
    "DelayEnergyDistribution",
    "propagation_delays",
    "supply_energy_j",
    "cv_over_i_delay_s",
    "delay_corner_sweep",
    "transient_delay_corner_sweep",
    "delay_energy_distribution",
    "intrinsic_energy_delay",
]


@dataclass(frozen=True)
class DelayMetrics:
    """50 %-crossing propagation delays of one logic transition pair."""

    tp_hl_s: float
    tp_lh_s: float

    @property
    def average_s(self) -> float:
        return 0.5 * (self.tp_hl_s + self.tp_lh_s)


def _crossings(time_s: np.ndarray, signal: np.ndarray, level: float, rising: bool):
    above = signal > level
    if rising:
        mask = above[1:] & ~above[:-1]
    else:
        mask = ~above[1:] & above[:-1]
    indices = np.nonzero(mask)[0]
    times = []
    for i in indices:
        v0, v1 = signal[i], signal[i + 1]
        if v1 == v0:
            times.append(float(time_s[i]))
            continue
        t = (level - v0) / (v1 - v0)
        times.append(float(time_s[i] + t * (time_s[i + 1] - time_s[i])))
    return times


def propagation_delays(
    result: TransientResult,
    input_node: str,
    output_node: str,
    vdd: float,
) -> DelayMetrics:
    """tpHL / tpLH between the 50 % points of input and output waveforms."""
    t = result.time_s
    v_in = result.voltage(input_node)
    v_out = result.voltage(output_node)
    mid = vdd / 2.0
    in_rise = _crossings(t, v_in, mid, rising=True)
    in_fall = _crossings(t, v_in, mid, rising=False)
    out_fall = _crossings(t, v_out, mid, rising=False)
    out_rise = _crossings(t, v_out, mid, rising=True)
    tp_hl = _first_delay(in_rise, out_fall)
    tp_lh = _first_delay(in_fall, out_rise)
    if tp_hl is None or tp_lh is None:
        raise ValueError("waveforms do not contain a full output transition pair")
    return DelayMetrics(tp_hl_s=tp_hl, tp_lh_s=tp_lh)


def _first_delay(input_times, output_times) -> float | None:
    for t_in in input_times:
        later = [t for t in output_times if t > t_in]
        if later:
            return later[0] - t_in
    return None


def supply_energy_j(
    result: TransientResult,
    supply_source: str,
    vdd: float,
    t_start_s: float = 0.0,
    t_stop_s: float | None = None,
) -> float:
    """Energy drawn from the supply over a window: E = VDD * int i dt [J].

    The supply source current is negative when delivering power (branch
    convention), hence the sign flip.
    """
    t = result.time_s
    i = -result.source_current(supply_source)
    t_stop_s = float(t[-1]) if t_stop_s is None else t_stop_s
    mask = (t >= t_start_s) & (t <= t_stop_s)
    if mask.sum() < 2:
        raise ValueError("energy window contains fewer than 2 samples")
    return float(vdd * np.trapezoid(i[mask], t[mask]))


def cv_over_i_delay_s(
    device: FETModel, load_f: float, vdd: float
) -> float:
    """First-order switching delay C V / I_on [s] of a device driving a load."""
    if load_f <= 0.0 or vdd <= 0.0:
        raise ValueError("load and vdd must be positive")
    i_on = device.current(vdd, vdd)
    if i_on <= 0.0:
        raise ValueError("device delivers no on-current at (vdd, vdd)")
    return load_f * vdd / i_on


def intrinsic_energy_delay(
    device: FETModel, load_f: float, vdd: float
) -> tuple[float, float]:
    """(switching energy C V^2, CV/I delay) of a device-load stage."""
    return load_f * vdd * vdd, cv_over_i_delay_s(device, load_f, vdd)


@dataclass(frozen=True)
class DelayCornerSweep:
    """CV/I delay and switching energy across device corners."""

    labels: tuple[str, ...]
    delays_s: np.ndarray
    energies_j: np.ndarray

    def worst_corner(self) -> tuple[str, float]:
        """The slowest corner and its delay [s]."""
        index = int(np.argmax(self.delays_s))
        return self.labels[index], float(self.delays_s[index])

    def spread(self) -> float:
        """Max/min delay ratio across the corners."""
        return float(self.delays_s.max() / self.delays_s.min())


def _delay_corner_kernel(corner, rng, payload):
    """(energy, delay) of one (label, device) corner."""
    _label, device = corner
    load_f, vdd = payload
    return intrinsic_energy_delay(device, load_f, vdd)


def delay_corner_sweep(
    corners,
    load_f: float,
    vdd: float,
    chunk_size: int | None = None,
    workers: int | None = None,
) -> DelayCornerSweep:
    """First-order delay/energy at every device corner, via the sweep engine.

    ``corners`` maps a label to a device model (slow/typical/fast
    process corners, different technologies, ...); the corner loop
    routes through :meth:`repro.circuit.sweep.SweepPlan.run` like every
    other sweep-shaped analysis.
    """
    items = [(str(label), device) for label, device in dict(corners).items()]
    if not items:
        raise ValueError("need at least one corner")
    sweep = SweepPlan(_delay_corner_kernel, payload=(load_f, vdd))
    points = sweep.run(items, chunk_size=chunk_size, workers=workers)
    return DelayCornerSweep(
        labels=tuple(label for label, _ in items),
        delays_s=np.array([p[1] for p in points]),
        energies_j=np.array([p[0] for p in points]),
    )


# ---------------------------------------------------------------------------
# Transient timing at Monte Carlo scale (batched CircuitTransientMC).
# ---------------------------------------------------------------------------


def _switching_inverter(device: FETModel, load_f: float, vdd: float, t_stop_s: float):
    """A loaded inverter driven by one full-swing pulse inside ``t_stop_s``."""
    stimulus = Pulse(
        v1=0.0,
        v2=vdd,
        delay_s=0.05 * t_stop_s,
        rise_s=0.005 * t_stop_s,
        fall_s=0.005 * t_stop_s,
        width_s=0.45 * t_stop_s,
        period_s=0.0,
    )
    return build_inverter(
        device, vdd=vdd, load_capacitance_f=load_f, input_waveform=stimulus
    )


def _instance_timing(
    result, cell, vdd: float, instance: int
) -> tuple[float, float, float, bool]:
    """(tp_hl, tp_lh, energy, valid) of one transient MC instance."""
    if not result.converged[instance]:
        return np.nan, np.nan, np.nan, False
    waves = result.instance_waveforms(instance)
    try:
        delays = propagation_delays(waves, cell.input_node, cell.output_node, vdd)
    except ValueError:
        return np.nan, np.nan, np.nan, False
    energy = supply_energy_j(waves, cell.vdd_source, vdd)
    return delays.tp_hl_s, delays.tp_lh_s, energy, True


@dataclass(frozen=True)
class TransientDelaySweep:
    """Transient-accurate delay/energy across device corners.

    Unlike :class:`DelayCornerSweep` (first-order CV/I), every corner
    here is a full switching transient — all corners time-stepped in
    one lockstep batch.
    """

    labels: tuple[str, ...]
    tp_hl_s: np.ndarray
    tp_lh_s: np.ndarray
    energies_j: np.ndarray

    @property
    def average_delays_s(self) -> np.ndarray:
        return 0.5 * (self.tp_hl_s + self.tp_lh_s)

    def worst_corner(self) -> tuple[str, float]:
        """The slowest corner and its average delay [s]."""
        index = int(np.argmax(self.average_delays_s))
        return self.labels[index], float(self.average_delays_s[index])

    def spread(self) -> float:
        """Max/min average-delay ratio across the corners."""
        delays = self.average_delays_s
        return float(delays.max() / delays.min())


def transient_delay_corner_sweep(
    device: FETModel,
    corners,
    load_f: float = 10e-15,
    vdd: float = 1.0,
    *,
    t_stop_s: float = 2e-9,
    dt_s: float = 5e-12,
    chunk_size: int | None = None,
    workers: int | None = None,
) -> TransientDelaySweep:
    """Switching delays/energy of an inverter at every process corner.

    ``corners`` maps a label to a ``(drive_scale, vth_shift_v)`` pair
    applied uniformly to both inverter FETs (slow/typical/fast).  All
    corners become rows of one :class:`~repro.circuit.sweep.
    FETVariation` and are time-stepped together by a single batched
    :class:`~repro.circuit.sweep.CircuitTransientMC` run.
    """
    items = [
        (str(label), float(scale), float(shift))
        for label, (scale, shift) in dict(corners).items()
    ]
    if not items:
        raise ValueError("need at least one corner")
    cell = _switching_inverter(device, load_f, vdd, t_stop_s)
    engine = CircuitTransientMC(cell.circuit)
    n_fets = len(engine.fet_names)
    variation = FETVariation(
        drive_scale=np.array([[scale] * n_fets for _, scale, _ in items]),
        vth_shift_v=np.array([[shift] * n_fets for _, _, shift in items]),
    )
    result = engine.run(
        variation, t_stop_s, dt_s, chunk_size=chunk_size, workers=workers
    )
    tp_hl = np.empty(len(items))
    tp_lh = np.empty(len(items))
    energy = np.empty(len(items))
    for i, (label, _, _) in enumerate(items):
        tp_hl[i], tp_lh[i], energy[i], valid = _instance_timing(result, cell, vdd, i)
        if not valid:
            raise ValueError(
                f"corner {label!r} produced no full output transition pair"
            )
    return TransientDelaySweep(
        labels=tuple(label for label, _, _ in items),
        tp_hl_s=tp_hl,
        tp_lh_s=tp_lh,
        energies_j=energy,
    )


@dataclass(frozen=True)
class DelayEnergyDistribution:
    """Per-instance switching delays and energies under device spread.

    ``valid`` marks instances that converged and produced a full output
    transition pair; the summary statistics run over those only.
    """

    tp_hl_s: np.ndarray
    tp_lh_s: np.ndarray
    energies_j: np.ndarray
    valid: np.ndarray

    @property
    def n_instances(self) -> int:
        return self.valid.size

    @property
    def n_valid(self) -> int:
        return int(np.count_nonzero(self.valid))

    @property
    def average_delays_s(self) -> np.ndarray:
        return 0.5 * (self.tp_hl_s + self.tp_lh_s)

    def _valid(self, values: np.ndarray) -> np.ndarray:
        values = values[self.valid]
        if values.size == 0:
            raise ValueError("no valid instances to summarise")
        return values

    @property
    def delay_mean_s(self) -> float:
        return float(self._valid(self.average_delays_s).mean())

    @property
    def delay_sigma_s(self) -> float:
        return float(self._valid(self.average_delays_s).std())

    @property
    def energy_mean_j(self) -> float:
        return float(self._valid(self.energies_j).mean())

    @property
    def energy_sigma_j(self) -> float:
        return float(self._valid(self.energies_j).std())


def delay_energy_distribution(
    device: FETModel,
    n_instances: int,
    *,
    drive_sigma: float,
    vth_sigma_v: float = 0.0,
    seed: int,
    load_f: float = 10e-15,
    vdd: float = 1.0,
    t_stop_s: float = 2e-9,
    dt_s: float = 5e-12,
    chunk_size: int | None = None,
    workers: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> DelayEnergyDistribution:
    """Delay / energy-per-transition distributions of a varied inverter.

    Draws an ``n_instances``-row :class:`~repro.circuit.sweep.
    FETVariation` (lognormal drive spread, normal threshold spread) and
    time-steps every fabricated copy of the inverter through one
    switching cycle in a single batched run — the transient counterpart
    of the DC switching-threshold ladder in
    :func:`repro.experiments.integration_stats.inverter_variability_sigma_v`.
    Deterministic in ``seed`` regardless of chunking or pooling.
    """
    cell = _switching_inverter(device, load_f, vdd, t_stop_s)
    engine = CircuitTransientMC(cell.circuit)
    variation = FETVariation.sample(
        n_instances,
        len(engine.fet_names),
        seed=seed,
        drive_sigma=drive_sigma,
        vth_sigma_v=vth_sigma_v,
    )
    result = engine.run(
        variation,
        t_stop_s,
        dt_s,
        chunk_size=chunk_size,
        workers=workers,
        policy=policy,
    )
    tp_hl = np.empty(n_instances)
    tp_lh = np.empty(n_instances)
    energy = np.empty(n_instances)
    valid = np.zeros(n_instances, dtype=bool)
    for i in range(n_instances):
        tp_hl[i], tp_lh[i], energy[i], valid[i] = _instance_timing(
            result, cell, vdd, i
        )
    return DelayEnergyDistribution(
        tp_hl_s=tp_hl, tp_lh_s=tp_lh, energies_j=energy, valid=valid
    )

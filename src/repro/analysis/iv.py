"""I-V curve metrics: SS, DIBL, on/off currents, saturation quality.

These are the figure-of-merit extractors the paper's comparisons rely
on, including the del Alamo benchmarking methodology used in Fig. 5:
quote I_on at a fixed supply window above the gate voltage where the
device leaks exactly I_off = 100 nA/um.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "subthreshold_swing_mv_per_decade",
    "threshold_voltage",
    "dibl_mv_per_v",
    "ion_ioff_ratio",
    "ion_at_fixed_ioff",
    "saturation_index",
]

_CURRENT_FLOOR_A = 1e-30


def subthreshold_swing_mv_per_decade(vgs, current_a) -> float:
    """Minimum subthreshold swing [mV/dec] of a transfer curve."""
    vgs = np.asarray(vgs, dtype=float)
    current = np.clip(np.asarray(current_a, dtype=float), _CURRENT_FLOOR_A, None)
    if vgs.size < 3:
        raise ValueError("need at least 3 sweep points")
    log_i = np.log10(current)
    dlog = np.diff(log_i)
    dv = np.diff(vgs)
    valid = dlog > 1e-12
    if not np.any(valid):
        raise ValueError("transfer curve never increases; no swing defined")
    return float(np.min(dv[valid] / dlog[valid])) * 1e3


def threshold_voltage(vgs, current_a, criterion_a: float) -> float:
    """Constant-current threshold: V_GS at which I_D crosses ``criterion_a``."""
    vgs = np.asarray(vgs, dtype=float)
    current = np.clip(np.asarray(current_a, dtype=float), _CURRENT_FLOOR_A, None)
    log_i = np.log10(current)
    target = np.log10(criterion_a)
    if target < log_i.min() or target > log_i.max():
        raise ValueError(
            f"criterion {criterion_a:g} A outside curve range "
            f"[{current.min():g}, {current.max():g}]"
        )
    return float(np.interp(target, log_i, vgs))


def dibl_mv_per_v(
    vgs,
    current_low_vds_a,
    current_high_vds_a,
    vds_low: float,
    vds_high: float,
    criterion_a: float | None = None,
) -> float:
    """DIBL [mV/V]: threshold shift between two drain biases.

    Uses a constant-current criterion (default: geometric mid-decade of
    the low-V_DS curve).
    """
    if vds_high <= vds_low:
        raise ValueError("vds_high must exceed vds_low")
    current_low = np.asarray(current_low_vds_a, dtype=float)
    if criterion_a is None:
        log_lo = np.log10(max(current_low.min(), _CURRENT_FLOOR_A))
        log_hi = np.log10(current_low.max())
        criterion_a = 10.0 ** ((log_lo + log_hi) / 2.0)
    vt_low = threshold_voltage(vgs, current_low_vds_a, criterion_a)
    vt_high = threshold_voltage(vgs, current_high_vds_a, criterion_a)
    return (vt_low - vt_high) / (vds_high - vds_low) * 1e3


def ion_ioff_ratio(vgs, current_a, v_off: float, v_on: float) -> float:
    """I_on / I_off between two gate voltages on a transfer curve."""
    vgs = np.asarray(vgs, dtype=float)
    current = np.clip(np.asarray(current_a, dtype=float), _CURRENT_FLOOR_A, None)
    i_off = float(np.interp(v_off, vgs, current))
    i_on = float(np.interp(v_on, vgs, current))
    return i_on / i_off


def ion_at_fixed_ioff(
    vgs, current_a, supply_window_v: float, ioff_target_a: float
) -> float:
    """On-current at a fixed off-current — the del Alamo / Fig. 5 metric.

    Finds the gate voltage where the curve leaks exactly ``ioff_target_a``
    and returns the current one supply window above it.  Interpolation is
    done on log-current, matching how benchmark plots are constructed.
    """
    if supply_window_v <= 0.0:
        raise ValueError(f"supply window must be positive, got {supply_window_v}")
    vgs = np.asarray(vgs, dtype=float)
    current = np.clip(np.asarray(current_a, dtype=float), _CURRENT_FLOOR_A, None)
    log_i = np.log10(current)
    target = np.log10(ioff_target_a)
    if target < log_i[0] or target > log_i[-1]:
        raise ValueError(
            f"off-current target {ioff_target_a:g} A outside curve range; "
            "extend the gate sweep"
        )
    v_off = float(np.interp(target, log_i, vgs))
    v_on = v_off + supply_window_v
    if v_on > vgs[-1]:
        raise ValueError(
            f"on-state gate voltage {v_on:.3f} V beyond sweep end {vgs[-1]:.3f} V"
        )
    return float(10.0 ** np.interp(v_on, vgs, log_i))


def saturation_index(vds, current_a, knee_fraction: float = 0.3) -> float:
    """How saturated an output curve is, in [0, 1].

    Compares the differential conductance well above the knee with the
    ohmic conductance at the origin: 1 - g_sat / g_ohmic.  A perfect
    current source scores 1; a resistor — the paper's "real GNR" — scores
    ~0.  ``knee_fraction`` sets where the "saturation region" begins as a
    fraction of the V_DS span.
    """
    vds = np.asarray(vds, dtype=float)
    current = np.asarray(current_a, dtype=float)
    if vds.size < 5:
        raise ValueError("need at least 5 output-curve points")
    if not 0.0 < knee_fraction < 0.9:
        raise ValueError(f"knee fraction must be in (0, 0.9), got {knee_fraction}")
    span = vds[-1] - vds[0]
    ohmic_mask = vds <= vds[0] + 0.15 * span
    sat_mask = vds >= vds[0] + (1.0 - knee_fraction) * span
    if ohmic_mask.sum() < 2 or sat_mask.sum() < 2:
        raise ValueError("output sweep too coarse for saturation analysis")
    g_ohmic = np.polyfit(vds[ohmic_mask], current[ohmic_mask], 1)[0]
    g_sat = np.polyfit(vds[sat_mask], current[sat_mask], 1)[0]
    if g_ohmic <= 0.0:
        raise ValueError("output curve has non-positive ohmic conductance")
    return float(np.clip(1.0 - g_sat / g_ohmic, 0.0, 1.0))

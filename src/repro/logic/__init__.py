"""Gate-level logic and the SUBNEG one-bit computer (Shulaker scenario)."""

from repro.logic.faults import (
    FunctionalYieldResult,
    functional_yield,
    machine_with_faults,
    runs_counting_program,
    runs_sorting_program,
    sample_stuck_faults,
)
from repro.logic.gates import (
    GATE_FUNCTIONS,
    Gate,
    LogicNetlist,
    build_full_subtractor,
    build_ripple_subtractor,
)
from repro.logic.technology import LogicTechnology, subneg_cycle_estimate
from repro.logic.subneg import (
    Instruction,
    SubnegMachine,
    assemble,
    counting_program,
    sort_with_machine,
    sorting_program,
)

__all__ = [
    "FunctionalYieldResult",
    "GATE_FUNCTIONS",
    "Gate",
    "Instruction",
    "LogicTechnology",
    "LogicNetlist",
    "SubnegMachine",
    "assemble",
    "build_full_subtractor",
    "build_ripple_subtractor",
    "counting_program",
    "functional_yield",
    "machine_with_faults",
    "runs_counting_program",
    "runs_sorting_program",
    "sample_stuck_faults",
    "sort_with_machine",
    "sorting_program",
    "subneg_cycle_estimate",
]

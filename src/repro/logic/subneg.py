"""SUBNEG one-instruction computer — the CNT computer's instruction set.

Shulaker's carbon-nanotube computer (Nature 501, 526 (2013); celebrated
by the paper's Ref. [20, 21]) executed the one-instruction SUBNEG
("subtract and branch if negative") ISA, demonstrating counting and
sorting programs on 178 CNT-FETs.  This module provides:

* :class:`SubnegMachine` — a SUBNEG interpreter whose subtraction can be
  delegated to the gate-level ripple subtractor (with optional stuck-at
  faults), tying material-level yield to program-level correctness;
* the :func:`counting_program` and :func:`sorting_program` generators —
  the two workloads the CNT computer ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.gates import LogicNetlist, build_ripple_subtractor

__all__ = [
    "Instruction",
    "SubnegMachine",
    "counting_program",
    "sorting_program",
    "assemble",
]


@dataclass(frozen=True)
class Instruction:
    """SUBNEG instruction: mem[b] -= mem[a]; if result <= 0 jump to c."""

    a: int
    b: int
    c: int


def assemble(triples) -> list[Instruction]:
    """Build an instruction list from (a, b, c) triples."""
    return [Instruction(*t) for t in triples]


@dataclass
class SubnegMachine:
    """A SUBNEG machine with word-addressed memory.

    Parameters
    ----------
    memory:
        Initial data/program memory (list of ints).  Program and data
        share the address space, Harvard-style split is not enforced.
    word_bits:
        Datapath width; arithmetic wraps to this width via the gate-level
        subtractor when ``use_gate_level`` is on, and is exact Python
        arithmetic otherwise.
    use_gate_level:
        Route every subtraction through the ripple-borrow subtractor
        netlist (slower but faultable).
    faults:
        Stuck-at faults applied to the subtractor netlist, mapping net
        name to the stuck boolean value.
    """

    memory: list[int]
    word_bits: int = 16
    use_gate_level: bool = False
    faults: dict[str, bool] = field(default_factory=dict)
    max_steps: int = 100000
    _alu: LogicNetlist | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.word_bits < 2:
            raise ValueError(f"need at least 2-bit words, got {self.word_bits}")
        self.memory = list(self.memory)  # defensive copy: run() mutates it
        if self.use_gate_level or self.faults:
            self._alu = build_ripple_subtractor(self.word_bits)
            self.use_gate_level = True

    # -- arithmetic --------------------------------------------------------
    def _subtract(self, minuend: int, subtrahend: int) -> tuple[int, bool]:
        """(b - a) mod 2^n and the borrow (negative) flag."""
        mask = (1 << self.word_bits) - 1
        if not self.use_gate_level:
            raw = minuend - subtrahend
            return raw & mask, raw <= 0
        inputs = {"bin0": False}
        for bit in range(self.word_bits):
            inputs[f"a{bit}"] = bool((minuend >> bit) & 1)
            inputs[f"b{bit}"] = bool((subtrahend >> bit) & 1)
        outputs = self._alu.outputs(inputs, faults=self.faults or None)
        result = 0
        for bit in range(self.word_bits):
            if outputs[f"d{bit}"]:
                result |= 1 << bit
        negative = outputs["borrow"] or result == 0
        return result, negative

    # -- execution ----------------------------------------------------------
    def step(self, pc: int) -> int:
        """Execute the instruction at ``pc``; return the next pc (-1 halts)."""
        a = self.memory[pc]
        b = self.memory[pc + 1]
        c = self.memory[pc + 2]
        result, negative = self._subtract(self.memory[b], self.memory[a])
        self.memory[b] = result
        return c if negative else pc + 3

    def run(self, pc: int = 0) -> int:
        """Run until a negative pc (halt); returns executed step count."""
        steps = 0
        while pc >= 0:
            if pc + 2 >= len(self.memory):
                raise IndexError(f"pc {pc} walks off memory of {len(self.memory)} words")
            pc = self.step(pc)
            steps += 1
            if steps > self.max_steps:
                raise RuntimeError(f"program exceeded {self.max_steps} steps")
        return steps


# -- reference programs (the CNT computer's demo workloads) ----------------
def counting_program(count_to: int) -> tuple[list[int], int]:
    """SUBNEG memory image that counts ``count_to`` down to zero.

    Layout: instructions at 0..5, data after.  Returns (memory, counter
    address); after :meth:`SubnegMachine.run` the counter reads 0.
    """
    if count_to < 1:
        raise ValueError(f"count must be >= 1, got {count_to}")
    one_addr, counter_addr, zero_addr = 6, 7, 8
    # Instruction 0: mem[counter] -= mem[one]; if result <= 0 halt (-1).
    # Otherwise execution falls through to instruction 3, which computes
    # mem[zero] -= mem[zero] = 0 (always <= 0) and so unconditionally
    # branches back to instruction 0 — the SUBNEG idiom for "goto".
    memory = [
        one_addr, counter_addr, -1,
        zero_addr, zero_addr, 0,
        1,          # constant one
        count_to,   # counter
        0,          # scratch zero
    ]
    return memory, counter_addr


def sorting_program(values: list[int]) -> list[int]:
    """Bubble-sort a list with repeated SUBNEG compare-swap passes.

    SUBNEG bubble sort in software: rather than emit the (long) SUBNEG
    instruction stream, each compare-and-swap is executed on a
    :class:`SubnegMachine` primitive — mirroring how the CNT computer
    demonstration decomposed sorting into SUBNEG steps.  Returns the
    sorted list; the machine arithmetic (and its faults) decide the
    comparisons, so a faulty datapath visibly mis-sorts.
    """
    return _sort_with_machine(values, SubnegMachine(memory=[0] * 16))


def _sort_with_machine(values: list[int], machine: SubnegMachine) -> list[int]:
    data = list(values)
    n = len(data)
    for i in range(n):
        for j in range(n - 1 - i):
            # compare data[j] > data[j+1] via machine subtraction
            _, negative = machine._subtract(data[j], data[j + 1])
            # negative means data[j] - data[j+1] <= 0, i.e. already ordered
            if not negative:
                data[j], data[j + 1] = data[j + 1], data[j]
    return data


def sort_with_machine(values: list[int], machine: SubnegMachine) -> list[int]:
    """Public wrapper of the machine-arithmetic bubble sort."""
    return _sort_with_machine(values, machine)


__all__.append("sort_with_machine")

"""Technology mapping: from a FET model to gate delays and clock rates.

Ties the device level to the computer level: given any
:class:`repro.devices.FETModel` and a load model, estimate the inverter
delay (CV/I), map the SUBNEG datapath's critical path into seconds, and
bound the machine's clock frequency.  Evaluating the mapping with a
Shulaker-era device setup (back-gated CNFETs driving large pass-gate and
wiring loads at ~3 V) lands in the kHz clock regime the CNT computer
actually ran at, while a scaled GAA CNT-FET driving fF-class loads
supports GHz-class clocks — the "potential benefits" the paper's
summary points to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timing import cv_over_i_delay_s
from repro.devices.base import FETModel
from repro.logic.gates import LogicNetlist, build_ripple_subtractor

__all__ = ["LogicTechnology", "subneg_cycle_estimate"]


@dataclass(frozen=True)
class LogicTechnology:
    """A device + load + supply point defining a logic family's speed.

    Attributes
    ----------
    device:
        The n-type drive device (p-type assumed symmetric).
    load_capacitance_f:
        Capacitance each gate output drives (wiring + fan-in).
    vdd:
        Supply voltage.
    name:
        Label used in reports.
    """

    device: FETModel
    load_capacitance_f: float
    vdd: float
    name: str = "technology"

    def __post_init__(self) -> None:
        if self.load_capacitance_f <= 0.0 or self.vdd <= 0.0:
            raise ValueError("load and supply must be positive")

    @property
    def inverter_delay_s(self) -> float:
        """First-order inverter delay C V / I_on."""
        return cv_over_i_delay_s(self.device, self.load_capacitance_f, self.vdd)

    def critical_path_s(self, netlist: LogicNetlist) -> float:
        """Critical path of a netlist in this technology [s]."""
        return netlist.critical_path_delay_s(self.inverter_delay_s)

    def max_clock_hz(self, netlist: LogicNetlist, margin: float = 2.0) -> float:
        """Clock bound: 1 / (margin * critical path)."""
        if margin < 1.0:
            raise ValueError(f"margin must be >= 1, got {margin}")
        return 1.0 / (margin * self.critical_path_s(netlist))

    def energy_per_cycle_j(self, netlist: LogicNetlist, activity: float = 0.2) -> float:
        """Switching energy per cycle: activity * gates * C V^2."""
        if not 0.0 < activity <= 1.0:
            raise ValueError(f"activity must be in (0, 1], got {activity}")
        return (
            activity
            * netlist.gate_count
            * self.load_capacitance_f
            * self.vdd
            * self.vdd
        )


@dataclass(frozen=True)
class SubnegCycleEstimate:
    """Timing summary of a SUBNEG machine in a given technology."""

    technology_name: str
    word_bits: int
    inverter_delay_s: float
    critical_path_s: float
    clock_hz: float
    energy_per_cycle_j: float


def subneg_cycle_estimate(
    technology: LogicTechnology, word_bits: int = 8, margin: float = 2.0
) -> SubnegCycleEstimate:
    """Estimate the cycle time of a SUBNEG machine's subtractor datapath.

    The ripple-borrow subtractor dominates the SUBNEG cycle (fetch and
    write-back are memory-bound and excluded — consistent with how the
    CNT computer's 1-instruction datapath was reported).
    """
    alu = build_ripple_subtractor(word_bits)
    critical = technology.critical_path_s(alu)
    return SubnegCycleEstimate(
        technology_name=technology.name,
        word_bits=word_bits,
        inverter_delay_s=technology.inverter_delay_s,
        critical_path_s=critical,
        clock_hz=technology.max_clock_hz(alu, margin=margin),
        energy_per_cycle_j=technology.energy_per_cycle_j(alu),
    )

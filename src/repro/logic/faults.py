"""Fault injection: from tube-level defects to program-level failure.

Closes the loop of the paper's Section V: material imperfections
(metallic tubes, missing tubes) become stuck-at faults in the gate-level
datapath, and a Monte-Carlo sweep measures the *functional yield* — the
fraction of fabricated one-bit computers that still run their counting
and sorting programs correctly, as Shulaker's flow had to guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.sweep import ExecutionPolicy, SweepPlan, ensure_seed
from repro.integration.yields import GateYieldModel
from repro.logic.gates import LogicNetlist, build_ripple_subtractor
from repro.logic.subneg import SubnegMachine, counting_program, sort_with_machine

__all__ = [
    "sample_stuck_faults",
    "machine_with_faults",
    "runs_counting_program",
    "runs_sorting_program",
    "FunctionalYieldResult",
    "functional_yield",
]


def sample_stuck_faults(
    netlist: LogicNetlist,
    gate_failure_probability: float,
    rng: np.random.Generator,
) -> dict[str, bool]:
    """Draw stuck-at faults: each gate output fails i.i.d. and sticks 0/1.

    A short (surviving metallic tube) biases the output toward a stuck
    conducting level; we model the stuck value as a fair coin since the
    polarity depends on which network the tube sat in.
    """
    if not 0.0 <= gate_failure_probability <= 1.0:
        raise ValueError("failure probability must be in [0, 1]")
    faults: dict[str, bool] = {}
    for net in netlist.gates:
        if rng.random() < gate_failure_probability:
            faults[net] = bool(rng.random() < 0.5)
    return faults


def machine_with_faults(
    word_bits: int, faults: dict[str, bool], max_steps: int = 100000
) -> SubnegMachine:
    """A SUBNEG machine whose gate-level ALU carries the given faults."""
    machine = SubnegMachine(
        memory=[0] * 16, word_bits=word_bits, use_gate_level=True, faults=dict(faults),
        max_steps=max_steps,
    )
    return machine


def runs_counting_program(faults: dict[str, bool], count_to: int = 5) -> bool:
    """Does a faulted machine count down correctly (and halt)?"""
    memory, counter_addr = counting_program(count_to)
    machine = SubnegMachine(
        memory=memory, word_bits=8, use_gate_level=True, faults=dict(faults),
        max_steps=50 * count_to + 100,
    )
    try:
        machine.run(0)
    except (RuntimeError, IndexError):
        return False
    return machine.memory[counter_addr] == 0


def runs_sorting_program(
    faults: dict[str, bool], values: tuple[int, ...] = (3, 1, 2, 5, 4)
) -> bool:
    """Does a faulted machine sort correctly?"""
    machine = machine_with_faults(word_bits=8, faults=faults)
    try:
        result = sort_with_machine(list(values), machine)
    except (RuntimeError, IndexError):
        return False
    return result == sorted(values)


@dataclass(frozen=True)
class FunctionalYieldResult:
    """Monte-Carlo functional-yield estimate."""

    n_trials: int
    n_functional: int
    gate_failure_probability: float

    @property
    def functional_yield(self) -> float:
        return self.n_functional / self.n_trials


def _functional_trial_block(params_block, rng, payload):
    """Sweep-engine block kernel: fabricate and test one machine per trial."""
    word_bits, p_fail = payload
    alu = build_ripple_subtractor(word_bits)
    outcomes = []
    for _ in params_block:
        faults = sample_stuck_faults(alu, p_fail, rng)
        outcomes.append(
            not faults
            or (runs_counting_program(faults) and runs_sorting_program(faults))
        )
    return outcomes


def _trial_entry_validator(entry) -> bool:
    """Merge-boundary schema of one functional trial: a plain boolean."""
    return isinstance(entry, (bool, np.bool_))


def functional_yield(
    gate_model: GateYieldModel,
    n_trials: int = 200,
    word_bits: int = 8,
    seed: int | None = 1234,
    chunk_size: int | None = None,
    workers: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> FunctionalYieldResult:
    """Fraction of fabricated machines that pass counting AND sorting.

    Each trial fabricates one ALU: every gate output fails with the
    material model's per-gate failure probability; the machine must run
    both reference programs correctly to count as functional.  Trials
    run in substream blocks through the sweep engine — gate-level
    program simulation is pure Python, so this is the one Monte Carlo
    where ``workers`` (a process pool) buys real wall-clock on
    multi-core machines; results are identical either way.
    """
    if n_trials < 1:
        raise ValueError("need at least one trial")
    p_fail = 1.0 - gate_model.gate_yield
    sweep = SweepPlan(
        _functional_trial_block,
        vectorized=True,
        payload=(word_bits, p_fail),
        substream_block=32,
        validate=_trial_entry_validator,
    )
    outcomes = sweep.run(
        range(n_trials),
        seed=ensure_seed(seed),
        chunk_size=chunk_size,
        workers=workers,
        policy=policy,
    )
    return FunctionalYieldResult(
        n_trials=n_trials,
        n_functional=int(sum(outcomes)),
        gate_failure_probability=p_fail,
    )

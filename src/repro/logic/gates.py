"""Gate-level combinational logic with device-derived timing.

A :class:`LogicNetlist` is a DAG of boolean gates evaluated in
topological order.  Gate delays come from the driving FET technology via
the CV/I estimator, so a netlist built "in CNT technology" and one built
"in trigate technology" can be compared on critical path directly.

The builders include the arithmetic cells a SUBNEG one-instruction
computer needs (full subtractor, ripple-borrow subtractor, zero/negative
detect) — the datapath of the paper's referenced CNT computer.
"""

from __future__ import annotations

from dataclasses import dataclass
from graphlib import TopologicalSorter

__all__ = [
    "Gate",
    "LogicNetlist",
    "GATE_FUNCTIONS",
    "build_full_subtractor",
    "build_ripple_subtractor",
]

GATE_FUNCTIONS = {
    "not": lambda a: not a,
    "buf": lambda a: a,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "nand": lambda a, b: not (a and b),
    "nor": lambda a, b: not (a or b),
    "xor": lambda a, b: a != b,
    "xnor": lambda a, b: a == b,
}

# Relative drive cost (series stacks) of each gate in inverter-delay units.
GATE_DELAY_UNITS = {
    "not": 1.0,
    "buf": 2.0,
    "and": 2.4,
    "or": 2.4,
    "nand": 1.4,
    "nor": 1.4,
    "xor": 3.0,
    "xnor": 3.0,
}


@dataclass(frozen=True)
class Gate:
    """One combinational gate: output net, kind, input nets."""

    output: str
    kind: str
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in GATE_FUNCTIONS:
            raise ValueError(f"unknown gate kind {self.kind!r}")
        arity = GATE_FUNCTIONS[self.kind].__code__.co_argcount
        if len(self.inputs) != arity:
            raise ValueError(
                f"{self.kind} gate needs {arity} inputs, got {len(self.inputs)}"
            )


class LogicNetlist:
    """A combinational netlist with named primary inputs and outputs."""

    def __init__(self, name: str = ""):
        self.name = name
        self.gates: dict[str, Gate] = {}
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self._order: list[str] | None = None

    def add_input(self, net: str) -> str:
        if net in self.gates or net in self.primary_inputs:
            raise ValueError(f"net {net!r} already defined")
        self.primary_inputs.append(net)
        return net

    def add_gate(self, output: str, kind: str, *inputs: str) -> str:
        if output in self.gates or output in self.primary_inputs:
            raise ValueError(f"net {output!r} already driven")
        self.gates[output] = Gate(output=output, kind=kind, inputs=tuple(inputs))
        self._order = None
        return output

    def mark_output(self, net: str) -> None:
        if net not in self.gates and net not in self.primary_inputs:
            raise ValueError(f"cannot mark unknown net {net!r} as output")
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)

    # -- evaluation --------------------------------------------------------
    def _topo_order(self) -> list[str]:
        if self._order is None:
            sorter: TopologicalSorter = TopologicalSorter()
            for gate in self.gates.values():
                sorter.add(gate.output, *gate.inputs)
            order = [
                net for net in sorter.static_order() if net in self.gates
            ]
            self._order = order
        return self._order

    def evaluate(
        self, inputs: dict[str, bool], faults: dict[str, bool] | None = None
    ) -> dict[str, bool]:
        """Evaluate all nets; ``faults`` maps net name -> stuck value."""
        missing = [net for net in self.primary_inputs if net not in inputs]
        if missing:
            raise ValueError(f"missing input values for {missing}")
        faults = faults or {}
        values: dict[str, bool] = {}
        for net in self.primary_inputs:
            values[net] = faults.get(net, bool(inputs[net]))
        for net in self._topo_order():
            gate = self.gates[net]
            if net in faults:
                values[net] = faults[net]
                continue
            args = [values[i] for i in gate.inputs]
            values[net] = bool(GATE_FUNCTIONS[gate.kind](*args))
        return values

    def outputs(
        self, inputs: dict[str, bool], faults: dict[str, bool] | None = None
    ) -> dict[str, bool]:
        values = self.evaluate(inputs, faults)
        return {net: values[net] for net in self.primary_outputs}

    # -- metrics ------------------------------------------------------------
    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def transistor_count(self) -> int:
        """CMOS transistor count (2 per input per gate, inverter = 2)."""
        return sum(2 * max(len(g.inputs), 1) for g in self.gates.values())

    def critical_path_units(self) -> float:
        """Longest path in inverter-delay units."""
        depth: dict[str, float] = {net: 0.0 for net in self.primary_inputs}
        for net in self._topo_order():
            gate = self.gates[net]
            arrival = max((depth.get(i, 0.0) for i in gate.inputs), default=0.0)
            depth[net] = arrival + GATE_DELAY_UNITS[gate.kind]
        return max((depth[o] for o in self.primary_outputs), default=0.0)

    def critical_path_delay_s(self, inverter_delay_s: float) -> float:
        """Critical path in seconds, given the technology's inverter delay."""
        if inverter_delay_s <= 0.0:
            raise ValueError("inverter delay must be positive")
        return self.critical_path_units() * inverter_delay_s


def build_full_subtractor(netlist: LogicNetlist, a: str, b: str, bin_: str, prefix: str):
    """Full subtractor: diff = a - b - bin; returns (diff_net, bout_net)."""
    x1 = netlist.add_gate(f"{prefix}_x1", "xor", a, b)
    diff = netlist.add_gate(f"{prefix}_d", "xor", x1, bin_)
    na = netlist.add_gate(f"{prefix}_na", "not", a)
    t1 = netlist.add_gate(f"{prefix}_t1", "and", na, b)
    nx1 = netlist.add_gate(f"{prefix}_nx1", "not", x1)
    t2 = netlist.add_gate(f"{prefix}_t2", "and", nx1, bin_)
    bout = netlist.add_gate(f"{prefix}_bo", "or", t1, t2)
    return diff, bout


def build_ripple_subtractor(n_bits: int, name: str = "sub") -> LogicNetlist:
    """N-bit ripple-borrow subtractor netlist computing a - b.

    Primary inputs: a0..a{n-1}, b0..b{n-1}; outputs d0..d{n-1} and
    ``borrow`` (1 when a < b, i.e. the result is negative in unsigned
    arithmetic) — exactly the "branch if negative" condition a SUBNEG
    machine needs.
    """
    if n_bits < 1:
        raise ValueError(f"need at least 1 bit, got {n_bits}")
    netlist = LogicNetlist(name)
    for i in range(n_bits):
        netlist.add_input(f"a{i}")
        netlist.add_input(f"b{i}")
    netlist.add_input("bin0")
    borrow = "bin0"
    for i in range(n_bits):
        diff, borrow = build_full_subtractor(
            netlist, f"a{i}", f"b{i}", borrow, prefix=f"fs{i}"
        )
        netlist.add_gate(f"d{i}", "buf", diff)
        netlist.mark_output(f"d{i}")
    netlist.add_gate("borrow", "buf", borrow)
    netlist.mark_output("borrow")
    return netlist

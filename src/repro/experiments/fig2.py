"""Fig. 2 — the inverter study: why current saturation matters for logic.

Reproduces the paper's SPICE experiment with the from-scratch circuit
simulator:

* (a)/(b) output families of the two symmetric device types — a
  well-behaved FET with (imperfect) saturation vs a FET with no
  saturation that still turns off below threshold;
* (c)/(d) inverter voltage transfer curves at VDD = 1 V: the saturating
  inverter approaches the ideal steep transition (|gain| >> 1, noise
  margins ~0.4 V on both sides); the non-saturating inverter's gain never
  exceeds unity, its noise margin is ~zero, and both devices conduct
  through the whole transition ("burn dc power from VDD to ground");
* a 10 fF-loaded transient confirming the dynamic behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.timing import propagation_delays, supply_energy_j
from repro.analysis.vtc import VTCMetrics, analyze_vtc
from repro.circuit.cells import build_inverter, inverter_vtc
from repro.circuit.transient import transient
from repro.circuit.waveforms import Pulse
from repro.devices.base import output_curve
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET

__all__ = [
    "Fig2Result",
    "run_fig2",
    "saturating_fet",
    "non_saturating_fet",
    "VDD_V",
    "LOAD_CAPACITANCE_F",
]

VDD_V = 1.0
LOAD_CAPACITANCE_F = 10e-15
OUTPUT_GATE_VOLTAGES = (0.2, 0.4, 0.6, 0.8, 1.0)


def saturating_fet() -> AlphaPowerFET:
    """The "well-behaved FET" of Fig. 2(a): saturating but not perfectly so."""
    return AlphaPowerFET(
        k_a_per_v_alpha=4.0e-4,
        vt=0.25,
        alpha=1.4,
        sat_fraction=0.45,
        channel_modulation=0.15,
        subthreshold_ideality=1.1,
    )


def non_saturating_fet() -> NonSaturatingFET:
    """The Fig. 2(b) FET: linear I-V, turns off below threshold.

    The on-conductance is chosen so both device types deliver the same
    current at the (VDD, VDD) corner, making the inverters comparable.
    """
    reference_on = saturating_fet().current(VDD_V, VDD_V)
    return NonSaturatingFET(
        g_on_s=reference_on / VDD_V, vt=0.2, v_on=VDD_V, smoothing_v=0.3
    )


@dataclass(frozen=True)
class Fig2Result:
    """Series and metrics of all four panels plus the dynamic check."""

    vds: np.ndarray
    output_family_sat: dict[float, np.ndarray]
    output_family_lin: dict[float, np.ndarray]
    v_in: np.ndarray
    vtc_sat: np.ndarray
    vtc_lin: np.ndarray
    supply_current_sat: np.ndarray
    supply_current_lin: np.ndarray
    metrics_sat: VTCMetrics
    metrics_lin: VTCMetrics
    delay_sat_s: float
    energy_sat_j: float

    @property
    def short_circuit_charge_ratio(self) -> float:
        """Supply charge of the non-saturating transition over the saturating one.

        Integral of supply current across the input sweep — a proxy for
        the paper's "pFET and nFET are conductive almost during the whole
        transition and would burn dc power".
        """
        q_sat = float(np.trapezoid(self.supply_current_sat, self.v_in))
        q_lin = float(np.trapezoid(self.supply_current_lin, self.v_in))
        return q_lin / q_sat

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("saturating: max |gain|", self.metrics_sat.max_abs_gain),
            ("saturating: NM_low [V]", self.metrics_sat.nm_low),
            ("saturating: NM_high [V]", self.metrics_sat.nm_high),
            ("non-saturating: max |gain|", self.metrics_lin.max_abs_gain),
            ("non-saturating: NM_low [V]", self.metrics_lin.nm_low),
            ("non-saturating: NM_high [V]", self.metrics_lin.nm_high),
            ("short-circuit charge ratio lin/sat", self.short_circuit_charge_ratio),
            ("saturating inverter delay @10 fF [ps]", self.delay_sat_s * 1e12),
            ("saturating switching energy [fJ]", self.energy_sat_j * 1e15),
        ]


def run_fig2(n_points: int = 161) -> Fig2Result:
    """Regenerate the full Fig. 2 study."""
    sat = saturating_fet()
    lin = non_saturating_fet()

    vds = np.linspace(0.0, 1.0, 51)
    family_sat = {
        vg: output_curve(sat, vds, vg)
        for vg in OUTPUT_GATE_VOLTAGES
    }
    family_lin = {
        vg: output_curve(lin, vds, vg)
        for vg in OUTPUT_GATE_VOLTAGES
    }

    v_in, vtc_sat, i_sat = inverter_vtc(sat, vdd=VDD_V, n_points=n_points)
    _, vtc_lin, i_lin = inverter_vtc(lin, vdd=VDD_V, n_points=n_points)

    metrics_sat = analyze_vtc(v_in, vtc_sat)
    metrics_lin = analyze_vtc(v_in, vtc_lin)

    delay_s, energy_j = _dynamic_check(sat)

    return Fig2Result(
        vds=vds,
        output_family_sat=family_sat,
        output_family_lin=family_lin,
        v_in=v_in,
        vtc_sat=vtc_sat,
        vtc_lin=vtc_lin,
        supply_current_sat=i_sat,
        supply_current_lin=i_lin,
        metrics_sat=metrics_sat,
        metrics_lin=metrics_lin,
        delay_sat_s=delay_s,
        energy_sat_j=energy_j,
    )


def _dynamic_check(device) -> tuple[float, float]:
    """10 fF-loaded transient of the saturating inverter: (delay, energy)."""
    period = 4e-9
    stimulus = Pulse(
        v1=0.0, v2=VDD_V, delay_s=0.2e-9, rise_s=20e-12, fall_s=20e-12,
        width_s=period / 2.0, period_s=period,
    )
    cell = build_inverter(
        device, vdd=VDD_V, load_capacitance_f=LOAD_CAPACITANCE_F,
        input_waveform=stimulus,
    )
    result = transient(cell.circuit, t_stop_s=period, dt_s=5e-12)
    delays = propagation_delays(result, cell.input_node, cell.output_node, VDD_V)
    energy = supply_energy_j(result, cell.vdd_source, VDD_V)
    return delays.average_s, energy

"""Surrogate subsystem report: table accuracy and measured speedup.

The ``surrogate`` CLI experiment compiles the paper's benchmark
ballistic CNT-FET into its cached :class:`~repro.devices.surrogate.
SurrogateFET` and reports how faithful — and how much faster — the
spline table is compared to direct top-of-barrier evaluation:

* deterministic accuracy rows (snapshotted by the golden suite): grid
  shape, the adaptive fit residual, the max relative current error on
  an off-node probe grid, the on-current agreement, and the error of a
  :class:`~repro.circuit.sweep.ScaledShiftedFET` variation wrapper
  composed *around* the surrogate (no recompilation — the batched
  Monte Carlo composition path);
* wall-clock rows (suffixed ``[wall-clock]``; the golden suite checks
  their labels but not their machine-dependent values): per-point
  evaluation cost of both paths and the resulting speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.devices.cntfet import CNTFET
from repro.devices.surrogate import (
    SurrogateFET,
    compile_surrogate,
    surrogate_fidelity,
)

__all__ = ["SurrogateReport", "run_surrogate_report", "WALL_CLOCK_SUFFIX"]

# Rows carrying this suffix are machine-dependent timings: the golden
# regression suite pins their labels but not their values.
WALL_CLOCK_SUFFIX = "[wall-clock]"

_VDD = 1.0
_N_TIMED_POINTS = 64


@dataclass(frozen=True)
class SurrogateReport:
    """Accuracy and speed of one compiled surrogate vs its source model."""

    n_vgs: int
    n_vds: int
    fit_error: float
    max_rel_error: float
    on_current_direct_a: float
    on_current_surrogate_a: float
    variation_rel_error: float
    direct_us_per_point: float
    surrogate_us_per_point: float

    @property
    def speedup(self) -> float:
        return self.direct_us_per_point / self.surrogate_us_per_point

    def rows(self) -> list[tuple[str, float]]:
        rows = [
            ("table grid points (vgs axis)", float(self.n_vgs)),
            ("table grid points (vds axis)", float(self.n_vds)),
            ("adaptive fit residual (asinh)", self.fit_error),
            ("max rel current error vs direct", self.max_rel_error),
            ("on-current, direct [uA]", self.on_current_direct_a * 1e6),
            ("on-current, surrogate [uA]", self.on_current_surrogate_a * 1e6),
            ("variation-wrapper rel error", self.variation_rel_error),
        ]
        if np.isfinite(self.direct_us_per_point):
            rows += [
                (f"direct eval [us/point] {WALL_CLOCK_SUFFIX}", self.direct_us_per_point),
                (
                    f"surrogate eval [us/point] {WALL_CLOCK_SUFFIX}",
                    self.surrogate_us_per_point,
                ),
                (f"surrogate speedup {WALL_CLOCK_SUFFIX}", self.speedup),
            ]
        return rows


def _probe_points(surrogate: SurrogateFET, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic off-node probe biases inside the tabulated box."""
    rng = np.random.default_rng(20140314)
    vgs = rng.uniform(surrogate.vgs_grid[0], surrogate.vgs_grid[-1], n)
    vds = rng.uniform(surrogate.vds_grid[0], surrogate.vds_grid[-1], n)
    return vgs, vds


def _us_per_point(evaluate, vgs: np.ndarray, vds: np.ndarray, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        evaluate(vgs, vds)
        best = min(best, time.perf_counter() - start)
    return best / vgs.size * 1e6


def run_surrogate_report(
    device=None, *, measure_speedup: bool = True
) -> SurrogateReport:
    """Compile (or load from cache) the benchmark surrogate and grade it."""
    from repro.circuit.sweep import ScaledShiftedFET

    device = CNTFET.reference_device() if device is None else device
    surrogate = compile_surrogate(device)

    max_rel = surrogate_fidelity(surrogate, device)

    # Drive-scale / threshold-shift composition around the surrogate —
    # the FETVariation semantics of the batched MC engines, applied
    # without recompiling the table.
    vgs, vds = _probe_points(surrogate, _N_TIMED_POINTS)
    wrapped_surrogate = ScaledShiftedFET(surrogate, 1.15, 0.02)
    wrapped_direct = ScaledShiftedFET(device, 1.15, 0.02)
    reference = wrapped_direct.currents(vgs, vds)
    approx = wrapped_surrogate.currents(vgs, vds)
    scale = float(np.max(np.abs(reference)))
    variation_rel = float(
        np.max(np.abs(approx - reference) / np.maximum(np.abs(reference), 1e-6 * scale))
    )

    direct_us = surrogate_us = np.nan
    if measure_speedup:
        direct_us = _us_per_point(device.currents, vgs, vds, repeats=2)
        surrogate_us = _us_per_point(surrogate.currents, vgs, vds, repeats=5)

    return SurrogateReport(
        n_vgs=int(surrogate.vgs_grid.size),
        n_vds=int(surrogate.vds_grid.size),
        fit_error=float(surrogate.fit_error),
        max_rel_error=max_rel,
        on_current_direct_a=float(device.current(_VDD, _VDD)),
        on_current_surrogate_a=float(surrogate.current(_VDD, _VDD)),
        variation_rel_error=variation_rel,
        direct_us_per_point=direct_us,
        surrogate_us_per_point=surrogate_us,
    )

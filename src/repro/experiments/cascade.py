"""Cascaded logic: level restoration vs level collapse (Fig. 2's corollary).

The paper: "the dynamic behavior of cascaded logic circuits based on
FETs without saturation would be difficult to predict, as there are no
defined logical 'high' and 'low' levels and the transition is very
smooth."  This experiment drives a chain of inverters with a pulse on
the package's transient simulator and measures the voltage swing
delivered by each stage:

* **saturating devices** regenerate: every stage snaps back to the
  rails, so the swing is flat (~VDD) along the chain;
* **non-saturating devices** attenuate: each stage multiplies the swing
  by its sub-unity gain, so levels collapse geometrically and logic
  values become undefined after a few stages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.transient import transient
from repro.circuit.waveforms import DC, Pulse
from repro.devices.base import FETModel, PType
from repro.experiments.fig2 import non_saturating_fet, saturating_fet

__all__ = [
    "CascadeResult",
    "run_cascade",
    "build_inverter_chain",
    "physical_saturating_fet",
]

VDD = 1.0
N_STAGES = 4
STAGE_LOAD_F = 1e-15


def physical_saturating_fet() -> FETModel:
    """The paper's actual saturating device: a surrogate-compiled CNT-FET.

    The ballistic :class:`~repro.devices.cntfet.CNTFET` benchmark device
    compiled into a :class:`~repro.devices.surrogate.SurrogateFET` —
    physically grounded I-V with spline-cheap evaluation, which is what
    makes the ``--physical`` experiment stack affordable inside the
    transient Newton loop.
    """
    from repro.devices.cntfet import CNTFET

    return CNTFET.reference_device().surrogate()


def build_inverter_chain(
    nfet: FETModel,
    n_stages: int = N_STAGES,
    vdd: float = VDD,
    load_f: float = STAGE_LOAD_F,
    input_waveform=None,
) -> Circuit:
    """A chain of identical complementary inverters, per-stage loads."""
    if n_stages < 1:
        raise ValueError(f"need at least one stage, got {n_stages}")
    pfet = PType(nfet)
    circuit = Circuit(f"chain{n_stages}")
    circuit.add_voltage_source("VDD", "vdd", "0", DC(vdd))
    circuit.add_voltage_source("VIN", "s0", "0", input_waveform or DC(0.0))
    for stage in range(n_stages):
        node_in, node_out = f"s{stage}", f"s{stage + 1}"
        circuit.add_fet(f"MP{stage}", node_out, node_in, "vdd", pfet)
        circuit.add_fet(f"MN{stage}", node_out, node_in, "0", nfet)
        circuit.add_capacitor(f"C{stage}", node_out, "0", load_f)
    return circuit


@dataclass(frozen=True)
class CascadeResult:
    """Per-stage voltage swings of both chains."""

    stage_swings_sat: tuple[float, ...]
    stage_swings_lin: tuple[float, ...]
    vdd: float

    @property
    def sat_final_swing_fraction(self) -> float:
        return self.stage_swings_sat[-1] / self.vdd

    @property
    def lin_final_swing_fraction(self) -> float:
        return self.stage_swings_lin[-1] / self.vdd

    @property
    def lin_attenuation_per_stage(self) -> float:
        """Geometric mean swing ratio of successive non-saturating stages."""
        swings = np.asarray(self.stage_swings_lin)
        ratios = swings[1:] / swings[:-1]
        return float(np.exp(np.mean(np.log(ratios))))

    def rows(self) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = []
        for i, swing in enumerate(self.stage_swings_sat, start=1):
            out.append((f"saturating: stage {i} swing [V]", swing))
        for i, swing in enumerate(self.stage_swings_lin, start=1):
            out.append((f"non-saturating: stage {i} swing [V]", swing))
        out.append(("non-saturating attenuation / stage", self.lin_attenuation_per_stage))
        return out


def _stage_swings(circuit: Circuit, n_stages: int, t_stop: float, dt: float):
    # Backward Euler: trapezoidal rings on the sharp stage transitions
    # (20 ps edges), which would inflate the measured swings past VDD.
    result = transient(circuit, t_stop, dt, integrator="backward-euler")
    swings = []
    for stage in range(1, n_stages + 1):
        settled = result.voltage(f"s{stage}")[result.time_s > t_stop * 0.1]
        swings.append(float(settled.max() - settled.min()))
    return tuple(swings)


def run_cascade(n_stages: int = N_STAGES, device_stack: str = "empirical") -> CascadeResult:
    """Drive both chains with a full-swing pulse and record stage swings.

    ``device_stack="empirical"`` reproduces Fig. 2's behavioural
    models; ``"physical"`` swaps the saturating chain onto the
    surrogate-compiled ballistic CNT-FET (the measured non-saturating
    GNR behaviour stays empirical — that is the paper's point), which
    the spline surrogate makes affordable inside the transient loop.
    """
    if device_stack not in ("empirical", "physical"):
        raise ValueError(f"unknown device stack {device_stack!r}")
    period = 4e-9
    stimulus = Pulse(
        v1=0.0, v2=VDD, delay_s=0.2e-9, rise_s=20e-12, fall_s=20e-12,
        width_s=period / 2.0, period_s=period,
    )
    sat_device = (
        physical_saturating_fet() if device_stack == "physical" else saturating_fet()
    )
    chain_sat = build_inverter_chain(
        sat_device, n_stages=n_stages, input_waveform=stimulus
    )
    chain_lin = build_inverter_chain(
        non_saturating_fet(), n_stages=n_stages, input_waveform=stimulus
    )
    dt = 10e-12
    swings_sat = _stage_swings(chain_sat, n_stages, 2 * period, dt)
    swings_lin = _stage_swings(chain_lin, n_stages, 2 * period, dt)
    return CascadeResult(
        stage_swings_sat=swings_sat, stage_swings_lin=swings_lin, vdd=VDD
    )

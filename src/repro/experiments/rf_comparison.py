"""Section II's RF argument: no saturation, no f_max — now over corners.

Compares a saturating (CNT-like) FET against the non-saturating
(measured-GNR-like) FET at the same bias and gate capacitance, and
verifies the causal chain the paper lays out: missing saturation ->
gds ~ gm -> intrinsic gain below unity -> f_max collapses relative to
f_T, while f_T itself (set by gm / C_gg) barely differs.

The nominal-point table survives unchanged; on top of it the
experiment now reports *distributions* over process variation, which
is what makes the argument robust rather than anecdotal:

- device-level f_T / f_max / intrinsic-gain corners through one
  batched linearization per device
  (:func:`repro.analysis.rf.rf_metrics_batch`), and
- circuit-level frequency responses of a complementary inverter built
  from each device, swept through the compiled batched AC path
  (:func:`repro.circuit.ac.ac_monte_carlo`): the saturating inverter
  holds gain above unity across every corner and reports a unity-gain
  frequency distribution; the non-saturating inverter's gain sits
  below unity at *every* corner, so no amount of process luck rescues
  f_max.

All draws are seed-pinned, so the distribution rows are deterministic
and golden-testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.rf import RFDistribution, RFMetrics, rf_metrics, rf_metrics_batch
from repro.circuit.ac import ac_monte_carlo
from repro.circuit.cells import build_inverter
from repro.circuit.sweep import FETVariation
from repro.circuit.waveforms import DC
from repro.devices.base import FETModel
from repro.experiments.fig2 import non_saturating_fet, saturating_fet

__all__ = ["RFComparisonResult", "run_rf_comparison"]

BIAS_VGS = 0.8
BIAS_VDS = 0.8
GATE_CAPACITANCE_F = 60e-18  # ~60 aF: a short-gate nano-FET

# Process-variation ensemble: one seed per device type so the two
# distributions are independent draws, sigmas in line with the
# variability experiments elsewhere in the repo.
VARIATION_SEED_SAT = 20140314
VARIATION_SEED_NONSAT = 20140315
N_VARIATION = 64
DRIVE_SIGMA = 0.10
VTH_SIGMA_V = 0.01

# Circuit-level AC: complementary inverter biased mid-rail (both FETs
# conducting — the high-gain region), swept 1 MHz .. 1 THz.
INVERTER_BIAS_V = 0.5
AC_FREQUENCIES_HZ = np.logspace(6, 12, 49)


@dataclass(frozen=True)
class RFComparisonResult:
    """Nominal RF metrics plus variation distributions for both devices."""

    saturating: RFMetrics
    non_saturating: RFMetrics
    saturating_corners: RFDistribution
    non_saturating_corners: RFDistribution
    sat_ac_gain: np.ndarray
    sat_ac_unity_hz: np.ndarray
    nonsat_ac_gain: np.ndarray

    @property
    def gain_ratio(self) -> float:
        return self.saturating.intrinsic_gain / self.non_saturating.intrinsic_gain

    @property
    def fmax_ratio(self) -> float:
        return self.saturating.fmax_hz / self.non_saturating.fmax_hz

    def rows(self) -> list[tuple[str, float]]:
        sat = self.saturating_corners
        nonsat = self.non_saturating_corners
        sat_unity = self.sat_ac_unity_hz[np.isfinite(self.sat_ac_unity_hz)]
        return [
            ("saturating: gm [uS]", self.saturating.gm_s * 1e6),
            ("saturating: gds [uS]", self.saturating.gds_s * 1e6),
            ("saturating: intrinsic gain", self.saturating.intrinsic_gain),
            ("saturating: f_T [GHz]", self.saturating.ft_hz / 1e9),
            ("saturating: f_max [GHz]", self.saturating.fmax_hz / 1e9),
            ("non-saturating: intrinsic gain", self.non_saturating.intrinsic_gain),
            ("non-saturating: f_T [GHz]", self.non_saturating.ft_hz / 1e9),
            ("non-saturating: f_max [GHz]", self.non_saturating.fmax_hz / 1e9),
            ("f_max ratio (sat / non-sat)", self.fmax_ratio),
            ("saturating: f_T mean [GHz]", float(sat.ft_hz.mean()) / 1e9),
            ("saturating: f_T std [GHz]", float(sat.ft_hz.std()) / 1e9),
            ("saturating: f_max mean [GHz]", float(sat.fmax_hz.mean()) / 1e9),
            ("saturating: f_max std [GHz]", float(sat.fmax_hz.std()) / 1e9),
            ("saturating: gain mean", float(sat.intrinsic_gain.mean())),
            ("saturating: gain std", float(sat.intrinsic_gain.std())),
            ("non-saturating: gain mean", float(nonsat.intrinsic_gain.mean())),
            ("non-saturating: gain std", float(nonsat.intrinsic_gain.std())),
            ("non-saturating: f_max mean [GHz]", float(nonsat.fmax_hz.mean()) / 1e9),
            ("inverter AC sat: low-f gain mean", float(self.sat_ac_gain.mean())),
            ("inverter AC sat: low-f gain std", float(self.sat_ac_gain.std())),
            ("inverter AC sat: unity-gain mean [GHz]", float(sat_unity.mean()) / 1e9),
            ("inverter AC sat: unity-gain std [GHz]", float(sat_unity.std()) / 1e9),
            ("inverter AC non-sat: low-f gain mean", float(self.nonsat_ac_gain.mean())),
            (
                "inverter AC non-sat: below-unity fraction",
                float(np.mean(self.nonsat_ac_gain < 1.0)),
            ),
        ]


def _device_corners(device: FETModel, seed: int) -> RFDistribution:
    """Device-level RF distribution: one batched linearization per device."""
    variation = FETVariation.sample(
        N_VARIATION, 1, seed=seed, drive_sigma=DRIVE_SIGMA, vth_sigma_v=VTH_SIGMA_V
    )
    return rf_metrics_batch(
        device,
        BIAS_VGS,
        BIAS_VDS,
        GATE_CAPACITANCE_F,
        drive_scale=variation.drive_scale[:, 0],
        vth_shift_v=variation.vth_shift_v[:, 0],
    )


def _inverter_ac_distribution(
    nfet: FETModel, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """(low-frequency gain, unity-gain frequency) per corner of an inverter.

    Builds a complementary inverter biased mid-rail and sweeps every
    process corner through the compiled batched AC path — batched DC
    operating points, one stacked linearization, stacked complex
    solves.  Unity-gain frequencies are NaN where the corner never
    crosses unity (the non-saturating case, by the paper's argument).
    """
    cell = build_inverter(nfet, input_waveform=DC(INVERTER_BIAS_V))
    variation = FETVariation.sample(
        N_VARIATION, 2, seed=seed, drive_sigma=DRIVE_SIGMA, vth_sigma_v=VTH_SIGMA_V
    )
    result = ac_monte_carlo(cell.circuit, "VIN", AC_FREQUENCIES_HZ, variation)
    return (
        result.low_frequency_gain(cell.output_node),
        result.unity_gain_frequencies_hz(cell.output_node),
    )


def run_rf_comparison() -> RFComparisonResult:
    """Evaluate both device types: nominal bias point plus variation corners."""
    sat_device = saturating_fet()
    nonsat_device = non_saturating_fet()
    saturating = rf_metrics(sat_device, BIAS_VGS, BIAS_VDS, GATE_CAPACITANCE_F)
    non_saturating = rf_metrics(nonsat_device, BIAS_VGS, BIAS_VDS, GATE_CAPACITANCE_F)
    sat_gain, sat_unity = _inverter_ac_distribution(sat_device, VARIATION_SEED_SAT)
    nonsat_gain, _ = _inverter_ac_distribution(nonsat_device, VARIATION_SEED_NONSAT)
    return RFComparisonResult(
        saturating=saturating,
        non_saturating=non_saturating,
        saturating_corners=_device_corners(sat_device, VARIATION_SEED_SAT),
        non_saturating_corners=_device_corners(nonsat_device, VARIATION_SEED_NONSAT),
        sat_ac_gain=sat_gain,
        sat_ac_unity_hz=sat_unity,
        nonsat_ac_gain=nonsat_gain,
    )

"""Section II's RF argument: no saturation, no f_max.

Compares a saturating (CNT-like) FET against the non-saturating
(measured-GNR-like) FET at the same bias and gate capacitance, and
verifies the causal chain the paper lays out: missing saturation ->
gds ~ gm -> intrinsic gain below unity -> f_max collapses relative to
f_T, while f_T itself (set by gm / C_gg) barely differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rf import RFMetrics, rf_metrics
from repro.experiments.fig2 import non_saturating_fet, saturating_fet

__all__ = ["RFComparisonResult", "run_rf_comparison"]

BIAS_VGS = 0.8
BIAS_VDS = 0.8
GATE_CAPACITANCE_F = 60e-18  # ~60 aF: a short-gate nano-FET


@dataclass(frozen=True)
class RFComparisonResult:
    """RF metrics of both device types at the common bias point."""

    saturating: RFMetrics
    non_saturating: RFMetrics

    @property
    def gain_ratio(self) -> float:
        return self.saturating.intrinsic_gain / self.non_saturating.intrinsic_gain

    @property
    def fmax_ratio(self) -> float:
        return self.saturating.fmax_hz / self.non_saturating.fmax_hz

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("saturating: gm [uS]", self.saturating.gm_s * 1e6),
            ("saturating: gds [uS]", self.saturating.gds_s * 1e6),
            ("saturating: intrinsic gain", self.saturating.intrinsic_gain),
            ("saturating: f_T [GHz]", self.saturating.ft_hz / 1e9),
            ("saturating: f_max [GHz]", self.saturating.fmax_hz / 1e9),
            ("non-saturating: intrinsic gain", self.non_saturating.intrinsic_gain),
            ("non-saturating: f_T [GHz]", self.non_saturating.ft_hz / 1e9),
            ("non-saturating: f_max [GHz]", self.non_saturating.fmax_hz / 1e9),
            ("f_max ratio (sat / non-sat)", self.fmax_ratio),
        ]


def run_rf_comparison() -> RFComparisonResult:
    """Evaluate both device types at the common RF bias point."""
    saturating = rf_metrics(
        saturating_fet(), BIAS_VGS, BIAS_VDS, GATE_CAPACITANCE_F
    )
    non_saturating = rf_metrics(
        non_saturating_fet(), BIAS_VGS, BIAS_VDS, GATE_CAPACITANCE_F
    )
    return RFComparisonResult(saturating=saturating, non_saturating=non_saturating)

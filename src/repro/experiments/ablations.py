"""Ablations on the design choices the paper calls out.

Four knobs the text argues about, each swept in isolation:

* **Dark space** (Skotnicki & Boeuf, Section I/III.C): SS vs gate length
  for Si / Ge / InGaAs / InAs channels against the zero-dark-space CNT —
  showing the high-mobility penalty a better gate dielectric cannot fix.
* **Ballisticity** (Section III.E): CNT-FET on-current vs channel length
  through the mean-free-path transmission.
* **Contact length** (Section III.B): series resistance vs metal length,
  the sub-100 nm dependence with the ~11 kOhm long-contact floor.
* **TFET electrostatics** (Section IV): SS and on-current of the gated
  PIN diode vs gate-oxide thickness — the paper's "if the electrostatic
  design is improved ... an even better result should be obtainable".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.sweep import SweepPlan
from repro.devices.cntfet import CNTFET
from repro.devices.contacts import ContactModel
from repro.devices.tfet import CNTTunnelFET
from repro.physics.cnt import chirality_for_gap
from repro.physics.electrostatics import (
    CNT_CHANNEL,
    ChannelMaterial,
    GERMANIUM,
    INAS,
    INGAAS,
    SILICON,
    scale_length_nm,
    subthreshold_swing_mv_per_decade,
)

__all__ = [
    "DarkSpaceAblation",
    "BallisticityAblation",
    "ContactLengthAblation",
    "TFETOxideAblation",
    "run_dark_space_ablation",
    "run_ballisticity_ablation",
    "run_contact_length_ablation",
    "run_tfet_oxide_ablation",
]


@dataclass(frozen=True)
class DarkSpaceAblation:
    """SS vs gate length per channel material."""

    gate_lengths_nm: np.ndarray
    ss_by_material: dict[str, np.ndarray]

    def penalty_at(self, gate_length_nm: float, material: str) -> float:
        """SS(material) / SS(CNT) at one gate length."""
        idx = int(np.argmin(np.abs(self.gate_lengths_nm - gate_length_nm)))
        return float(self.ss_by_material[material][idx] / self.ss_by_material["CNT"][idx])


def _dark_space_kernel(corner, rng, payload):
    """SS-vs-L trace of one (material, geometry) corner."""
    material, geometry = corner
    lengths, physical_eot_nm = payload
    lam = scale_length_nm(material, physical_eot_nm, geometry=geometry)
    return material.name, np.array(
        [subthreshold_swing_mv_per_decade(float(l), lam) for l in lengths]
    )


def run_dark_space_ablation(
    gate_lengths_nm=(7.0, 9.0, 12.0, 16.0, 22.0, 30.0), physical_eot_nm: float = 0.7
) -> DarkSpaceAblation:
    """Sweep SS vs L for every channel material at a fixed gate stack."""
    lengths = np.asarray(gate_lengths_nm, dtype=float)
    materials: list[tuple[ChannelMaterial, str]] = [
        (SILICON, "double-gate"),
        (GERMANIUM, "double-gate"),
        (INGAAS, "double-gate"),
        (INAS, "double-gate"),
        (CNT_CHANNEL, "gaa"),
    ]
    sweep = SweepPlan(_dark_space_kernel, payload=(lengths, physical_eot_nm))
    ss = dict(sweep.run(materials))
    return DarkSpaceAblation(gate_lengths_nm=lengths, ss_by_material=ss)


@dataclass(frozen=True)
class BallisticityAblation:
    """On-current and transmission vs channel length."""

    channel_lengths_nm: np.ndarray
    transmission: np.ndarray
    on_current_a: np.ndarray


def _ballisticity_kernel(length, rng, chirality):
    """(transmission, on-current) of a CNT-FET at one channel length."""
    device = CNTFET(chirality, channel_length_nm=float(length))
    return device.transmission, device.current(0.6, 0.5)


def run_ballisticity_ablation(
    channel_lengths_nm=(9.0, 20.0, 50.0, 100.0, 300.0, 1000.0)
) -> BallisticityAblation:
    """CNT-FET on-current degradation with channel length."""
    lengths = np.asarray(channel_lengths_nm, dtype=float)
    sweep = SweepPlan(_ballisticity_kernel, payload=chirality_for_gap(0.56))
    points = sweep.run(lengths)
    return BallisticityAblation(
        channel_lengths_nm=lengths,
        transmission=np.array([p[0] for p in points]),
        on_current_a=np.array([p[1] for p in points]),
    )


@dataclass(frozen=True)
class ContactLengthAblation:
    """Device series resistance vs contact metal length."""

    contact_lengths_nm: np.ndarray
    series_resistance_ohm: np.ndarray

    @property
    def floor_ohm(self) -> float:
        return float(self.series_resistance_ohm[-1])


def _contact_kernel(length, rng, model):
    """Series resistance of one contact length."""
    return model.device_series_resistance_ohm(float(length))


def run_contact_length_ablation(
    contact_lengths_nm=(5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0)
) -> ContactLengthAblation:
    """Sweep the transfer-length contact model (Ref. [16] behaviour)."""
    lengths = np.asarray(contact_lengths_nm, dtype=float)
    sweep = SweepPlan(_contact_kernel, payload=ContactModel())
    resistance = np.array(sweep.run(lengths))
    return ContactLengthAblation(
        contact_lengths_nm=lengths, series_resistance_ohm=resistance
    )


@dataclass(frozen=True)
class TFETOxideAblation:
    """TFET figures of merit vs gate oxide thickness."""

    t_ox_nm: np.ndarray
    ss_mv_per_decade: np.ndarray
    on_current_a: np.ndarray
    screening_length_nm: np.ndarray


def _tfet_oxide_kernel(t_ox, rng, chirality):
    """(SS, on-current, screening length) of the TFET at one oxide thickness."""
    device = CNTTunnelFET(chirality, t_ox_nm=float(t_ox))
    return (
        device.subthreshold_swing_mv_per_decade(),
        abs(device.current(-2.0, -0.5)),
        device.screening_length_nm,
    )


def run_tfet_oxide_ablation(t_ox_values_nm=(2.0, 5.0, 10.0, 20.0)) -> TFETOxideAblation:
    """Thinner oxide -> shorter screening length -> more on-current.

    This is the paper's predicted improvement path for the Fig. 6 device
    ("implementing high-k dielectrics and segmented gates").
    """
    thicknesses = np.asarray(t_ox_values_nm, dtype=float)
    sweep = SweepPlan(_tfet_oxide_kernel, payload=chirality_for_gap(0.56))
    points = sweep.run(thicknesses)
    return TFETOxideAblation(
        t_ox_nm=thicknesses,
        ss_mv_per_decade=np.array([p[0] for p in points]),
        on_current_a=np.array([p[1] for p in points]),
        screening_length_nm=np.array([p[2] for p in points]),
    )

"""In-text numeric claims of the paper, collected as "Table 1".

The paper quotes several headline comparisons without tabulating them;
this module regenerates each:

* Intel trigate: ~66 uA at V_GS = V_DS = 1 V (fin 35 x 18 nm, L_g 30 nm);
* a ~1 nm-class CNT-FET delivers ~20 uA at V_DS = 0.6 V — almost 1/3 of
  the trigate current from a >300x smaller conduction cross-section;
* overall CNT-FET series resistance as low as ~11 kOhm (Ref. [16]);
* sub-10 nm GNR-FETs: I_on/I_off ~ 1e6 and ~2 mA/um at V_DS = 1 V, but
  no current saturation (Ref. [5]);
* the 9 nm CNT-FET's subthreshold swing beats what the dark-space trend
  predicts for high-mobility channels (Section III.C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.iv import ion_ioff_ratio, saturation_index
from repro.devices.base import output_curve, transfer_curve
from repro.devices.cntfet import CNTFET
from repro.devices.contacts import ContactModel
from repro.devices.empirical import NonSaturatingFET
from repro.devices.reference import trigate_intel_22nm
from repro.physics.electrostatics import (
    CNT_CHANNEL,
    INAS,
    SILICON,
    scale_length_nm,
    subthreshold_swing_mv_per_decade,
)

__all__ = ["Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Result:
    """Every in-text numeric claim, regenerated."""

    trigate_current_a: float
    cnt_current_a: float
    cross_section_ratio: float
    series_resistance_ohm: float
    gnr_on_off_ratio: float
    gnr_density_ma_per_um: float
    gnr_saturation_index: float
    ss_cnt_9nm_mv: float
    ss_si_9nm_mv: float
    ss_inas_9nm_mv: float

    @property
    def current_ratio(self) -> float:
        """CNT (0.6 V) over trigate (1 V) current — paper: "almost 1/3"."""
        return self.cnt_current_a / self.trigate_current_a

    def rows(self) -> list[tuple[str, float, float]]:
        """(claim, paper value, measured value) rows."""
        return [
            ("trigate I(1V,1V) [uA]", 66.0, self.trigate_current_a * 1e6),
            ("CNT I(0.6V) [uA]", 20.0, self.cnt_current_a * 1e6),
            ("CNT/trigate current ratio", 1.0 / 3.0, self.current_ratio),
            ("cross-section ratio", 300.0, self.cross_section_ratio),
            ("CNT series resistance [kOhm]", 11.0, self.series_resistance_ohm / 1e3),
            ("GNR Ion/Ioff", 1e6, self.gnr_on_off_ratio),
            ("GNR density @1V [mA/um]", 2.0, self.gnr_density_ma_per_um),
            ("GNR saturation index", 0.0, self.gnr_saturation_index),
            ("9 nm SS: CNT [mV/dec]", 94.0, self.ss_cnt_9nm_mv),
            ("9 nm SS: Si [mV/dec]", float("nan"), self.ss_si_9nm_mv),
            ("9 nm SS: InAs [mV/dec]", float("nan"), self.ss_inas_9nm_mv),
        ]


def run_table1() -> Table1Result:
    """Regenerate every in-text claim of Sections II-III."""
    trigate = trigate_intel_22nm()
    cnt = CNTFET.reference_device()

    tube_cross_section_nm2 = math.pi * (cnt.chirality.diameter_nm / 2.0) ** 2
    cross_ratio = trigate.cross_section_nm2 / tube_cross_section_nm2

    # Long-contact series resistance floor (Franklin & Chen, Ref. [16]).
    series_r = ContactModel().device_series_resistance_ohm(contact_length_nm=500.0)

    # Sub-10 nm GNR device of Ref. [5]: w ~ 2 nm ribbon quoted per um width.
    gnr_width_um = 0.002
    gnr = NonSaturatingFET(
        g_on_s=2.0e-3 * gnr_width_um,  # 2 mA/um at 1 V
        vt=0.4,
        v_on=1.0,
        smoothing_v=0.035,
    )
    vgs = np.linspace(0.0, 1.0, 201)
    transfer = transfer_curve(gnr, vgs, 1.0)
    on_off = ion_ioff_ratio(vgs, transfer, v_off=0.0, v_on=1.0)
    density = gnr.current(1.0, 1.0) / gnr_width_um * 1e3  # [A/um] -> [mA/um]
    vds = np.linspace(0.0, 1.0, 101)
    output = output_curve(gnr, vds, 1.0)
    gnr_sat = saturation_index(vds, output)

    # Dark-space SS comparison at L = 9 nm, EOT 0.7 nm.
    eot = 0.7
    ss_cnt = subthreshold_swing_mv_per_decade(
        9.0, scale_length_nm(CNT_CHANNEL, eot, geometry="gaa")
    )
    ss_si = subthreshold_swing_mv_per_decade(
        9.0, scale_length_nm(SILICON, eot, geometry="double-gate")
    )
    ss_inas = subthreshold_swing_mv_per_decade(
        9.0, scale_length_nm(INAS, eot, geometry="double-gate")
    )

    return Table1Result(
        trigate_current_a=trigate.current(1.0, 1.0),
        cnt_current_a=cnt.current(0.6, 0.6),
        cross_section_ratio=cross_ratio,
        series_resistance_ohm=series_r,
        gnr_on_off_ratio=on_off,
        gnr_density_ma_per_um=density,
        gnr_saturation_index=gnr_sat,
        ss_cnt_9nm_mv=ss_cnt,
        ss_si_9nm_mv=ss_si,
        ss_inas_9nm_mv=ss_inas,
    )

"""One module per paper artefact: regenerates every figure and claim.

* :mod:`repro.experiments.fig1` — CNT vs GNR FET at equal gap.
* :mod:`repro.experiments.fig2` — inverter study (saturation vs not).
* :mod:`repro.experiments.fig4` — contact-resistance degradation.
* Fig. 5 lives in :mod:`repro.benchmarking.fig5` (shared dataset).
* :mod:`repro.experiments.fig6` — CNT tunnel FET.
* :mod:`repro.experiments.table1` — in-text numeric claims.
* :mod:`repro.experiments.integration_stats` — Section V statistics.
* :mod:`repro.experiments.ablations` — design-choice sweeps.
"""

from repro.benchmarking.fig5 import run_fig5_benchmark
from repro.experiments.ablations import (
    run_ballisticity_ablation,
    run_contact_length_ablation,
    run_dark_space_ablation,
    run_tfet_oxide_ablation,
)
from repro.experiments.cascade import CascadeResult, run_cascade
from repro.experiments.fabric_density import FabricDensityResult, run_fabric_density
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.integration_stats import IntegrationResult, run_integration_stats
from repro.experiments.rf_comparison import RFComparisonResult, run_rf_comparison
from repro.experiments.scaling import ScalingResult, run_voltage_scaling
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "CascadeResult",
    "FabricDensityResult",
    "Fig1Result",
    "Fig2Result",
    "Fig4Result",
    "Fig6Result",
    "IntegrationResult",
    "RFComparisonResult",
    "ScalingResult",
    "Table1Result",
    "run_ballisticity_ablation",
    "run_cascade",
    "run_contact_length_ablation",
    "run_dark_space_ablation",
    "run_fabric_density",
    "run_fig1",
    "run_fig2",
    "run_fig4",
    "run_fig5_benchmark",
    "run_fig6",
    "run_integration_stats",
    "run_rf_comparison",
    "run_voltage_scaling",
    "run_table1",
    "run_tfet_oxide_ablation",
]

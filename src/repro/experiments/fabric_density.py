"""Aligned-fabric requirements: pitch and purity, quantified.

The abstract's closing warning — "Without such a high yield wafer-scale
integration, SWCNT circuits will be an illusional dream" — is a
statement about fabrics: logic needs many aligned tubes per device at a
tight pitch AND at extreme semiconducting purity.  This experiment
sweeps both knobs on sampled fabric transistors:

* **pitch sweep** (purity fixed high): drive current density per um of
  layout width vs placement pitch — the density race against the
  trigate's ~0.75 mA/um;
* **purity sweep** (pitch fixed): median on/off ratio of sampled fabric
  devices vs semiconducting purity — the on/off collapse caused by
  metallic shunts, and the purity level where logic becomes viable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.sweep import ExecutionPolicy, SweepPlan, ensure_seed
from repro.devices.fabric import sample_fabric
from repro.devices.reference import trigate_intel_22nm
from repro.integration.growth import GrowthDistribution

__all__ = ["FabricDensityResult", "run_fabric_density"]

VDD = 0.6
FABRIC_WIDTH_UM = 0.2

# Sorted, diameter-refined material (solution processing narrows the
# diameter distribution as well as the electronic type); the tight window
# also keeps the per-chirality device cache small.
SORTED_GROWTH = GrowthDistribution(
    mean_diameter_nm=1.5, sigma_diameter_nm=0.1, diameter_window_nm=(1.3, 1.7)
)


@dataclass(frozen=True)
class FabricDensityResult:
    """Pitch and purity sweeps of sampled fabric transistors."""

    pitches_nm: tuple[float, ...]
    density_ma_per_um: tuple[float, ...]
    purities: tuple[float, ...]
    median_on_off: tuple[float, ...]
    trigate_density_ma_per_um: float

    def pitch_to_beat_trigate_nm(self) -> float:
        """Coarsest swept pitch whose fabric out-drives the trigate."""
        winning = [
            pitch
            for pitch, density in zip(self.pitches_nm, self.density_ma_per_um)
            if density > self.trigate_density_ma_per_um
        ]
        if not winning:
            return float("nan")
        return max(winning)

    def purity_for_on_off(self, target: float = 1e4) -> float:
        """Lowest swept purity with median on/off above the target."""
        viable = [
            purity
            for purity, ratio in zip(self.purities, self.median_on_off)
            if ratio >= target
        ]
        if not viable:
            return float("nan")
        return min(viable)

    def rows(self) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = [
            ("trigate density [mA/um]", self.trigate_density_ma_per_um)
        ]
        for pitch, density in zip(self.pitches_nm, self.density_ma_per_um):
            out.append((f"fabric density @ pitch {pitch:g} nm [mA/um]", density))
        for purity, ratio in zip(self.purities, self.median_on_off):
            out.append((f"median on/off @ purity {purity:g}", ratio))
        out.append(("pitch to beat trigate [nm]", self.pitch_to_beat_trigate_nm()))
        out.append(("purity for on/off 1e4", self.purity_for_on_off()))
        return out


def _pitch_density_kernel(pitch, rng, payload):
    """Drive density [mA/um] of a pure fabric sampled at one pitch."""
    fabric = sample_fabric(
        width_um=FABRIC_WIDTH_UM,
        pitch_nm=float(pitch),
        semiconducting_purity=1.0,
        growth=SORTED_GROWTH,
        rng=rng,
    )
    return fabric.current_density_a_per_m(VDD, VDD) * 1e-3  # A/m -> mA/um


def _purity_on_off_kernel(corner, rng, payload):
    """Clamped on/off ratio of one fabric sample at one purity."""
    purity, _sample_index = corner
    fabric = sample_fabric(
        width_um=FABRIC_WIDTH_UM,
        pitch_nm=8.0,
        semiconducting_purity=float(purity),
        growth=SORTED_GROWTH,
        rng=rng,
    )
    return min(fabric.on_off_ratio(VDD), 1e12)


def run_fabric_density(
    pitches_nm=(4.0, 8.0, 16.0, 32.0, 64.0),
    purities=(0.9, 0.99, 0.999, 0.9999, 1.0),
    n_samples: int = 7,
    seed: int = 77,
    policy: ExecutionPolicy | None = None,
) -> FabricDensityResult:
    """Sweep placement pitch and semiconducting purity of fabrics.

    Both sweeps route through the sweep engine with one substream per
    sampled fabric, spawned from the single ``seed`` — so a fabric's
    draw depends only on its (sweep, position), not on how the grid is
    chunked or which other points are swept alongside it.
    """
    pitch_root, purity_root = np.random.SeedSequence(ensure_seed(seed)).spawn(2)

    densities = SweepPlan(_pitch_density_kernel).run(
        pitches_nm, seed=pitch_root, policy=policy
    )

    corners = [
        (float(purity), sample) for purity in purities for sample in range(n_samples)
    ]
    ratios = SweepPlan(_purity_on_off_kernel).run(
        corners, seed=purity_root, policy=policy
    )
    median_on_off = [
        float(np.median(ratios[i : i + n_samples]))
        for i in range(0, len(corners), n_samples)
    ]

    trigate = trigate_intel_22nm()
    trigate_density = trigate.current_density_a_per_m(VDD, VDD) * 1e-3
    return FabricDensityResult(
        pitches_nm=tuple(float(p) for p in pitches_nm),
        density_ma_per_um=tuple(densities),
        purities=tuple(float(p) for p in purities),
        median_on_off=tuple(median_on_off),
        trigate_density_ma_per_um=trigate_density,
    )

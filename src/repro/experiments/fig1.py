"""Fig. 1 — simulated CNT-FET vs GNR-FET at equal band gap (0.56 eV).

Regenerates both panels of the paper's Fig. 1 (after Ouyang et al.):

* (a) I_D-V_G at V_DS = 0.5 V: the equal-gap CNT and GNR transfer curves
  overlap on a log scale (same barrier thermionics);
* (b) I_D-V_DS at V_G = 0.5 V: both *simulated* devices saturate, with
  only a small linear-scale difference (the GNR's lifted valley
  degeneracy); the **measured** GNR ("real GNR") instead behaves as a
  gate-steered linear resistor at two gate voltages, with no saturation
  at these bias levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.iv import saturation_index, subthreshold_swing_mv_per_decade
from repro.devices.base import output_curve, transfer_curve
from repro.devices.cntfet import CNTFET
from repro.devices.empirical import NonSaturatingFET
from repro.devices.gnrfet import GNRFET

__all__ = ["Fig1Result", "run_fig1"]

GAP_EV = 0.56
VDS_TRANSFER_V = 0.5
VG_OUTPUT_V = 0.5
REAL_GNR_GATE_VOLTAGES = (0.35, 0.5)


@dataclass(frozen=True)
class Fig1Result:
    """All series of Fig. 1 plus the derived comparison metrics."""

    vgs: np.ndarray
    cnt_transfer_a: np.ndarray
    gnr_transfer_a: np.ndarray
    vds: np.ndarray
    cnt_output_a: np.ndarray
    gnr_output_a: np.ndarray
    real_gnr_output_a: dict[float, np.ndarray] = field(default_factory=dict)
    cnt_gap_ev: float = 0.0
    gnr_gap_ev: float = 0.0

    # -- derived metrics ------------------------------------------------------
    @property
    def log_scale_max_deviation_decades(self) -> float:
        """Max |log10(I_cnt) - log10(I_gnr)| over the transfer sweep.

        The paper: "The data overlap on this scale" — i.e. well under a
        decade apart everywhere above the noise floor.
        """
        mask = (self.cnt_transfer_a > 1e-12) & (self.gnr_transfer_a > 1e-12)
        ratio = np.log10(self.cnt_transfer_a[mask] / self.gnr_transfer_a[mask])
        return float(np.max(np.abs(ratio)))

    @property
    def linear_scale_on_ratio(self) -> float:
        """I_cnt / I_gnr at full drive — the "small difference" of panel (b)."""
        return float(self.cnt_output_a[-1] / self.gnr_output_a[-1])

    @property
    def cnt_saturation(self) -> float:
        return saturation_index(self.vds, self.cnt_output_a)

    @property
    def gnr_saturation(self) -> float:
        return saturation_index(self.vds, self.gnr_output_a)

    @property
    def real_gnr_saturation(self) -> float:
        """Saturation index of the measured-GNR stand-in (≈ 0)."""
        worst = 0.0
        for current in self.real_gnr_output_a.values():
            worst = max(worst, saturation_index(self.vds, current))
        return worst

    def subthreshold_swings(self) -> tuple[float, float]:
        """(CNT, GNR) SS [mV/dec] from the transfer curves."""
        low = self.vgs <= 0.3
        return (
            subthreshold_swing_mv_per_decade(self.vgs[low], self.cnt_transfer_a[low]),
            subthreshold_swing_mv_per_decade(self.vgs[low], self.gnr_transfer_a[low]),
        )

    def rows(self) -> list[tuple[str, float]]:
        ss_cnt, ss_gnr = self.subthreshold_swings()
        return [
            ("CNT gap [eV]", self.cnt_gap_ev),
            ("GNR gap [eV]", self.gnr_gap_ev),
            ("log-scale max deviation [decades]", self.log_scale_max_deviation_decades),
            ("linear-scale on-current ratio CNT/GNR", self.linear_scale_on_ratio),
            ("CNT saturation index", self.cnt_saturation),
            ("GNR saturation index", self.gnr_saturation),
            ("real-GNR saturation index", self.real_gnr_saturation),
            ("CNT SS [mV/dec]", ss_cnt),
            ("GNR SS [mV/dec]", ss_gnr),
        ]


def run_fig1(n_points: int = 41) -> Fig1Result:
    """Regenerate every series of the paper's Fig. 1."""
    cnt = CNTFET.for_bandgap(GAP_EV)
    gnr = GNRFET.for_bandgap(GAP_EV)

    vgs = np.linspace(0.0, 0.6, n_points)
    cnt_transfer = transfer_curve(cnt, vgs, VDS_TRANSFER_V)
    gnr_transfer = transfer_curve(gnr, vgs, VDS_TRANSFER_V)

    vds = np.linspace(0.0, 0.5, n_points)
    cnt_output = output_curve(cnt, vds, VG_OUTPUT_V)
    gnr_output = output_curve(gnr, vds, VG_OUTPUT_V)

    # "Real GNR": linear resistor steered by the gate, matched to the same
    # current scale at full drive so the panels are comparable.
    real_gnr = NonSaturatingFET(
        g_on_s=gnr_output[-1] / 0.5, vt=0.15, v_on=0.5, smoothing_v=0.1
    )
    real_output = {
        vg: output_curve(real_gnr, vds, vg)
        for vg in REAL_GNR_GATE_VOLTAGES
    }
    return Fig1Result(
        vgs=vgs,
        cnt_transfer_a=cnt_transfer,
        gnr_transfer_a=gnr_transfer,
        vds=vds,
        cnt_output_a=cnt_output,
        gnr_output_a=gnr_output,
        real_gnr_output_a=real_output,
        cnt_gap_ev=cnt.chirality.bandgap_ev(),
        gnr_gap_ev=gnr.ribbon.bandgap_ev(),
    )

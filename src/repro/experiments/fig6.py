"""Fig. 6 — the CNT tunnel FET (gated PIN diode).

Regenerates the reverse-bias transfer characteristic of the PEI-doped
CNT PIN diode: a sharp band-to-band-tunneling turn-on as the gate goes
negative (SS ~ 83 mV/dec measured, individual intervals down to
~32 mV/dec), an on-current density of order 1 mA/um, and a forward-bias
branch that the gate hardly modulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.tfet import CNTTunnelFET
from repro.physics.cnt import chirality_for_gap

__all__ = ["Fig6Result", "run_fig6", "REVERSE_BIAS_V", "FORWARD_BIAS_V"]

GAP_EV = 0.56
REVERSE_BIAS_V = -0.5
FORWARD_BIAS_V = 0.4


@dataclass(frozen=True)
class Fig6Result:
    """Reverse transfer curve plus forward-bias gate (in)dependence."""

    v_gate: np.ndarray
    reverse_current_a: np.ndarray
    forward_current_a: np.ndarray
    ss_mv_per_decade: float
    on_current_density_a_per_m: float
    screening_length_nm: float

    @property
    def reverse_on_off_ratio(self) -> float:
        return float(self.reverse_current_a.max() / self.reverse_current_a.min())

    @property
    def forward_gate_modulation(self) -> float:
        """max/min forward current over the gate sweep (~1 = gate-independent)."""
        return float(self.forward_current_a.max() / self.forward_current_a.min())

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("SS [mV/dec]", self.ss_mv_per_decade),
            ("on-current density [mA/um]", self.on_current_density_a_per_m * 1e-3),
            ("reverse on/off ratio", self.reverse_on_off_ratio),
            ("forward gate modulation (max/min)", self.forward_gate_modulation),
            ("screening length [nm]", self.screening_length_nm),
        ]


def run_fig6(n_points: int = 201) -> Fig6Result:
    """Regenerate Fig. 6(b): gated PIN diode transfer characteristics."""
    device = CNTTunnelFET(chirality_for_gap(GAP_EV))
    v_gate = np.linspace(-2.0, 1.0, n_points)
    reverse = device.transfer_curve(v_gate, REVERSE_BIAS_V)
    forward = device.transfer_curve(v_gate, FORWARD_BIAS_V)
    return Fig6Result(
        v_gate=v_gate,
        reverse_current_a=np.clip(reverse, 1e-14, None),
        forward_current_a=np.clip(forward, 1e-14, None),
        ss_mv_per_decade=device.subthreshold_swing_mv_per_decade(REVERSE_BIAS_V),
        on_current_density_a_per_m=device.on_current_density_a_per_m(
            v_gate=-2.0, v_diode=REVERSE_BIAS_V
        ),
        screening_length_nm=device.screening_length_nm,
    )

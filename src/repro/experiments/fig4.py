"""Fig. 4 — contact resistance linearises and suppresses the CNT-FET I-V.

The paper shows the same CNT-FET twice: (a) ideally contacted, with
clean current saturation; (b) with 50 kOhm added at each of source and
drain, which both cuts the current and drags the characteristic toward a
linear resistor — "not only is the current reduced, also the shape of
the I-V has changed".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.iv import saturation_index
from repro.devices.base import output_curve
from repro.devices.cntfet import CNTFET
from repro.devices.contacts import SeriesResistanceFET

__all__ = ["Fig4Result", "run_fig4", "CONTACT_RESISTANCE_OHM"]

CONTACT_RESISTANCE_OHM = 50e3
GATE_VOLTAGES = (0.3, 0.4, 0.5, 0.6, 0.7)


@dataclass(frozen=True)
class Fig4Result:
    """Output families of the ideal and resistive-contact device."""

    vds: np.ndarray
    ideal_family: dict[float, np.ndarray]
    contacted_family: dict[float, np.ndarray]

    @property
    def top_gate_voltage(self) -> float:
        return max(self.ideal_family)

    @property
    def current_suppression(self) -> float:
        """I_ideal / I_contacted at the top drive point."""
        vg = self.top_gate_voltage
        return float(self.ideal_family[vg][-1] / self.contacted_family[vg][-1])

    @property
    def ideal_saturation(self) -> float:
        return saturation_index(self.vds, self.ideal_family[self.top_gate_voltage])

    @property
    def contacted_saturation(self) -> float:
        return saturation_index(self.vds, self.contacted_family[self.top_gate_voltage])

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("current suppression at full drive", self.current_suppression),
            ("ideal saturation index", self.ideal_saturation),
            ("contacted saturation index", self.contacted_saturation),
            ("ideal I_on [uA]", self.ideal_family[self.top_gate_voltage][-1] * 1e6),
            (
                "contacted I_on [uA]",
                self.contacted_family[self.top_gate_voltage][-1] * 1e6,
            ),
        ]


def run_fig4(n_points: int = 41) -> Fig4Result:
    """Regenerate both panels of Fig. 4."""
    ideal = CNTFET.reference_device()
    contacted = SeriesResistanceFET(
        ideal, CONTACT_RESISTANCE_OHM, CONTACT_RESISTANCE_OHM
    )
    vds = np.linspace(0.0, 0.5, n_points)
    ideal_family = {
        vg: output_curve(ideal, vds, vg)
        for vg in GATE_VOLTAGES
    }
    contacted_family = {
        vg: output_curve(contacted, vds, vg)
        for vg in GATE_VOLTAGES
    }
    return Fig4Result(
        vds=vds, ideal_family=ideal_family, contacted_family=contacted_family
    )

"""Section V — wafer-scale integration statistics, end to end.

Regenerates the quantitative story behind the paper's integration
discussion:

* as-grown material is ~2/3 semiconducting (chirality statistics);
* sorting trades yield for purity (passes to reach 4-6 nines);
* placement fills sites with Poisson statistics (quartz-aligned growth
  and Park-style trench deposition, the >10,000-FET experiment);
* a 10,000-device CNFET array Monte Carlo gives the measurable pass
  fraction;
* the Shulaker one-bit computer's yield versus purity, with and without
  metallic-CNT removal, plus the *functional* yield measured by actually
  running the counting and sorting programs on fault-injected gate-level
  hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.integration.growth import GrowthDistribution
from repro.integration.placement import AlignedGrowth, TrenchDeposition
from repro.integration.sorting import GEL_CHROMATOGRAPHY, passes_to_reach_purity
from repro.integration.variability import ArraySpec, CNFETArrayModel
from repro.integration.yields import GateYieldModel, shulaker_computer_yield
from repro.logic.faults import functional_yield

__all__ = ["IntegrationResult", "run_integration_stats"]


@dataclass(frozen=True)
class IntegrationResult:
    """Headline numbers of the Section V pipeline."""

    semiconducting_fraction: float
    passes_to_4nines: int
    sorting_yield_4nines: float
    trench_fill_fraction: float
    aligned_usable_fraction: float
    array_pass_fraction: float
    array_short_fraction: float
    computer_yield_no_removal: float
    computer_yield_with_removal: float
    functional_yield_mc: float

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("as-grown semiconducting fraction", self.semiconducting_fraction),
            ("gel passes to 99.99 %", float(self.passes_to_4nines)),
            ("material yield at 99.99 %", self.sorting_yield_4nines),
            ("trench fill fraction (Park)", self.trench_fill_fraction),
            ("aligned-growth usable sites", self.aligned_usable_fraction),
            ("10k-array pass fraction", self.array_pass_fraction),
            ("10k-array short fraction", self.array_short_fraction),
            ("178-FET computer yield, no removal", self.computer_yield_no_removal),
            ("178-FET computer yield, with VMR", self.computer_yield_with_removal),
            ("functional yield (program MC)", self.functional_yield_mc),
        ]


def run_integration_stats(
    n_array_devices: int = 10000,
    n_functional_trials: int = 120,
    seed: int = 20140312,
) -> IntegrationResult:
    """Run the full Section V statistical pipeline."""
    growth = GrowthDistribution()
    semi_fraction = growth.semiconducting_fraction()

    sorting = passes_to_reach_purity(GEL_CHROMATOGRAPHY, target_purity=0.9999)

    trench = TrenchDeposition(mean_tubes_per_site=2.5)
    aligned = AlignedGrowth(density_per_um=5.0, angular_sigma_deg=1.0)

    array = CNFETArrayModel(
        semiconducting_purity=sorting.purity,
        mean_tubes_per_device=trench.mean_tubes_per_site,
    ).sample_array(n_array_devices, spec=ArraySpec(), seed=seed)

    no_removal = shulaker_computer_yield(
        semiconducting_purity=sorting.purity, removal_efficiency=0.0
    )
    with_removal = shulaker_computer_yield(
        semiconducting_purity=sorting.purity, removal_efficiency=0.999
    )

    gate_model = GateYieldModel(
        semiconducting_purity=sorting.purity,
        tubes_per_gate=10.0,
        removal_efficiency=0.999,
    )
    functional = functional_yield(gate_model, n_trials=n_functional_trials, seed=seed)

    return IntegrationResult(
        semiconducting_fraction=semi_fraction,
        passes_to_4nines=sorting.n_passes,
        sorting_yield_4nines=sorting.cumulative_yield,
        trench_fill_fraction=trench.fill_fraction(),
        aligned_usable_fraction=aligned.statistics(device_width_um=1.0).p_usable,
        array_pass_fraction=array.pass_fraction,
        array_short_fraction=array.shorted_fraction,
        computer_yield_no_removal=no_removal.circuit_yield,
        computer_yield_with_removal=with_removal.circuit_yield,
        functional_yield_mc=functional.functional_yield,
    )

"""Section V — wafer-scale integration statistics, end to end.

Regenerates the quantitative story behind the paper's integration
discussion:

* as-grown material is ~2/3 semiconducting (chirality statistics);
* sorting trades yield for purity (passes to reach 4-6 nines);
* placement fills sites with Poisson statistics (quartz-aligned growth
  and Park-style trench deposition, the >10,000-FET experiment);
* a 10,000-device CNFET array Monte Carlo gives the measurable pass
  fraction;
* the Shulaker one-bit computer's yield versus purity, with and without
  metallic-CNT removal, plus the *functional* yield measured by actually
  running the counting and sorting programs on fault-injected gate-level
  hardware;
* the same tube statistics pushed down to circuit level: a batched
  inverter Monte Carlo (:class:`repro.circuit.sweep.CircuitMonteCarlo`)
  measures how the array's on-current spread widens the mid-swing
  output distribution of a logic stage, and a batched *transient*
  Monte Carlo (:class:`repro.circuit.sweep.CircuitTransientMC` via
  :func:`repro.analysis.timing.delay_energy_distribution`) measures the
  gate-delay sigma the same spread implies for switching speed.

Every Monte Carlo here runs through the batched sweep engine, so the
whole pipeline is reproducible from the single ``seed`` regardless of
chunking or process-pool execution, and ``workers`` parallelises the
Python-heavy functional-yield trials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.timing import delay_energy_distribution
from repro.circuit.cells import build_inverter
from repro.circuit.sweep import CircuitMonteCarlo, ExecutionPolicy, FETVariation
from repro.circuit.waveforms import DC
from repro.devices.empirical import AlphaPowerFET
from repro.integration.growth import GrowthDistribution
from repro.integration.placement import AlignedGrowth, TrenchDeposition
from repro.integration.sorting import GEL_CHROMATOGRAPHY, passes_to_reach_purity
from repro.integration.variability import (
    ArraySpec,
    CNFETArrayModel,
    array_drive_sigma,
)
from repro.integration.yields import GateYieldModel, shulaker_computer_yield
from repro.logic.faults import functional_yield

__all__ = ["IntegrationResult", "run_integration_stats", "inverter_variability_sigma_v"]

VDD = 1.0


@dataclass(frozen=True)
class IntegrationResult:
    """Headline numbers of the Section V pipeline."""

    semiconducting_fraction: float
    passes_to_4nines: int
    sorting_yield_4nines: float
    trench_fill_fraction: float
    aligned_usable_fraction: float
    array_pass_fraction: float
    array_short_fraction: float
    computer_yield_no_removal: float
    computer_yield_with_removal: float
    functional_yield_mc: float
    inverter_vm_sigma_mv: float
    inverter_delay_sigma_ps: float

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("as-grown semiconducting fraction", self.semiconducting_fraction),
            ("gel passes to 99.99 %", float(self.passes_to_4nines)),
            ("material yield at 99.99 %", self.sorting_yield_4nines),
            ("trench fill fraction (Park)", self.trench_fill_fraction),
            ("aligned-growth usable sites", self.aligned_usable_fraction),
            ("10k-array pass fraction", self.array_pass_fraction),
            ("10k-array short fraction", self.array_short_fraction),
            ("178-FET computer yield, no removal", self.computer_yield_no_removal),
            ("178-FET computer yield, with VMR", self.computer_yield_with_removal),
            ("functional yield (program MC)", self.functional_yield_mc),
            ("inverter V_M sigma [mV]", self.inverter_vm_sigma_mv),
            ("inverter delay sigma [ps]", self.inverter_delay_sigma_ps),
        ]


def inverter_variability_sigma_v(
    drive_sigma: float,
    n_instances: int = 256,
    seed: int = 0,
    vdd: float = VDD,
    n_levels: int = 13,
    chunk_size: int | None = None,
    device=None,
    policy: ExecutionPolicy | None = None,
) -> float:
    """Std-dev [V] of an inverter's switching threshold under drive spread.

    For each input level of a ladder around ``vdd/2``, all
    ``n_instances`` drive-perturbed inverter copies are solved in one
    batched :class:`~repro.circuit.sweep.CircuitMonteCarlo` run; each
    instance's switching threshold ``V_M`` (where ``v_out = v_in``) is
    then interpolated from its own transfer-curve samples.  The spread
    of ``V_M`` is the noise-margin erosion the paper's tube statistics
    imply for a logic stage.
    """
    if device is None:
        device = AlphaPowerFET()
    levels = np.linspace(0.25 * vdd, 0.75 * vdd, n_levels)
    outputs = np.empty((n_levels, n_instances))
    solved = np.ones(n_instances, dtype=bool)
    variation = None
    for row, level in enumerate(levels):
        cell = build_inverter(device, vdd=vdd, input_waveform=DC(float(level)))
        engine = CircuitMonteCarlo(cell.circuit)
        if variation is None:
            # One draw shared by every level: instance i is the *same*
            # fabricated inverter all along its transfer curve.
            variation = FETVariation.sample(
                n_instances, len(engine.fet_names), seed=seed, drive_sigma=drive_sigma
            )
        result = engine.run(variation, chunk_size=chunk_size, policy=policy)
        outputs[row] = result.voltage(cell.output_node)
        solved &= result.converged

    # Only instances whose whole transfer-curve ladder converged enter
    # the statistics — an unconverged iterate is not a voltage.
    if not solved.any():
        raise RuntimeError("no instance converged at every input level")
    outputs = outputs[:, solved]
    n_instances = int(np.count_nonzero(solved))

    # v_out - v_in is decreasing along the ladder: one sign change per
    # instance brackets its V_M; interpolate linearly inside the bracket.
    diff = outputs - levels[:, None]
    below = diff < 0.0
    first = np.argmax(below, axis=0)
    bracketed = below.any(axis=0) & (first > 0)
    v_m = np.where(below[0], levels[0], levels[-1]) * np.ones(n_instances)
    idx = first[bracketed]
    d_hi = diff[idx, bracketed]
    d_lo = diff[idx - 1, bracketed]
    t = d_lo / (d_lo - d_hi)
    v_m[bracketed] = levels[idx - 1] + t * (levels[idx] - levels[idx - 1])
    return float(v_m.std())


def run_integration_stats(
    n_array_devices: int = 10000,
    n_functional_trials: int = 120,
    seed: int = 20140312,
    n_circuit_instances: int = 256,
    n_delay_instances: int = 64,
    chunk_size: int | None = None,
    workers: int | None = None,
    device=None,
    policy: ExecutionPolicy | None = None,
) -> IntegrationResult:
    """Run the full Section V statistical pipeline.

    ``device`` selects the inverter FET of the circuit-level rows
    (switching-threshold and delay sigmas); the default is the
    behavioural :class:`~repro.devices.empirical.AlphaPowerFET`, and
    the CLI's ``--physical`` stack passes the surrogate-compiled
    CNT-FET instead.
    """
    if device is None:
        device = AlphaPowerFET()
    growth = GrowthDistribution()
    semi_fraction = growth.semiconducting_fraction()

    sorting = passes_to_reach_purity(GEL_CHROMATOGRAPHY, target_purity=0.9999)

    trench = TrenchDeposition(mean_tubes_per_site=2.5)
    aligned = AlignedGrowth(density_per_um=5.0, angular_sigma_deg=1.0)

    array = CNFETArrayModel(
        semiconducting_purity=sorting.purity,
        mean_tubes_per_device=trench.mean_tubes_per_site,
    ).sample_array(
        n_array_devices,
        spec=ArraySpec(),
        seed=seed,
        chunk_size=chunk_size,
        workers=workers,
        policy=policy,
    )

    no_removal = shulaker_computer_yield(
        semiconducting_purity=sorting.purity, removal_efficiency=0.0
    )
    with_removal = shulaker_computer_yield(
        semiconducting_purity=sorting.purity, removal_efficiency=0.999
    )

    gate_model = GateYieldModel(
        semiconducting_purity=sorting.purity,
        tubes_per_gate=10.0,
        removal_efficiency=0.999,
    )
    functional = functional_yield(
        gate_model,
        n_trials=n_functional_trials,
        seed=seed,
        chunk_size=chunk_size,
        workers=workers,
        policy=policy,
    )

    drive_sigma = array_drive_sigma(array)
    sigma_v = inverter_variability_sigma_v(
        drive_sigma,
        n_instances=n_circuit_instances,
        seed=seed,
        chunk_size=chunk_size,
        device=device,
        policy=policy,
    )

    # The same drive spread pushed through actual switching transients:
    # one batched CircuitTransientMC run over every fabricated copy.
    delay_dist = delay_energy_distribution(
        device,
        n_delay_instances,
        drive_sigma=drive_sigma,
        seed=seed,
        vdd=VDD,
        chunk_size=chunk_size,
        workers=workers,
        policy=policy,
    )

    return IntegrationResult(
        semiconducting_fraction=semi_fraction,
        passes_to_4nines=sorting.n_passes,
        sorting_yield_4nines=sorting.cumulative_yield,
        trench_fill_fraction=trench.fill_fraction(),
        aligned_usable_fraction=aligned.statistics(device_width_um=1.0).p_usable,
        array_pass_fraction=array.pass_fraction,
        array_short_fraction=array.shorted_fraction,
        computer_yield_no_removal=no_removal.circuit_yield,
        computer_yield_with_removal=with_removal.circuit_yield,
        functional_yield_mc=functional.functional_yield,
        inverter_vm_sigma_mv=sigma_v * 1e3,
        inverter_delay_sigma_ps=delay_dist.delay_sigma_s * 1e12,
    )

"""Voltage scaling: the paper's thesis, quantified.

"CNT-FETs are clear frontrunners in the search of a future CMOS switch,
that will enable further voltage and gate length scaling."  This
experiment sweeps the supply voltage for complementary inverters built
from the *physical* ballistic CNT-FET model and from the Si-trigate
reference, on the package's own circuit simulator, and tracks:

* noise margin as a fraction of VDD (logic robustness),
* CV/I drive delay at a fixed load (performance),
* inverter bistability (butterfly SNM) at each supply.

The CNT device — steeper subthreshold (no dark space), higher drive at
low V_DS — keeps its noise margins and speed down to supplies where the
silicon reference has already collapsed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.snm import butterfly_snm
from repro.analysis.timing import cv_over_i_delay_s
from repro.analysis.vtc import analyze_vtc
from repro.circuit.cells import inverter_vtc
from repro.devices.base import FETModel
from repro.devices.cntfet import CNTFET
from repro.devices.empirical import TabulatedFET
from repro.devices.fabric import CNTFabricFET
from repro.devices.reference import trigate_intel_22nm

__all__ = ["ScalingPoint", "ScalingResult", "run_voltage_scaling"]

SUPPLIES_V = (0.3, 0.4, 0.5, 0.7, 1.0)
LOAD_CAPACITANCE_F = 1e-15
FABRIC_PITCH_NM = 8.0


@dataclass(frozen=True)
class ScalingPoint:
    """One technology at one supply voltage.

    ``delay_s`` is iso-footprint: the driver occupies the same layout
    width in both technologies (a CNT fabric at 8 nm pitch matched to
    the trigate's effective width), so the comparison isolates what the
    paper claims — more drive per footprint at low voltage.
    """

    vdd: float
    nm_fraction: float
    snm_v: float
    is_bistable: bool
    delay_s: float


@dataclass(frozen=True)
class ScalingResult:
    """Supply sweep for the CNT-fabric and silicon inverters."""

    cnt: tuple[ScalingPoint, ...]
    silicon: tuple[ScalingPoint, ...]
    tubes_per_footprint: int

    def minimum_logic_supply(self, technology: str, nm_target: float = 0.2) -> float:
        """Lowest swept VDD with NM/VDD >= target and a bistable latch."""
        points = {"cnt": self.cnt, "silicon": self.silicon}[technology]
        viable = [
            p.vdd for p in points if p.nm_fraction >= nm_target and p.is_bistable
        ]
        if not viable:
            return float("inf")
        return min(viable)

    def delay_advantage_at(self, vdd: float) -> float:
        """Si delay / CNT delay at one supply (iso-footprint)."""
        cnt = next(p for p in self.cnt if abs(p.vdd - vdd) < 1e-9)
        si = next(p for p in self.silicon if abs(p.vdd - vdd) < 1e-9)
        return si.delay_s / cnt.delay_s

    def rows(self) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = [
            ("CNT tubes per trigate footprint", float(self.tubes_per_footprint))
        ]
        for name, points in (("CNT fabric", self.cnt), ("Si trigate", self.silicon)):
            for p in points:
                out.append((f"{name} @ {p.vdd:.1f} V: NM/VDD", p.nm_fraction))
                out.append((f"{name} @ {p.vdd:.1f} V: delay [ps]", p.delay_s * 1e12))
        out.append(("CNT min logic supply [V]", self.minimum_logic_supply("cnt")))
        out.append(("Si min logic supply [V]", self.minimum_logic_supply("silicon")))
        for vdd in (0.4, 1.0):
            out.append(
                (f"iso-footprint delay advantage @ {vdd:.1f} V", self.delay_advantage_at(vdd))
            )
        return out


def _scaling_point(
    vtc_device: FETModel, drive_device: FETModel, vdd: float
) -> ScalingPoint:
    v_in, v_out, _ = inverter_vtc(vtc_device, vdd=vdd, n_points=161)
    metrics = analyze_vtc(v_in, v_out)
    butterfly = butterfly_snm(v_in, v_out)
    nm = min(metrics.nm_low, metrics.nm_high)
    return ScalingPoint(
        vdd=vdd,
        nm_fraction=nm / vdd,
        snm_v=butterfly.snm,
        is_bistable=butterfly.is_bistable,
        delay_s=cv_over_i_delay_s(drive_device, LOAD_CAPACITANCE_F, vdd),
    )


def run_voltage_scaling(supplies_v=SUPPLIES_V) -> ScalingResult:
    """Sweep complementary inverters over supply voltage.

    The physical CNT-FET is frozen into a bilinear table before the
    sweeps (hundreds of Newton solves otherwise); the drive device is an
    iso-footprint fabric — as many tubes at 8 nm pitch as fit in the
    trigate's effective width.  Noise margins use the single-tube VTC
    (ratios are unchanged by parallel composition of identical tubes).
    """
    cnt_physical = CNTFET.reference_device()
    vgs_grid = np.linspace(-0.6, 1.3, 77)
    vds_grid = np.linspace(0.0, 1.3, 53)
    cnt = TabulatedFET.from_model(cnt_physical, vgs_grid, vds_grid)
    silicon = trigate_intel_22nm()
    tubes = max(1, int(silicon.effective_width_nm // FABRIC_PITCH_NM))
    fabric = CNTFabricFET([cnt] * tubes, n_metallic=0, pitch_nm=FABRIC_PITCH_NM)

    cnt_points = tuple(
        _scaling_point(cnt, fabric, float(vdd)) for vdd in supplies_v
    )
    si_points = tuple(
        _scaling_point(silicon, silicon, float(vdd)) for vdd in supplies_v
    )
    return ScalingResult(
        cnt=cnt_points, silicon=si_points, tubes_per_footprint=tubes
    )

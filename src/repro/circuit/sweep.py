"""Batched sweep / Monte Carlo engine: many instances, one compiled plan.

The integration story of the paper (yield, variability, array-scale
statistics) needs the *same* computation repeated over many parameter-
perturbed instances — 10,000-device arrays, purity sweeps, corner
analyses, circuit Monte Carlo.  Before this module every such experiment
re-solved its instances one at a time in a Python loop, ignoring the
batched :meth:`repro.devices.base.FETModel.linearize` machinery the
compiled stamp plan already exposes.  Three layers fix that:

* :class:`SweepPlan` — a generic chunked map engine every sweep-shaped
  consumer routes through.  It owns the execution policy (chunking, an
  optional ``concurrent.futures`` process pool for large N) and the
  randomness policy: deterministic substreams spawned from a single
  seed via :class:`numpy.random.SeedSequence`, assigned to instances in
  fixed-size *blocks* so results are bitwise identical across chunk
  sizes, worker counts, and serial vs. pooled execution.
* :class:`CircuitMonteCarlo` — the DC circuit engine.  It compiles a
  circuit's stamp plan **once** and solves N parameter-perturbed
  instances against the shared sparsity structure: stacked residuals
  ``(m, size)`` and stacked Jacobians — dense ``(m, size, size)``
  below ``assembly.SPARSE_THRESHOLD``, CSR ``data`` stacks ``(m,
  nnz)`` on the plan's canonical sparse pattern above it — with every
  FET group's bias points across *all* instances batched into a
  single ``linearize`` call.  Newton steps come from one batched
  LAPACK ``np.linalg.solve`` (dense) or per-instance numeric
  refactorizations against the plan's one-time symbolic ordering
  (sparse; see :class:`repro.circuit.assembly._SparseSchedule`).
  Per-instance device-parameter arrays (:class:`FETVariation`:
  drive-strength scale and threshold shift) thread through the
  batched path without touching the device models.
* :class:`CircuitTransientMC` — the transient circuit engine.  It
  marches all N instances through one shared ``(dt, integrator)`` time
  grid in lockstep: capacitor companion state stacked ``(m, n_caps)``,
  each per-step Newton iteration making one batched ``linearize`` call
  and one batched LAPACK solve across the still-active instances, with
  the per-instance damping/convergence criteria and the gmin rescue
  ladder shared with :class:`CircuitMonteCarlo`.  An instance whose
  time step fails batched Newton **falls back to the scalar
  per-instance path individually** (re-integrated through
  :func:`repro.circuit.transient.transient_samples` with explicitly
  perturbed devices, continuation rescue included) instead of
  poisoning the rest of the batch.

Perturbation semantics: for a FET with unwrapped base model ``I_n`` and
polarity sign ``s`` (see ``assembly._unwrap_polarity``), instance ``i``
evaluates ``drive_scale[i] * s * I_n(s*vgs - vth_shift[i], s*vds)`` —
a multiplicative drive variation (tube count / mobility) plus a shift
of the underlying n-type threshold, both of which preserve the shared
sparsity structure and the batched linearize call.  The scalar
reference of those semantics is :class:`ScaledShiftedFET` /
:func:`perturbed_circuit`, used by the per-instance fallbacks and the
equivalence test suite.

Determinism contract: every batched arithmetic step is elementwise per
instance (batched gemv for the linear residual, per-matrix LAPACK
``gesv`` or per-instance sparse LU against one shared symbolic
ordering, elementwise device math, per-row scatters), so results are
**bitwise invariant** to chunk size, instance order, and serial vs.
process-pool execution — for dense and sparse plans alike.  The
per-instance scalar loop the engines replace survives as
``scalar_reference`` on both, the reference side of the equivalence
suites and benchmarks.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.circuit.assembly import (
    DIAG_REGULARIZATION,
    UnsupportedElement,
    _unwrap_polarity,
)
from repro.circuit.continuation import (
    solve_dc_robust,
    structural_seed,
)
from repro.circuit.elements import (
    FET,
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.resilience import (
    ExecutionPolicy,
    RunReport,
    fingerprint,
    run_supervised,
)
from repro.circuit.solver import (
    _MAX_ITERATIONS,
    _RESIDUAL_ATOL,
    _RESIDUAL_RTOL,
    _STEP_TOL,
    solve_dc,
)
from repro.circuit.transient import (
    TransientResult,
    transient_samples,
    validate_grid,
)
from repro.devices.base import FETModel, PType

__all__ = [
    "SweepPlan",
    "ExecutionPolicy",
    "FETVariation",
    "CircuitMonteCarlo",
    "CircuitTransientMC",
    "MonteCarloResult",
    "TransientMCResult",
    "SweepStatistics",
    "ScaledShiftedFET",
    "perturbed_circuit",
    "DEFAULT_SUBSTREAM_BLOCK",
    "ensure_seed",
    "lognormal_unit_mean",
]

# Instances per spawned random substream.  Randomness is tied to the
# (instance index // block) position, never to the execution chunking,
# so any chunk size / worker count replays the identical draws.
DEFAULT_SUBSTREAM_BLOCK = 256

# Default execution chunk (and therefore batch width) of the circuit
# Monte Carlo engines: wide enough to amortize the per-Newton-iteration
# Python overhead, small enough to keep the stacked Jacobians in cache.
DEFAULT_CIRCUIT_CHUNK = 1024

# gmin staircase for batch stragglers (same spirit as continuation's
# adaptive stepping, fixed schedule — only ever runs on failures).
_GMIN_RESCUE_LADDER = (1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 0.0)


def _as_blocks(n: int, block: int) -> list[tuple[int, int]]:
    """[start, stop) index ranges of consecutive instance blocks."""
    return [(start, min(start + block, n)) for start in range(0, n, block)]


def lognormal_unit_mean(rng: np.random.Generator, sigma: float, size) -> np.ndarray:
    """Lognormal draws with mean 1 and *linear* coefficient of variation sigma.

    The one parameterization shared by every variability model in the
    package (tube on-currents, FET drive scales): ``log_sigma =
    sqrt(log1p(sigma^2))`` with the mean-compensating ``-log_sigma^2/2``
    shift, so multiplying a nominal value by a draw preserves its mean.
    """
    log_sigma = float(np.sqrt(np.log1p(sigma**2)))
    return rng.lognormal(mean=-0.5 * log_sigma**2, sigma=log_sigma, size=size)


def ensure_seed(seed: int | None) -> int:
    """``seed`` unchanged, or fresh OS entropy when None.

    Monte-Carlo consumers whose kernels require randomness call this so
    an unseeded run still flows through the one-root-seed substream
    scheme (and therefore still reproduces across chunking/pooling
    within the run).
    """
    if seed is not None:
        return seed
    # The one sanctioned entropy draw in the package: callers that opt
    # out of reproducibility-across-runs still get a concrete root seed,
    # so chunking/pool invariance holds *within* the run.
    # repro-lint: ok[RNG002] -- documented entropy boundary; every library path routes here
    return int(np.random.SeedSequence().generate_state(1)[0])


def _run_block(kernel, params, rng, payload):
    """One vectorized-kernel invocation, normalised to a result list."""
    out = kernel(params, rng, payload)
    return list(out)


def _run_chunk(spec):
    """Execute one chunk of blocks (top-level so process pools can pickle it)."""
    kernel, vectorized, payload, blocks = spec
    results: list = []
    for params, seed_seq in blocks:
        rng = None if seed_seq is None else np.random.default_rng(seed_seq)
        if vectorized:
            results.extend(_run_block(kernel, params, rng, payload))
        else:
            results.append(kernel(params, rng, payload))
    return results


class SweepPlan:
    """A compiled sweep: one kernel plus chunked, substreamed execution.

    Parameters
    ----------
    kernel:
        ``vectorized=False`` (default): called once per instance as
        ``kernel(params_i, rng_i, payload)`` with a private
        :class:`numpy.random.Generator` spawned for that instance (or
        ``None`` when the run is unseeded).
        ``vectorized=True``: called once per substream *block* as
        ``kernel(params_block, rng_block, payload)`` and must return a
        sequence with one entry per instance of the block.
    vectorized:
        Selects the kernel contract above.
    payload:
        Constant context handed to every kernel call; must pickle when
        ``workers`` is used.
    substream_block:
        Instances per spawned substream in vectorized mode.  This is the
        randomness *and* batching granularity: results are independent
        of ``chunk_size``/``workers`` because kernels always see whole
        blocks.

    ``run`` executes the kernel over a parameter sequence and returns
    the per-instance results in input order.
    """

    def __init__(
        self,
        kernel,
        *,
        vectorized: bool = False,
        payload=None,
        substream_block: int = DEFAULT_SUBSTREAM_BLOCK,
        validate=None,
    ):
        if substream_block < 1:
            raise ValueError(f"substream block must be >= 1, got {substream_block}")
        self.kernel = kernel
        self.vectorized = vectorized
        self.payload = payload
        self.substream_block = substream_block
        self.validate = validate

    def _prepare(self, params, seed, chunk_size, workers):
        """Chunk ``params`` into pool specs; ``(specs, counts, seed_token)``.

        ``counts[k]`` is the number of per-instance results chunk ``k``
        must return — the structural schema enforced at the supervised
        merge boundary.
        """
        n = len(params)
        root = None
        if seed is not None:
            root = (
                seed
                if isinstance(seed, np.random.SeedSequence)
                else np.random.SeedSequence(seed)
            )
        if self.vectorized:
            ranges = _as_blocks(n, self.substream_block)
            seqs = root.spawn(len(ranges)) if root is not None else [None] * len(ranges)
            blocks = [
                (params[start:stop], seq) for (start, stop), seq in zip(ranges, seqs)
            ]
            sizes = [stop - start for start, stop in ranges]
        else:
            seqs = root.spawn(n) if root is not None else [None] * n
            blocks = list(zip(params, seqs))
            sizes = [1] * n

        use_pool = workers is not None and workers > 1 and len(blocks) > 1
        if chunk_size is None:
            # Pooled runs need more than one chunk to parallelise: split
            # the blocks evenly across the workers by default.
            per_chunk = (
                -(-len(blocks) // workers) if use_pool else len(blocks)
            )
        else:
            if chunk_size < 1:
                raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
            per_chunk = (
                max(1, chunk_size // self.substream_block)
                if self.vectorized
                else chunk_size
            )
        specs = [
            (self.kernel, self.vectorized, self.payload, blocks[i : i + per_chunk])
            for i in range(0, len(blocks), per_chunk)
        ]
        counts = [
            sum(sizes[i : i + per_chunk])
            for i in range(0, len(sizes), per_chunk)
        ]
        seed_token = (
            None
            if root is None
            else (int(root.entropy), tuple(root.spawn_key), root.pool_size)
        )
        return specs, counts, seed_token, per_chunk

    def run(
        self,
        params,
        *,
        seed: int | None = None,
        chunk_size: int | None = None,
        workers: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> list:
        """Map the kernel over ``params``; results keep the input order.

        ``seed`` (an int, or a pre-spawned
        :class:`numpy.random.SeedSequence` when a caller derives several
        independent sweeps from one user seed) derives one substream per
        instance (scalar kernels) or per block (vectorized kernels) via
        ``SeedSequence.spawn`` — the draws depend only on the instance
        position, never on ``chunk_size`` or ``workers``.  ``workers`` >
        1 dispatches whole chunks to a process pool (kernel, params and
        payload must pickle).

        ``policy`` routes the run through the fault-tolerant supervisor
        (:mod:`repro.circuit.resilience`): per-chunk timeouts, bounded
        retries with pool rebuild, serial degradation, chunk-granular
        checkpoint/resume.  Results are bitwise identical either way —
        a chunk's output depends only on its spec, never on where or
        how often it executes.
        """
        if policy is not None:
            results, _ = self.run_supervised(
                params,
                seed=seed,
                chunk_size=chunk_size,
                workers=workers,
                policy=policy,
            )
            return results
        params = list(params)
        if len(params) == 0:
            return []
        specs, _, _, _ = self._prepare(params, seed, chunk_size, workers)
        use_pool = workers is not None and workers > 1 and len(specs) > 1
        if use_pool:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunk_results = list(pool.map(_run_chunk, specs))
        else:
            chunk_results = [_run_chunk(spec) for spec in specs]
        return [result for chunk in chunk_results for result in chunk]

    def run_supervised(
        self,
        params,
        *,
        seed: int | None = None,
        chunk_size: int | None = None,
        workers: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> tuple[list, RunReport]:
        """:meth:`run` under the supervisor; returns ``(results, report)``.

        Raises :class:`~repro.circuit.resilience.SweepExecutionError`
        (report and salvaged chunks attached) if any chunk stays failed
        after timeouts, retries, pool rebuilds and the serial rung.
        The checkpoint run key fingerprints (kernel, payload, seed,
        chunking), so resuming requires the same ``chunk_size``; a
        changed input simply misses the cache and recomputes.
        """
        params = list(params)
        policy = ExecutionPolicy() if policy is None else policy
        if len(params) == 0:
            empty = RunReport(chunks=[], workers=workers, pool_rebuilds=0, wall_s=0.0)
            policy.reports.append(empty)
            return [], empty
        specs, counts, seed_token, per_chunk = self._prepare(
            params, seed, chunk_size, workers
        )
        kernel_token = f"{self.kernel.__module__}.{self.kernel.__qualname__}"
        # The payload digest keeps sweeps that differ only in payload
        # (e.g. the same kernel over different compiled circuits) in
        # separate checkpoint run directories; computed only when a
        # checkpoint store is actually configured.
        payload_token = (
            fingerprint(self.payload)
            if policy.checkpoint_root is not None
            else None
        )
        run_token = (
            kernel_token,
            self.vectorized,
            self.substream_block,
            per_chunk,
            len(params),
            seed_token,
            payload_token,
        )
        return run_supervised(
            specs,
            chunk_fn=_run_chunk,
            expected_counts=counts,
            workers=workers,
            policy=policy,
            validate=self.validate,
            run_token=run_token,
        )


# ---------------------------------------------------------------------------
# Per-instance perturbations and their scalar reference semantics.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FETVariation:
    """Per-instance, per-FET parameter perturbations for a circuit sweep.

    ``drive_scale[i, j]`` multiplies FET ``j``'s current (and small-
    signal conductances) in instance ``i`` — the tube-count / mobility
    variability channel.  ``vth_shift_v[i, j]`` shifts the *underlying
    n-type* model's threshold (a p-FET's shift is applied to its
    mirrored base model).  Columns follow the circuit's FET element
    order (``CircuitMonteCarlo.fet_names``).
    """

    drive_scale: np.ndarray
    vth_shift_v: np.ndarray

    def __post_init__(self) -> None:
        scale = np.asarray(self.drive_scale, dtype=float)
        shift = np.asarray(self.vth_shift_v, dtype=float)
        if scale.ndim != 2 or shift.shape != scale.shape:
            raise ValueError(
                "drive_scale and vth_shift_v must share one (n_instances, n_fets) shape"
            )
        object.__setattr__(self, "drive_scale", scale)
        object.__setattr__(self, "vth_shift_v", shift)

    @property
    def n_instances(self) -> int:
        return self.drive_scale.shape[0]

    @property
    def n_fets(self) -> int:
        return self.drive_scale.shape[1]

    def take(self, indices) -> "FETVariation":
        """Sub-variation at the given instance indices (order preserved)."""
        return FETVariation(
            drive_scale=self.drive_scale[indices],
            vth_shift_v=self.vth_shift_v[indices],
        )

    @classmethod
    def sample(
        cls,
        n_instances: int,
        n_fets: int,
        *,
        seed: int,
        drive_sigma: float = 0.1,
        vth_sigma_v: float = 0.0,
        substream_block: int = DEFAULT_SUBSTREAM_BLOCK,
    ) -> "FETVariation":
        """Draw a lognormal-drive / normal-threshold variation.

        ``drive_sigma`` is the *linear* coefficient of variation: scales
        are lognormal with unit mean and relative spread ``drive_sigma``
        (same convention as
        :class:`repro.integration.variability.CNFETArrayModel`).  Draws
        come from per-block substreams, so the variation for instance
        ``i`` depends only on ``(seed, i)`` — not on how a later sweep
        is chunked or parallelised.
        """
        if n_instances < 1 or n_fets < 1:
            raise ValueError("need at least one instance and one FET")
        if drive_sigma < 0.0 or vth_sigma_v < 0.0:
            raise ValueError("sigmas must be >= 0")
        scale = np.empty((n_instances, n_fets))
        shift = np.empty((n_instances, n_fets))
        ranges = _as_blocks(n_instances, substream_block)
        for (start, stop), seq in zip(
            ranges, np.random.SeedSequence(seed).spawn(len(ranges))
        ):
            rng = np.random.default_rng(seq)
            count = stop - start
            if drive_sigma > 0.0:
                scale[start:stop] = lognormal_unit_mean(
                    rng, drive_sigma, (count, n_fets)
                )
            else:
                scale[start:stop] = 1.0
            if vth_sigma_v > 0.0:
                shift[start:stop] = rng.normal(
                    0.0, vth_sigma_v, size=(count, n_fets)
                )
            else:
                shift[start:stop] = 0.0
        return cls(drive_scale=scale, vth_shift_v=shift)

    @classmethod
    def nominal(cls, n_instances: int, n_fets: int) -> "FETVariation":
        """The identity variation (all scales 1, all shifts 0)."""
        return cls(
            drive_scale=np.ones((n_instances, n_fets)),
            vth_shift_v=np.zeros((n_instances, n_fets)),
        )


# repro-lint: ok[FPR003] -- ephemeral per-instance wrapper for equivalence tests; never surrogate-compiled
class ScaledShiftedFET(FETModel):
    """``scale * I_base(vgs - shift, vds)`` — FETVariation's scalar reference.

    The multiplication/subtraction order matches the batched engines'
    arithmetic exactly, so a circuit rebuilt from these wrappers (see
    :func:`perturbed_circuit`) evaluates bitwise-identically to the
    corresponding batch row and serves both as the per-instance scalar
    fallback and as the reference side of the equivalence tests.
    """

    def __init__(self, base: FETModel, drive_scale: float, vth_shift_v: float):
        self.base = base
        self.drive_scale = float(drive_scale)
        self.vth_shift_v = float(vth_shift_v)

    @property
    def prefer_batched_points(self) -> bool:
        # A wrapper around a solver-backed model is as expensive per
        # scalar call as the model itself.
        return self.base.prefer_batched_points

    def current(self, vgs: float, vds: float) -> float:
        return self.drive_scale * self.base.current(vgs - self.vth_shift_v, vds)

    # repro-lint: ok[PRT001] -- variation adapter: scales/shifts the base model, which owns the mirror transform
    def currents(self, vgs_values, vds_values) -> np.ndarray:
        return self.drive_scale * self.base.currents(
            np.asarray(vgs_values, dtype=float) - self.vth_shift_v, vds_values
        )

    def linearize(self, vgs_values, vds_values, delta_v: float | None = None):
        current, gm, gds = self.base.linearize(
            np.asarray(vgs_values, dtype=float) - self.vth_shift_v,
            vds_values,
            delta_v,
        )
        return (
            current * self.drive_scale,
            gm * self.drive_scale,
            gds * self.drive_scale,
        )

    def linearize_point(self, vgs: float, vds: float, delta_v: float | None = None):
        current, gm, gds = self.base.linearize_point(
            vgs - self.vth_shift_v, vds, delta_v
        )
        return (
            current * self.drive_scale,
            gm * self.drive_scale,
            gds * self.drive_scale,
        )


def perturbed_circuit(
    circuit: Circuit, variation: FETVariation, instance: int
) -> Circuit:
    """Clone ``circuit`` with one instance's variation baked into its FETs.

    Every FET's device is unwrapped to its base n-type model, wrapped in
    a :class:`ScaledShiftedFET` carrying that FET's ``(drive_scale,
    vth_shift)`` for ``instance``, and re-mirrored when the original was
    p-type.  Elements are re-added in the original order, so the clone's
    unknown-vector layout (node and branch indices) is identical — its
    scalar solutions are directly comparable to the batch rows.
    """
    fets = [el for el in circuit.elements if isinstance(el, FET)]
    if variation.n_fets != len(fets):
        raise ValueError(
            f"variation has {variation.n_fets} FET columns, "
            f"circuit has {len(fets)} FETs"
        )
    column = {id(el): j for j, el in enumerate(fets)}
    clone = Circuit(f"{circuit.title}[{instance}]")
    for el in circuit.elements:
        if isinstance(el, FET):
            base, sign = _unwrap_polarity(el.device)
            j = column[id(el)]
            wrapped: FETModel = ScaledShiftedFET(
                base,
                variation.drive_scale[instance, j],
                variation.vth_shift_v[instance, j],
            )
            if sign < 0.0:
                wrapped = PType(wrapped)
            clone.add(FET(el.name, el.drain, el.gate, el.source, wrapped, el.delta_v))
        elif isinstance(el, Resistor):
            clone.add_resistor(el.name, el.p, el.n, el.resistance_ohm)
        elif isinstance(el, Capacitor):
            clone.add_capacitor(el.name, el.p, el.n, el.capacitance_f)
        elif isinstance(el, VoltageSource):
            clone.add_voltage_source(el.name, el.p, el.n, el.waveform)
        elif isinstance(el, CurrentSource):
            clone.add_current_source(el.name, el.p, el.n, el.waveform)
        else:
            raise UnsupportedElement(
                f"cannot perturb element type {type(el).__name__}"
            )
    return clone


# ---------------------------------------------------------------------------
# Results of the circuit engines.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepStatistics:
    """Summary statistics of one scalar output across sweep instances."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n_instances: int
    n_converged: int


@dataclass(frozen=True)
class MonteCarloResult:
    """Stacked DC solutions of a circuit Monte Carlo run."""

    x: np.ndarray
    converged: np.ndarray
    node_index: dict[str, int]
    branch_index: dict[str, int]

    @property
    def n_instances(self) -> int:
        return self.x.shape[0]

    @property
    def n_converged(self) -> int:
        return int(np.count_nonzero(self.converged))

    def voltage(self, node: str) -> np.ndarray:
        """Per-instance voltage trace of one node [V]."""
        if node in ("0", "gnd", "GND", "ground"):
            return np.zeros(self.n_instances)
        try:
            return self.x[:, self.node_index[node]]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def source_current(self, name: str) -> np.ndarray:
        """Per-instance branch current of one voltage source [A]."""
        try:
            return self.x[:, self.branch_index[name]]
        except KeyError:
            raise KeyError(f"unknown voltage source {name!r}") from None

    def take_instance(self, i: int) -> tuple[np.ndarray, bool]:
        """(solution row, converged flag) of one instance."""
        return self.x[i], bool(self.converged[i])

    def statistics(self, node: str) -> SweepStatistics:
        """Converged-instance statistics of one node voltage."""
        values = self.voltage(node)[self.converged]
        if values.size == 0:
            raise ValueError("no converged instances to summarise")
        return SweepStatistics(
            mean=float(values.mean()),
            std=float(values.std()),
            minimum=float(values.min()),
            maximum=float(values.max()),
            n_instances=self.n_instances,
            n_converged=self.n_converged,
        )


@dataclass(frozen=True)
class TransientMCResult:
    """Stacked transient sample trajectories of a circuit Monte Carlo run.

    ``samples[i, k]`` is instance ``i``'s full unknown vector at time
    sample ``k`` (``k = 0`` is the t=0 operating point).  ``fallback``
    marks instances whose batched time-stepping failed a step and were
    re-integrated through the scalar per-instance path; ``converged``
    is False only where even that path raised, in which case the
    instance's samples are NaN.
    """

    samples: np.ndarray
    dt_s: float
    converged: np.ndarray
    fallback: np.ndarray
    node_index: dict[str, int]
    branch_index: dict[str, int]

    @property
    def n_instances(self) -> int:
        return self.samples.shape[0]

    @property
    def n_samples(self) -> int:
        return self.samples.shape[1]

    @property
    def n_converged(self) -> int:
        return int(np.count_nonzero(self.converged))

    @property
    def n_fallback(self) -> int:
        return int(np.count_nonzero(self.fallback))

    @property
    def time_s(self) -> np.ndarray:
        """The shared time grid [s] (one row for every instance)."""
        return self.dt_s * np.arange(self.n_samples)

    def voltage(self, node: str) -> np.ndarray:
        """(n_instances, n_samples) waveforms of one node [V]."""
        if node in ("0", "gnd", "GND", "ground"):
            return np.zeros((self.n_instances, self.n_samples))
        try:
            return self.samples[:, :, self.node_index[node]]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def source_current(self, name: str) -> np.ndarray:
        """(n_instances, n_samples) branch currents of one voltage source [A]."""
        try:
            return self.samples[:, :, self.branch_index[name]]
        except KeyError:
            raise KeyError(f"unknown voltage source {name!r}") from None

    def instance_waveforms(self, i: int) -> TransientResult:
        """One instance's trajectory as a scalar :class:`TransientResult`."""
        w = self.samples[i]
        voltages = {node: w[:, idx] for node, idx in self.node_index.items()}
        currents = {name: w[:, idx] for name, idx in self.branch_index.items()}
        return TransientResult(
            time_s=self.time_s, voltages=voltages, source_currents=currents
        )

    def statistics(self, node: str, sample: int = -1) -> SweepStatistics:
        """Converged-instance statistics of one node voltage at one sample."""
        values = self.voltage(node)[self.converged, sample]
        if values.size == 0:
            raise ValueError("no converged instances to summarise")
        return SweepStatistics(
            mean=float(values.mean()),
            std=float(values.std()),
            minimum=float(values.min()),
            maximum=float(values.max()),
            n_instances=self.n_instances,
            n_converged=self.n_converged,
        )


def _concat_results(
    parts: list[MonteCarloResult],
    *,
    size: int,
    node_index: dict[str, int],
    branch_index: dict[str, int],
) -> MonteCarloResult:
    """Stack chunk results; zero chunks yield a well-formed empty result."""
    if not parts:
        return MonteCarloResult(
            x=np.empty((0, size)),
            converged=np.zeros(0, dtype=bool),
            node_index=node_index,
            branch_index=branch_index,
        )
    return MonteCarloResult(
        x=np.concatenate([p.x for p in parts], axis=0),
        converged=np.concatenate([p.converged for p in parts]),
        node_index=node_index,
        branch_index=branch_index,
    )


def _concat_transient(
    parts: list[TransientMCResult],
    *,
    size: int,
    n_samples: int,
    dt_s: float,
    node_index: dict[str, int],
    branch_index: dict[str, int],
) -> TransientMCResult:
    """Stack chunk trajectories; zero chunks yield a well-formed empty result."""
    if not parts:
        return TransientMCResult(
            samples=np.empty((0, n_samples, size)),
            dt_s=dt_s,
            converged=np.zeros(0, dtype=bool),
            fallback=np.zeros(0, dtype=bool),
            node_index=node_index,
            branch_index=branch_index,
        )
    return TransientMCResult(
        samples=np.concatenate([p.samples for p in parts], axis=0),
        dt_s=dt_s,
        converged=np.concatenate([p.converged for p in parts]),
        fallback=np.concatenate([p.fallback for p in parts]),
        node_index=node_index,
        branch_index=branch_index,
    )


# ---------------------------------------------------------------------------
# Batched Newton over one compiled stamp plan (shared DC/transient core).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _BatchContext:
    """Evaluation context of one batched solve (DC or one transient step).

    ``prevpad`` is the padded previous-solution stack ``(m, size + 1)``
    and ``state_currents`` the trapezoidal companion history ``(m,
    n_caps)`` — both per-instance, so the line search narrows them with
    :meth:`take` alongside the variation rows.
    """

    time_s: float | None = None
    dt_s: float | None = None
    integrator: str = "trapezoidal"
    prevpad: np.ndarray | None = None
    state_currents: np.ndarray | None = None

    def take(self, rows) -> "_BatchContext":
        if self.prevpad is None:
            return self
        return _BatchContext(
            time_s=self.time_s,
            dt_s=self.dt_s,
            integrator=self.integrator,
            prevpad=self.prevpad[rows],
            state_currents=(
                None if self.state_currents is None else self.state_currents[rows]
            ),
        )


_DC_CONTEXT = _BatchContext()


class _BatchedNewtonEngine:
    """Shared core of the circuit engines: one compiled plan, N instances.

    Owns the compiled stamp plan, the FET-group to variation-column
    mapping, the stacked residual/Jacobian evaluation
    (:meth:`_evaluate_batch`) and the batched damped Newton iteration
    (:meth:`_newton_batch`), in both DC and transient-step contexts.
    """

    _ENGINE_NAME = "batched engine"

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.system = circuit.build_system()
        plan = self.system._plan
        if plan is None:
            raise UnsupportedElement(
                "circuit contains element types the stamp plan cannot compile"
            )
        self.plan = plan
        self.fets = tuple(el for el in circuit.elements if isinstance(el, FET))
        if not self.fets:
            raise ValueError("circuit has no FETs to perturb")
        self.fet_names = tuple(f.name for f in self.fets)
        column = {id(f): j for j, f in enumerate(self.fets)}
        self._group_cols = [
            np.array([column[id(f)] for f in group.elements], dtype=np.intp)
            for group in plan.fet_groups
        ]
        # Per-group Jacobian scatter targets: flat (row*size + col)
        # offsets into a dense (size, size) buffer, or canonical
        # ``data`` positions on the plan's shared sparse pattern.
        if plan.use_sparse:
            self._group_scatter = list(plan.sparse_schedule.group_pos)
        else:
            self._group_scatter = [group.flat for group in plan.fet_groups]
        self.node_index = {
            node: self.system.node_index(node) for node in circuit.node_names
        }
        self.branch_index = {
            el.name: el.branch_index
            for el in circuit.elements
            if isinstance(el, VoltageSource)
        }
        self._offset_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _check_variation(
        self, variation: FETVariation | None, n_instances: int | None
    ) -> FETVariation:
        if variation is None:
            if n_instances is None:
                raise ValueError("give a variation or n_instances")
            variation = FETVariation.nominal(n_instances, len(self.fets))
        if variation.n_fets != len(self.fets):
            raise ValueError(
                f"variation has {variation.n_fets} FET columns, "
                f"circuit has {len(self.fets)} FETs"
            )
        return variation

    # -- batched evaluation -----------------------------------------------------
    def _offsets(self, m: int) -> tuple[np.ndarray, np.ndarray]:
        """Flat-index row offsets for padded-residual and Jacobian scatters.

        The Jacobian stride is the per-instance storage width: the full
        ``size * size`` dense buffer, or the canonical pattern's ``nnz``
        for sparse plans.
        """
        cached = self._offset_cache.get(m)
        if cached is None:
            plan = self.plan
            size = plan.size
            jac_stride = (
                plan.sparse_schedule.nnz if plan.use_sparse else size * size
            )
            cached = (
                np.arange(m, dtype=np.intp)[:, None] * (size + 1),
                np.arange(m, dtype=np.intp)[:, None] * jac_stride,
            )
            self._offset_cache[m] = cached
        return cached

    def _evaluate_batch(
        self,
        x: np.ndarray,
        variation: FETVariation,
        gmin: float = 0.0,
        ctx: _BatchContext = _DC_CONTEXT,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked residuals (m, size) and Jacobians — dense ``(m, size,
        size)`` buffers, or ``(m, nnz)`` canonical-pattern CSR ``data``
        stacks for sparse plans.

        Mirrors :meth:`repro.circuit.assembly.StampPlan.evaluate` term
        by term (same operation order) over a stack of instances.  The
        linear residual uses a batched gemv (``matmul`` against column
        vectors; CSR column-wise matvecs for sparse plans) rather than
        one gemm, so each row is bitwise identical to the scalar path's
        ``matrix @ x`` — the root of the engines' chunking/order/pool
        bitwise-invariance contract.

        This kernel deliberately parallels
        :meth:`repro.circuit.assembly.StampPlan.evaluate_many` (the
        shared-context line-search variant); a stamp fix applied here
        almost certainly applies there too.
        """
        plan = self.plan
        size = plan.size
        m = x.shape[0]
        row_pad, row_jac = self._offsets(m)

        xpad = np.zeros((m, size + 1))
        xpad[:, :size] = x
        linear = plan._linear_system(ctx.dt_s, ctx.integrator)

        rpad = np.zeros((m, size + 1))
        if plan.use_sparse:
            # CSR times a column stack: scipy's matvecs kernel runs the
            # scalar matvec per column, so each row matches the scalar
            # path's ``matrix @ x`` bitwise.
            rpad[:, :size] = (linear.matrix @ x.T).T
        else:
            rpad[:, :size] = np.matmul(linear.matrix, x[..., None])[..., 0]
        rflat = rpad.reshape(-1)
        if plan.vsrc_branch.size:
            levels = np.array([el.level(ctx.time_s) for el in plan.vsources])
            rpad[:, plan.vsrc_branch] -= levels
        if plan.isrc_p.size:
            currents = np.array([el.level(ctx.time_s) for el in plan.isources])
            # ufunc.at does not broadcast shared values against a stack
            # of per-row indices (it reads out of bounds) — broadcast
            # explicitly.
            shared = np.broadcast_to(currents, (m, currents.size))
            np.add.at(rflat, row_pad + plan.isrc_p, shared)
            np.add.at(rflat, row_pad + plan.isrc_n, -shared)
        if ctx.dt_s is not None and plan.cap_c.size:
            history = plan.cap_history_rhs(
                ctx.prevpad, linear.cap_geq, ctx.integrator, ctx.state_currents
            )
            cap_vals = np.concatenate((history, -history), axis=1)
            np.add.at(rflat, row_pad + plan.cap_scatter, cap_vals)

        if plan.use_sparse:
            jac = np.empty((m, plan.sparse_schedule.nnz))
            jac[:] = plan.sparse_schedule.linear_data(linear)
        else:
            jac = np.empty((m, size, size))
            jac[:] = linear.matrix
        jflat = jac.reshape(-1)

        for group, cols, scatter in zip(
            plan.fet_groups, self._group_cols, self._group_scatter
        ):
            v = xpad[:, group.gather_dgs]  # (m, 3, count)
            vgs = v[:, 1] - v[:, 2]
            vds = v[:, 0] - v[:, 2]
            shift = variation.vth_shift_v[:, cols]
            scale = variation.drive_scale[:, cols]
            if group.sign is None:
                current, gm, gds = group.device.linearize(
                    vgs - shift, vds, group.delta_v
                )
            else:
                current, gm, gds = group.device.linearize(
                    group.sign * vgs - shift, group.sign * vds, group.delta_v
                )
                current = group.sign * current
            current = current * scale
            gm = gm * scale
            gds = gds * scale

            rvals = np.concatenate((current, -current), axis=1)  # (m, 2*count)
            np.add.at(rflat, row_pad + group.scatter_idx, rvals)

            vals6 = np.stack(
                (gds, gm, -(gm + gds), -gds, -gm, gm + gds), axis=1
            )  # (m, 6, count), entry order matching group.take
            entries = vals6.reshape(m, 6 * group.count)[:, group.take]
            np.add.at(jflat, row_jac + scatter, entries)

        residual = rpad[:, :size]
        if gmin > 0.0:
            n_nodes = plan.n_nodes
            residual[:, :n_nodes] += gmin * x[:, :n_nodes]
            if plan.use_sparse:
                jac[:, plan.sparse_schedule.node_diag_pos] += gmin
            else:
                diag = np.einsum("ijj->ij", jac)
                diag[:, :n_nodes] += gmin
        return residual, jac

    def small_signal_jacobians(
        self, x: np.ndarray, variation: FETVariation | None = None
    ) -> np.ndarray:
        """Stacked small-signal conductance matrices at solved corners.

        ``x`` is an ``(m, size)`` stack of operating points (typically
        ``MonteCarloResult.x``); the return value is the stack of MNA
        Jacobians dF/dx linearized there, each instance's
        drive-scale/threshold variation applied — exactly the per-row
        arithmetic of the batched Newton iteration, so row ``i`` equals
        the scalar plan's Jacobian on the corresponding perturbed
        circuit.  Dense plans return ``(m, size, size)`` matrices;
        sparse plans return ``(m, nnz)`` canonical-pattern CSR data
        (wrap rows with ``plan.sparse_schedule.matrix``).  Each row
        *is* the G of ``(G + j w C) x = b`` at that corner: this is
        the bridge batched AC rides over
        (:func:`repro.circuit.ac.ac_monte_carlo`).  Rows are
        elementwise independent, so the stack is bitwise invariant to
        instance order.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.plan.size:
            raise ValueError(
                f"operating points must be (m, {self.plan.size}), got {x.shape}"
            )
        variation = self._check_variation(variation, x.shape[0])
        if variation.n_instances != x.shape[0]:
            raise ValueError(
                f"variation has {variation.n_instances} instances, "
                f"operating-point stack has {x.shape[0]} rows"
            )
        _, jacobian = self._evaluate_batch(x, variation)
        return jacobian

    # -- batched Newton ---------------------------------------------------------
    def _newton_batch(
        self,
        x0: np.ndarray,
        variation: FETVariation,
        gmin: float = 0.0,
        max_iterations: int = _MAX_ITERATIONS,
        ctx: _BatchContext = _DC_CONTEXT,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Damped Newton on every instance at once; returns (x, converged).

        Per-instance semantics mirror :func:`repro.circuit.solver.
        newton_solve`: one relative+absolute max-norm criterion, a
        backtracking line search with per-instance damping, and a
        step-stall exit.  Instances leave the active set as they
        converge (or stall), so late iterations only pay for the
        stragglers.
        """
        m = x0.shape[0]
        x = x0.copy()
        residual, jacobian = self._evaluate_batch(x, variation, gmin, ctx)
        norm = np.abs(residual).max(axis=1)
        tolerance = _RESIDUAL_ATOL + _RESIDUAL_RTOL * norm
        converged = norm <= tolerance
        active = np.flatnonzero(~converged)
        iterations = 0

        while active.size and iterations < max_iterations:
            iterations += 1
            jac_active = jacobian[active]  # copy — safe to regularize in place
            step, dead = self._solve_steps(jac_active, -residual[active])
            if dead.size:
                # Singular instances leave the active set unconverged.
                active = np.delete(active, dead)
                step = np.delete(step, dead, axis=0)
                if not active.size:
                    break
            bad = ~np.all(np.isfinite(step), axis=1)
            if bad.any():
                active = active[~bad]
                step = step[~bad]
                if not active.size:
                    break

            # Vectorised backtracking line search with per-instance damping.
            damping = np.ones(active.size)
            accepted = np.zeros(active.size, dtype=bool)
            pending = np.arange(active.size)
            for _ in range(30):
                rows = active[pending]
                x_trial = x[rows] + damping[pending, None] * step[pending]
                r_trial, j_trial = self._evaluate_batch(
                    x_trial, variation.take(rows), gmin, ctx.take(rows)
                )
                n_trial = np.abs(r_trial).max(axis=1)
                ok = (n_trial < norm[rows]) | (n_trial <= tolerance[rows])
                take = pending[ok]
                if take.size:
                    sel = active[take]
                    x[sel] = x_trial[ok]
                    residual[sel] = r_trial[ok]
                    jacobian[sel] = j_trial[ok]
                    norm[sel] = n_trial[ok]
                    accepted[take] = True
                pending = pending[~ok]
                if not pending.size:
                    break
                damping[pending] *= 0.5

            moved = np.flatnonzero(accepted)
            step_size = np.zeros(active.size)
            step_size[moved] = np.abs(
                damping[moved, None] * step[moved]
            ).max(axis=1)
            converged[active] = norm[active] <= tolerance[active]
            # Stay active only if: the line search moved, we haven't
            # converged, and the step hasn't stalled below _STEP_TOL.
            keep = accepted & ~converged[active] & (step_size >= _STEP_TOL)
            active = active[keep]
        return x, converged

    def _rescue_batch(
        self,
        x_seed: np.ndarray,
        x: np.ndarray,
        converged: np.ndarray,
        variation: FETVariation,
        ctx: _BatchContext = _DC_CONTEXT,
    ) -> None:
        """Walk unconverged instances down the gmin rescue ladder (in place).

        Same spirit as continuation's adaptive stepping, fixed schedule
        — only ever runs on the few failed instances.  Only the final
        unshunted stage decides: its entry point is already near the
        solution, so the relative criterion is meaningful there.
        """
        failed = np.flatnonzero(~converged)
        if not failed.size:
            return
        sub = variation.take(failed)
        x_fail = np.tile(x_seed, (failed.size, 1))
        for gmin in _GMIN_RESCUE_LADDER:
            x_fail, stage_ok = self._newton_batch(
                x_fail, sub, gmin=gmin, ctx=ctx.take(failed)
            )
        x[failed[stage_ok]] = x_fail[stage_ok]
        converged[failed[stage_ok]] = True

    def _solve_steps(
        self, jac_active: np.ndarray, rhs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Regularized Newton steps for a stack of per-instance Jacobians.

        Dense: one batched LAPACK solve over the ``(k, size, size)``
        stack, dropping to a per-row retry only when LAPACK reports a
        singular member.  Sparse: per-instance numeric refactorization
        of the ``(k, nnz)`` data stack against the plan's one-time
        symbolic ordering (:meth:`repro.circuit.assembly.
        _SparseSchedule.factor`).  ``jac_active`` is a private copy and
        is regularized in place.  Returns ``(steps, dead)`` with
        ``dead`` indexing rows whose matrix is numerically singular.
        """
        no_dead = np.empty(0, dtype=np.intp)
        if not self.plan.use_sparse:
            diag = np.einsum("ijj->ij", jac_active)
            diag += DIAG_REGULARIZATION
            try:
                # RHS as (k, size, 1) column matrices: the batched-solve
                # gufunc otherwise misreads a (k, size) stack as one matrix.
                return np.linalg.solve(jac_active, rhs[:, :, None])[..., 0], no_dead
            except np.linalg.LinAlgError:
                return self._solve_rows(jac_active, rhs)
        schedule = self.plan.sparse_schedule
        jac_active[:, schedule.diag_pos] += DIAG_REGULARIZATION
        steps = np.zeros_like(rhs)
        dead: list[int] = []
        for i in range(jac_active.shape[0]):
            solve = schedule.factor(jac_active[i])
            if solve is None:
                dead.append(i)
                continue
            steps[i] = solve(rhs[i])
        return steps, (no_dead if not dead else np.array(dead, dtype=np.intp))

    @staticmethod
    def _solve_rows(jacobians: np.ndarray, rhs: np.ndarray):
        """Row-by-row fallback when the batched solve hits a singular matrix."""
        steps = np.zeros_like(rhs)
        dead: list[int] = []
        for i in range(jacobians.shape[0]):
            try:
                steps[i] = np.linalg.solve(jacobians[i], rhs[i])
            except np.linalg.LinAlgError:
                dead.append(i)
        return steps, np.array(dead, dtype=np.intp)


@lru_cache(maxsize=4)
def _engine_from_pickle(circuit_bytes: bytes) -> "CircuitMonteCarlo":
    """Rebuild (and cache) an engine inside a pool worker process."""
    return CircuitMonteCarlo(pickle.loads(circuit_bytes))


def _mc_entry_validator(size: int):
    """Merge-boundary schema of one DC MC entry: ``(x row, converged)``.

    Applied by the supervisor before a pooled chunk may merge, so a
    corrupt worker payload is rejected (and the chunk retried) at the
    boundary instead of poisoning the stacked result.
    """

    def _valid(entry) -> bool:
        x_i, converged = entry
        return (
            isinstance(x_i, np.ndarray)
            and x_i.shape == (size,)
            and x_i.dtype.kind == "f"
            and isinstance(converged, (bool, np.bool_))
        )

    return _valid


def _transient_entry_validator(size: int, n_samples: int):
    """Merge-boundary schema of one transient MC entry.

    ``(samples (n_samples, size), converged, fallback)`` — NaN samples
    are legitimate (an instance that failed even the scalar rescue), so
    only type and shape are checked.
    """

    def _valid(entry) -> bool:
        samples, converged, fallback = entry
        return (
            isinstance(samples, np.ndarray)
            and samples.shape == (n_samples, size)
            and samples.dtype.kind == "f"
            and isinstance(converged, (bool, np.bool_))
            and isinstance(fallback, (bool, np.bool_))
        )

    return _valid


def _circuit_chunk_kernel(params_block, rng, payload):
    """SweepPlan kernel: solve one block of variation rows (pool-safe)."""
    circuit_bytes, x0 = payload
    engine = _engine_from_pickle(circuit_bytes)
    scale = np.stack([row[0] for row in params_block])
    shift = np.stack([row[1] for row in params_block])
    result = engine._solve_chunk(
        FETVariation(drive_scale=scale, vth_shift_v=shift), x0
    )
    return [result.take_instance(i) for i in range(result.n_instances)]


class CircuitMonteCarlo(_BatchedNewtonEngine):
    """Solve N parameter-perturbed DC instances of one compiled circuit.

    The stamp plan is compiled once; each chunk of instances is solved
    by a batched damped Newton iteration sharing the plan's constant
    linear matrix and FET-group index arrays.  Per-iteration work is
    one ``linearize`` call per device-model group (over *all* active
    instances' bias points at once) plus one batched LAPACK solve over
    the stacked Jacobians.  Convergence is judged per instance with the
    scalar solver's relative+absolute criterion; stragglers get a gmin
    retry ladder, and anything still unconverged is reported as such in
    :class:`MonteCarloResult` rather than raising.

    Sparse plans (``size >= SPARSE_THRESHOLD``) batch the same way:
    every instance shares the plan's canonical sparsity pattern, so the
    Jacobian stack is a ``(m, nnz)`` CSR ``data`` array and each Newton
    step refactorizes the active instances numerically against the
    plan's one-time symbolic ordering.  The per-instance scalar loop
    survives as :meth:`scalar_reference` for tests and benchmarks.
    """

    _ENGINE_NAME = "CircuitMonteCarlo"

    def __init__(self, circuit: Circuit):
        super().__init__(circuit)
        self._x_nominal: np.ndarray | None = None

    # -- public API -------------------------------------------------------------
    def nominal_solution(self) -> np.ndarray:
        """The unperturbed DC solution (cached); seeds every instance."""
        if self._x_nominal is None:
            self._x_nominal = solve_dc(self.system)
        return self._x_nominal

    def run(
        self,
        variation: FETVariation | None = None,
        *,
        n_instances: int | None = None,
        chunk_size: int | None = None,
        workers: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> MonteCarloResult:
        """Solve all instances; returns stacked solutions in input order.

        ``chunk_size`` is the batch width (defaults to
        :data:`DEFAULT_CIRCUIT_CHUNK`); ``workers`` > 1 ships chunks to
        a process pool (the circuit is pickled once, workers cache the
        compiled engine).  Results are bitwise independent of instance
        order, chunking and pooling — each instance's Newton iteration
        is elementwise-independent of its batch neighbours.

        ``policy`` (an :class:`~repro.circuit.resilience.
        ExecutionPolicy`) runs the sweep under the fault-tolerant
        supervisor — chunk timeouts, retries, pool rebuilds, serial
        degradation, checkpoint/resume — with bitwise-identical
        results; a result row is validated against the engine's schema
        before it may merge.  Zero instances return a well-formed empty
        result.
        """
        variation = self._check_variation(variation, n_instances)
        n = variation.n_instances
        if n == 0:
            return _concat_results(
                [],
                size=self.plan.size,
                node_index=self.node_index,
                branch_index=self.branch_index,
            )
        x0 = self.nominal_solution()
        if chunk_size is None:
            chunk_size = DEFAULT_CIRCUIT_CHUNK
            if workers is not None and workers > 1:
                # A pooled run needs at least one chunk per worker to
                # parallelise at all.
                chunk_size = min(chunk_size, -(-n // workers))

        if (workers is not None and workers > 1) or policy is not None:
            # Route chunk dispatch through the generic engine: the
            # kernel rebuilds (and caches) this engine in each worker.
            sweep = SweepPlan(
                _circuit_chunk_kernel,
                vectorized=True,
                payload=(pickle.dumps(self.circuit), x0.copy()),
                substream_block=chunk_size,
                validate=_mc_entry_validator(self.plan.size),
            )
            rows = list(zip(variation.drive_scale, variation.vth_shift_v))
            per_instance = sweep.run(
                rows, chunk_size=chunk_size, workers=workers, policy=policy
            )
            x = np.stack([row[0] for row in per_instance])
            converged = np.array([row[1] for row in per_instance], dtype=bool)
            return MonteCarloResult(
                x=x,
                converged=converged,
                node_index=self.node_index,
                branch_index=self.branch_index,
            )

        parts = [
            self._solve_chunk(variation.take(slice(start, stop)), x0)
            for start, stop in _as_blocks(n, chunk_size)
        ]
        return _concat_results(
            parts,
            size=self.plan.size,
            node_index=self.node_index,
            branch_index=self.branch_index,
        )

    def scalar_reference(self, variation: FETVariation) -> MonteCarloResult:
        """The per-instance scalar loop this engine replaces (for tests/benchmarks).

        Solves every instance through the full continuation ladder
        (:func:`~repro.circuit.continuation.solve_dc_robust`) on an
        explicitly perturbed clone of the circuit — the reference side
        of the batched-vs-scalar equivalence suites and the baseline
        the sparse-MC benchmark measures speedup against.
        """
        variation = self._check_variation(variation, None)
        m = variation.n_instances
        x = np.empty((m, self.plan.size))
        converged = np.zeros(m, dtype=bool)
        for i in range(m):
            system = perturbed_circuit(self.circuit, variation, i).build_system()
            x[i], report = solve_dc_robust(system)
            converged[i] = report.converged
        return MonteCarloResult(
            x=x,
            converged=converged,
            node_index=self.node_index,
            branch_index=self.branch_index,
        )

    def _solve_chunk(
        self, variation: FETVariation, x0: np.ndarray
    ) -> MonteCarloResult:
        """Batched Newton from the nominal seed, with a gmin rescue ladder."""
        m = variation.n_instances
        x_start = np.tile(x0, (m, 1))
        x, converged = self._newton_batch(x_start, variation)
        self._rescue_batch(x0, x, converged, variation)
        return MonteCarloResult(
            x=x,
            converged=converged,
            node_index=self.node_index,
            branch_index=self.branch_index,
        )


# ---------------------------------------------------------------------------
# Batched transient Monte Carlo: N instances time-stepped in lockstep.
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4)
def _transient_engine_from_pickle(circuit_bytes: bytes) -> "CircuitTransientMC":
    """Rebuild (and cache) a transient engine inside a pool worker process."""
    return CircuitTransientMC(pickle.loads(circuit_bytes))


def _transient_chunk_kernel(params_block, rng, payload):
    """SweepPlan kernel: march one block of variation rows (pool-safe)."""
    circuit_bytes, t_stop_s, dt_s, integrator, step_max_iterations = payload
    engine = _transient_engine_from_pickle(circuit_bytes)
    scale = np.stack([row[0] for row in params_block])
    shift = np.stack([row[1] for row in params_block])
    part = engine._march_chunk(
        FETVariation(drive_scale=scale, vth_shift_v=shift),
        t_stop_s,
        dt_s,
        integrator,
        step_max_iterations,
    )
    return [
        (part.samples[i], bool(part.converged[i]), bool(part.fallback[i]))
        for i in range(part.n_instances)
    ]


class CircuitTransientMC(_BatchedNewtonEngine):
    """Time-step N parameter-perturbed instances of one compiled circuit.

    All instances march one shared ``(t_stop, dt, integrator)`` grid in
    lockstep against the plan's constant per-``(dt, integrator)`` linear
    matrix.  The t=0 operating point is solved batched from the
    structural seed (gmin rescue ladder for stragglers, scalar
    continuation for anything left); each subsequent step runs the
    batched damped Newton iteration from the previous solutions with
    the capacitor companion state stacked ``(m, n_caps)``.

    Per-instance robustness: an instance whose step fails batched
    Newton **falls back to the scalar path individually** — the same
    adaptive continuation rescue the scalar ``transient()`` applies to
    a failed step (:func:`~repro.circuit.continuation.solve_dc_robust`
    on a :func:`perturbed_circuit` clone, anchored at that instance's
    previous solution and companion state) — and then rejoins the
    lockstep batch, rather than poisoning its neighbours.  Such
    instances are reported in ``TransientMCResult.fallback``; only an
    instance that fails *even the scalar rescue* comes back
    ``converged=False`` (with NaN samples).

    Determinism: per-instance arithmetic is elementwise throughout, so
    waveforms are bitwise invariant to chunk size, instance order, and
    serial vs. process-pool execution, and match the per-instance
    scalar loop to solver tolerance.
    """

    _ENGINE_NAME = "CircuitTransientMC"

    def run(
        self,
        variation: FETVariation | None = None,
        t_stop_s: float | None = None,
        dt_s: float | None = None,
        *,
        integrator: str = "trapezoidal",
        n_instances: int | None = None,
        chunk_size: int | None = None,
        workers: int | None = None,
        step_max_iterations: int = _MAX_ITERATIONS,
        policy: ExecutionPolicy | None = None,
    ) -> TransientMCResult:
        """March all instances to ``t_stop_s``; samples in input order.

        ``step_max_iterations`` caps each time step's batched Newton
        iteration before the per-instance scalar fallback engages
        (exposed for tests; the default matches the scalar solver).
        Results are bitwise independent of ``chunk_size``, instance
        order and ``workers``.  ``policy`` runs the sweep under the
        fault-tolerant supervisor (see :class:`CircuitMonteCarlo.run`);
        zero instances return a well-formed empty result.
        """
        if t_stop_s is None or dt_s is None:
            raise ValueError("give t_stop_s and dt_s")
        n_steps = validate_grid(t_stop_s, dt_s, integrator)
        variation = self._check_variation(variation, n_instances)
        n = variation.n_instances
        if n == 0:
            return _concat_transient(
                [],
                size=self.plan.size,
                n_samples=n_steps + 1,
                dt_s=dt_s,
                node_index=self.node_index,
                branch_index=self.branch_index,
            )

        if chunk_size is None:
            chunk_size = DEFAULT_CIRCUIT_CHUNK
            if workers is not None and workers > 1:
                chunk_size = min(chunk_size, -(-n // workers))

        if (workers is not None and workers > 1) or policy is not None:
            sweep = SweepPlan(
                _transient_chunk_kernel,
                vectorized=True,
                payload=(
                    pickle.dumps(self.circuit),
                    t_stop_s,
                    dt_s,
                    integrator,
                    step_max_iterations,
                ),
                substream_block=chunk_size,
                validate=_transient_entry_validator(self.plan.size, n_steps + 1),
            )
            rows = list(zip(variation.drive_scale, variation.vth_shift_v))
            per_instance = sweep.run(
                rows, chunk_size=chunk_size, workers=workers, policy=policy
            )
            return TransientMCResult(
                samples=np.stack([row[0] for row in per_instance]),
                dt_s=dt_s,
                converged=np.array([row[1] for row in per_instance], dtype=bool),
                fallback=np.array([row[2] for row in per_instance], dtype=bool),
                node_index=self.node_index,
                branch_index=self.branch_index,
            )

        parts = [
            self._march_chunk(
                variation.take(slice(start, stop)),
                t_stop_s,
                dt_s,
                integrator,
                step_max_iterations,
            )
            for start, stop in _as_blocks(n, chunk_size)
        ]
        return _concat_transient(
            parts,
            size=self.plan.size,
            n_samples=n_steps + 1,
            dt_s=dt_s,
            node_index=self.node_index,
            branch_index=self.branch_index,
        )

    # -- the lockstep march -----------------------------------------------------
    def _march_chunk(
        self,
        variation: FETVariation,
        t_stop_s: float,
        dt_s: float,
        integrator: str,
        step_max_iterations: int,
    ) -> TransientMCResult:
        plan = self.plan
        size = plan.size
        n_steps = validate_grid(t_stop_s, dt_s, integrator)
        m = variation.n_instances
        samples = np.empty((m, n_steps + 1, size))
        converged = np.ones(m, dtype=bool)
        fallback = np.zeros(m, dtype=bool)
        # Perturbed scalar systems, built lazily for instances that need
        # a scalar rescue (and cached: a stiff instance tends to need
        # rescuing at several steps of the same switching edge).
        scalar_systems: dict[int, object] = {}

        # t=0 operating point: batched Newton from the same structural
        # seed the scalar path's continuation ladder starts from, gmin
        # ladder for stragglers, full scalar continuation for the rest.
        ctx0 = _BatchContext(time_s=0.0)
        seed = structural_seed(self.system, time_s=0.0)
        x = np.tile(seed, (m, 1))
        x, ok = self._newton_batch(x, variation, ctx=ctx0)
        self._rescue_batch(seed, x, ok, variation, ctx=ctx0)
        for i in np.flatnonzero(~ok):
            i = int(i)
            fallback[i] = True
            x_i, report = solve_dc_robust(
                self._scalar_system(scalar_systems, variation, i), time_s=0.0
            )
            if report.converged:
                x[i] = x_i
                ok[i] = True
            else:
                converged[i] = False
        samples[:, 0] = x

        alive = np.flatnonzero(ok)
        x_alive = x[alive]
        prevpad = np.zeros((alive.size, size + 1))
        prevpad[:, :size] = x_alive
        state = np.zeros((alive.size, len(plan.cap_names)))

        for step in range(1, n_steps + 1):
            if not alive.size:
                break
            ctx = _BatchContext(
                time_s=step * dt_s,
                dt_s=dt_s,
                integrator=integrator,
                prevpad=prevpad,
                state_currents=state,
            )
            x_next, ok_step = self._newton_batch(
                x_alive,
                variation.take(alive),
                ctx=ctx,
                max_iterations=step_max_iterations,
            )
            if not ok_step.all():
                # A failed step falls back to the scalar path
                # individually — the same adaptive continuation rescue
                # transient() applies to a failed step (anchored at that
                # instance's previous solution and companion state) —
                # after which the instance rejoins the lockstep batch.
                for row in np.flatnonzero(~ok_step):
                    row = int(row)
                    instance = int(alive[row])
                    fallback[instance] = True
                    system = self._scalar_system(scalar_systems, variation, instance)
                    state_dict = {
                        name: float(value)
                        for name, value in zip(plan.cap_names, state[row])
                    }
                    x_rescued, report = solve_dc_robust(
                        system,
                        prevpad[row, :size],
                        time_s=ctx.time_s,
                        dt_s=dt_s,
                        previous_x=prevpad[row, :size],
                        integrator=integrator,
                        state=state_dict,
                    )
                    if report.converged:
                        x_next[row] = x_rescued
                        ok_step[row] = True
                    else:
                        converged[instance] = False
                if not ok_step.all():
                    # Even the scalar rescue failed: drop the instance.
                    alive = alive[ok_step]
                    x_next = x_next[ok_step]
                    prevpad = prevpad[ok_step]
                    state = state[ok_step]
                    if not alive.size:
                        break
            xpad = np.zeros((alive.size, size + 1))
            xpad[:, :size] = x_next
            # Update trapezoidal history currents at the accepted solution.
            if integrator == "trapezoidal" and state.shape[1]:
                state = plan.cap_state_update(xpad, prevpad, dt_s, integrator, state)
            samples[alive, step] = x_next
            prevpad = xpad
            x_alive = x_next

        samples[~converged] = np.nan

        return TransientMCResult(
            samples=samples,
            dt_s=dt_s,
            converged=converged,
            fallback=fallback,
            node_index=self.node_index,
            branch_index=self.branch_index,
        )

    # -- scalar fallbacks --------------------------------------------------------
    def _scalar_system(
        self, cache: dict, variation: FETVariation, instance: int
    ):
        """The perturbed scalar system of one instance (cached per run)."""
        system = cache.get(instance)
        if system is None:
            system = perturbed_circuit(
                self.circuit, variation, instance
            ).build_system()
            cache[instance] = system
        return system

    def scalar_reference(
        self,
        variation: FETVariation,
        t_stop_s: float,
        dt_s: float,
        integrator: str = "trapezoidal",
    ) -> np.ndarray:
        """The per-instance scalar loop this engine replaces (for tests/benchmarks).

        Integrates every instance through :func:`repro.circuit.transient.
        transient_samples` on an explicitly perturbed circuit clone;
        raises :class:`~repro.circuit.continuation.ConvergenceError` if
        any instance fails.  Returns ``(n_instances, n_steps + 1, size)``.
        """
        variation = self._check_variation(variation, None)
        n_steps = validate_grid(t_stop_s, dt_s, integrator)
        out = np.empty((variation.n_instances, n_steps + 1, self.plan.size))
        for i in range(variation.n_instances):
            system = perturbed_circuit(self.circuit, variation, i).build_system()
            out[i] = transient_samples(system, t_stop_s, dt_s, integrator)
        return out

"""Fault-tolerant sweep execution: supervision, checkpoints, fault injection.

The paper's argument is imperfection tolerance — yield under stuck-at
faults — yet a plain ``ProcessPoolExecutor.map`` over Monte Carlo
chunks is all-or-nothing: one worker segfault or OOM kill raises
``BrokenProcessPool`` and the entire run is lost.  This module gives
:class:`repro.circuit.sweep.SweepPlan` the same property the circuits
under study are measured for — graceful degradation:

* **Supervised execution** (:func:`run_supervised`): chunks are
  submitted as individual futures with a per-chunk timeout; a crashed
  pool is rebuilt and the surviving chunks resubmitted with exponential
  backoff; results already computed are harvested before every
  teardown; chunks that exhaust their pooled retries fall down one rung
  to in-process serial execution.  Every outcome is recorded in a
  :class:`RunReport` (per-chunk status, attempts, timings, failure
  taxonomy) and an irrecoverable run raises
  :class:`SweepExecutionError` carrying the report plus every salvaged
  chunk — never a bare traceback.
* **Chunk checkpoint/resume** (:class:`CheckpointStore`): completed
  chunk results are atomically persisted (unique temp file +
  ``os.replace``, the pattern proven by the surrogate disk cache) into
  a run directory keyed by the content fingerprint of (kernel, payload,
  seed, chunking).  A run killed mid-flight resumes by loading finished
  chunks and computing only the rest.
* **Deterministic fault injection** (:class:`FaultPlan`): tests (and
  the CI chaos smoke) make chosen chunks crash the worker, hang past
  the timeout, raise, or return schema-corrupt payloads on chosen
  attempts — deterministically, so every recovery path is exercised as
  a tier-1 assertion rather than hoped-for behaviour.
* **Merge-boundary validation**: a chunk's payload is validated
  *before* it is merged (result-list shape plus an optional per-entry
  schema check) — corrupt payloads are classified and retried at the
  boundary instead of being patched downstream.

Why recovery is *provably* correct here: chunk results depend only on
the chunk's spec (parameter rows plus position-keyed
``SeedSequence.spawn`` substreams), never on which process executes it
or on the attempt number.  A retried, resubmitted, or
serially-degraded chunk is therefore bitwise identical to the pooled
original — asserted by the recovery test suite.

Scope notes: per-chunk timeouts apply to pooled execution (an
in-process kernel cannot be preempted); ``crash``/``hang`` faults are
likewise injected only into pool workers so a test plan can never take
down the supervisor itself, while ``raise``/``corrupt`` faults fire in
both execution modes.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

__all__ = [
    "ExecutionPolicy",
    "FaultPlan",
    "FaultSpec",
    "FaultInjected",
    "CheckpointStore",
    "ChunkRecord",
    "RunReport",
    "SweepExecutionError",
    "run_supervised",
    "fingerprint",
    "atomic_write_text",
]

_LOG = logging.getLogger(__name__)

#: Failure taxonomy recorded per attempt in :class:`ChunkRecord.failures`.
FAILURE_KINDS = ("crash", "timeout", "error", "corrupt")

#: On-disk checkpoint format version; bumping invalidates old run dirs.
_CHECKPOINT_VERSION = 1

#: Upper bound on the backoff sleep between pool rebuilds [s].
_BACKOFF_CAP_S = 2.0


def fingerprint(obj) -> str:
    """Content hash (32 hex chars) of a picklable object tree.

    Stability contract: identical values built the same way pickle to
    identical bytes, so a resume under the same kernel/params/seed hits
    its checkpoints; any drift in the inputs changes the key and the
    chunk is recomputed — the safe direction.
    """
    return hashlib.sha256(pickle.dumps(obj, protocol=4)).hexdigest()[:32]


# ---------------------------------------------------------------------------
# Deterministic fault injection.
# ---------------------------------------------------------------------------


class FaultInjected(RuntimeError):
    """Raised by an injected ``raise`` fault (stands in for a kernel bug)."""


#: What a ``corrupt`` fault returns instead of the chunk's result list —
#: guaranteed to fail merge-boundary validation.
_CORRUPT_PAYLOAD = "<corrupt-chunk-payload>"


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what happens, and on how many attempts.

    ``kind`` is one of ``crash`` (``os._exit`` the worker — the
    segfault/OOM-kill stand-in), ``hang`` (sleep ``hang_s``, past the
    supervisor timeout), ``raise`` (a kernel exception), or ``corrupt``
    (return a payload that fails merge-boundary validation).  The fault
    fires on the first ``times`` submissions of its chunk and then
    stops, so a bounded-retry supervisor recovers deterministically.
    """

    kind: str
    times: int = 1
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "hang", "raise", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.times < 1:
            raise ValueError("a fault must fire at least once")


@dataclass(frozen=True)
class FaultPlan:
    """Chunk-index-keyed fault schedule for supervisor tests.

    Deterministic by construction: whether a fault fires depends only
    on ``(chunk index, submission number)``, never on timing — so a
    chaos test asserts exact recovery, not probabilistic survival.
    """

    faults: Mapping[int, FaultSpec]

    def fault_for(self, chunk_index: int, submission: int) -> FaultSpec | None:
        spec = self.faults.get(chunk_index)
        if spec is not None and submission < spec.times:
            return spec
        return None

    @classmethod
    def single(
        cls, chunk_index: int, kind: str, *, times: int = 1, hang_s: float = 30.0
    ) -> "FaultPlan":
        return cls({chunk_index: FaultSpec(kind, times=times, hang_s=hang_s)})


def _apply_inprocess_fault(fault: FaultSpec | None):
    """Fire the in-process-safe fault kinds; ``(handled, payload)``.

    ``crash``/``hang`` are pool-only (a test plan must never take down
    the supervisor process itself) and are skipped here.
    """
    if fault is None:
        return False, None
    if fault.kind == "raise":
        raise FaultInjected(f"injected kernel failure ({fault.times} time(s))")
    if fault.kind == "corrupt":
        return True, _CORRUPT_PAYLOAD
    return False, None


def _supervised_chunk(job):
    """Pool-side chunk target: inject the scheduled fault, then run.

    Top-level so process pools can pickle it.  ``job`` is
    ``(chunk_fn, spec, fault)``; the fault, if any, fires *inside the
    worker* — a crash here is indistinguishable from a real segfault as
    far as the supervising parent is concerned.
    """
    chunk_fn, spec, fault = job
    if fault is not None:
        if fault.kind == "crash":
            os._exit(17)
        if fault.kind == "hang":
            time.sleep(fault.hang_s)
        else:
            handled, payload = _apply_inprocess_fault(fault)
            if handled:
                return payload
    return chunk_fn(spec)


# ---------------------------------------------------------------------------
# Chunk-granular checkpoints.
# ---------------------------------------------------------------------------


class CheckpointStore:
    """Atomic per-chunk result persistence for one supervised run.

    Chunk files live under ``<root>/<run_key>/chunk-NNNNN.pkl`` where
    ``run_key`` fingerprints (kernel, payload, seed, chunking) — two
    different sweeps sharing one checkpoint root can never collide.
    Each file records the chunk's own spec digest; a load whose digest
    does not match (stale file from edited code or parameters) is
    ignored and the chunk recomputed.  Writes are atomic (unique
    ``mkstemp`` temp + ``os.replace``) and best-effort: a read-only or
    full disk degrades to plain recomputation, never to corruption.
    """

    def __init__(self, root: str | Path, run_key: str):
        self.root = Path(root)
        self.run_key = run_key
        self.directory = self.root / run_key

    def chunk_path(self, index: int) -> Path:
        return self.directory / f"chunk-{index:05d}.pkl"

    def load(self, index: int, digest: str):
        """The stored result list of one chunk, or None on any defect."""
        path = self.chunk_path(index)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
            if (
                record.get("version") == _CHECKPOINT_VERSION
                and record.get("index") == index
                and record.get("digest") == digest
            ):
                return record["results"]
        except (OSError, pickle.PickleError, EOFError, AttributeError, KeyError):
            pass
        return None

    def store(self, index: int, digest: str, results: list) -> None:
        """Atomically persist one completed chunk (best effort)."""
        path = self.chunk_path(index)
        record = {
            "version": _CHECKPOINT_VERSION,
            "index": index,
            "digest": digest,
            "results": results,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{path.stem}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(record, handle, protocol=4)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            _LOG.warning("checkpoint write failed for chunk %d at %s", index, path)


def atomic_write_text(path: Path | str, text: str) -> None:
    """Crash-safe text write: mkstemp in the target directory + ``os.replace``.

    Readers never observe a half-written file — they see either the old
    content or the new, the same discipline the checkpoint store and the
    surrogate cache follow for binary payloads.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.stem}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# Policy, per-chunk records, and the run report.
# ---------------------------------------------------------------------------


@dataclass
class ExecutionPolicy:
    """Supervision knobs of one sweep run.

    ``timeout_s`` bounds each pooled chunk attempt (None = wait
    forever; serial execution is never preempted).  A chunk gets
    ``max_retries + 1`` pooled attempts before degrading to the serial
    rung (``degrade_serial``); ``backoff_s``/``backoff_factor`` shape
    the exponential wait before each pool rebuild.  ``checkpoint_root``
    enables chunk-granular persistence/resume; ``fault_plan`` injects
    deterministic faults (tests and the CI chaos smoke).  Completed
    :class:`RunReport` objects are appended to ``reports``, including
    the report carried by a :class:`SweepExecutionError`.
    """

    timeout_s: float | None = None
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    degrade_serial: bool = True
    checkpoint_root: str | Path | None = None
    fault_plan: FaultPlan | None = None
    reports: list["RunReport"] = field(default_factory=list, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0.0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_s >= 0 and backoff_factor >= 1 required")

    def backoff_for(self, rebuild: int) -> float:
        """Sleep before the ``rebuild``-th pool reconstruction [s]."""
        return min(
            self.backoff_s * self.backoff_factor ** max(rebuild - 1, 0),
            _BACKOFF_CAP_S,
        )


@dataclass
class ChunkRecord:
    """Lifecycle of one chunk: status, attempts, failure taxonomy.

    ``status`` ends as ``ok`` (pooled/serial first-class execution),
    ``cached`` (loaded from a checkpoint), ``serial`` (recovered on the
    degradation rung), or ``failed``.  ``failures`` lists the taxonomy
    kind of every failed attempt, in order (see :data:`FAILURE_KINDS`).
    """

    index: int
    n_items: int
    status: str = "pending"
    attempts: int = 0
    wall_s: float = 0.0
    failures: tuple[str, ...] = ()

    def record_failure(self, kind: str, wall_s: float = 0.0) -> None:
        self.attempts += 1
        self.failures = self.failures + (kind,)
        self.wall_s += wall_s

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "n_items": self.n_items,
            "status": self.status,
            "attempts": self.attempts,
            "wall_s": self.wall_s,
            "failures": list(self.failures),
        }


@dataclass
class RunReport:
    """Structured outcome of one supervised sweep run."""

    chunks: list[ChunkRecord]
    workers: int | None
    pool_rebuilds: int
    wall_s: float
    run_key: str | None = None
    checkpoint_dir: str | None = None

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def ok(self) -> bool:
        return all(c.status in ("ok", "cached", "serial") for c in self.chunks)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for chunk in self.chunks:
            out[chunk.status] = out.get(chunk.status, 0) + 1
        return out

    def failure_taxonomy(self) -> dict[str, int]:
        """Failure-kind histogram across every attempt of every chunk."""
        out: dict[str, int] = {}
        for chunk in self.chunks:
            for kind in chunk.failures:
                out[kind] = out.get(kind, 0) + 1
        return out

    def one_line(self) -> str:
        """Single-line summary for logs and the CLI's structured exit."""
        counts = self.counts()
        done = sum(counts.get(s, 0) for s in ("ok", "cached", "serial"))
        bits = [f"{done}/{self.n_chunks} chunks completed"]
        for status in ("cached", "serial", "failed"):
            if counts.get(status):
                bits.append(f"{counts[status]} {status}")
        taxonomy = self.failure_taxonomy()
        if taxonomy:
            bits.append(
                "failures: "
                + ", ".join(f"{k}={v}" for k, v in sorted(taxonomy.items()))
            )
        if self.pool_rebuilds:
            bits.append(f"{self.pool_rebuilds} pool rebuild(s)")
        return "; ".join(bits)

    def to_json(self) -> str:
        return json.dumps(
            {
                "workers": self.workers,
                "pool_rebuilds": self.pool_rebuilds,
                "wall_s": self.wall_s,
                "run_key": self.run_key,
                "checkpoint_dir": self.checkpoint_dir,
                "counts": self.counts(),
                "failure_taxonomy": self.failure_taxonomy(),
                "chunks": [c.to_dict() for c in self.chunks],
            },
            indent=2,
            sort_keys=True,
        )


class SweepExecutionError(RuntimeError):
    """An irrecoverable supervised run — with everything that *did* finish.

    ``report`` is the full :class:`RunReport`; ``partial`` maps chunk
    index to the salvaged result list of every chunk that completed
    (also checkpointed when a store is configured, so the run can be
    resumed after the cause is fixed).
    """

    def __init__(self, message: str, report: RunReport, partial: dict[int, list]):
        super().__init__(message)
        self.report = report
        self.partial = partial


# ---------------------------------------------------------------------------
# Merge-boundary validation.
# ---------------------------------------------------------------------------


def _chunk_valid(payload, expected: int, validate: Callable | None) -> bool:
    """Boundary check of one chunk result before it may merge.

    Structural schema first (a list of exactly ``expected`` entries),
    then the caller's per-entry validator; a validator that *raises* is
    a rejection, not a supervisor crash.
    """
    if not isinstance(payload, list) or len(payload) != expected:
        return False
    if validate is not None:
        for entry in payload:
            try:
                if not validate(entry):
                    return False
            except Exception:
                return False
    return True


# ---------------------------------------------------------------------------
# The supervisor.
# ---------------------------------------------------------------------------


def run_supervised(
    chunks: list,
    *,
    chunk_fn: Callable,
    expected_counts: list[int],
    workers: int | None = None,
    policy: ExecutionPolicy | None = None,
    validate: Callable | None = None,
    run_token=None,
) -> tuple[list, RunReport]:
    """Execute ``chunk_fn`` over ``chunks`` under full supervision.

    Returns ``(flat results, report)`` with results in chunk order;
    raises :class:`SweepExecutionError` (report + salvaged chunks
    attached) if any chunk remains failed after the whole degradation
    ladder.  ``expected_counts[i]`` is the result-list length chunk
    ``i`` must produce; ``validate`` is an optional per-entry schema
    check applied at the merge boundary.  ``run_token`` keys the
    checkpoint directory when the policy has a ``checkpoint_root``.

    The ladder, per chunk: checkpoint hit -> pooled attempts (with
    timeout, retry, pool rebuild on crash) -> in-process serial rung ->
    failed.  Chunk results depend only on the chunk spec, so every rung
    produces bitwise-identical output.
    """
    policy = ExecutionPolicy() if policy is None else policy
    n = len(chunks)
    started = time.perf_counter()
    records = [ChunkRecord(index=i, n_items=expected_counts[i]) for i in range(n)]
    results: dict[int, list] = {}

    store = None
    digests: list[str | None] = [None] * n
    if policy.checkpoint_root is not None:
        run_key = fingerprint(("sweep-run", _CHECKPOINT_VERSION, run_token))
        store = CheckpointStore(policy.checkpoint_root, run_key)
        for i in range(n):
            digests[i] = fingerprint(chunks[i])
            cached = store.load(i, digests[i])
            if cached is not None and _chunk_valid(
                cached, expected_counts[i], validate
            ):
                results[i] = cached
                records[i].status = "cached"

    def finish(i: int, payload, wall_s: float, status: str) -> bool:
        """Validate at the merge boundary; True once the chunk is merged."""
        if not _chunk_valid(payload, expected_counts[i], validate):
            records[i].record_failure("corrupt", wall_s)
            return False
        records[i].attempts += 1
        records[i].wall_s += wall_s
        records[i].status = status
        results[i] = payload
        if store is not None:
            store.store(i, digests[i] or fingerprint(chunks[i]), payload)
        return True

    pending = [i for i in range(n) if i not in results]
    serial_queue: list[int] = []
    submissions = [0] * n
    pool_rebuilds = 0

    use_pool = bool(workers is not None and workers > 1 and pending)
    if use_pool:
        # Guard against supervisor stalls: every wave classifies at
        # least one outcome, so this bound is never reached by a run
        # that is making progress.
        max_waves = n * (policy.max_retries + 2) + 2
        wave = 0
        while pending and wave < max_waves:
            wave += 1
            if pool_rebuilds:
                time.sleep(policy.backoff_for(pool_rebuilds))
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = {}
            for i in pending:
                fault = (
                    policy.fault_plan.fault_for(i, submissions[i])
                    if policy.fault_plan is not None
                    else None
                )
                submissions[i] += 1
                futures[i] = pool.submit(
                    _supervised_chunk, (chunk_fn, chunks[i], fault)
                )
            dirty = False
            wave_started = time.perf_counter()
            order = iter(pending)
            for i in order:
                t0 = time.perf_counter()
                try:
                    payload = futures[i].result(timeout=policy.timeout_s)
                except _FutureTimeout:
                    records[i].record_failure("timeout", time.perf_counter() - t0)
                    dirty = True
                    # Harvest siblings that DID finish before tearing
                    # the (possibly hung) pool down; the rest go back
                    # to pending without burning an attempt.
                    for j in order:
                        if futures[j].done():
                            t1 = time.perf_counter()
                            try:
                                sibling = futures[j].result(timeout=0)
                            except Exception as exc:
                                records[j].record_failure(
                                    _failure_kind(exc), time.perf_counter() - t1
                                )
                            else:
                                finish(j, sibling, time.perf_counter() - t1, "ok")
                    break
                except BrokenExecutor:
                    # The pool died under this chunk (worker crash /
                    # OOM kill).  Siblings' futures resolve instantly
                    # now — completed ones still carry their results.
                    records[i].record_failure("crash", time.perf_counter() - t0)
                    dirty = True
                except Exception:
                    records[i].record_failure("error", time.perf_counter() - t0)
                else:
                    finish(i, payload, time.perf_counter() - t0, "ok")
            if dirty:
                pool_rebuilds += 1
                pool.shutdown(wait=False, cancel_futures=True)
                _LOG.warning(
                    "sweep pool torn down (wave %d, %.2fs): rebuilding for "
                    "%d unfinished chunk(s)",
                    wave,
                    time.perf_counter() - wave_started,
                    sum(1 for i in pending if i not in results),
                )
            else:
                pool.shutdown(wait=True)
            next_pending = []
            for i in pending:
                if i in results:
                    continue
                if len(records[i].failures) > policy.max_retries:
                    serial_queue.append(i)
                else:
                    next_pending.append(i)
            pending = next_pending
        serial_queue = sorted(set(serial_queue) | set(pending))
        serial_budget = 1  # last rung: one in-process attempt each
    else:
        serial_queue = list(pending)
        serial_budget = policy.max_retries + 1

    # -- the serial rung ----------------------------------------------------
    for i in serial_queue:
        degraded = use_pool  # reached here by falling off the pool ladder
        if degraded and not policy.degrade_serial:
            records[i].status = "failed"
            continue
        for attempt in range(serial_budget):
            if attempt and policy.backoff_s > 0.0:
                time.sleep(policy.backoff_for(attempt))
            fault = (
                policy.fault_plan.fault_for(i, submissions[i])
                if policy.fault_plan is not None
                else None
            )
            submissions[i] += 1
            t0 = time.perf_counter()
            try:
                handled, payload = _apply_inprocess_fault(fault)
                if not handled:
                    payload = chunk_fn(chunks[i])
            except Exception:
                records[i].record_failure("error", time.perf_counter() - t0)
                continue
            if finish(
                i, payload, time.perf_counter() - t0, "serial" if degraded else "ok"
            ):
                break
        if i not in results:
            records[i].status = "failed"

    report = RunReport(
        chunks=records,
        workers=workers,
        pool_rebuilds=pool_rebuilds,
        wall_s=time.perf_counter() - started,
        run_key=None if store is None else store.run_key,
        checkpoint_dir=None if store is None else str(store.directory),
    )
    policy.reports.append(report)
    if not report.ok:
        raise SweepExecutionError(
            f"supervised sweep failed: {report.one_line()}", report, results
        )
    flat = [entry for i in range(n) for entry in results[i]]
    return flat, report


def _failure_kind(exc: BaseException) -> str:
    """Taxonomy bucket of an exception raised by a chunk future."""
    if isinstance(exc, BrokenExecutor):
        return "crash"
    if isinstance(exc, _FutureTimeout):
        return "timeout"
    return "error"

"""Circuit elements and their residual/Jacobian contributions.

The solver works on the residual formulation of modified nodal analysis:
the unknown vector stacks node voltages (ground excluded) and the branch
currents of voltage sources; each element adds its terminal currents to
the KCL residual and its derivatives to the Jacobian.  Nonlinear FETs
linearise through
:meth:`repro.devices.base.FETModel.linearize_point` (model-owned
central differences by default, analytic for spline surrogates) — the
scalar twin of the batched ``linearize`` the compiled stamp plan of
:mod:`repro.circuit.assembly` calls, so this reference path and the
compiled path share their arithmetic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.circuit.waveforms import DC
from repro.devices.base import FETModel

__all__ = ["Element", "Resistor", "Capacitor", "VoltageSource", "CurrentSource", "FET"]

GROUND_NAMES = frozenset({"0", "gnd", "GND", "ground"})


class Element(abc.ABC):
    """Base class: a named element attached to named nodes."""

    name: str
    nodes: tuple[str, ...]

    @abc.abstractmethod
    def contribute(self, ctx: "StampContext") -> None:
        """Add this element's currents/derivatives to the system being built."""

    @property
    def branch_count(self) -> int:
        """Number of extra (branch-current) unknowns this element needs."""
        return 0


@dataclass
class StampContext:
    """View of the system under assembly handed to each element.

    ``voltage(node)`` reads the present Newton iterate; ``add_current``
    accumulates KCL residuals ("current leaving the node is positive");
    ``add_jacobian`` accumulates d(residual row)/d(unknown column).
    Transient analyses provide ``time_s``, ``dt_s`` and per-element
    ``state`` dictionaries (charge history for reactive elements).
    """

    system: object
    x: object
    residual: object
    jacobian: object
    time_s: float | None = None
    dt_s: float | None = None
    previous_x: object = None
    integrator: str = "trapezoidal"
    state: dict = field(default_factory=dict)
    source_scale: float = 1.0
    gmin: float = 0.0

    def index(self, node: str) -> int | None:
        return self.system.node_index(node)

    def voltage(self, node: str, vector=None) -> float:
        vector = self.x if vector is None else vector
        idx = self.index(node)
        return 0.0 if idx is None else float(vector[idx])

    def add_current(self, node: str, value: float) -> None:
        idx = self.index(node)
        if idx is not None:
            self.residual[idx] += value

    def add_jacobian(self, row_node: str, col_index: int | None, value: float) -> None:
        row = self.index(row_node)
        if row is not None and col_index is not None:
            self.jacobian[row, col_index] += value

    def add_branch_residual(self, branch_index: int, value: float) -> None:
        self.residual[branch_index] += value

    def add_branch_jacobian(self, branch_index: int, col_index: int | None, value: float) -> None:
        if col_index is not None:
            self.jacobian[branch_index, col_index] += value


@dataclass
class Resistor(Element):
    """Linear resistor between nodes p and n."""

    name: str
    p: str
    n: str
    resistance_ohm: float

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0.0:
            raise ValueError(f"{self.name}: resistance must be positive")
        self.nodes = (self.p, self.n)

    def contribute(self, ctx: StampContext) -> None:
        conductance = 1.0 / self.resistance_ohm
        vp, vn = ctx.voltage(self.p), ctx.voltage(self.n)
        current = conductance * (vp - vn)
        ctx.add_current(self.p, current)
        ctx.add_current(self.n, -current)
        ip, in_ = ctx.index(self.p), ctx.index(self.n)
        ctx.add_jacobian(self.p, ip, conductance)
        ctx.add_jacobian(self.p, in_, -conductance)
        ctx.add_jacobian(self.n, ip, -conductance)
        ctx.add_jacobian(self.n, in_, conductance)


@dataclass
class Capacitor(Element):
    """Linear capacitor; open in DC, companion-model in transient."""

    name: str
    p: str
    n: str
    capacitance_f: float

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0.0:
            raise ValueError(f"{self.name}: capacitance must be positive")
        self.nodes = (self.p, self.n)

    def contribute(self, ctx: StampContext) -> None:
        if ctx.dt_s is None:
            return  # open circuit in DC
        vp, vn = ctx.voltage(self.p), ctx.voltage(self.n)
        v_now = vp - vn
        v_prev = ctx.voltage(self.p, ctx.previous_x) - ctx.voltage(self.n, ctx.previous_x)
        if ctx.integrator == "backward-euler":
            geq = self.capacitance_f / ctx.dt_s
            current = geq * (v_now - v_prev)
        else:  # trapezoidal
            geq = 2.0 * self.capacitance_f / ctx.dt_s
            i_prev = ctx.state.get(self.name, 0.0)
            current = geq * (v_now - v_prev) - i_prev
        ctx.add_current(self.p, current)
        ctx.add_current(self.n, -current)
        ip, in_ = ctx.index(self.p), ctx.index(self.n)
        ctx.add_jacobian(self.p, ip, geq)
        ctx.add_jacobian(self.p, in_, -geq)
        ctx.add_jacobian(self.n, ip, -geq)
        ctx.add_jacobian(self.n, in_, geq)

    def update_state(self, ctx: StampContext) -> float:
        """Capacitor current at the accepted solution (trapezoidal history)."""
        v_now = ctx.voltage(self.p) - ctx.voltage(self.n)
        v_prev = ctx.voltage(self.p, ctx.previous_x) - ctx.voltage(self.n, ctx.previous_x)
        if ctx.integrator == "backward-euler":
            return self.capacitance_f / ctx.dt_s * (v_now - v_prev)
        geq = 2.0 * self.capacitance_f / ctx.dt_s
        i_prev = ctx.state.get(self.name, 0.0)
        return geq * (v_now - v_prev) - i_prev


@dataclass
class VoltageSource(Element):
    """Independent voltage source with a branch-current unknown."""

    name: str
    p: str
    n: str
    waveform: object = field(default_factory=DC)
    branch_index: int = -1  # assigned by the netlist

    def __post_init__(self) -> None:
        self.nodes = (self.p, self.n)
        if isinstance(self.waveform, (int, float)):
            self.waveform = DC(float(self.waveform))

    @property
    def branch_count(self) -> int:
        return 1

    def level(self, time_s: float | None) -> float:
        if time_s is None:
            return self.waveform.dc
        return self.waveform.value(time_s)

    def contribute(self, ctx: StampContext) -> None:
        branch = self.branch_index
        current = float(ctx.x[branch])
        ctx.add_current(self.p, current)
        ctx.add_current(self.n, -current)
        ctx.add_jacobian(self.p, branch, 1.0)
        ctx.add_jacobian(self.n, branch, -1.0)
        vp, vn = ctx.voltage(self.p), ctx.voltage(self.n)
        target = ctx.source_scale * self.level(ctx.time_s)
        ctx.add_branch_residual(branch, vp - vn - target)
        ctx.add_branch_jacobian(branch, ctx.index(self.p), 1.0)
        ctx.add_branch_jacobian(branch, ctx.index(self.n), -1.0)


@dataclass
class CurrentSource(Element):
    """Independent current source (current flows p -> n through the source)."""

    name: str
    p: str
    n: str
    waveform: object = field(default_factory=DC)

    def __post_init__(self) -> None:
        self.nodes = (self.p, self.n)
        if isinstance(self.waveform, (int, float)):
            self.waveform = DC(float(self.waveform))

    def level(self, time_s: float | None) -> float:
        if time_s is None:
            return self.waveform.dc
        return self.waveform.value(time_s)

    def contribute(self, ctx: StampContext) -> None:
        current = ctx.source_scale * self.level(ctx.time_s)
        ctx.add_current(self.p, current)
        ctx.add_current(self.n, -current)


@dataclass
class FET(Element):
    """Three-terminal FET wrapping any :class:`repro.devices.FETModel`.

    The device model is source-referenced and n-type-signed; p-type
    devices are expressed by wrapping the model in
    :class:`repro.devices.PType` before building the element.  Gate
    current is zero (insulated gate); gate capacitance, when needed, is
    modelled with explicit Capacitor elements.

    ``delta_v`` is an optional override of the device's own
    finite-difference step; the default ``None`` lets the model choose
    (and analytic models — spline surrogates — ignore it entirely).
    """

    name: str
    drain: str
    gate: str
    source: str
    device: FETModel
    delta_v: float | None = None

    def __post_init__(self) -> None:
        self.nodes = (self.drain, self.gate, self.source)

    def contribute(self, ctx: StampContext) -> None:
        vd = ctx.voltage(self.drain)
        vg = ctx.voltage(self.gate)
        vs = ctx.voltage(self.source)
        current, gm, gds = self.device.linearize_point(
            vg - vs, vd - vs, self.delta_v
        )
        current, gm, gds = float(current), float(gm), float(gds)

        ctx.add_current(self.drain, current)
        ctx.add_current(self.source, -current)
        i_d, i_g, i_s = (
            ctx.index(self.drain),
            ctx.index(self.gate),
            ctx.index(self.source),
        )
        # dI/dVd = gds ; dI/dVg = gm ; dI/dVs = -(gm + gds)
        ctx.add_jacobian(self.drain, i_d, gds)
        ctx.add_jacobian(self.drain, i_g, gm)
        ctx.add_jacobian(self.drain, i_s, -(gm + gds))
        ctx.add_jacobian(self.source, i_d, -gds)
        ctx.add_jacobian(self.source, i_g, -gm)
        ctx.add_jacobian(self.source, i_s, gm + gds)

"""Netlist container: named nodes, elements, and the unknown-vector layout.

A :class:`Circuit` collects elements (builder-style ``add_*`` methods),
assigns every non-ground node an index in the unknown vector and every
voltage source a branch-current index after the nodes.  Analyses
(:mod:`repro.circuit.dc`, :mod:`repro.circuit.transient`) consume the
assembled system through :meth:`Circuit.build_system`.

:meth:`MNASystem.evaluate` runs on the compiled stamp plan of
:mod:`repro.circuit.assembly` (constant linear matrix assembled once,
batched FET linearization, ``np.add.at`` scatter; above
:data:`~repro.circuit.assembly.SPARSE_THRESHOLD` unknowns, CSR
Jacobians on one canonical sparsity pattern whose symbolic LU ordering
is computed once and shared by every Newton refactorization — scalar
solves and the batched sweep engines alike).  The original
element-walking evaluator is retained as :meth:`MNASystem.evaluate_dense`
— the reference implementation the equivalence tests compare against,
and the fallback for circuits containing element types the plan cannot
compile.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.assembly import StampPlan, UnsupportedElement
from repro.circuit.elements import (
    FET,
    Capacitor,
    CurrentSource,
    Element,
    GROUND_NAMES,
    Resistor,
    StampContext,
    VoltageSource,
)
from repro.devices.base import FETModel

__all__ = ["Circuit", "CircuitError"]


class CircuitError(RuntimeError):
    """Raised for malformed netlists or failed analyses."""


class Circuit:
    """A flat netlist with named nodes (ground: '0' / 'gnd')."""

    def __init__(self, title: str = ""):
        self.title = title
        self.elements: list[Element] = []
        self._names: set[str] = set()
        self._node_order: list[str] = []
        self._node_index: dict[str, int] = {}
        self._n_branches = 0

    # -- construction -----------------------------------------------------------
    def add(self, element: Element) -> Element:
        if element.name in self._names:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        for node in element.nodes:
            self._register_node(node)
        if isinstance(element, VoltageSource):
            element.branch_index = -1  # assigned in build_system
            self._n_branches += 1
        self.elements.append(element)
        return element

    def add_resistor(self, name: str, p: str, n: str, resistance_ohm: float) -> Resistor:
        return self.add(Resistor(name, p, n, resistance_ohm))

    def add_capacitor(self, name: str, p: str, n: str, capacitance_f: float) -> Capacitor:
        return self.add(Capacitor(name, p, n, capacitance_f))

    def add_voltage_source(self, name: str, p: str, n: str, waveform) -> VoltageSource:
        return self.add(VoltageSource(name, p, n, waveform))

    def add_current_source(self, name: str, p: str, n: str, waveform) -> CurrentSource:
        return self.add(CurrentSource(name, p, n, waveform))

    def add_fet(
        self, name: str, drain: str, gate: str, source: str, device: FETModel
    ) -> FET:
        return self.add(FET(name, drain, gate, source, device))

    def _register_node(self, node: str) -> None:
        if node in GROUND_NAMES or node in self._node_index:
            return
        self._node_index[node] = len(self._node_order)
        self._node_order.append(node)

    # -- system layout ------------------------------------------------------------
    @property
    def node_names(self) -> list[str]:
        return list(self._node_order)

    @property
    def size(self) -> int:
        """Total number of unknowns (node voltages + source branch currents)."""
        return len(self._node_order) + self._n_branches

    def node_index(self, node: str) -> int | None:
        """Unknown-vector index of a node, or None for ground."""
        if node in GROUND_NAMES:
            return None
        try:
            return self._node_index[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def build_system(self) -> "MNASystem":
        if not self.elements:
            raise CircuitError("empty circuit")
        if not self._node_order:
            raise CircuitError("circuit has no non-ground nodes")
        branch_base = len(self._node_order)
        offset = 0
        for element in self.elements:
            if isinstance(element, VoltageSource):
                element.branch_index = branch_base + offset
                offset += 1
        return MNASystem(self)


class MNASystem:
    """Assembled residual/Jacobian evaluator for a circuit.

    Evaluation runs through a :class:`~repro.circuit.assembly.StampPlan`
    compiled at construction; circuits containing element types the plan
    does not know fall back to the reference evaluator.  In the compiled
    dense mode, :meth:`evaluate` returns views of buffers reused by the
    next call — copy them if results must outlive the next evaluation.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.size = circuit.size
        self.n_nodes = len(circuit.node_names)
        try:
            self._plan: StampPlan | None = StampPlan(self)
        except UnsupportedElement:
            self._plan = None
        if self._plan is not None:
            # Shadow the dispatching method with the plan's bound evaluator:
            # one less Python frame on the hottest call in the package.
            self.evaluate = self._plan.evaluate

    def node_index(self, node: str) -> int | None:
        return self.circuit.node_index(node)

    def evaluate(self, x: np.ndarray, **kwargs) -> tuple[np.ndarray, np.ndarray]:
        """Residual F(x) and Jacobian dF/dx at the iterate ``x``.

        Accepts the keyword arguments of :meth:`evaluate_dense`.  On
        instances whose circuit compiled, ``__init__`` rebinds this name
        to :meth:`StampPlan.evaluate` (same signature), whose Jacobian is
        a dense ndarray for small systems and, at or above
        :data:`~repro.circuit.assembly.SPARSE_THRESHOLD` unknowns, a
        ``scipy.sparse`` CSR matrix on the plan's canonical sparsity
        pattern (fixed ``indices``/``indptr``, fresh ``data``) so
        factorizations can reuse the plan's cached symbolic analysis;
        this body only runs for circuits the plan cannot compile.
        """
        return self.evaluate_dense(x, **kwargs)

    def evaluate_dense(
        self,
        x: np.ndarray,
        time_s: float | None = None,
        dt_s: float | None = None,
        previous_x: np.ndarray | None = None,
        integrator: str = "trapezoidal",
        state: dict | None = None,
        source_scale: float = 1.0,
        gmin: float = 0.0,
        gmin_ref: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Reference element-walking evaluator (always fresh dense arrays).

        ``gmin``/``gmin_ref`` stamp the same node shunt (optionally
        anchored at a reference vector for pseudo-transient
        continuation) as the compiled plan.
        """
        residual = np.zeros(self.size)
        jacobian = np.zeros((self.size, self.size))
        ctx = StampContext(
            system=self,
            x=x,
            residual=residual,
            jacobian=jacobian,
            time_s=time_s,
            dt_s=dt_s,
            previous_x=previous_x if previous_x is not None else x,
            integrator=integrator,
            state=state if state is not None else {},
            source_scale=source_scale,
            gmin=gmin,
        )
        for element in self.circuit.elements:
            element.contribute(ctx)
        if gmin > 0.0:
            for i in range(self.n_nodes):
                anchor = 0.0 if gmin_ref is None else gmin_ref[i]
                residual[i] += gmin * (x[i] - anchor)
                jacobian[i, i] += gmin
        return residual, jacobian

    def update_capacitor_state(
        self,
        x: np.ndarray,
        previous_x: np.ndarray,
        dt_s: float,
        integrator: str,
        state: dict,
    ) -> None:
        """Refresh capacitor history currents at an accepted solution."""
        if self._plan is not None:
            self._plan.update_capacitor_state(x, previous_x, dt_s, integrator, state)
            return
        ctx = StampContext(
            system=self,
            x=x,
            residual=None,
            jacobian=None,
            dt_s=dt_s,
            previous_x=previous_x,
            integrator=integrator,
            state=state,
        )
        for element in self.circuit.elements:
            if isinstance(element, Capacitor):
                state[element.name] = element.update_state(ctx)

    def voltage_of(self, x: np.ndarray, node: str) -> float:
        idx = self.node_index(node)
        return 0.0 if idx is None else float(x[idx])

"""Netlist container: named nodes, elements, and the unknown-vector layout.

A :class:`Circuit` collects elements (builder-style ``add_*`` methods),
assigns every non-ground node an index in the unknown vector and every
voltage source a branch-current index after the nodes.  Analyses
(:mod:`repro.circuit.dc`, :mod:`repro.circuit.transient`) consume the
assembled system through :meth:`Circuit.build_system`.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.elements import (
    FET,
    Capacitor,
    CurrentSource,
    Element,
    GROUND_NAMES,
    Resistor,
    StampContext,
    VoltageSource,
)
from repro.devices.base import FETModel

__all__ = ["Circuit", "CircuitError"]


class CircuitError(RuntimeError):
    """Raised for malformed netlists or failed analyses."""


class Circuit:
    """A flat netlist with named nodes (ground: '0' / 'gnd')."""

    def __init__(self, title: str = ""):
        self.title = title
        self.elements: list[Element] = []
        self._names: set[str] = set()
        self._node_order: list[str] = []
        self._node_index: dict[str, int] = {}
        self._n_branches = 0

    # -- construction -----------------------------------------------------------
    def add(self, element: Element) -> Element:
        if element.name in self._names:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        for node in element.nodes:
            self._register_node(node)
        if isinstance(element, VoltageSource):
            element.branch_index = -1  # assigned in build_system
            self._n_branches += 1
        self.elements.append(element)
        return element

    def add_resistor(self, name: str, p: str, n: str, resistance_ohm: float) -> Resistor:
        return self.add(Resistor(name, p, n, resistance_ohm))

    def add_capacitor(self, name: str, p: str, n: str, capacitance_f: float) -> Capacitor:
        return self.add(Capacitor(name, p, n, capacitance_f))

    def add_voltage_source(self, name: str, p: str, n: str, waveform) -> VoltageSource:
        return self.add(VoltageSource(name, p, n, waveform))

    def add_current_source(self, name: str, p: str, n: str, waveform) -> CurrentSource:
        return self.add(CurrentSource(name, p, n, waveform))

    def add_fet(
        self, name: str, drain: str, gate: str, source: str, device: FETModel
    ) -> FET:
        return self.add(FET(name, drain, gate, source, device))

    def _register_node(self, node: str) -> None:
        if node in GROUND_NAMES or node in self._node_index:
            return
        self._node_index[node] = len(self._node_order)
        self._node_order.append(node)

    # -- system layout ------------------------------------------------------------
    @property
    def node_names(self) -> list[str]:
        return list(self._node_order)

    @property
    def size(self) -> int:
        """Total number of unknowns (node voltages + source branch currents)."""
        return len(self._node_order) + self._n_branches

    def node_index(self, node: str) -> int | None:
        """Unknown-vector index of a node, or None for ground."""
        if node in GROUND_NAMES:
            return None
        try:
            return self._node_index[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def build_system(self) -> "MNASystem":
        if not self.elements:
            raise CircuitError("empty circuit")
        if not self._node_order:
            raise CircuitError("circuit has no non-ground nodes")
        branch_base = len(self._node_order)
        offset = 0
        for element in self.elements:
            if isinstance(element, VoltageSource):
                element.branch_index = branch_base + offset
                offset += 1
        return MNASystem(self)


class MNASystem:
    """Assembled residual/Jacobian evaluator for a circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.size = circuit.size
        self.n_nodes = len(circuit.node_names)

    def node_index(self, node: str) -> int | None:
        return self.circuit.node_index(node)

    def evaluate(
        self,
        x: np.ndarray,
        time_s: float | None = None,
        dt_s: float | None = None,
        previous_x: np.ndarray | None = None,
        integrator: str = "trapezoidal",
        state: dict | None = None,
        source_scale: float = 1.0,
        gmin: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual F(x) and Jacobian dF/dx at the iterate ``x``."""
        residual = np.zeros(self.size)
        jacobian = np.zeros((self.size, self.size))
        ctx = StampContext(
            system=self,
            x=x,
            residual=residual,
            jacobian=jacobian,
            time_s=time_s,
            dt_s=dt_s,
            previous_x=previous_x if previous_x is not None else x,
            integrator=integrator,
            state=state if state is not None else {},
            source_scale=source_scale,
            gmin=gmin,
        )
        for element in self.circuit.elements:
            element.contribute(ctx)
        if gmin > 0.0:
            for i in range(self.n_nodes):
                residual[i] += gmin * x[i]
                jacobian[i, i] += gmin
        return residual, jacobian

    def voltage_of(self, x: np.ndarray, node: str) -> float:
        idx = self.node_index(node)
        return 0.0 if idx is None else float(x[idx])

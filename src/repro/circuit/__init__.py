"""A small SPICE-class circuit simulator (MNA + Newton + transient).

Built from scratch as the substrate for the paper's Fig. 2 inverter
study: netlist construction (:class:`Circuit`), DC operating point and
swept DC with continuation, trapezoidal/backward-Euler transient, and
standard-cell builders for inverters and ring oscillators.

Cold-start DC robustness comes from the adaptive continuation
subsystem (:mod:`repro.circuit.continuation`): a logic-aware
structural seeder plus adaptive gmin stepping, adaptive source
ramping, and pseudo-transient continuation, with every Newton attempt
recorded in a :class:`ConvergenceReport` — deep FET chains and ring
oscillators solve with no hand-fed initial guess, and failures raise
:class:`ConvergenceError` carrying the full ladder history.

Assembly architecture (see :mod:`repro.circuit.assembly`): at
``build_system()`` time the netlist is compiled into a stamp plan that
splits elements into a *linear* group (R, C companion models, V/I
sources) — collapsed into one constant matrix per ``(dt, integrator)``
key — and a *nonlinear* FET group linearized per Newton iteration
through batched :meth:`repro.devices.base.FETModel.linearize` calls (one
per device-model instance) and scattered with precomputed index arrays.
Systems below :data:`~repro.circuit.assembly.SPARSE_THRESHOLD` (128)
unknowns reuse preallocated dense buffers; larger systems assemble
``scipy.sparse`` CSR Jacobians on one canonical sparsity pattern whose
symbolic LU ordering is analyzed once and reused by every numeric
refactorization.  The original
element-walking evaluator survives as ``MNASystem.evaluate_dense`` — the
reference the equivalence test suite holds the compiled path to (1e-12)
and the fallback for user-defined element types.

Many-instance work goes through the batched sweep engine
(:mod:`repro.circuit.sweep`): :class:`SweepPlan` chunks any
sweep-shaped computation over deterministic seed substreams (optionally
on a process pool); :class:`CircuitMonteCarlo` solves N
parameter-perturbed DC copies of one compiled circuit with stacked
Jacobians — dense ``(m, size, size)`` stacks through one batched
LAPACK Newton step, sparse plans as ``(m, nnz)`` CSR data stacks
factorized per instance against the plan's shared symbolic ordering —
with one batched ``linearize`` call per device group either way; and
:class:`CircuitTransientMC` extends
the same batched Newton through time-stepping — N instances marched in
lockstep over one shared ``(dt, integrator)`` grid, with per-instance
scalar fallback for instances that fail a step — the substrate for the
paper's variability/yield statistics and delay/energy distributions.
Waveforms are bitwise invariant to chunk size, instance order, and
serial vs. process-pool execution.

Small-signal AC (:mod:`repro.circuit.ac`) compiles onto the same
stamp plan: one linearization at the continuation-solved operating
point (analytic gm/gds through the device protocol), the capacitance
stamp as pattern-aligned data, and the frequency sweep as a stacked
complex solve — batched LAPACK dense, numeric-only complex
refactorization sparse.  :func:`ac_monte_carlo` pushes the sweep over
:class:`CircuitMonteCarlo` corners for variation-aware frequency
responses (:class:`BatchedACResult`).

Fault tolerance (:mod:`repro.circuit.resilience`): passing an
:class:`ExecutionPolicy` to any sweep routes chunks through a
supervisor — per-chunk timeouts, bounded retries with backoff, pool
reconstruction after worker crashes, serial in-process execution as
the last degradation rung, and optional chunk-granular checkpoints
for kill-and-resume.  Because chunk substreams are position-keyed,
a retried, degraded, or resumed chunk reproduces the pooled original
bitwise; every run yields a :class:`RunReport` (per-chunk status,
attempts, failure taxonomy), and irrecoverable runs raise
:class:`SweepExecutionError` carrying the report plus salvaged
partial results.  A deterministic :class:`FaultPlan` injects worker
crashes, hangs, raises, and corrupt payloads at chosen chunks so the
recovery ladder itself is under test.
"""

from repro.circuit.ac import (
    ACPlan,
    ACResult,
    BatchedACResult,
    ac_analysis,
    ac_monte_carlo,
)
from repro.circuit.continuation import (
    ConvergenceError,
    ConvergenceReport,
    solve_dc_robust,
    structural_seed,
)
from repro.circuit.cells import (
    InverterCell,
    build_inverter,
    build_ring_oscillator,
    inverter_vtc,
    ring_oscillator_frequency,
)
from repro.circuit.dc import OperatingPointResult, SweepResult, dc_sweep, operating_point
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.resilience import (
    CheckpointStore,
    ExecutionPolicy,
    FaultPlan,
    FaultSpec,
    RunReport,
    SweepExecutionError,
)
from repro.circuit.sweep import (
    CircuitMonteCarlo,
    CircuitTransientMC,
    FETVariation,
    MonteCarloResult,
    ScaledShiftedFET,
    SweepPlan,
    SweepStatistics,
    TransientMCResult,
    perturbed_circuit,
)
from repro.circuit.transient import TransientResult, transient
from repro.circuit.waveforms import DC, PiecewiseLinear, Pulse, Sine

__all__ = [
    "ACPlan",
    "ACResult",
    "BatchedACResult",
    "Circuit",
    "CircuitError",
    "CheckpointStore",
    "CircuitMonteCarlo",
    "CircuitTransientMC",
    "ConvergenceError",
    "ConvergenceReport",
    "DC",
    "ExecutionPolicy",
    "FaultPlan",
    "FaultSpec",
    "FETVariation",
    "InverterCell",
    "MonteCarloResult",
    "OperatingPointResult",
    "PiecewiseLinear",
    "Pulse",
    "RunReport",
    "ScaledShiftedFET",
    "Sine",
    "SweepExecutionError",
    "SweepPlan",
    "SweepResult",
    "SweepStatistics",
    "TransientMCResult",
    "TransientResult",
    "ac_analysis",
    "ac_monte_carlo",
    "build_inverter",
    "build_ring_oscillator",
    "dc_sweep",
    "inverter_vtc",
    "operating_point",
    "perturbed_circuit",
    "ring_oscillator_frequency",
    "solve_dc_robust",
    "structural_seed",
    "transient",
]

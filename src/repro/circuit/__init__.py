"""A small SPICE-class circuit simulator (MNA + Newton + transient).

Built from scratch as the substrate for the paper's Fig. 2 inverter
study: netlist construction (:class:`Circuit`), DC operating point and
swept DC with continuation, trapezoidal/backward-Euler transient, and
standard-cell builders for inverters and ring oscillators.
"""

from repro.circuit.ac import ACResult, ac_analysis
from repro.circuit.cells import (
    InverterCell,
    build_inverter,
    build_ring_oscillator,
    inverter_vtc,
    ring_oscillator_frequency,
)
from repro.circuit.dc import OperatingPointResult, SweepResult, dc_sweep, operating_point
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.transient import TransientResult, transient
from repro.circuit.waveforms import DC, PiecewiseLinear, Pulse, Sine

__all__ = [
    "ACResult",
    "Circuit",
    "CircuitError",
    "DC",
    "InverterCell",
    "OperatingPointResult",
    "PiecewiseLinear",
    "Pulse",
    "Sine",
    "SweepResult",
    "TransientResult",
    "ac_analysis",
    "build_inverter",
    "build_ring_oscillator",
    "dc_sweep",
    "inverter_vtc",
    "operating_point",
    "ring_oscillator_frequency",
    "transient",
]

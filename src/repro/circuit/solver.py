"""Damped Newton solver for MNA systems.

The solver attacks F(x) = 0 with Newton iterations and a backtracking
line search on the residual norm.  Convergence is a single
relative+absolute test on the max-norm residual — the same criterion at
the main exit, on step stall and at iteration exhaustion, so
"converged" means one thing everywhere.

Cold-start robustness lives in :mod:`repro.circuit.continuation`:
:func:`solve_dc` delegates to its adaptive ladder (structural seeding,
adaptive gmin stepping, adaptive source ramping, pseudo-transient
continuation) and raises a diagnostics-carrying
:class:`~repro.circuit.continuation.ConvergenceError` when the ladder
is exhausted.

Linear algebra adapts to what the compiled stamp plan hands back: small
systems solve dense with an in-place diagonal regularization (no
per-iteration ``np.eye`` allocation), large systems arrive as
``scipy.sparse`` CSR matrices on the plan's canonical pattern and
refactorize numerically against the plan's one-time symbolic ordering
(:meth:`~repro.circuit.assembly.StampPlan.sparse_newton_step`).  Circuits
with no nonlinear devices skip refactorization entirely — the constant
linear matrix is LU-factorized once per ``(dt, integrator)`` key by the
stamp plan and every Newton step reuses the cached factors.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.linalg.lapack import dgesv
from scipy.sparse.linalg import splu

from repro.circuit.assembly import DIAG_REGULARIZATION as _DIAG_REGULARIZATION
from repro.circuit.netlist import MNASystem

__all__ = ["newton_solve", "solve_dc", "operating_point"]

_MAX_ITERATIONS = 120
_RESIDUAL_ATOL = 1e-10
_RESIDUAL_RTOL = 1e-9
_STEP_TOL = 1e-10
# Damping candidates evaluated per batched line-search call once the
# full step is rejected (total trial budget stays at 30, as before).
_TRIAL_BATCH = 8
_MAX_TRIALS = 30


def _newton_step(jacobian, residual, reg_identity, sparse_step=None) -> np.ndarray | None:
    """Solve J step = -residual with a tiny diagonal regularization.

    Dense Jacobians get the regularization added to their diagonal in
    place — safe because the evaluation buffer is fully reassembled by
    the next ``evaluate`` call — avoiding the per-iteration ``np.eye``
    allocation of the original implementation.  Sparse Jacobians from a
    compiled plan route through ``sparse_step``
    (:meth:`~repro.circuit.assembly.StampPlan.sparse_newton_step`), so
    the symbolic ordering is computed once and only the numeric
    factorization repeats per iteration; plan-less sparse Jacobians
    fall back to a full per-call splu.  Returns None on a singular
    matrix.
    """
    if sparse.issparse(jacobian):
        if sparse_step is not None:
            return sparse_step(jacobian, residual)
        try:
            return splu((jacobian + reg_identity).tocsc()).solve(-residual)
        except RuntimeError:
            return None
    diagonal = np.einsum("ii->i", jacobian)
    diagonal += _DIAG_REGULARIZATION
    # Same LAPACK dgesv as np.linalg.solve, minus the wrapper overhead;
    # -residual is a fresh temporary, so LAPACK may solve into it.
    _, _, step, info = dgesv(jacobian, -residual, overwrite_b=True)
    return step if info == 0 else None


def _line_search(
    system, plan_many, x, step, norm, tolerance, source_scale, gmin, eval_kwargs
):
    """First acceptable damped trial along ``step``; None if there is none.

    Trial 1 is the full step — evaluated alone because it is accepted
    in the vast majority of iterations.  Once it is rejected, compiled
    dense plans evaluate the rest of the damping ladder through
    :meth:`~repro.circuit.assembly.StampPlan.evaluate_many` in batches
    of ``_TRIAL_BATCH``: one batched device ``linearize`` per call
    instead of one per trial, which is what makes backtracking cheap
    for expensive (physical) device models.  Acceptance order and
    criteria are identical to the sequential ladder.
    """
    x_trial = x + step
    residual_trial, jacobian_trial = system.evaluate(
        x_trial, source_scale=source_scale, gmin=gmin, **eval_kwargs
    )
    norm_trial = float(np.max(np.abs(residual_trial)))
    if norm_trial < norm or norm_trial <= tolerance:
        return x_trial, residual_trial, jacobian_trial, norm_trial, 1.0

    if plan_many is None:
        damping = 1.0
        for _ in range(_MAX_TRIALS - 1):
            damping *= 0.5
            x_trial = x + damping * step
            residual_trial, jacobian_trial = system.evaluate(
                x_trial, source_scale=source_scale, gmin=gmin, **eval_kwargs
            )
            norm_trial = float(np.max(np.abs(residual_trial)))
            if norm_trial < norm or norm_trial <= tolerance:
                return x_trial, residual_trial, jacobian_trial, norm_trial, damping
        return None

    dampings = 0.5 ** np.arange(1, _MAX_TRIALS)
    for start in range(0, dampings.size, _TRIAL_BATCH):
        batch = dampings[start : start + _TRIAL_BATCH]
        x_trials = x[None, :] + batch[:, None] * step[None, :]
        residuals, jacobians = plan_many(
            x_trials, source_scale=source_scale, gmin=gmin, **eval_kwargs
        )
        norms = np.max(np.abs(residuals), axis=1)
        hits = np.flatnonzero((norms < norm) | (norms <= tolerance))
        if hits.size:
            j = int(hits[0])
            return (
                x_trials[j],
                residuals[j],
                jacobians[j],
                float(norms[j]),
                float(batch[j]),
            )
    return None


def newton_solve(
    system: MNASystem,
    x0: np.ndarray,
    source_scale: float = 1.0,
    gmin: float = 0.0,
    report=None,
    stage: str = "newton",
    parameter: float | None = None,
    **eval_kwargs,
) -> tuple[np.ndarray, bool]:
    """Damped Newton from ``x0``; returns (solution, converged).

    Converged means ``norm <= _RESIDUAL_ATOL + _RESIDUAL_RTOL * norm0``
    with ``norm0`` the residual at ``x0`` — evaluated identically at
    every exit.  When ``report`` (a
    :class:`~repro.circuit.continuation.ConvergenceReport`) is given,
    the attempt is recorded under ``stage``/``parameter`` with its
    iteration count and final residual.
    """
    x = np.array(x0, dtype=float)
    residual, jacobian = system.evaluate(
        x, source_scale=source_scale, gmin=gmin, **eval_kwargs
    )
    norm = float(np.max(np.abs(residual)))
    tolerance = _RESIDUAL_ATOL + _RESIDUAL_RTOL * norm
    iterations = 0

    # Linear-only circuits reuse the plan's cached LU of the constant
    # matrix instead of refactorizing the identical Jacobian every step.
    plan = getattr(system, "_plan", None)
    linear_plan = plan if plan is not None and plan.linear_only and gmin == 0.0 else None
    # Dense compiled plans batch the backtracking ladder's bias points
    # into one device call per _TRIAL_BATCH trials (see _line_search).
    plan_many = (
        plan.evaluate_many if plan is not None and not plan.use_sparse else None
    )
    # Sparse compiled plans refactorize numerically against the plan's
    # one-time symbolic ordering instead of rebuilding a full splu
    # (symbolic + numeric) every iteration.
    sparse_step = (
        plan.sparse_newton_step if plan is not None and plan.use_sparse else None
    )
    dt_s = eval_kwargs.get("dt_s")
    integrator = eval_kwargs.get("integrator", "trapezoidal")

    reg_identity = (
        _DIAG_REGULARIZATION * sparse.identity(system.size, format="csr")
        if sparse.issparse(jacobian)
        else None
    )
    converged = norm <= tolerance
    while not converged and iterations < _MAX_ITERATIONS:
        if linear_plan is not None:
            step = linear_plan.linear_step(residual, dt_s, integrator)
        else:
            step = _newton_step(jacobian, residual, reg_identity, sparse_step)
        if step is None:
            break
        iterations += 1
        accepted = _line_search(
            system, plan_many, x, step, norm, tolerance, source_scale, gmin,
            eval_kwargs,
        )
        if accepted is None:
            break  # line search could not reduce the residual
        x, residual, jacobian, norm, damping = accepted
        converged = norm <= tolerance
        if float(np.max(np.abs(damping * step))) < _STEP_TOL:
            break  # stalled; the unified test above has the last word
    if report is not None:
        report.record(stage, parameter, iterations, norm, converged)
    return x, converged


def solve_dc(
    system: MNASystem, x0: np.ndarray | None = None, **eval_kwargs
) -> np.ndarray:
    """DC solution via the adaptive continuation ladder.

    Delegates to :func:`repro.circuit.continuation.solve_dc_robust`
    (structural seed -> Newton -> adaptive gmin -> adaptive source ramp
    -> pseudo-transient).  Raises
    :class:`~repro.circuit.continuation.ConvergenceError` — carrying the
    full :class:`~repro.circuit.continuation.ConvergenceReport` — when
    every strategy is exhausted.
    """
    from repro.circuit.continuation import ConvergenceError, solve_dc_robust

    x, report = solve_dc_robust(system, x0, **eval_kwargs)
    if not report.converged:
        raise ConvergenceError("DC solve failed: continuation ladder exhausted", report)
    return x


def operating_point(
    system: MNASystem, x0: np.ndarray | None = None, **eval_kwargs
) -> tuple[np.ndarray, np.ndarray | sparse.csr_matrix]:
    """Continuation-solved DC point and its detached small-signal G.

    The Jacobian the evaluator returns at the DC solution *is* the
    small-signal conductance matrix — the FET gm/gds stamps come from
    the device protocol's ``linearize`` (analytic for models that
    provide derivatives, central differences with the model-owned step
    otherwise), so no caller ever re-derives them by finite
    differences.  Dense compiled plans hand back a reused evaluation
    buffer, so the dense result is copied; sparse plans return the
    canonical-pattern CSR matrix, whose ``data`` vector is fresh per
    evaluation.  This is the one linearization the compiled AC path
    (:mod:`repro.circuit.ac`) performs per analysis.
    """
    x = solve_dc(system, x0, **eval_kwargs)
    _, jacobian = system.evaluate(x)
    if sparse.issparse(jacobian):
        return x, jacobian
    return x, np.array(jacobian)

"""Damped Newton solver with gmin and source stepping for MNA systems.

The solver attacks F(x) = 0 with Newton iterations, a backtracking line
search on the residual norm, and two SPICE-style homotopies when plain
Newton fails from a cold start:

* **gmin stepping** — add a conductance from every node to ground and
  relax it away geometrically (1e-3 S -> off);
* **source stepping** — ramp all independent sources from 0 to 100 %.

These make the DC operating point of strongly nonlinear FET circuits
(e.g. an inverter chain biased mid-transition) reliably solvable.

Linear algebra adapts to what the compiled stamp plan hands back: small
systems solve dense with an in-place diagonal regularization (no
per-iteration ``np.eye`` allocation), large systems arrive as
``scipy.sparse`` CSR matrices and go through a sparse LU.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.linalg.lapack import dgesv
from scipy.sparse.linalg import splu

from repro.circuit.netlist import CircuitError, MNASystem

__all__ = ["newton_solve", "solve_dc"]

_MAX_ITERATIONS = 120
_RESIDUAL_TOL = 1e-10
_STEP_TOL = 1e-10
_DIAG_REGULARIZATION = 1e-14


def _newton_step(jacobian, residual, reg_identity) -> np.ndarray | None:
    """Solve J step = -residual with a tiny diagonal regularization.

    Dense Jacobians get the regularization added to their diagonal in
    place — safe because the evaluation buffer is fully reassembled by
    the next ``evaluate`` call — avoiding the per-iteration ``np.eye``
    allocation of the original implementation.  Sparse Jacobians go
    through a sparse LU.  Returns None on a singular matrix.
    """
    if sparse.issparse(jacobian):
        try:
            return splu((jacobian + reg_identity).tocsc()).solve(-residual)
        except RuntimeError:
            return None
    diagonal = np.einsum("ii->i", jacobian)
    diagonal += _DIAG_REGULARIZATION
    # Same LAPACK dgesv as np.linalg.solve, minus the wrapper overhead;
    # -residual is a fresh temporary, so LAPACK may solve into it.
    _, _, step, info = dgesv(jacobian, -residual, overwrite_b=True)
    return step if info == 0 else None


def newton_solve(
    system: MNASystem,
    x0: np.ndarray,
    source_scale: float = 1.0,
    gmin: float = 0.0,
    **eval_kwargs,
) -> tuple[np.ndarray, bool]:
    """Damped Newton from ``x0``; returns (solution, converged)."""
    x = np.array(x0, dtype=float)
    residual, jacobian = system.evaluate(
        x, source_scale=source_scale, gmin=gmin, **eval_kwargs
    )
    norm = float(np.max(np.abs(residual)))
    reg_identity = (
        _DIAG_REGULARIZATION * sparse.identity(system.size, format="csr")
        if sparse.issparse(jacobian)
        else None
    )
    for _ in range(_MAX_ITERATIONS):
        if norm < _RESIDUAL_TOL:
            return x, True
        step = _newton_step(jacobian, residual, reg_identity)
        if step is None:
            return x, False
        # Backtracking line search on the residual norm.
        damping = 1.0
        for _ in range(30):
            x_trial = x + damping * step
            residual_trial, jacobian_trial = system.evaluate(
                x_trial, source_scale=source_scale, gmin=gmin, **eval_kwargs
            )
            norm_trial = float(np.max(np.abs(residual_trial)))
            if norm_trial < norm or norm_trial < _RESIDUAL_TOL:
                break
            damping *= 0.5
        else:
            return x, False
        step_size = float(np.max(np.abs(damping * step)))
        x, residual, jacobian, norm = x_trial, residual_trial, jacobian_trial, norm_trial
        if step_size < _STEP_TOL and norm < 1e-6:
            return x, True
    return x, norm < 1e-8


def solve_dc(
    system: MNASystem, x0: np.ndarray | None = None, **eval_kwargs
) -> np.ndarray:
    """DC solution with homotopy fallbacks; raises CircuitError on failure."""
    x0 = np.zeros(system.size) if x0 is None else np.array(x0, dtype=float)

    x, converged = newton_solve(system, x0, **eval_kwargs)
    if converged:
        return x

    # gmin stepping
    x_h = np.array(x0)
    schedule = [10.0 ** (-k) for k in range(3, 13)]
    ok = True
    for gmin in schedule:
        x_h, ok = newton_solve(system, x_h, gmin=gmin, **eval_kwargs)
        if not ok:
            break
    if ok:
        x_h, ok = newton_solve(system, x_h, gmin=0.0, **eval_kwargs)
        if ok:
            return x_h

    # source stepping
    x_h = np.zeros(system.size)
    ok = True
    for scale in np.linspace(0.1, 1.0, 10):
        x_h, ok = newton_solve(system, x_h, source_scale=float(scale), **eval_kwargs)
        if not ok:
            break
    if ok:
        return x_h

    raise CircuitError("DC solve failed: Newton, gmin and source stepping exhausted")

"""Transient analysis: fixed-step backward-Euler or trapezoidal integration.

Starts from the DC operating point at t = 0 (sources at their initial
waveform values) and marches the companion-model system forward.  The
trapezoidal rule (default) is second-order accurate — validated against
closed-form RC responses in the test suite — while backward Euler is
available for heavily damped startup transients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.elements import Capacitor, VoltageSource
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.solver import newton_solve, solve_dc

__all__ = ["TransientResult", "transient"]

_INTEGRATORS = ("trapezoidal", "backward-euler")


@dataclass(frozen=True)
class TransientResult:
    """Waveforms from a transient run."""

    time_s: np.ndarray
    voltages: dict[str, np.ndarray]
    source_currents: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        try:
            return self.voltages[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def source_current(self, name: str) -> np.ndarray:
        try:
            return self.source_currents[name]
        except KeyError:
            raise CircuitError(f"unknown voltage source {name!r}") from None


def transient(
    circuit: Circuit,
    t_stop_s: float,
    dt_s: float,
    integrator: str = "trapezoidal",
) -> TransientResult:
    """Integrate the circuit from its t=0 operating point to ``t_stop_s``."""
    if t_stop_s <= 0.0 or dt_s <= 0.0:
        raise CircuitError("t_stop and dt must be positive")
    if dt_s > t_stop_s:
        raise CircuitError(f"dt {dt_s} exceeds t_stop {t_stop_s}")
    if integrator not in _INTEGRATORS:
        raise CircuitError(f"unknown integrator {integrator!r}; use {_INTEGRATORS}")

    system = circuit.build_system()
    x = solve_dc(system, None, time_s=0.0)
    capacitors = [el for el in circuit.elements if isinstance(el, Capacitor)]
    sources = [el for el in circuit.elements if isinstance(el, VoltageSource)]

    times = [0.0]
    samples = [np.array(x)]
    state: dict[str, float] = {name.name: 0.0 for name in capacitors}

    n_steps = int(round(t_stop_s / dt_s))
    previous_x = np.array(x)
    for step in range(1, n_steps + 1):
        t = step * dt_s
        x_next, converged = newton_solve(
            system,
            previous_x,
            time_s=t,
            dt_s=dt_s,
            previous_x=previous_x,
            integrator=integrator,
            state=state,
        )
        if not converged:
            # Retry from a homotopy-free DC-style solve of this timestep.
            x_next, converged = newton_solve(
                system,
                np.zeros(system.size),
                time_s=t,
                dt_s=dt_s,
                previous_x=previous_x,
                integrator=integrator,
                state=state,
            )
        if not converged:
            raise CircuitError(f"transient Newton failed at t = {t:.3e} s")
        # Update trapezoidal history currents at the accepted solution.
        if integrator == "trapezoidal":
            from repro.circuit.elements import StampContext

            ctx = StampContext(
                system=system,
                x=x_next,
                residual=np.zeros(system.size),
                jacobian=np.zeros((system.size, system.size)),
                time_s=t,
                dt_s=dt_s,
                previous_x=previous_x,
                integrator=integrator,
                state=state,
            )
            for cap in capacitors:
                state[cap.name] = cap.update_state(ctx)
        times.append(t)
        samples.append(np.array(x_next))
        previous_x = x_next

    stacked = np.vstack(samples)
    voltages = {
        node: stacked[:, system.node_index(node)] for node in circuit.node_names
    }
    currents = {src.name: stacked[:, src.branch_index] for src in sources}
    return TransientResult(
        time_s=np.array(times), voltages=voltages, source_currents=currents
    )

"""Transient analysis: fixed-step backward-Euler or trapezoidal integration.

Starts from the DC operating point at t = 0 (sources at their initial
waveform values) and marches the companion-model system forward.  The
trapezoidal rule (default) is second-order accurate — validated against
closed-form RC responses in the test suite — while backward Euler is
available for heavily damped startup transients.

The scalar entry point :func:`transient` is composed from three
reusable pieces so the batched transient Monte Carlo engine
(:class:`repro.circuit.sweep.CircuitTransientMC`) can share them:

* :func:`validate_grid` — the one place the ``(t_stop, dt,
  integrator)`` contract is checked and the step count is derived;
* :func:`transient_samples` — the time-marching loop over raw solution
  vectors (per-step Newton with the continuation rescue), returning the
  ``(n_steps + 1, size)`` sample matrix;
* :func:`result_from_samples` — the mapping from a sample matrix to the
  named-waveform :class:`TransientResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.continuation import ConvergenceError, solve_dc_robust
from repro.circuit.elements import VoltageSource
from repro.circuit.netlist import Circuit, CircuitError, MNASystem
from repro.circuit.solver import newton_solve, solve_dc

__all__ = [
    "TransientResult",
    "transient",
    "transient_samples",
    "result_from_samples",
    "validate_grid",
]

_INTEGRATORS = ("trapezoidal", "backward-euler")


@dataclass(frozen=True)
class TransientResult:
    """Waveforms from a transient run."""

    time_s: np.ndarray
    voltages: dict[str, np.ndarray]
    source_currents: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        try:
            return self.voltages[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def source_current(self, name: str) -> np.ndarray:
        try:
            return self.source_currents[name]
        except KeyError:
            raise CircuitError(f"unknown voltage source {name!r}") from None


def validate_grid(t_stop_s: float, dt_s: float, integrator: str) -> int:
    """Check the time-grid contract; returns the step count.

    Shared by the scalar :func:`transient` and the batched
    :class:`repro.circuit.sweep.CircuitTransientMC`, so both reject the
    same inputs and march the identical grid.
    """
    if t_stop_s <= 0.0 or dt_s <= 0.0:
        raise CircuitError("t_stop and dt must be positive")
    if dt_s > t_stop_s:
        raise CircuitError(f"dt {dt_s} exceeds t_stop {t_stop_s}")
    if integrator not in _INTEGRATORS:
        raise CircuitError(f"unknown integrator {integrator!r}; use {_INTEGRATORS}")
    return int(round(t_stop_s / dt_s))


def transient_samples(
    system: MNASystem,
    t_stop_s: float,
    dt_s: float,
    integrator: str = "trapezoidal",
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """March the system from its t=0 operating point; returns raw samples.

    The ``(n_steps + 1, size)`` matrix stacks the DC solution at t=0 and
    every accepted time step.  Each step runs plain Newton from the
    previous solution; a failed step is rescued through the adaptive
    continuation ladder anchored at the last accepted solution, and a
    rescue failure raises :class:`ConvergenceError` with the full
    ladder history.
    """
    n_steps = validate_grid(t_stop_s, dt_s, integrator)
    x = solve_dc(system, x0, time_s=0.0)

    samples = np.empty((n_steps + 1, system.size))
    samples[0] = x
    state: dict[str, float] = {}

    previous_x = np.array(x)
    for step in range(1, n_steps + 1):
        t = step * dt_s
        x_next, converged = newton_solve(
            system,
            previous_x,
            time_s=t,
            dt_s=dt_s,
            previous_x=previous_x,
            integrator=integrator,
            state=state,
        )
        if not converged:
            # Rescue the timestep through the adaptive continuation
            # ladder, anchored at the last accepted solution (the
            # companion model rides along in the eval kwargs).  The old
            # silent retry-from-zeros could hand back a wrong-branch
            # solution with no trace; now a failure raises with the
            # full ladder history.
            x_next, rescue = solve_dc_robust(
                system,
                previous_x,
                time_s=t,
                dt_s=dt_s,
                previous_x=previous_x,
                integrator=integrator,
                state=state,
            )
            if not rescue.converged:
                raise ConvergenceError(
                    f"transient Newton failed at t = {t:.3e} s", rescue
                )
        # Update trapezoidal history currents at the accepted solution.
        if integrator == "trapezoidal":
            system.update_capacitor_state(x_next, previous_x, dt_s, integrator, state)
        samples[step] = x_next
        previous_x = x_next
    return samples


def result_from_samples(
    system: MNASystem, samples: np.ndarray, dt_s: float
) -> TransientResult:
    """Name the columns of a raw sample matrix as waveforms."""
    circuit = system.circuit
    times = dt_s * np.arange(samples.shape[0])
    voltages = {
        node: samples[:, system.node_index(node)] for node in circuit.node_names
    }
    currents = {
        el.name: samples[:, el.branch_index]
        for el in circuit.elements
        if isinstance(el, VoltageSource)
    }
    return TransientResult(
        time_s=times, voltages=voltages, source_currents=currents
    )


def transient(
    circuit: Circuit,
    t_stop_s: float,
    dt_s: float,
    integrator: str = "trapezoidal",
    x0: np.ndarray | None = None,
) -> TransientResult:
    """Integrate the circuit from its t=0 operating point to ``t_stop_s``.

    The initial DC solve cold-starts through the adaptive continuation
    ladder of :mod:`repro.circuit.continuation` (structural seeding,
    adaptive gmin/source stepping, pseudo-transient fallback), so
    ``x0`` is no longer needed for long FET chains; it remains as an
    optional override for callers that want to select a particular
    operating point of a multistable circuit.
    """
    system = circuit.build_system()
    samples = transient_samples(system, t_stop_s, dt_s, integrator, x0)
    return result_from_samples(system, samples, dt_s)

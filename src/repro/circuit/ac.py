"""Compiled small-signal AC analysis: linearize once, sweep frequencies batched.

Linearises the circuit at its continuation-solved DC operating point —
the real Jacobian returned by the compiled stamp plan *is* the
small-signal conductance matrix G, FET gm/gds stamps included via the
device protocol's ``linearize`` (analytic where the model provides
derivatives) — adds the capacitors' jwC terms and solves

    (G + j 2 pi f C) x = b

for the whole frequency grid at once with a unit excitation on the
chosen source.  This powers the RF analysis of Section II: a FET
without current saturation has gds ~ gm at its operating point, so its
voltage gain (and with it f_max) collapses.

The compiled path (:class:`ACPlan`) performs exactly one linearization
per analysis and builds the capacitance stamp once as pattern-aligned
data (:meth:`~repro.circuit.assembly.StampPlan.capacitance_stamp`).
The sweep itself is compiled too.  In the dense regime the pencil
``(G, C)`` is reduced once to generalized Schur (QZ) form
``G = Q S Zh``, ``C = Q T Zh`` with S, T upper triangular, so every
frequency costs one *triangular* backsubstitution — O(size^2) instead
of the per-frequency O(size^3) LU — vectorised across the whole grid
with the omega-affine split ``(S + w T) y = S@y + w (T@y)`` so the
cross-row updates run as stacked BLAS products.  Above
``SPARSE_THRESHOLD`` the sweep is a complex numeric-only
refactorization per frequency against the plan's cached symbolic
ordering (:meth:`~repro.circuit.assembly._SparseSchedule.factor`) —
G and C share one canonical pattern, so each system is an elementwise
``data`` combination.  The pre-compile per-frequency dense loop
survives verbatim as :func:`dense_frequency_loop` (reachable through
``ac_analysis(..., method="legacy")``): it is the reference the
equivalence suite and the AC benchmarks pin the compiled sweep
against.

:func:`ac_monte_carlo` pushes the sweep to process corners: batched
operating points from :class:`~repro.circuit.sweep.CircuitMonteCarlo`
feed one stacked linearization
(:meth:`~repro.circuit.sweep._BatchedNewtonEngine.small_signal_jacobians`),
each corner's grid solves as a ``(chunk, size, size)`` stacked complex
LAPACK solve (dense) or pattern refactorization (sparse), and every
corner's frequency response lands in a :class:`BatchedACResult` — the
variation-aware RF workload of ``experiments/rf_comparison.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse
from scipy.linalg import qz

from repro.circuit.elements import Capacitor, VoltageSource
from repro.circuit.netlist import Circuit, CircuitError, MNASystem
from repro.circuit.solver import operating_point, solve_dc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports nothing here)
    from repro.circuit.sweep import FETVariation

__all__ = [
    "ACPlan",
    "ACResult",
    "BatchedACResult",
    "ac_analysis",
    "ac_monte_carlo",
    "dense_frequency_loop",
]

# Frequencies per stacked complex solve in the dense batched-corner
# path: bounds the (chunk, size, size) complex working set without
# changing results — every frequency's solve is independent, so
# chunking is bitwise-neutral (asserted by the hypothesis invariance
# suite).
DEFAULT_FREQUENCY_CHUNK = 64

# Row-block size of the generalized-Schur backsubstitution: cross-block
# updates run as one stacked BLAS product per block instead of one
# vector op per row.  Purely a constant-factor knob — results do not
# depend on it.
SCHUR_BLOCK = 32


def _validate_frequencies(frequencies_hz) -> np.ndarray:
    """The boundary check of every AC entry point.

    Rejects empty, non-positive, non-finite and unsorted grids:
    :meth:`ACResult.unity_gain_frequency_hz` interpolates along an
    ascending axis, so a shuffled grid would silently fabricate
    crossings instead of failing loudly here.
    """
    frequencies = np.atleast_1d(np.asarray(frequencies_hz, dtype=float))
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise CircuitError("frequencies must be a non-empty 1-D grid")
    if np.any(frequencies <= 0.0) or not np.all(np.isfinite(frequencies)):
        raise CircuitError("frequencies must be positive and finite")
    if frequencies.size > 1 and np.any(np.diff(frequencies) <= 0.0):
        raise CircuitError(
            "frequencies must be strictly increasing "
            "(unity-gain extraction interpolates along an ascending grid)"
        )
    return frequencies


def _unity_gain_crossing(
    frequencies: np.ndarray, magnitude: np.ndarray
) -> float | None:
    """Log-log interpolated falling unity crossing of one |H| trace.

    Only genuine falling edges count (above at i-1, below at i, no
    wrap-around); returns None when the trace never crosses.  Shared by
    the scalar raise-on-missing accessor and the batched NaN-on-missing
    one, so both report the identical interpolated value.
    """
    above = magnitude >= 1.0
    falling = above[:-1] & ~above[1:]
    if not falling.any():
        return None
    idx = int(np.argmax(falling)) + 1
    f0, f1 = frequencies[idx - 1], frequencies[idx]
    m0, m1 = magnitude[idx - 1], magnitude[idx]
    t = (np.log10(m0)) / (np.log10(m0) - np.log10(m1))
    return float(10 ** (np.log10(f0) + t * (np.log10(f1) - np.log10(f0))))


@dataclass(frozen=True)
class ACResult:
    """Frequency response of every node to the unit AC excitation."""

    frequencies_hz: np.ndarray
    voltages: dict[str, np.ndarray]

    def transfer(self, node: str) -> np.ndarray:
        """Complex transfer function H(f) at a node."""
        try:
            return self.voltages[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def magnitude_db(self, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.clip(np.abs(self.transfer(node)), 1e-300, None))

    def phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.transfer(node)))

    def unity_gain_frequency_hz(self, node: str) -> float:
        """First frequency where |H| falls to 1 (interpolated on log f).

        Only genuine falling edges count: a sweep that *starts* below
        unity (e.g. a band-pass response) contributes no crossing at
        its first point, and a response that is still above unity at
        the last point does not wrap around to fabricate one.
        """
        magnitude = np.abs(self.transfer(node))
        crossing = _unity_gain_crossing(self.frequencies_hz, magnitude)
        if crossing is None:
            if not (magnitude >= 1.0).any():
                raise CircuitError("response never reaches unity in the swept range")
            raise CircuitError("response never crosses unity in the swept range")
        return crossing


# ---------------------------------------------------------------------------
# Sweep kernels: one operating point, a whole frequency grid.
# ---------------------------------------------------------------------------


def dense_frequency_loop(
    conductance: np.ndarray,
    capacitance: np.ndarray,
    rhs: np.ndarray,
    frequencies: np.ndarray,
) -> np.ndarray:
    """The pre-compile AC inner loop: one dense complex solve per frequency.

    Kept verbatim as the pinned reference implementation — the
    equivalence suite holds the compiled kernels to it at 1e-9, and the
    AC benchmarks measure the compiled sweep against it on an identical
    linearization.
    """
    samples = np.empty((len(frequencies), conductance.shape[0]), dtype=complex)
    for i, frequency in enumerate(frequencies):
        matrix = conductance + 1j * 2.0 * np.pi * frequency * capacitance
        samples[i] = np.linalg.solve(matrix, rhs)
    return samples


def _sweep_dense(
    conductance: np.ndarray,
    capacitance: np.ndarray,
    rhs: np.ndarray,
    frequencies: np.ndarray,
    chunk_size: int,
) -> np.ndarray:
    """Stacked complex solves: ``(chunk, size, size)`` batched LAPACK.

    The batched-corner kernel (:func:`ac_monte_carlo`): each corner has
    its own G, so there is nothing to pre-factor — instead each chunk
    assembles its matrices in one broadcast and solves them in one
    gufunc call (LAPACK ``zgesv`` per stack member), so the
    python-level cost is per chunk, not per frequency.  Chunking only
    bounds the complex working set — member solves are independent, so
    the samples are bitwise identical for every chunk size.
    """
    samples = np.empty((frequencies.size, conductance.shape[0]), dtype=complex)
    b = rhs.astype(complex)[None, :, None]
    for start in range(0, frequencies.size, chunk_size):
        omega = 2j * np.pi * frequencies[start : start + chunk_size]
        matrices = conductance + omega[:, None, None] * capacitance
        samples[start : start + omega.size] = np.linalg.solve(matrices, b)[..., 0]
    return samples


def _schur_reduce(
    conductance: np.ndarray, capacitance: np.ndarray, rhs: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One-time QZ reduction of the pencil (G, C) for repeated AC solves.

    ``G = Q S Zh`` and ``C = Q T Zh`` with S, T upper triangular, so
    ``(G + w C) x = b`` becomes the *triangular* system
    ``(S + w T) y = Qh b`` with ``x = Z y`` — O(size^2) per frequency
    against the dense loop's O(size^3), paid for by one O(size^3)
    reduction per operating point.  Returns ``(S, T, Z^T, Qh b)``.
    A singular C (nodes without capacitors) is fine: QZ operates on the
    pencil, not on C alone.
    """
    s_tri, t_tri, q, z = qz(conductance, capacitance, output="complex")
    return s_tri, t_tri, z.T, q.conj().T @ rhs.astype(complex)


def _sweep_schur(
    s_tri: np.ndarray,
    t_tri: np.ndarray,
    z_t: np.ndarray,
    rhs_q: np.ndarray,
    frequencies: np.ndarray,
) -> np.ndarray:
    """All-frequency triangular backsubstitution on the Schur pencil.

    Solves ``(S + w T) y = Qh b`` for every ``w = j 2 pi f`` at once,
    bottom-up in row blocks: the pencil is affine in ``w``, so the
    cross-block update ``(S + w T) @ y`` splits into ``S @ y`` and
    ``T @ y`` — two stacked BLAS products with ``w`` applied
    elementwise — and only the within-block recurrences run as
    per-row vector ops.  Working set is O(n_freq * size): no chunking
    needed, nothing for results to depend on.
    """
    omega = 2j * np.pi * frequencies
    n = s_tri.shape[0]
    y = np.empty((omega.size, n), dtype=complex)
    hi = n
    while hi > 0:
        lo = max(0, hi - SCHUR_BLOCK)
        if hi < n:
            tail = y[:, hi:]
            b_blk = rhs_q[lo:hi] - (
                tail @ s_tri[lo:hi, hi:].T
                + omega[:, None] * (tail @ t_tri[lo:hi, hi:].T)
            )
        else:
            b_blk = np.broadcast_to(rhs_q[lo:hi], (omega.size, hi - lo))
        for i in range(hi - 1, lo - 1, -1):
            partial = b_blk[:, i - lo]
            if i < hi - 1:
                solved = y[:, i + 1 : hi]
                partial = partial - (
                    solved @ s_tri[i, i + 1 : hi]
                    + omega * (solved @ t_tri[i, i + 1 : hi])
                )
            y[:, i] = partial / (s_tri[i, i] + omega * t_tri[i, i])
        hi = lo
    samples = y @ z_t
    if not np.all(np.isfinite(samples)):
        raise CircuitError("AC system is singular in the swept range")
    return samples


def _sweep_sparse(
    schedule,
    conductance_data: np.ndarray,
    capacitance_data: np.ndarray,
    rhs: np.ndarray,
    frequencies: np.ndarray,
) -> np.ndarray:
    """Complex numeric-only refactorization per frequency.

    G and C live on the plan's one canonical pattern, so each system
    is an elementwise ``data`` combination; the symbolic ordering is
    the schedule's cached one (computed once per plan), and each
    frequency pays only the numeric factorization — never a densify,
    never a re-analysis.
    """
    samples = np.empty((frequencies.size, schedule.size), dtype=complex)
    b = rhs.astype(complex)
    for i, frequency in enumerate(frequencies):
        data = conductance_data + (2j * np.pi * frequency) * capacitance_data
        solve = schedule.factor(data)
        if solve is None:
            raise CircuitError(f"AC system is singular at {frequency:g} Hz")
        samples[i] = solve(b)
    return samples


def _dense_capacitance(circuit: Circuit, system: MNASystem) -> np.ndarray:
    """Element-walk capacitance build — the legacy reference only.

    Compiled analyses use the pattern-aligned
    :meth:`~repro.circuit.assembly.StampPlan.capacitance_stamp`; this
    O(size^2) dense loop survives for the pinned ``method="legacy"``
    path and for circuits the stamp plan cannot compile.
    """
    size = system.size
    capacitance = np.zeros((size, size))
    for element in circuit.elements:
        if not isinstance(element, Capacitor):
            continue
        ip = system.node_index(element.p)
        in_ = system.node_index(element.n)
        if ip is not None:
            capacitance[ip, ip] += element.capacitance_f
        if in_ is not None:
            capacitance[in_, in_] += element.capacitance_f
        if ip is not None and in_ is not None:
            capacitance[ip, in_] -= element.capacitance_f
            capacitance[in_, ip] -= element.capacitance_f
    return capacitance


# ---------------------------------------------------------------------------
# The compiled plan: one linearization, many sweeps.
# ---------------------------------------------------------------------------


class ACPlan:
    """Compiled AC analysis of one circuit: linearize once, sweep many.

    Construction solves DC through the continuation ladder and captures
    the operating point's conductance matrix G straight from the
    compiled stamp plan's Jacobian
    (:func:`~repro.circuit.solver.operating_point` — FET stamps via the
    device protocol's ``linearize``, analytic gm/gds where the model
    provides them, no finite differencing in this module) plus the
    capacitance stamp C built once as pattern-aligned data.
    :meth:`sweep` is then reusable: every call solves
    ``(G + j 2 pi f C) x = b`` for a whole grid.  Below
    ``SPARSE_THRESHOLD`` the pencil (G, C) is QZ-reduced once (lazily,
    cached) and each sweep runs the all-frequency triangular
    backsubstitution (:func:`_sweep_schur`) — O(size^2) per frequency;
    above it, per-frequency complex refactorization against the plan's
    cached symbolic ordering.

    Circuits the stamp plan cannot compile fall back to the densified
    evaluator Jacobian and the element-walk capacitance build, swept
    through the same Schur path.
    """

    def __init__(self, circuit: Circuit, source_name: str):
        self.circuit = circuit
        self.system = circuit.build_system()
        self.source = _find_source(circuit, source_name)
        self.size = self.system.size
        plan = self.system._plan
        x_dc, conductance = operating_point(self.system)
        self.x_dc = x_dc
        self._schedule = plan.sparse_schedule if plan is not None else None
        if sparse.issparse(conductance):
            # Canonical-pattern data vectors: G + jwC is elementwise.
            self._conductance_data: np.ndarray | None = np.asarray(conductance.data)
            self._conductance: np.ndarray | None = None
            self._capacitance: np.ndarray | None = None
            self._capacitance_data: np.ndarray | None = plan.capacitance_stamp()
        else:
            self._conductance = np.asarray(conductance)
            self._conductance_data = None
            self._capacitance_data = None
            self._capacitance = (
                plan.capacitance_stamp()
                if plan is not None
                else _dense_capacitance(circuit, self.system)
            )
        rhs = np.zeros(self.size)
        rhs[self.source.branch_index] = 1.0
        self.rhs = rhs
        self._schur: tuple[np.ndarray, ...] | None = None
        self._node_columns = {
            node: self.system.node_index(node) for node in circuit.node_names
        }

    @property
    def use_sparse(self) -> bool:
        """Whether sweeps refactorize on the canonical sparse pattern."""
        return self._conductance_data is not None

    def sweep(self, frequencies_hz) -> ACResult:
        """Swept response to the unit excitation on the plan's source."""
        frequencies = _validate_frequencies(frequencies_hz)
        samples = self.sweep_samples(frequencies)
        voltages = {
            node: samples[:, column]
            for node, column in self._node_columns.items()
        }
        return ACResult(frequencies_hz=frequencies, voltages=voltages)

    def sweep_samples(self, frequencies: np.ndarray) -> np.ndarray:
        """Raw ``(n_freq, size)`` complex solution stack (validated grid)."""
        if self.use_sparse:
            return _sweep_sparse(
                self._schedule,
                self._conductance_data,
                self._capacitance_data,
                self.rhs,
                frequencies,
            )
        if self._schur is None:
            self._schur = _schur_reduce(
                self._conductance, self._capacitance, self.rhs
            )
        return _sweep_schur(*self._schur, frequencies)

    def dense_system(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Densified ``(G, C, rhs)`` of this plan's operating point.

        The inputs of :func:`dense_frequency_loop` — benchmarks time the
        legacy per-frequency loop against :meth:`sweep` on this
        *identical* linearization, so the measured speedup is pure
        solve-path, not operating-point noise.
        """
        if self.use_sparse:
            return (
                self._schedule.matrix(self._conductance_data).toarray(),
                self._schedule.matrix(self._capacitance_data).toarray(),
                self.rhs.copy(),
            )
        return self._conductance.copy(), self._capacitance.copy(), self.rhs.copy()


def ac_analysis(
    circuit: Circuit,
    source_name: str,
    frequencies_hz,
    method: str = "compiled",
) -> ACResult:
    """Swept small-signal analysis with a unit AC drive on ``source_name``.

    ``method="compiled"`` (the default) routes through :class:`ACPlan`:
    one stamp-plan linearization, pattern-aligned capacitance data and
    a stacked complex solve.  ``method="legacy"`` runs the original
    per-frequency dense loop (densified Jacobian, element-walk
    capacitance) — the pinned reference the equivalence suite holds the
    compiled path to at 1e-9.
    """
    frequencies = _validate_frequencies(frequencies_hz)
    if method == "compiled":
        return ACPlan(circuit, source_name).sweep(frequencies)
    if method != "legacy":
        raise CircuitError(f"unknown AC method {method!r}")

    system = circuit.build_system()
    x_dc = solve_dc(system)
    _, conductance = system.evaluate(x_dc)
    # Detach from the evaluator's reused buffer; densify CSR Jacobians of
    # large systems (the per-frequency solves below are dense-complex).
    conductance = (
        conductance.toarray()
        if hasattr(conductance, "toarray")
        else np.array(conductance)
    )
    capacitance = _dense_capacitance(circuit, system)
    rhs = np.zeros(system.size)
    rhs[_find_source(circuit, source_name).branch_index] = 1.0
    samples = dense_frequency_loop(conductance, capacitance, rhs, frequencies)
    voltages = {
        node: samples[:, system.node_index(node)] for node in circuit.node_names
    }
    return ACResult(frequencies_hz=frequencies, voltages=voltages)


# ---------------------------------------------------------------------------
# Batched AC over Monte-Carlo operating points.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchedACResult:
    """Stacked frequency responses over Monte-Carlo process corners.

    ``samples[i]`` is corner ``i``'s ``(n_freq, size)`` complex response
    to the unit excitation; corners whose DC solve failed carry NaN
    rows (``converged[i]`` False) and drop out of the distribution
    helpers instead of poisoning them.
    """

    frequencies_hz: np.ndarray
    samples: np.ndarray
    converged: np.ndarray
    node_index: dict[str, int]

    @property
    def n_instances(self) -> int:
        return self.samples.shape[0]

    @property
    def n_converged(self) -> int:
        return int(np.count_nonzero(self.converged))

    def transfer(self, node: str) -> np.ndarray:
        """Per-corner complex transfer functions, shape ``(m, n_freq)``."""
        try:
            column = self.node_index[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None
        return self.samples[:, :, column]

    def instance(self, i: int) -> ACResult:
        """One corner's response as a scalar :class:`ACResult`."""
        voltages = {
            node: self.samples[i, :, column]
            for node, column in self.node_index.items()
        }
        return ACResult(frequencies_hz=self.frequencies_hz, voltages=voltages)

    def low_frequency_gain(self, node: str) -> np.ndarray:
        """|H| at the first swept frequency per corner (NaN if unconverged)."""
        return np.abs(self.transfer(node)[:, 0])

    def unity_gain_frequencies_hz(self, node: str) -> np.ndarray:
        """Per-corner falling-edge unity crossing; NaN where there is none.

        Unlike the scalar accessor this does not raise: a corner whose
        response never crosses unity (the paper's non-saturating
        devices) or whose DC solve failed reports NaN, so distribution
        consumers can summarise the crossings that exist.
        """
        magnitudes = np.abs(self.transfer(node))
        out = np.full(self.n_instances, np.nan)
        for i in range(self.n_instances):
            if not self.converged[i]:
                continue
            crossing = _unity_gain_crossing(self.frequencies_hz, magnitudes[i])
            if crossing is not None:
                out[i] = crossing
        return out


def ac_monte_carlo(
    circuit: Circuit,
    source_name: str,
    frequencies_hz,
    variation: "FETVariation",
    *,
    chunk_size: int | None = None,
) -> BatchedACResult:
    """Batched AC over process corners: variation-aware frequency response.

    Solves every corner's DC operating point through the batched Newton
    engine (:class:`~repro.circuit.sweep.CircuitMonteCarlo`),
    linearizes all corners in one stacked evaluation
    (:meth:`~repro.circuit.sweep._BatchedNewtonEngine.small_signal_jacobians`)
    and sweeps each corner's ``(G_i + j w C) x = b`` through the same
    compiled kernels as :class:`ACPlan` — the capacitance stamp is
    shared across corners because process variation perturbs the FETs
    only.  Results are bitwise invariant to frequency chunking and to
    corner (instance) order; unconverged corners yield NaN samples.
    """
    from repro.circuit.sweep import CircuitMonteCarlo

    frequencies = _validate_frequencies(frequencies_hz)
    chunk = DEFAULT_FREQUENCY_CHUNK if chunk_size is None else int(chunk_size)
    if chunk < 1:
        raise CircuitError(f"chunk_size must be >= 1, got {chunk_size}")
    engine = CircuitMonteCarlo(circuit)
    source = _find_source(circuit, source_name)
    corners = engine.run(variation)
    jacobians = engine.small_signal_jacobians(corners.x, variation)
    plan = engine.plan
    capacitance = plan.capacitance_stamp()
    rhs = np.zeros(plan.size)
    rhs[source.branch_index] = 1.0

    samples = np.full(
        (corners.n_instances, frequencies.size, plan.size), np.nan, dtype=complex
    )
    for i in range(corners.n_instances):
        if not corners.converged[i]:
            continue
        if plan.use_sparse:
            samples[i] = _sweep_sparse(
                plan.sparse_schedule, jacobians[i], capacitance, rhs, frequencies
            )
        else:
            samples[i] = _sweep_dense(
                jacobians[i], capacitance, rhs, frequencies, chunk
            )
    node_index = {
        node: engine.system.node_index(node) for node in circuit.node_names
    }
    return BatchedACResult(
        frequencies_hz=frequencies,
        samples=samples,
        converged=corners.converged.copy(),
        node_index=node_index,
    )


def _find_source(circuit: Circuit, name: str) -> VoltageSource:
    for element in circuit.elements:
        if isinstance(element, VoltageSource) and element.name == name:
            return element
    raise CircuitError(f"no voltage source named {name!r}")

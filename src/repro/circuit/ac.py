"""Small-signal AC analysis: complex MNA around a DC operating point.

Linearises the circuit at its DC solution — the real Jacobian returned
by the MNA evaluator *is* the small-signal conductance matrix, including
the FETs' gm/gds stamps — adds the capacitors' jwC terms, and solves

    (G + j w C) x = b

per frequency with a unit excitation on the chosen source.  This powers
the RF analysis of Section II: a FET without current saturation has
gds ~ gm at its operating point, so its voltage gain (and with it f_max)
collapses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.elements import Capacitor, VoltageSource
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.solver import solve_dc

__all__ = ["ACResult", "ac_analysis"]


@dataclass(frozen=True)
class ACResult:
    """Frequency response of every node to the unit AC excitation."""

    frequencies_hz: np.ndarray
    voltages: dict[str, np.ndarray]

    def transfer(self, node: str) -> np.ndarray:
        """Complex transfer function H(f) at a node."""
        try:
            return self.voltages[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def magnitude_db(self, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.clip(np.abs(self.transfer(node)), 1e-300, None))

    def phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.transfer(node)))

    def unity_gain_frequency_hz(self, node: str) -> float:
        """First frequency where |H| falls to 1 (interpolated on log f).

        Only genuine falling edges count: a sweep that *starts* below
        unity (e.g. a band-pass response) contributes no crossing at
        its first point, and a response that is still above unity at
        the last point does not wrap around to fabricate one.
        """
        magnitude = np.abs(self.transfer(node))
        above = magnitude >= 1.0
        # A falling edge at i: above at i-1, below at i (no wrap — the
        # old np.roll formulation mapped above[-1] into position 0 and
        # masked real crossings whenever the sweep started below unity
        # while ending above).
        falling = above[:-1] & ~above[1:]
        if not falling.any():
            if not above.any():
                raise CircuitError("response never reaches unity in the swept range")
            raise CircuitError("response never crosses unity in the swept range")
        idx = int(np.argmax(falling)) + 1
        f0, f1 = self.frequencies_hz[idx - 1], self.frequencies_hz[idx]
        m0, m1 = magnitude[idx - 1], magnitude[idx]
        t = (np.log10(m0)) / (np.log10(m0) - np.log10(m1))
        return float(10 ** (np.log10(f0) + t * (np.log10(f1) - np.log10(f0))))


def ac_analysis(
    circuit: Circuit, source_name: str, frequencies_hz
) -> ACResult:
    """Swept small-signal analysis with a unit AC drive on ``source_name``."""
    frequencies = np.asarray(frequencies_hz, dtype=float)
    if frequencies.size == 0 or np.any(frequencies <= 0.0):
        raise CircuitError("frequencies must be positive and non-empty")

    system = circuit.build_system()
    x_dc = solve_dc(system)
    _, conductance = system.evaluate(x_dc)
    # Detach from the evaluator's reused buffer; densify CSR Jacobians of
    # large systems (the per-frequency solves below are dense-complex).
    conductance = (
        conductance.toarray()
        if hasattr(conductance, "toarray")
        else np.array(conductance)
    )

    size = system.size
    capacitance = np.zeros((size, size))
    for element in circuit.elements:
        if not isinstance(element, Capacitor):
            continue
        ip = system.node_index(element.p)
        in_ = system.node_index(element.n)
        if ip is not None:
            capacitance[ip, ip] += element.capacitance_f
        if in_ is not None:
            capacitance[in_, in_] += element.capacitance_f
        if ip is not None and in_ is not None:
            capacitance[ip, in_] -= element.capacitance_f
            capacitance[in_, ip] -= element.capacitance_f

    rhs = np.zeros(size)
    source = _find_source(circuit, source_name)
    rhs[source.branch_index] = 1.0

    samples = np.empty((frequencies.size, size), dtype=complex)
    for i, frequency in enumerate(frequencies):
        matrix = conductance + 1j * 2.0 * np.pi * frequency * capacitance
        samples[i] = np.linalg.solve(matrix, rhs)

    voltages = {
        node: samples[:, system.node_index(node)] for node in circuit.node_names
    }
    return ACResult(frequencies_hz=frequencies, voltages=voltages)


def _find_source(circuit: Circuit, name: str) -> VoltageSource:
    for element in circuit.elements:
        if isinstance(element, VoltageSource) and element.name == name:
            return element
    raise CircuitError(f"no voltage source named {name!r}")

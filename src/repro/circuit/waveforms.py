"""Time-dependent source waveforms for the circuit simulator.

Mirrors the SPICE source zoo at the scale this package needs: DC, pulse
(with linear ramps), piecewise-linear and sine.  Every waveform is a
callable ``value(t) -> float`` plus a ``dc`` attribute used by operating-
point analysis.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

__all__ = ["DC", "Pulse", "PiecewiseLinear", "Sine"]


@dataclass(frozen=True)
class DC:
    """Constant value."""

    level: float = 0.0

    @property
    def dc(self) -> float:
        return self.level

    def value(self, time_s: float) -> float:
        return self.level


@dataclass(frozen=True)
class Pulse:
    """SPICE-style periodic trapezoidal pulse.

    v1 -> v2 after ``delay``, with ``rise``/``fall`` ramps, ``width`` high
    time and ``period`` repetition (0 period = single pulse).
    """

    v1: float
    v2: float
    delay_s: float = 0.0
    rise_s: float = 1e-12
    fall_s: float = 1e-12
    width_s: float = 1e-9
    period_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rise_s <= 0.0 or self.fall_s <= 0.0 or self.width_s < 0.0:
            raise ValueError("pulse edges must be positive and width >= 0")
        single = self.rise_s + self.width_s + self.fall_s
        if self.period_s and self.period_s < single:
            raise ValueError(
                f"period {self.period_s} shorter than one pulse ({single})"
            )

    @property
    def dc(self) -> float:
        return self.v1

    def value(self, time_s: float) -> float:
        t = time_s - self.delay_s
        if t < 0.0:
            return self.v1
        if self.period_s > 0.0:
            t = math.fmod(t, self.period_s)
        if t < self.rise_s:
            return self.v1 + (self.v2 - self.v1) * t / self.rise_s
        t -= self.rise_s
        if t < self.width_s:
            return self.v2
        t -= self.width_s
        if t < self.fall_s:
            return self.v2 + (self.v1 - self.v2) * t / self.fall_s
        return self.v1


@dataclass(frozen=True)
class PiecewiseLinear:
    """Piecewise-linear waveform through (time, value) points.

    The breakpoint times are extracted once at construction — ``value``
    is called per transient evaluation, and rebuilding the time list on
    every call dominated its cost.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ValueError("PWL needs at least one point")
        times = tuple(t for t, _ in self.points)
        if any(t1 < t0 for t0, t1 in zip(times, times[1:])):
            raise ValueError("PWL times must be non-decreasing")
        object.__setattr__(self, "_times", times)  # frozen dataclass

    @property
    def dc(self) -> float:
        return self.points[0][1]

    def value(self, time_s: float) -> float:
        times = self._times
        if time_s <= times[0]:
            return self.points[0][1]
        if time_s >= times[-1]:
            return self.points[-1][1]
        index = bisect.bisect_right(times, time_s) - 1
        t0, v0 = self.points[index]
        t1, v1 = self.points[index + 1]
        if t1 == t0:
            return v1
        return v0 + (v1 - v0) * (time_s - t0) / (t1 - t0)


@dataclass(frozen=True)
class Sine:
    """Offset sine: offset + amplitude * sin(2 pi f (t - delay))."""

    offset: float
    amplitude: float
    frequency_hz: float
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")

    @property
    def dc(self) -> float:
        return self.offset

    def value(self, time_s: float) -> float:
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency_hz * (time_s - self.delay_s)
        )

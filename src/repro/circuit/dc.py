"""DC analyses: operating point and swept DC with continuation.

``dc_sweep`` re-solves the operating point while stepping one voltage
source through a list of values, seeding each solve with the previous
solution (continuation) so sharp transfer-curve transitions — like the
near-ideal inverter of the paper's Fig. 2(c) — track robustly.  The
system is built (and its stamp plan compiled) once for the whole sweep;
only source waveform levels change between points, which the compiled
evaluator re-reads on every call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit, CircuitError, MNASystem
from repro.circuit.solver import solve_dc
from repro.circuit.waveforms import DC
from repro.circuit.elements import VoltageSource

__all__ = ["OperatingPointResult", "SweepResult", "operating_point", "dc_sweep"]


@dataclass(frozen=True)
class OperatingPointResult:
    """Solved DC state with node voltages and source branch currents."""

    voltages: dict[str, float]
    source_currents: dict[str, float]

    def voltage(self, node: str) -> float:
        if node in ("0", "gnd", "GND", "ground"):
            return 0.0
        try:
            return self.voltages[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def source_current(self, name: str) -> float:
        """Branch current through a voltage source [A] (positive p -> n inside)."""
        try:
            return self.source_currents[name]
        except KeyError:
            raise CircuitError(f"unknown voltage source {name!r}") from None


@dataclass(frozen=True)
class SweepResult:
    """DC sweep result: swept values and per-node voltage traces."""

    swept_values: np.ndarray
    voltages: dict[str, np.ndarray]
    source_currents: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        try:
            return self.voltages[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def source_current(self, name: str) -> np.ndarray:
        try:
            return self.source_currents[name]
        except KeyError:
            raise CircuitError(f"unknown voltage source {name!r}") from None


def _pack_result(system: MNASystem, x: np.ndarray) -> OperatingPointResult:
    voltages = {
        node: float(x[system.node_index(node)]) for node in system.circuit.node_names
    }
    currents = {
        el.name: float(x[el.branch_index])
        for el in system.circuit.elements
        if isinstance(el, VoltageSource)
    }
    return OperatingPointResult(voltages=voltages, source_currents=currents)


def operating_point(
    circuit: Circuit, x0: np.ndarray | None = None
) -> OperatingPointResult:
    """Solve the DC operating point of the circuit.

    Cold starts go through the adaptive continuation ladder of
    :mod:`repro.circuit.continuation` (structural seeding, adaptive
    gmin/source stepping, pseudo-transient fallback), so deep FET
    chains need no ``x0``; the parameter remains as an override for
    selecting a branch of a multistable circuit.  Failures raise
    :class:`~repro.circuit.continuation.ConvergenceError` with the
    full ladder history.
    """
    system = circuit.build_system()
    x = solve_dc(system, x0)
    return _pack_result(system, x)


def dc_sweep(circuit: Circuit, source_name: str, values) -> SweepResult:
    """Sweep the named voltage source through ``values`` with continuation.

    The source's waveform is temporarily replaced by each DC level; the
    original waveform is restored afterwards.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise CircuitError("empty sweep")
    source = _find_source(circuit, source_name)
    system = circuit.build_system()

    original = source.waveform
    voltage_traces: dict[str, list[float]] = {n: [] for n in circuit.node_names}
    current_traces: dict[str, list[float]] = {
        el.name: []
        for el in circuit.elements
        if isinstance(el, VoltageSource)
    }
    x_prev: np.ndarray | None = None
    try:
        for value in values:
            source.waveform = DC(float(value))
            x_prev = solve_dc(system, x_prev)
            point = _pack_result(system, x_prev)
            for node in voltage_traces:
                voltage_traces[node].append(point.voltages[node])
            for name in current_traces:
                current_traces[name].append(point.source_currents[name])
    finally:
        source.waveform = original
    return SweepResult(
        swept_values=values,
        voltages={n: np.array(v) for n, v in voltage_traces.items()},
        source_currents={n: np.array(v) for n, v in current_traces.items()},
    )


def _find_source(circuit: Circuit, name: str) -> VoltageSource:
    for element in circuit.elements:
        if isinstance(element, VoltageSource) and element.name == name:
            return element
    raise CircuitError(f"no voltage source named {name!r}")

"""Standard cells: CMOS-style inverter, NAND/NOR, and ring oscillators.

Builders assemble complementary logic from any pair of n/p device models
(the p-type is derived by mirroring the n-type unless given explicitly),
which is exactly how the paper's Fig. 2 compares "symmetrical pFET and
nFET" inverters built from saturating vs non-saturating devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.dc import dc_sweep
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientResult
from repro.circuit.waveforms import DC, Pulse
from repro.devices.base import FETModel, PType

__all__ = ["InverterCell", "build_inverter", "inverter_vtc", "build_ring_oscillator"]


@dataclass(frozen=True)
class InverterCell:
    """Handle to an assembled inverter inside a circuit."""

    circuit: Circuit
    input_node: str
    output_node: str
    vdd_source: str


def build_inverter(
    nfet: FETModel,
    pfet: FETModel | None = None,
    vdd: float = 1.0,
    load_capacitance_f: float = 10e-15,
    input_waveform=None,
    title: str = "inverter",
) -> InverterCell:
    """A loaded CMOS inverter: pFET vdd->out, nFET out->gnd, C_load at out.

    The 10 fF default load is the one used in the paper's Fig. 2 study.
    """
    if pfet is None:
        pfet = PType(nfet)
    circuit = Circuit(title)
    circuit.add_voltage_source("VDD", "vdd", "0", DC(vdd))
    circuit.add_voltage_source("VIN", "in", "0", input_waveform or DC(0.0))
    # p-type: source at vdd, drain at out (model sees vgs = Vg - Vvdd < 0).
    circuit.add_fet("MP", "out", "in", "vdd", pfet)
    circuit.add_fet("MN", "out", "in", "0", nfet)
    if load_capacitance_f > 0.0:
        circuit.add_capacitor("CL", "out", "0", load_capacitance_f)
    return InverterCell(
        circuit=circuit, input_node="in", output_node="out", vdd_source="VDD"
    )


def inverter_vtc(
    nfet: FETModel,
    pfet: FETModel | None = None,
    vdd: float = 1.0,
    n_points: int = 201,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Voltage transfer curve of the inverter: (v_in, v_out, i_supply).

    Runs a continuation DC sweep of the input source; the supply current
    trace exposes the short-circuit ("burn dc power from VDD to ground")
    behaviour the paper highlights for non-saturating devices.
    """
    cell = build_inverter(nfet, pfet, vdd=vdd, load_capacitance_f=0.0)
    values = np.linspace(0.0, vdd, n_points)
    sweep = dc_sweep(cell.circuit, "VIN", values)
    v_out = sweep.voltage(cell.output_node)
    i_supply = -sweep.source_current(cell.vdd_source)  # current delivered by VDD
    return values, v_out, i_supply


def build_ring_oscillator(
    nfet: FETModel,
    pfet: FETModel | None = None,
    n_stages: int = 5,
    vdd: float = 1.0,
    stage_capacitance_f: float = 1e-15,
    kick_v: float = 0.02,
) -> Circuit:
    """An odd-stage ring oscillator with per-stage load capacitors.

    A small asymmetric kick source at stage 0 breaks the metastable
    all-at-VDD/2 DC solution so the oscillation starts deterministically.
    """
    if n_stages < 3 or n_stages % 2 == 0:
        raise ValueError(f"need an odd stage count >= 3, got {n_stages}")
    if pfet is None:
        pfet = PType(nfet)
    circuit = Circuit(f"ro{n_stages}")
    circuit.add_voltage_source("VDD", "vdd", "0", DC(vdd))
    for stage in range(n_stages):
        node_in = f"n{stage}"
        node_out = f"n{(stage + 1) % n_stages}"
        circuit.add_fet(f"MP{stage}", node_out, node_in, "vdd", pfet)
        circuit.add_fet(f"MN{stage}", node_out, node_in, "0", nfet)
        circuit.add_capacitor(f"C{stage}", node_out, "0", stage_capacitance_f)
    # Startup kick: brief pulse injected at n0 through a small source.
    circuit.add_voltage_source(
        "VKICK",
        "kick",
        "0",
        Pulse(v1=0.0, v2=kick_v, delay_s=0.0, rise_s=1e-12, fall_s=1e-12, width_s=20e-12),
    )
    circuit.add_resistor("RKICK", "kick", "n0", 1e4)
    return circuit


def ring_oscillator_frequency(
    result: TransientResult, node: str = "n0", vdd: float = 1.0
) -> float:
    """Oscillation frequency [Hz] from mid-supply crossings of one node."""
    v = result.voltage(node)
    t = result.time_s
    mid = vdd / 2.0
    above = v > mid
    crossings = t[1:][above[1:] & ~above[:-1]]  # rising crossings
    if crossings.size < 3:
        raise ValueError("not enough oscillation periods captured")
    periods = np.diff(crossings[-max(3, crossings.size // 2):])
    return float(1.0 / np.mean(periods))


__all__.append("ring_oscillator_frequency")

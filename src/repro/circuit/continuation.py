"""Adaptive DC continuation: structural seeding, homotopy ladder, diagnostics.

The fixed-schedule homotopies that used to live in ``solve_dc`` (one
hard-coded gmin ladder, one ten-point source ramp) failed beyond ~4
inverter stages and forced callers to hand-feed a structural ``x0``
guess.  This module replaces them with a proper continuation subsystem:

* :func:`structural_seed` — a logic-aware seeder that pins every node a
  voltage source determines, then propagates rail values through the
  netlist by treating FETs as switches (strongly-on devices short their
  drain to their source rail) and resistors as wires.  For CMOS-style
  logic — inverter chains, NAND/NOR stacks, ring oscillators — this
  reconstructs the alternating-rails operating-point structure that a
  cold ``x = 0`` start cannot see, so plain Newton usually converges
  immediately and no caller needs to pass ``x0`` any more.
* **Adaptive gmin stepping** — instead of aborting when one step of a
  fixed schedule fails, the reduction factor backtracks (refines) on
  failure and accelerates after successes, so the ladder finds however
  many stages the circuit actually needs.
* **Adaptive source ramping** — the ramp step size halves on failure
  and grows on success, resolving sharp transfer-curve transitions a
  uniform ten-point ramp steps straight over.
* **Pseudo-transient continuation (PTC)** — the final fallback: solve
  ``F(x) + alpha (x - x_k) = 0``, relaxing the damping conductance
  ``alpha`` toward zero so the iterates follow a damped startup
  transient into the DC solution.  The anchor term rides the solver's
  gmin stamp with a reference vector (``gmin_ref``), stamped by both
  the compiled plan and the reference evaluator.

Every Newton attempt is recorded in a :class:`ConvergenceReport`
(strategy, continuation parameter, iteration count, final residual), so
a failed solve raises :class:`ConvergenceError` carrying the full
ladder history instead of a bare message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.assembly import _unwrap_polarity
from repro.circuit.elements import FET, GROUND_NAMES, Resistor, VoltageSource
from repro.circuit.netlist import CircuitError, MNASystem
from repro.circuit.solver import newton_solve

__all__ = [
    "ConvergenceError",
    "ConvergenceReport",
    "StageAttempt",
    "solve_dc_robust",
    "structural_seed",
]

# gmin ladder: starting shunt conductance, escalation ceiling when even
# the start fails, and the value below which the shunt is dropped to 0.
_GMIN_START = 1e-2
_GMIN_MAX = 10.0
_GMIN_FLOOR = 1e-12
_GMIN_FACTOR_MAX = 100.0
_GMIN_FACTOR_MIN = 1.05

# source ramp: initial/maximum fractional step and the refinement floor.
_SOURCE_STEP_START = 0.1
_SOURCE_STEP_MAX = 0.25
_SOURCE_STEP_MIN = 1e-4

# pseudo-transient: starting damping conductance, escalation ceiling,
# and the value at which the damping is considered fully relaxed.
_PTC_ALPHA_START = 1e-3
_PTC_ALPHA_MAX = 1e3
_PTC_ALPHA_FLOOR = 1e-12

# Per-strategy cap on Newton attempts — bounds a pathological ladder.
_MAX_STAGE_SOLVES = 80

# Fraction of the rail span |vgs| must exceed for the structural seeder
# to call a FET "strongly on" and short its drain to the source rail.
_SEED_ON_FRACTION = 0.6


@dataclass(frozen=True)
class StageAttempt:
    """One recorded Newton attempt inside the continuation ladder."""

    stage: str
    parameter: float | None
    iterations: int
    residual: float
    converged: bool


@dataclass
class ConvergenceReport:
    """Ladder history threaded through ``newton_solve``/``solve_dc``."""

    attempts: list[StageAttempt] = field(default_factory=list)
    converged: bool = False
    strategy: str | None = None

    def record(
        self,
        stage: str,
        parameter: float | None,
        iterations: int,
        residual: float,
        converged: bool,
    ) -> None:
        self.attempts.append(
            StageAttempt(stage, parameter, iterations, float(residual), converged)
        )

    @property
    def total_iterations(self) -> int:
        return sum(attempt.iterations for attempt in self.attempts)

    @property
    def final_residual(self) -> float:
        return self.attempts[-1].residual if self.attempts else float("inf")

    @property
    def stages_used(self) -> tuple[str, ...]:
        seen: list[str] = []
        for attempt in self.attempts:
            if attempt.stage not in seen:
                seen.append(attempt.stage)
        return tuple(seen)

    def describe(self) -> str:
        """Multi-line summary: per-strategy attempts, iterations, residuals."""
        verdict = (
            f"converged via {self.strategy}" if self.converged else "FAILED"
        )
        lines = [
            f"DC continuation {verdict}: {len(self.attempts)} Newton attempts, "
            f"{self.total_iterations} iterations, "
            f"final residual {self.final_residual:.3e}"
        ]
        for stage in self.stages_used:
            attempts = [a for a in self.attempts if a.stage == stage]
            last = attempts[-1]
            parameter = (
                "" if last.parameter is None else f", last parameter {last.parameter:.3e}"
            )
            lines.append(
                f"  {stage}: {len(attempts)} attempts, "
                f"{sum(a.iterations for a in attempts)} iterations, "
                f"last residual {last.residual:.3e}{parameter}"
            )
        return "\n".join(lines)


class ConvergenceError(CircuitError):
    """A DC solve that exhausted the continuation ladder, with its report."""

    def __init__(self, message: str, report: ConvergenceReport):
        super().__init__(f"{message}\n{report.describe()}")
        self.report = report


def structural_seed(system: MNASystem, time_s: float | None = None) -> np.ndarray:
    """Logic-aware initial guess: propagate rail values through the netlist.

    Nodes pinned by voltage sources (evaluated at ``time_s``, or their DC
    level when ``None``) seed the propagation; FETs whose gate drive
    exceeds :data:`_SEED_ON_FRACTION` of the rail span act as closed
    switches copying the source rail onto an undriven drain, and
    resistors copy a known voltage onto an unknown neighbour.  Nodes the
    propagation cannot reach settle at mid-rail; branch currents start
    at zero.
    """
    circuit = system.circuit
    known: dict[str, float] = {}

    def get(node: str) -> float | None:
        if node in GROUND_NAMES:
            return 0.0
        return known.get(node)

    def put(node: str, value: float) -> bool:
        if node in GROUND_NAMES or node in known:
            return False
        known[node] = float(value)
        return True

    vsources = [el for el in circuit.elements if isinstance(el, VoltageSource)]
    fets = [el for el in circuit.elements if isinstance(el, FET)]
    resistors = [el for el in circuit.elements if isinstance(el, Resistor)]

    # Pin source-determined nodes (fixpoint handles stacked sources).
    changed = True
    while changed:
        changed = False
        for el in vsources:
            vp, vn = get(el.p), get(el.n)
            if vp is None and vn is not None:
                changed |= put(el.p, vn + el.level(time_s))
            elif vn is None and vp is not None:
                changed |= put(el.n, vp - el.level(time_s))

    rails = [0.0, *known.values()]
    v_lo, v_hi = min(rails), max(rails)
    span = v_hi - v_lo

    x = np.zeros(system.size)
    if span <= 0.0:
        for node, value in known.items():
            x[system.node_index(node)] = value
        return x

    # Switch-level propagation to a fixpoint.  Rules fire in priority
    # order — voltage sources (exact) > FET switches > resistor wires
    # (both heuristic) — and the heuristic sweeps stop after their
    # first assignment so the exact rules are re-checked before any
    # further guess: a source whose terminals only become known through
    # propagation is still pinned exactly, never left at mid-rail.
    threshold = _SEED_ON_FRACTION * span
    max_passes = system.n_nodes + len(circuit.elements) + 1
    for _ in range(max_passes):
        changed = False
        for el in vsources:
            vp, vn = get(el.p), get(el.n)
            if vp is None and vn is not None:
                changed |= put(el.p, vn + el.level(time_s))
            elif vn is None and vp is not None:
                changed |= put(el.n, vp - el.level(time_s))
        if changed:
            continue
        for el in fets:
            vg, vs = get(el.gate), get(el.source)
            if vg is None or vs is None or get(el.drain) is not None:
                continue
            _, sign = _unwrap_polarity(el.device)
            if sign * (vg - vs) >= threshold and put(el.drain, vs):
                changed = True
                break
        if changed:
            continue
        for el in resistors:
            vp, vn = get(el.p), get(el.n)
            if vp is None and vn is not None:
                changed = put(el.p, vn)
            elif vn is None and vp is not None:
                changed = put(el.n, vp)
            if changed:
                break
        if not changed:
            break

    mid = v_lo + 0.5 * span
    for node in circuit.node_names:
        x[system.node_index(node)] = known.get(node, mid)
    return x


def solve_dc_robust(
    system: MNASystem, x0: np.ndarray | None = None, **eval_kwargs
) -> tuple[np.ndarray, ConvergenceReport]:
    """DC solve through the continuation ladder; never raises.

    Tries, in order: plain Newton from ``x0`` (or the structural seed),
    adaptive gmin stepping, adaptive source ramping, pseudo-transient
    continuation.  Returns the best iterate and the full
    :class:`ConvergenceReport`; check ``report.converged``.
    """
    report = ConvergenceReport()
    seed = (
        structural_seed(system, eval_kwargs.get("time_s"))
        if x0 is None
        else np.array(x0, dtype=float)
    )

    x, ok = newton_solve(system, seed, report=report, stage="newton", **eval_kwargs)
    if not ok:
        for strategy, runner in (
            ("gmin", _gmin_stepping),
            ("source", _source_ramping),
            ("ptc", _pseudo_transient),
        ):
            x, ok = runner(system, seed, report, **eval_kwargs)
            if ok:
                break
    if ok:
        report.converged = True
        report.strategy = report.attempts[-1].stage if report.attempts else "newton"
    return x, report


def _gmin_stepping(
    system: MNASystem,
    seed: np.ndarray,
    report: ConvergenceReport,
    **eval_kwargs,
) -> tuple[np.ndarray, bool]:
    """Adaptive gmin ladder: backtrack and refine the schedule on failure."""

    def solve(x_from, gmin):
        return newton_solve(
            system, x_from, gmin=gmin, report=report, stage="gmin",
            parameter=gmin, **eval_kwargs,
        )

    x = np.array(seed)
    gmin = _GMIN_START
    solves = 0
    # Anchor the ladder: escalate gmin until Newton lands somewhere.
    while True:
        x_try, ok = solve(x, gmin)
        solves += 1
        if ok:
            x = x_try
            break
        gmin *= 100.0
        if gmin > _GMIN_MAX or solves >= _MAX_STAGE_SOLVES:
            return x, False

    factor = 10.0
    while gmin > _GMIN_FLOOR and solves < _MAX_STAGE_SOLVES:
        x_try, ok = solve(x, gmin / factor)
        solves += 1
        if ok:
            x, gmin = x_try, gmin / factor
            factor = min(factor * 2.0, _GMIN_FACTOR_MAX)
        else:
            factor = float(np.sqrt(factor))
            if factor < _GMIN_FACTOR_MIN:
                return x, False

    x_final, ok = solve(x, 0.0)
    return (x_final, True) if ok else (x, False)


def _source_ramping(
    system: MNASystem,
    seed: np.ndarray,
    report: ConvergenceReport,
    **eval_kwargs,
) -> tuple[np.ndarray, bool]:
    """Adaptive source ramp 0 -> 100 % with step refinement on failure."""

    def solve(x_from, scale):
        return newton_solve(
            system, x_from, source_scale=scale, report=report, stage="source",
            parameter=scale, **eval_kwargs,
        )

    x, ok = solve(np.zeros(system.size), 0.0)
    if not ok:
        return x, False
    scale, step = 0.0, _SOURCE_STEP_START
    solves = 0
    while scale < 1.0 and solves < _MAX_STAGE_SOLVES:
        target = min(1.0, scale + step)
        x_try, ok = solve(x, target)
        solves += 1
        if ok:
            x, scale = x_try, target
            step = min(step * 1.7, _SOURCE_STEP_MAX)
        else:
            step *= 0.5
            if step < _SOURCE_STEP_MIN:
                return x, False
    return x, scale >= 1.0


def _pseudo_transient(
    system: MNASystem,
    seed: np.ndarray,
    report: ConvergenceReport,
    **eval_kwargs,
) -> tuple[np.ndarray, bool]:
    """Pseudo-transient continuation: relax F(x) + alpha (x - x_k) = 0.

    The damping term anchors each solve at the previous pseudo-time
    point through the evaluator's ``gmin``/``gmin_ref`` stamp; ``alpha``
    relaxes toward zero on success and stiffens on failure, like an
    adaptive implicit-Euler startup transient with node capacitors.
    """
    x = np.array(seed)
    alpha = _PTC_ALPHA_START
    solves = 0
    while solves < _MAX_STAGE_SOLVES:
        x_try, ok = newton_solve(
            system, x, gmin=alpha, gmin_ref=x, report=report, stage="ptc",
            parameter=alpha, **eval_kwargs,
        )
        solves += 1
        if ok:
            moved = float(np.max(np.abs(x_try - x)))
            x = x_try
            if alpha <= _PTC_ALPHA_FLOOR:
                x_final, ok = newton_solve(
                    system, x, report=report, stage="ptc", parameter=0.0,
                    **eval_kwargs,
                )
                return (x_final, True) if ok else (x, False)
            # Relax faster once the pseudo-transient has settled.
            alpha /= 4.0 if moved < 1e-6 else 2.0
        else:
            alpha *= 10.0
            if alpha > _PTC_ALPHA_MAX:
                return x, False
    return x, False

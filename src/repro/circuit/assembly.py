"""Compiled stamp-plan assembly engine for MNA systems.

The reference evaluator (:meth:`repro.circuit.netlist.MNASystem.evaluate_dense`)
walks every element per Newton iteration and stamps scalars through
:class:`~repro.circuit.elements.StampContext` — simple, but all-Python
and re-allocating a dense ``n x n`` Jacobian on every call.  This module
compiles a :class:`StampPlan` once per :meth:`Circuit.build_system`:

* **Linear elements** (R, V-source patterns, capacitor companion
  conductances) collapse into one constant matrix ``A`` assembled a
  single time and cached per ``(dt, integrator)`` key, so the linear
  residual is a matrix-vector product ``A @ x`` and the linear Jacobian
  block is a buffer copy.
* **Right-hand-side terms** (source waveform levels, capacitor history)
  are gathered through precomputed index arrays each call.
* **Nonlinear FETs** are grouped by device-model instance and
  linearized in one batched :meth:`repro.devices.base.FETModel.linearize`
  call per group (arrays of ``vgs``/``vds`` in, arrays of
  ``(id, gm, gds)`` out), then scattered into the residual/Jacobian with
  ``np.add.at`` through index arrays laid out at compile time.
* Systems with ``size >= SPARSE_THRESHOLD`` assemble ``scipy.sparse``
  CSR matrices through a :class:`_SparseSchedule`: one canonical
  sparsity pattern (linear stamps ∪ FET stamps ∪ full diagonal) shared
  by every evaluation, with precomputed scatter positions so a
  Jacobian is just a ``data`` vector.  The schedule computes the
  fill-reducing column ordering **once** (symbolic analysis) and every
  Newton step refactorizes only numerically against it — this is also
  what lets the sweep engines stack N instances' CSR ``data`` arrays
  as ``(m, nnz)`` and batch sparse Monte Carlo.  Smaller systems — all
  the seed circuits — reuse preallocated dense buffers.

The compiled path is numerically equivalent to the reference path (same
stamps, same finite-difference linearization arithmetic); the test suite
asserts residual/Jacobian agreement to 1e-12 on representative circuits.

Buffer-reuse contract: in dense mode :meth:`StampPlan.evaluate` returns
views of preallocated buffers that are overwritten by the next call —
copy them if you need to keep results across evaluations.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.linalg import lu_factor, lu_solve
from scipy.sparse.linalg import splu

from repro.circuit.elements import (
    FET,
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.devices.base import PType

__all__ = ["StampPlan", "UnsupportedElement", "SPARSE_THRESHOLD"]

# Unknown-count at which assembly (and the Newton solve) switch from
# preallocated dense buffers to scipy.sparse CSR matrices.
SPARSE_THRESHOLD = 128

# Diagonal regularization applied before any factorization — shared
# with the Newton solver (which imports it), so linear-only cached-LU
# solves and per-iteration nonlinear solves get identical conditioning.
DIAG_REGULARIZATION = 1e-14

# FET groups at or below this size stamp through the scalar
# ``linearize_point`` path in dense mode: array dispatch does not
# amortise below ~4 FETs (the seed's small-circuit advantage; a
# 2-stage complementary chain is one group of 4).  Devices whose
# scalar ``current`` is itself a solver call opt out via
# ``FETModel.prefer_batched_points``.
SCALAR_GROUP_MAX = 4

_COMPILED_TYPES = (Resistor, Capacitor, VoltageSource, CurrentSource, FET)


class UnsupportedElement(TypeError):
    """Raised when a circuit contains element types the plan cannot compile."""


def _unwrap_polarity(device) -> tuple[object, float]:
    """Strip :class:`PType` mirror wrappers into (base model, sign).

    I_p(v) = -I_n(-v) means a p-FET's bias points can ride in the same
    batched ``linearize`` call as its n-type siblings: flip the biases
    on the way in and the current on the way out (conductances are
    even under the mirror), so one complementary pair costs one device
    call instead of two.
    """
    sign = 1.0
    while type(device) is PType:
        sign = -sign
        device = device.nfet
    return device, sign


class _FETGroup:
    """All FETs sharing one (polarity-unwrapped) device-model instance.

    ``gather_*`` index the padded voltage vector (ground at index
    ``size``); ``rows``/``cols``/``take`` address the 6-entry-per-FET
    Jacobian stamp pattern with ground rows/columns masked out.

    Groups of at most :data:`SCALAR_GROUP_MAX` FETs additionally
    precompute plain-int indices for :meth:`stamp_points` — a
    pure-scalar stamp through
    :meth:`repro.devices.base.FETModel.linearize_point` that skips the
    array dispatch entirely (array math does not amortise below ~4
    FETs; see the ROADMAP's small-circuit trade-off note).  Devices
    that set ``prefer_batched_points`` (scalar evaluation is a solver
    call) keep the batched path at every group size.
    """

    __slots__ = (
        "device", "delta_v", "count", "sign", "elements",
        "gather_dgs", "scatter_idx", "flat",
        "rows", "cols", "take", "_vals6", "_vals", "_scatter_vals",
        "use_points", "point_fets",
    )

    def __init__(self, device, delta_v: float | None, fets: list, pad, jac_idx, size: int):
        self.device = device
        self.delta_v = delta_v
        self.count = len(fets)
        # The FET elements in batch order — the sweep engine maps its
        # per-instance parameter columns onto group slots through this.
        self.elements = tuple(fets)
        signs = np.array([_unwrap_polarity(f.device)[1] for f in fets])
        self.sign = None if np.all(signs == 1.0) else signs
        gather_d = np.array([pad(f.drain) for f in fets], dtype=np.intp)
        gather_g = np.array([pad(f.gate) for f in fets], dtype=np.intp)
        gather_s = np.array([pad(f.source) for f in fets], dtype=np.intp)
        self.gather_dgs = np.stack((gather_d, gather_g, gather_s))
        self.scatter_idx = np.concatenate((gather_d, gather_s))
        jd = np.array([jac_idx(f.drain) for f in fets], dtype=np.intp)
        jg = np.array([jac_idx(f.gate) for f in fets], dtype=np.intp)
        js = np.array([jac_idx(f.source) for f in fets], dtype=np.intp)
        # Entry order matches the per-call value stack in evaluate():
        # (d,d)=gds (d,g)=gm (d,s)=-(gm+gds) (s,d)=-gds (s,g)=-gm (s,s)=gm+gds
        rows6 = np.stack((jd, jd, jd, js, js, js))
        cols6 = np.stack((jd, jg, js, jd, jg, js))
        valid = ((rows6 >= 0) & (cols6 >= 0)).ravel()
        self.take = np.nonzero(valid)[0]
        self.rows = rows6.ravel()[self.take]
        self.cols = cols6.ravel()[self.take]
        self.flat = self.rows * size + self.cols
        self._vals6 = np.empty((6, self.count))
        self._vals = np.empty(self.take.size)
        self._scatter_vals = np.empty(2 * self.count)
        self.use_points = self.count <= SCALAR_GROUP_MAX and not getattr(
            device, "prefer_batched_points", False
        )
        if self.use_points:
            # Per-FET scalar stamp schedule: padded terminal indices,
            # polarity sign, and this FET's surviving Jacobian entries
            # as (flat index, slot in the 6-value pattern) pairs.
            flat_by_pos = dict(zip(self.take.tolist(), self.flat.tolist()))
            self.point_fets = [
                (
                    int(gather_d[i]),
                    int(gather_g[i]),
                    int(gather_s[i]),
                    float(signs[i]),
                    [
                        (flat_by_pos[slot * self.count + i], slot)
                        for slot in range(6)
                        if slot * self.count + i in flat_by_pos
                    ],
                )
                for i in range(self.count)
            ]

    def linearize(self, xpad: np.ndarray):
        """Batched device linearization at the padded iterate ``xpad``."""
        v_dgs = xpad[self.gather_dgs]
        vs = v_dgs[2]
        vgs = v_dgs[1] - vs
        vds = v_dgs[0] - vs
        if self.sign is None:
            return self.device.linearize(vgs, vds, self.delta_v)
        current, gm, gds = self.device.linearize(
            self.sign * vgs, self.sign * vds, self.delta_v
        )
        return self.sign * current, gm, gds

    def stamp_points(self, xpad: np.ndarray, rpad: np.ndarray, jac_flat: np.ndarray):
        """Scalar fast path: stamp a small group FET by FET, no arrays.

        Same arithmetic as the batched path (sign-flip in, sign-flip
        out, unsigned conductances) through the device's scalar
        ``linearize_point``, with plain-int indexed accumulation — the
        restoration of the seed's per-element stamp cost for small
        circuits.
        """
        device = self.device
        delta_v = self.delta_v
        for d, g, s, sign, entries in self.point_fets:
            vs = xpad[s]
            vgs = xpad[g] - vs
            vds = xpad[d] - vs
            if sign == 1.0:
                current, gm, gds = device.linearize_point(vgs, vds, delta_v)
            else:
                current, gm, gds = device.linearize_point(
                    sign * vgs, sign * vds, delta_v
                )
                current = sign * current
            rpad[d] += current
            rpad[s] -= current
            vals = (gds, gm, -(gm + gds), -gds, -gm, gm + gds)
            for flat_index, slot in entries:
                jac_flat[flat_index] += vals[slot]

    def residual_values(self, current: np.ndarray) -> np.ndarray:
        """Stack ``[+I, -I]`` matching ``scatter_idx`` (drains then sources)."""
        vals = self._scatter_vals
        vals[: self.count] = current
        np.negative(current, out=vals[self.count :])
        return vals

    def jacobian_values(self, gm: np.ndarray, gds: np.ndarray) -> np.ndarray:
        vals6 = self._vals6
        vals6[0] = gds
        vals6[1] = gm
        np.add(gm, gds, out=vals6[5])
        np.negative(vals6[5], out=vals6[2])
        np.negative(gds, out=vals6[3])
        np.negative(gm, out=vals6[4])
        return np.take(vals6.ravel(), self.take, out=self._vals)


class _LinearSystem:
    """Cached constant linear part for one ``(dt, integrator)`` key.

    ``solve`` holds a lazily-built LU-backed ``solve(rhs)`` callable for
    linear-only circuits, so transient steps and sweep points reuse one
    factorization instead of refactorizing the identical matrix.
    ``sparse_base`` caches this linear part scattered onto the plan's
    canonical sparse pattern (see :class:`_SparseSchedule`).
    """

    __slots__ = ("matrix", "cap_geq", "solve", "sparse_base")

    def __init__(self, matrix, cap_geq):
        self.matrix = matrix
        self.cap_geq = cap_geq
        self.solve = None
        self.sparse_base = None


class _SparseSchedule:
    """Shared sparse assembly + factorization schedule for one plan.

    The canonical sparsity pattern is the union of the linear stamp
    entries, the capacitor companion entries, every FET group's
    Jacobian stamp entries, and the full diagonal (MNA voltage-source
    branch rows have structural-zero diagonals; carrying the diagonal
    lets regularization and gmin shunts write in place).  Every
    Jacobian the plan produces — one bias point or a stack of sweep
    instances — is then just a ``data`` vector over this one pattern:

    * :meth:`positions` maps stamp (row, col) lists to ``data``
      offsets at compile time, so assembly is ``np.add.at`` scatters
      exactly like the dense path.
    * The symbolic half of sparse LU — the fill-reducing COLAMD
      column ordering — is computed **once** (:attr:`n_symbolic`
      counts these); :meth:`factor` then refactorizes numerically by
      permuting the canonical ``data`` into a pre-gathered CSC layout
      and factoring with ``permc_spec="NATURAL"``.

    That split is what lets the sweep engines batch sparse plans: one
    schedule serves every instance's refactorization, and a stacked
    ``(m, nnz)`` data array *is* the batched Jacobian.
    """

    def __init__(self, plan):
        size = plan.size
        self.size = size
        diag = np.arange(size, dtype=np.intp)
        group_rows = [g.rows for g in plan.fet_groups]
        group_cols = [g.cols for g in plan.fet_groups]
        rows = np.concatenate(
            [plan._static_rows, plan._cap_rows, *group_rows, diag]
        )
        cols = np.concatenate(
            [plan._static_cols, plan._cap_cols, *group_cols, diag]
        )
        pattern = sparse.coo_matrix(
            (np.ones(rows.size), (rows, cols)), shape=(size, size)
        ).tocsr()
        pattern.sum_duplicates()
        pattern.sort_indices()
        self.indices = pattern.indices.copy()
        self.indptr = pattern.indptr.copy()
        self.nnz = int(self.indices.size)
        # Flat row*size+col key per canonical entry, strictly
        # ascending — the searchsorted target for positions().
        counts = np.diff(self.indptr)
        self._canon_flat = (
            np.repeat(diag, counts) * size + self.indices.astype(np.intp)
        )
        self.diag_pos = self.positions(diag, diag)
        self.node_diag_pos = self.diag_pos[: plan.n_nodes]
        self.group_pos = [
            self.positions(g.rows, g.cols) for g in plan.fet_groups
        ]
        self._static_pos = self.positions(plan._static_rows, plan._static_cols)
        self._static_vals = plan._static_vals
        self._cap_pos = self.positions(plan._cap_rows, plan._cap_cols)
        self._cap_sign = plan._cap_sign
        self._cap_which = plan._cap_which
        # Symbolic state, built lazily by _ensure_symbolic().
        self.n_symbolic = 0
        self._perm_c: np.ndarray | None = None
        self._b_gather: np.ndarray | None = None
        self._b_indices: np.ndarray | None = None
        self._b_indptr: np.ndarray | None = None

    def positions(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Canonical ``data`` offsets of (row, col) stamp entries."""
        flat = np.asarray(rows, dtype=np.intp) * self.size + cols
        return np.searchsorted(self._canon_flat, flat).astype(np.intp)

    def linear_data(self, linear: _LinearSystem) -> np.ndarray:
        """Constant linear part as a canonical-pattern ``data`` vector.

        Cached on the :class:`_LinearSystem` (one per ``(dt,
        integrator)`` key); callers copy before scattering nonlinear
        values.
        """
        base = linear.sparse_base
        if base is None:
            base = np.zeros(self.nnz)
            np.add.at(base, self._static_pos, self._static_vals)
            if linear.cap_geq.size:
                np.add.at(
                    base,
                    self._cap_pos,
                    self._cap_sign * linear.cap_geq[self._cap_which],
                )
            linear.sparse_base = base
        return base

    def matrix(self, data: np.ndarray) -> sparse.csr_matrix:
        """Wrap one canonical ``data`` vector as a CSR matrix (no copy)."""
        return sparse.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.size, self.size)
        )

    def capacitance_data(self, cap_c: np.ndarray) -> np.ndarray:
        """Capacitance stamp C as a canonical-pattern ``data`` vector.

        The capacitor entries live on the same canonical pattern as the
        conductance stamps, so the AC system ``G + j w C`` is a pure
        elementwise combination of two ``data`` vectors — no per-element
        walking, no pattern merging (see :mod:`repro.circuit.ac`).
        """
        data = np.zeros(self.nnz)
        if self._cap_pos.size:
            np.add.at(data, self._cap_pos, self._cap_sign * cap_c[self._cap_which])
        return data

    def _ensure_symbolic(self) -> None:
        if self._perm_c is not None:
            return
        # Fill-reducing ordering from one splu of a diagonally-dominant
        # placeholder on the canonical pattern (ones everywhere, the
        # diagonal lifted above any row sum so factorization cannot
        # fail).  The ordering depends only on the pattern, so every
        # numeric refactorization reuses it.
        data = np.ones(self.nnz)
        data[self.diag_pos] += float(self.size)
        lu = splu(self.matrix(data).tocsc())
        self._perm_c = lu.perm_c.astype(np.intp)
        # Pre-gathered CSC layout of B = A[:, perm_c]: b_gather maps
        # canonical CSR data positions into B's CSC data order, so a
        # refactorization is one fancy-index plus a NATURAL-order splu.
        acsc = sparse.csr_matrix(
            (np.arange(self.nnz, dtype=np.intp), self.indices, self.indptr),
            shape=(self.size, self.size),
        ).tocsc()
        starts, ends = acsc.indptr[:-1], acsc.indptr[1:]
        order = np.concatenate(
            [np.arange(starts[c], ends[c]) for c in self._perm_c]
        )
        self._b_gather = acsc.data[order]
        self._b_indices = acsc.indices[order]
        lengths = (ends - starts)[self._perm_c]
        self._b_indptr = np.concatenate(
            ([0], np.cumsum(lengths))
        ).astype(acsc.indptr.dtype)
        self.n_symbolic += 1

    def factor(self, data: np.ndarray):
        """Numeric refactorization of one canonical ``data`` vector.

        Returns a ``solve(rhs)`` callable for the *unpermuted* system
        (``A x = rhs``), or None when the matrix is numerically
        singular.  ``data`` may be complex: the gather, the CSC wrap
        and ``splu`` are all dtype-generic, which is what lets the
        compiled AC path (:mod:`repro.circuit.ac`) refactorize
        ``G + j w C`` per frequency against this one symbolic
        ordering.
        """
        self._ensure_symbolic()
        permuted = sparse.csc_matrix(
            (data[self._b_gather], self._b_indices, self._b_indptr),
            shape=(self.size, self.size),
        )
        try:
            lu = splu(permuted, permc_spec="NATURAL")
        except RuntimeError:
            return None
        perm_c = self._perm_c

        def solve(rhs: np.ndarray) -> np.ndarray:
            y = lu.solve(rhs)
            x = np.empty_like(y)
            x[perm_c] = y
            return x

        return solve


class StampPlan:
    """Precompiled assembly schedule for one :class:`MNASystem`."""

    def __init__(self, system):
        circuit = system.circuit
        for element in circuit.elements:
            if type(element) not in _COMPILED_TYPES:
                raise UnsupportedElement(
                    f"cannot compile element type {type(element).__name__}"
                )
        self.system = system
        self.size = system.size
        self.n_nodes = system.n_nodes
        self.use_sparse = self.size >= SPARSE_THRESHOLD

        size = self.size

        def pad(node: str) -> int:
            """Padded-vector index: ground maps to the trailing slot."""
            idx = system.node_index(node)
            return size if idx is None else idx

        def jac_idx(node: str) -> int:
            """Jacobian index: ground maps to -1 (entry dropped)."""
            idx = system.node_index(node)
            return -1 if idx is None else idx

        # -- constant (bias-independent) matrix entries --------------------------
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []

        def put(row: int, col: int, value: float) -> None:
            if row >= 0 and col >= 0:
                rows.append(row)
                cols.append(col)
                vals.append(value)

        # -- capacitor companion pattern: value = sign * geq[cap] ---------------
        cap_rows: list[int] = []
        cap_cols: list[int] = []
        cap_sign: list[float] = []
        cap_which: list[int] = []

        def put_cap(row: int, col: int, sign: float, which: int) -> None:
            if row >= 0 and col >= 0:
                cap_rows.append(row)
                cap_cols.append(col)
                cap_sign.append(sign)
                cap_which.append(which)

        vsources: list[VoltageSource] = []
        isources: list[CurrentSource] = []
        capacitors: list[Capacitor] = []
        fet_bins: dict[tuple[int, float | None], list[FET]] = {}
        fet_devices: dict[tuple[int, float | None], object] = {}

        for element in circuit.elements:
            if isinstance(element, Resistor):
                g = 1.0 / element.resistance_ohm
                ip, in_ = jac_idx(element.p), jac_idx(element.n)
                put(ip, ip, g)
                put(ip, in_, -g)
                put(in_, ip, -g)
                put(in_, in_, g)
            elif isinstance(element, VoltageSource):
                ip, in_ = jac_idx(element.p), jac_idx(element.n)
                br = element.branch_index
                put(ip, br, 1.0)
                put(in_, br, -1.0)
                put(br, ip, 1.0)
                put(br, in_, -1.0)
                vsources.append(element)
            elif isinstance(element, CurrentSource):
                isources.append(element)
            elif isinstance(element, Capacitor):
                which = len(capacitors)
                ip, in_ = jac_idx(element.p), jac_idx(element.n)
                put_cap(ip, ip, 1.0, which)
                put_cap(ip, in_, -1.0, which)
                put_cap(in_, ip, -1.0, which)
                put_cap(in_, in_, 1.0, which)
                capacitors.append(element)
            else:  # FET
                base_device, _ = _unwrap_polarity(element.device)
                key = (id(base_device), element.delta_v)
                fet_bins.setdefault(key, []).append(element)
                fet_devices[key] = base_device

        self._static_rows = np.array(rows, dtype=np.intp)
        self._static_cols = np.array(cols, dtype=np.intp)
        self._static_vals = np.array(vals, dtype=float)

        self._cap_rows = np.array(cap_rows, dtype=np.intp)
        self._cap_cols = np.array(cap_cols, dtype=np.intp)
        self._cap_sign = np.array(cap_sign, dtype=float)
        self._cap_which = np.array(cap_which, dtype=np.intp)

        self.vsources = vsources
        self.vsrc_branch = np.array(
            [el.branch_index for el in vsources], dtype=np.intp
        )
        self.isources = isources
        self.isrc_p = np.array([pad(el.p) for el in isources], dtype=np.intp)
        self.isrc_n = np.array([pad(el.n) for el in isources], dtype=np.intp)

        self.capacitors = capacitors
        self.cap_names = [el.name for el in capacitors]
        self.cap_p = np.array([pad(el.p) for el in capacitors], dtype=np.intp)
        self.cap_n = np.array([pad(el.n) for el in capacitors], dtype=np.intp)
        self.cap_c = np.array([el.capacitance_f for el in capacitors], dtype=float)
        self.cap_scatter = np.concatenate((self.cap_p, self.cap_n))
        self._cap_vals = np.empty(2 * len(capacitors))

        self.fet_groups = [
            _FETGroup(fet_devices[key], key[1], fets, pad, jac_idx, size)
            for key, fets in fet_bins.items()
        ]
        # Linear-only circuits have a bias-independent Jacobian: the
        # Newton solver then routes steps through linear_step()'s cached
        # factorization instead of refactorizing every iteration.
        self.linear_only = not self.fet_groups

        # -- per-call buffers ---------------------------------------------------
        self._xpad = np.zeros(size + 1)
        self._prevpad = np.zeros(size + 1)
        self._rpad = np.zeros(size + 1)
        if self.use_sparse:
            self._jac = self._jac_flat = None
        else:
            self._jac = np.zeros((size, size))
            self._jac_flat = self._jac.ravel()
        self._lin_cache: dict[object, _LinearSystem] = {}
        self._cap_stamp: np.ndarray | None = None

        # Shared canonical pattern + one-time symbolic ordering for
        # every sparse Jacobian this plan (or a sweep over it) builds.
        self.sparse_schedule = _SparseSchedule(self) if self.use_sparse else None

    def capacitance_stamp(self) -> np.ndarray:
        """The capacitance matrix C of the AC system ``(G + j w C) x = b``.

        Built once from the compiled capacitor stamp pattern — the same
        ``(rows, cols, sign, which)`` arrays the transient companion
        model scatters through — instead of walking elements into an
        O(size^2) dense loop per analysis.  Dense plans return a
        ``(size, size)`` array; sparse plans return the canonical-
        pattern ``data`` vector (wrap with ``sparse_schedule.matrix``
        for a matrix view).  Cached: callers must not mutate the
        result.
        """
        if self._cap_stamp is None:
            if self.use_sparse:
                self._cap_stamp = self.sparse_schedule.capacitance_data(self.cap_c)
            else:
                stamp = np.zeros((self.size, self.size))
                if self._cap_rows.size:
                    np.add.at(
                        stamp,
                        (self._cap_rows, self._cap_cols),
                        self._cap_sign * self.cap_c[self._cap_which],
                    )
                self._cap_stamp = stamp
        return self._cap_stamp

    # -- linear subsystem cache ---------------------------------------------------
    def _linear_system(self, dt_s: float | None, integrator: str) -> _LinearSystem:
        if dt_s is None:
            key: object = None
        else:
            method = "backward-euler" if integrator == "backward-euler" else "trapezoidal"
            key = (float(dt_s), method)
        cached = self._lin_cache.get(key)
        if cached is not None:
            return cached

        if dt_s is None:
            cap_geq = np.zeros(0)
            rows, cols, vals = self._static_rows, self._static_cols, self._static_vals
        else:
            if integrator == "backward-euler":
                cap_geq = self.cap_c / dt_s
            else:
                cap_geq = 2.0 * self.cap_c / dt_s
            rows = np.concatenate((self._static_rows, self._cap_rows))
            cols = np.concatenate((self._static_cols, self._cap_cols))
            vals = np.concatenate(
                (self._static_vals, self._cap_sign * cap_geq[self._cap_which])
            )

        if self.use_sparse:
            matrix = sparse.coo_matrix(
                (vals, (rows, cols)), shape=(self.size, self.size)
            ).tocsr()
        else:
            matrix = np.zeros((self.size, self.size))
            np.add.at(matrix, (rows, cols), vals)
        linear = _LinearSystem(matrix, cap_geq)
        self._lin_cache[key] = linear
        return linear

    def linear_step(
        self,
        residual: np.ndarray,
        dt_s: float | None = None,
        integrator: str = "trapezoidal",
    ) -> np.ndarray | None:
        """Newton step ``A^-1 (-residual)`` from the cached factorization.

        Only meaningful for linear-only plans (``self.linear_only``),
        whose Jacobian equals the constant matrix for every iterate.
        The LU factors are built once per ``(dt, integrator)`` key with
        the solver's tiny diagonal regularization.  Returns None when
        the matrix cannot be factorized or the solve is non-finite.
        """
        linear = self._linear_system(dt_s, integrator)
        if linear.solve is None:
            if self.use_sparse:
                schedule = self.sparse_schedule
                data = schedule.linear_data(linear).copy()
                data[schedule.diag_pos] += DIAG_REGULARIZATION
                solve = schedule.factor(data)
                if solve is None:
                    return None
                linear.solve = solve
            else:
                matrix = linear.matrix.copy()
                diagonal = np.einsum("ii->i", matrix)
                diagonal += DIAG_REGULARIZATION
                factors = lu_factor(matrix, check_finite=False)
                linear.solve = lambda rhs: lu_solve(factors, rhs, check_finite=False)
        step = linear.solve(-residual)
        return step if np.all(np.isfinite(step)) else None

    # -- evaluation ---------------------------------------------------------------
    def evaluate(
        self,
        x: np.ndarray,
        time_s: float | None = None,
        dt_s: float | None = None,
        previous_x: np.ndarray | None = None,
        integrator: str = "trapezoidal",
        state: dict | None = None,
        source_scale: float = 1.0,
        gmin: float = 0.0,
        gmin_ref: np.ndarray | None = None,
    ):
        """Residual F(x) and Jacobian dF/dx via the compiled plan.

        Dense mode returns views of reused buffers; sparse mode returns a
        fresh ``scipy.sparse`` CSR Jacobian and a reused residual view.
        ``gmin`` adds a shunt conductance from every node to ground;
        with ``gmin_ref`` the shunt anchors at that reference vector
        instead — the pseudo-transient continuation stamp
        ``gmin * (x - gmin_ref)`` (the Jacobian term is identical).
        """
        size = self.size
        xpad = self._xpad
        xpad[:size] = x
        linear = self._linear_system(dt_s, integrator)

        rpad = self._rpad
        rpad[:] = 0.0
        residual = rpad[:size]
        residual += linear.matrix @ x

        if self.vsrc_branch.size:
            levels = np.array([el.level(time_s) for el in self.vsources])
            residual[self.vsrc_branch] -= source_scale * levels
        if self.isrc_p.size:
            currents = source_scale * np.array(
                [el.level(time_s) for el in self.isources]
            )
            np.add.at(rpad, self.isrc_p, currents)
            np.add.at(rpad, self.isrc_n, -currents)

        if dt_s is not None and self.cap_c.size:
            prevpad = self._prevpad
            prevpad[:size] = x if previous_x is None else previous_x
            history = self.cap_state_array(state) if state else None
            rhs = self.cap_history_rhs(prevpad, linear.cap_geq, integrator, history)
            cap_vals = self._cap_vals
            cap_vals[: rhs.size] = rhs
            np.negative(rhs, out=cap_vals[rhs.size :])
            np.add.at(rpad, self.cap_scatter, cap_vals)

        if self.use_sparse:
            schedule = self.sparse_schedule
            data = schedule.linear_data(linear).copy()
            for group, pos in zip(self.fet_groups, schedule.group_pos):
                current, gm, gds = group.linearize(xpad)
                np.add.at(rpad, group.scatter_idx, group.residual_values(current))
                np.add.at(data, pos, group.jacobian_values(gm, gds))
            if gmin > 0.0:
                data[schedule.node_diag_pos] += gmin
            jacobian = schedule.matrix(data)
        else:
            jacobian = self._jac
            np.copyto(jacobian, linear.matrix)
            jac_flat = self._jac_flat
            for group in self.fet_groups:
                if group.use_points:
                    group.stamp_points(xpad, rpad, jac_flat)
                    continue
                current, gm, gds = group.linearize(xpad)
                np.add.at(rpad, group.scatter_idx, group.residual_values(current))
                np.add.at(jac_flat, group.flat, group.jacobian_values(gm, gds))
            if gmin > 0.0:
                diag = np.einsum("ii->i", jacobian)
                diag[: self.n_nodes] += gmin

        if gmin > 0.0:
            residual[: self.n_nodes] += gmin * x[: self.n_nodes]
            if gmin_ref is not None:
                residual[: self.n_nodes] -= gmin * gmin_ref[: self.n_nodes]
        return residual, jacobian

    def evaluate_many(
        self,
        x_stack: np.ndarray,
        time_s: float | None = None,
        dt_s: float | None = None,
        previous_x: np.ndarray | None = None,
        integrator: str = "trapezoidal",
        state: dict | None = None,
        source_scale: float = 1.0,
        gmin: float = 0.0,
        gmin_ref: np.ndarray | None = None,
    ):
        """Residuals ``(k, size)`` and Jacobians ``(k, size, size)`` at a
        stack of iterates sharing one evaluation context.

        The batched line-search entry: :func:`repro.circuit.solver.
        newton_solve` evaluates a whole damping ladder of trial points
        in one call, so each FET group costs one ``linearize`` over all
        trials instead of one per trial.  Dense plans only (the Newton
        solver guards); every arithmetic step is elementwise per row
        (batched gemv, per-row scatters), mirroring
        :meth:`evaluate` term by term.  Returns fresh arrays — rows
        survive subsequent calls.

        This kernel deliberately parallels
        ``sweep._BatchedNewtonEngine._evaluate_batch`` (which threads
        per-instance variation arrays and per-instance companion
        state); a stamp fix applied here almost certainly applies
        there too.
        """
        x_stack = np.asarray(x_stack, dtype=float)
        k = x_stack.shape[0]
        size = self.size
        row_pad = np.arange(k, dtype=np.intp)[:, None] * (size + 1)
        row_jac = np.arange(k, dtype=np.intp)[:, None] * (size * size)
        linear = self._linear_system(dt_s, integrator)

        xpad = np.zeros((k, size + 1))
        xpad[:, :size] = x_stack
        rpad = np.zeros((k, size + 1))
        rpad[:, :size] = np.matmul(linear.matrix, x_stack[..., None])[..., 0]
        rflat = rpad.reshape(-1)
        if self.vsrc_branch.size:
            levels = np.array([el.level(time_s) for el in self.vsources])
            rpad[:, self.vsrc_branch] -= source_scale * levels
        if self.isrc_p.size:
            currents = source_scale * np.array(
                [el.level(time_s) for el in self.isources]
            )
            # ufunc.at does not broadcast shared values against a stack
            # of per-row indices (it reads out of bounds); broadcast
            # explicitly.
            shared = np.broadcast_to(currents, (k, currents.size))
            np.add.at(rflat, row_pad + self.isrc_p, shared)
            np.add.at(rflat, row_pad + self.isrc_n, -shared)
        if dt_s is not None and self.cap_c.size:
            if previous_x is not None:
                prevpad = np.zeros(size + 1)
                prevpad[:size] = previous_x
            else:
                # The scalar path anchors the companion model at the
                # iterate itself when no previous solution is given.
                prevpad = xpad
            history = self.cap_state_array(state) if state else None
            rhs = self.cap_history_rhs(prevpad, linear.cap_geq, integrator, history)
            cap_vals = np.concatenate((rhs, -rhs), axis=-1)
            np.add.at(
                rflat,
                row_pad + self.cap_scatter,
                np.broadcast_to(cap_vals, (k,) + cap_vals.shape[-1:]),
            )

        jac = np.empty((k, size, size))
        jac[:] = linear.matrix
        jflat = jac.reshape(-1)
        for group in self.fet_groups:
            v = xpad[:, group.gather_dgs]  # (k, 3, count)
            vgs = v[:, 1] - v[:, 2]
            vds = v[:, 0] - v[:, 2]
            if group.sign is None:
                current, gm, gds = group.device.linearize(vgs, vds, group.delta_v)
            else:
                current, gm, gds = group.device.linearize(
                    group.sign * vgs, group.sign * vds, group.delta_v
                )
                current = group.sign * current
            rvals = np.concatenate((current, -current), axis=1)
            np.add.at(rflat, row_pad + group.scatter_idx, rvals)
            vals6 = np.stack(
                (gds, gm, -(gm + gds), -gds, -gm, gm + gds), axis=1
            )  # (k, 6, count), entry order matching group.take
            entries = vals6.reshape(k, 6 * group.count)[:, group.take]
            np.add.at(jflat, row_jac + group.flat, entries)

        residual = rpad[:, :size]
        if gmin > 0.0:
            n_nodes = self.n_nodes
            residual[:, :n_nodes] += gmin * x_stack[:, :n_nodes]
            if gmin_ref is not None:
                residual[:, :n_nodes] -= gmin * gmin_ref[:n_nodes]
            diag = np.einsum("ijj->ij", jac)
            diag[:, :n_nodes] += gmin
        return residual, jac

    def sparse_newton_step(
        self, jacobian: sparse.csr_matrix, residual: np.ndarray
    ) -> np.ndarray | None:
        """Newton step ``J^-1 (-residual)`` for a canonical-pattern CSR
        Jacobian (as returned by :meth:`evaluate` in sparse mode).

        Numeric-only refactorization against the schedule's one-time
        symbolic ordering, with the solver's diagonal regularization
        applied to a copy of the data.  Returns None when the matrix
        is singular or the solve is non-finite.
        """
        data = jacobian.data.copy()
        data[self.sparse_schedule.diag_pos] += DIAG_REGULARIZATION
        solve = self.sparse_schedule.factor(data)
        if solve is None:
            return None
        step = solve(-residual)
        return step if np.all(np.isfinite(step)) else None

    # -- transient support ----------------------------------------------------------
    def cap_state_array(self, state: dict | None) -> np.ndarray:
        """Capacitor history currents as an array in ``cap_names`` order."""
        if not state:
            return np.zeros(len(self.cap_names))
        return np.array([state.get(name, 0.0) for name in self.cap_names])

    def cap_history_rhs(
        self,
        prevpad: np.ndarray,
        cap_geq: np.ndarray,
        integrator: str,
        state_currents: np.ndarray | None = None,
    ) -> np.ndarray:
        """Companion-model history RHS per capacitor: ``-geq v_prev - i_prev``.

        Batchable: ``prevpad`` is a padded previous-solution stack of
        shape ``(..., size + 1)`` (ground in the trailing slot) and
        ``state_currents`` — the trapezoidal history currents, ignored
        under backward Euler — broadcasts as ``(..., n_caps)``.  The
        scalar :meth:`evaluate` path and the batched sweep engine share
        this arithmetic, so their residuals agree bitwise.
        """
        v_prev = prevpad[..., self.cap_p] - prevpad[..., self.cap_n]
        rhs = -cap_geq * v_prev
        if integrator != "backward-euler" and state_currents is not None:
            rhs = rhs - state_currents
        return rhs

    def cap_state_update(
        self,
        xpad: np.ndarray,
        prevpad: np.ndarray,
        dt_s: float,
        integrator: str,
        state_currents: np.ndarray | None = None,
    ) -> np.ndarray:
        """New history currents at an accepted solution (batchable).

        ``xpad``/``prevpad`` are padded solution stacks ``(..., size +
        1)``; returns ``(..., n_caps)`` trapezoidal (or backward-Euler)
        capacitor currents.  The scalar per-step update and the batched
        transient engine both route through this method.
        """
        v_now = xpad[..., self.cap_p] - xpad[..., self.cap_n]
        v_prev = prevpad[..., self.cap_p] - prevpad[..., self.cap_n]
        if integrator == "backward-euler":
            return self.cap_c / dt_s * (v_now - v_prev)
        geq = 2.0 * self.cap_c / dt_s
        i_prev = 0.0 if state_currents is None else state_currents
        return geq * (v_now - v_prev) - i_prev

    def update_capacitor_state(
        self,
        x: np.ndarray,
        previous_x: np.ndarray,
        dt_s: float,
        integrator: str,
        state: dict,
    ) -> None:
        """Vectorised trapezoidal/backward-Euler history update (in place)."""
        if not self.cap_c.size:
            return
        size = self.size
        xpad = self._xpad
        xpad[:size] = x
        prevpad = self._prevpad
        prevpad[:size] = previous_x
        i_prev = self.cap_state_array(state) if integrator != "backward-euler" else None
        i_new = self.cap_state_update(xpad, prevpad, dt_s, integrator, i_prev)
        for name, value in zip(self.cap_names, i_new):
            state[name] = float(value)

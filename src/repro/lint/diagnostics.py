"""Diagnostic model and the rule registry (id, summary, invariant)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic", "RULES", "AST_RULES", "REGISTRY_RULES"]


# rule id -> (one-line summary, invariant it guards / failure it prevents)
RULES: dict[str, tuple[str, str]] = {
    "RNG001": (
        "seedless np.random.default_rng()",
        "Library code drawing OS entropy breaks bitwise reproducibility; "
        "thread an explicit seed/Generator (see circuit/sweep.py's "
        "SeedSequence-substream idiom).",
    ),
    "RNG002": (
        "entropy-seeded np.random.SeedSequence()",
        "SeedSequence() without arguments pulls OS entropy, so two runs of "
        "the same sweep disagree bitwise and cache keys stop meaning "
        "anything.",
    ),
    "RNG003": (
        "stdlib random module",
        "random.* uses hidden unseedable-per-call global state that worker "
        "processes inherit unpredictably; use numpy Generators spawned from "
        "a SeedSequence.",
    ),
    "RNG004": (
        "wall-clock read in library code",
        "time.time()/datetime.now() make results depend on when they ran, "
        "which poisons fingerprints and golden files (perf_counter / "
        "monotonic for durations are fine).",
    ),
    "FPR001": (
        "constructor parameter missing from surrogate_token()",
        "A physics parameter not in the token means two differently "
        "parameterised models share a cache entry: silent stale-cache hits. "
        "Every attribute assigned verbatim from a constructor parameter "
        "must appear in the token (derived attributes are exempt).",
    ),
    "FPR002": (
        "subclass state invisible to the inherited surrogate_token()",
        "A subclass that stores new constructor state but inherits its "
        "parent's token fingerprints identically to the parent: override "
        "surrogate_token to extend the parent tuple.",
    ),
    "FPR003": (
        "registered FETModel is not fingerprintable",
        "A concrete device that is neither a dataclass nor provides "
        "surrogate_token cannot be content-addressed: the disk surrogate "
        "cache is silently disabled for it.",
    ),
    "PRT001": (
        "mirror-symmetric model overrides currents()",
        "The source/drain mirror transform lives in exactly one place "
        "(FETModel.currents over the _forward_currents hook); a per-class "
        "currents override can drift from it for vds < 0.",
    ),
    "PRT002": (
        "linearize overridden without linearize_point (or vice versa)",
        "The batched and scalar small-signal paths must agree; overriding "
        "only one leaves the other on finite differences and the two "
        "solver paths return different conductances.",
    ),
    "PRT003": (
        "non-mirror-symmetric device without explicit operating_box",
        "The default box tabulates only vds >= 0; an asymmetric device "
        "must declare a two-sided box or the surrogate compiler mirrors "
        "currents that are not mirror-symmetric.",
    ),
    "IOW001": (
        "direct file write bypassing the atomic-write helpers",
        "open(..., 'w')/Path.write_text under cache or checkpoint roots "
        "can be seen half-written by concurrent readers and leaves torn "
        "files after a crash; use mkstemp + os.replace (see "
        "resilience.atomic_write_text, surrogate._store_cached).",
    ),
    "PKN001": (
        "sweep kernel is not a module-level function",
        "Kernels handed to SweepPlan/run_supervised cross a process-pool "
        "boundary: lambdas and nested functions do not pickle, and "
        "closures smuggle unfingerprinted state into workers.",
    ),
    "PKN002": (
        "sweep kernel uses global state",
        "A kernel mutating module globals gives different results "
        "depending on which worker ran which chunk; all kernel inputs "
        "must travel through (params, rng, payload).",
    ),
    "MRG001": (
        "vectorized SweepPlan without a merge-boundary validator",
        "Vectorized kernels return opaque blocks the engine splits and "
        "merges; without an entry validator a shape/dtype bug surfaces "
        "as corrupted statistics instead of a SweepExecutionError at the "
        "merge boundary (the _mc_entry_validator pattern).",
    ),
    "LNT001": (
        "malformed repro-lint marker",
        "Allowlist markers must name known rules and carry a reason: "
        "# repro-lint: ok[RULE] -- why this is safe.",
    ),
    "LNT002": (
        "unused repro-lint marker",
        "A marker that suppresses nothing is stale documentation; remove "
        "it or move it to the line that needs it.",
    ),
}

# Rules produced by import-time registry introspection (vs pure AST).
REGISTRY_RULES = frozenset({"FPR003", "PRT001", "PRT002"})
AST_RULES = frozenset(RULES) - REGISTRY_RULES - {"LNT001", "LNT002"}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: rule id, location, human-readable message."""

    file: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
        }

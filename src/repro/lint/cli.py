"""Command-line entry point: ``python -m repro.lint`` / ``repro lint``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.diagnostics import RULES
from repro.lint.runner import default_root, run_lint

__all__ = ["main"]


def _list_rules() -> None:
    for rule, (summary, invariant) in RULES.items():
        print(f"{rule}  {summary}")
        print(f"        {invariant}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Contract-enforcing static analysis for src/repro: "
        "determinism, cache-fingerprint and device-protocol invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable diagnostics"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every rule and exit"
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip import-time FETModel registry introspection "
        "(FPR003/PRT001/PRT002)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    paths = args.paths or [default_root()]
    result = run_lint(paths, registry=not args.no_registry)

    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        cwd = str(Path.cwd())
        for finding in result.findings:
            rendered = finding.render()
            if rendered.startswith(cwd):
                rendered = rendered[len(cwd) + 1 :]
            print(rendered)
        print(
            f"repro lint: {len(result.findings)} finding(s), "
            f"{len(result.suppressed)} suppressed by marker, "
            f"{result.n_files} file(s) scanned",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Orchestration: collect files, run AST + registry rules, apply markers."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.astrules import check_module
from repro.lint.diagnostics import REGISTRY_RULES, Diagnostic
from repro.lint.markers import Marker, extract_markers
from repro.lint.registry import check_registry, default_registry_modules

__all__ = ["LintResult", "run_lint"]


@dataclass
class LintResult:
    """Outcome of one lint pass."""

    findings: list[Diagnostic] = field(default_factory=list)
    suppressed: list[tuple[Diagnostic, Marker]] = field(default_factory=list)
    n_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_scanned": self.n_files,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [
                {**finding.to_dict(), "reason": marker.reason}
                for finding, marker in self.suppressed
            ],
        }


def _collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def default_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def run_lint(
    paths: list[Path] | None = None,
    *,
    registry: bool = True,
    registry_modules: tuple[str, ...] | None = None,
) -> LintResult:
    """Run every rule family over ``paths`` (default: the repro package).

    ``registry=False`` skips the import-time FETModel introspection
    (FPR003/PRT001/PRT002) — useful when linting code that is not
    importable.  Markers covering only registry rules are then exempt
    from the unused-marker check.
    """
    roots = [p.resolve() for p in (paths or [default_root()])]
    files = _collect_files(roots)

    raw: list[Diagnostic] = []
    markers: list[Marker] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        key = str(file)
        file_markers, malformed = extract_markers(key, source)
        markers.extend(file_markers)
        raw.extend(malformed)
        try:
            tree = ast.parse(source, filename=key)
        except SyntaxError as error:
            raw.append(
                Diagnostic(
                    key,
                    error.lineno or 1,
                    "LNT001",
                    f"file does not parse: {error.msg}",
                )
            )
            continue
        raw.extend(check_module(key, tree))

    if registry:
        modules = registry_modules or default_registry_modules()
        raw.extend(check_registry(roots, modules))

    by_file: dict[str, list[Marker]] = {}
    for marker in markers:
        by_file.setdefault(marker.file, []).append(marker)

    result = LintResult(n_files=len(files))
    for finding in sorted(raw):
        suppressor = next(
            (
                m
                for m in by_file.get(finding.file, ())
                if finding.rule != "LNT001" and m.suppresses(finding)
            ),
            None,
        )
        if suppressor is None:
            result.findings.append(finding)
        else:
            suppressor.used = True
            result.suppressed.append((finding, suppressor))

    for marker in markers:
        if marker.used:
            continue
        if not registry and set(marker.rules) <= REGISTRY_RULES:
            continue
        result.findings.append(
            Diagnostic(
                marker.file,
                marker.line,
                "LNT002",
                f"marker ok[{', '.join(marker.rules)}] suppresses nothing; "
                "remove it or move it to the line that needs it",
            )
        )
    result.findings.sort()
    return result

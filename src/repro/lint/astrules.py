"""AST rule families: RNG discipline, fingerprint completeness,
protocol coherence, atomic writes, pool-kernel safety, merge validation.

Each public entry point takes a parsed module and returns diagnostics;
:func:`check_module` runs them all.  The rules are deliberately
structural (no string matching on source text): a call is flagged by
what it resolves to in the tree, so ``np.random.default_rng(seed)`` and
``default_rng(seq)`` pass while any argumentless spelling fails.
"""

from __future__ import annotations

import ast

from repro.lint.diagnostics import Diagnostic

__all__ = ["check_module"]

# Attribute names whose argumentless call means "draw OS entropy".
_SEEDLESS = {"default_rng": "RNG001", "SeedSequence": "RNG002"}

# (attribute, allowed bases) -> wall-clock reads.  perf_counter /
# monotonic measure durations and stay legal.
_WALL_CLOCK = {
    "time": {"time"},
    "time_ns": {"time"},
    "now": {"datetime"},
    "utcnow": {"datetime"},
    "today": {"date", "datetime"},
}

# Simple coercions: ``self.x = float(x)`` still counts as storing the
# constructor parameter ``x`` verbatim for fingerprint purposes.
_CASTS = {"float", "int", "bool", "str", "tuple", "frozenset"}


def check_module(path: str, tree: ast.Module) -> list[Diagnostic]:
    checker = _FileChecker(path, tree)
    checker.visit(tree)
    checker.finish()
    return checker.findings


def _func_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _base_name(node: ast.expr) -> str | None:
    """Name of the object a call is made on: ``time.time`` -> 'time'."""
    if isinstance(node, ast.Attribute):
        value = node.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
    return None


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class _FileChecker(ast.NodeVisitor):
    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.findings: list[Diagnostic] = []
        # Module-level function defs and imported names: the only things
        # a pool kernel reference may resolve to.
        self.module_funcs: dict[str, ast.FunctionDef] = {}
        self.imported: set[str] = set()
        self.classes: dict[str, ast.ClassDef] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_funcs[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.imported.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        self.imported.add(alias.asname or alias.name)
        # Names of functions defined inside other functions (unpicklable
        # as pool kernels), and kernels to re-examine for PKN002.
        self.nested_funcs: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if (
                        child is not node
                        and isinstance(
                            child, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                    ):
                        self.nested_funcs.add(child.name)
        self._kernel_names: set[str] = set()

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Diagnostic(self.path, node.lineno, rule, message))

    # -- imports: stdlib random ------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._report(
                    node,
                    "RNG003",
                    "stdlib random has hidden global state; use a numpy "
                    "Generator spawned from an explicit SeedSequence",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._report(
                node,
                "RNG003",
                "stdlib random has hidden global state; use a numpy "
                "Generator spawned from an explicit SeedSequence",
            )
        self.generic_visit(node)

    # -- calls: RNG, wall clock, writes, sweep construction --------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _func_name(node.func)
        if name in _SEEDLESS:
            self._check_seedless(node, name)
        if name in _WALL_CLOCK and _base_name(node.func) in _WALL_CLOCK[name]:
            self._report(
                node,
                "RNG004",
                f"wall-clock read {_base_name(node.func)}.{name}() makes "
                "results depend on when they ran; pass timestamps in from "
                "the boundary (perf_counter/monotonic are fine for "
                "durations)",
            )
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            self._check_open(node)
        if name in {"write_text", "write_bytes"} and isinstance(
            node.func, ast.Attribute
        ):
            self._report(
                node,
                "IOW001",
                f"direct {name}() is not crash-safe; route through "
                "repro.circuit.resilience.atomic_write_text "
                "(mkstemp + os.replace)",
            )
        if isinstance(node.func, ast.Name) and node.func.id == "SweepPlan":
            self._check_sweep_plan(node)
        if name == "run_supervised":
            chunk_fn = _keyword(node, "chunk_fn")
            if chunk_fn is not None:
                self._check_kernel(node, chunk_fn, "run_supervised chunk_fn")
        self.generic_visit(node)

    def _check_seedless(self, node: ast.Call, name: str) -> None:
        args = node.args
        seedless = not args and not node.keywords
        if (
            len(args) == 1
            and isinstance(args[0], ast.Constant)
            and args[0].value is None
        ):
            seedless = True
        if seedless:
            self._report(
                node,
                _SEEDLESS[name],
                f"{name}() without a seed draws OS entropy; library code "
                "must thread an explicit seed/SeedSequence from its caller",
            )

    def _check_open(self, node: ast.Call) -> None:
        mode = node.args[1] if len(node.args) > 1 else _keyword(node, "mode")
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and set(mode.value) & set("wax+")
        ):
            self._report(
                node,
                "IOW001",
                f"open(..., {mode.value!r}) writes in place; a crash or "
                "concurrent reader sees a torn file — write to a mkstemp "
                "temp and os.replace() it (see resilience.atomic_write_text)",
            )

    def _check_sweep_plan(self, node: ast.Call) -> None:
        kernel = node.args[0] if node.args else _keyword(node, "kernel")
        if kernel is not None:
            self._check_kernel(node, kernel, "SweepPlan kernel")
        vectorized = _keyword(node, "vectorized")
        if (
            isinstance(vectorized, ast.Constant)
            and vectorized.value is True
            and _keyword(node, "validate") is None
        ):
            self._report(
                node,
                "MRG001",
                "vectorized SweepPlan without validate=: block split/merge "
                "bugs surface as corrupted statistics instead of a "
                "SweepExecutionError; register an entry validator "
                "(the _mc_entry_validator pattern)",
            )

    def _check_kernel(self, call: ast.Call, kernel: ast.expr, role: str) -> None:
        if isinstance(kernel, ast.Lambda):
            self._report(
                call,
                "PKN001",
                f"{role} is a lambda: not picklable across the process-pool "
                "boundary; define a module-level function",
            )
            return
        if not isinstance(kernel, ast.Name):
            self._report(
                call,
                "PKN001",
                f"{role} is not a plain function reference; workers must "
                "import it by module-level name to unpickle it",
            )
            return
        if kernel.id in self.module_funcs:
            self._kernel_names.add(kernel.id)
            return
        if kernel.id in self.imported:
            return  # defined (module-level) elsewhere; pickling resolves it
        if kernel.id in self.nested_funcs:
            self._report(
                call,
                "PKN001",
                f"{role} {kernel.id!r} is a nested function: closures do "
                "not pickle and smuggle unfingerprinted state into workers",
            )
        else:
            self._report(
                call,
                "PKN001",
                f"{role} {kernel.id!r} does not resolve to a module-level "
                "function in this module; workers cannot verifiably "
                "unpickle it",
            )

    def finish(self) -> None:
        """Deferred checks that need the whole module visited first."""
        for name in sorted(self._kernel_names):
            func = self.module_funcs[name]
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    self.findings.append(
                        Diagnostic(
                            self.path,
                            node.lineno,
                            "PKN002",
                            f"sweep kernel {name!r} declares "
                            f"global {', '.join(node.names)}: kernel inputs "
                            "must travel through (params, rng, payload)",
                        )
                    )

    # -- classes: fingerprints and protocol coherence --------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        token = methods.get("surrogate_token")
        init = methods.get("__init__")
        param_attrs = self._param_attrs(node, init)
        if token is not None:
            reads = {
                child.attr
                for child in ast.walk(token)
                if isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and child.value.id == "self"
            }
            for attr, assign_line in param_attrs:
                if attr not in reads:
                    self.findings.append(
                        Diagnostic(
                            self.path,
                            assign_line,
                            "FPR001",
                            f"constructor parameter stored as self.{attr} "
                            "never reaches surrogate_token(): two models "
                            f"differing only in {attr!r} would share a "
                            "cache entry",
                        )
                    )
        elif param_attrs and self._ancestor_defines(node, "surrogate_token"):
            self._report(
                node,
                "FPR002",
                f"{node.name} stores new constructor state "
                f"({', '.join(a for a, _ in param_attrs)}) but inherits "
                "surrogate_token() from its base: instances differing in "
                "the new state fingerprint identically",
            )

        self._check_mirror_coherence(node, methods, init)
        self.generic_visit(node)

    def _param_attrs(
        self, node: ast.ClassDef, init: ast.FunctionDef | None
    ) -> list[tuple[str, int]]:
        """(attr, line) for state stored verbatim from constructor params.

        Covers ``self.x = x`` and simple coercions ``self.x = float(x)``
        in ``__init__``, plus dataclass field declarations.  Attributes
        computed from other values are treated as derived and exempt.
        """
        out: list[tuple[str, int]] = []
        if init is not None:
            params = {
                arg.arg
                for arg in (
                    init.args.posonlyargs + init.args.args + init.args.kwonlyargs
                )
                if arg.arg != "self"
            }
            for stmt in ast.walk(init):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = stmt.value
                if isinstance(value, ast.Call) and (
                    isinstance(value.func, ast.Name)
                    and value.func.id in _CASTS
                    and len(value.args) == 1
                ):
                    value = value.args[0]
                if isinstance(value, ast.Name) and value.id in params:
                    out.append((target.attr, stmt.lineno))
        if self._is_dataclass(node):
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and "ClassVar" not in ast.unparse(stmt.annotation)
                ):
                    out.append((stmt.target.id, stmt.lineno))
        return out

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            name = _func_name(deco.func if isinstance(deco, ast.Call) else deco)
            if name == "dataclass":
                return True
        return False

    def _ancestors(self, node: ast.ClassDef) -> list[ast.ClassDef]:
        """Base classes resolvable inside this module, transitively."""
        out: list[ast.ClassDef] = []
        queue = list(node.bases)
        while queue:
            base = queue.pop()
            if isinstance(base, ast.Name) and base.id in self.classes:
                ancestor = self.classes[base.id]
                if ancestor not in out:
                    out.append(ancestor)
                    queue.extend(ancestor.bases)
        return out

    def _ancestor_defines(self, node: ast.ClassDef, method: str) -> bool:
        return any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == method
            for ancestor in self._ancestors(node)
            for stmt in ancestor.body
        )

    def _check_mirror_coherence(
        self,
        node: ast.ClassDef,
        methods: dict[str, ast.FunctionDef],
        init: ast.FunctionDef | None,
    ) -> None:
        """PRT003: a device whose mirror symmetry is disabled (or bias-
        dependent) must declare its own two-sided operating_box."""
        flag_line: int | None = None
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "mirror_symmetric"
                    for t in stmt.targets
                )
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is False
            ):
                flag_line = stmt.lineno
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "mirror_symmetric"
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is False
            ):
                flag_line = stmt.lineno
        if flag_line is None and init is not None:
            for stmt in ast.walk(init):
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Attribute)
                    and stmt.targets[0].attr == "mirror_symmetric"
                    and isinstance(stmt.targets[0].value, ast.Name)
                    and stmt.targets[0].value.id == "self"
                ):
                    flag_line = stmt.lineno
        if flag_line is None:
            return
        if "operating_box" in methods or self._ancestor_defines(
            node, "operating_box"
        ):
            return
        self.findings.append(
            Diagnostic(
                self.path,
                flag_line,
                "PRT003",
                f"{node.name} disables mirror_symmetric but keeps the "
                "default operating_box (vds >= 0 only): the surrogate "
                "compiler would mirror currents that are not symmetric — "
                "declare a two-sided box",
            )
        )

"""Inline allowlist markers: ``# repro-lint: ok[RULE, ...] -- reason``.

A marker suppresses matching findings on its own physical line; a
marker on a comment-only line covers the next non-blank source line
instead (useful above ``class``/``def`` statements).  The reason text
after the rule list is mandatory — a suppression without a recorded
justification is itself a finding (LNT001), and a marker that never
suppresses anything is reported as stale (LNT002).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.diagnostics import RULES, Diagnostic

__all__ = ["Marker", "extract_markers"]

_MARKER_RE = re.compile(r"#\s*repro-lint:\s*(.*)$")
_OK_RE = re.compile(r"ok\[([^\]]*)\]\s*(?:--|:)?\s*(.*)$")


@dataclass
class Marker:
    """One parsed allowlist marker."""

    file: str
    line: int  # line the marker text sits on
    target_line: int  # line whose findings it suppresses
    rules: tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        return (
            diagnostic.line == self.target_line and diagnostic.rule in self.rules
        )


def extract_markers(
    path: str, source: str
) -> tuple[list[Marker], list[Diagnostic]]:
    """Parse every marker in ``source``; malformed ones become LNT001."""
    markers: list[Marker] = []
    malformed: list[Diagnostic] = []
    lines = source.splitlines()
    for lineno, text, own_line in _comments(source):
        match = _MARKER_RE.search(text)
        if match is None:
            continue
        ok = _OK_RE.match(match.group(1).strip())
        if ok is None:
            malformed.append(
                Diagnostic(
                    path,
                    lineno,
                    "LNT001",
                    "marker must have the form "
                    "'# repro-lint: ok[RULE] -- reason'",
                )
            )
            continue
        rules = tuple(r.strip() for r in ok.group(1).split(",") if r.strip())
        reason = ok.group(2).strip()
        unknown = [r for r in rules if r not in RULES]
        if not rules or unknown:
            what = f"unknown rule id(s): {', '.join(unknown)}" if unknown else (
                "empty rule list"
            )
            malformed.append(Diagnostic(path, lineno, "LNT001", what))
            continue
        if not reason:
            malformed.append(
                Diagnostic(
                    path,
                    lineno,
                    "LNT001",
                    f"marker ok[{', '.join(rules)}] is missing its reason "
                    "('-- why this is safe')",
                )
            )
            continue
        target = lineno
        if own_line:
            # Comment-only line: the marker documents the next source line.
            target = _next_source_line(lines, lineno)
        markers.append(Marker(path, lineno, target, rules, reason))
    return markers, malformed


def _comments(source: str):
    """(line, text, is_own_line) for every real comment token.

    Tokenizing (instead of regex over raw lines) keeps marker examples
    inside docstrings and string literals from being parsed as markers.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        lineno, col = token.start
        own_line = not token.line[:col].strip()
        yield lineno, token.string, own_line


def _next_source_line(lines: list[str], marker_lineno: int) -> int:
    for offset, text in enumerate(lines[marker_lineno:], start=1):
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            return marker_lineno + offset
    return marker_lineno

"""repro.lint: contract-enforcing static analysis for this repository.

The repo's value rests on three contracts nothing used to check by
machine: bitwise determinism of the sweep engines (seed-substream
discipline), content-addressed cache correctness (``surrogate_token``
must cover every physics-affecting parameter), and the consolidated
vectorized device protocol.  This package walks the ``src/repro`` ASTs
and introspects the imported device registry to enforce them:

========  ==============================================================
rule      invariant guarded
========  ==============================================================
RNG001    no seedless ``np.random.default_rng()`` in library code
RNG002    no entropy-seeded ``np.random.SeedSequence()``
RNG003    no stdlib ``random`` module (unseedable global state)
RNG004    no wall-clock reads (``time.time``, ``datetime.now``, ...)
FPR001    ``surrogate_token()`` covers every constructor parameter
FPR002    subclasses with new state must override ``surrogate_token``
FPR003    registered FETModels are fingerprintable (disk cache works)
PRT001    mirror-symmetric models use ``_forward_currents``, not
          a ``currents`` override
PRT002    ``linearize``/``linearize_point`` are overridden together
PRT003    non-mirror-symmetric devices declare a two-sided
          ``operating_box``
IOW001    cache/checkpoint writes go through mkstemp + ``os.replace``
PKN001    sweep kernels are module-level (picklable) functions
PKN002    sweep kernels do not touch ``global`` state
MRG001    vectorized ``SweepPlan`` consumers register an entry validator
LNT001    allowlist markers are well-formed and carry a reason
LNT002    allowlist markers actually suppress something
========  ==============================================================

A finding is silenced — never by configuration, only in place — with an
inline marker carrying a mandatory reason::

    some_code()  # repro-lint: ok[RNG002] -- documented entropy helper

A marker on a comment-only line covers the next line instead.  Run the
pass with ``python -m repro.lint`` or ``repro lint`` (add ``--json`` for
machine-readable diagnostics).
"""

from repro.lint.diagnostics import Diagnostic, RULES
from repro.lint.runner import LintResult, run_lint

__all__ = ["Diagnostic", "LintResult", "RULES", "run_lint"]

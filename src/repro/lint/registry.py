"""Import-time device-registry rules: FPR003, PRT001, PRT002.

AST walkers cannot see classes assembled dynamically or inherited
across modules, so these rules import the device modules and walk the
real ``FETModel`` subclass tree.  Findings are anchored to real source
lines via :mod:`inspect`, which keeps the inline-marker protocol
working for them too.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
import pkgutil
from pathlib import Path

from repro.lint.diagnostics import Diagnostic

__all__ = ["default_registry_modules", "check_registry"]


def default_registry_modules() -> tuple[str, ...]:
    """Every device module plus the sweep engine (ScaledShiftedFET)."""
    import repro.devices

    names = [
        f"repro.devices.{module.name}"
        for module in pkgutil.iter_modules(repro.devices.__path__)
    ]
    names.append("repro.circuit.sweep")
    return tuple(names)


def _all_subclasses(cls: type) -> set[type]:
    out: set[type] = set()
    for sub in cls.__subclasses__():
        out.add(sub)
        out |= _all_subclasses(sub)
    return out


def _source_location(obj) -> tuple[str, int] | None:
    try:
        path = inspect.getsourcefile(obj)
        _, line = inspect.getsourcelines(obj)
    except (OSError, TypeError):
        return None
    if path is None:
        return None
    return str(Path(path).resolve()), line


def check_registry(
    roots: list[Path], modules: tuple[str, ...]
) -> list[Diagnostic]:
    """Introspect every concrete FETModel defined under ``roots``."""
    from repro.devices.base import FETModel

    for name in modules:
        importlib.import_module(name)

    resolved_roots = [root.resolve() for root in roots]
    findings: list[Diagnostic] = []
    for cls in sorted(_all_subclasses(FETModel), key=lambda c: c.__qualname__):
        if inspect.isabstract(cls):
            continue
        location = _source_location(cls)
        if location is None:
            continue
        path, class_line = location
        if not any(path.startswith(str(root)) for root in resolved_roots):
            continue

        if not dataclasses.is_dataclass(cls) and not hasattr(
            cls, "surrogate_token"
        ):
            findings.append(
                Diagnostic(
                    path,
                    class_line,
                    "FPR003",
                    f"{cls.__name__} is neither a dataclass nor provides "
                    "surrogate_token(): it cannot be content-addressed and "
                    "the disk surrogate cache is silently disabled for it",
                )
            )

        if "currents" in cls.__dict__ and getattr(cls, "mirror_symmetric", True):
            method_location = _source_location(cls.__dict__["currents"])
            method_line = method_location[1] if method_location else class_line
            findings.append(
                Diagnostic(
                    path,
                    method_line,
                    "PRT001",
                    f"{cls.__name__} overrides currents() while "
                    "mirror_symmetric: implement the _forward_currents hook "
                    "so the source/drain mirror transform stays in exactly "
                    "one place",
                )
            )

        has_lin = "linearize" in cls.__dict__
        has_point = "linearize_point" in cls.__dict__
        if has_lin != has_point:
            overridden = "linearize" if has_lin else "linearize_point"
            missing = "linearize_point" if has_lin else "linearize"
            method_location = _source_location(cls.__dict__[overridden])
            findings.append(
                Diagnostic(
                    path,
                    method_location[1] if method_location else class_line,
                    "PRT002",
                    f"{cls.__name__} overrides {overridden} but not "
                    f"{missing}: the batched and scalar small-signal paths "
                    "will disagree — override both together",
                )
            )
    return findings

"""Physical constants and carbon-material parameters.

All constants are in SI units unless the name carries an explicit suffix
(``_EV`` for electron-volts, ``_NM`` for nanometres).  The graphene
tight-binding parameters follow the values used throughout the CNT/GNR
device literature the paper builds on (Ouyang et al., APL 89, 203107;
Rahman et al., IEEE TED 50, 1853).
"""

from __future__ import annotations

import math

# --- fundamental constants (CODATA, SI) ---------------------------------
Q = 1.602176634e-19
"""Elementary charge [C]."""

H = 6.62607015e-34
"""Planck constant [J s]."""

HBAR = H / (2.0 * math.pi)
"""Reduced Planck constant [J s]."""

KB = 1.380649e-23
"""Boltzmann constant [J/K]."""

KB_EV = KB / Q
"""Boltzmann constant [eV/K]."""

M0 = 9.1093837015e-31
"""Free-electron mass [kg]."""

EPS0 = 8.8541878128e-12
"""Vacuum permittivity [F/m]."""

# --- graphene / carbon-nanotube tight-binding parameters ----------------
A_CC_NM = 0.142
"""Carbon-carbon bond length [nm]."""

A_LATTICE_NM = A_CC_NM * math.sqrt(3.0)
"""Graphene lattice constant a = |a1| = |a2| ~ 0.246 nm."""

GAMMA0_EV = 3.0
"""Nearest-neighbour hopping energy [eV].

Values between 2.5 and 3.1 eV appear in the literature; 3.0 eV is the
value that makes E_g = 2 a_cc gamma0 / d match the measured gap of
~0.85 eV nm / d used by the CNT-FET papers cited by Kreupl.
"""

VFERMI = 3.0 * (A_CC_NM * 1e-9) * GAMMA0_EV * Q / (2.0 * HBAR)
"""Graphene Fermi velocity [m/s] implied by (a_cc, gamma0) ~ 9.7e5 m/s."""

# --- conductance quanta --------------------------------------------------
G0 = 2.0 * Q * Q / H
"""Conductance quantum (spin-degenerate single mode) [S] ~ 77.5 uS."""

R0_OHM = 1.0 / G0
"""Resistance quantum [Ohm] ~ 12.9 kOhm."""

CNT_QUANTUM_RESISTANCE_OHM = H / (4.0 * Q * Q)
"""Minimum two-terminal resistance of a CNT (4 modes: spin x valley) ~ 6.45 kOhm."""

# --- convenient thermal helpers ------------------------------------------
ROOM_TEMPERATURE_K = 300.0


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Thermal voltage kT/q [V] at the given temperature."""
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return KB_EV * temperature_k


def subthreshold_limit_mv_per_decade(
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Thermionic subthreshold-swing limit kT/q ln(10) [mV/decade] (~59.5 at 300 K)."""
    return thermal_voltage(temperature_k) * math.log(10.0) * 1e3

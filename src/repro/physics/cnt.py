"""Single-walled carbon-nanotube geometry and zone-folded band structure.

A SWCNT is indexed by its chirality ``(n, m)``.  Rolling up graphene
quantises the transverse wavevector; within the nearest-neighbour
linearised (Dirac-cone) picture the allowed cutting lines sit at distances

    dk_q = (2 / (3 d)) * |3 q + nu|,   nu = (n - m) mod 3 mapped to {0, +-1}

from the K point, giving subband edges

    E_q = a_cc * gamma0 / d * |3 q + nu|        (energies above midgap).

A tube is metallic when nu = 0 (one cutting line passes through K) and
semiconducting otherwise, with gap E_g = 2 a_cc gamma0 / d ~ 0.85 eV nm / d.
Trigonal warping and curvature-induced mini-gaps are neglected; this is the
same level of theory used by the compact CNT-FET models the paper cites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.physics.bands import BandStructure1D, Subband
from repro.physics.constants import A_CC_NM, A_LATTICE_NM, GAMMA0_EV, VFERMI

CNT_DEGENERACY = 4
"""Spin x valley degeneracy of each CNT subband."""


@dataclass(frozen=True)
class Chirality:
    """Chiral indices (n, m) of a single-walled carbon nanotube."""

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 0:
            raise ValueError(f"invalid chirality ({self.n}, {self.m}); need n >= 1, m >= 0")
        if self.m > self.n:
            raise ValueError(
                f"chirality ({self.n}, {self.m}) not in canonical form (m <= n)"
            )

    @property
    def diameter_nm(self) -> float:
        """Tube diameter d = a sqrt(n^2 + n m + m^2) / pi [nm]."""
        n, m = self.n, self.m
        return A_LATTICE_NM * math.sqrt(n * n + n * m + m * m) / math.pi

    @property
    def chiral_angle_deg(self) -> float:
        """Chiral angle in degrees: 0 for zigzag (n, 0), 30 for armchair (n, n)."""
        n, m = self.n, self.m
        return math.degrees(math.atan2(math.sqrt(3.0) * m, 2.0 * n + m))

    @property
    def family(self) -> int:
        """nu = (n - m) mod 3 mapped to {0, 1, -1}; 0 means metallic."""
        nu = (self.n - self.m) % 3
        return nu if nu < 2 else -1

    @property
    def is_metallic(self) -> bool:
        """True for nu = 0 tubes (armchair tubes and every third zigzag)."""
        return self.family == 0

    @property
    def is_semiconducting(self) -> bool:
        return not self.is_metallic

    @property
    def is_zigzag(self) -> bool:
        return self.m == 0

    @property
    def is_armchair(self) -> bool:
        return self.n == self.m

    def bandgap_ev(self, gamma0_ev: float = GAMMA0_EV) -> float:
        """Band gap E_g = 2 a_cc gamma0 / d [eV]; zero for metallic tubes."""
        if self.is_metallic:
            return 0.0
        return 2.0 * A_CC_NM * gamma0_ev / self.diameter_nm

    def subband_edges_ev(
        self, count: int = 4, gamma0_ev: float = GAMMA0_EV
    ) -> list[float]:
        """The ``count`` lowest conduction subband edges [eV above midgap].

        Edges follow the |3q + nu| ladder: {1, 2, 4, 5, 7, 8, ...} x
        (a_cc gamma0 / d) for semiconducting tubes and {0, 3, 3, 6, 6, ...}
        for metallic ones (each listed once; the spin x valley degeneracy
        is carried by the Subband objects).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        scale = A_CC_NM * gamma0_ev / self.diameter_nm
        nu = self.family
        ladder = sorted(abs(3 * q + nu) for q in range(-count - 1, count + 2))
        return [scale * step for step in ladder[:count]]

    def band_structure(
        self, n_subbands: int = 3, gamma0_ev: float = GAMMA0_EV
    ) -> BandStructure1D:
        """Zone-folded band structure with the ``n_subbands`` lowest subbands."""
        edges = self.subband_edges_ev(n_subbands, gamma0_ev)
        subbands = tuple(
            Subband(edge_ev=edge, degeneracy=CNT_DEGENERACY, fermi_velocity=VFERMI)
            for edge in edges
        )
        return BandStructure1D(
            subbands=subbands,
            label=f"CNT({self.n},{self.m})",
            metadata={
                "chirality": (self.n, self.m),
                "diameter_nm": self.diameter_nm,
                "gamma0_ev": gamma0_ev,
            },
        )

    def __str__(self) -> str:
        kind = "metallic" if self.is_metallic else "semiconducting"
        return f"({self.n},{self.m}) {kind} d={self.diameter_nm:.3f} nm"


def enumerate_chiralities(
    diameter_min_nm: float, diameter_max_nm: float
) -> list[Chirality]:
    """All canonical chiralities with diameter in [min, max] nm, sorted by d.

    Used by the growth-distribution models in :mod:`repro.integration` to
    sample realistic chirality populations.
    """
    if diameter_min_nm <= 0.0 or diameter_max_nm < diameter_min_nm:
        raise ValueError(
            f"invalid diameter window [{diameter_min_nm}, {diameter_max_nm}]"
        )
    n_max = int(math.ceil(math.pi * diameter_max_nm / A_LATTICE_NM)) + 1
    found = [
        chirality
        for chirality in _candidate_chiralities(n_max)
        if diameter_min_nm <= chirality.diameter_nm <= diameter_max_nm
    ]
    return sorted(found, key=lambda c: (c.diameter_nm, c.m))


def _candidate_chiralities(n_max: int) -> Iterator[Chirality]:
    for n in range(1, n_max + 1):
        for m in range(0, n + 1):
            yield Chirality(n, m)


def chirality_for_gap(
    target_gap_ev: float, gamma0_ev: float = GAMMA0_EV
) -> Chirality:
    """Semiconducting chirality whose band gap is closest to the target.

    The paper's Fig. 1 uses E_g = 0.56 eV; this helper picks the matching
    tube (diameter ~ 2 a_cc gamma0 / E_g ~ 1.5 nm).
    """
    if target_gap_ev <= 0.0:
        raise ValueError(f"target gap must be positive, got {target_gap_ev}")
    target_d = 2.0 * A_CC_NM * gamma0_ev / target_gap_ev
    candidates = enumerate_chiralities(0.6 * target_d, 1.4 * target_d)
    semiconducting = [c for c in candidates if c.is_semiconducting]
    if not semiconducting:
        raise ValueError(f"no semiconducting chirality near E_g = {target_gap_ev} eV")
    return min(
        semiconducting, key=lambda c: abs(c.bandgap_ev(gamma0_ev) - target_gap_ev)
    )

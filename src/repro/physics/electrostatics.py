"""Gate electrostatics: capacitances, scale lengths, and the dark-space penalty.

This module backs two of the paper's arguments:

* Section I / III.C — the Skotnicki & Boeuf "dark space" effect: channels
  with low density of states and high permittivity carry their inversion
  charge well below the dielectric interface, so the *equivalent gate
  dielectric thickness in inversion* is much larger than the physical EOT.
  That degrades subthreshold swing (SS) and drain-induced barrier lowering
  (DIBL) at short gate lengths no matter how high-k the gate stack is.  A
  CNT conducts in a single atomic layer, so its dark space is essentially
  zero (Section III.C).
* Section III.A — gate-all-around (GAA) electrostatics give the smallest
  scale length and hence the best SS/DIBL at a given gate length.

The scale-length formulation is the standard evanescent-mode model: the
source/drain potential decays into the channel as exp(-L / (2 lambda));
SS and DIBL degrade with that exponential.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.physics.bands import BandStructure1D
from repro.physics.constants import (
    EPS0,
    KB_EV,
    Q,
    ROOM_TEMPERATURE_K,
    subthreshold_limit_mv_per_decade,
)

EPS_SIO2 = 3.9
"""Relative permittivity of SiO2, the EOT reference."""


# --------------------------------------------------------------------------
# geometric gate capacitances (per unit channel length)
# --------------------------------------------------------------------------
def gate_all_around_capacitance(
    diameter_nm: float, t_ox_nm: float, eps_r: float
) -> float:
    """Coaxial GAA gate capacitance per unit length [F/m].

    C' = 2 pi eps0 eps_r / ln(1 + 2 t_ox / d) — the cylindrical-capacitor
    result for a tube of diameter d wrapped by a dielectric of thickness
    t_ox (Fig. 3 of the paper).
    """
    _require_positive(diameter_nm=diameter_nm, t_ox_nm=t_ox_nm, eps_r=eps_r)
    return 2.0 * math.pi * EPS0 * eps_r / math.log(1.0 + 2.0 * t_ox_nm / diameter_nm)


def wire_over_plane_capacitance(
    diameter_nm: float, t_ox_nm: float, eps_r: float
) -> float:
    """Back-gated tube-on-oxide capacitance per unit length [F/m].

    C' = 2 pi eps0 eps_r / acosh((2 t_ox + d) / d), the wire-above-ground-
    plane formula.  This is the geometry of the paper's Fig. 6 TFET
    (10 nm thermal SiO2 back gate).
    """
    _require_positive(diameter_nm=diameter_nm, t_ox_nm=t_ox_nm, eps_r=eps_r)
    ratio = (2.0 * t_ox_nm + diameter_nm) / diameter_nm
    return 2.0 * math.pi * EPS0 * eps_r / math.acosh(ratio)


def ribbon_plate_capacitance(
    width_nm: float, t_ox_nm: float, eps_r: float, fringe_factor: float = 1.5
) -> float:
    """Top-gated nanoribbon capacitance per unit length [F/m].

    Parallel-plate term eps0 eps_r W / t_ox plus a fringe enhancement;
    ``fringe_factor`` multiplies the effective width by
    (1 + fringe * t_ox / W), the usual first-order correction for ribbons
    no wider than the oxide is thick.
    """
    _require_positive(width_nm=width_nm, t_ox_nm=t_ox_nm, eps_r=eps_r)
    if fringe_factor < 0.0:
        raise ValueError(f"fringe factor must be >= 0, got {fringe_factor}")
    effective_width = width_nm * (1.0 + fringe_factor * t_ox_nm / width_nm)
    return EPS0 * eps_r * (effective_width * 1e-9) / (t_ox_nm * 1e-9)


def quantum_capacitance_per_m(
    bands: BandStructure1D,
    mu_ev: float,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Quantum capacitance C_Q = q^2 dN/dmu of a 1D channel [F/m].

    Integrated in k-space per subband to sidestep the van Hove
    singularities of the DOS.  Only conduction-band electrons are counted
    (mirror-band holes would add symmetrically).
    """
    kt = KB_EV * temperature_k
    total = 0.0
    for band in bands.subbands:
        # Integrate g/(pi) * dk * (-df/dE); sample k out to where the band
        # sits ~25 kT above max(mu, edge) so the tail is fully covered.
        e_top = max(mu_ev, band.edge_ev) + 25.0 * kt
        k_max = float(band.wavevector_per_m(e_top))
        k = np.linspace(0.0, k_max, 4001)
        energy = band.energy_ev(k)
        x = np.clip((energy - mu_ev) / kt, -250.0, 250.0)
        # -df/dE = 1 / (4 kT cosh^2(x/2))  [1/eV]
        dfde = 1.0 / (4.0 * kt * np.cosh(x / 2.0) ** 2)
        integrand = band.degeneracy / math.pi * dfde  # per unit k
        total += float(np.trapezoid(integrand, k))  # [1 / (eV m)]
    # C_Q = q^2 dN/dmu; converting dN/dmu from 1/(eV m) to 1/(J m) divides
    # by Q, so the net prefactor is a single factor of Q.
    return Q * total


# --------------------------------------------------------------------------
# dark space / equivalent inversion thickness (Skotnicki & Boeuf)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ChannelMaterial:
    """Electrostatic description of a channel material.

    ``dark_space_nm`` is the centroid depth of the inversion charge below
    the dielectric interface; low-DOS high-permittivity materials (InGaAs,
    InAs, Ge) have large values, silicon ~0.4-0.7 nm, and a CNT — one atom
    thin — effectively zero.
    """

    name: str
    eps_r: float
    dark_space_nm: float
    body_thickness_nm: float = 5.0

    def __post_init__(self) -> None:
        if self.eps_r <= 0.0 or self.dark_space_nm < 0.0 or self.body_thickness_nm <= 0.0:
            raise ValueError(f"invalid channel material parameters for {self.name!r}")


SILICON = ChannelMaterial("Si", eps_r=11.7, dark_space_nm=0.55)
GERMANIUM = ChannelMaterial("Ge", eps_r=16.0, dark_space_nm=0.9)
INGAAS = ChannelMaterial("InGaAs", eps_r=13.9, dark_space_nm=1.6)
INAS = ChannelMaterial("InAs", eps_r=15.1, dark_space_nm=2.0)
CNT_CHANNEL = ChannelMaterial("CNT", eps_r=1.0, dark_space_nm=0.0, body_thickness_nm=1.0)


def inversion_eot_nm(physical_eot_nm: float, material: ChannelMaterial) -> float:
    """Equivalent oxide thickness *in inversion* [nm].

    EOT_inv = EOT + t_dark * eps_SiO2 / eps_ch.  The second term is the
    dark-space penalty: it cannot be reduced by a better gate dielectric,
    which is Skotnicki & Boeuf's point quoted in the paper's introduction.
    """
    if physical_eot_nm <= 0.0:
        raise ValueError(f"EOT must be positive, got {physical_eot_nm}")
    return physical_eot_nm + material.dark_space_nm * EPS_SIO2 / material.eps_r


# --------------------------------------------------------------------------
# scale length, SS and DIBL
# --------------------------------------------------------------------------
def scale_length_nm(
    material: ChannelMaterial,
    physical_eot_nm: float,
    geometry: str = "planar",
) -> float:
    """Evanescent-mode scale length lambda [nm].

    lambda = sqrt((eps_ch / eps_SiO2) * t_body * EOT_inv) / geometry_factor,
    with geometry factor 1 (planar single gate), 2 (double gate / fin) or
    pi (gate-all-around) — the standard hierarchy that makes GAA the most
    scalable geometry (Section III.A).
    """
    factors = {"planar": 1.0, "double-gate": 2.0, "gaa": math.pi}
    if geometry not in factors:
        raise ValueError(f"unknown geometry {geometry!r}; choose from {sorted(factors)}")
    eot_inv = inversion_eot_nm(physical_eot_nm, material)
    lam = math.sqrt(
        (material.eps_r / EPS_SIO2) * material.body_thickness_nm * eot_inv
    )
    return lam / factors[geometry]


def barrier_control_factor(gate_length_nm: float, scale_nm: float) -> float:
    """Fraction of the channel barrier the gate controls, in (0, 1].

    1 - 2 exp(-L / (2 lambda)): approaches 1 for long channels and
    collapses as L nears the scale length.
    """
    _require_positive(gate_length_nm=gate_length_nm, scale_nm=scale_nm)
    return max(1e-6, 1.0 - 2.0 * math.exp(-gate_length_nm / (2.0 * scale_nm)))


def subthreshold_swing_mv_per_decade(
    gate_length_nm: float,
    scale_nm: float,
    temperature_k: float = ROOM_TEMPERATURE_K,
    body_factor: float = 1.0,
) -> float:
    """SS [mV/dec] including short-channel degradation.

    SS = body_factor * SS_thermal / barrier_control(L, lambda).  The
    body factor m = 1 + (C_dep + C_it)/C_ox accounts for imperfect gate
    efficiency even at long channel.
    """
    if body_factor < 1.0:
        raise ValueError(f"body factor must be >= 1, got {body_factor}")
    control = barrier_control_factor(gate_length_nm, scale_nm)
    return body_factor * subthreshold_limit_mv_per_decade(temperature_k) / control


def dibl_mv_per_v(gate_length_nm: float, scale_nm: float) -> float:
    """DIBL [mV/V] from the same evanescent decay: ~1000 * 2 exp(-L/(2 lambda))."""
    _require_positive(gate_length_nm=gate_length_nm, scale_nm=scale_nm)
    return 1000.0 * min(1.0, 2.0 * math.exp(-gate_length_nm / (2.0 * scale_nm)))


def _require_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0.0:
            raise ValueError(f"{name} must be positive, got {value}")

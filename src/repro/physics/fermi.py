"""Fermi-Dirac statistics helpers used by the ballistic transport models.

The ballistic top-of-barrier model needs the occupation function and the
order-0 Fermi-Dirac integral

    F0(eta) = ln(1 + exp(eta)),

which gives the Landauer current of a single 1D subband in closed form.
All functions are numerically safe for large |eta| and vectorised over
numpy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.physics.constants import KB_EV, ROOM_TEMPERATURE_K

__all__ = [
    "fermi_dirac",
    "fermi_integral_f0",
    "fermi_integral_fm1",
    "occupation_window",
]


def fermi_dirac(energy_ev, mu_ev, temperature_k: float = ROOM_TEMPERATURE_K):
    """Fermi-Dirac occupation f(E) = 1 / (1 + exp((E - mu)/kT)).

    Parameters
    ----------
    energy_ev:
        Energy (scalar or array) [eV].
    mu_ev:
        Chemical potential [eV].
    temperature_k:
        Temperature [K]; must be positive.
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    eta = (np.asarray(energy_ev, dtype=float) - mu_ev) / (KB_EV * temperature_k)
    # exp overflow guard: for eta > ~500 the occupation is exactly 0/1 in
    # double precision, so clip before exponentiating.
    eta = np.clip(eta, -500.0, 500.0)
    return 1.0 / (1.0 + np.exp(eta))


def fermi_integral_f0(eta):
    """Order-0 Fermi-Dirac integral F0(eta) = ln(1 + exp(eta)).

    Uses ``log1p`` for eta < 0 and the identity
    ``F0(eta) = eta + log1p(exp(-eta))`` for eta >= 0, so the result is
    accurate over the full double-precision range.
    """
    eta = np.asarray(eta, dtype=float)
    out = np.where(
        eta < 0.0,
        np.log1p(np.exp(np.minimum(eta, 0.0))),
        eta + np.log1p(np.exp(-np.abs(eta))),
    )
    if out.ndim == 0:
        return float(out)
    return out


def fermi_integral_fm1(eta):
    """Order -1 Fermi-Dirac integral F_{-1}(eta) = 1/(1+exp(-eta)).

    This is d F0 / d eta, used for analytic Jacobians of the
    self-consistent charge equation.
    """
    eta = np.asarray(eta, dtype=float)
    out = 1.0 / (1.0 + np.exp(np.clip(-eta, -500.0, 500.0)))
    if out.ndim == 0:
        return float(out)
    return out


def occupation_window(
    mu_source_ev: float,
    mu_drain_ev: float,
    temperature_k: float = ROOM_TEMPERATURE_K,
    coverage: float = 20.0,
):
    """Energy window [eV] that contains all appreciable f_S - f_D weight.

    Returns ``(e_lo, e_hi)`` spanning ``coverage`` thermal energies beyond
    the two chemical potentials.  Useful for bounding numerical Landauer
    integrals.
    """
    kt = KB_EV * temperature_k
    lo = min(mu_source_ev, mu_drain_ev) - coverage * kt
    hi = max(mu_source_ev, mu_drain_ev) + coverage * kt
    return lo, hi

"""Band-structure and electrostatics substrate for carbon electronics.

Public surface:

* :mod:`repro.physics.constants` — physical constants, graphene parameters.
* :class:`repro.physics.cnt.Chirality` — SWCNT geometry and zone-folded bands.
* :class:`repro.physics.gnr.ArmchairGNR` — armchair-ribbon tight-binding bands.
* :class:`repro.physics.bands.BandStructure1D` — shared 1D subband container.
* :mod:`repro.physics.electrostatics` — gate capacitances, dark space,
  scale length, SS/DIBL models.
"""

from repro.physics.bands import BandStructure1D, Subband
from repro.physics.cnt import Chirality, chirality_for_gap, enumerate_chiralities
from repro.physics.fermi import fermi_dirac, fermi_integral_f0
from repro.physics.gnr import ArmchairGNR, gnr_for_gap
from repro.physics.graphene import exact_subband_edges_ev, graphene_energy_ev

__all__ = [
    "ArmchairGNR",
    "BandStructure1D",
    "Chirality",
    "Subband",
    "chirality_for_gap",
    "enumerate_chiralities",
    "exact_subband_edges_ev",
    "fermi_dirac",
    "fermi_integral_f0",
    "graphene_energy_ev",
    "gnr_for_gap",
]

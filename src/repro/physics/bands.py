"""Common 1D band-structure abstractions shared by CNT and GNR models.

Both carbon channels reduce, near the gap, to a set of 1D subbands with a
hyperbolic ("two-band") dispersion

    E_j(k) = sqrt(E_j0^2 + (hbar v_F k)^2)

measured from midgap, where ``E_j0`` is the subband edge (half the subband
gap) and ``v_F`` the graphene Fermi velocity.  The :class:`Subband` and
:class:`BandStructure1D` containers carry the edges plus the degeneracy,
and provide dispersion, density of states and effective mass in a form the
transport package consumes without knowing whether the channel is a tube
or a ribbon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.physics.constants import HBAR, Q, VFERMI


@dataclass(frozen=True)
class Subband:
    """A single 1D conduction subband of a carbon channel.

    Attributes
    ----------
    edge_ev:
        Subband minimum above midgap [eV] (half the subband gap).
    degeneracy:
        Combined spin x valley degeneracy of the subband (4 for CNTs,
        2 for armchair GNRs where valley degeneracy is lifted).
    fermi_velocity:
        Asymptotic band velocity [m/s]; defaults to the graphene value.
    """

    edge_ev: float
    degeneracy: int = 4
    fermi_velocity: float = VFERMI

    def __post_init__(self) -> None:
        if self.edge_ev < 0.0:
            raise ValueError(f"subband edge must be >= 0 eV, got {self.edge_ev}")
        if self.degeneracy <= 0:
            raise ValueError(f"degeneracy must be positive, got {self.degeneracy}")

    @property
    def effective_mass_kg(self) -> float:
        """Band-edge effective mass m* = E_edge / v_F^2 [kg].

        Follows from expanding the hyperbolic dispersion around k = 0.
        A gapless (metallic) subband has zero effective mass.
        """
        return self.edge_ev * Q / (self.fermi_velocity**2)

    def energy_ev(self, k_per_m):
        """Dispersion E(k) [eV above midgap] for wavevector k [1/m]."""
        hbar_v_k = HBAR * self.fermi_velocity * np.asarray(k_per_m, dtype=float) / Q
        return np.sqrt(self.edge_ev**2 + hbar_v_k**2)

    def wavevector_per_m(self, energy_ev):
        """Inverse dispersion k(E) [1/m] for energies at/above the edge."""
        energy_ev = np.asarray(energy_ev, dtype=float)
        arg = np.clip(energy_ev**2 - self.edge_ev**2, 0.0, None)
        return np.sqrt(arg) * Q / (HBAR * self.fermi_velocity)

    def velocity_m_per_s(self, energy_ev):
        """Group velocity v(E) = v_F sqrt(1 - (E_edge/E)^2) [m/s]."""
        energy_ev = np.asarray(energy_ev, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(energy_ev > 0.0, self.edge_ev / energy_ev, 1.0)
        return self.fermi_velocity * np.sqrt(np.clip(1.0 - ratio**2, 0.0, 1.0))

    def dos_per_ev_per_m(self, energy_ev):
        """Density of states of this subband [states / (eV m)], both k signs.

        D_j(E) = g / (pi hbar v_F) * E / sqrt(E^2 - E_edge^2) for E > E_edge,
        zero below.  The van Hove singularity at the edge is returned as
        ``inf``; charge integrals should therefore be done in k-space (see
        :mod:`repro.transport.ballistic`).
        """
        energy_ev = np.asarray(energy_ev, dtype=float)
        hbar_v_ev_m = HBAR * self.fermi_velocity / Q  # [eV m]
        prefactor = self.degeneracy / (np.pi * hbar_v_ev_m)
        with np.errstate(divide="ignore", invalid="ignore"):
            dos = np.where(
                energy_ev > self.edge_ev,
                prefactor * energy_ev / np.sqrt(
                    np.clip(energy_ev**2 - self.edge_ev**2, 1e-300, None)
                ),
                np.where(np.isclose(energy_ev, self.edge_ev), np.inf, 0.0),
            )
        return dos


@dataclass(frozen=True)
class BandStructure1D:
    """A set of conduction subbands of a 1D carbon channel.

    The valence band is assumed mirror-symmetric (electron-hole symmetry of
    the nearest-neighbour graphene Hamiltonian), so the band gap is twice
    the lowest subband edge.
    """

    subbands: tuple[Subband, ...]
    label: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.subbands:
            raise ValueError("band structure needs at least one subband")
        edges = [band.edge_ev for band in self.subbands]
        if list(edges) != sorted(edges):
            raise ValueError("subbands must be sorted by increasing edge energy")

    @property
    def gap_ev(self) -> float:
        """Band gap E_g = 2 * lowest subband edge [eV]."""
        return 2.0 * self.subbands[0].edge_ev

    @property
    def is_semiconducting(self) -> bool:
        """True when the channel has a finite gap (> 1 meV)."""
        return self.gap_ev > 1e-3

    def dos_per_ev_per_m(self, energy_ev):
        """Total conduction-band DOS [states / (eV m)] at the given energies."""
        energy_ev = np.asarray(energy_ev, dtype=float)
        total = np.zeros_like(energy_ev, dtype=float)
        for band in self.subbands:
            total = total + band.dos_per_ev_per_m(energy_ev)
        return total

    def mode_count(self, energy_ev):
        """Number of conducting modes M(E) = sum_j g_j * [E > E_j] at energy E.

        This is the Landauer mode count; the ballistic conductance is
        (q^2/h) * M(E_F) at zero temperature.
        """
        energy_ev = np.asarray(energy_ev, dtype=float)
        modes = np.zeros_like(energy_ev, dtype=float)
        for band in self.subbands:
            modes = modes + band.degeneracy * (energy_ev > band.edge_ev)
        return modes

"""Armchair graphene-nanoribbon (AGNR) tight-binding band structure.

An N-AGNR has N dimer lines across its width.  Hard-wall boundary
conditions on the nearest-neighbour graphene Hamiltonian quantise the
transverse momentum at theta_p = p pi / (N + 1), giving subband edges

    eps_p = gamma0 * |1 + 2 cos(theta_p)|,   p = 1 .. N

above midgap (Son/Cohen/Louie, Brey/Fertig).  The gap 2 * min_p eps_p
falls into three width families: N = 3j and N = 3j+1 are semiconducting
with E_g ~ 0.8 eV nm / W, while N = 3j+2 is quasi-metallic (zero gap at
this level of theory).  Valley degeneracy is lifted in AGNRs, so each
subband carries spin degeneracy 2 only — half the CNT value.  This is the
origin of the small linear-scale current difference between equal-gap CNT
and GNR FETs in the paper's Fig. 1(b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.physics.bands import BandStructure1D, Subband
from repro.physics.constants import A_CC_NM, GAMMA0_EV, VFERMI

GNR_DEGENERACY = 2
"""Spin-only degeneracy of AGNR subbands (valley degeneracy lifted)."""


@dataclass(frozen=True)
class ArmchairGNR:
    """An armchair graphene nanoribbon with ``n_dimer`` dimer lines."""

    n_dimer: int

    def __post_init__(self) -> None:
        if self.n_dimer < 3:
            raise ValueError(f"need at least 3 dimer lines, got {self.n_dimer}")

    @property
    def width_nm(self) -> float:
        """Ribbon width W = (N - 1) * sqrt(3)/2 * a_cc [nm]."""
        return (self.n_dimer - 1) * math.sqrt(3.0) / 2.0 * A_CC_NM

    @property
    def family(self) -> int:
        """N mod 3: families 0 and 1 are gapped, family 2 quasi-metallic."""
        return self.n_dimer % 3

    @property
    def is_semiconducting(self) -> bool:
        return self.bandgap_ev() > 1e-3

    def subband_edges_ev(
        self, count: int | None = None, gamma0_ev: float = GAMMA0_EV
    ) -> list[float]:
        """Sorted conduction subband edges eps_p [eV above midgap]."""
        n = self.n_dimer
        edges = sorted(
            gamma0_ev * abs(1.0 + 2.0 * math.cos(p * math.pi / (n + 1)))
            for p in range(1, n + 1)
        )
        if count is not None:
            if count < 1:
                raise ValueError(f"count must be >= 1, got {count}")
            edges = edges[:count]
        return edges

    def bandgap_ev(self, gamma0_ev: float = GAMMA0_EV) -> float:
        """Band gap E_g = 2 min_p eps_p [eV]; ~0 for the 3j+2 family."""
        return 2.0 * self.subband_edges_ev(count=1, gamma0_ev=gamma0_ev)[0]

    def band_structure(
        self, n_subbands: int = 3, gamma0_ev: float = GAMMA0_EV
    ) -> BandStructure1D:
        """Band structure with the ``n_subbands`` lowest subbands.

        The longitudinal dispersion of each subband is approximated by the
        two-band hyperbola with the graphene Fermi velocity, which matches
        the tight-binding dispersion near the edges that dominate FET
        behaviour.
        """
        edges = self.subband_edges_ev(count=n_subbands, gamma0_ev=gamma0_ev)
        subbands = tuple(
            Subband(edge_ev=edge, degeneracy=GNR_DEGENERACY, fermi_velocity=VFERMI)
            for edge in edges
        )
        return BandStructure1D(
            subbands=subbands,
            label=f"AGNR({self.n_dimer})",
            metadata={
                "n_dimer": self.n_dimer,
                "width_nm": self.width_nm,
                "gamma0_ev": gamma0_ev,
            },
        )

    def __str__(self) -> str:
        kind = "semiconducting" if self.is_semiconducting else "quasi-metallic"
        return f"AGNR-{self.n_dimer} {kind} W={self.width_nm:.3f} nm"


def gnr_for_gap(
    target_gap_ev: float,
    gamma0_ev: float = GAMMA0_EV,
    n_max: int = 200,
) -> ArmchairGNR:
    """Semiconducting AGNR whose gap is closest to the target.

    The paper's Fig. 1 compares a 2.1 nm-wide GNR with E_g = 0.56 eV
    against an equal-gap CNT; this helper selects the matching ribbon.
    """
    if target_gap_ev <= 0.0:
        raise ValueError(f"target gap must be positive, got {target_gap_ev}")
    best: ArmchairGNR | None = None
    best_err = math.inf
    for n_dimer in range(3, n_max + 1):
        ribbon = ArmchairGNR(n_dimer)
        if not ribbon.is_semiconducting:
            continue
        err = abs(ribbon.bandgap_ev(gamma0_ev) - target_gap_ev)
        if err < best_err:
            best, best_err = ribbon, err
    if best is None:
        raise ValueError("no semiconducting ribbon found in the search range")
    return best

"""Exact nearest-neighbour graphene tight binding and CNT zone folding.

The rest of the package uses the linearised (Dirac-cone) subband ladder
E_q = a_cc gamma0 / d * |3q + nu|.  This module provides the *exact*
nearest-neighbour dispersion

    E(k) = gamma0 * sqrt(3 + 2 cos(k . a1) + 2 cos(k . a2) + 2 cos(k . (a1 - a2)))

and folds it onto a tube's allowed cutting lines, so the linearisation
can be validated (tests assert the ladder is exact to a few % for the
low subbands of ~1.5 nm tubes) and trigonal-warping corrections can be
quantified for small-diameter tubes where they matter.
"""

from __future__ import annotations

import math

import numpy as np

from repro.physics.cnt import Chirality
from repro.physics.constants import A_LATTICE_NM, GAMMA0_EV

__all__ = [
    "graphene_energy_ev",
    "dirac_points",
    "cnt_cutting_line_energies",
    "exact_subband_edges_ev",
]


def graphene_energy_ev(kx_per_nm, ky_per_nm, gamma0_ev: float = GAMMA0_EV):
    """Conduction-band energy [eV] of graphene at wavevector (kx, ky) [1/nm].

    Nearest-neighbour tight binding with the site energy at 0; the
    valence band is the mirror image.  Uses the standard form

        |f(k)|^2 = 3 + 2 cos(k.a1) + 2 cos(k.a2) + 2 cos(k.(a1-a2))

    with lattice vectors a1 = a (sqrt(3)/2, 1/2), a2 = a (sqrt(3)/2, -1/2).
    """
    kx = np.asarray(kx_per_nm, dtype=float)
    ky = np.asarray(ky_per_nm, dtype=float)
    a = A_LATTICE_NM
    k_dot_a1 = a * (math.sqrt(3.0) / 2.0 * kx + 0.5 * ky)
    k_dot_a2 = a * (math.sqrt(3.0) / 2.0 * kx - 0.5 * ky)
    magnitude_sq = (
        3.0
        + 2.0 * np.cos(k_dot_a1)
        + 2.0 * np.cos(k_dot_a2)
        + 2.0 * np.cos(k_dot_a1 - k_dot_a2)
    )
    return gamma0_ev * np.sqrt(np.clip(magnitude_sq, 0.0, None))


def dirac_points() -> list[tuple[float, float]]:
    """The two inequivalent K points [1/nm] where the gap closes.

    K = (2 pi / a) * (1/sqrt(3), 1/3) and K' = (2 pi / a) * (1/sqrt(3), -1/3).
    """
    scale = 2.0 * math.pi / A_LATTICE_NM
    return [
        (scale / math.sqrt(3.0), scale / 3.0),
        (scale / math.sqrt(3.0), -scale / 3.0),
    ]


def _tube_frame_vectors(chirality: Chirality) -> tuple[np.ndarray, np.ndarray]:
    """Unit vectors along the tube circumference and axis [dimensionless].

    The chiral vector C = n a1 + m a2 defines the circumference; the axis
    is perpendicular to it.
    """
    a = A_LATTICE_NM
    a1 = np.array([math.sqrt(3.0) / 2.0, 0.5]) * a
    a2 = np.array([math.sqrt(3.0) / 2.0, -0.5]) * a
    chiral = chirality.n * a1 + chirality.m * a2
    circumference = float(np.linalg.norm(chiral))
    unit_circ = chiral / circumference
    unit_axis = np.array([-unit_circ[1], unit_circ[0]])
    return unit_circ, unit_axis


def cnt_cutting_line_energies(
    chirality: Chirality,
    line_index: int,
    k_axis_per_nm,
    gamma0_ev: float = GAMMA0_EV,
):
    """Exact conduction band [eV] along one quantised cutting line.

    The transverse wavevector is quantised as k_perp = 2 line_index / d
    (i.e. 2 pi q / |C|); ``k_axis_per_nm`` runs along the tube axis.
    """
    unit_circ, unit_axis = _tube_frame_vectors(chirality)
    circumference_nm = math.pi * chirality.diameter_nm
    k_perp = 2.0 * math.pi * line_index / circumference_nm
    k_axis = np.asarray(k_axis_per_nm, dtype=float)
    kx = k_perp * unit_circ[0] + k_axis * unit_axis[0]
    ky = k_perp * unit_circ[1] + k_axis * unit_axis[1]
    return graphene_energy_ev(kx, ky, gamma0_ev)


def translation_period_nm(chirality: Chirality) -> float:
    """Length of the tube's 1D translation vector T = sqrt(3) |C| / d_R [nm]."""
    n, m = chirality.n, chirality.m
    d_r = math.gcd(2 * n + m, 2 * m + n)
    circumference = math.pi * chirality.diameter_nm
    return math.sqrt(3.0) * circumference / d_r


def cutting_line_count(chirality: Chirality) -> int:
    """Number of distinct cutting lines N = 2 (n^2 + n m + m^2) / d_R."""
    n, m = chirality.n, chirality.m
    d_r = math.gcd(2 * n + m, 2 * m + n)
    return 2 * (n * n + n * m + m * m) // d_r


def exact_subband_edges_ev(
    chirality: Chirality,
    count: int = 4,
    gamma0_ev: float = GAMMA0_EV,
    n_k: int = 601,
) -> list[float]:
    """The ``count`` lowest subband edges from the exact folded dispersion.

    Reduced-zone folding: every one of the tube's N distinct cutting
    lines is scanned over one 1D Brillouin zone |k| <= pi / T, where T is
    the (chirality-dependent) translation period.  Restricting to one
    reduced zone is essential — over an extended window a straight line
    in the periodic graphene dispersion eventually grazes some K-point
    copy, which would collapse every minimum to the first gap.  Exact
    within nearest-neighbour theory, so trigonal warping is included.

    Each edge appears once per valley (twice for most tubes); callers
    should expect the K/K' duplication.  Only *achiral* tubes (zigzag
    and armchair) are supported: chiral tubes have translation periods
    of many nanometres, whose heavily folded bands make "sorted band
    minima" stop coinciding with van Hove edges.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not (chirality.is_zigzag or chirality.is_armchair):
        raise ValueError(
            f"exact folding supports achiral tubes only, got ({chirality.n},"
            f"{chirality.m}); use Chirality.subband_edges_ev for chiral tubes"
        )
    k_zone = math.pi / translation_period_nm(chirality)
    k_axis = np.linspace(-k_zone, k_zone, n_k)
    minima: list[float] = []
    for q in range(cutting_line_count(chirality)):
        energies = cnt_cutting_line_energies(chirality, q, k_axis, gamma0_ev)
        minima.append(float(np.min(energies)))
    minima.sort()
    return minima[:count]

"""CNT tunnel-FET: the gated PIN diode of the paper's Fig. 6.

Device structure (Kreupl 2008, paper Ref. [19]): a carbon nanotube with a
naturally p-doped source segment, an intrinsic segment electrostatically
controlled by a common Si back gate through 10 nm thermal SiO2, and a
PEI-polymer n-doped drain segment.

Operating principle reproduced here:

* **Reverse bias** — the diode blocks; driving the gate negative pulls the
  gated segment's bands *up* until its valence-band top rises above the
  n-segment's conduction-band bottom.  Band-to-band tunneling (BTBT)
  through the junction then turns the device on abruptly: the turn-on is
  a band-alignment cutoff, not a thermal tail, so it can beat the
  60 mV/dec thermionic limit.  The measured turn-on is softened by
  phonon/trap-assisted tunneling through band tails, modelled with an
  Urbach energy; the paper reports SS = 83 mV/dec average with individual
  intervals at 32 mV/dec and ~1 mA/um on-current density.
* **Forward bias** — the diode conducts as a normal PN junction and the
  gate hardly modulates the current.

The junction electrostatics use the screening length of a back-gated
tube, lambda ~ sqrt(eps_ch d t_ox / eps_ox), which sets how sharp the
band bending — and therefore the achievable SS and on-current — can be.
The paper notes that high-k dielectrics and segmented gates (smaller
lambda) should improve the result; ``benchmarks/test_ablation_bench.py``
exercises exactly that knob.

Sign conventions: electron energies, p-segment (source) grounded, diode
voltage ``v_diode`` = V_p - V_n (forward positive).  The n reservoir's
chemical potential is therefore mu_n = +v_diode [eV].
"""

from __future__ import annotations

import math

import numpy as np

from repro.devices.base import FETModel, OperatingBox
from repro.physics.cnt import Chirality
from repro.physics.constants import H, KB_EV, Q, VFERMI
from repro.transport.tunneling import (
    JunctionProfile,
    junction_btbt_transmission,
    wkb_transmission_uniform_field,
)

__all__ = ["CNTTunnelFET", "GatedDiodeFET"]


class CNTTunnelFET:
    """Gated CNT PIN diode operated as a tunnel FET.

    Parameters
    ----------
    chirality:
        Semiconducting tube (sets gap and screening length).
    t_ox_nm, eps_ox:
        Back-gate dielectric (default 10 nm thermal SiO2, as fabricated).
    gate_efficiency:
        d(band shift)/d(qV_G) of the gated segment, in (0, 1].
    n_degeneracy_ev, p_degeneracy_ev:
        How far the n-segment Fermi level sits above its conduction edge
        and the p-segment Fermi below its valence edge [eV].
    flatband_v:
        Gate voltage at which the gated segment is intrinsic.
    urbach_ev:
        Band-tail energy of the assisted-tunneling onset [eV]; sets the
        measured subthreshold swing (SS ~ urbach * ln10 / gate_efficiency).
    eps_channel:
        Effective channel/environment permittivity entering the
        screening length.
    """

    def __init__(
        self,
        chirality: Chirality,
        t_ox_nm: float = 10.0,
        eps_ox: float = 3.9,
        gate_efficiency: float = 0.85,
        n_degeneracy_ev: float = 0.05,
        p_degeneracy_ev: float = 0.05,
        flatband_v: float = 0.0,
        urbach_ev: float = 0.030,
        diode_saturation_a: float = 3e-10,
        temperature_k: float = 300.0,
        eps_channel: float = 2.0,
    ):
        if not chirality.is_semiconducting:
            raise ValueError(f"TFET needs a semiconducting tube, got {chirality}")
        if not 0.0 < gate_efficiency <= 1.0:
            raise ValueError(f"gate efficiency must be in (0,1], got {gate_efficiency}")
        if t_ox_nm <= 0.0 or eps_ox <= 0.0 or eps_channel <= 0.0:
            raise ValueError("oxide/channel parameters must be positive")
        if urbach_ev <= 0.0:
            raise ValueError(f"Urbach energy must be positive, got {urbach_ev}")
        self.chirality = chirality
        self.gap_ev = chirality.bandgap_ev()
        self.t_ox_nm = t_ox_nm
        self.eps_ox = eps_ox
        self.gate_efficiency = gate_efficiency
        self.n_degeneracy_ev = n_degeneracy_ev
        self.p_degeneracy_ev = p_degeneracy_ev
        self.flatband_v = flatband_v
        self.urbach_ev = urbach_ev
        self.diode_saturation_a = diode_saturation_a
        self.temperature_k = temperature_k
        self.screening_length_nm = math.sqrt(
            eps_channel * chirality.diameter_nm * t_ox_nm / eps_ox
        )
        self._kt = KB_EV * temperature_k

    # -- band positions -------------------------------------------------------
    def channel_midgap_ev(self, v_gate: float) -> float:
        """Midgap of the gated segment [eV], source-midgap referenced.

        Negative gate drive raises electron energies (bands move up).
        """
        return -self.gate_efficiency * (v_gate - self.flatband_v)

    def n_conduction_edge_ev(self, v_diode: float) -> float:
        """Conduction-band bottom of the n segment [eV]: mu_n - xi_n."""
        return v_diode - self.n_degeneracy_ev

    def band_overlap_ev(self, v_gate: float, v_diode: float) -> float:
        """Tunnel-window width [eV]: gated-segment E_v top minus n-segment E_c.

        Positive overlap means BTBT is energetically allowed.  Reverse
        bias (v_diode < 0) and negative gate drive both widen the window —
        the "very sharp turn-on with gate voltage going negative" of
        Fig. 6(b).
        """
        ev_channel_top = self.channel_midgap_ev(v_gate) - self.gap_ev / 2.0
        return ev_channel_top - self.n_conduction_edge_ev(v_diode)

    def junction_field_v_per_m(self, v_gate: float, v_diode: float) -> float:
        """Characteristic junction field: (E_g + overdrive) / (2 lambda)."""
        overdrive = max(self.band_overlap_ev(v_gate, v_diode), 0.0)
        return (self.gap_ev + overdrive) / (2.0 * self.screening_length_nm * 1e-9)

    # -- current components -----------------------------------------------------
    def btbt_current_a(self, v_gate: float, v_diode: float) -> float:
        """Direct BTBT current [A] (diode sign: reverse-bias BTBT < 0).

        Landauer integral of the WKB transmission over the open tunnel
        window.  Electrons tunnel between gated-segment valence states
        (equilibrated with the grounded p source) and n-segment conduction
        states (chemical potential +v_diode); the electron flow p -> n is
        a *negative* diode current.
        """
        overlap = self.band_overlap_ev(v_gate, v_diode)
        if overlap <= 0.0:
            return 0.0
        u_channel = self.channel_midgap_ev(v_gate)
        u_n = self.n_conduction_edge_ev(v_diode) - self.gap_ev / 2.0
        profile = JunctionProfile(
            gap_ev=self.gap_ev,
            delta_ev=u_n - u_channel,
            lambda_nm=self.screening_length_nm,
        )
        window_lo, window_hi = profile.tunnel_window_ev()
        if window_lo >= window_hi:
            return 0.0
        energies_local = np.linspace(window_lo, window_hi, 161)
        transmission = junction_btbt_transmission(profile, energies_local)
        energies_abs = energies_local + u_channel
        occ_p = _fermi((energies_abs - 0.0) / self._kt)
        occ_n = _fermi((energies_abs - v_diode) / self._kt)
        integral_ev = float(
            np.trapezoid(transmission * (occ_p - occ_n), energies_local)
        )
        return -4.0 * Q * Q / H * integral_ev

    def assisted_current_a(self, v_gate: float, v_diode: float) -> float:
        """Band-tail (phonon/trap) assisted tunneling current [A].

        Uses the analytic uniform-field two-band WKB transmission at the
        junction field and an Urbach activation exp(overlap / E_U) below
        the hard onset.  This is what limits the measured SS to tens of
        mV/dec instead of the ideal hard cutoff.
        """
        overlap = self.band_overlap_ev(v_gate, v_diode)
        field = self.junction_field_v_per_m(v_gate, v_diode)
        transmission = wkb_transmission_uniform_field(self.gap_ev, field, VFERMI)
        activation = math.exp(min(overlap, 0.0) / self.urbach_ev)
        # Thermal occupancy asymmetry of the two reservoirs at the window
        # edge: full for a wide split, -> 0 as v_diode -> 0.
        split = 1.0 - math.exp(-abs(v_diode) / self._kt)
        magnitude = (
            4.0 * Q * Q / H * transmission * self.urbach_ev * activation * split
        )
        # Same sign as the bias: negative (n -> p electron deficit) in
        # reverse, positive Esaki-like addition in forward.
        return math.copysign(magnitude, v_diode)

    def diode_current_a(self, v_diode: float) -> float:
        """Thermionic PN-diode component [A]: I_s (exp(V/n vT) - 1), n ~ 1.2."""
        ideality = 1.2
        exponent = v_diode / (ideality * self._kt)
        return self.diode_saturation_a * (math.exp(min(exponent, 60.0)) - 1.0)

    def current(self, v_gate: float, v_diode: float) -> float:
        """Total terminal current [A] (diode convention: forward positive)."""
        return (
            self.diode_current_a(v_diode)
            + self.btbt_current_a(v_gate, v_diode)
            + self.assisted_current_a(v_gate, v_diode)
        )

    # -- figures of merit -------------------------------------------------------
    def transfer_curve(self, v_gate_values, v_diode: float) -> np.ndarray:
        """|I|(V_G) at fixed diode bias [A]."""
        return np.array(
            [abs(self.current(float(vg), v_diode)) for vg in np.asarray(v_gate_values)]
        )

    def subthreshold_swing_mv_per_decade(
        self,
        v_diode: float = -0.5,
        v_gate_window: tuple[float, float] = (-2.0, 1.0),
        n_points: int = 401,
        floor_a: float = 1e-12,
    ) -> float:
        """Minimum SS [mV/dec] of the reverse-bias BTBT turn-on."""
        v_gate = np.linspace(v_gate_window[0], v_gate_window[1], n_points)
        current = self.transfer_curve(v_gate, v_diode)
        log_i = np.log10(np.clip(current, 1e-18, None))
        dlog = np.diff(log_i)
        with np.errstate(divide="ignore", invalid="ignore"):
            slopes = np.abs(np.diff(v_gate) / dlog)
        valid = slopes[(dlog != 0.0) & (current[:-1] > floor_a)]
        if valid.size == 0:
            raise RuntimeError("no turn-on found in the gate window")
        return float(np.min(valid)) * 1e3

    def on_current_density_a_per_m(
        self, v_gate: float = -2.0, v_diode: float = -0.5
    ) -> float:
        """On-state current normalised by tube diameter [A/m]."""
        return abs(self.current(v_gate, v_diode)) / (self.chirality.diameter_nm * 1e-9)

    def __repr__(self) -> str:
        return (
            f"CNTTunnelFET(({self.chirality.n},{self.chirality.m}), "
            f"Eg={self.gap_ev:.3f} eV, t_ox={self.t_ox_nm} nm, "
            f"lambda={self.screening_length_nm:.2f} nm)"
        )

    def surrogate_token(self):
        """Stable parameter fingerprint for surrogate content addressing."""
        return (
            "CNTTunnelFET",
            self.chirality.n,
            self.chirality.m,
            self.t_ox_nm,
            self.eps_ox,
            self.gate_efficiency,
            self.n_degeneracy_ev,
            self.p_degeneracy_ev,
            self.flatband_v,
            self.urbach_ev,
            self.diode_saturation_a,
            self.temperature_k,
            self.screening_length_nm,
        )

    def as_fet(
        self,
        v_gate_range: tuple[float, float] = (-2.0, 1.0),
        v_diode_range: tuple[float, float] = (-0.6, 0.6),
    ) -> "GatedDiodeFET":
        """This diode as a circuit-usable :class:`GatedDiodeFET` adapter."""
        return GatedDiodeFET(self, v_gate_range, v_diode_range)


class GatedDiodeFET(FETModel):
    """The gated PIN diode mapped onto the three-terminal FET protocol.

    Terminal mapping: the back gate plays "gate" (``vgs`` = V_G) and the
    diode bias plays "drain" (``vds`` = V_P - V_N), both referenced to
    the grounded p-segment source.  The device is **not** source/drain
    symmetric (reverse-bias BTBT vs forward diode conduction), so it
    declares ``mirror_symmetric = False`` and a genuinely two-sided
    ``vds`` operating box — the surrogate compiler tabulates both diode
    polarities directly instead of mirroring.
    """

    mirror_symmetric = False

    def __init__(
        self,
        diode: CNTTunnelFET,
        v_gate_range: tuple[float, float] = (-2.0, 1.0),
        v_diode_range: tuple[float, float] = (-0.6, 0.6),
    ):
        self.diode = diode
        self.v_gate_range = (float(v_gate_range[0]), float(v_gate_range[1]))
        self.v_diode_range = (float(v_diode_range[0]), float(v_diode_range[1]))

    def operating_box(self) -> OperatingBox:
        return OperatingBox(
            vgs_min=self.v_gate_range[0],
            vgs_max=self.v_gate_range[1],
            vds_min=self.v_diode_range[0],
            vds_max=self.v_diode_range[1],
        )

    def current(self, vgs: float, vds: float) -> float:
        return self.diode.current(vgs, vds)

    def surrogate_token(self):
        return (
            "GatedDiodeFET",
            self.diode.surrogate_token(),
            self.v_gate_range,
            self.v_diode_range,
        )


def _fermi(x):
    return 1.0 / (1.0 + np.exp(np.clip(x, -500.0, 500.0)))

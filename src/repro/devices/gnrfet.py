"""Ballistic graphene-nanoribbon FET model (the *theoretical* GNR-FET).

This is the device of the paper's Fig. 1: a GNR-FET simulated at the same
level of theory as the CNT-FET (Ouyang et al., APL 89, 203107 (2006)).
At equal band gap it nearly matches the CNT-FET on a log scale, with a
small linear-scale deficit from the lifted valley degeneracy (2 vs 4
modes).  Crucially, this *simulated* device does saturate — the point of
Fig. 1 is that **measured** GNR devices do not, which the package models
separately as :class:`repro.devices.empirical.NonSaturatingFET`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.devices.base import FETModel
from repro.physics.electrostatics import ribbon_plate_capacitance
from repro.physics.gnr import ArmchairGNR, gnr_for_gap
from repro.transport.ballistic import BallisticParameters, OperatingPoint, TopOfBarrierSolver
from repro.transport.scattering import MeanFreePath, ballisticity

__all__ = ["GNRFET"]


class GNRFET(FETModel):
    """A ballistic armchair-GNR FET with a top plate gate.

    Parameters mirror :class:`repro.devices.cntfet.CNTFET`; the gate
    capacitance uses the ribbon parallel-plate-plus-fringe formula and the
    mean free path defaults to the same phonon-limited model (edge
    disorder, the dominant scattering source in real ribbons, can be
    emulated by passing a shorter ``mfp_override_nm``).
    """

    # Scalar evaluation is a self-consistent barrier solve: small FET
    # groups should stay on the batched linearize path.
    prefer_batched_points = True

    def __init__(
        self,
        ribbon: ArmchairGNR,
        channel_length_nm: float = 20.0,
        t_ox_nm: float = 3.0,
        eps_ox: float = 16.0,
        alpha_g: float = 0.9,
        alpha_d: float = 0.03,
        ef_offset_ev: float = -0.3,
        temperature_k: float = 300.0,
        n_subbands: int = 3,
        mfp_override_nm: float | None = None,
    ):
        if not ribbon.is_semiconducting:
            raise ValueError(f"GNRFET needs a semiconducting ribbon, got {ribbon}")
        if channel_length_nm <= 0.0:
            raise ValueError(f"channel length must be positive, got {channel_length_nm}")
        self.ribbon = ribbon
        self.channel_length_nm = channel_length_nm
        self.bands = ribbon.band_structure(n_subbands)
        if mfp_override_nm is not None:
            if mfp_override_nm <= 0.0:
                raise ValueError(f"MFP override must be positive, got {mfp_override_nm}")
            mfp_nm = mfp_override_nm
        else:
            mfp_nm = MeanFreePath(
                diameter_nm=max(ribbon.width_nm, 0.5), temperature_k=temperature_k
            ).effective_nm()
        self.params = BallisticParameters(
            c_ins_f_per_m=ribbon_plate_capacitance(ribbon.width_nm, t_ox_nm, eps_ox),
            alpha_g=alpha_g,
            alpha_d=alpha_d,
            ef_offset_ev=ef_offset_ev,
            temperature_k=temperature_k,
            transmission=ballisticity(channel_length_nm, mfp_nm),
        )
        self._solver = TopOfBarrierSolver(self.bands, self.params)

    @classmethod
    def for_bandgap(cls, gap_ev: float, **kwargs) -> "GNRFET":
        """Device built on the ribbon whose gap best matches ``gap_ev``."""
        return cls(gnr_for_gap(gap_ev), **kwargs)

    def current(self, vgs: float, vds: float) -> float:
        if vds < 0.0:
            return -self.current(vgs - vds, -vds)
        return self._solver.current(vgs, vds)

    def _forward_currents(self, vgs, vds) -> np.ndarray:
        """Batched I_D through the vectorised top-of-barrier solver."""
        return self._solver.currents(vgs, vds)

    def grid_currents(self, vgs_grid, vds_grid) -> np.ndarray:
        """Outer-grid fill via the solver's warm-started column sweep."""
        vds_grid = np.asarray(vds_grid, dtype=float)
        if np.any(vds_grid < 0.0):
            return super().grid_currents(vgs_grid, vds_grid)
        return self._solver.grid_currents(vgs_grid, vds_grid)

    def surrogate_token(self):
        """Stable parameter fingerprint for surrogate content addressing."""
        return (
            "GNRFET",
            self.ribbon.n_dimer,
            self.channel_length_nm,
            len(self.bands.subbands),
            dataclasses.astuple(self.params),
        )

    def operating_point(self, vgs: float, vds: float) -> OperatingPoint:
        """Full self-consistent solution (barrier height, charge, current)."""
        return self._solver.solve(vgs, vds)

    @property
    def transmission(self) -> float:
        """Channel ballisticity lambda / (lambda + L)."""
        return self.params.transmission

    def current_density_a_per_m(self, vgs: float, vds: float) -> float:
        """Width-normalised current I / W [A/m]."""
        return self.current(vgs, vds) / (self.ribbon.width_nm * 1e-9)

    def __repr__(self) -> str:
        return (
            f"GNRFET(AGNR-{self.ribbon.n_dimer}, W={self.ribbon.width_nm:.2f} nm, "
            f"L={self.channel_length_nm} nm, T_channel={self.transmission:.3f})"
        )

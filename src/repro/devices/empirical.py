"""Empirical FET models for the paper's inverter study and references.

The paper's Fig. 2 compares inverters built from two behavioural devices:

* a **well-behaved FET** with current saturation — modelled here with a
  smooth alpha-power-law (Sakurai-Newton) characteristic including
  subthreshold turn-off and mild channel-length modulation ("a more
  realistic model as it has not a perfect saturation behaviour"), and
* a **FET without current saturation** — a gate-voltage-steered linear
  resistor with the same on-current and a smooth subthreshold turn-off,
  the paper's empirical description of measured GNR-FETs.

Both are intentionally phenomenological: Fig. 2's argument is about I-V
*shape*, not material physics.  The bilinear :class:`TabulatedFET` for
devices defined by measured/published grids lives with the surrogate
machinery in :mod:`repro.devices.surrogate` and is re-exported here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.devices.base import FETModel, OperatingBox
from repro.devices.surrogate import TabulatedFET
from repro.physics.constants import thermal_voltage

__all__ = ["AlphaPowerFET", "NonSaturatingFET", "TabulatedFET"]


def _softplus(x: float) -> float:
    """Numerically safe softplus ln(1 + e^x)."""
    if x > 35.0:
        return x
    if x < -35.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _softplus_array(x: np.ndarray) -> np.ndarray:
    """Elementwise :func:`_softplus` with identical branch thresholds."""
    x = np.asarray(x, dtype=float)
    # exp(min(x, 35)) equals exp(x) exactly on the x < -35 branch, so one
    # exponential serves both the mid (log1p) and deep-subthreshold cases.
    exp_x = np.exp(np.minimum(x, 35.0))
    return np.where(x > 35.0, x, np.where(x < -35.0, exp_x, np.log1p(exp_x)))


@dataclass(frozen=True)
class AlphaPowerFET(FETModel):
    """Smooth alpha-power-law FET with saturation (Sakurai-Newton form).

    I_D = k * Vov^alpha * tanh(vds / vdsat) * (1 + lambda vds),
    Vov  = n vT * softplus((vgs - vt) / (n vT))     (subthreshold blend),
    vdsat = sat_fraction * Vov.

    Attributes
    ----------
    k_a_per_v_alpha:
        Current factor [A / V^alpha]; sets the on-current scale.
    vt:
        Threshold voltage [V].
    alpha:
        Velocity-saturation index; 2 = long-channel square law, ~1.3 for
        short-channel devices.
    sat_fraction:
        V_dsat / V_ov; smaller saturates earlier (better output curves).
    channel_modulation:
        lambda [1/V], the finite output conductance in saturation.
    subthreshold_ideality:
        n >= 1 in SS = n * kT/q * ln 10.
    """

    k_a_per_v_alpha: float = 4.0e-4
    vt: float = 0.25
    alpha: float = 1.4
    sat_fraction: float = 0.45
    channel_modulation: float = 0.15
    subthreshold_ideality: float = 1.1
    temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if self.k_a_per_v_alpha <= 0.0:
            raise ValueError(f"k must be positive, got {self.k_a_per_v_alpha}")
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")
        if not 0.0 < self.sat_fraction <= 1.0:
            raise ValueError(f"sat_fraction must be in (0,1], got {self.sat_fraction}")
        if self.channel_modulation < 0.0:
            raise ValueError("channel modulation must be >= 0")
        if self.subthreshold_ideality < 1.0:
            raise ValueError("subthreshold ideality must be >= 1")
        object.__setattr__(
            self,
            "_softplus_width",
            self.subthreshold_ideality
            * thermal_voltage(self.temperature_k)
            * self.alpha,
        )

    def overdrive(self, vgs: float) -> float:
        """Smoothed overdrive voltage Vov [V] (exponential below threshold).

        The softplus width is n vT alpha, so that I ~ Vov^alpha decays as
        exp((vgs - vt)/(n vT)) below threshold — i.e. the subthreshold
        swing is exactly n * 60 mV/dec regardless of alpha.
        """
        width = self._softplus_width
        return width * _softplus((vgs - self.vt) / width)

    def saturation_voltage(self, vgs: float) -> float:
        """V_dsat [V] at the given gate bias."""
        return max(self.sat_fraction * self.overdrive(vgs), 1e-6)

    def current(self, vgs: float, vds: float) -> float:
        if vds < 0.0:
            # Source/drain exchange symmetry of a symmetric device.
            return -self.current(vgs - vds, -vds)
        overdrive = self.overdrive(vgs)
        vdsat = self.saturation_voltage(vgs)
        saturation = math.tanh(vds / vdsat)
        return (
            self.k_a_per_v_alpha
            * overdrive**self.alpha
            * saturation
            * (1.0 + self.channel_modulation * vds)
        )

    def _forward_currents(self, vgs: np.ndarray, vds: np.ndarray) -> np.ndarray:
        """Elementwise alpha-power current on the vds >= 0 quadrant.

        The base-class ``currents`` wraps this hook in the shared
        source/drain mirror transform.
        """
        width = self._softplus_width
        overdrive = width * _softplus_array((vgs - self.vt) / width)
        vdsat = np.maximum(self.sat_fraction * overdrive, 1e-6)
        return (
            self.k_a_per_v_alpha
            * overdrive**self.alpha
            * np.tanh(vds / vdsat)
            * (1.0 + self.channel_modulation * vds)
        )


@dataclass(frozen=True)
class NonSaturatingFET(FETModel):
    """Gate-steered linear resistor: the paper's "real GNR" behaviour.

    I_D = G(vgs) * vds with no saturation at any drain bias;
    G(vgs) = g_on * softplus((vgs - vt)/w) / softplus((v_on - vt)/w)
    turns the device off smoothly below threshold while keeping the
    above-threshold conductance roughly linear in gate drive, as measured
    on sub-10 nm GNR devices (paper Refs. [4, 5]).

    The conductance is steered by the gate-*source* voltage at either
    drain polarity (``I(vgs, -vds) = -I(vgs, vds)``), so the device does
    **not** obey the source/drain exchange transform — surrogate
    compilation tabulates both drain polarities directly.
    """

    mirror_symmetric = False

    g_on_s: float = 2.0e-4
    vt: float = 0.2
    v_on: float = 1.0
    smoothing_v: float = 0.12

    def __post_init__(self) -> None:
        if self.g_on_s <= 0.0:
            raise ValueError(f"on-conductance must be positive, got {self.g_on_s}")
        if self.smoothing_v <= 0.0:
            raise ValueError(f"smoothing must be positive, got {self.smoothing_v}")
        if self.v_on <= self.vt:
            raise ValueError("v_on must exceed vt")

    def operating_box(self) -> OperatingBox:
        # Both drain polarities are physical operating territory for the
        # gate-steered resistor; surrogates tabulate the full range.
        box = OperatingBox()
        return OperatingBox(
            vgs_min=box.vgs_min,
            vgs_max=box.vgs_max,
            vds_min=-box.vds_max,
            vds_max=box.vds_max,
        )

    def conductance(self, vgs: float) -> float:
        """Channel conductance G(V_GS) [S]."""
        shape = _softplus((vgs - self.vt) / self.smoothing_v)
        norm = _softplus((self.v_on - self.vt) / self.smoothing_v)
        return self.g_on_s * shape / norm

    def current(self, vgs: float, vds: float) -> float:
        return self.conductance(vgs) * vds

    def currents(self, vgs_values, vds_values) -> np.ndarray:
        vgs = np.asarray(vgs_values, dtype=float)
        vds = np.asarray(vds_values, dtype=float)
        shape = _softplus_array((vgs - self.vt) / self.smoothing_v)
        norm = _softplus((self.v_on - self.vt) / self.smoothing_v)
        return self.g_on_s * shape / norm * vds

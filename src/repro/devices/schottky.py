"""Schottky-barrier contact model for CNT-FETs.

Section III.B: "In an ideal situation the channel contact would consist
of metal and form a low barrier Schottky-contact to the channel" — and
the gap between measured CNT-FETs and the ballistic bound is largely the
*non*-ideal Schottky barrier at real metal contacts.  This module wraps
the ballistic CNT-FET with an energy-dependent source-contact
transmission

    T_SB(E) = 1                          for E above the barrier top,
              exp((E - phi_B) / e00)     (tunneling tail) below,

and evaluates the Landauer integral numerically at the intrinsic
device's self-consistently solved barrier.  The charge self-consistency
of the interior is kept from the intrinsic solve (the contact barrier is
thin and carries negligible charge), which is the usual compact-model
approximation.

With ``barrier_ev = 0`` the model reduces to the intrinsic device; with
a mid-gap barrier it reproduces the strongly suppressed, thermally
activated injection of early CNT-FETs.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import FETModel
from repro.devices.cntfet import CNTFET
from repro.physics.constants import H, KB_EV, Q

__all__ = ["SchottkyBarrierCNTFET"]


class SchottkyBarrierCNTFET(FETModel):
    """A ballistic CNT-FET injection-limited by a source Schottky barrier.

    Parameters
    ----------
    intrinsic:
        The ideally contacted device (provides bands + electrostatics).
    barrier_ev:
        Schottky barrier height phi_B above the channel conduction-band
        edge [eV].  0 reduces exactly to the intrinsic ballistic device
        (an ohmic, Pd-class contact); ~E_g/2 models a mid-gap metal.
    tunneling_energy_ev:
        Decay energy e00 of the sub-barrier tunneling tail [eV]; smaller
        means a thicker barrier (less tunneling).  Thin-body CNT
        barriers are transparent, e00 ~ 50-100 meV.
    """

    # Scalar evaluation runs the intrinsic barrier solve plus a
    # Landauer integral: keep small FET groups on the batched path.
    prefer_batched_points = True

    def __init__(
        self,
        intrinsic: CNTFET,
        barrier_ev: float = 0.1,
        tunneling_energy_ev: float = 0.07,
    ):
        if barrier_ev < 0.0:
            raise ValueError(f"barrier must be >= 0, got {barrier_ev}")
        if tunneling_energy_ev <= 0.0:
            raise ValueError(
                f"tunneling energy must be positive, got {tunneling_energy_ev}"
            )
        self.intrinsic = intrinsic
        self.barrier_ev = barrier_ev
        self.tunneling_energy_ev = tunneling_energy_ev
        self._kt = KB_EV * intrinsic.params.temperature_k

    def contact_transmission(self, energy_ev, band_edge_ev: float = 0.0):
        """Source-contact transmission vs energy.

        The barrier top sits ``barrier_ev`` above the subband edge;
        energies above it transmit fully, energies below decay with the
        tunneling tail.
        """
        energy_ev = np.asarray(energy_ev, dtype=float)
        barrier_top = band_edge_ev + self.barrier_ev
        below = np.exp(
            np.clip((energy_ev - barrier_top) / self.tunneling_energy_ev, -200, 0.0)
        )
        return np.where(energy_ev >= barrier_top, 1.0, below)

    def current(self, vgs: float, vds: float) -> float:
        if vds < 0.0:
            return -self.current(vgs - vds, -vds)
        op = self.intrinsic.operating_point(vgs, vds)
        solver = self.intrinsic._solver
        mu_s, mu_d = 0.0, -vds
        kt = self._kt
        total = 0.0
        for band, edge in zip(solver.bands.subbands, solver._edges_ev):
            edge_abs = edge + op.barrier_ev
            e_hi = max(mu_s, mu_d, edge_abs + self.barrier_ev) + 25.0 * kt
            energies = np.linspace(edge_abs, e_hi, 801)
            transmission = (
                self.intrinsic.params.transmission
                * self.contact_transmission(energies, band_edge_ev=edge_abs)
            )
            window = _fermi((energies - mu_s) / kt) - _fermi((energies - mu_d) / kt)
            integral_ev = float(np.trapezoid(transmission * window, energies))
            total += band.degeneracy * Q * Q / H * integral_ev
        return total

    def surrogate_token(self):
        """Stable parameter fingerprint for surrogate content addressing."""
        return (
            "SchottkyBarrierCNTFET",
            self.intrinsic.surrogate_token(),
            self.barrier_ev,
            self.tunneling_energy_ev,
        )

    def injection_limited_fraction(self, vgs: float, vds: float) -> float:
        """I_schottky / I_intrinsic at a bias point, in (0, 1]."""
        intrinsic_current = self.intrinsic.current(vgs, vds)
        if intrinsic_current <= 0.0:
            return 1.0
        return self.current(vgs, vds) / intrinsic_current


def _fermi(x):
    return 1.0 / (1.0 + np.exp(np.clip(x, -500.0, 500.0)))

"""Spline surrogate compilation: freeze any FET model into a fast table.

The physical device models (ballistic CNT/GNR FETs, Schottky-contact
and series-resistance wrappers, the gated-diode tunnel FET) solve
k-space integrals per bias point — hundreds of microseconds per call,
~100x too slow inside a Newton loop.  This module compiles any
:class:`~repro.devices.base.FETModel` into a :class:`SurrogateFET`:

* the I-V surface is sampled **adaptively** over the model's declared
  :class:`~repro.devices.base.OperatingBox` (grid density doubles until
  the spline reproduces fresh midpoint samples to ``GridSpec.tolerance``,
  reusing every previously solved point);
* what is splined is the **reduced conductance** ``H = I / vds``
  (``H(vgs, 0)`` filled with the exact small-signal limit) through the
  **asinh transform** ``s = asinh(H / h_ref)`` with ``h_ref`` a tiny
  fraction of the peak conductance.  ``H`` never crosses zero, so the
  transform has no log singularity at ``vds = 0``, yet remains
  logarithmic over the subthreshold decades — one bicubic spline is
  therefore uniformly accurate in *relative* current from the on-state
  down through the exponential turn-off, and ``I = vds * H`` is exact
  at ``vds = 0`` by construction;
* ``gm``/``gds`` come **analytically** from the spline's partial
  derivatives — no finite-difference step anywhere on the hot path;
* outside the box the surface continues by bounded first-order
  extrapolation, keeping stray Newton iterates finite.

Tables are content-addressed: the cache key hashes the model's
parameter fingerprint (``surrogate_token``; dataclass fields are
fingerprinted automatically) together with the grid spec.  Compiled
tables live in an in-process memory cache and — when the model is
fingerprintable — on disk under ``~/.cache/repro-surrogates/``
(override with the ``REPRO_SURROGATE_CACHE`` environment variable; set
it to ``off`` to disable).  Disk writes are atomic (temp file +
``os.replace``), so the process-pool workers of
:class:`repro.circuit.sweep.SweepPlan` can share one cache directory;
corrupt or stale files are silently recompiled and replaced.

:class:`TabulatedFET` (the package's original bilinear grid device)
lives here too, sharing the grid validation and fill machinery through
:class:`_TableFET`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import weakref
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from scipy.interpolate import RectBivariateSpline

from repro.devices.base import (
    FETModel,
    OperatingBox,
    PType,
    mirror_symmetric_currents,
)

__all__ = [
    "GridSpec",
    "SurrogateFET",
    "TabulatedFET",
    "compile_surrogate",
    "surrogate_cache_dir",
    "surrogate_fidelity",
    "clear_surrogate_memory",
    "CACHE_ENV",
]

#: Environment variable overriding the disk-cache directory ("off"/"0"
#: /"none" disables disk caching entirely).
CACHE_ENV = "REPRO_SURROGATE_CACHE"

#: On-disk format version; bumping it invalidates every cached table.
_CACHE_VERSION = 1

_CACHE_OFF_VALUES = frozenset({"", "0", "off", "none", "disabled"})


# ---------------------------------------------------------------------------
# Grid-table devices: shared validation, bilinear reference, spline surrogate.
# ---------------------------------------------------------------------------


class _TableFET(FETModel):
    """Shared machinery of grid-backed FETs: validated bias grids + table."""

    def __init__(self, vgs_grid, vds_grid, current_grid):
        self._vgs = np.asarray(vgs_grid, dtype=float)
        self._vds = np.asarray(vds_grid, dtype=float)
        self._id = np.asarray(current_grid, dtype=float)
        if self._vgs.ndim != 1 or self._vds.ndim != 1:
            raise ValueError("bias grids must be 1D")
        if self._id.shape != (self._vgs.size, self._vds.size):
            raise ValueError(
                f"current grid shape {self._id.shape} does not match "
                f"({self._vgs.size}, {self._vds.size})"
            )
        if np.any(np.diff(self._vgs) <= 0.0) or np.any(np.diff(self._vds) <= 0.0):
            raise ValueError("bias grids must be strictly increasing")
        if not np.all(np.isfinite(self._id)):
            raise ValueError("current grid contains non-finite values")

    @property
    def vgs_grid(self) -> np.ndarray:
        return self._vgs

    @property
    def vds_grid(self) -> np.ndarray:
        return self._vds

    @property
    def table(self) -> np.ndarray:
        """The raw tabulated currents, shape ``(n_vgs, n_vds)``."""
        return self._id

    @property
    def n_table_points(self) -> int:
        return int(self._id.size)

    def operating_box(self) -> OperatingBox:
        return OperatingBox(
            vgs_min=float(self._vgs[0]),
            vgs_max=float(self._vgs[-1]),
            vds_min=float(self._vds[0]),
            vds_max=float(self._vds[-1]),
        )

    def surrogate_token(self):
        return (
            type(self).__name__,
            _array_digest(self._vgs),
            _array_digest(self._vds),
            _array_digest(self._id),
        )


class TabulatedFET(_TableFET):
    """FET defined by bilinear interpolation of an I_D(V_GS, V_DS) grid.

    Out-of-range biases clamp to the table edge (flat extrapolation),
    which keeps Newton iterations bounded.  Negative ``vds`` uses the
    symmetric-device transformation, so only the vds >= 0 quadrant needs
    tabulating.  For analytic derivatives and adaptive sampling use
    :func:`compile_surrogate` / :class:`SurrogateFET` instead.
    """

    @classmethod
    def from_model(cls, model: FETModel, vgs_grid, vds_grid) -> "TabulatedFET":
        """Tabulate any model on the given grid (useful to freeze slow solvers)."""
        vgs_grid = np.asarray(vgs_grid, dtype=float)
        vds_grid = np.asarray(vds_grid, dtype=float)
        grid = np.asarray(model.currents(vgs_grid[:, None], vds_grid[None, :]))
        return cls(vgs_grid, vds_grid, grid)

    def current(self, vgs: float, vds: float) -> float:
        if vds < 0.0:
            return -self.current(vgs - vds, -vds)
        return float(
            self._forward_currents(
                np.asarray(vgs, dtype=float), np.asarray(vds, dtype=float)
            )
        )

    def _forward_currents(self, vgs: np.ndarray, vds: np.ndarray) -> np.ndarray:
        """Elementwise clamped bilinear interpolation on the vds >= 0 quadrant."""
        vgs_c = np.clip(vgs, self._vgs[0], self._vgs[-1])
        vds_c = np.clip(vds, self._vds[0], self._vds[-1])
        i = np.clip(np.searchsorted(self._vgs, vgs_c) - 1, 0, self._vgs.size - 2)
        j = np.clip(np.searchsorted(self._vds, vds_c) - 1, 0, self._vds.size - 2)
        tx = (vgs_c - self._vgs[i]) / (self._vgs[i + 1] - self._vgs[i])
        ty = (vds_c - self._vds[j]) / (self._vds[j + 1] - self._vds[j])
        return (
            self._id[i, j] * (1 - tx) * (1 - ty)
            + self._id[i + 1, j] * tx * (1 - ty)
            + self._id[i, j + 1] * (1 - tx) * ty
            + self._id[i + 1, j + 1] * tx * ty
        )


class SurrogateFET(_TableFET):
    """Bicubic-spline I-V surrogate with analytic small-signal derivatives.

    The stored table holds the reduced conductance ``H = I / vds``
    (``H(vgs, 0)`` is the exact ``dI/dvds`` limit), and the spline
    interpolates ``s = asinh(H / h_ref)`` — uniformly accurate in
    *relative* current across the subthreshold decades with no
    singularity at the ``vds = 0`` zero crossing.  ``gm``/``gds`` are
    the exact derivatives of the reconstructed surface
    ``I = vds * h_ref * sinh(s)`` — the ``linearize`` entry points never
    take a finite-difference step.  Outside the tabulated box the
    surface continues with a first-order Taylor expansion from the
    clamped edge point, so stray Newton iterates see finite currents
    and conductances.

    Instances pickle by table (the spline is rebuilt on load), which
    keeps them safe to ship to :class:`~repro.circuit.sweep.SweepPlan`
    process-pool workers.
    """

    def __init__(
        self,
        vgs_grid,
        vds_grid,
        conductance_grid,
        *,
        h_ref: float,
        symmetric: bool = True,
        fit_error: float | None = None,
        source: FETModel | None = None,
        token_hash: str | None = None,
    ):
        super().__init__(vgs_grid, vds_grid, conductance_grid)
        if h_ref <= 0.0:
            raise ValueError(f"h_ref must be positive, got {h_ref}")
        if symmetric and self._vds[0] != 0.0:
            raise ValueError("symmetric surrogates must tabulate from vds = 0")
        self._h_ref = float(h_ref)
        self.mirror_symmetric = bool(symmetric)
        self.fit_error = None if fit_error is None else float(fit_error)
        self.source = source  # repro-lint: ok[FPR001] -- provenance only; the physics lives in the tabulated grids
        self.token_hash = token_hash  # repro-lint: ok[FPR001] -- cache bookkeeping, not a physics parameter
        self._build_spline()

    def _build_spline(self) -> None:
        kx = min(3, self._vgs.size - 1)
        ky = min(3, self._vds.size - 1)
        s_table = np.arcsinh(self._id / self._h_ref)
        self._spline = RectBivariateSpline(
            self._vgs, self._vds, s_table, kx=kx, ky=ky, s=0
        )

    # -- pickling: ship the table, rebuild the spline -----------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_spline", None)
        state["source"] = None  # keep pool payloads small and picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._build_spline()

    @property
    def h_ref(self) -> float:
        """Scale conductance of the asinh transform [S]."""
        return self._h_ref

    def surrogate_token(self):
        """Table digests of the base class plus the surrogate's own state.

        ``h_ref`` and the symmetry flag change the reconstructed I-V
        surface for the same stored table, so they must be part of the
        fingerprint; ``fit_error``/``source``/``token_hash`` are
        provenance metadata and deliberately excluded.
        """
        return (
            *super().surrogate_token(),
            self._h_ref,
            self.mirror_symmetric,
        )

    # -- evaluation ---------------------------------------------------------
    def _eval_forward(self, vgs: np.ndarray, vds: np.ndarray):
        """(I, dI/dvgs, dI/dvds) on the tabulated quadrant (clamp + Taylor)."""
        vg = np.clip(vgs, self._vgs[0], self._vgs[-1])
        vd = np.clip(vds, self._vds[0], self._vds[-1])
        s = self._spline.ev(vg, vd)
        s_g = self._spline.ev(vg, vd, dx=1)
        s_d = self._spline.ev(vg, vd, dy=1)
        h = self._h_ref * np.sinh(s)
        slope = self._h_ref * np.cosh(s)
        gm = vd * slope * s_g
        gds = h + vd * slope * s_d
        current = vd * h
        # First-order continuation outside the box: in-box points add
        # exact zeros, so the branch-free form stays bitwise clean.
        current = current + (vgs - vg) * gm + (vds - vd) * gds
        return current, gm, gds

    def current(self, vgs: float, vds: float) -> float:
        if self.mirror_symmetric and vds < 0.0:
            return -self.current(vgs - vds, -vds)
        current, _, _ = self._eval_forward(
            np.asarray(vgs, dtype=float), np.asarray(vds, dtype=float)
        )
        return float(current)

    # repro-lint: ok[PRT001] -- polarity-aware spline evaluation: symmetric tables route through the shared mirror transform below, two-sided tables must not
    def currents(self, vgs_values, vds_values) -> np.ndarray:
        if self.mirror_symmetric:
            return mirror_symmetric_currents(
                lambda a, b: self._eval_forward(a, b)[0], vgs_values, vds_values
            )
        vgs, vds = np.broadcast_arrays(
            np.asarray(vgs_values, dtype=float), np.asarray(vds_values, dtype=float)
        )
        return self._eval_forward(vgs, vds)[0]

    def linearize(self, vgs_values, vds_values, delta_v: float | None = None):
        """Analytic ``(id, gm, gds)`` from the spline derivatives.

        ``delta_v`` is accepted for interface compatibility and ignored
        — there is no finite-difference step.  At mirrored points
        (``vds < 0`` of a symmetric device) the chain rule of the
        source/drain exchange applies: ``gm -> -gm'`` and
        ``gds -> gm' + gds'`` of the forward-quadrant derivatives,
        matching what central differences on the mirrored surface
        produce.
        """
        vgs = np.asarray(vgs_values, dtype=float)
        vds = np.asarray(vds_values, dtype=float)
        if vgs.shape != vds.shape:
            vgs, vds = np.broadcast_arrays(vgs, vds)
        if not self.mirror_symmetric:
            return self._eval_forward(vgs, vds)
        mirrored = vds < 0.0
        if not mirrored.any():
            return self._eval_forward(vgs, vds)
        a = np.where(mirrored, vgs - vds, vgs)
        b = np.where(mirrored, -vds, vds)
        current_f, gm_f, gds_f = self._eval_forward(a, b)
        current = np.where(mirrored, -current_f, current_f)
        gm = np.where(mirrored, -gm_f, gm_f)
        gds = np.where(mirrored, gm_f + gds_f, gds_f)
        return current, gm, gds

    def linearize_point(self, vgs: float, vds: float, delta_v: float | None = None):
        if self.mirror_symmetric and vds < 0.0:
            current, gm_f, gds_f = self.linearize_point(vgs - vds, -vds)
            return -current, -gm_f, gm_f + gds_f
        current, gm, gds = self._eval_forward(
            np.asarray(vgs, dtype=float), np.asarray(vds, dtype=float)
        )
        return float(current), float(gm), float(gds)

    def __repr__(self) -> str:
        fit = "?" if self.fit_error is None else f"{self.fit_error:.2e}"
        return (
            f"SurrogateFET({self._vgs.size}x{self._vds.size} grid, "
            f"vgs=[{self._vgs[0]:g}, {self._vgs[-1]:g}], "
            f"vds=[{self._vds[0]:g}, {self._vds[-1]:g}], fit={fit})"
        )


# ---------------------------------------------------------------------------
# Grid specification and adaptive table fill.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridSpec:
    """How to sample a model into a surrogate table.

    Attributes
    ----------
    box:
        Bias box to tabulate; ``None`` uses the model's declared
        :meth:`~repro.devices.base.FETModel.operating_box`.
    initial_points:
        ``(n_vgs, n_vds)`` of the coarsest grid (each >= 4 for the
        bicubic fit).
    tolerance:
        Refinement target: maximum ``asinh``-space mismatch between the
        spline and fresh midpoint samples.  Because the transform is
        logarithmic above ``h_ref``, this approximates the *relative*
        current error; 5e-5 leaves margin under the package acceptance
        bar of 1e-4.
    max_refinements:
        Density-doubling rounds after the initial grid.
    asinh_scale_rel:
        ``h_ref`` as a fraction of the largest tabulated reduced
        conductance — conductances below ``h_ref`` are treated as
        numerically off.
    """

    box: OperatingBox | None = None
    initial_points: tuple[int, int] = (25, 17)
    tolerance: float = 5e-5
    max_refinements: int = 3
    asinh_scale_rel: float = 1e-9

    def __post_init__(self) -> None:
        n_g, n_d = self.initial_points
        if n_g < 4 or n_d < 4:
            raise ValueError("initial grid needs >= 4 points per axis")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_refinements < 0:
            raise ValueError("max_refinements must be >= 0")
        if self.asinh_scale_rel <= 0.0:
            raise ValueError("asinh_scale_rel must be positive")


def _interleave(nodes: np.ndarray, midpoints: np.ndarray) -> np.ndarray:
    out = np.empty(nodes.size + midpoints.size)
    out[0::2] = nodes
    out[1::2] = midpoints
    return out


def _conductance_grid(
    model: FETModel, vgs: np.ndarray, vds: np.ndarray, eps_v: float
) -> np.ndarray:
    """Reduced conductance H = I/vds on the outer-product grid.

    Columns with ``|vds| <= eps_v`` (the vds = 0 node, in practice) are
    filled with the central-difference small-signal limit — a compile-
    time-only probe; the hot path stays finite-difference free.
    """
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    out = np.empty((vgs.size, vds.size))
    near_zero = np.abs(vds) <= eps_v
    if np.any(~near_zero):
        columns = np.asarray(model.grid_currents(vgs, vds[~near_zero]), dtype=float)
        out[:, ~near_zero] = columns / vds[~near_zero]
    for j in np.flatnonzero(near_zero):
        upper = np.asarray(model.currents(vgs, vds[j] + eps_v), dtype=float)
        lower = np.asarray(model.currents(vgs, vds[j] - eps_v), dtype=float)
        out[:, j] = (upper - lower) / (2.0 * eps_v)
    return out


def _fill_table(model: FETModel, spec: GridSpec, box: OperatingBox, symmetric: bool):
    """Adaptively sample ``model`` over ``box``; returns (vgs, vds,
    h_table, h_ref, fit_error).

    Each refinement doubles the grid density, reusing every already-
    solved point: only the midpoint cross-terms are evaluated fresh
    (through the model's batched ``grid_currents`` fill entry).  The
    error measure is the asinh-space mismatch at cell-center points the
    spline has never seen.
    """
    n_g, n_d = spec.initial_points
    vds_lo = 0.0 if symmetric else box.vds_min
    eps_v = 1e-4 * (box.vds_max - vds_lo)
    vgs = np.linspace(box.vgs_min, box.vgs_max, n_g)
    vds = np.linspace(vds_lo, box.vds_max, n_d)
    table = _conductance_grid(model, vgs, vds, eps_v)
    if not np.all(np.isfinite(table)):
        raise ValueError("model produced non-finite currents over the box")
    h_scale = float(np.max(np.abs(table)))
    h_ref = spec.asinh_scale_rel * h_scale if h_scale > 0.0 else 1.0

    fit_error = np.inf
    for level in range(spec.max_refinements + 1):
        spline = RectBivariateSpline(
            vgs, vds, np.arcsinh(table / h_ref), kx=3, ky=3, s=0
        )
        mid_g = 0.5 * (vgs[:-1] + vgs[1:])
        mid_d = 0.5 * (vds[:-1] + vds[1:])
        direct_mid = _conductance_grid(model, mid_g, mid_d, eps_v)
        s_direct = np.arcsinh(direct_mid / h_ref)
        s_fit = spline(mid_g, mid_d)
        fit_error = float(np.max(np.abs(s_fit - s_direct)))
        if fit_error <= spec.tolerance or level == spec.max_refinements:
            break
        new_table = np.empty((2 * vgs.size - 1, 2 * vds.size - 1))
        new_table[0::2, 0::2] = table
        new_table[1::2, 1::2] = direct_mid
        new_table[0::2, 1::2] = _conductance_grid(model, vgs, mid_d, eps_v)
        new_table[1::2, 0::2] = _conductance_grid(model, mid_g, vds, eps_v)
        vgs = _interleave(vgs, mid_g)
        vds = _interleave(vds, mid_d)
        table = new_table
    return vgs, vds, table, h_ref, fit_error


# ---------------------------------------------------------------------------
# Content addressing: model fingerprints and the cache key.
# ---------------------------------------------------------------------------


class _Unfingerprintable(TypeError):
    """The model has no stable parameter fingerprint (memory cache only)."""


def _array_digest(value: np.ndarray) -> str:
    payload = np.ascontiguousarray(np.asarray(value, dtype=float))
    return hashlib.sha256(payload.tobytes()).hexdigest()


def _tokenize(value):
    """Canonical, JSON-serialisable fingerprint of a parameter value."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value).hex()
    if isinstance(value, np.ndarray):
        return ["ndarray", list(value.shape), _array_digest(value)]
    if isinstance(value, (tuple, list)):
        return [_tokenize(item) for item in value]
    if isinstance(value, dict):
        return [[_tokenize(k), _tokenize(v)] for k, v in sorted(value.items())]
    token_method = getattr(value, "surrogate_token", None)
    if callable(token_method):
        return [type(value).__name__, _tokenize(token_method())]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [
            type(value).__name__,
            [
                [field.name, _tokenize(getattr(value, field.name))]
                for field in dataclasses.fields(value)
            ],
        ]
    raise _Unfingerprintable(
        f"{type(value).__name__} has no surrogate_token() and is not a dataclass"
    )


def _cache_key(model: FETModel, spec: GridSpec, box: OperatingBox, symmetric: bool):
    """(payload json, sha key) of a compile request, or (None, None)."""
    try:
        token = [
            "surrogate",
            _CACHE_VERSION,
            _tokenize(model),
            [
                _tokenize(box.vgs_min),
                _tokenize(box.vgs_max),
                _tokenize(box.vds_min),
                _tokenize(box.vds_max),
            ],
            list(spec.initial_points),
            _tokenize(spec.tolerance),
            spec.max_refinements,
            _tokenize(spec.asinh_scale_rel),
            bool(symmetric),
        ]
    except _Unfingerprintable:
        return None, None
    payload = json.dumps(token, separators=(",", ":"), sort_keys=True)
    return payload, hashlib.sha256(payload.encode()).hexdigest()[:32]


# ---------------------------------------------------------------------------
# Caches: in-process memory + content-addressed disk files.
# ---------------------------------------------------------------------------

_MEMORY_CACHE: dict[str, SurrogateFET] = {}
# Unfingerprintable models memoise by identity.  The entry holds the
# surrogate *weakly*: while any caller keeps the surrogate alive, its
# ``source`` reference pins the model id against reuse; once the last
# reference drops, the entry dies instead of growing the cache forever.
_MEMORY_BY_ID: dict[int, weakref.ref] = {}


def clear_surrogate_memory() -> None:
    """Drop the in-process surrogate caches (disk files are untouched)."""
    _MEMORY_CACHE.clear()
    _MEMORY_BY_ID.clear()


def surrogate_cache_dir() -> Path | None:
    """Resolved disk-cache directory, or None when disabled via the env."""
    override = os.environ.get(CACHE_ENV)
    if override is not None:
        if override.strip().lower() in _CACHE_OFF_VALUES:
            return None
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-surrogates"


def _load_cached(path: Path, payload: str) -> SurrogateFET | None:
    """Rebuild a surrogate from one cache file; None on any defect."""
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta.get("version") != _CACHE_VERSION or meta.get("key") != payload:
                return None
            return SurrogateFET(
                data["vgs"],
                data["vds"],
                data["table"],
                h_ref=float(meta["h_ref"]),
                symmetric=bool(meta["symmetric"]),
                fit_error=meta.get("fit_error"),
                token_hash=path.stem,
            )
    except Exception:
        # Corrupt, truncated, stale or unreadable: recompile and replace.
        return None


def _store_cached(path: Path, surrogate: SurrogateFET, payload: str) -> None:
    """Atomically write one cache file (best effort; failures are ignored)."""
    meta = json.dumps(
        {
            "version": _CACHE_VERSION,
            "key": payload,
            "h_ref": surrogate.h_ref,
            "symmetric": bool(surrogate.mirror_symmetric),
            "fit_error": surrogate.fit_error,
        }
    )
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # mkstemp opens with O_EXCL so concurrent writers each get a private
        # temp file; os.replace then publishes atomically, and the last
        # writer wins with every intermediate state a complete file.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem + "-", suffix=".tmp"
        )
    except OSError:
        return
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                vgs=surrogate.vgs_grid,
                vds=surrogate.vds_grid,
                table=surrogate.table,
                meta=np.asarray(meta),
            )
        os.replace(tmp_name, path)
    except OSError:
        pass
    finally:
        # Gone already when os.replace succeeded; never leave .tmp litter.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The compiler.
# ---------------------------------------------------------------------------


def compile_surrogate(
    model: FETModel,
    spec: GridSpec | None = None,
    *,
    cache_dir: str | Path | None = "auto",
) -> FETModel:
    """Compile ``model`` into a cached :class:`SurrogateFET`.

    ``cache_dir="auto"`` resolves through :func:`surrogate_cache_dir`
    (honouring ``REPRO_SURROGATE_CACHE``); pass a path to pin the
    directory or ``None`` to skip the disk entirely.  :class:`PType`
    mirrors compile their wrapped n-type model and re-wrap, so the
    stamp plan's polarity unwrapping sees the shared surrogate
    instance; an input that is already a surrogate is returned as-is.
    """
    if isinstance(model, SurrogateFET):
        return model
    if isinstance(model, PType):
        return PType(compile_surrogate(model.nfet, spec, cache_dir=cache_dir))
    spec = GridSpec() if spec is None else spec
    box = model.operating_box() if spec.box is None else spec.box
    symmetric = bool(getattr(model, "mirror_symmetric", True))

    payload, key = _cache_key(model, spec, box, symmetric)
    if key is not None:
        cached = _MEMORY_CACHE.get(key)
        if cached is not None:
            return cached
    else:
        reference = _MEMORY_BY_ID.get(id(model))
        if reference is not None:
            cached = reference()
            if cached is not None and cached.source is model:
                return cached

    directory = surrogate_cache_dir() if cache_dir == "auto" else (
        Path(cache_dir) if cache_dir is not None else None
    )
    path = None if (directory is None or key is None) else directory / f"{key}.npz"
    if path is not None and path.exists():
        loaded = _load_cached(path, payload)
        if loaded is not None:
            loaded.source = model
            _MEMORY_CACHE[key] = loaded
            return loaded

    vgs, vds, table, h_ref, fit_error = _fill_table(model, spec, box, symmetric)
    surrogate = SurrogateFET(
        vgs,
        vds,
        table,
        h_ref=h_ref,
        symmetric=symmetric,
        fit_error=fit_error,
        source=model,
        token_hash=key,
    )
    if key is not None:
        _MEMORY_CACHE[key] = surrogate
        if path is not None:
            _store_cached(path, surrogate, payload)
    else:
        for dead in [k for k, ref in _MEMORY_BY_ID.items() if ref() is None]:
            del _MEMORY_BY_ID[dead]
        _MEMORY_BY_ID[id(model)] = weakref.ref(surrogate)
    return surrogate


def surrogate_fidelity(
    surrogate: SurrogateFET,
    model: FETModel | None = None,
    n_probe: tuple[int, int] = (23, 16),
    rel_floor: float = 1e-6,
) -> float:
    """Max relative current error of ``surrogate`` vs direct evaluation.

    Probes an off-node grid inside the tabulated box (points the spline
    was never fitted to).  The error at each probe is normalised by
    ``max(|I_direct|, rel_floor * max|I_direct|)`` — relative accuracy
    down to ``rel_floor`` of the on-current, absolute below it.
    """
    model = surrogate.source if model is None else model
    if model is None:
        raise ValueError("surrogate has no source model; pass one explicitly")
    vgs = surrogate.vgs_grid
    vds = surrogate.vds_grid
    pad_g = 0.37 * (vgs[1] - vgs[0])
    pad_d = 0.37 * (vds[1] - vds[0])
    probe_g = np.linspace(vgs[0] + pad_g, vgs[-1] - pad_g, n_probe[0])
    probe_d = np.linspace(vds[0] + pad_d, vds[-1] - pad_d, n_probe[1])
    direct = np.asarray(model.grid_currents(probe_g, probe_d), dtype=float)
    approx = np.asarray(surrogate.grid_currents(probe_g, probe_d), dtype=float)
    scale = float(np.max(np.abs(direct)))
    if scale == 0.0:
        return float(np.max(np.abs(approx - direct)))
    denom = np.maximum(np.abs(direct), rel_floor * scale)
    return float(np.max(np.abs(approx - direct) / denom))

"""Ballistic carbon-nanotube FET compact model.

Combines the zone-folded CNT band structure, gate-all-around (or
back-gate) electrostatics and the self-consistent top-of-barrier solver
into a three-terminal device that reproduces the experimentally observed
CNT-FET behaviour the paper highlights:

* near-ideal current saturation down to low V_DS (Fig. 1(b), Fig. 4(a)),
* ~20 uA on-current at V_DS = 0.6 V for a 1 nm-class tube (Section III.E),
* quasi-ballistic scaling with channel length via the mean-free-path
  transmission (Fig. 5).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.devices.base import FETModel
from repro.physics.cnt import Chirality, chirality_for_gap
from repro.physics.electrostatics import (
    gate_all_around_capacitance,
    wire_over_plane_capacitance,
)
from repro.transport.ballistic import BallisticParameters, OperatingPoint, TopOfBarrierSolver
from repro.transport.scattering import MeanFreePath, ballisticity

__all__ = ["CNTFET"]

_GATE_GEOMETRIES = ("gaa", "back-gate")


class CNTFET(FETModel):
    """A single-tube ballistic CNT-FET.

    Parameters
    ----------
    chirality:
        Tube chirality; must be semiconducting.
    channel_length_nm:
        Gated channel length; sets the ballisticity through the MFP model.
    t_ox_nm, eps_ox:
        Gate dielectric thickness and relative permittivity (default
        3 nm HfO2-class high-k, Section III.D).
    gate_geometry:
        ``"gaa"`` (coaxial, Fig. 3) or ``"back-gate"`` (tube on oxide).
    alpha_g, alpha_d:
        Barrier control factors of the top-of-barrier model.
    ef_offset_ev:
        Source Fermi level relative to the first subband edge at
        equilibrium [eV]; more negative = higher threshold voltage.
    n_subbands:
        Number of conduction subbands retained.
    """

    # Scalar evaluation is a self-consistent barrier solve: small FET
    # groups should stay on the batched linearize path.
    prefer_batched_points = True

    def __init__(
        self,
        chirality: Chirality,
        channel_length_nm: float = 20.0,
        t_ox_nm: float = 3.0,
        eps_ox: float = 16.0,
        gate_geometry: str = "gaa",
        alpha_g: float = 0.9,
        alpha_d: float = 0.03,
        ef_offset_ev: float = -0.3,
        temperature_k: float = 300.0,
        n_subbands: int = 3,
    ):
        if not chirality.is_semiconducting:
            raise ValueError(f"CNTFET needs a semiconducting tube, got {chirality}")
        if channel_length_nm <= 0.0:
            raise ValueError(f"channel length must be positive, got {channel_length_nm}")
        if gate_geometry not in _GATE_GEOMETRIES:
            raise ValueError(
                f"unknown gate geometry {gate_geometry!r}; choose from {_GATE_GEOMETRIES}"
            )
        self.chirality = chirality
        self.channel_length_nm = channel_length_nm
        self.t_ox_nm = t_ox_nm
        self.eps_ox = eps_ox
        self.gate_geometry = gate_geometry
        self.bands = chirality.band_structure(n_subbands)
        self.mean_free_path = MeanFreePath(
            diameter_nm=chirality.diameter_nm, temperature_k=temperature_k
        )
        transmission = ballisticity(
            channel_length_nm, self.mean_free_path.effective_nm()
        )
        if gate_geometry == "gaa":
            c_ins = gate_all_around_capacitance(chirality.diameter_nm, t_ox_nm, eps_ox)
        else:
            c_ins = wire_over_plane_capacitance(chirality.diameter_nm, t_ox_nm, eps_ox)
        self.params = BallisticParameters(
            c_ins_f_per_m=c_ins,
            alpha_g=alpha_g,
            alpha_d=alpha_d,
            ef_offset_ev=ef_offset_ev,
            temperature_k=temperature_k,
            transmission=transmission,
        )
        self._solver = TopOfBarrierSolver(self.bands, self.params)

    # -- constructors --------------------------------------------------------
    @classmethod
    def for_bandgap(cls, gap_ev: float, **kwargs) -> "CNTFET":
        """Device built on the chirality whose gap best matches ``gap_ev``."""
        return cls(chirality_for_gap(gap_ev), **kwargs)

    @classmethod
    def reference_device(cls) -> "CNTFET":
        """The paper's benchmark device: ~1.5 nm tube, 20 nm GAA channel."""
        return cls.for_bandgap(0.56)

    # -- device interface ------------------------------------------------------
    def current(self, vgs: float, vds: float) -> float:
        if vds < 0.0:
            # Symmetric source/drain: exchange terminals.
            return -self.current(vgs - vds, -vds)
        return self._solver.current(vgs, vds)

    def _forward_currents(self, vgs, vds) -> np.ndarray:
        """Batched I_D through the vectorised top-of-barrier solver."""
        return self._solver.currents(vgs, vds)

    def grid_currents(self, vgs_grid, vds_grid) -> np.ndarray:
        """Outer-grid fill via the solver's warm-started column sweep."""
        vds_grid = np.asarray(vds_grid, dtype=float)
        if np.any(vds_grid < 0.0):
            return super().grid_currents(vgs_grid, vds_grid)
        return self._solver.grid_currents(vgs_grid, vds_grid)

    def surrogate_token(self):
        """Stable parameter fingerprint for surrogate content addressing."""
        return (
            "CNTFET",
            self.chirality.n,
            self.chirality.m,
            self.channel_length_nm,
            self.t_ox_nm,
            self.eps_ox,
            self.gate_geometry,
            len(self.bands.subbands),
            dataclasses.astuple(self.params),
        )

    def operating_point(self, vgs: float, vds: float) -> OperatingPoint:
        """Full self-consistent solution (barrier height, charge, current)."""
        return self._solver.solve(vgs, vds)

    @property
    def transmission(self) -> float:
        """Channel ballisticity lambda / (lambda + L)."""
        return self.params.transmission

    def current_density_a_per_m(
        self, vgs: float, vds: float, pitch_nm: float | None = None
    ) -> float:
        """Width-normalised current I / pitch [A/m].

        Default pitch is the tube diameter — the normalisation used by the
        CNT-FET benchmarking literature (and the paper's Fig. 5 points).
        Pass an array pitch (e.g. 5 nm placement pitch) to benchmark a
        dense parallel-tube fabric instead.
        """
        pitch = self.chirality.diameter_nm if pitch_nm is None else pitch_nm
        if pitch <= 0.0:
            raise ValueError(f"pitch must be positive, got {pitch}")
        return self.current(vgs, vds) / (pitch * 1e-9)

    def subthreshold_swing_mv_per_decade(
        self, vds: float = 0.5, vgs_window: tuple[float, float] = (0.0, 0.25)
    ) -> float:
        """SS extracted from the transfer curve inside ``vgs_window``."""
        vgs_values = np.linspace(vgs_window[0], vgs_window[1], 41)
        currents = self.currents(vgs_values, vds)
        log_i = np.log10(np.clip(currents, 1e-30, None))
        slopes = np.diff(vgs_values) / np.diff(log_i)
        return float(np.min(slopes)) * 1e3

    def __repr__(self) -> str:
        return (
            f"CNTFET(chirality=({self.chirality.n},{self.chirality.m}), "
            f"L={self.channel_length_nm} nm, {self.gate_geometry}, "
            f"T_channel={self.transmission:.3f})"
        )

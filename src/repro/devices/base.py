"""Device-model interface shared by physical and empirical FET models.

Every FET in this package exposes one method:

    current(vgs, vds) -> drain current [A]

with n-type sign conventions (positive ``vds`` drives positive drain
current; current is zero at ``vds = 0``).  The circuit simulator, the
analysis helpers and the benchmark harness all program against this
interface, so a ballistic CNT-FET, an empirical non-saturating GNR model
and a tabulated reference device are interchangeable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FETModel",
    "PType",
    "transfer_curve",
    "output_curve",
    "transconductance",
    "output_conductance",
]


class FETModel(abc.ABC):
    """Abstract three-terminal FET (source-referenced)."""

    @abc.abstractmethod
    def current(self, vgs: float, vds: float) -> float:
        """Drain current I_D [A] at the given source-referenced bias."""

    @property
    def polarity(self) -> str:
        """'n' or 'p'; base models are n-type, wrap with :class:`PType` to flip."""
        return "n"

    def currents(self, vgs_values, vds_values) -> np.ndarray:
        """Vectorised elementwise evaluation (arrays must broadcast)."""
        vgs_values, vds_values = np.broadcast_arrays(
            np.asarray(vgs_values, dtype=float), np.asarray(vds_values, dtype=float)
        )
        out = np.empty(vgs_values.shape)
        for index in np.ndindex(vgs_values.shape):
            out[index] = self.current(float(vgs_values[index]), float(vds_values[index]))
        return out


@dataclass(frozen=True)
class PType(FETModel):
    """p-type adapter: mirrors an n-type model through the origin.

    I_Dp(V_GS, V_DS) = -I_Dn(-V_GS, -V_DS), the standard complementary-
    device symmetry used for the paper's "symmetrical pFET and nFET"
    inverter study (Fig. 2).
    """

    nfet: FETModel

    @property
    def polarity(self) -> str:
        return "p"

    def current(self, vgs: float, vds: float) -> float:
        return -self.nfet.current(-vgs, -vds)


def transfer_curve(device: FETModel, vgs_values, vds: float) -> np.ndarray:
    """I_D(V_GS) at fixed V_DS."""
    return np.array([device.current(float(v), vds) for v in np.asarray(vgs_values)])


def output_curve(device: FETModel, vds_values, vgs: float) -> np.ndarray:
    """I_D(V_DS) at fixed V_GS."""
    return np.array([device.current(vgs, float(v)) for v in np.asarray(vds_values)])


def transconductance(
    device: FETModel, vgs: float, vds: float, delta_v: float = 1e-4
) -> float:
    """g_m = dI_D/dV_GS [S] via central differences."""
    upper = device.current(vgs + delta_v, vds)
    lower = device.current(vgs - delta_v, vds)
    return (upper - lower) / (2.0 * delta_v)


def output_conductance(
    device: FETModel, vgs: float, vds: float, delta_v: float = 1e-4
) -> float:
    """g_ds = dI_D/dV_DS [S] via central differences."""
    upper = device.current(vgs, vds + delta_v)
    lower = device.current(vgs, vds - delta_v)
    return (upper - lower) / (2.0 * delta_v)

"""Device-model interface shared by physical and empirical FET models.

Every FET in this package exposes one scalar method:

    current(vgs, vds) -> drain current [A]

with n-type sign conventions (positive ``vds`` drives positive drain
current; current is zero at ``vds = 0``).  On top of it sits one
vectorized evaluation protocol the circuit simulator, the analysis
helpers and the surrogate compiler all program against:

    currents(vgs_array, vds_array)   -> elementwise drain currents
    grid_currents(vgs_grid, vds_grid)-> I on the outer-product grid
    linearize(vgs, vds)              -> (id, gm, gds) arrays
    linearize_point(vgs, vds)        -> (id, gm, gds) floats
    operating_box()                  -> declared (vgs, vds) bias box

``linearize`` is the small-signal API the compiled MNA stamp plan calls
once per device-model instance per Newton iteration, with all of that
model's FET bias points batched into one array call;
``linearize_point`` is its scalar fast path for single-device groups.
The default derivatives are central differences with a model-owned step
(``fd_delta_v``); models with analytic small-signal behaviour — notably
:class:`repro.devices.surrogate.SurrogateFET` — override both
``linearize`` entry points and never see a finite-difference step.

Vectorised models implement ``_forward_currents`` (elementwise currents
on the ``vds >= 0`` quadrant); the base ``currents`` wraps it in the
shared source/drain mirror transform, so the symmetry convention lives
in exactly one place.  Models without it fall back to a scalar loop.
A ballistic CNT-FET, an empirical non-saturating GNR model and a
spline-compiled surrogate therefore stay interchangeable everywhere.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_FD_STEP",
    "FETModel",
    "OperatingBox",
    "PType",
    "mirror_symmetric_currents",
    "transfer_curve",
    "output_curve",
    "transconductance",
    "output_conductance",
]

# Central-difference step [V] used when a model relies on the default
# finite-difference linearization and the caller does not insist on one.
DEFAULT_FD_STEP = 1e-5


@dataclass(frozen=True)
class OperatingBox:
    """Declared bias box of a device: where its I-V surface is trusted.

    The surrogate compiler samples (and guarantees accuracy over) this
    box; circuit iterates that stray outside it are handled by bounded
    first-order extrapolation.  ``vds_min`` is 0 for source/drain
    symmetric devices (the mirror transform covers ``vds < 0``); devices
    that are *not* mirror symmetric (gated diodes) declare a genuinely
    two-sided ``vds`` range.
    """

    vgs_min: float = -0.3
    vgs_max: float = 1.3
    vds_min: float = 0.0
    vds_max: float = 1.3

    def __post_init__(self) -> None:
        if self.vgs_min >= self.vgs_max or self.vds_min >= self.vds_max:
            raise ValueError(f"degenerate operating box {self}")


def mirror_symmetric_currents(forward, vgs_values, vds_values) -> np.ndarray:
    """Elementwise source/drain exchange: I(vgs, vds<0) = -I(vgs-vds, -vds).

    Coerces and broadcasts the bias arrays, then hands ``forward`` only
    ``vds >= 0`` points.  This is the one shared implementation of the
    symmetric-device transform the scalar ``current`` methods apply
    recursively; every vectorised ``_forward_currents`` hook routes
    through it so the symmetry convention cannot drift between models.
    """
    vgs = np.asarray(vgs_values, dtype=float)
    vds = np.asarray(vds_values, dtype=float)
    if vgs.shape != vds.shape:
        vgs, vds = np.broadcast_arrays(vgs, vds)
    mirrored = vds < 0.0
    if not mirrored.any():
        return forward(vgs, vds)
    current = forward(
        np.where(mirrored, vgs - vds, vgs), np.where(mirrored, -vds, vds)
    )
    return np.where(mirrored, -current, current)


class FETModel(abc.ABC):
    """Abstract three-terminal FET (source-referenced)."""

    #: Whether I(vgs, vds < 0) = -I(vgs - vds, -vds) holds (true for the
    #: symmetric-terminal FETs of this package; gated diodes set False).
    mirror_symmetric: bool = True

    #: Default finite-difference step of the fallback linearization.
    fd_delta_v: float = DEFAULT_FD_STEP

    #: True for models whose scalar ``current`` is itself an iterative
    #: solve (physical top-of-barrier / root-finding devices): the
    #: compiled stamp plan then keeps the batched ``linearize`` path
    #: even for small FET groups instead of the scalar point stamp.
    prefer_batched_points: bool = False

    #: Elementwise currents on the vds >= 0 quadrant, or None to fall
    #: back to a scalar loop.  Subclasses override with a method.
    _forward_currents = None

    @abc.abstractmethod
    def current(self, vgs: float, vds: float) -> float:
        """Drain current I_D [A] at the given source-referenced bias."""

    @property
    def polarity(self) -> str:
        """'n' or 'p'; base models are n-type, wrap with :class:`PType` to flip."""
        return "n"

    def operating_box(self) -> OperatingBox:
        """Declared (vgs, vds) bias box; the surrogate compiler's default."""
        return OperatingBox()

    def currents(self, vgs_values, vds_values) -> np.ndarray:
        """Vectorised elementwise evaluation (arrays must broadcast).

        Models with closed-form characteristics implement the
        ``_forward_currents`` hook (vds >= 0 quadrant only) and inherit
        the shared mirror transform; anything else falls back to a loop
        of scalar ``current`` calls — correct for any model.  The
        compiled circuit assembly and the curve helpers below all route
        through this method, so one hook vectorises every consumer.
        The hook only applies to mirror-symmetric devices — an
        asymmetric model defining it would get silently wrong
        reverse-bias currents, so it is ignored (scalar loop) instead.
        """
        if self._forward_currents is not None and self.mirror_symmetric:
            return mirror_symmetric_currents(
                self._forward_currents, vgs_values, vds_values
            )
        vgs_values, vds_values = np.broadcast_arrays(
            np.asarray(vgs_values, dtype=float), np.asarray(vds_values, dtype=float)
        )
        out = np.fromiter(
            (
                self.current(vgs, vds)
                for vgs, vds in zip(vgs_values.ravel().tolist(), vds_values.ravel().tolist())
            ),
            dtype=float,
            count=vgs_values.size,
        )
        return out.reshape(vgs_values.shape)

    def grid_currents(self, vgs_grid, vds_grid) -> np.ndarray:
        """I_D on the outer-product grid, shape ``(len(vgs), len(vds))``.

        The table-fill entry point of the surrogate compiler.  The
        default is one batched ``currents`` call over the full grid;
        physical models whose solver benefits from column-ordered
        warm starts (see
        :meth:`repro.transport.ballistic.TopOfBarrierSolver.grid_currents`)
        override it.
        """
        vgs = np.asarray(vgs_grid, dtype=float)
        vds = np.asarray(vds_grid, dtype=float)
        return self.currents(vgs[:, None], vds[None, :])

    def linearize(self, vgs_values, vds_values, delta_v: float | None = None):
        """Batched linearization: ``(id, gm, gds)`` at each bias point.

        The default is central differences on :meth:`currents` with the
        model-owned step ``fd_delta_v`` (callers no longer need to
        thread a step through the hot path; passing ``delta_v``
        explicitly remains possible for tests).  The five probe biases
        (nominal, vgs +/- delta, vds +/- delta) are stacked into a
        single ``currents`` call so vectorised models pay the
        array-dispatch overhead once, not five times.  Models with
        analytic derivatives override and ignore ``delta_v``.
        """
        delta_v = self.fd_delta_v if delta_v is None else delta_v
        vgs = np.asarray(vgs_values, dtype=float)
        vds = np.asarray(vds_values, dtype=float)
        if vgs.shape != vds.shape:
            vgs, vds = np.broadcast_arrays(vgs, vds)
        probe_vgs = np.empty((5,) + vgs.shape)
        probe_vgs[:] = vgs
        probe_vgs[1] += delta_v
        probe_vgs[2] -= delta_v
        probe_vds = np.empty_like(probe_vgs)
        probe_vds[:] = vds
        probe_vds[3] += delta_v
        probe_vds[4] -= delta_v
        probes = self.currents(probe_vgs, probe_vds)
        gm = (probes[1] - probes[2]) / (2 * delta_v)
        gds = (probes[3] - probes[4]) / (2 * delta_v)
        return probes[0], gm, gds

    def linearize_point(self, vgs: float, vds: float, delta_v: float | None = None):
        """Scalar linearization fast path: floats in, floats out.

        Same arithmetic as :meth:`linearize` restricted to one bias
        point, but built from plain scalar ``current`` calls — no array
        dispatch.  The compiled stamp plan routes single-device FET
        groups (and the reference element walker routes every FET)
        through here; analytic models override it alongside
        ``linearize``.
        """
        delta_v = self.fd_delta_v if delta_v is None else delta_v
        current = self.current(vgs, vds)
        gm = (
            self.current(vgs + delta_v, vds) - self.current(vgs - delta_v, vds)
        ) / (2.0 * delta_v)
        gds = (
            self.current(vgs, vds + delta_v) - self.current(vgs, vds - delta_v)
        ) / (2.0 * delta_v)
        return current, gm, gds

    def surrogate(self, spec=None, **kwargs):
        """Compile this model into a cached spline :class:`SurrogateFET`.

        Convenience wrapper around
        :func:`repro.devices.surrogate.compile_surrogate`.
        """
        from repro.devices.surrogate import compile_surrogate

        return compile_surrogate(self, spec, **kwargs)


@dataclass(frozen=True)
class PType(FETModel):
    """p-type adapter: mirrors an n-type model through the origin.

    I_Dp(V_GS, V_DS) = -I_Dn(-V_GS, -V_DS), the standard complementary-
    device symmetry used for the paper's "symmetrical pFET and nFET"
    inverter study (Fig. 2).  The batched ``currents``/``linearize``
    entry points forward to the wrapped n-type model, so a vectorised
    (or surrogate-compiled) nFET keeps its vectorisation when mirrored.
    """

    nfet: FETModel

    @property
    def polarity(self) -> str:
        return "p"

    @property
    def prefer_batched_points(self) -> bool:
        return self.nfet.prefer_batched_points

    def operating_box(self) -> OperatingBox:
        return self.nfet.operating_box()

    def current(self, vgs: float, vds: float) -> float:
        return -self.nfet.current(-vgs, -vds)

    # repro-lint: ok[PRT001] -- polarity adapter: point reflection through the origin, then the wrapped n-type model owns the mirror transform
    def currents(self, vgs_values, vds_values) -> np.ndarray:
        return -self.nfet.currents(
            -np.asarray(vgs_values, dtype=float), -np.asarray(vds_values, dtype=float)
        )

    def linearize(self, vgs_values, vds_values, delta_v: float | None = None):
        # d/dv [-I_n(-v)] = +I_n'(-v): conductances carry over unsigned.
        current, gm, gds = self.nfet.linearize(
            -np.asarray(vgs_values, dtype=float),
            -np.asarray(vds_values, dtype=float),
            delta_v,
        )
        return -current, gm, gds

    def linearize_point(self, vgs: float, vds: float, delta_v: float | None = None):
        current, gm, gds = self.nfet.linearize_point(-vgs, -vds, delta_v)
        return -current, gm, gds


def transfer_curve(device: FETModel, vgs_values, vds: float) -> np.ndarray:
    """I_D(V_GS) at fixed V_DS (one batched ``currents`` call)."""
    return device.currents(np.asarray(vgs_values, dtype=float), vds)


def output_curve(device: FETModel, vds_values, vgs: float) -> np.ndarray:
    """I_D(V_DS) at fixed V_GS (one batched ``currents`` call)."""
    return device.currents(vgs, np.asarray(vds_values, dtype=float))


def transconductance(
    device: FETModel, vgs: float, vds: float, delta_v: float = 1e-4
) -> float:
    """g_m = dI_D/dV_GS [S] via central differences."""
    upper = device.current(vgs + delta_v, vds)
    lower = device.current(vgs - delta_v, vds)
    return (upper - lower) / (2.0 * delta_v)


def output_conductance(
    device: FETModel, vgs: float, vds: float, delta_v: float = 1e-4
) -> float:
    """g_ds = dI_D/dV_DS [S] via central differences."""
    upper = device.current(vgs, vds + delta_v)
    lower = device.current(vgs, vds - delta_v)
    return (upper - lower) / (2.0 * delta_v)

"""Device-model interface shared by physical and empirical FET models.

Every FET in this package exposes one scalar method:

    current(vgs, vds) -> drain current [A]

with n-type sign conventions (positive ``vds`` drives positive drain
current; current is zero at ``vds = 0``).  On top of it sit two batched
entry points the circuit simulator and analysis helpers program against:

    currents(vgs_array, vds_array)  -> elementwise drain currents
    linearize(vgs, vds, delta_v)    -> (id, gm, gds) arrays

``linearize`` is the small-signal API the compiled MNA stamp plan calls
once per device-model instance per Newton iteration, with all of that
model's FET bias points batched into one array call.  The default
implementations fall back to scalar ``current`` per element; models with
closed-form characteristics override ``currents`` with true array math
(see :mod:`repro.devices.empirical`) and the finite-difference
``linearize`` inherits the vectorization for free.  A ballistic CNT-FET,
an empirical non-saturating GNR model and a tabulated reference device
therefore stay interchangeable everywhere.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FETModel",
    "PType",
    "mirror_symmetric_currents",
    "transfer_curve",
    "output_curve",
    "transconductance",
    "output_conductance",
]


def mirror_symmetric_currents(forward, vgs_values, vds_values) -> np.ndarray:
    """Elementwise source/drain exchange: I(vgs, vds<0) = -I(vgs-vds, -vds).

    Coerces and broadcasts the bias arrays, then hands ``forward`` only
    ``vds >= 0`` points.  This is the one shared implementation of the
    symmetric-device transform the scalar ``current`` methods apply
    recursively; every vectorised ``currents`` override routes through
    it so the symmetry convention cannot drift between device models.
    """
    vgs = np.asarray(vgs_values, dtype=float)
    vds = np.asarray(vds_values, dtype=float)
    if vgs.shape != vds.shape:
        vgs, vds = np.broadcast_arrays(vgs, vds)
    mirrored = vds < 0.0
    if not mirrored.any():
        return forward(vgs, vds)
    current = forward(
        np.where(mirrored, vgs - vds, vgs), np.where(mirrored, -vds, vds)
    )
    return np.where(mirrored, -current, current)


class FETModel(abc.ABC):
    """Abstract three-terminal FET (source-referenced)."""

    @abc.abstractmethod
    def current(self, vgs: float, vds: float) -> float:
        """Drain current I_D [A] at the given source-referenced bias."""

    @property
    def polarity(self) -> str:
        """'n' or 'p'; base models are n-type, wrap with :class:`PType` to flip."""
        return "n"

    def currents(self, vgs_values, vds_values) -> np.ndarray:
        """Vectorised elementwise evaluation (arrays must broadcast).

        The base implementation loops scalar ``current`` calls over the
        flattened broadcast grid — correct for any model.  Subclasses
        with closed-form characteristics override this with array math;
        the compiled circuit assembly and the curve helpers below all
        route through it, so that one override vectorises every consumer.
        """
        vgs_values, vds_values = np.broadcast_arrays(
            np.asarray(vgs_values, dtype=float), np.asarray(vds_values, dtype=float)
        )
        out = np.fromiter(
            (
                self.current(vgs, vds)
                for vgs, vds in zip(vgs_values.ravel().tolist(), vds_values.ravel().tolist())
            ),
            dtype=float,
            count=vgs_values.size,
        )
        return out.reshape(vgs_values.shape)

    def linearize(self, vgs_values, vds_values, delta_v: float = 1e-5):
        """Batched linearization: ``(id, gm, gds)`` at each bias point.

        Central differences on :meth:`currents` with step ``delta_v`` —
        the same arithmetic the scalar FET stamp historically used, so
        compiled and reference assembly paths agree to rounding error.
        The five probe biases (nominal, vgs +/- delta, vds +/- delta) are
        stacked into a single ``currents`` call so vectorised models pay
        the array-dispatch overhead once, not five times.  Subclasses
        with analytic derivatives may override.
        """
        vgs = np.asarray(vgs_values, dtype=float)
        vds = np.asarray(vds_values, dtype=float)
        if vgs.shape != vds.shape:
            vgs, vds = np.broadcast_arrays(vgs, vds)
        probe_vgs = np.empty((5,) + vgs.shape)
        probe_vgs[:] = vgs
        probe_vgs[1] += delta_v
        probe_vgs[2] -= delta_v
        probe_vds = np.empty_like(probe_vgs)
        probe_vds[:] = vds
        probe_vds[3] += delta_v
        probe_vds[4] -= delta_v
        probes = self.currents(probe_vgs, probe_vds)
        gm = (probes[1] - probes[2]) / (2 * delta_v)
        gds = (probes[3] - probes[4]) / (2 * delta_v)
        return probes[0], gm, gds


@dataclass(frozen=True)
class PType(FETModel):
    """p-type adapter: mirrors an n-type model through the origin.

    I_Dp(V_GS, V_DS) = -I_Dn(-V_GS, -V_DS), the standard complementary-
    device symmetry used for the paper's "symmetrical pFET and nFET"
    inverter study (Fig. 2).  The batched ``currents``/``linearize``
    entry points forward to the wrapped n-type model, so a vectorised
    nFET keeps its vectorisation when mirrored.
    """

    nfet: FETModel

    @property
    def polarity(self) -> str:
        return "p"

    def current(self, vgs: float, vds: float) -> float:
        return -self.nfet.current(-vgs, -vds)

    def currents(self, vgs_values, vds_values) -> np.ndarray:
        return -self.nfet.currents(
            -np.asarray(vgs_values, dtype=float), -np.asarray(vds_values, dtype=float)
        )

    def linearize(self, vgs_values, vds_values, delta_v: float = 1e-5):
        # d/dv [-I_n(-v)] = +I_n'(-v): conductances carry over unsigned.
        current, gm, gds = self.nfet.linearize(
            -np.asarray(vgs_values, dtype=float),
            -np.asarray(vds_values, dtype=float),
            delta_v,
        )
        return -current, gm, gds


def transfer_curve(device: FETModel, vgs_values, vds: float) -> np.ndarray:
    """I_D(V_GS) at fixed V_DS (one batched ``currents`` call)."""
    return device.currents(np.asarray(vgs_values, dtype=float), vds)


def output_curve(device: FETModel, vds_values, vgs: float) -> np.ndarray:
    """I_D(V_DS) at fixed V_GS (one batched ``currents`` call)."""
    return device.currents(vgs, np.asarray(vds_values, dtype=float))


def transconductance(
    device: FETModel, vgs: float, vds: float, delta_v: float = 1e-4
) -> float:
    """g_m = dI_D/dV_GS [S] via central differences."""
    upper = device.current(vgs + delta_v, vds)
    lower = device.current(vgs - delta_v, vds)
    return (upper - lower) / (2.0 * delta_v)


def output_conductance(
    device: FETModel, vgs: float, vds: float, delta_v: float = 1e-4
) -> float:
    """g_ds = dI_D/dV_DS [S] via central differences."""
    upper = device.current(vgs, vds + delta_v)
    lower = device.current(vgs, vds - delta_v)
    return (upper - lower) / (2.0 * delta_v)

"""Aligned-CNT fabric FETs: many parallel tubes under one gate.

The paper's abstract ends on the integration requirement: "strategies
for achieving highly aligned carbon nanotube fabrics ... Without such a
high yield wafer-scale integration, SWCNT circuits will be an illusional
dream."  A logic-grade CNT transistor is not one tube but a *fabric* —
parallel semiconducting tubes at a few-nanometre pitch, with residual
metallic tubes acting as gate-independent shunts.

:class:`CNTFabricFET` composes per-tube device models (any
:class:`FETModel`) plus an ohmic metallic shunt, and reports
width-normalised drive current; :func:`sample_fabric` draws a fabric
from a growth/sorting population so the material statistics of
:mod:`repro.integration` flow directly into a circuit-usable device.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.devices.base import FETModel
from repro.devices.cntfet import CNTFET
from repro.devices.empirical import TabulatedFET
from repro.integration.growth import GrowthDistribution
from repro.physics.constants import CNT_QUANTUM_RESISTANCE_OHM

__all__ = ["CNTFabricFET", "sample_fabric"]

# Tabulated per-chirality devices are deterministic for a given channel
# length; cache them across sample_fabric calls so a parameter sweep over
# many fabrics does not re-run hundreds of Newton solves per tube.
_TABULATED_CACHE: dict[tuple[int, int, float], FETModel] = {}


class CNTFabricFET(FETModel):
    """Parallel composition of per-tube FETs plus a metallic shunt.

    Parameters
    ----------
    tube_devices:
        One FET model per semiconducting tube (may repeat instances).
    n_metallic:
        Count of metallic tubes bridging source and drain.
    pitch_nm:
        Tube-to-tube placement pitch; sets the fabric width.
    metallic_resistance_ohm:
        Two-terminal resistance per metallic tube.
    """

    def __init__(
        self,
        tube_devices: Sequence[FETModel],
        n_metallic: int = 0,
        pitch_nm: float = 8.0,
        metallic_resistance_ohm: float = 3.0 * CNT_QUANTUM_RESISTANCE_OHM,
    ):
        if not tube_devices and n_metallic == 0:
            raise ValueError("fabric needs at least one tube")
        if n_metallic < 0:
            raise ValueError(f"metallic count must be >= 0, got {n_metallic}")
        if pitch_nm <= 0.0 or metallic_resistance_ohm <= 0.0:
            raise ValueError("pitch and metallic resistance must be positive")
        self.tube_devices = list(tube_devices)
        self.n_metallic = n_metallic
        self.pitch_nm = pitch_nm
        self.metallic_resistance_ohm = metallic_resistance_ohm

    @property
    def n_tubes(self) -> int:
        return len(self.tube_devices) + self.n_metallic

    @property
    def width_nm(self) -> float:
        """Fabric footprint width: tubes x pitch."""
        return self.n_tubes * self.pitch_nm

    @property
    def metallic_conductance_s(self) -> float:
        return self.n_metallic / self.metallic_resistance_ohm

    def current(self, vgs: float, vds: float) -> float:
        semiconducting = sum(
            device.current(vgs, vds) for device in self.tube_devices
        )
        return semiconducting + self.metallic_conductance_s * vds

    # repro-lint: ok[PRT001] -- parallel composition: each tube model applies its own mirror transform, the metallic shunt term is linear in vds
    def currents(self, vgs_values, vds_values) -> np.ndarray:
        vgs, vds = np.broadcast_arrays(
            np.asarray(vgs_values, dtype=float), np.asarray(vds_values, dtype=float)
        )
        total = self.metallic_conductance_s * vds
        # sample_fabric reuses cached per-chirality device instances, so
        # evaluate each distinct model once and scale by its multiplicity.
        groups: dict[int, list] = {}
        for device in self.tube_devices:
            entry = groups.setdefault(id(device), [device, 0])
            entry[1] += 1
        for device, count in groups.values():
            contribution = device.currents(vgs, vds)
            total = total + (contribution if count == 1 else count * contribution)
        return total

    def current_density_a_per_m(self, vgs: float, vds: float) -> float:
        """Drive current per unit fabric width [A/m]."""
        return self.current(vgs, vds) / (self.width_nm * 1e-9)

    def surrogate_token(self):
        """Stable parameter fingerprint for surrogate content addressing.

        Delegates per-tube fingerprints to the tube models themselves —
        a fabric of tabulated or physical tubes stays disk-cacheable.
        """
        return (
            "CNTFabricFET",
            tuple(self.tube_devices),
            self.n_metallic,
            self.pitch_nm,
            self.metallic_resistance_ohm,
        )

    def on_off_ratio(self, vdd: float, v_off: float = 0.0) -> float:
        """I_on / I_off at supply ``vdd`` — collapses with metallic shunts."""
        i_on = self.current(vdd, vdd)
        i_off = self.current(v_off, vdd)
        if i_off <= 0.0:
            return np.inf
        return i_on / i_off


def sample_fabric(
    width_um: float,
    pitch_nm: float = 8.0,
    semiconducting_purity: float = 0.9999,
    growth: GrowthDistribution | None = None,
    channel_length_nm: float = 20.0,
    rng: np.random.Generator | None = None,
    tabulate: bool = True,
) -> CNTFabricFET:
    """Draw a fabric transistor from a material population.

    Chiralities are sampled from ``growth``; metallic draws (by the
    post-sorting purity, not the raw 1/3) become shunts.  Distinct
    semiconducting chiralities are built as ballistic CNT-FETs and —
    by default — frozen into bilinear tables so a many-tube fabric stays
    cheap to evaluate inside circuit sweeps.
    """
    if width_um <= 0.0:
        raise ValueError(f"width must be positive, got {width_um}")
    if not 0.0 <= semiconducting_purity <= 1.0:
        raise ValueError("purity must be in [0, 1]")
    if rng is None:
        raise ValueError(
            "sample_fabric needs an explicit numpy Generator (e.g. "
            "np.random.default_rng(seed) or a SeedSequence substream): "
            "library code never draws OS entropy implicitly"
        )
    growth = growth or GrowthDistribution()
    n_tubes = max(1, int(round(width_um * 1e3 / pitch_nm)))
    n_metallic = int(rng.binomial(n_tubes, 1.0 - semiconducting_purity))
    n_semi = n_tubes - n_metallic

    # Sample semiconducting chiralities; reuse one device per chirality
    # (tabulated devices are shared process-wide via _TABULATED_CACHE).
    tube_devices: list[FETModel] = []
    semiconducting_pool = [c for c in growth.chiralities if c.is_semiconducting]
    weights = np.array(
        [p for c, p in zip(growth.chiralities, growth.probabilities) if c.is_semiconducting]
    )
    weights = weights / weights.sum()
    choices = rng.choice(len(semiconducting_pool), size=n_semi, p=weights)
    for index in choices:
        chirality = semiconducting_pool[int(index)]
        key = (chirality.n, chirality.m, channel_length_nm)
        if key not in _TABULATED_CACHE:
            device: FETModel = CNTFET(chirality, channel_length_nm=channel_length_nm)
            if tabulate:
                vgs_grid = np.linspace(-0.2, 1.2, 29)
                vds_grid = np.linspace(0.0, 1.2, 25)
                device = TabulatedFET.from_model(device, vgs_grid, vds_grid)
            _TABULATED_CACHE[key] = device
        tube_devices.append(_TABULATED_CACHE[key])
    return CNTFabricFET(
        tube_devices=tube_devices, n_metallic=n_metallic, pitch_nm=pitch_nm
    )

"""Device models: ballistic carbon FETs, empirical FETs, TFETs, contacts."""

from repro.devices.base import (
    FETModel,
    PType,
    output_conductance,
    output_curve,
    transconductance,
    transfer_curve,
)
from repro.devices.cntfet import CNTFET
from repro.devices.contacts import ContactModel, SeriesResistanceFET
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET, TabulatedFET
from repro.devices.fabric import CNTFabricFET, sample_fabric
from repro.devices.gnrfet import GNRFET
from repro.devices.schottky import SchottkyBarrierCNTFET
from repro.devices.reference import TrigateFET, inas_hemt_reference, trigate_intel_22nm
from repro.devices.tfet import CNTTunnelFET

__all__ = [
    "AlphaPowerFET",
    "CNTFET",
    "CNTFabricFET",
    "CNTTunnelFET",
    "ContactModel",
    "FETModel",
    "GNRFET",
    "NonSaturatingFET",
    "PType",
    "SchottkyBarrierCNTFET",
    "SeriesResistanceFET",
    "TabulatedFET",
    "TrigateFET",
    "inas_hemt_reference",
    "sample_fabric",
    "output_conductance",
    "output_curve",
    "transconductance",
    "transfer_curve",
    "trigate_intel_22nm",
]

"""Device models: ballistic carbon FETs, empirical FETs, TFETs, contacts,
and the spline-surrogate compiler that makes the physical ones
circuit-affordable."""

from repro.devices.base import (
    FETModel,
    OperatingBox,
    PType,
    output_conductance,
    output_curve,
    transconductance,
    transfer_curve,
)
from repro.devices.cntfet import CNTFET
from repro.devices.contacts import ContactModel, SeriesResistanceFET
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET
from repro.devices.fabric import CNTFabricFET, sample_fabric
from repro.devices.gnrfet import GNRFET
from repro.devices.schottky import SchottkyBarrierCNTFET
from repro.devices.reference import TrigateFET, inas_hemt_reference, trigate_intel_22nm
from repro.devices.surrogate import (
    GridSpec,
    SurrogateFET,
    TabulatedFET,
    compile_surrogate,
    surrogate_cache_dir,
    surrogate_fidelity,
)
from repro.devices.tfet import CNTTunnelFET, GatedDiodeFET

__all__ = [
    "AlphaPowerFET",
    "CNTFET",
    "CNTFabricFET",
    "CNTTunnelFET",
    "ContactModel",
    "FETModel",
    "GNRFET",
    "GatedDiodeFET",
    "GridSpec",
    "NonSaturatingFET",
    "OperatingBox",
    "PType",
    "SchottkyBarrierCNTFET",
    "SeriesResistanceFET",
    "SurrogateFET",
    "TabulatedFET",
    "TrigateFET",
    "compile_surrogate",
    "inas_hemt_reference",
    "sample_fabric",
    "surrogate_cache_dir",
    "surrogate_fidelity",
    "output_conductance",
    "output_curve",
    "transconductance",
    "transfer_curve",
    "trigate_intel_22nm",
]

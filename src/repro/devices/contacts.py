"""Contact-resistance wrappers (Section III.B / Fig. 4 of the paper).

The paper demonstrates how parasitic source/drain resistance degrades a
CNT-FET: adding 50 kOhm per contact to an ideally contacted device both
cuts the current and *linearises* the I-V, erasing the saturation that
logic needs.  :class:`SeriesResistanceFET` wraps any :class:`FETModel`
with external resistors and solves the internal bias self-consistently.

A physical contact-length model (after Franklin & Chen's length-scaling
study, the paper's Ref. [16]) converts contact geometry into resistance,
including the ~6.5 kOhm quantum limit h/4q^2 a perfect CNT contact pair
cannot beat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.devices.base import FETModel, OperatingBox
from repro.physics.constants import CNT_QUANTUM_RESISTANCE_OHM

__all__ = ["SeriesResistanceFET", "ContactModel"]


class SeriesResistanceFET(FETModel):
    """A FET with lumped source/drain series resistance.

    The internal device sees vgs' = vgs - I R_s and vds' = vds - I (R_s + R_d);
    the current satisfies the implicit equation

        I = inner.current(vgs - I R_s, vds - I (R_s + R_d)),

    which has a unique solution for monotone devices and is solved with a
    bracketed root finder (robust against the steep exponential
    subthreshold region where Newton overshoots).
    """

    # Scalar evaluation is a bracketed root find around the inner
    # device: keep small FET groups on the batched linearize path.
    prefer_batched_points = True

    def __init__(self, inner: FETModel, r_source_ohm: float, r_drain_ohm: float):
        if r_source_ohm < 0.0 or r_drain_ohm < 0.0:
            raise ValueError("contact resistances must be >= 0")
        self.inner = inner
        self.r_source_ohm = r_source_ohm
        self.r_drain_ohm = r_drain_ohm
        # Unequal contact resistances break the source/drain exchange
        # symmetry (the mirror swaps which resistor plays "source"), so
        # surrogate compilation must tabulate both drain polarities.
        self.mirror_symmetric = r_source_ohm == r_drain_ohm

    def operating_box(self) -> OperatingBox:
        box = self.inner.operating_box()
        if self.mirror_symmetric:
            return box
        return OperatingBox(
            vgs_min=box.vgs_min,
            vgs_max=box.vgs_max,
            vds_min=-box.vds_max,
            vds_max=box.vds_max,
        )

    def surrogate_token(self):
        """Stable parameter fingerprint for surrogate content addressing."""
        return (
            "SeriesResistanceFET",
            self.inner,
            self.r_source_ohm,
            self.r_drain_ohm,
        )

    @property
    def total_resistance_ohm(self) -> float:
        return self.r_source_ohm + self.r_drain_ohm

    def current(self, vgs: float, vds: float) -> float:
        if vds < 0.0:
            # Terminal exchange also swaps which resistor plays "source".
            mirrored = SeriesResistanceFET(self.inner, self.r_drain_ohm, self.r_source_ohm)
            return -mirrored.current(vgs - vds, -vds)
        if self.total_resistance_ohm == 0.0:
            return self.inner.current(vgs, vds)

        def residual(current: float) -> float:
            internal_vgs = vgs - current * self.r_source_ohm
            internal_vds = vds - current * self.total_resistance_ohm
            return self.inner.current(internal_vgs, internal_vds) - current

        upper = self.inner.current(vgs, vds)
        if upper <= 0.0:
            return upper
        # residual(0) = I_intrinsic >= 0 and residual(upper) <= 0 because
        # degrading both internal biases can only lower the current.
        if residual(upper) >= 0.0:
            return upper
        return float(brentq(residual, 0.0, upper, xtol=1e-18, rtol=1e-12))


@dataclass(frozen=True)
class ContactModel:
    """Transfer-length model of a metal-on-CNT side contact.

    R_contact(L_c) = R_q/2 + rho_c * L_t / tanh(L_c / L_t) in a
    transfer-length (distributed) picture reduced to its two asymptotes:
    long contacts approach the quantum-plus-interface floor, short
    contacts blow up as 1/L_c — the sub-100 nm dependence on metal length
    the paper describes.

    Attributes
    ----------
    transfer_length_nm:
        Current-transfer length L_t of the metal/CNT interface.
    interface_resistance_ohm:
        Extra interface resistance of an infinitely long contact, on top
        of half the CNT quantum resistance.
    """

    transfer_length_nm: float = 40.0
    interface_resistance_ohm: float = 2000.0

    def __post_init__(self) -> None:
        if self.transfer_length_nm <= 0.0:
            raise ValueError("transfer length must be positive")
        if self.interface_resistance_ohm < 0.0:
            raise ValueError("interface resistance must be >= 0")

    def resistance_ohm(self, contact_length_nm: float) -> float:
        """One contact's resistance [Ohm] at the given metal coverage length."""
        if contact_length_nm <= 0.0:
            raise ValueError(f"contact length must be positive, got {contact_length_nm}")
        quantum_floor = CNT_QUANTUM_RESISTANCE_OHM / 2.0
        spreading = self.interface_resistance_ohm / math.tanh(
            contact_length_nm / self.transfer_length_nm
        )
        return quantum_floor + spreading

    def device_series_resistance_ohm(self, contact_length_nm: float) -> float:
        """Two-contact series resistance of a device [Ohm].

        For the 20 nm contacts of the paper's benchmark device this lands
        near the ~11 kOhm total series resistance of Ref. [16].
        """
        return 2.0 * self.resistance_ohm(contact_length_nm)

"""Reference silicon / III-V devices calibrated to published headline numbers.

Section III.E of the paper benchmarks the CNT-FET against:

* Intel's 22 nm-class **trigate** transistor — fin height 35 nm, bottom fin
  width 18 nm, 30 nm gate length, delivering ~66 uA at V_DS = V_GS = 1 V;
* **InAs / InGaAs HEMTs** from del Alamo's Nature 479 review (Ref. [18]);
* ITRS-projected silicon.

These are empirical compact models (alpha-power law) with parameters
chosen so that the headline operating points quoted in the paper are met;
they exist to reproduce comparisons, not to design silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import FETModel
from repro.devices.empirical import AlphaPowerFET

__all__ = ["TrigateFET", "trigate_intel_22nm", "inas_hemt_reference"]


@dataclass(frozen=True)
class TrigateFET(FETModel):
    """A fin-geometry silicon FET wrapping an alpha-power-law core.

    The effective electrical width of one fin is W_eff = 2 H_fin + W_fin
    (three conducting faces).  ``cross_section_nm2`` exposes the fin's
    physical conduction cross-section, used for the paper's ">300x
    cross-section" comparison against a ~1 nm tube.
    """

    fin_height_nm: float = 35.0
    fin_width_nm: float = 18.0
    gate_length_nm: float = 30.0
    core: AlphaPowerFET = AlphaPowerFET(
        k_a_per_v_alpha=1.04e-4,
        vt=0.30,
        alpha=1.35,
        sat_fraction=0.5,
        channel_modulation=0.08,
        subthreshold_ideality=1.25,
    )

    @property
    def effective_width_nm(self) -> float:
        """Electrical width of one fin: 2 H + W [nm]."""
        return 2.0 * self.fin_height_nm + self.fin_width_nm

    @property
    def cross_section_nm2(self) -> float:
        """Physical conduction cross-section H x W of the fin [nm^2]."""
        return self.fin_height_nm * self.fin_width_nm

    def current(self, vgs: float, vds: float) -> float:
        return self.core.current(vgs, vds)

    def _forward_currents(self, vgs_values, vds_values):
        # Forward-quadrant delegation to the alpha-power core; the base
        # ``currents`` applies the shared mirror transform exactly once.
        return self.core._forward_currents(vgs_values, vds_values)

    def current_density_a_per_m(self, vgs: float, vds: float) -> float:
        """Current per effective width [A/m]."""
        return self.current(vgs, vds) / (self.effective_width_nm * 1e-9)


def trigate_intel_22nm() -> TrigateFET:
    """The paper's trigate comparison device: ~66 uA at V_GS = V_DS = 1 V."""
    return TrigateFET()


def inas_hemt_reference() -> AlphaPowerFET:
    """An InAs HEMT-like device: high gm, low V_T, per-um current factor.

    Calibrated so that I_on ~ 0.5 mA/um at V_DS = 0.5 V when normalised
    to I_off = 100 nA/um — the level of the best InAs HEMTs in del
    Alamo's benchmark at ~30-60 nm gate length.  The returned model's
    current is per micrometre of gate width [A/um].
    """
    return AlphaPowerFET(
        k_a_per_v_alpha=1.35e-3,
        vt=0.12,
        alpha=1.25,
        sat_fraction=0.5,
        channel_modulation=0.25,
        subthreshold_ideality=1.4,
    )

"""Fig. 5 harness: benchmark model CNT-FETs against the reference field.

Sweeps the ballistic CNT-FET model over gate length, extracts the
del Alamo metric (I_on at V_DS = 0.5 V with I_off pinned to 100 nA/um by
shifting the gate window along the transfer curve) and merges the model
series with the published reference points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.iv import ion_at_fixed_ioff
from repro.benchmarking.datasets import (
    FIG5_REFERENCE,
    IOFF_TARGET_A_PER_UM,
    TechnologySeries,
    VDS_BENCHMARK_V,
)
from repro.devices.base import transfer_curve
from repro.devices.cntfet import CNTFET
from repro.devices.contacts import ContactModel, SeriesResistanceFET
from repro.physics.cnt import chirality_for_gap

__all__ = ["ModelPoint", "Fig5Result", "run_fig5_benchmark", "cnt_model_series"]


@dataclass(frozen=True)
class ModelPoint:
    """One model-evaluated CNT-FET in benchmark coordinates."""

    gate_length_nm: float
    ion_ua_per_um: float
    transmission: float


@dataclass(frozen=True)
class Fig5Result:
    """Reference series plus the model-generated CNT curve."""

    reference: dict[str, TechnologySeries]
    model_cnt: tuple[ModelPoint, ...]

    def rows(self) -> list[tuple[str, float, float]]:
        """(technology, gate length, Ion) rows for printing."""
        out: list[tuple[str, float, float]] = []
        for series in self.reference.values():
            for point in series.points:
                out.append((series.name, point.gate_length_nm, point.ion_ua_per_um))
        for point in self.model_cnt:
            out.append(("CNT (model)", point.gate_length_nm, point.ion_ua_per_um))
        return sorted(out, key=lambda r: (r[0], r[1]))


def cnt_model_ion_density(
    gate_length_nm: float,
    gap_ev: float = 0.56,
    supply_window_v: float = VDS_BENCHMARK_V,
    contact_length_nm: float | None = 20.0,
) -> ModelPoint:
    """Benchmark one model CNT-FET at the given gate length.

    The off-current target is scaled from per-um to per-device through
    the diameter normalisation used for the measured CNT points.  The
    device carries the transfer-length contact resistance of 20 nm metal
    contacts (~15 kOhm total, the paper's Section III.B benchmark
    geometry) so the model lands near the *measured* CNT points rather
    than at the intrinsic ballistic ceiling; pass ``contact_length_nm=
    None`` for the ideal-contact ceiling.
    """
    intrinsic = CNTFET(chirality_for_gap(gap_ev), channel_length_nm=gate_length_nm)
    if contact_length_nm is None:
        device = intrinsic
    else:
        per_contact = ContactModel().resistance_ohm(contact_length_nm)
        device = SeriesResistanceFET(intrinsic, per_contact, per_contact)
    diameter_um = intrinsic.chirality.diameter_nm * 1e-3
    ioff_device_a = IOFF_TARGET_A_PER_UM * diameter_um

    vgs = np.linspace(-0.1, 1.2, 105)
    currents = transfer_curve(device, vgs, VDS_BENCHMARK_V)
    ion_device_a = ion_at_fixed_ioff(vgs, currents, supply_window_v, ioff_device_a)
    ion_ua_per_um = ion_device_a * 1e6 / diameter_um
    return ModelPoint(
        gate_length_nm=gate_length_nm,
        ion_ua_per_um=ion_ua_per_um,
        transmission=intrinsic.transmission,
    )


def cnt_model_series(gate_lengths_nm=(9.0, 15.0, 20.0, 30.0, 50.0, 100.0, 300.0)):
    """Model CNT-FET benchmark points over a gate-length sweep."""
    return tuple(cnt_model_ion_density(float(length)) for length in gate_lengths_nm)


def run_fig5_benchmark(gate_lengths_nm=(9.0, 15.0, 20.0, 30.0, 50.0, 100.0, 300.0)) -> Fig5Result:
    """Full Fig. 5 regeneration: reference field + model CNT curve."""
    return Fig5Result(
        reference=dict(FIG5_REFERENCE),
        model_cnt=cnt_model_series(gate_lengths_nm),
    )

"""Reference device data for the Fig. 5 benchmark (del Alamo style).

The paper's Fig. 5 adopts del Alamo's Nature 479 benchmark — on-current
per unit width at V_DS = 0.5 V, normalised to a common off-current of
100 nA/um — and adds measured CNT-FET points (Franklin et al., Refs.
[6, 14]) that sit clearly above the Si / InAs / InGaAs field.

The numeric points below are *approximate transcriptions of the cited
publications' headline values* (documented substitution, see DESIGN.md):
absolute values are indicative, but the ordering and rough factors match
the published benchmark.  Each point is (gate length [nm], I_on [uA/um]).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BenchmarkPoint",
    "TechnologySeries",
    "FIG5_REFERENCE",
    "IOFF_TARGET_A_PER_UM",
    "VDS_BENCHMARK_V",
]

IOFF_TARGET_A_PER_UM = 100e-9
"""Common off-current normalisation of the benchmark: 100 nA/um."""

VDS_BENCHMARK_V = 0.5
"""Common drain bias of the benchmark."""


@dataclass(frozen=True)
class BenchmarkPoint:
    """One published device: gate length and normalised on-current."""

    gate_length_nm: float
    ion_ua_per_um: float
    note: str = ""

    def __post_init__(self) -> None:
        if self.gate_length_nm <= 0.0 or self.ion_ua_per_um <= 0.0:
            raise ValueError("benchmark point values must be positive")


@dataclass(frozen=True)
class TechnologySeries:
    """A technology's point cloud in the benchmark plane."""

    name: str
    points: tuple[BenchmarkPoint, ...]

    def gate_lengths_nm(self) -> list[float]:
        return [p.gate_length_nm for p in self.points]

    def ion_ua_per_um(self) -> list[float]:
        return [p.ion_ua_per_um for p in self.points]

    def best_ion(self) -> float:
        return max(p.ion_ua_per_um for p in self.points)

    def ion_near(self, gate_length_nm: float, tolerance: float = 0.5) -> float | None:
        """Best on-current within +-tolerance (fractional) of a gate length."""
        lo = gate_length_nm * (1.0 - tolerance)
        hi = gate_length_nm * (1.0 + tolerance)
        near = [p.ion_ua_per_um for p in self.points if lo <= p.gate_length_nm <= hi]
        return max(near) if near else None


FIG5_REFERENCE: dict[str, TechnologySeries] = {
    "Si": TechnologySeries(
        "Si",
        (
            BenchmarkPoint(25.0, 280.0, "strained Si record"),
            BenchmarkPoint(32.0, 330.0),
            BenchmarkPoint(45.0, 400.0),
            BenchmarkPoint(65.0, 430.0),
            BenchmarkPoint(100.0, 420.0),
        ),
    ),
    "InGaAs HEMT": TechnologySeries(
        "InGaAs HEMT",
        (
            BenchmarkPoint(60.0, 400.0),
            BenchmarkPoint(90.0, 380.0),
            BenchmarkPoint(150.0, 320.0),
            BenchmarkPoint(250.0, 250.0),
        ),
    ),
    "InAs HEMT": TechnologySeries(
        "InAs HEMT",
        (
            BenchmarkPoint(30.0, 500.0, "del Alamo record class"),
            BenchmarkPoint(40.0, 530.0),
            BenchmarkPoint(60.0, 550.0),
            BenchmarkPoint(85.0, 500.0),
            BenchmarkPoint(130.0, 440.0),
        ),
    ),
    "CNT (measured)": TechnologySeries(
        "CNT (measured)",
        (
            BenchmarkPoint(9.0, 1400.0, "Franklin sub-10 nm; I_off 10x higher"),
            BenchmarkPoint(15.0, 1900.0, "Franklin length scaling"),
            BenchmarkPoint(20.0, 2100.0),
            BenchmarkPoint(30.0, 2300.0, "Franklin wrap-gate class"),
            BenchmarkPoint(50.0, 2000.0),
            BenchmarkPoint(100.0, 1400.0),
            BenchmarkPoint(300.0, 700.0),
        ),
    ),
}

"""Benchmark datasets and the Fig. 5 (del Alamo style) harness."""

from repro.benchmarking.datasets import (
    FIG5_REFERENCE,
    IOFF_TARGET_A_PER_UM,
    BenchmarkPoint,
    TechnologySeries,
    VDS_BENCHMARK_V,
)
from repro.benchmarking.fig5 import (
    Fig5Result,
    ModelPoint,
    cnt_model_series,
    run_fig5_benchmark,
)

__all__ = [
    "BenchmarkPoint",
    "FIG5_REFERENCE",
    "Fig5Result",
    "IOFF_TARGET_A_PER_UM",
    "ModelPoint",
    "TechnologySeries",
    "VDS_BENCHMARK_V",
    "cnt_model_series",
    "run_fig5_benchmark",
]

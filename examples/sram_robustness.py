"""Can it hold a bit?  Butterfly SNM across device types and supplies.

The paper's Fig. 2 shows the noise margin of a single inverter; this
example pushes the argument to the storage element.  Two cross-coupled
inverters are bistable only if the butterfly plot encloses two lobes —
and the static noise margin (the largest inscribed square) is what an
SRAM cell lives on.  Devices without current saturation never get there.

Run:  python examples/sram_robustness.py
"""

import numpy as np

from repro.analysis.snm import butterfly_snm
from repro.circuit.cells import inverter_vtc
from repro.devices.cntfet import CNTFET
from repro.devices.empirical import TabulatedFET
from repro.experiments.fig2 import non_saturating_fet, saturating_fet


def report(name: str, device, vdd: float) -> None:
    v_in, v_out, _ = inverter_vtc(device, vdd=vdd, n_points=161)
    result = butterfly_snm(v_in, v_out)
    verdict = "holds a bit" if result.is_bistable else "CANNOT store"
    print(
        f"  {name:28s} VDD={vdd:.1f} V  SNM = {result.snm:.3f} V "
        f"({result.snm / vdd:5.1%} of VDD)  -> {verdict}"
    )


def main() -> None:
    print("latch robustness (butterfly static noise margin):\n")

    sat = saturating_fet()
    lin = non_saturating_fet()
    print("empirical devices of Fig. 2, VDD = 1 V:")
    report("saturating FET", sat, 1.0)
    report("non-saturating 'real GNR'", lin, 1.0)

    print("\nphysical ballistic CNT-FET, supply scaling:")
    cnt = TabulatedFET.from_model(
        CNTFET.reference_device(),
        np.linspace(-0.6, 1.3, 77),
        np.linspace(0.0, 1.3, 53),
    )
    for vdd in (1.0, 0.7, 0.5, 0.4, 0.3):
        report("CNT-FET inverter pair", cnt, vdd)

    print(
        "\nconclusion: the CNT latch keeps ~35-45 % of VDD as noise margin "
        "down to 0.3 V,\nwhile the non-saturating device pair is never "
        "bistable — the paper's Fig. 2\nargument, carried through to memory."
    )


if __name__ == "__main__":
    main()

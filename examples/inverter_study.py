"""Why current saturation matters: the paper's Fig. 2 inverter study.

Builds two CMOS inverters on the built-in SPICE-class simulator — one
from saturating FETs, one from gate-steered linear resistors (the "real
GNR" behaviour) — and compares transfer curves, noise margins and the
short-circuit power signature.  Finishes with a 10 fF-loaded transient
and an ASCII rendering of both VTCs.

Run:  python examples/inverter_study.py
"""

import numpy as np

from repro.analysis.vtc import analyze_vtc
from repro.circuit.cells import inverter_vtc
from repro.experiments.fig2 import non_saturating_fet, run_fig2, saturating_fet


def ascii_plot(v_in, curves, labels, width=61, height=17) -> str:
    """Tiny ASCII chart of VTCs (v_out in [0, 1] vs v_in in [0, 1])."""
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x"
    for curve, marker in zip(curves, markers):
        for vi, vo in zip(v_in, curve):
            col = int(round(vi * (width - 1)))
            row = int(round((1.0 - min(max(vo, 0.0), 1.0)) * (height - 1)))
            grid[row][col] = marker
    lines = ["1.0 |" + "".join(row) for row in grid]
    lines[-1] = "0.0 |" + lines[-1][5:]
    lines.append("    +" + "-" * width)
    lines.append("     0.0" + " " * (width - 8) + "1.0")
    legend = "  ".join(f"{m} {l}" for m, l in zip(markers, labels))
    return "\n".join(lines) + "\n     " + legend


def main() -> None:
    sat = saturating_fet()
    lin = non_saturating_fet()

    v_in, vtc_sat, i_sat = inverter_vtc(sat, vdd=1.0, n_points=121)
    _, vtc_lin, i_lin = inverter_vtc(lin, vdd=1.0, n_points=121)

    print(ascii_plot(v_in, [vtc_sat, vtc_lin], ["saturating", "non-saturating"]))

    for name, vtc in (("saturating", vtc_sat), ("non-saturating", vtc_lin)):
        m = analyze_vtc(v_in, vtc)
        print(
            f"\n{name:15s}: max|gain| = {m.max_abs_gain:6.2f}   "
            f"NM_low = {m.nm_low:.3f} V   NM_high = {m.nm_high:.3f} V   "
            f"V_M = {m.switching_threshold_v:.3f} V"
        )

    q_sat = np.trapezoid(i_sat, v_in)
    q_lin = np.trapezoid(i_lin, v_in)
    print(
        f"\nshort-circuit charge across the transition: "
        f"{q_lin / q_sat:.1f}x more without saturation "
        "(the paper's 'burn dc power from VDD to ground')"
    )

    # Full experiment (includes the 10 fF transient of Fig. 2's caption).
    result = run_fig2()
    print(
        f"\n10 fF-loaded saturating inverter: "
        f"delay = {result.delay_sat_s * 1e12:.1f} ps, "
        f"energy = {result.energy_sat_j * 1e15:.2f} fJ"
    )


if __name__ == "__main__":
    main()

"""From wafer to working computer: the Section V story, end to end.

Walks the paper's integration pipeline:

1. grow a chirality population (~2/3 semiconducting),
2. sort it to logic-grade purity (gel chromatography passes),
3. place tubes into device sites (Park-style trench deposition),
4. fabricate a 10,000-device CNFET array and measure its statistics,
5. build the 178-transistor SUBNEG one-bit computer and estimate yield,
6. actually *run* the counting and sorting programs — the workloads the
   Shulaker CNT computer demonstrated — on a gate-level datapath with
   material-derived fault injection.

Run:  python examples/cnt_computer.py
"""

from repro.integration.growth import GrowthDistribution
from repro.integration.placement import TrenchDeposition
from repro.integration.sorting import GEL_CHROMATOGRAPHY, passes_to_reach_purity
from repro.integration.variability import CNFETArrayModel
from repro.integration.yields import GateYieldModel, shulaker_computer_yield
from repro.logic.faults import functional_yield
from repro.logic.subneg import SubnegMachine, counting_program, sort_with_machine


def main() -> None:
    # 1. Growth.
    growth = GrowthDistribution(mean_diameter_nm=1.5, sigma_diameter_nm=0.25)
    print(f"as-grown semiconducting fraction: {growth.semiconducting_fraction():.3f}")

    # 2. Sorting.
    sorted_material = passes_to_reach_purity(GEL_CHROMATOGRAPHY, target_purity=0.9999)
    print(
        f"gel chromatography: {sorted_material.n_passes} passes -> "
        f"purity {sorted_material.purity:.6f} "
        f"({sorted_material.nines():.1f} nines), "
        f"material yield {sorted_material.cumulative_yield:.1%}"
    )

    # 3. Placement.
    trench = TrenchDeposition(mean_tubes_per_site=2.5)
    print(f"trench deposition fill fraction: {trench.fill_fraction():.1%}")

    # 4. The 10,000-device array (Park et al. scale).
    array = CNFETArrayModel(
        semiconducting_purity=sorted_material.purity,
        mean_tubes_per_device=trench.mean_tubes_per_site,
    ).sample_array(10000, seed=2013)
    print(
        f"10,000-device array: {array.pass_fraction:.1%} pass spec, "
        f"{array.shorted_fraction:.2%} shorted, {array.open_fraction:.2%} open"
    )

    # 5. Computer yield with and without metallic-CNT removal.
    without = shulaker_computer_yield(sorted_material.purity, removal_efficiency=0.0)
    with_vmr = shulaker_computer_yield(sorted_material.purity, removal_efficiency=0.999)
    print(
        f"178-FET computer yield: {without.circuit_yield:.1%} without removal, "
        f"{with_vmr.circuit_yield:.1%} with VMR"
    )

    # 6. Run the programs on a (possibly faulty) gate-level machine.
    memory, counter = counting_program(10)
    machine = SubnegMachine(memory=memory, word_bits=8, use_gate_level=True)
    steps = machine.run()
    print(
        f"\nSUBNEG counting program: counted 10 -> {machine.memory[counter]} "
        f"in {steps} instructions (gate-level ALU, "
        f"{machine._alu.gate_count} gates / {machine._alu.transistor_count()} transistors)"
    )

    sorter = SubnegMachine(memory=[0] * 8, word_bits=8, use_gate_level=True)
    print(f"SUBNEG sorting program:  {sort_with_machine([7, 2, 9, 4, 1], sorter)}")

    gate_model = GateYieldModel(
        semiconducting_purity=sorted_material.purity,
        tubes_per_gate=10.0,
        removal_efficiency=0.999,
    )
    mc = functional_yield(gate_model, n_trials=100, seed=501)
    print(
        f"functional yield (counting AND sorting pass, 100 fabricated "
        f"machines): {mc.functional_yield:.1%} "
        f"(per-gate failure probability {mc.gate_failure_probability:.2e})"
    )


if __name__ == "__main__":
    main()

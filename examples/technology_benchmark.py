"""The Fig. 5 technology shoot-out: CNT vs Si vs III-V at V_DD = 0.5 V.

Regenerates the paper's del Alamo-style benchmark — on-current per unit
width at V_DS = 0.5 V with the off-current pinned at 100 nA/um — for the
published reference field and for this package's ballistic CNT-FET swept
over gate length, then renders the point cloud as an ASCII scatter.

Run:  python examples/technology_benchmark.py
"""

import math

from repro.benchmarking.fig5 import run_fig5_benchmark


def ascii_scatter(series: dict[str, list[tuple[float, float]]], width=64, height=18):
    """log-log scatter: gate length (x) vs I_on (y)."""
    points = [(l, i) for pts in series.values() for l, i in pts]
    lx = [math.log10(l) for l, _ in points]
    ly = [math.log10(i) for _, i in points]
    x_lo, x_hi = min(lx), max(lx)
    y_lo, y_hi = min(ly), max(ly)
    grid = [[" "] * width for _ in range(height)]
    markers = "SIAcM"  # Si, InGaAs, InAs, CNT measured, CNT model
    for (name, pts), marker in zip(series.items(), markers):
        for length, ion in pts:
            col = int((math.log10(length) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((1 - (math.log10(ion) - y_lo) / (y_hi - y_lo)) * (height - 1))
            grid[row][col] = marker
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" L_g: {10**x_lo:.0f} .. {10**x_hi:.0f} nm (log);  "
                 f"I_on: {10**y_lo:.0f} .. {10**y_hi:.0f} uA/um (log)")
    legend = "  ".join(f"{m}={n}" for (n, _), m in zip(series.items(), markers))
    return "\n".join(lines) + "\n " + legend


def main() -> None:
    result = run_fig5_benchmark(gate_lengths_nm=(9.0, 20.0, 50.0, 100.0, 300.0))

    series: dict[str, list[tuple[float, float]]] = {}
    for name, tech in result.reference.items():
        series[name] = [(p.gate_length_nm, p.ion_ua_per_um) for p in tech.points]
    series["CNT (model)"] = [
        (p.gate_length_nm, p.ion_ua_per_um) for p in result.model_cnt
    ]

    print("I_on at V_DS = 0.5 V, I_off = 100 nA/um (paper Fig. 5)\n")
    print(ascii_scatter(series))

    print("\nmodel CNT-FET series (with 20 nm transfer-length contacts):")
    for point in result.model_cnt:
        print(
            f"  L_g = {point.gate_length_nm:5.0f} nm:  "
            f"I_on = {point.ion_ua_per_um:6.0f} uA/um   "
            f"(channel transmission {point.transmission:.2f})"
        )

    best_alt = max(
        result.reference[n].best_ion() for n in ("Si", "InGaAs HEMT", "InAs HEMT")
    )
    print(
        f"\nbest non-carbon reference: {best_alt:.0f} uA/um -> every CNT point "
        "above it, as the paper concludes: 'the CNTFET outperforms the alternatives'"
    )


if __name__ == "__main__":
    main()

"""Designing a steeper switch: the CNT tunnel FET of Section IV.

Reproduces the gated PIN diode of the paper's Fig. 6 and then walks the
paper's suggested improvement path — "implementing high-k dielectrics
and segmented gates" — by sweeping the gate stack and reporting SS and
on-current at each point.

Run:  python examples/tfet_explorer.py
"""

import numpy as np

from repro.devices.tfet import CNTTunnelFET
from repro.physics.cnt import chirality_for_gap
from repro.physics.constants import subthreshold_limit_mv_per_decade


def main() -> None:
    tube = chirality_for_gap(0.56)

    # The fabricated device: 10 nm thermal SiO2 back gate, PEI n-doping.
    device = CNTTunnelFET(tube, t_ox_nm=10.0, eps_ox=3.9)
    print(f"device: {device}")
    print(f"thermionic limit: {subthreshold_limit_mv_per_decade():.1f} mV/dec")
    print(f"measured-model SS: {device.subthreshold_swing_mv_per_decade():.1f} mV/dec")
    print(
        "on-current density: "
        f"{device.on_current_density_a_per_m() * 1e-3:.2f} mA/um "
        "(paper: 'in the range of 1 mA/um')"
    )

    # Reverse-bias transfer curve (Fig. 6(b), left branch).
    print("\nreverse bias (V_diode = -0.5 V):")
    for v_gate in np.linspace(-2.0, 0.5, 6):
        current = abs(device.current(float(v_gate), -0.5))
        bar = "#" * max(0, int(14 + np.log10(max(current, 1e-14))))
        print(f"  V_G = {v_gate:+5.2f} V:  |I| = {current:9.3e} A  {bar}")

    # Forward bias: the gate hardly matters.
    fwd = [device.current(v, 0.4) for v in (-2.0, 0.0, 0.5)]
    print(
        f"\nforward bias (V_diode = +0.4 V): I = "
        f"{fwd[0] * 1e6:.1f} / {fwd[1] * 1e6:.1f} / {fwd[2] * 1e6:.1f} uA "
        "at V_G = -2 / 0 / +0.5 V  (gate-independent)"
    )

    # Improvement path: thinner/high-k gate stacks.
    print("\ngate-stack scaling (the paper's predicted improvement):")
    print("  t_ox [nm]  eps_r   lambda [nm]   SS [mV/dec]   I_on [uA]")
    for t_ox, eps_r, label in (
        (10.0, 3.9, "fabricated (SiO2)"),
        (5.0, 3.9, "thinner SiO2"),
        (5.0, 16.0, "high-k HfO2"),
        (2.0, 16.0, "scaled high-k"),
    ):
        variant = CNTTunnelFET(tube, t_ox_nm=t_ox, eps_ox=eps_r)
        print(
            f"  {t_ox:8.1f}  {eps_r:5.1f}   {variant.screening_length_nm:8.2f}     "
            f"{variant.subthreshold_swing_mv_per_decade():8.1f}     "
            f"{abs(variant.current(-2.0, -0.5)) * 1e6:8.2f}   {label}"
        )


if __name__ == "__main__":
    main()

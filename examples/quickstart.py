"""Quickstart: build a CNT-FET, sweep it, and size up the competition.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis.iv import saturation_index, subthreshold_swing_mv_per_decade
from repro.devices import CNTFET, SeriesResistanceFET, trigate_intel_22nm
from repro.physics.cnt import Chirality, chirality_for_gap


def main() -> None:
    # 1. Pick a tube.  The paper's benchmark device targets a 0.56 eV gap,
    #    which lands on a ~1.5 nm-diameter semiconducting chirality.
    tube = chirality_for_gap(0.56)
    print(f"chirality: {tube}")
    print(f"band gap:  {tube.bandgap_ev():.3f} eV")
    print(f"subbands:  {[round(e, 3) for e in tube.subband_edges_ev(3)]} eV")

    # 2. Wrap it in a gate-all-around ballistic FET (Fig. 3 geometry).
    fet = CNTFET(tube, channel_length_nm=20.0, t_ox_nm=3.0, eps_ox=16.0)
    print(f"\ndevice: {fet}")
    print(f"I_on(0.6 V, 0.6 V)  = {fet.current(0.6, 0.6) * 1e6:.1f} uA")
    print(f"I_off(0.0 V, 0.6 V) = {fet.current(0.0, 0.6) * 1e9:.2f} nA")
    print(f"SS = {fet.subthreshold_swing_mv_per_decade():.1f} mV/dec")

    # 3. Output curve: the saturation that real GNRs lack (Fig. 1).
    vds = np.linspace(0.0, 0.5, 26)
    output = np.array([fet.current(0.6, float(v)) for v in vds])
    print(f"saturation index = {saturation_index(vds, output):.3f}  (1 = ideal)")

    # 4. What bad contacts do (Fig. 4): add 50 kOhm per side.
    contacted = SeriesResistanceFET(fet, 50e3, 50e3)
    degraded = np.array([contacted.current(0.6, float(v)) for v in vds])
    print(
        f"with 2 x 50 kOhm contacts: I_on {degraded[-1] * 1e6:.1f} uA, "
        f"saturation index {saturation_index(vds, degraded):.3f}"
    )

    # 5. Size up Intel's trigate (Section III.E).
    trigate = trigate_intel_22nm()
    ratio = fet.current(0.6, 0.6) / trigate.current(1.0, 1.0)
    print(
        f"\ntrigate: {trigate.current(1.0, 1.0) * 1e6:.0f} uA at 1 V; "
        f"CNT delivers {ratio:.0%} of that at 0.6 V from a "
        f"{trigate.cross_section_nm2 / (3.1416 * (tube.diameter_nm / 2) ** 2):.0f}x "
        "smaller cross-section"
    )


if __name__ == "__main__":
    main()

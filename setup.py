"""Shim for environments without the ``wheel`` package (offline PEP 660)."""

from setuptools import setup

setup()

"""Voltage-scaling experiment: the paper's central thesis."""

import pytest

from repro.experiments.scaling import run_voltage_scaling


@pytest.fixture(scope="module")
def result():
    return run_voltage_scaling(supplies_v=(0.4, 0.5, 1.0))


class TestVoltageScaling:
    def test_cnt_logic_works_at_04v(self, result):
        point = result.cnt[0]
        assert point.vdd == 0.4
        assert point.nm_fraction > 0.3
        assert point.is_bistable

    def test_iso_footprint_delay_advantage(self, result):
        # A fabric at 8 nm pitch in the trigate's footprint drives the
        # same load several times faster.
        assert result.delay_advantage_at(0.4) > 3.0

    def test_advantage_grows_at_low_voltage(self, result):
        # "will enable further voltage ... scaling": the CNT advantage
        # must not shrink as VDD comes down.
        assert result.delay_advantage_at(0.4) >= result.delay_advantage_at(1.0)

    def test_delays_increase_at_low_supply(self, result):
        cnt_delays = [p.delay_s for p in result.cnt]
        si_delays = [p.delay_s for p in result.silicon]
        assert cnt_delays[0] > cnt_delays[-1]
        assert si_delays[0] > si_delays[-1]

    def test_min_logic_supply_reported(self, result):
        assert result.minimum_logic_supply("cnt") <= 0.5

    def test_tubes_per_footprint(self, result):
        # 88 nm effective width at 8 nm pitch.
        assert result.tubes_per_footprint == 11

    def test_rows_printable(self, result):
        rows = result.rows()
        assert len(rows) > 10
        assert all(isinstance(label, str) for label, *_ in rows)

"""Cascaded-chain experiment: regeneration vs geometric level collapse."""

import pytest

from repro.circuit.netlist import Circuit
from repro.experiments.cascade import build_inverter_chain, run_cascade
from repro.experiments.fig2 import saturating_fet


@pytest.fixture(scope="module")
def result():
    return run_cascade(n_stages=3)


class TestChainBuilder:
    def test_stage_count_validation(self):
        with pytest.raises(ValueError):
            build_inverter_chain(saturating_fet(), n_stages=0)

    def test_nodes_created(self):
        chain = build_inverter_chain(saturating_fet(), n_stages=3)
        assert isinstance(chain, Circuit)
        for stage in range(4):
            assert f"s{stage}" in chain.node_names or stage == 0


class TestCascadeBehaviour:
    def test_saturating_chain_regenerates(self, result):
        assert all(s > 0.95 * result.vdd for s in result.stage_swings_sat)

    def test_non_saturating_chain_attenuates_monotonically(self, result):
        swings = result.stage_swings_lin
        assert all(a > b for a, b in zip(swings, swings[1:]))

    def test_attenuation_is_sub_unity(self, result):
        assert result.lin_attenuation_per_stage < 1.0

    def test_final_levels(self, result):
        assert result.sat_final_swing_fraction > 0.95
        assert result.lin_final_swing_fraction < 0.8

    def test_rows_cover_both_chains(self, result):
        rows = result.rows()
        labels = [label for label, _ in rows]
        assert any("saturating: stage 1" in l for l in labels)
        assert any("non-saturating: stage 3" in l for l in labels)

"""End-to-end figure pipelines: every paper claim, asserted.

These are the integration tests of the reproduction: each test states a
sentence from the paper and checks the regenerated experiment satisfies
it.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_ballisticity_ablation,
    run_contact_length_ablation,
    run_dark_space_ablation,
    run_fig1,
    run_fig2,
    run_fig4,
    run_fig6,
    run_integration_stats,
    run_table1,
    run_tfet_oxide_ablation,
)


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(n_points=31)


@pytest.fixture(scope="module")
def fig2():
    return run_fig2(n_points=121)


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(n_points=26)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(n_points=121)


@pytest.fixture(scope="module")
def table1():
    return run_table1()


class TestFig1:
    def test_equal_band_gaps(self, fig1):
        # "a GNR with ... a band-gap of 0.56 eV ... CNT with the same band-gap"
        assert fig1.cnt_gap_ev == pytest.approx(0.56, abs=0.02)
        assert fig1.gnr_gap_ev == pytest.approx(fig1.cnt_gap_ev, abs=0.02)

    def test_log_scale_overlap(self, fig1):
        # "The data overlap on this scale for CNT and GNR."
        assert fig1.log_scale_max_deviation_decades < 0.5

    def test_small_linear_difference(self, fig1):
        # "only a small difference, which shows up in the linear plot"
        assert 1.2 < fig1.linear_scale_on_ratio < 3.0

    def test_simulated_devices_saturate(self, fig1):
        # The simulation's "current saturation at higher source-drain voltages".
        assert fig1.cnt_saturation > 0.9
        assert fig1.gnr_saturation > 0.9

    def test_real_gnr_never_saturates(self, fig1):
        # "No current saturation is observed in real GNRs at such low voltages."
        assert fig1.real_gnr_saturation < 0.05

    def test_two_real_gnr_gate_voltages(self, fig1):
        assert len(fig1.real_gnr_output_a) == 2


class TestFig2:
    def test_saturating_inverter_nearly_ideal(self, fig2):
        # "the inverter ... comes very close to the ideal behaviour"
        assert fig2.metrics_sat.max_abs_gain > 5.0
        assert fig2.metrics_sat.v_out_high == pytest.approx(1.0, abs=0.01)
        assert fig2.metrics_sat.v_out_low == pytest.approx(0.0, abs=0.01)

    def test_noise_margin_almost_04(self, fig2):
        # "The noise margin ... is almost 0.4 Volt at the high as well as
        # at the low voltage side."
        assert fig2.metrics_sat.nm_low == pytest.approx(0.4, abs=0.08)
        assert fig2.metrics_sat.nm_high == pytest.approx(0.4, abs=0.08)

    def test_non_saturating_gain_below_unity(self, fig2):
        # "The absolute gain of this inverter never exceeds unity"
        assert fig2.metrics_lin.max_abs_gain < 1.0

    def test_non_saturating_noise_margin_zero(self, fig2):
        # "therefore the noise margin is almost zero"
        assert fig2.metrics_lin.nm_low == 0.0
        assert fig2.metrics_lin.nm_high == 0.0

    def test_dc_burn_through_transition(self, fig2):
        # "pFET and nFET are conductive almost during the whole transition"
        assert fig2.short_circuit_charge_ratio > 2.0

    def test_matched_on_currents(self, fig2):
        # Both device types deliver the same corner current by design.
        sat_on = fig2.output_family_sat[1.0][-1]
        lin_on = fig2.output_family_lin[1.0][-1]
        assert lin_on == pytest.approx(sat_on, rel=0.05)

    def test_dynamic_behaviour_sane(self, fig2):
        # 10 fF load at ~0.2 mA drive: tens of ps, a few fJ.
        assert 1e-12 < fig2.delay_sat_s < 1e-9
        assert 1e-16 < fig2.energy_sat_j < 1e-13


class TestFig4:
    def test_current_reduced(self, fig4):
        # "Not only is the current reduced in (b) ..."
        assert fig4.current_suppression > 3.0

    def test_shape_linearised(self, fig4):
        # "... also the shape of the I-V has changed to a more linear
        # characteristic with less saturation"
        assert fig4.ideal_saturation > 0.9
        assert fig4.contacted_saturation < 0.3

    def test_contacted_current_scale_set_by_resistance(self, fig4):
        # With 100 kOhm total the device approaches V/R behaviour.
        vg = fig4.top_gate_voltage
        i_max = fig4.contacted_family[vg][-1]
        assert i_max == pytest.approx(0.5 / 100e3, rel=0.2)


class TestFig6:
    def test_ss_near_measured_83(self, fig6):
        # "a SS of 83 mV/dec"; individual sweeps down to 32.
        assert 30.0 < fig6.ss_mv_per_decade < 110.0

    def test_on_current_density_order_1ma_per_um(self, fig6):
        # "on-current density is still in the range of 1 mA/um"
        density_ma_um = fig6.on_current_density_a_per_m * 1e-3
        assert 0.3 < density_ma_um < 30.0

    def test_sharp_reverse_turn_on(self, fig6):
        assert fig6.reverse_on_off_ratio > 1e3

    def test_forward_hardly_modulated(self, fig6):
        # "the application of the back voltage is hardly modulating"
        assert fig6.forward_gate_modulation < 1.3

    def test_beats_thermionic_tfet_expectation(self, fig6):
        # A TFET's merit: on-current far above classical-TFET pA levels.
        assert fig6.reverse_current_a.max() > 1e-6


class TestTable1:
    def test_trigate_66ua(self, table1):
        assert table1.trigate_current_a == pytest.approx(66e-6, rel=0.1)

    def test_cnt_20ua_at_06v(self, table1):
        assert table1.cnt_current_a == pytest.approx(20e-6, rel=0.3)

    def test_one_third_current_ratio(self, table1):
        # "almost 1/3 of the trigate's current"
        assert table1.current_ratio == pytest.approx(1.0 / 3.0, abs=0.12)

    def test_cross_section_over_300x(self, table1):
        # "more than 300 times bigger"
        assert table1.cross_section_ratio > 300.0

    def test_11kohm_series_resistance(self, table1):
        # "overall serial resistance ... as low as 11 kOhm"
        assert table1.series_resistance_ohm == pytest.approx(11e3, rel=0.15)

    def test_gnr_on_off_1e6(self, table1):
        # "Sub-10 nm width GNR show Ion/Ioff ratio of 1e6"
        assert table1.gnr_on_off_ratio > 1e5

    def test_gnr_2ma_per_um(self, table1):
        assert table1.gnr_density_ma_per_um == pytest.approx(2.0, rel=0.1)

    def test_gnr_still_no_saturation(self, table1):
        # "but fail to show current saturation"
        assert table1.gnr_saturation_index < 0.05

    def test_cnt_best_ss_at_9nm(self, table1):
        # Section III.C: no dark space -> best short-channel SS.
        assert table1.ss_cnt_9nm_mv < table1.ss_si_9nm_mv < table1.ss_inas_9nm_mv


class TestIntegrationStats:
    @pytest.fixture(scope="class")
    def stats(self):
        return run_integration_stats(n_array_devices=2000, n_functional_trials=30)

    def test_two_thirds_semiconducting(self, stats):
        assert stats.semiconducting_fraction == pytest.approx(2.0 / 3.0, abs=0.05)

    def test_sorting_costs_material(self, stats):
        assert stats.passes_to_4nines >= 1
        assert 0.0 < stats.sorting_yield_4nines < 1.0

    def test_park_fill_over_90_percent(self, stats):
        assert stats.trench_fill_fraction > 0.9

    def test_removal_improves_computer_yield(self, stats):
        assert stats.computer_yield_with_removal > stats.computer_yield_no_removal

    def test_functional_yield_consistent_with_analytic(self, stats):
        # Program-level MC should not wildly contradict the analytic model.
        assert stats.functional_yield_mc >= stats.computer_yield_with_removal - 0.3


class TestAblations:
    def test_dark_space_penalty_ordering(self):
        ablation = run_dark_space_ablation()
        assert ablation.penalty_at(9.0, "InAs") > ablation.penalty_at(9.0, "Si") > 1.0

    def test_dark_space_penalty_vanishes_long_channel(self):
        ablation = run_dark_space_ablation(gate_lengths_nm=(9.0, 30.0))
        assert ablation.penalty_at(30.0, "InAs") < ablation.penalty_at(9.0, "InAs")

    def test_ballisticity_monotone(self):
        ablation = run_ballisticity_ablation()
        assert np.all(np.diff(ablation.transmission) < 0.0)
        assert np.all(np.diff(ablation.on_current_a) < 0.0)

    def test_contact_length_floor(self):
        ablation = run_contact_length_ablation()
        assert np.all(np.diff(ablation.series_resistance_ohm) < 0.0)
        assert ablation.floor_ohm == pytest.approx(10.5e3, rel=0.1)

    def test_tfet_oxide_scaling(self):
        ablation = run_tfet_oxide_ablation(t_ox_values_nm=(3.0, 10.0, 20.0))
        # Thinner oxide -> shorter screening length -> more on-current.
        assert np.all(np.diff(ablation.screening_length_nm) > 0.0)
        assert np.all(np.diff(ablation.on_current_a) < 0.0)

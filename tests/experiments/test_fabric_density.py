"""Fabric density experiment: pitch/purity trade-offs (reduced sweep)."""

import math

import pytest

from repro.experiments.fabric_density import run_fabric_density


@pytest.fixture(scope="module")
def result():
    # Reduced sweep: the shared device cache makes repeats cheap, but the
    # first tabulations dominate, so keep the grid small in unit tests.
    return run_fabric_density(
        pitches_nm=(8.0, 32.0),
        purities=(0.9, 1.0),
        n_samples=3,
        seed=5,
    )


class TestFabricDensity:
    def test_tighter_pitch_higher_density(self, result):
        assert result.density_ma_per_um[0] > result.density_ma_per_um[1]

    def test_fabric_competitive_at_logic_pitch(self, result):
        assert result.density_ma_per_um[0] > result.trigate_density_ma_per_um

    def test_purity_restores_on_off(self, result):
        assert result.median_on_off[1] > 10 * result.median_on_off[0]

    def test_helper_queries(self, result):
        pitch = result.pitch_to_beat_trigate_nm()
        assert not math.isnan(pitch)
        purity = result.purity_for_on_off(target=1e4)
        assert purity == 1.0

    def test_rows_printable(self, result):
        rows = result.rows()
        assert len(rows) >= 6
        assert all(isinstance(v, float) for _, v in rows)

"""Cold-start DC convergence: the adaptive continuation subsystem.

Regression suite for the solver's historical divergence on long FET
chains: before the continuation ladder, plain Newton and both fixed
homotopy schedules failed beyond ~4 inverter stages and every caller
had to hand-feed a structural ``x0`` guess.  These tests solve 8- and
16-stage chains and a 3-stage ring oscillator from a true cold start —
no ``x0`` anywhere.
"""

import numpy as np
import pytest

from repro.circuit.cells import build_ring_oscillator
from repro.circuit.continuation import (
    ConvergenceError,
    ConvergenceReport,
    solve_dc_robust,
    structural_seed,
)
from repro.circuit.dc import operating_point
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.solver import newton_solve, solve_dc
from repro.circuit.transient import transient
from repro.circuit.waveforms import DC, Pulse
from repro.devices.empirical import AlphaPowerFET
from repro.experiments.cascade import build_inverter_chain


class TestColdStartChains:
    @pytest.mark.parametrize("n_stages", [8, 16])
    def test_chain_cold_start(self, n_stages):
        circuit = build_inverter_chain(AlphaPowerFET(), n_stages=n_stages)
        system = circuit.build_system()
        x = solve_dc(system)  # no x0: this used to raise beyond 4 stages
        residual, _ = system.evaluate(x)
        assert float(np.max(np.abs(residual))) < 1e-9
        # Alternating rails: stage i inverts stage i-1, input held low.
        for i in range(n_stages + 1):
            expected = float(i % 2)
            assert system.voltage_of(x, f"s{i}") == pytest.approx(expected, abs=1e-2)

    @pytest.mark.parametrize("n_stages", [8, 16])
    def test_chain_from_zeros_uses_adaptive_ladder(self, n_stages):
        # Bypass the structural seeder: the adaptive gmin ladder itself
        # must get through where the old fixed schedule aborted.
        circuit = build_inverter_chain(AlphaPowerFET(), n_stages=n_stages)
        system = circuit.build_system()
        x, report = solve_dc_robust(system, np.zeros(system.size))
        assert report.converged
        assert report.strategy != "newton"  # plain Newton can't do this
        assert system.voltage_of(x, f"s{n_stages}") == pytest.approx(
            float(n_stages % 2), abs=1e-2
        )

    def test_chain_transient_cold_start(self):
        # End-to-end: the benchmark scenario, with the x0 seed removed.
        stimulus = Pulse(0.0, 1.0, delay_s=2e-11, rise_s=1e-11, fall_s=1e-11,
                         width_s=2e-10, period_s=4e-10)
        circuit = build_inverter_chain(
            AlphaPowerFET(), n_stages=8, input_waveform=stimulus
        )
        result = transient(circuit, 4e-10, 2e-12)
        swing = result.voltage("s8")
        assert swing.max() > 0.9 and swing.min() < 0.1

    def test_ring_oscillator_cold_start(self):
        circuit = build_ring_oscillator(AlphaPowerFET(), n_stages=3)
        system = circuit.build_system()
        x = solve_dc(system)
        residual, _ = system.evaluate(x)
        assert float(np.max(np.abs(residual))) < 1e-9
        # Odd ring: the only DC solution sits near the metastable
        # mid-rail point of every stage.
        for i in range(3):
            assert 0.3 < system.voltage_of(x, f"n{i}") < 0.7


class TestStructuralSeed:
    def test_chain_seed_reconstructs_rails(self):
        circuit = build_inverter_chain(AlphaPowerFET(), n_stages=8)
        system = circuit.build_system()
        seed = structural_seed(system)
        assert system.voltage_of(seed, "vdd") == pytest.approx(1.0)
        for i in range(9):
            assert system.voltage_of(seed, f"s{i}") == pytest.approx(float(i % 2))

    def test_seed_respects_waveform_time(self):
        circuit = build_inverter_chain(
            AlphaPowerFET(),
            n_stages=2,
            input_waveform=Pulse(0.0, 1.0, delay_s=0.0, rise_s=1e-12,
                                 fall_s=1e-12, width_s=1e-9),
        )
        system = circuit.build_system()
        high = structural_seed(system, time_s=0.5e-9)  # input pulsed high
        assert system.voltage_of(high, "s0") == pytest.approx(1.0)
        assert system.voltage_of(high, "s1") == pytest.approx(0.0)

    def test_source_pinning_beats_resistor_propagation(self):
        # V2's terminals only become known via resistor propagation; the
        # exact source rule must still pin b = a + 0.5, not let the
        # resistor wire heuristic drag b to ground first.
        c = Circuit()
        c.add_voltage_source("V1", "vdd", "0", DC(1.0))
        c.add_resistor("R1", "vdd", "a", 1e3)
        c.add_voltage_source("V2", "b", "a", DC(0.5))
        c.add_resistor("RB", "b", "0", 1e6)
        system = c.build_system()
        seed = structural_seed(system)
        assert system.voltage_of(seed, "a") == pytest.approx(1.0)
        assert system.voltage_of(seed, "b") == pytest.approx(1.5)

    def test_unreachable_nodes_settle_mid_rail(self):
        c = Circuit()
        c.add_voltage_source("VDD", "vdd", "0", DC(1.0))
        fet = AlphaPowerFET()
        # Gate driven at mid-supply through nothing the seeder can see.
        c.add_fet("M1", "out", "float", "0", fet)
        c.add_resistor("RL", "vdd", "out", 1e5)
        system = c.build_system()
        seed = structural_seed(system)
        assert system.voltage_of(seed, "float") == pytest.approx(0.5)


class TestConvergenceReport:
    def test_happy_path_report(self):
        circuit = build_inverter_chain(AlphaPowerFET(), n_stages=8)
        system = circuit.build_system()
        x, report = solve_dc_robust(system)
        assert report.converged
        assert report.strategy == "newton"
        assert report.total_iterations >= 1
        assert report.final_residual < 1e-9
        assert "converged via newton" in report.describe()

    def test_newton_solve_records_attempt(self):
        circuit = build_inverter_chain(AlphaPowerFET(), n_stages=2)
        system = circuit.build_system()
        report = ConvergenceReport()
        _, converged = newton_solve(
            system, np.zeros(system.size), report=report, stage="newton"
        )
        assert len(report.attempts) == 1
        attempt = report.attempts[0]
        assert attempt.stage == "newton"
        assert attempt.converged == converged
        assert attempt.iterations > 0

    def test_exhausted_ladder_raises_with_report(self):
        # A current source into a floating FET gate: no DC path to
        # ground, so the matrix is singular at gmin = 0 and every
        # strategy must fail at its final homotopy-free solve.
        c = Circuit()
        c.add_current_source("I1", "0", "g", DC(1e-6))
        c.add_fet("M1", "d", "g", "0", AlphaPowerFET())
        c.add_resistor("RD", "d", "0", 1e4)
        system = c.build_system()
        with pytest.raises(CircuitError) as excinfo:
            solve_dc(system)
        assert isinstance(excinfo.value, ConvergenceError)
        report = excinfo.value.report
        assert not report.converged
        assert set(report.stages_used) >= {"newton", "gmin", "source", "ptc"}
        assert "FAILED" in str(excinfo.value)

    def test_report_carries_full_ladder_history(self):
        """ConvergenceError.report records every rung, not just the last.

        The continuation rescue paths (transient step rescue, the sweep
        engines' per-instance fallbacks) rely on this history for
        diagnosis: each attempt carries its stage, homotopy parameter,
        iteration count and final residual, in execution order.
        """
        c = Circuit()
        c.add_current_source("I1", "0", "g", DC(1e-6))
        c.add_fet("M1", "d", "g", "0", AlphaPowerFET())
        c.add_resistor("RD", "d", "0", 1e4)
        system = c.build_system()
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(system)
        report = excinfo.value.report

        # Every strategy the ladder walked left multiple recorded rungs.
        assert len(report.attempts) > len(report.stages_used)
        assert report.total_iterations == sum(
            a.iterations for a in report.attempts
        )
        # Stages appear in ladder order, and homotopy stages record the
        # continuation parameter of each rung.
        assert report.stages_used[0] == "newton"
        for attempt in report.attempts:
            assert attempt.stage in {"newton", "gmin", "source", "ptc"}
            assert np.isfinite(attempt.residual) or attempt.residual == np.inf
            if attempt.stage in {"gmin", "source", "ptc"}:
                assert attempt.parameter is not None
        gmin_params = [
            a.parameter for a in report.attempts if a.stage == "gmin"
        ]
        assert len(set(gmin_params)) > 1  # the ladder actually stepped
        # describe() names each stage with its attempt counts.
        text = report.describe()
        for stage in report.stages_used:
            assert stage in text
        assert "last parameter" in text


class TestUnifiedConvergenceCriterion:
    def test_stall_below_tolerance_is_not_converged(self):
        # The singular floating-gate system: Newton can't even step.
        c = Circuit()
        c.add_current_source("I1", "0", "g", DC(1e-6))
        c.add_fet("M1", "d", "g", "0", AlphaPowerFET())
        c.add_resistor("RD", "d", "0", 1e4)
        system = c.build_system()
        _, converged = newton_solve(system, np.zeros(system.size))
        assert not converged

    def test_converged_means_residual_tolerance(self):
        circuit = build_inverter_chain(AlphaPowerFET(), n_stages=4)
        system = circuit.build_system()
        x, converged = newton_solve(system, structural_seed(system))
        assert converged
        residual, _ = system.evaluate(x)
        assert float(np.max(np.abs(residual))) < 1e-9


class TestLinearPrefactorization:
    def test_linear_only_flag(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", DC(1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        system = c.build_system()
        assert system._plan is not None and system._plan.linear_only
        x = solve_dc(system)
        assert system.voltage_of(x, "b") == pytest.approx(0.5)

    def test_fet_circuit_is_not_linear_only(self):
        circuit = build_inverter_chain(AlphaPowerFET(), n_stages=1)
        assert not circuit.build_system()._plan.linear_only

    def test_factorization_cached_across_transient_steps(self):
        c = Circuit()
        c.add_voltage_source(
            "V1", "a", "0",
            Pulse(0.0, 1.0, delay_s=1e-10, rise_s=1e-11, fall_s=1e-11,
                  width_s=5e-10),
        )
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "0", 1e-13)  # tau = 0.1 ns
        result = transient(c, 5e-10, 1e-12)
        # RC settles onto the pulse plateau within a few tau.
        assert result.voltage("b")[-1] == pytest.approx(1.0, abs=0.05)
        system = c.build_system()
        plan = system._plan
        residual = np.zeros(system.size)
        step1 = plan.linear_step(residual, 1e-12, "trapezoidal")
        assert plan._linear_system(1e-12, "trapezoidal").solve is not None
        assert np.allclose(step1, 0.0)

    def test_operating_point_no_x0_needed_anywhere(self):
        # The public entry points solve the 16-stage chain cold.
        circuit = build_inverter_chain(AlphaPowerFET(), n_stages=16)
        op = operating_point(circuit)
        assert op.voltage("s16") == pytest.approx(0.0, abs=1e-2)

"""Small-signal AC analysis against closed-form frequency responses."""

import numpy as np
import pytest

from repro.circuit.ac import ACResult, ac_analysis
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.waveforms import DC
from repro.devices.base import PType
from repro.devices.empirical import AlphaPowerFET


def rc_lowpass(r=1e3, c=1e-9):
    circuit = Circuit()
    circuit.add_voltage_source("VIN", "a", "0", DC(0.0))
    circuit.add_resistor("R", "a", "b", r)
    circuit.add_capacitor("C", "b", "0", c)
    return circuit


class TestRCLowpass:
    def test_matches_analytic_magnitude(self):
        r, c = 1e3, 1e-9
        frequencies = np.logspace(3, 8, 61)
        result = ac_analysis(rc_lowpass(r, c), "VIN", frequencies)
        measured = np.abs(result.transfer("b"))
        expected = 1.0 / np.sqrt(1.0 + (2 * np.pi * frequencies * r * c) ** 2)
        assert np.max(np.abs(measured - expected)) < 1e-9

    def test_phase_approaches_minus_90(self):
        result = ac_analysis(rc_lowpass(), "VIN", np.logspace(3, 9, 61))
        phase = result.phase_deg("b")
        assert phase[0] == pytest.approx(0.0, abs=1.0)
        assert phase[-1] == pytest.approx(-90.0, abs=2.0)

    def test_input_node_is_unity(self):
        result = ac_analysis(rc_lowpass(), "VIN", np.logspace(3, 6, 11))
        assert np.abs(result.transfer("a")) == pytest.approx(1.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(CircuitError):
            ac_analysis(rc_lowpass(), "VIN", [])
        with pytest.raises(CircuitError):
            ac_analysis(rc_lowpass(), "VIN", [-1.0])
        with pytest.raises(CircuitError):
            ac_analysis(rc_lowpass(), "VX", [1e3])


class TestRCDivider:
    def test_resistive_divider_flat(self):
        circuit = Circuit()
        circuit.add_voltage_source("VIN", "a", "0", DC(0.0))
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_resistor("R2", "b", "0", 3e3)
        result = ac_analysis(circuit, "VIN", np.logspace(2, 9, 15))
        assert np.abs(result.transfer("b")) == pytest.approx(0.75, abs=1e-12)


class TestAmplifier:
    def make_common_source(self, load_c=1e-15):
        circuit = Circuit()
        circuit.add_voltage_source("VDD", "vdd", "0", DC(1.0))
        circuit.add_voltage_source("VIN", "in", "0", DC(0.5))
        fet = AlphaPowerFET()
        circuit.add_fet("MP", "out", "in", "vdd", PType(fet))
        circuit.add_fet("MN", "out", "in", "0", fet)
        circuit.add_capacitor("CL", "out", "0", load_c)
        return circuit

    def test_inverter_gain_at_low_frequency(self):
        circuit = self.make_common_source()
        result = ac_analysis(circuit, "VIN", np.logspace(3, 6, 7))
        # At V_M the inverter's small-signal gain is -(gm_n+gm_p)/(gds sum),
        # well above 1 for saturating devices.
        gain = np.abs(result.transfer("out"))[0]
        assert gain > 5.0

    def test_single_pole_rolloff(self):
        circuit = self.make_common_source(load_c=1e-12)
        frequencies = np.logspace(5, 12, 71)
        result = ac_analysis(circuit, "VIN", frequencies)
        magnitude = np.abs(result.transfer("out"))
        # -20 dB/decade well past the pole.
        ratio = magnitude[-1] / magnitude[-8]
        decades = np.log10(frequencies[-1] / frequencies[-8])
        assert 20 * np.log10(ratio) == pytest.approx(-20 * decades, abs=1.5)

    def test_unity_gain_frequency(self):
        circuit = self.make_common_source(load_c=1e-12)
        result = ac_analysis(circuit, "VIN", np.logspace(5, 12, 141))
        ugf = result.unity_gain_frequency_hz("out")
        # gm/(2 pi C) scale: a few hundred MHz for ~0.5 mS into 1 pF.
        assert 1e7 < ugf < 1e10


def synthetic_response(magnitudes):
    """ACResult with a prescribed |H| on a decade-spaced grid."""
    magnitudes = np.asarray(magnitudes, dtype=float)
    frequencies = np.logspace(6, 6 + magnitudes.size - 1, magnitudes.size)
    return ACResult(
        frequencies_hz=frequencies,
        voltages={"out": magnitudes.astype(complex)},
    )


class TestUnityGainEdgeCases:
    """Falling-edge detection must not wrap around the sweep ends."""

    def test_falling_crossing_interpolates_on_log_axes(self):
        # 10x above at 1e6 Hz, 10x below at 1e7 Hz: the log-log
        # interpolated crossing sits at the geometric mean.
        result = synthetic_response([10.0, 0.1, 0.01])
        ugf = result.unity_gain_frequency_hz("out")
        assert ugf == pytest.approx(np.sqrt(1e6 * 1e7), rel=1e-12)

    def test_start_below_end_above_raises(self):
        # The old np.roll formulation wrapped above[-1] into position 0
        # and fabricated a crossing at the first sweep point.
        result = synthetic_response([0.5, 2.0, 4.0, 8.0])
        with pytest.raises(CircuitError, match="never crosses"):
            result.unity_gain_frequency_hz("out")

    def test_band_pass_finds_real_falling_edge(self):
        # Rises through unity, then falls back below: only the falling
        # edge (between the last two points) counts.  The wrap used to
        # mask it with a spurious edge at index 0.
        result = synthetic_response([0.5, 2.0, 2.0, 0.5])
        ugf = result.unity_gain_frequency_hz("out")
        assert ugf == pytest.approx(np.sqrt(1e8 * 1e9), rel=1e-12)

    def test_never_reaching_unity_raises(self):
        result = synthetic_response([0.1, 0.2, 0.3])
        with pytest.raises(CircuitError, match="never reaches"):
            result.unity_gain_frequency_hz("out")

    def test_entirely_above_unity_raises(self):
        result = synthetic_response([5.0, 4.0, 3.0])
        with pytest.raises(CircuitError, match="never crosses"):
            result.unity_gain_frequency_hz("out")

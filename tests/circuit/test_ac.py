"""Small-signal AC analysis against closed-form frequency responses.

Plus the compiled-path contracts: the stacked complex sweep
(:class:`ACPlan`) is pinned to the legacy per-frequency loop at 1e-9
in both the dense and sparse regimes, and the batched paths are
bitwise invariant to frequency chunking and corner order.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.ac import (
    ACPlan,
    ACResult,
    BatchedACResult,
    ac_analysis,
    ac_monte_carlo,
)
from repro.circuit.cells import build_inverter
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.sweep import FETVariation
from repro.circuit.waveforms import DC
from repro.devices.base import PType
from repro.devices.empirical import AlphaPowerFET
from repro.experiments.cascade import build_inverter_chain


def rc_lowpass(r=1e3, c=1e-9):
    circuit = Circuit()
    circuit.add_voltage_source("VIN", "a", "0", DC(0.0))
    circuit.add_resistor("R", "a", "b", r)
    circuit.add_capacitor("C", "b", "0", c)
    return circuit


class TestRCLowpass:
    def test_matches_analytic_magnitude(self):
        r, c = 1e3, 1e-9
        frequencies = np.logspace(3, 8, 61)
        result = ac_analysis(rc_lowpass(r, c), "VIN", frequencies)
        measured = np.abs(result.transfer("b"))
        expected = 1.0 / np.sqrt(1.0 + (2 * np.pi * frequencies * r * c) ** 2)
        assert np.max(np.abs(measured - expected)) < 1e-9

    def test_phase_approaches_minus_90(self):
        result = ac_analysis(rc_lowpass(), "VIN", np.logspace(3, 9, 61))
        phase = result.phase_deg("b")
        assert phase[0] == pytest.approx(0.0, abs=1.0)
        assert phase[-1] == pytest.approx(-90.0, abs=2.0)

    def test_input_node_is_unity(self):
        result = ac_analysis(rc_lowpass(), "VIN", np.logspace(3, 6, 11))
        assert np.abs(result.transfer("a")) == pytest.approx(1.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(CircuitError):
            ac_analysis(rc_lowpass(), "VIN", [])
        with pytest.raises(CircuitError):
            ac_analysis(rc_lowpass(), "VIN", [-1.0])
        with pytest.raises(CircuitError):
            ac_analysis(rc_lowpass(), "VX", [1e3])


class TestRCDivider:
    def test_resistive_divider_flat(self):
        circuit = Circuit()
        circuit.add_voltage_source("VIN", "a", "0", DC(0.0))
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_resistor("R2", "b", "0", 3e3)
        result = ac_analysis(circuit, "VIN", np.logspace(2, 9, 15))
        assert np.abs(result.transfer("b")) == pytest.approx(0.75, abs=1e-12)


class TestAmplifier:
    def make_common_source(self, load_c=1e-15):
        circuit = Circuit()
        circuit.add_voltage_source("VDD", "vdd", "0", DC(1.0))
        circuit.add_voltage_source("VIN", "in", "0", DC(0.5))
        fet = AlphaPowerFET()
        circuit.add_fet("MP", "out", "in", "vdd", PType(fet))
        circuit.add_fet("MN", "out", "in", "0", fet)
        circuit.add_capacitor("CL", "out", "0", load_c)
        return circuit

    def test_inverter_gain_at_low_frequency(self):
        circuit = self.make_common_source()
        result = ac_analysis(circuit, "VIN", np.logspace(3, 6, 7))
        # At V_M the inverter's small-signal gain is -(gm_n+gm_p)/(gds sum),
        # well above 1 for saturating devices.
        gain = np.abs(result.transfer("out"))[0]
        assert gain > 5.0

    def test_single_pole_rolloff(self):
        circuit = self.make_common_source(load_c=1e-12)
        frequencies = np.logspace(5, 12, 71)
        result = ac_analysis(circuit, "VIN", frequencies)
        magnitude = np.abs(result.transfer("out"))
        # -20 dB/decade well past the pole.
        ratio = magnitude[-1] / magnitude[-8]
        decades = np.log10(frequencies[-1] / frequencies[-8])
        assert 20 * np.log10(ratio) == pytest.approx(-20 * decades, abs=1.5)

    def test_unity_gain_frequency(self):
        circuit = self.make_common_source(load_c=1e-12)
        result = ac_analysis(circuit, "VIN", np.logspace(5, 12, 141))
        ugf = result.unity_gain_frequency_hz("out")
        # gm/(2 pi C) scale: a few hundred MHz for ~0.5 mS into 1 pF.
        assert 1e7 < ugf < 1e10


def synthetic_response(magnitudes):
    """ACResult with a prescribed |H| on a decade-spaced grid."""
    magnitudes = np.asarray(magnitudes, dtype=float)
    frequencies = np.logspace(6, 6 + magnitudes.size - 1, magnitudes.size)
    return ACResult(
        frequencies_hz=frequencies,
        voltages={"out": magnitudes.astype(complex)},
    )


class TestUnityGainEdgeCases:
    """Falling-edge detection must not wrap around the sweep ends."""

    def test_falling_crossing_interpolates_on_log_axes(self):
        # 10x above at 1e6 Hz, 10x below at 1e7 Hz: the log-log
        # interpolated crossing sits at the geometric mean.
        result = synthetic_response([10.0, 0.1, 0.01])
        ugf = result.unity_gain_frequency_hz("out")
        assert ugf == pytest.approx(np.sqrt(1e6 * 1e7), rel=1e-12)

    def test_start_below_end_above_raises(self):
        # The old np.roll formulation wrapped above[-1] into position 0
        # and fabricated a crossing at the first sweep point.
        result = synthetic_response([0.5, 2.0, 4.0, 8.0])
        with pytest.raises(CircuitError, match="never crosses"):
            result.unity_gain_frequency_hz("out")

    def test_band_pass_finds_real_falling_edge(self):
        # Rises through unity, then falls back below: only the falling
        # edge (between the last two points) counts.  The wrap used to
        # mask it with a spurious edge at index 0.
        result = synthetic_response([0.5, 2.0, 2.0, 0.5])
        ugf = result.unity_gain_frequency_hz("out")
        assert ugf == pytest.approx(np.sqrt(1e8 * 1e9), rel=1e-12)

    def test_never_reaching_unity_raises(self):
        result = synthetic_response([0.1, 0.2, 0.3])
        with pytest.raises(CircuitError, match="never reaches"):
            result.unity_gain_frequency_hz("out")

    def test_entirely_above_unity_raises(self):
        result = synthetic_response([5.0, 4.0, 3.0])
        with pytest.raises(CircuitError, match="never crosses"):
            result.unity_gain_frequency_hz("out")


class TestFrequencyGridValidation:
    """Unsorted grids must fail at the boundary, not corrupt UGF interp."""

    def test_descending_rejected(self):
        with pytest.raises(CircuitError, match="strictly increasing"):
            ac_analysis(rc_lowpass(), "VIN", [1e6, 1e5, 1e4])

    def test_shuffled_rejected(self):
        with pytest.raises(CircuitError, match="strictly increasing"):
            ac_analysis(rc_lowpass(), "VIN", [1e3, 1e6, 1e4])

    def test_duplicates_rejected(self):
        with pytest.raises(CircuitError, match="strictly increasing"):
            ac_analysis(rc_lowpass(), "VIN", [1e3, 1e3, 1e4])

    def test_legacy_path_validates_too(self):
        with pytest.raises(CircuitError, match="strictly increasing"):
            ac_analysis(rc_lowpass(), "VIN", [1e6, 1e3], method="legacy")

    def test_nonfinite_rejected(self):
        with pytest.raises(CircuitError, match="positive and finite"):
            ac_analysis(rc_lowpass(), "VIN", [1e3, np.inf])

    def test_unknown_method_rejected(self):
        with pytest.raises(CircuitError, match="unknown AC method"):
            ac_analysis(rc_lowpass(), "VIN", [1e3], method="dense")

    def test_bad_chunk_size_rejected(self):
        cell = build_inverter(AlphaPowerFET(), input_waveform=DC(0.5))
        with pytest.raises(CircuitError, match="chunk_size"):
            ac_monte_carlo(
                cell.circuit,
                "VIN",
                [1e3, 1e4],
                FETVariation.nominal(1, 2),
                chunk_size=0,
            )


def _equivalence(circuit, source, frequencies, tolerance=1e-9):
    compiled = ac_analysis(circuit, source, frequencies, method="compiled")
    legacy = ac_analysis(circuit, source, frequencies, method="legacy")
    worst = max(
        float(np.abs(compiled.transfer(n) - legacy.transfer(n)).max())
        for n in circuit.node_names
    )
    assert worst < tolerance, f"compiled-vs-legacy max deviation {worst}"
    return compiled


class TestCompiledLegacyEquivalence:
    """The stacked complex sweep is pinned to the per-frequency loop."""

    def test_rc_lowpass(self):
        _equivalence(rc_lowpass(), "VIN", np.logspace(3, 9, 40))

    def test_resistive_divider(self):
        circuit = Circuit()
        circuit.add_voltage_source("VIN", "a", "0", DC(0.0))
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_resistor("R2", "b", "0", 3e3)
        _equivalence(circuit, "VIN", np.logspace(2, 9, 25))

    def test_fet_amplifier_dense(self):
        circuit = TestAmplifier().make_common_source(load_c=1e-12)
        assert not ACPlan(circuit, "VIN").use_sparse
        _equivalence(circuit, "VIN", np.logspace(5, 12, 30))

    def test_inverter_chain_sparse_regime(self):
        circuit = build_inverter_chain(AlphaPowerFET(), 200)
        plan = ACPlan(circuit, "VIN")
        assert plan.use_sparse  # 204 unknowns: above SPARSE_THRESHOLD
        _equivalence(circuit, "VIN", np.logspace(4, 9, 6))

    def test_repeated_sweeps_reuse_schur_reduction(self):
        plan = ACPlan(rc_lowpass(), "VIN")
        frequencies = np.logspace(3, 8, 50)
        first = plan.sweep(frequencies)
        assert plan._schur is not None  # QZ compiled lazily on first sweep
        again = plan.sweep(frequencies)
        assert np.array_equal(first.transfer("b"), again.transfer("b"))


# -- module-level lazy caches so hypothesis examples reuse one expensive
#    setup (plan construction / reference MC run) without function-scoped
#    fixture health-check violations.
_INVARIANCE_CACHE: dict = {}


def _batched_reference() -> tuple[Circuit, FETVariation, BatchedACResult, np.ndarray]:
    if "batched" not in _INVARIANCE_CACHE:
        cell = build_inverter(AlphaPowerFET(), input_waveform=DC(0.5))
        variation = FETVariation.sample(16, 2, seed=20140314, vth_sigma_v=0.01)
        frequencies = np.logspace(6, 11, 21)
        base = ac_monte_carlo(cell.circuit, "VIN", frequencies, variation)
        _INVARIANCE_CACHE["batched"] = (cell.circuit, variation, base, frequencies)
    return _INVARIANCE_CACHE["batched"]


class TestBatchedInvariance:
    """Chunking and corner order never change a bit of the results."""

    @settings(deadline=None, max_examples=8)
    @given(st.integers(1, 60))
    def test_frequency_chunking_bitwise_invariant(self, chunk_size):
        circuit, variation, base, frequencies = _batched_reference()
        chunked = ac_monte_carlo(
            circuit, "VIN", frequencies, variation, chunk_size=chunk_size
        )
        assert np.array_equal(chunked.samples, base.samples)

    @settings(deadline=None, max_examples=6)
    @given(st.permutations(list(range(16))))
    def test_instance_order_bitwise_invariant(self, order):
        circuit, variation, base, frequencies = _batched_reference()
        permutation = np.asarray(order)
        permuted = ac_monte_carlo(
            circuit, "VIN", frequencies, variation.take(permutation)
        )
        assert np.array_equal(permuted.samples, base.samples[permutation])
        assert np.array_equal(permuted.converged, base.converged[permutation])


class TestBatchedAC:
    def test_nominal_matches_scalar_plan(self):
        # The corner kernel (stacked LAPACK) and the plan kernel (Schur
        # backsubstitution) solve the same system by different routes:
        # nominal variation must land on the same response at the
        # equivalence bar.
        cell = build_inverter(AlphaPowerFET(), input_waveform=DC(0.5))
        frequencies = np.logspace(6, 11, 13)
        batched = ac_monte_carlo(
            cell.circuit, "VIN", frequencies, FETVariation.nominal(1, 2)
        )
        single = ACPlan(cell.circuit, "VIN").sweep(frequencies)
        assert batched.n_converged == 1
        deviation = np.abs(
            batched.transfer(cell.output_node)[0] - single.transfer(cell.output_node)
        ).max()
        assert deviation < 1e-9

    def test_instance_accessor_round_trips(self):
        _, _, base, frequencies = _batched_reference()
        one = base.instance(3)
        assert isinstance(one, ACResult)
        assert np.array_equal(one.transfer("out"), base.transfer("out")[3])

    def test_unknown_node_raises(self):
        _, _, base, _ = _batched_reference()
        with pytest.raises(CircuitError, match="unknown node"):
            base.transfer("nope")

    def test_unity_gain_nan_for_non_crossing_corners(self):
        # Corner 0 crosses unity falling; corner 1 never reaches it;
        # corner 2 never converged.  Only corner 0 reports a number.
        frequencies = np.logspace(6, 8, 3)
        samples = np.empty((3, 3, 1), dtype=complex)
        samples[0, :, 0] = [10.0, 0.1, 0.01]
        samples[1, :, 0] = [0.5, 0.4, 0.3]
        samples[2, :, 0] = np.nan
        result = BatchedACResult(
            frequencies_hz=frequencies,
            samples=samples,
            converged=np.array([True, True, False]),
            node_index={"out": 0},
        )
        crossings = result.unity_gain_frequencies_hz("out")
        assert crossings[0] == pytest.approx(np.sqrt(1e6 * 1e7), rel=1e-12)
        assert np.isnan(crossings[1]) and np.isnan(crossings[2])

    def test_variation_length_mismatch_rejected(self):
        cell = build_inverter(AlphaPowerFET(), input_waveform=DC(0.5))
        with pytest.raises(ValueError):
            ac_monte_carlo(
                cell.circuit, "VIN", [1e6, 1e7], FETVariation.nominal(2, 3)
            )

"""Newton solver robustness: KCL residuals, homotopies, hard starts."""

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.solver import newton_solve, solve_dc
from repro.circuit.waveforms import DC
from repro.devices.base import PType
from repro.devices.empirical import AlphaPowerFET


def inverter_circuit(vin=0.5):
    c = Circuit()
    c.add_voltage_source("VDD", "vdd", "0", DC(1.0))
    c.add_voltage_source("VIN", "in", "0", DC(vin))
    fet = AlphaPowerFET()
    c.add_fet("MP", "out", "in", "vdd", PType(fet))
    c.add_fet("MN", "out", "in", "0", fet)
    return c


class TestNewton:
    def test_linear_circuit_one_step(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", DC(1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        system = c.build_system()
        x, converged = newton_solve(system, np.zeros(system.size))
        assert converged
        residual, _ = system.evaluate(x)
        assert np.max(np.abs(residual)) < 1e-10

    def test_kcl_residual_at_solution(self):
        system = inverter_circuit(0.5).build_system()
        x = solve_dc(system)
        residual, _ = system.evaluate(x)
        assert np.max(np.abs(residual)) < 1e-9

    def test_cold_start_mid_transition(self):
        # Both FETs half-on: the classic hard DC point.
        system = inverter_circuit(0.5).build_system()
        x = solve_dc(system)
        out = system.voltage_of(x, "out")
        assert 0.3 < out < 0.7  # symmetric pair -> mid-rail output

    def test_rails_solve(self):
        for vin, expected in [(0.0, 1.0), (1.0, 0.0)]:
            system = inverter_circuit(vin).build_system()
            x = solve_dc(system)
            assert system.voltage_of(x, "out") == pytest.approx(expected, abs=1e-2)

    def test_gmin_kwarg_adds_leak(self):
        c = Circuit()
        c.add_current_source("I1", "0", "x", DC(1e-6))
        c.add_resistor("R1", "x", "0", 1e6)
        system = c.build_system()
        x_leaky, ok = newton_solve(system, np.zeros(system.size), gmin=1e-6)
        assert ok
        # 1 uA into 1 MOhm || 1 MOhm (gmin) = 0.5 V.
        assert system.voltage_of(x_leaky, "x") == pytest.approx(0.5, rel=1e-6)

    def test_source_scale_scales_solution(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", DC(2.0))
        c.add_resistor("R1", "a", "0", 1e3)
        system = c.build_system()
        x_half, ok = newton_solve(system, np.zeros(system.size), source_scale=0.5)
        assert ok
        assert system.voltage_of(x_half, "a") == pytest.approx(1.0)


class TestBatchedLineSearch:
    """The damping ladder of a rejected full step runs batched.

    One :meth:`~repro.circuit.assembly.StampPlan.evaluate_many` call
    covers ``_TRIAL_BATCH`` damping candidates; acceptance must be the
    first candidate the sequential ladder would have accepted, so the
    solver's trajectory (and solution) matches the scalar reference.
    """

    def _chain(self, n_stages=5):
        c = Circuit()
        c.add_voltage_source("VDD", "vdd", "0", DC(1.0))
        c.add_voltage_source("VIN", "s0", "0", DC(0.0))
        fet = AlphaPowerFET()
        for i in range(n_stages):
            c.add_fet(f"MP{i}", f"s{i+1}", f"s{i}", "vdd", PType(fet))
            c.add_fet(f"MN{i}", f"s{i+1}", f"s{i}", "0", fet)
        return c

    def test_backtracking_routes_through_evaluate_many(self, monkeypatch):
        system = self._chain().build_system()
        plan = system._plan
        calls = {"many": 0}
        original = plan.evaluate_many

        def counting(x_stack, **kwargs):
            calls["many"] += 1
            return original(x_stack, **kwargs)

        monkeypatch.setattr(plan, "evaluate_many", counting)
        # An adversarial start (rails inverted) forces damped steps.
        x0 = np.full(system.size, 0.5)
        x0[system.node_index("vdd")] = -1.0
        x, converged = newton_solve(system, x0)
        residual, _ = system.evaluate_dense(x)
        assert calls["many"] > 0
        assert np.max(np.abs(residual)) < 1e-8 or not converged

    def test_batched_ladder_matches_sequential_ladder(self):
        system = self._chain().build_system()
        x0 = np.full(system.size, 0.5)
        x0[system.node_index("vdd")] = -1.0
        x_batched, ok_batched = newton_solve(system, x0)

        # Hiding the compiled plan forces the sequential scalar ladder
        # (reference-evaluator Newton); it must accept the same damping
        # sequence and land on the same solution.
        system2 = self._chain().build_system()
        system2._plan = None
        system2.evaluate = system2.evaluate_dense
        x_scalar, ok_scalar = newton_solve(system2, x0)
        assert ok_batched == ok_scalar
        np.testing.assert_allclose(x_batched, x_scalar, atol=1e-7)


class TestStiffCircuits:
    def test_wide_conductance_spread(self):
        # 9 decades of resistance spread in one circuit.
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", DC(1.0))
        c.add_resistor("R1", "a", "b", 1.0)
        c.add_resistor("R2", "b", "c", 1e9)
        c.add_resistor("R3", "c", "0", 1.0)
        system = c.build_system()
        x = solve_dc(system)
        assert system.voltage_of(x, "b") == pytest.approx(1.0, abs=1e-6)
        assert system.voltage_of(x, "c") == pytest.approx(0.0, abs=1e-6)

    def test_series_fet_stack(self):
        # Two stacked FETs (NAND-style pulldown) with a resistive load.
        c = Circuit()
        c.add_voltage_source("VDD", "vdd", "0", DC(1.0))
        c.add_voltage_source("VA", "a", "0", DC(1.0))
        c.add_voltage_source("VB", "b", "0", DC(1.0))
        c.add_resistor("RL", "vdd", "out", 50e3)
        fet = AlphaPowerFET()
        c.add_fet("M1", "out", "a", "mid", fet)
        c.add_fet("M2", "mid", "b", "0", fet)
        system = c.build_system()
        x = solve_dc(system)
        out = system.voltage_of(x, "out")
        mid = system.voltage_of(x, "mid")
        assert 0.0 <= mid <= out <= 1.0
        assert out < 0.3  # both gates high: output pulled low

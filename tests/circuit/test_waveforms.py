"""Source waveforms: DC, pulse, PWL, sine."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.circuit.waveforms import DC, PiecewiseLinear, Pulse, Sine


class TestDC:
    def test_constant(self):
        wf = DC(1.5)
        assert wf.value(0.0) == 1.5
        assert wf.value(1e9) == 1.5
        assert wf.dc == 1.5


class TestPulse:
    @pytest.fixture
    def pulse(self):
        return Pulse(
            v1=0.0, v2=1.0, delay_s=1e-9, rise_s=1e-10, fall_s=1e-10,
            width_s=1e-9, period_s=4e-9,
        )

    def test_before_delay(self, pulse):
        assert pulse.value(0.5e-9) == 0.0

    def test_mid_rise(self, pulse):
        assert pulse.value(1e-9 + 0.5e-10) == pytest.approx(0.5)

    def test_high_plateau(self, pulse):
        assert pulse.value(1e-9 + 1e-10 + 0.5e-9) == 1.0

    def test_mid_fall(self, pulse):
        t = 1e-9 + 1e-10 + 1e-9 + 0.5e-10
        assert pulse.value(t) == pytest.approx(0.5)

    def test_low_after_fall(self, pulse):
        assert pulse.value(1e-9 + 3e-9) == 0.0

    def test_periodicity(self, pulse):
        t = 1e-9 + 0.7e-9
        assert pulse.value(t) == pytest.approx(pulse.value(t + 4e-9))

    def test_dc_is_initial_level(self, pulse):
        assert pulse.dc == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Pulse(0.0, 1.0, rise_s=0.0)
        with pytest.raises(ValueError):
            Pulse(0.0, 1.0, rise_s=1e-9, fall_s=1e-9, width_s=1e-9, period_s=1e-9)


class TestPiecewiseLinear:
    def test_interpolation(self):
        wf = PiecewiseLinear(points=((0.0, 0.0), (1.0, 2.0)))
        assert wf.value(0.5) == pytest.approx(1.0)

    def test_clamps_outside(self):
        wf = PiecewiseLinear(points=((1.0, 3.0), (2.0, 5.0)))
        assert wf.value(0.0) == 3.0
        assert wf.value(10.0) == 5.0

    def test_requires_sorted_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(points=((1.0, 0.0), (0.5, 1.0)))

    def test_requires_points(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(points=())

    def test_step_discontinuity_allowed(self):
        wf = PiecewiseLinear(points=((0.0, 0.0), (1.0, 0.0), (1.0, 2.0), (2.0, 2.0)))
        assert wf.value(1.5) == 2.0

    def test_times_precomputed_once(self):
        # The breakpoint times are cached at construction; value() must
        # read the cached tuple instead of rebuilding a list per call.
        wf = PiecewiseLinear(points=((0.0, 0.0), (1.0, 2.0), (3.0, 1.0)))
        assert wf._times == (0.0, 1.0, 3.0)
        assert wf.value(2.0) == pytest.approx(1.5)
        # value() must actually depend on the cache, not rebuild it.
        object.__delattr__(wf, "_times")
        with pytest.raises(AttributeError):
            wf.value(2.0)

    def test_single_point(self):
        wf = PiecewiseLinear(points=((1.0, 4.0),))
        assert wf.value(0.0) == 4.0
        assert wf.value(2.0) == 4.0
        assert wf.dc == 4.0


class TestSine:
    def test_offset_and_amplitude(self):
        wf = Sine(offset=0.5, amplitude=0.2, frequency_hz=1e6)
        assert wf.value(0.0) == pytest.approx(0.5)
        assert wf.value(0.25e-6) == pytest.approx(0.7)

    def test_dc_is_offset(self):
        assert Sine(0.3, 1.0, 1e3).dc == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            Sine(0.0, 1.0, 0.0)

    @given(st.floats(0.0, 1e-3))
    def test_bounded_by_amplitude(self, t):
        wf = Sine(offset=0.0, amplitude=1.0, frequency_hz=1e4)
        assert -1.0 <= wf.value(t) <= 1.0

"""Batched transient Monte Carlo engine vs the per-instance scalar loop.

The transient analogue of ``test_assembly_equivalence.py``: for random
inverter-chain circuits and :class:`FETVariation` draws, every
:class:`CircuitTransientMC` waveform must match the scalar
``transient()`` loop over explicitly perturbed circuits to 1e-9 at
every sample (hypothesis-backed), and the engine's results must be
bitwise invariant to chunk size, instance order, and serial vs.
process-pool execution.  The per-instance scalar rescue and the
sparse batched path are exercised directly.
"""

import logging

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.circuit.sweep as sweep_module
from repro.circuit.continuation import ConvergenceReport
from repro.circuit.netlist import CircuitError
from repro.circuit.sweep import (
    CircuitTransientMC,
    FETVariation,
    perturbed_circuit,
)
from repro.circuit.transient import transient, transient_samples
from repro.circuit.waveforms import Pulse
from repro.devices.empirical import AlphaPowerFET
from repro.experiments.cascade import build_inverter_chain

WAVEFORM_ATOL = 1e-9

T_STOP = 0.3e-9
DT = 1e-11


def _stimulus(t_stop=T_STOP):
    return Pulse(
        v1=0.0, v2=1.0, delay_s=0.1 * t_stop, rise_s=10e-12, fall_s=10e-12,
        width_s=0.45 * t_stop, period_s=0.0,
    )


def _chain_engine(n_stages=2):
    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=n_stages, input_waveform=_stimulus()
    )
    return CircuitTransientMC(chain)


@pytest.fixture(scope="module")
def engine():
    return _chain_engine()


@pytest.fixture(scope="module")
def variation(engine):
    return FETVariation.sample(
        24, len(engine.fet_names), seed=123, drive_sigma=0.2, vth_sigma_v=0.02
    )


@pytest.fixture(scope="module")
def reference(engine, variation):
    return engine.run(variation, T_STOP, DT)


class TestEmptyWork:
    def test_zero_instances_returns_wellformed_empty(self, engine):
        result = engine.run(FETVariation.nominal(0, len(engine.fet_names)), T_STOP, DT)
        assert result.n_instances == 0
        # The empty result keeps the run's real sample grid so shape-
        # dependent consumers (time axis, concatenation) still work.
        assert result.n_samples == int(round(T_STOP / DT)) + 1
        assert result.samples.shape[0] == 0
        assert result.converged.shape == (0,)
        assert result.fallback.shape == (0,)
        assert result.time_s.shape == (result.n_samples,)


class TestScalarEquivalence:
    """Waveforms match the per-instance scalar transient() loop."""

    def test_trapezoidal_matches_scalar_loop(self, engine, variation, reference):
        scalar = engine.scalar_reference(variation, T_STOP, DT)
        assert reference.converged.all()
        assert np.abs(reference.samples - scalar).max() < WAVEFORM_ATOL

    def test_backward_euler_matches_scalar_loop(self, engine, variation):
        result = engine.run(variation, T_STOP, DT, integrator="backward-euler")
        scalar = engine.scalar_reference(
            variation, T_STOP, DT, integrator="backward-euler"
        )
        assert result.converged.all()
        assert np.abs(result.samples - scalar).max() < WAVEFORM_ATOL

    def test_nominal_variation_matches_unperturbed_transient(self, engine):
        result = engine.run(n_instances=2, t_stop_s=T_STOP, dt_s=DT)
        scalar = transient(engine.circuit, T_STOP, DT)
        for node in ("s1", "s2"):
            waves = result.voltage(node)
            assert np.abs(waves - scalar.voltage(node)).max() < WAVEFORM_ATOL

    @given(
        n_stages=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        drive_sigma=st.floats(min_value=0.0, max_value=0.3),
        vth_sigma_v=st.floats(min_value=0.0, max_value=0.05),
    )
    @settings(max_examples=6, deadline=None)
    def test_random_chains_and_draws_match_scalar(
        self, n_stages, seed, drive_sigma, vth_sigma_v
    ):
        engine = _chain_engine(n_stages)
        variation = FETVariation.sample(
            3,
            len(engine.fet_names),
            seed=seed,
            drive_sigma=drive_sigma,
            vth_sigma_v=vth_sigma_v,
        )
        result = engine.run(variation, T_STOP, DT)
        scalar = engine.scalar_reference(variation, T_STOP, DT)
        assert result.converged.all()
        assert np.abs(result.samples - scalar).max() < WAVEFORM_ATOL


class TestBitwiseInvariance:
    """Execution shape never changes a single bit of any waveform."""

    def test_chunk_size_bitwise_invariant(self, engine, variation, reference):
        for chunk_size in (1, 7, 24):
            result = engine.run(variation, T_STOP, DT, chunk_size=chunk_size)
            assert np.array_equal(result.samples, reference.samples)
            assert np.array_equal(result.converged, reference.converged)

    def test_instance_order_bitwise_invariant(self, engine, variation, reference):
        permutation = np.random.default_rng(0).permutation(variation.n_instances)
        permuted = engine.run(variation.take(permutation), T_STOP, DT)
        assert np.array_equal(permuted.samples, reference.samples[permutation])

    def test_process_pool_bitwise_invariant(self, engine, variation, reference):
        pooled = engine.run(variation, T_STOP, DT, chunk_size=8, workers=2)
        assert np.array_equal(pooled.samples, reference.samples)
        assert np.array_equal(pooled.converged, reference.converged)

    @given(chunk_size=st.integers(min_value=1, max_value=30))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_chunk_size_is_bitwise_identical(
        self, engine, variation, reference, chunk_size
    ):
        result = engine.run(variation, T_STOP, DT, chunk_size=chunk_size)
        assert np.array_equal(result.samples, reference.samples)


class TestScalarFallback:
    """Steps that defeat batched Newton are rescued per instance."""

    def test_fallback_engages_on_starved_newton(self, engine, variation, reference):
        # Zero batched Newton iterations per step starve both the
        # lockstep solve and the batched gmin ladder, so every step of
        # every instance must be rescued through the scalar continuation
        # path — and still reproduce the batched waveforms, since the
        # rescue anchors at the same previous solutions.
        result = engine.run(variation, T_STOP, DT, step_max_iterations=0)
        assert result.fallback.all()
        assert result.n_fallback == variation.n_instances
        assert result.converged.all()
        assert np.abs(result.samples - reference.samples).max() < WAVEFORM_ATOL
        scalar = engine.scalar_reference(variation, T_STOP, DT)
        assert np.abs(result.samples - scalar).max() < WAVEFORM_ATOL

    def test_fallback_only_takes_failing_instances(self, engine, variation):
        result = engine.run(variation, T_STOP, DT)
        assert result.n_fallback == 0

    def test_failed_scalar_rescue_reports_unconverged(
        self, engine, variation, monkeypatch
    ):
        def no_rescue(system, x0=None, **eval_kwargs):
            return np.zeros(system.size), ConvergenceReport()  # converged=False

        monkeypatch.setattr(sweep_module, "solve_dc_robust", no_rescue)
        result = engine.run(variation.take([0, 1]), T_STOP, DT,
                            step_max_iterations=0)
        assert result.fallback.all()
        assert not result.converged.any()
        assert np.isnan(result.samples).all()
        with pytest.raises(ValueError):
            result.statistics("s1")


class TestSparseBatched:
    def test_sparse_plan_batches_silently(self, caplog, sparse_fet_ladder):
        engine = CircuitTransientMC(
            sparse_fet_ladder(input_waveform=_stimulus(), load_f=1e-15)
        )
        assert engine.plan.use_sparse
        variation = FETVariation.sample(
            2, 1, seed=5, drive_sigma=0.2, vth_sigma_v=0.02
        )
        with caplog.at_level(logging.WARNING, logger="repro.circuit.sweep"):
            result = engine.run(variation, 5e-11, 1e-11)
        # Sparse plans march through the batched lockstep path: no
        # warning, no per-instance fallback.
        assert not caplog.records
        assert result.converged.all()
        assert not result.fallback.any()
        # One symbolic analysis served the whole march.
        assert engine.plan.sparse_schedule.n_symbolic == 1

        # Waveforms match the per-instance scalar loop.
        for i in range(2):
            system = perturbed_circuit(engine.circuit, variation, i).build_system()
            scalar = transient_samples(system, 5e-11, 1e-11)
            assert np.abs(result.samples[i] - scalar).max() < WAVEFORM_ATOL

    def test_sparse_chunk_and_order_bitwise_invariant(self, sparse_fet_ladder):
        engine = CircuitTransientMC(
            sparse_fet_ladder(input_waveform=_stimulus(), load_f=1e-15)
        )
        variation = FETVariation.sample(
            6, 1, seed=9, drive_sigma=0.2, vth_sigma_v=0.02
        )
        reference = engine.run(variation, 5e-11, 1e-11)
        chunked = engine.run(variation, 5e-11, 1e-11, chunk_size=2)
        assert np.array_equal(chunked.samples, reference.samples)
        permutation = np.random.default_rng(1).permutation(6)
        permuted = engine.run(variation.take(permutation), 5e-11, 1e-11)
        assert np.array_equal(permuted.samples, reference.samples[permutation])


class TestResultAccessors:
    def test_shapes_times_and_accessors(self, engine, variation, reference):
        n_samples = int(round(T_STOP / DT)) + 1
        assert reference.samples.shape == (
            variation.n_instances, n_samples, engine.plan.size
        )
        assert reference.n_instances == variation.n_instances
        assert reference.n_samples == n_samples
        assert reference.time_s[1] - reference.time_s[0] == pytest.approx(DT)
        assert reference.voltage("s1").shape == (variation.n_instances, n_samples)
        assert np.array_equal(
            reference.voltage("0"), np.zeros((variation.n_instances, n_samples))
        )
        assert reference.source_current("VDD").shape == (
            variation.n_instances, n_samples
        )
        with pytest.raises(KeyError):
            reference.voltage("nope")
        with pytest.raises(KeyError):
            reference.source_current("nope")

    def test_instance_waveforms_round_trip(self, engine, variation, reference):
        waves = reference.instance_waveforms(3)
        assert np.array_equal(waves.voltage("s2"), reference.voltage("s2")[3])
        assert np.array_equal(
            waves.source_current("VDD"), reference.source_current("VDD")[3]
        )

    def test_statistics(self, engine, variation, reference):
        stats = reference.statistics("s2")
        assert stats.n_instances == variation.n_instances
        assert stats.n_converged == reference.n_converged
        assert stats.minimum <= stats.mean <= stats.maximum

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            engine.run(n_instances=2)  # no grid
        with pytest.raises(CircuitError):
            engine.run(n_instances=2, t_stop_s=-1.0, dt_s=1e-12)
        with pytest.raises(CircuitError):
            engine.run(n_instances=2, t_stop_s=1e-9, dt_s=1e-12, integrator="euler")
        with pytest.raises(ValueError):
            engine.run(FETVariation.nominal(2, 7), 1e-10, 1e-11)
        with pytest.raises(ValueError):
            engine.run(t_stop_s=1e-10, dt_s=1e-11)  # neither variation nor count


class TestPerturbedCircuit:
    def test_preserves_layout_and_semantics(self, engine, variation):
        clone = perturbed_circuit(engine.circuit, variation, 0)
        assert clone.node_names == engine.circuit.node_names
        system = clone.build_system()
        assert system.size == engine.plan.size

    def test_rejects_mismatched_variation(self, engine):
        with pytest.raises(ValueError):
            perturbed_circuit(engine.circuit, FETVariation.nominal(1, 9), 0)

"""DC analyses against closed-form circuit theory."""

import numpy as np
import pytest

from repro.circuit.dc import dc_sweep, operating_point
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.waveforms import DC
from repro.devices.empirical import AlphaPowerFET


def divider(r1=1000.0, r2=1000.0, v=2.0):
    c = Circuit("divider")
    c.add_voltage_source("V1", "a", "0", DC(v))
    c.add_resistor("R1", "a", "b", r1)
    c.add_resistor("R2", "b", "0", r2)
    return c


class TestOperatingPoint:
    def test_divider_voltage(self):
        op = operating_point(divider())
        assert op.voltage("b") == pytest.approx(1.0, abs=1e-6)

    def test_divider_unequal(self):
        op = operating_point(divider(r1=3000.0, r2=1000.0, v=4.0))
        assert op.voltage("b") == pytest.approx(1.0, abs=1e-6)

    def test_source_current_direction(self):
        op = operating_point(divider())
        # 2 V across 2 kOhm: 1 mA flows out of the source's + terminal,
        # so the branch current (p -> n inside the source) is -1 mA.
        assert op.source_current("V1") == pytest.approx(-1e-3, rel=1e-6)

    def test_ground_voltage_zero(self):
        op = operating_point(divider())
        assert op.voltage("0") == 0.0
        assert op.voltage("gnd") == 0.0

    def test_unknown_node_raises(self):
        op = operating_point(divider())
        with pytest.raises(CircuitError):
            op.voltage("nope")

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add_current_source("I1", "0", "x", DC(1e-3))  # pushes into x
        c.add_resistor("R1", "x", "0", 2000.0)
        op = operating_point(c)
        assert op.voltage("x") == pytest.approx(2.0, rel=1e-6)

    def test_two_sources_superposition(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", DC(1.0))
        c.add_voltage_source("V2", "b", "0", DC(2.0))
        c.add_resistor("R1", "a", "mid", 1000.0)
        c.add_resistor("R2", "b", "mid", 1000.0)
        c.add_resistor("R3", "mid", "0", 1000.0)
        op = operating_point(c)
        assert op.voltage("mid") == pytest.approx(1.0, abs=1e-6)

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            operating_point(Circuit())

    def test_duplicate_element_name_rejected(self):
        c = Circuit()
        c.add_resistor("R1", "a", "0", 100.0)
        with pytest.raises(CircuitError):
            c.add_resistor("R1", "b", "0", 100.0)

    def test_capacitor_open_in_dc(self):
        c = divider()
        c.add_capacitor("C1", "b", "0", 1e-9)
        op = operating_point(c)
        assert op.voltage("b") == pytest.approx(1.0, abs=1e-6)

    def test_nonlinear_fet_operating_point(self):
        c = Circuit()
        c.add_voltage_source("VDD", "vdd", "0", DC(1.0))
        c.add_voltage_source("VG", "g", "0", DC(0.8))
        c.add_resistor("RD", "vdd", "d", 10e3)
        c.add_fet("M1", "d", "g", "0", AlphaPowerFET())
        op = operating_point(c)
        fet = AlphaPowerFET()
        vd = op.voltage("d")
        # KCL at the drain: (1 - vd)/10k = I_fet(0.8, vd).
        assert (1.0 - vd) / 10e3 == pytest.approx(fet.current(0.8, vd), rel=1e-6)


class TestDCSweep:
    def test_sweep_tracks_divider(self):
        c = divider()
        values = np.linspace(0.0, 2.0, 11)
        sweep = dc_sweep(c, "V1", values)
        assert sweep.voltage("b") == pytest.approx(values / 2.0, abs=1e-6)

    def test_sweep_restores_waveform(self):
        c = divider()
        source = c.elements[0]
        original = source.waveform
        dc_sweep(c, "V1", [0.5, 1.0])
        assert source.waveform is original

    def test_missing_source(self):
        with pytest.raises(CircuitError):
            dc_sweep(divider(), "VX", [0.0, 1.0])

    def test_empty_sweep(self):
        with pytest.raises(CircuitError):
            dc_sweep(divider(), "V1", [])

    def test_sweep_currents_recorded(self):
        sweep = dc_sweep(divider(), "V1", [1.0, 2.0])
        assert sweep.source_current("V1")[1] == pytest.approx(-1e-3, rel=1e-5)

"""Batched sweep/Monte Carlo engine: correctness, determinism, invariance.

Three layers of guarantees:

* :class:`SweepPlan` — substreamed chunked execution is bitwise
  reproducible across chunk sizes, worker counts and serial vs. pooled
  runs;
* :class:`CircuitMonteCarlo` — the batched Newton solutions match
  per-instance scalar ``solve_dc`` references built from explicitly
  perturbed device models;
* determinism satellites — same seed means identical statistics no
  matter how the work is executed.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit.cells import build_inverter
from repro.circuit.solver import solve_dc
from repro.circuit.sweep import (
    CircuitMonteCarlo,
    DEFAULT_SUBSTREAM_BLOCK,
    FETVariation,
    SweepPlan,
    ensure_seed,
)
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import DC
from repro.devices.base import FETModel, PType
from repro.devices.empirical import AlphaPowerFET
from repro.experiments.cascade import STAGE_LOAD_F, build_inverter_chain


# -- pool-safe kernels (module level so ProcessPoolExecutor can pickle) -------

def _square_kernel(value, rng, payload):
    return value * value


def _draw_kernel(value, rng, payload):
    return float(rng.normal())


def _block_draw_kernel(params_block, rng, payload):
    return list(rng.normal(size=len(params_block)))


class _ScaledShiftedFET(FETModel):
    """Reference perturbation: scale * I(vgs - shift, vds), built explicitly."""

    def __init__(self, base, scale, shift):
        self.base = base
        self.scale = scale
        self.shift = shift

    def current(self, vgs, vds):
        return self.scale * self.base.current(vgs - self.shift, vds)

    def currents(self, vgs_values, vds_values):
        return self.scale * self.base.currents(
            np.asarray(vgs_values, dtype=float) - self.shift, vds_values
        )


def _chain(n_stages=2, vin=0.0):
    return build_inverter_chain(
        AlphaPowerFET(), n_stages=n_stages, input_waveform=DC(vin)
    )


def _reference_chain(engine, variation, instance, n_stages=2, vin=0.0):
    """The same chain rebuilt with explicitly perturbed scalar devices."""
    columns = {name: j for j, name in enumerate(engine.fet_names)}
    base = AlphaPowerFET()
    circuit = Circuit("reference")
    circuit.add_voltage_source("VDD", "vdd", "0", DC(1.0))
    circuit.add_voltage_source("VIN", "s0", "0", DC(vin))
    for stage in range(n_stages):
        node_in, node_out = f"s{stage}", f"s{stage + 1}"
        jp, jn = columns[f"MP{stage}"], columns[f"MN{stage}"]
        circuit.add_fet(
            f"MP{stage}", node_out, node_in, "vdd",
            PType(_ScaledShiftedFET(
                base,
                variation.drive_scale[instance, jp],
                variation.vth_shift_v[instance, jp],
            )),
        )
        circuit.add_fet(
            f"MN{stage}", node_out, node_in, "0",
            _ScaledShiftedFET(
                base,
                variation.drive_scale[instance, jn],
                variation.vth_shift_v[instance, jn],
            ),
        )
        circuit.add_capacitor(f"C{stage}", node_out, "0", STAGE_LOAD_F)
    return circuit


@pytest.fixture(scope="module")
def engine():
    return CircuitMonteCarlo(_chain())


@pytest.fixture(scope="module")
def variation(engine):
    return FETVariation.sample(
        64, len(engine.fet_names), seed=123, drive_sigma=0.2, vth_sigma_v=0.02
    )


class TestSweepPlan:
    def test_preserves_input_order(self):
        results = SweepPlan(_square_kernel).run([3, 1, 2])
        assert results == [9, 1, 4]

    def test_empty_params(self):
        assert SweepPlan(_square_kernel).run([]) == []

    def test_seeded_runs_reproduce(self):
        plan = SweepPlan(_draw_kernel)
        a = plan.run(range(10), seed=5)
        b = plan.run(range(10), seed=5)
        c = plan.run(range(10), seed=6)
        assert a == b
        assert a != c

    def test_per_instance_streams_independent_of_chunking(self):
        plan = SweepPlan(_draw_kernel)
        whole = plan.run(range(20), seed=9)
        chunked = plan.run(range(20), seed=9, chunk_size=3)
        assert whole == chunked

    def test_vectorized_block_draws_invariant_to_chunk_size(self):
        plan = SweepPlan(_block_draw_kernel, vectorized=True, substream_block=8)
        whole = plan.run(range(50), seed=1)
        for chunk_size in (8, 16, 21, 64):
            assert plan.run(range(50), seed=1, chunk_size=chunk_size) == whole

    def test_vectorized_pool_matches_serial(self):
        plan = SweepPlan(_block_draw_kernel, vectorized=True, substream_block=8)
        serial = plan.run(range(40), seed=2, chunk_size=8)
        pooled = plan.run(range(40), seed=2, chunk_size=8, workers=2)
        assert serial == pooled

    def test_scalar_pool_matches_serial(self):
        plan = SweepPlan(_square_kernel)
        assert plan.run(range(9), chunk_size=2, workers=2) == [
            v * v for v in range(9)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepPlan(_square_kernel, substream_block=0)
        with pytest.raises(ValueError):
            SweepPlan(_square_kernel).run([1], chunk_size=0)

    def test_ensure_seed_passthrough_and_entropy(self):
        assert ensure_seed(17) == 17
        assert ensure_seed(None) != ensure_seed(None)


class TestFETVariation:
    def test_sample_shapes_and_moments(self):
        var = FETVariation.sample(4000, 3, seed=0, drive_sigma=0.2, vth_sigma_v=0.05)
        assert var.drive_scale.shape == (4000, 3)
        assert var.drive_scale.mean() == pytest.approx(1.0, abs=0.02)
        assert np.all(var.drive_scale > 0.0)
        assert var.vth_shift_v.std() == pytest.approx(0.05, rel=0.1)

    def test_zero_sigmas_are_exact(self):
        var = FETVariation.sample(8, 2, seed=0, drive_sigma=0.0, vth_sigma_v=0.0)
        assert np.all(var.drive_scale == 1.0)
        assert np.all(var.vth_shift_v == 0.0)

    def test_draws_depend_only_on_position(self):
        a = FETVariation.sample(40, 2, seed=3, substream_block=16)
        b = FETVariation.sample(50, 2, seed=3, substream_block=16)
        assert np.array_equal(a.drive_scale, b.drive_scale[:40])

    def test_take_and_nominal(self):
        var = FETVariation.sample(10, 2, seed=0)
        sub = var.take([3, 1])
        assert np.array_equal(sub.drive_scale[0], var.drive_scale[3])
        nominal = FETVariation.nominal(5, 4)
        assert nominal.n_instances == 5 and nominal.n_fets == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            FETVariation(drive_scale=np.ones((2, 3)), vth_shift_v=np.ones((3, 2)))
        with pytest.raises(ValueError):
            FETVariation.sample(0, 1, seed=0)
        with pytest.raises(ValueError):
            FETVariation.sample(1, 1, seed=0, drive_sigma=-0.1)


class TestCircuitMonteCarlo:
    def test_zero_instances_returns_wellformed_empty(self, engine):
        result = engine.run(FETVariation.nominal(0, len(engine.fet_names)))
        assert result.n_instances == 0
        assert result.x.shape == (0, engine.plan.size)
        assert result.converged.shape == (0,)
        assert result.converged.dtype == bool

    def test_nominal_variation_reproduces_scalar_solve(self, engine):
        result = engine.run(n_instances=3)
        assert result.converged.all()
        reference = solve_dc(_chain().build_system())
        for i in range(3):
            assert result.x[i] == pytest.approx(reference, abs=1e-9)

    def test_perturbed_instances_match_scalar_references(self, engine, variation):
        result = engine.run(variation)
        assert result.converged.all()
        for instance in (0, 17, 63):
            circuit = _reference_chain(engine, variation, instance)
            system = circuit.build_system()
            x_ref = solve_dc(system)
            for node in ("s1", "s2"):
                assert result.voltage(node)[instance] == pytest.approx(
                    x_ref[system.node_index(node)], abs=1e-8
                )

    def test_serial_loop_equals_batched(self, engine, variation):
        batched = engine.run(variation, chunk_size=64)
        looped = engine.run(variation, chunk_size=1)
        assert np.allclose(batched.x, looped.x, atol=1e-10)
        assert np.array_equal(batched.converged, looped.converged)

    def test_chunk_size_invariance(self, engine, variation):
        reference = engine.run(variation, chunk_size=64)
        for chunk_size in (7, 13, 32):
            result = engine.run(variation, chunk_size=chunk_size)
            assert np.allclose(reference.x, result.x, atol=1e-10)

    def test_instance_order_invariance(self, engine, variation):
        reference = engine.run(variation, chunk_size=64)
        permutation = np.random.default_rng(0).permutation(variation.n_instances)
        permuted = engine.run(variation.take(permutation), chunk_size=64)
        assert np.allclose(permuted.x, reference.x[permutation], atol=1e-10)

    def test_process_pool_matches_serial(self, engine, variation):
        serial = engine.run(variation, chunk_size=32)
        pooled = engine.run(variation, chunk_size=32, workers=2)
        assert np.allclose(serial.x, pooled.x, atol=1e-10)
        assert np.array_equal(serial.converged, pooled.converged)

    def test_statistics_and_accessors(self, engine, variation):
        result = engine.run(variation)
        stats = result.statistics("s2")
        assert stats.n_instances == variation.n_instances
        assert stats.n_converged == result.n_converged
        assert stats.minimum <= stats.mean <= stats.maximum
        assert result.voltage("0") == pytest.approx(np.zeros(variation.n_instances))
        assert result.source_current("VDD").shape == (variation.n_instances,)
        with pytest.raises(KeyError):
            result.voltage("nope")
        with pytest.raises(KeyError):
            result.source_current("nope")

    def test_vth_shift_moves_the_output(self):
        cell = build_inverter(AlphaPowerFET(), input_waveform=DC(0.45))
        inverter = CircuitMonteCarlo(cell.circuit)
        nominal = inverter.run(n_instances=1)
        moved = inverter.run(
            FETVariation(
                drive_scale=np.ones((1, 2)), vth_shift_v=np.full((1, 2), 0.08)
            )
        )
        assert moved.converged.all() and nominal.converged.all()
        assert abs(moved.voltage("out")[0] - nominal.voltage("out")[0]) > 0.01

    def test_rejects_fetless_and_mismatched_input(self):
        circuit = Circuit("rc")
        circuit.add_voltage_source("V1", "a", "0", DC(1.0))
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_resistor("R2", "b", "0", 1e3)
        with pytest.raises(ValueError):
            CircuitMonteCarlo(circuit)
        engine = CircuitMonteCarlo(_chain())
        with pytest.raises(ValueError):
            engine.run(FETVariation.nominal(2, 7))
        with pytest.raises(ValueError):
            engine.run()

    def test_sparse_plan_batches_silently(self, caplog, sparse_fet_ladder):
        import logging

        from repro.circuit.solver import solve_dc
        from repro.circuit.sweep import perturbed_circuit

        circuit = sparse_fet_ladder()
        engine = CircuitMonteCarlo(circuit)
        assert engine.plan.use_sparse
        variation = FETVariation.sample(2, 1, seed=3, drive_sigma=0.2)
        with caplog.at_level(logging.WARNING, logger="repro.circuit.sweep"):
            result = engine.run(variation)
        # No per-instance fallback, no warning: sparse plans batch.
        assert not caplog.records
        assert result.converged.all()
        # The expensive symbolic analysis ran once for the whole batch.
        assert engine.plan.sparse_schedule.n_symbolic == 1
        # The ladder is deliberately high-impedance (RT = 1e6), so the
        # solver's 1e-10 residual criterion allows ~1e-7 in voltage
        # between two independently-converged iterates; the tight 1e-9
        # equivalence contract is asserted on the well-conditioned
        # sparse inverter chain in TestSparseBatchedNewton.
        for i in range(2):
            reference = solve_dc(
                perturbed_circuit(circuit, variation, i).build_system()
            )
            assert np.abs(result.x[i] - reference).max() < 1e-7


@pytest.fixture(scope="module")
def sparse_engine(sparse_fet_ladder):
    return CircuitMonteCarlo(sparse_fet_ladder())


@pytest.fixture(scope="module")
def sparse_chain_engine():
    # 130 stages -> 134 unknowns: a *well-conditioned* circuit above
    # SPARSE_THRESHOLD, for the tight batched-vs-scalar equivalence.
    return CircuitMonteCarlo(_chain(n_stages=130))


@pytest.fixture(scope="module")
def sparse_variation(sparse_engine):
    return FETVariation.sample(
        12,
        len(sparse_engine.fet_names),
        seed=77,
        drive_sigma=0.2,
        vth_sigma_v=0.02,
    )


class TestSparseBatchedNewton:
    """Sparse plans batch like dense ones: scalar-equivalent results,
    bitwise invariant to chunk size, instance order and pooling."""

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_batched_matches_scalar_loop(self, sparse_chain_engine, seed):
        variation = FETVariation.sample(
            3,
            len(sparse_chain_engine.fet_names),
            seed=seed,
            drive_sigma=0.15,
            vth_sigma_v=0.01,
        )
        batched = sparse_chain_engine.run(variation)
        reference = sparse_chain_engine.scalar_reference(variation)
        assert batched.converged.all()
        assert reference.converged.all()
        assert np.abs(batched.x - reference.x).max() < 1e-9

    @given(chunk_size=st.integers(min_value=1, max_value=12))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_chunk_size_bitwise_invariant(
        self, sparse_engine, sparse_variation, chunk_size
    ):
        reference = sparse_engine.run(sparse_variation, chunk_size=12)
        result = sparse_engine.run(sparse_variation, chunk_size=chunk_size)
        assert np.array_equal(reference.x, result.x)
        assert np.array_equal(reference.converged, result.converged)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_instance_order_bitwise_invariant(
        self, sparse_engine, sparse_variation, seed
    ):
        permutation = np.random.default_rng(seed).permutation(
            sparse_variation.n_instances
        )
        reference = sparse_engine.run(sparse_variation)
        permuted = sparse_engine.run(sparse_variation.take(permutation))
        assert np.array_equal(permuted.x, reference.x[permutation])

    def test_process_pool_bitwise_matches_serial(
        self, sparse_engine, sparse_variation
    ):
        serial = sparse_engine.run(sparse_variation, chunk_size=6)
        pooled = sparse_engine.run(sparse_variation, chunk_size=6, workers=2)
        assert np.array_equal(serial.x, pooled.x)
        assert np.array_equal(serial.converged, pooled.converged)


class TestSweepInvarianceProperties:
    """Hypothesis: execution shape never changes sweep results."""

    @given(chunk_size=st.integers(min_value=1, max_value=40))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_chunk_size_never_changes_solutions(self, engine, variation, chunk_size):
        reference = engine.run(variation, chunk_size=variation.n_instances)
        result = engine.run(variation, chunk_size=chunk_size)
        assert np.allclose(reference.x, result.x, atol=1e-10)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_permutation_permutes_results(self, engine, variation, seed):
        permutation = np.random.default_rng(seed).permutation(variation.n_instances)
        reference = engine.run(variation, chunk_size=64)
        permuted = engine.run(variation.take(permutation), chunk_size=64)
        assert np.allclose(permuted.x, reference.x[permutation], atol=1e-10)

    @given(
        block=st.integers(min_value=1, max_value=17),
        chunk=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=15, deadline=None)
    def test_vectorized_rng_tied_to_block_not_chunk(self, block, chunk):
        plan = SweepPlan(_block_draw_kernel, vectorized=True, substream_block=block)
        whole = plan.run(range(37), seed=11)
        assert plan.run(range(37), seed=11, chunk_size=chunk) == whole


class TestEngineDeterminism:
    """Satellite: same seed => identical statistics however executed."""

    def test_monte_carlo_statistics_identical_serial_vs_pool(self, engine, variation):
        serial = engine.run(variation, chunk_size=16)
        pooled = engine.run(variation, chunk_size=16, workers=2)
        for node in ("s1", "s2"):
            assert serial.statistics(node) == pooled.statistics(node)

    def test_monte_carlo_statistics_identical_across_chunks(self, engine, variation):
        stats = [
            engine.run(variation, chunk_size=c).statistics("s2").mean
            for c in (1, 9, 64)
        ]
        assert stats[0] == pytest.approx(stats[1], abs=1e-12)
        assert stats[1] == pytest.approx(stats[2], abs=1e-12)


class TestCurrentSourceBatch:
    """Batched stacks stamp shared current sources into *every* row.

    Regression net for a ``np.add.at`` partial-broadcast hazard: with a
    shared ``(n_isrc,)`` value array against ``(m, n_isrc)`` per-row
    indices, rows after the first silently read out-of-bounds memory.
    """

    def _biased_circuit(self):
        c = Circuit("isrc")
        c.add_voltage_source("VDD", "vdd", "0", DC(1.0))
        c.add_voltage_source("VIN", "in", "0", DC(0.4))
        fet = AlphaPowerFET()
        c.add_fet("MP", "out", "in", "vdd", PType(fet))
        c.add_fet("MN", "out", "in", "0", fet)
        c.add_current_source("I1", "vdd", "out", DC(1e-5))
        c.add_current_source("I2", "out", "0", DC(2e-5))
        return c

    def test_identical_instances_share_one_solution(self):
        circuit = self._biased_circuit()
        engine = CircuitMonteCarlo(circuit)
        nominal = FETVariation.nominal(5, len(engine.fet_names))
        result = engine.run(nominal)
        assert result.converged.all()
        scalar = solve_dc(circuit.build_system())
        for i in range(nominal.n_instances):
            np.testing.assert_allclose(result.x[i], scalar, atol=1e-8)

    def test_residual_rows_match_scalar_evaluation(self):
        engine = CircuitMonteCarlo(self._biased_circuit())
        rng = np.random.default_rng(3)
        xs = rng.normal(scale=0.5, size=(4, engine.plan.size))
        residuals, jacobians = engine._evaluate_batch(
            xs, FETVariation.nominal(4, len(engine.fet_names))
        )
        for i in range(xs.shape[0]):
            res, jac = engine.system.evaluate_dense(xs[i])
            np.testing.assert_allclose(residuals[i], res, atol=1e-12)
            np.testing.assert_allclose(jacobians[i], jac, atol=1e-12)

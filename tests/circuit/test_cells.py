"""Standard cells: inverter VTC/transient, ring oscillator."""

import numpy as np
import pytest

from repro.analysis.timing import propagation_delays
from repro.analysis.vtc import analyze_vtc
from repro.circuit.cells import (
    build_inverter,
    build_ring_oscillator,
    inverter_vtc,
    ring_oscillator_frequency,
)
from repro.circuit.transient import transient
from repro.circuit.waveforms import Pulse
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET


@pytest.fixture(scope="module")
def sat_fet():
    return AlphaPowerFET()


class TestInverterVTC:
    def test_rail_to_rail_with_saturating_devices(self, sat_fet):
        v_in, v_out, _ = inverter_vtc(sat_fet, vdd=1.0)
        assert v_out[0] == pytest.approx(1.0, abs=1e-3)
        assert v_out[-1] == pytest.approx(0.0, abs=1e-3)

    def test_monotone_decreasing(self, sat_fet):
        _, v_out, _ = inverter_vtc(sat_fet, vdd=1.0)
        assert np.all(np.diff(v_out) <= 1e-9)

    def test_symmetric_pair_switches_at_half_vdd(self, sat_fet):
        v_in, v_out, _ = inverter_vtc(sat_fet, vdd=1.0)
        metrics = analyze_vtc(v_in, v_out)
        assert metrics.switching_threshold_v == pytest.approx(0.5, abs=0.02)

    def test_supply_current_peaks_mid_transition(self, sat_fet):
        v_in, _, i_dd = inverter_vtc(sat_fet, vdd=1.0)
        peak_at = v_in[int(np.argmax(i_dd))]
        assert 0.3 < peak_at < 0.7
        assert i_dd[0] < np.max(i_dd) / 100.0  # rails draw ~no static current

    def test_non_saturating_draws_static_current_at_rails_midpoint(self):
        ns = NonSaturatingFET(vt=0.2, smoothing_v=0.3)
        v_in, v_out, i_dd = inverter_vtc(ns, vdd=1.0)
        # Conductive through the whole transition (paper's dc-burn point).
        mid = slice(40, 120)
        assert np.all(i_dd[mid] > 0.1 * np.max(i_dd))


class TestInverterTransient:
    def test_output_inverts_pulse(self, sat_fet):
        stimulus = Pulse(
            v1=0.0, v2=1.0, delay_s=0.1e-9, rise_s=10e-12, fall_s=10e-12,
            width_s=1e-9, period_s=2e-9,
        )
        cell = build_inverter(
            sat_fet, vdd=1.0, load_capacitance_f=10e-15, input_waveform=stimulus
        )
        result = transient(cell.circuit, 2e-9, 2e-12)
        delays = propagation_delays(result, "in", "out", vdd=1.0)
        assert 0.0 < delays.tp_hl_s < 0.5e-9
        assert 0.0 < delays.tp_lh_s < 0.5e-9

    def test_heavier_load_slower(self, sat_fet):
        def delay_for(load):
            stimulus = Pulse(
                v1=0.0, v2=1.0, delay_s=0.1e-9, rise_s=10e-12, fall_s=10e-12,
                width_s=2e-9, period_s=4e-9,
            )
            cell = build_inverter(
                sat_fet, vdd=1.0, load_capacitance_f=load, input_waveform=stimulus
            )
            result = transient(cell.circuit, 4e-9, 4e-12)
            return propagation_delays(result, "in", "out", 1.0).average_s

        assert delay_for(20e-15) > delay_for(5e-15)


class TestRingOscillator:
    def test_validation(self, sat_fet):
        with pytest.raises(ValueError):
            build_ring_oscillator(sat_fet, n_stages=4)
        with pytest.raises(ValueError):
            build_ring_oscillator(sat_fet, n_stages=1)

    def test_oscillates_and_frequency_positive(self, sat_fet):
        circuit = build_ring_oscillator(sat_fet, n_stages=3, stage_capacitance_f=2e-15)
        result = transient(circuit, 3e-9, 2e-12)
        v = result.voltage("n0")
        # Oscillation spans a healthy fraction of the supply.
        assert v.max() - v.min() > 0.5
        freq = ring_oscillator_frequency(result, "n0", vdd=1.0)
        assert 1e8 < freq < 1e11

    def test_more_stages_slower(self, sat_fet):
        def freq_for(stages):
            circuit = build_ring_oscillator(
                sat_fet, n_stages=stages, stage_capacitance_f=2e-15
            )
            result = transient(circuit, 6e-9, 4e-12)
            return ring_oscillator_frequency(result, "n0", vdd=1.0)

        assert freq_for(5) < freq_for(3)

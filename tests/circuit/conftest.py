"""Shared circuit-test fixtures."""

from __future__ import annotations

import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import DC
from repro.devices.empirical import AlphaPowerFET


@pytest.fixture(scope="session")
def sparse_fet_ladder():
    """Factory for a cheap circuit above ``SPARSE_THRESHOLD``.

    One inverting FET feeding a long resistor ladder: crosses the
    sparse-assembly threshold (>= 128 unknowns) while staying trivial
    to solve, so the sweep engines' sparse batched path can be
    exercised without expensive deep-chain continuation solves.  Both
    the DC (``test_sweep``) and transient (``test_transient_mc``)
    sparse-batching tests build from this one shape.  Stateless
    factory, hence session scope — module-scoped engine fixtures may
    depend on it.
    """

    def build(input_waveform=None, load_f: float = 0.0, n_sections: int = 130):
        circuit = Circuit("sparse-ladder")
        circuit.add_voltage_source("VDD", "vdd", "0", DC(1.0))
        circuit.add_voltage_source("VIN", "n0", "0", input_waveform or DC(1.0))
        circuit.add_fet("MN", "n1", "n0", "0", AlphaPowerFET())
        circuit.add_resistor("RP", "vdd", "n1", 1e5)
        if load_f > 0.0:
            circuit.add_capacitor("CL", "n1", "0", load_f)
        for i in range(1, n_sections):
            circuit.add_resistor(f"R{i}", f"n{i}", f"n{i+1}", 1e3)
        circuit.add_resistor("RT", f"n{n_sections}", "0", 1e6)
        return circuit

    return build

"""Supervised sweep execution: fault injection, recovery, checkpoint/resume.

The contract under test is the one that makes robustness *checkable*:
chunk seed substreams are position-keyed, so a chunk that is retried
after a crash, degraded to in-process serial execution, or reloaded
from a checkpoint must reproduce the fault-free pooled result bitwise.
Every recovery rung is driven by the deterministic
:class:`~repro.circuit.resilience.FaultPlan` harness — worker crash
(``os._exit``), hang past the timeout, raised exception, and
schema-corrupt payload rejected at the merge boundary.

Test names carry ``chaos``/``recovery`` so CI's chaos smoke step can
select them with ``-k "chaos or recovery"``.
"""

import numpy as np
import pytest

from repro.circuit.resilience import (
    CheckpointStore,
    ExecutionPolicy,
    FaultPlan,
    FaultSpec,
    RunReport,
    SweepExecutionError,
    fingerprint,
)
from repro.circuit.sweep import CircuitMonteCarlo, FETVariation, SweepPlan
from repro.circuit.waveforms import DC
from repro.devices.empirical import AlphaPowerFET
from repro.experiments.cascade import build_inverter_chain


# -- pool-safe kernels (module level so ProcessPoolExecutor can pickle) -------

def _square_kernel(value, rng, payload):
    return value * value


def _draw_kernel(value, rng, payload):
    return float(rng.normal())


def _scale_kernel(value, rng, payload):
    return value * payload


def _fast_policy(**overrides):
    """Millisecond backoff so retry ladders don't slow the suite."""
    overrides.setdefault("backoff_s", 0.001)
    return ExecutionPolicy(**overrides)


def _engine(n_stages=2):
    chain = build_inverter_chain(
        AlphaPowerFET(), n_stages=n_stages, input_waveform=DC(0.4)
    )
    return CircuitMonteCarlo(chain)


class TestFaultPlan:
    def test_fires_for_the_first_n_submissions(self):
        plan = FaultPlan.single(3, "raise", times=2)
        assert plan.fault_for(3, 0) is not None
        assert plan.fault_for(3, 1) is not None
        assert plan.fault_for(3, 2) is None
        assert plan.fault_for(0, 0) is None

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("oom")

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError):
            FaultSpec("raise", times=0)

    def test_is_deterministic_state_free(self):
        plan = FaultPlan.single(1, "corrupt")
        # Querying must not consume anything: same answer every time.
        assert plan.fault_for(1, 0) == plan.fault_for(1, 0)


class TestFingerprint:
    def test_stable_across_identical_construction(self):
        a = fingerprint((AlphaPowerFET(), np.arange(4), "tag"))
        b = fingerprint((AlphaPowerFET(), np.arange(4), "tag"))
        assert a == b

    def test_distinguishes_payloads(self):
        assert fingerprint(("a", 1)) != fingerprint(("a", 2))


class TestRunReport:
    def _report(self):
        sweep = SweepPlan(_square_kernel)
        policy = _fast_policy(fault_plan=FaultPlan.single(1, "raise"))
        _, report = sweep.run_supervised(range(8), chunk_size=2, policy=policy)
        return report

    def test_counts_and_taxonomy(self):
        report = self._report()
        assert report.ok
        assert report.counts() == {"ok": 4}
        assert report.failure_taxonomy() == {"error": 1}
        assert report.chunks[1].attempts == 2
        assert list(report.chunks[1].failures) == ["error"]

    def test_one_line_and_json_round_trip(self):
        import json

        report = self._report()
        line = report.one_line()
        assert "4/4 chunks completed" in line
        assert "error=1" in line
        payload = json.loads(report.to_json())
        assert payload["chunks"][1]["failures"] == ["error"]
        assert payload["chunks"][0]["status"] == "ok"


class TestSupervisedSerialRecovery:
    """The supervisor without a pool: retries, merge validation, salvage."""

    def test_matches_plain_run_bitwise(self):
        sweep = SweepPlan(_draw_kernel)
        plain = sweep.run(range(20), seed=11, chunk_size=5)
        supervised, report = sweep.run_supervised(
            range(20), seed=11, chunk_size=5, policy=_fast_policy()
        )
        assert supervised == plain
        assert report.counts() == {"ok": 4}

    def test_raise_fault_is_retried_bitwise(self):
        sweep = SweepPlan(_draw_kernel)
        plain = sweep.run(range(20), seed=11, chunk_size=5)
        policy = _fast_policy(fault_plan=FaultPlan.single(2, "raise"))
        supervised, report = sweep.run_supervised(
            range(20), seed=11, chunk_size=5, policy=policy
        )
        assert supervised == plain
        assert report.failure_taxonomy() == {"error": 1}

    def test_corrupt_payload_rejected_at_merge_and_retried(self):
        sweep = SweepPlan(_draw_kernel)
        plain = sweep.run(range(20), seed=11, chunk_size=5)
        policy = _fast_policy(fault_plan=FaultPlan.single(0, "corrupt"))
        supervised, report = sweep.run_supervised(
            range(20), seed=11, chunk_size=5, policy=policy
        )
        assert supervised == plain
        assert report.failure_taxonomy() == {"corrupt": 1}

    def test_crash_and_hang_faults_cannot_kill_the_supervisor(self):
        # crash/hang are pool-only injections: running serially (the
        # last degradation rung) they are inert, by design — a fault
        # plan must never take down the supervising process itself.
        sweep = SweepPlan(_square_kernel)
        policy = _fast_policy(
            fault_plan=FaultPlan(
                {0: FaultSpec("crash", times=99), 1: FaultSpec("hang", times=99)}
            )
        )
        results, report = sweep.run_supervised(
            range(8), chunk_size=2, policy=policy
        )
        assert results == [v * v for v in range(8)]
        assert report.ok and report.failure_taxonomy() == {}

    def test_exhausted_retries_raise_with_salvage(self):
        sweep = SweepPlan(_square_kernel)
        policy = _fast_policy(
            max_retries=1,
            degrade_serial=False,
            fault_plan=FaultPlan.single(1, "raise", times=99),
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            sweep.run_supervised(range(8), chunk_size=2, policy=policy)
        report = excinfo.value.report
        assert not report.ok
        assert report.counts() == {"ok": 3, "failed": 1}
        # Salvage: the three good chunks' results survive.
        partial = excinfo.value.partial
        assert 1 not in partial
        assert partial[0] == [0, 1]
        assert partial[2] == [16, 25]
        assert partial[3] == [36, 49]

    def test_validator_applies_to_every_chunk(self):
        sweep = SweepPlan(_square_kernel, validate=lambda entry: 1 / 0)
        policy = _fast_policy(max_retries=0, degrade_serial=False)
        with pytest.raises(SweepExecutionError) as excinfo:
            sweep.run_supervised(range(4), chunk_size=2, policy=policy)
        assert excinfo.value.report.failure_taxonomy() == {"corrupt": 2}


class TestPooledChaosRecovery:
    """Real worker processes: crash, hang, corrupt — recover bitwise."""

    def test_worker_crash_triggers_pool_rebuild_and_recovery(self):
        # The os._exit(17) injection is a true mid-chunk worker death:
        # the pool breaks, is rebuilt, and the retried chunk must land
        # on exactly the fault-free numbers.
        sweep = SweepPlan(_draw_kernel)
        plain = sweep.run(range(16), seed=5, chunk_size=4)
        policy = _fast_policy(fault_plan=FaultPlan.single(0, "crash"))
        supervised, report = sweep.run_supervised(
            range(16), seed=5, chunk_size=4, workers=2, policy=policy
        )
        assert supervised == plain
        assert report.pool_rebuilds >= 1
        assert report.failure_taxonomy().get("crash", 0) >= 1
        assert report.ok

    def test_hung_worker_times_out_and_recovers(self):
        sweep = SweepPlan(_draw_kernel)
        plain = sweep.run(range(16), seed=5, chunk_size=4)
        policy = _fast_policy(
            timeout_s=2.0,
            fault_plan=FaultPlan.single(1, "hang", hang_s=8.0),
        )
        supervised, report = sweep.run_supervised(
            range(16), seed=5, chunk_size=4, workers=2, policy=policy
        )
        assert supervised == plain
        assert report.failure_taxonomy() == {"timeout": 1}
        assert report.pool_rebuilds == 1

    def test_persistent_crasher_degrades_to_serial_rung(self):
        # A chunk that kills every worker it touches exhausts its pooled
        # retries; the ladder's last rung runs it in-process, where the
        # pool-only crash fault is inert — same numbers, status "serial".
        sweep = SweepPlan(_draw_kernel)
        plain = sweep.run(range(16), seed=5, chunk_size=4)
        policy = _fast_policy(
            max_retries=1,
            fault_plan=FaultPlan.single(2, "crash", times=99),
        )
        supervised, report = sweep.run_supervised(
            range(16), seed=5, chunk_size=4, workers=2, policy=policy
        )
        assert supervised == plain
        assert report.chunks[2].status == "serial"
        assert report.ok


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, "run-a")
        store.store(3, "digest", [1.0, 2.0])
        assert store.load(3, "digest") == [1.0, 2.0]

    def test_digest_mismatch_misses(self, tmp_path):
        store = CheckpointStore(tmp_path, "run-a")
        store.store(3, "digest", [1.0])
        assert store.load(3, "other-digest") is None

    def test_corrupt_file_misses(self, tmp_path):
        store = CheckpointStore(tmp_path, "run-a")
        store.store(0, "digest", [1.0])
        store.chunk_path(0).write_bytes(b"not a pickle")
        assert store.load(0, "digest") is None

    def test_runs_do_not_collide(self, tmp_path):
        a = CheckpointStore(tmp_path, "run-a")
        b = CheckpointStore(tmp_path, "run-b")
        a.store(0, "digest", ["a"])
        b.store(0, "digest", ["b"])
        assert a.load(0, "digest") == ["a"]
        assert b.load(0, "digest") == ["b"]


class TestCheckpointRecovery:
    def test_killed_run_resumes_bitwise(self, tmp_path):
        # Run A dies mid-flight (an unrecoverable fault aborts the
        # process with chunks 0..k already persisted); run B with the
        # same checkpoint root skips them and must finish on exactly
        # the numbers of a single uninterrupted run.
        sweep = SweepPlan(_draw_kernel)
        plain = sweep.run(range(24), seed=9, chunk_size=4)
        dying = _fast_policy(
            checkpoint_root=tmp_path,
            max_retries=0,
            degrade_serial=False,
            fault_plan=FaultPlan.single(4, "raise", times=99),
        )
        with pytest.raises(SweepExecutionError):
            sweep.run_supervised(range(24), seed=9, chunk_size=4, policy=dying)
        resumed, report = sweep.run_supervised(
            range(24),
            seed=9,
            chunk_size=4,
            policy=_fast_policy(checkpoint_root=tmp_path),
        )
        assert resumed == plain
        assert report.counts() == {"cached": 5, "ok": 1}
        assert report.chunks[4].status == "ok"

    def test_checkpoints_are_keyed_by_seed(self, tmp_path):
        sweep = SweepPlan(_draw_kernel)
        policy = _fast_policy(checkpoint_root=tmp_path)
        first, _ = sweep.run_supervised(
            range(8), seed=1, chunk_size=4, policy=policy
        )
        other, report = sweep.run_supervised(
            range(8), seed=2, chunk_size=4, policy=policy
        )
        # A different seed must never serve the old seed's chunks.
        assert report.counts() == {"ok": 2}
        assert other == sweep.run(range(8), seed=2, chunk_size=4)

    def test_checkpoints_are_keyed_by_payload(self, tmp_path):
        policy = _fast_policy(checkpoint_root=tmp_path)
        scaled = SweepPlan(_scale_kernel, payload=2)
        tripled = SweepPlan(_scale_kernel, payload=3)
        assert scaled.run_supervised(range(4), policy=policy)[0] == [0, 2, 4, 6]
        results, report = tripled.run_supervised(range(4), policy=policy)
        assert results == [0, 3, 6, 9]
        assert report.counts() == {"ok": 1}


class TestEngineChaosAcceptance:
    """The issue's acceptance bar, on the real Monte Carlo engine."""

    N_INSTANCES = 256

    def _variation(self, engine):
        return FETVariation.sample(
            self.N_INSTANCES, len(engine.fet_names), seed=42, drive_sigma=0.12
        )

    def test_chaos_mc_crash_hang_corrupt_bitwise_identical(self):
        # 256 instances in 4 chunks of 64 on 2 workers, with a worker
        # crash, a hang past the timeout, and a corrupt payload all
        # injected (times=2 so the crash wave cannot mask the others).
        # The statistics must be bitwise those of the fault-free run.
        engine = _engine()
        variation = self._variation(engine)
        clean = engine.run(variation, chunk_size=64)
        faults = FaultPlan(
            {
                0: FaultSpec("crash"),
                2: FaultSpec("hang", times=2, hang_s=12.0),
                3: FaultSpec("corrupt", times=2),
            }
        )
        policy = _fast_policy(timeout_s=5.0, fault_plan=faults)
        chaotic = engine.run(variation, chunk_size=64, workers=2, policy=policy)
        assert np.array_equal(clean.x, chaotic.x)
        assert np.array_equal(clean.converged, chaotic.converged)
        report = policy.reports[-1]
        assert report.ok
        taxonomy = report.failure_taxonomy()
        assert taxonomy.get("crash", 0) >= 1
        assert taxonomy.get("timeout", 0) >= 1
        assert taxonomy.get("corrupt", 0) >= 1
        assert report.pool_rebuilds >= 2

    def test_chaos_mc_killed_midflight_resumes_bitwise(self, tmp_path):
        # Same engine run killed mid-flight: the first attempt aborts
        # with three of four chunks checkpointed; the resume must skip
        # them and reproduce the uninterrupted run exactly.
        engine = _engine()
        variation = self._variation(engine)
        clean = engine.run(variation, chunk_size=64)
        dying = _fast_policy(
            checkpoint_root=tmp_path,
            max_retries=0,
            degrade_serial=False,
            fault_plan=FaultPlan.single(3, "raise", times=99),
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            engine.run(variation, chunk_size=64, policy=dying)
        assert excinfo.value.report.counts() == {"ok": 3, "failed": 1}
        resumed = engine.run(
            variation,
            chunk_size=64,
            policy=_fast_policy(checkpoint_root=tmp_path),
        )
        assert np.array_equal(clean.x, resumed.x)
        assert np.array_equal(clean.converged, resumed.converged)
        report = dying.reports[-1]
        assert report.checkpoint_dir is not None


class TestPolicyThreading:
    """`policy=` reaches the sweeps of the user-facing entry points."""

    def test_functional_yield_supervised_matches(self):
        from repro.logic.faults import GateYieldModel, functional_yield

        model = GateYieldModel(
            semiconducting_purity=0.9999,
            tubes_per_gate=10.0,
            removal_efficiency=0.999,
        )
        plain = functional_yield(model, n_trials=40, seed=3)
        policy = _fast_policy(fault_plan=FaultPlan.single(0, "raise"))
        supervised = functional_yield(model, n_trials=40, seed=3, policy=policy)
        assert supervised.functional_yield == plain.functional_yield
        assert policy.reports[-1].failure_taxonomy() == {"error": 1}

    def test_sample_array_supervised_matches(self):
        from repro.integration.variability import CNFETArrayModel

        model = CNFETArrayModel(
            semiconducting_purity=0.999, mean_tubes_per_device=4.0
        )
        plain = model.sample_array(200, seed=8)
        policy = _fast_policy(fault_plan=FaultPlan.single(0, "corrupt"))
        supervised = model.sample_array(200, seed=8, policy=policy)
        assert np.array_equal(plain.on_currents_a(), supervised.on_currents_a())
        assert policy.reports[-1].failure_taxonomy() == {"corrupt": 1}

    def test_fabric_density_supervised_matches(self):
        from repro.experiments.fabric_density import run_fabric_density

        kwargs = dict(pitches_nm=(8.0,), purities=(0.9,), n_samples=2, seed=7)
        plain = run_fabric_density(**kwargs)
        policy = _fast_policy(fault_plan=FaultPlan.single(0, "raise"))
        supervised = run_fabric_density(policy=policy, **kwargs)
        assert supervised == plain

"""Compiled stamp-plan assembly vs the dense reference evaluator.

The contract of :mod:`repro.circuit.assembly`: for every supported
circuit and every evaluation context (DC, transient companion models,
homotopy scalings), the compiled plan's residual and Jacobian match the
element-walking reference path to 1e-12.  Representative circuits cover
every element type, shared nodes, ground coupling, mixed n/p FET groups,
and both the dense and sparse assembly regimes.
"""

import numpy as np
import pytest

from repro.circuit.assembly import SPARSE_THRESHOLD, StampPlan
from repro.circuit.elements import Element
from repro.circuit.netlist import Circuit
from repro.circuit.solver import newton_solve, solve_dc
from repro.circuit.waveforms import DC, Pulse, Sine
from repro.devices.base import PType
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET

ATOL = 1e-12


def rc_ladder(n_sections=4):
    c = Circuit("rc-ladder")
    c.add_voltage_source("V1", "n0", "0", Pulse(0.0, 1.0, rise_s=1e-11))
    for i in range(n_sections):
        c.add_resistor(f"R{i}", f"n{i}", f"n{i+1}", 1e3 * (i + 1))
        c.add_capacitor(f"C{i}", f"n{i+1}", "0", 1e-13)
    c.add_current_source("I1", "0", f"n{n_sections}", Sine(0.0, 1e-6, 1e9))
    return c


def inverter():
    c = Circuit("inverter")
    nfet = AlphaPowerFET()
    c.add_voltage_source("VDD", "vdd", "0", DC(1.0))
    c.add_voltage_source("VIN", "in", "0", DC(0.4))
    c.add_fet("MP", "out", "in", "vdd", PType(nfet))
    c.add_fet("MN", "out", "in", "0", nfet)
    c.add_capacitor("CL", "out", "0", 1e-14)
    return c


def mixed_chain(n_stages=5):
    """Chain mixing two different n-type models and their p mirrors."""
    c = Circuit("mixed-chain")
    models = (AlphaPowerFET(), NonSaturatingFET())
    c.add_voltage_source("VDD", "vdd", "0", DC(1.0))
    c.add_voltage_source("VIN", "s0", "0", DC(0.2))
    for i in range(n_stages):
        nfet = models[i % 2]
        c.add_fet(f"MP{i}", f"s{i+1}", f"s{i}", "vdd", PType(nfet))
        c.add_fet(f"MN{i}", f"s{i+1}", f"s{i}", "0", nfet)
        c.add_capacitor(f"C{i}", f"s{i+1}", "0", 1e-15)
    c.add_resistor("RL", f"s{n_stages}", "0", 1e6)
    return c


def single_fet():
    """One FET + one p-mirror FET, each alone in its device group.

    Exercises the compiled plan's scalar fast path (``count == 1``
    groups stamp through ``linearize_point`` with plain-int indices)
    against the element-walking reference.
    """
    c = Circuit("single-fet")
    c.add_voltage_source("VD", "d", "0", DC(0.8))
    c.add_voltage_source("VG", "g", "0", DC(0.5))
    c.add_fet("M1", "d", "g", "0", AlphaPowerFET())
    c.add_fet("M2", "d", "g", "0", PType(NonSaturatingFET()))
    c.add_resistor("RL", "d", "0", 1e5)
    return c


def big_ladder():
    """Resistor/FET ladder large enough to cross the sparse threshold."""
    c = Circuit("big-ladder")
    nfet = AlphaPowerFET()
    c.add_voltage_source("V1", "n0", "0", DC(1.0))
    n = SPARSE_THRESHOLD + 10
    for i in range(n):
        c.add_resistor(f"R{i}", f"n{i}", f"n{i+1}", 1e3)
        if i % 7 == 0:
            c.add_fet(f"M{i}", f"n{i+1}", f"n{i}", "0", nfet)
        if i % 5 == 0:
            c.add_capacitor(f"C{i}", f"n{i+1}", "0", 1e-14)
    return c


CIRCUITS = {
    "rc_ladder": rc_ladder,
    "inverter": inverter,
    "single_fet": single_fet,
    "mixed_chain": mixed_chain,
    "big_ladder": big_ladder,
}

CONTEXTS = {
    "dc": {},
    "dc_timed": dict(time_s=3e-10),
    "gmin": dict(gmin=1e-6),
    "source_step": dict(source_scale=0.35),
    "trapezoidal": dict(time_s=1e-10, dt_s=1e-12, integrator="trapezoidal"),
    "backward_euler": dict(time_s=1e-10, dt_s=1e-12, integrator="backward-euler"),
}


def _as_dense(jacobian):
    return jacobian.toarray() if hasattr(jacobian, "toarray") else np.array(jacobian)


@pytest.mark.parametrize("context", CONTEXTS)
@pytest.mark.parametrize("circuit_name", CIRCUITS)
def test_compiled_matches_reference(circuit_name, context):
    system = CIRCUITS[circuit_name]().build_system()
    rng = np.random.default_rng(hash(circuit_name) % 2**32)
    kwargs = dict(CONTEXTS[context])
    if "dt_s" in kwargs:
        kwargs["previous_x"] = rng.normal(scale=0.5, size=system.size)
        kwargs["state"] = {
            el.name: rng.normal() * 1e-7
            for el in system.circuit.elements
            if type(el).__name__ == "Capacitor"
        }
    for _ in range(3):
        x = rng.normal(scale=0.7, size=system.size)
        res_c, jac_c = system.evaluate(x, **kwargs)
        res_c, jac_c = res_c.copy(), _as_dense(jac_c)  # detach reused buffers
        res_d, jac_d = system.evaluate_dense(x, **kwargs)
        np.testing.assert_allclose(res_c, res_d, atol=ATOL, rtol=0.0)
        np.testing.assert_allclose(jac_c, jac_d, atol=ATOL, rtol=0.0)


@pytest.mark.parametrize("circuit_name", CIRCUITS)
def test_solutions_agree_between_paths(circuit_name):
    """Newton through the compiled path lands on a reference-path zero."""
    system = CIRCUITS[circuit_name]().build_system()
    x = solve_dc(system)
    residual, _ = system.evaluate_dense(x)
    assert np.max(np.abs(residual)) < 1e-9


def test_sparse_regime_uses_sparse_jacobian():
    system = big_ladder().build_system()
    assert system.size >= SPARSE_THRESHOLD
    _, jacobian = system.evaluate(np.zeros(system.size))
    assert hasattr(jacobian, "toarray")
    x, converged = newton_solve(system, np.zeros(system.size))
    assert converged
    residual, _ = system.evaluate_dense(x)
    assert np.max(np.abs(residual)) < 1e-9


def test_sparse_newton_caches_symbolic_analysis():
    """One symbolic ordering serves every factorization of a solve."""
    from scipy.sparse import identity
    from scipy.sparse.linalg import spsolve

    from repro.circuit.assembly import DIAG_REGULARIZATION

    system = big_ladder().build_system()
    plan = system._plan
    assert plan is not None and plan.use_sparse
    x, converged = newton_solve(system, np.zeros(system.size))
    assert converged
    # Many Newton factorizations, exactly one symbolic analysis.
    assert plan.sparse_schedule.n_symbolic == 1

    # The cached-ordering factorization solves the same linear system
    # scipy's from-scratch sparse solve does.
    residual, jacobian = system.evaluate(x + 0.01)
    residual = residual.copy()
    step = plan.sparse_newton_step(jacobian, residual)
    regularized = jacobian + DIAG_REGULARIZATION * identity(system.size)
    reference = spsolve(regularized.tocsc(), -residual)
    np.testing.assert_allclose(step, reference, rtol=1e-9, atol=1e-12)
    assert plan.sparse_schedule.n_symbolic == 1


def test_plan_reuses_across_waveform_mutation():
    """dc_sweep-style waveform swaps are picked up by the compiled plan."""
    circuit = inverter()
    system = circuit.build_system()
    source = next(el for el in circuit.elements if el.name == "VIN")
    x = np.zeros(system.size)
    for level in (0.0, 0.5, 1.0):
        source.waveform = DC(level)
        res_c, _ = system.evaluate(x)
        res_c = res_c.copy()
        res_d, _ = system.evaluate_dense(x)
        np.testing.assert_allclose(res_c, res_d, atol=ATOL, rtol=0.0)


def test_capacitor_state_update_matches_reference():
    circuit = rc_ladder()
    system = circuit.build_system()
    rng = np.random.default_rng(7)
    x = rng.normal(size=system.size)
    previous = rng.normal(size=system.size)
    state_plan = {f"C{i}": rng.normal() * 1e-7 for i in range(4)}
    state_ref = dict(state_plan)

    system.update_capacitor_state(x, previous, 1e-12, "trapezoidal", state_plan)

    from repro.circuit.elements import Capacitor, StampContext

    ctx = StampContext(
        system=system, x=x, residual=None, jacobian=None,
        dt_s=1e-12, previous_x=previous, integrator="trapezoidal", state=state_ref,
    )
    for el in circuit.elements:
        if isinstance(el, Capacitor):
            state_ref[el.name] = el.update_state(ctx)
    for name in state_ref:
        assert state_plan[name] == pytest.approx(state_ref[name], abs=1e-18)


def test_unsupported_element_falls_back_to_reference():
    class Shunt(Element):
        name = "X1"
        nodes = ("a",)

        def contribute(self, ctx):
            ctx.add_current("a", 1e-6)

    c = Circuit("custom")
    c.add_voltage_source("V1", "a", "0", DC(1.0))
    c.add_resistor("R1", "a", "0", 1e3)
    c.add(Shunt())
    system = c.build_system()
    assert system._plan is None
    x = np.zeros(system.size)
    res, jac = system.evaluate(x)
    res_d, jac_d = system.evaluate_dense(x)
    np.testing.assert_allclose(res, res_d, atol=ATOL, rtol=0.0)
    np.testing.assert_allclose(jac, jac_d, atol=ATOL, rtol=0.0)


def test_standalone_plan_compiles_small_circuits():
    """The plan itself is exercised even for circuits a heuristic might skip."""
    system = inverter().build_system()
    plan = StampPlan(system)
    x = np.full(system.size, 0.3)
    res_p, jac_p = plan.evaluate(x, gmin=1e-9)
    res_p, jac_p = res_p.copy(), _as_dense(jac_p)
    res_d, jac_d = system.evaluate_dense(x, gmin=1e-9)
    np.testing.assert_allclose(res_p, res_d, atol=ATOL, rtol=0.0)
    np.testing.assert_allclose(jac_p, jac_d, atol=ATOL, rtol=0.0)

"""Transient integration against closed-form RC/RLC-free responses."""

import math

import numpy as np
import pytest

from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.transient import transient
from repro.circuit.waveforms import DC, Pulse, Sine


def rc_circuit(r=1e3, c=1e-9, v=1.0):
    circuit = Circuit("rc")
    circuit.add_voltage_source(
        "V1", "a", "0",
        Pulse(v1=0.0, v2=v, delay_s=0.0, rise_s=1e-12, fall_s=1e-12, width_s=1.0),
    )
    circuit.add_resistor("R1", "a", "b", r)
    circuit.add_capacitor("C1", "b", "0", c)
    return circuit


class TestRCCharging:
    def test_matches_exponential(self):
        tau = 1e-6
        result = transient(rc_circuit(), t_stop_s=3e-6, dt_s=5e-9)
        v = result.voltage("b")
        expected = 1.0 - np.exp(-result.time_s / tau)
        assert np.max(np.abs(v - expected)) < 5e-3

    def test_backward_euler_also_converges(self):
        result = transient(rc_circuit(), 3e-6, 5e-9, integrator="backward-euler")
        assert result.voltage("b")[-1] == pytest.approx(1.0 - math.exp(-3.0), abs=0.01)

    def test_trapezoidal_more_accurate_than_be_on_smooth_drive(self):
        # Sine-driven RC with the full analytic solution (particular +
        # homogeneous); smooth drive so integration error dominates.
        r, cap, f = 1e3, 1e-9, 1e6

        def run(integrator):
            c = Circuit()
            c.add_voltage_source("V1", "a", "0", Sine(0.0, 1.0, f))
            c.add_resistor("R1", "a", "b", r)
            c.add_capacitor("C1", "b", "0", cap)
            result = transient(c, 1e-6, 2e-9, integrator=integrator)
            return result.time_s, result.voltage("b")

        tau = r * cap
        omega = 2 * math.pi * f
        amplitude = 1.0 / math.sqrt(1.0 + (omega * tau) ** 2)
        phi = math.atan(omega * tau)

        def exact(t):
            return amplitude * (np.sin(omega * t - phi) + math.sin(phi) * np.exp(-t / tau))

        t_tr, v_tr = run("trapezoidal")
        t_be, v_be = run("backward-euler")
        err_tr = np.max(np.abs(v_tr - exact(t_tr)))
        err_be = np.max(np.abs(v_be - exact(t_be)))
        assert err_tr < err_be
        assert err_tr < 5e-3

    def test_source_current_decays(self):
        result = transient(rc_circuit(), 5e-6, 1e-8)
        i = -result.source_current("V1")
        assert i[1] > i[-1]
        assert i[-1] == pytest.approx(0.0, abs=1e-5)


class TestValidation:
    def test_bad_times(self):
        with pytest.raises(CircuitError):
            transient(rc_circuit(), -1.0, 1e-9)
        with pytest.raises(CircuitError):
            transient(rc_circuit(), 1e-9, 1e-6)

    def test_unknown_integrator(self):
        with pytest.raises(CircuitError):
            transient(rc_circuit(), 1e-6, 1e-8, integrator="gear2")


class TestDynamicSources:
    def test_sine_through_divider(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", Sine(offset=0.0, amplitude=1.0, frequency_hz=1e6))
        c.add_resistor("R1", "a", "b", 1000.0)
        c.add_resistor("R2", "b", "0", 1000.0)
        result = transient(c, 2e-6, 1e-8)
        v = result.voltage("b")
        # Resistive divider: exactly half the source at all times.
        expected = 0.5 * np.sin(2 * np.pi * 1e6 * result.time_s)
        assert np.max(np.abs(v - expected)) < 1e-6

    def test_rc_lowpass_attenuates_fast_sine(self):
        # f >> 1/(2 pi RC): steady-state amplitude ~ 1 / (omega RC).
        # Run long enough (8 tau) for the startup transient to die.
        r, cap, f = 1e3, 1e-9, 10e6
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", Sine(0.0, 1.0, f))
        c.add_resistor("R1", "a", "b", r)
        c.add_capacitor("C1", "b", "0", cap)
        result = transient(c, 8e-6, 2e-9)
        settled = result.voltage("b")[result.time_s > 7e-6]
        gain = settled.max()
        expected = 1.0 / math.sqrt(1.0 + (2 * math.pi * f * r * cap) ** 2)
        assert gain == pytest.approx(expected, rel=0.1)

    def test_initial_condition_from_dc(self):
        # Source starts at 1 V DC: the capacitor must start charged.
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", DC(1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "0", 1e-9)
        result = transient(c, 1e-6, 1e-8)
        assert result.voltage("b")[0] == pytest.approx(1.0, abs=1e-6)
        assert result.voltage("b")[-1] == pytest.approx(1.0, abs=1e-6)

"""Command-line interface: listing, dispatch, output format."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestListing:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out


class TestDispatch:
    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code != 0

    def test_table1_prints_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "trigate" in out

    def test_rf_prints_rows(self, capsys):
        assert main(["rf"]) == 0
        out = capsys.readouterr().out
        assert "f_max" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "rf"]) == 0
        out = capsys.readouterr().out
        headers = [line for line in out.splitlines() if line.startswith("=== ")]
        assert len(headers) == 2

    def test_every_registered_runner_returns_rows(self):
        # Cheap registry self-check: runners are callables with metadata.
        for name, (description, runner) in EXPERIMENTS.items():
            assert isinstance(description, str) and description
            assert callable(runner)


class TestPhysicalStack:
    def test_physical_registry_is_a_subset(self):
        from repro.cli import PHYSICAL_EXPERIMENTS

        assert set(PHYSICAL_EXPERIMENTS) <= set(EXPERIMENTS)
        assert {"cascade", "timing", "integration"} <= set(PHYSICAL_EXPERIMENTS)

    def test_physical_flag_rejects_unsupported_experiments(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--physical"])
        assert excinfo.value.code != 0

    def test_listing_marks_physical_experiments(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "[--physical]" in out

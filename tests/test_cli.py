"""Command-line interface: listing, dispatch, output format."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestListing:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out


class TestDispatch:
    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code != 0

    def test_table1_prints_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "trigate" in out

    def test_rf_prints_rows(self, capsys):
        assert main(["rf"]) == 0
        out = capsys.readouterr().out
        assert "f_max" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "rf"]) == 0
        out = capsys.readouterr().out
        headers = [line for line in out.splitlines() if line.startswith("=== ")]
        assert len(headers) == 2

    def test_every_registered_runner_returns_rows(self):
        # Cheap registry self-check: runners are callables with metadata.
        for name, (description, runner) in EXPERIMENTS.items():
            assert isinstance(description, str) and description
            assert callable(runner)


class TestStructuredFailureExit:
    def _failing_runner(self):
        from repro.circuit.resilience import (
            ChunkRecord,
            RunReport,
            SweepExecutionError,
        )

        report = RunReport(
            chunks=[
                ChunkRecord(index=0, n_items=4, status="ok", attempts=1),
                ChunkRecord(
                    index=1,
                    n_items=4,
                    status="failed",
                    attempts=3,
                    failures=("crash", "crash", "crash"),
                ),
            ],
            workers=2,
            pool_rebuilds=3,
            wall_s=1.0,
        )
        raise SweepExecutionError("supervised sweep failed", report, {0: [1, 2, 3, 4]})

    def test_sweep_failure_exits_2_with_one_line_and_report(
        self, capsys, monkeypatch, tmp_path
    ):
        import json
        import repro.cli as cli

        monkeypatch.setitem(
            cli.EXPERIMENTS, "fabric", ("desc", lambda: self._failing_runner())
        )
        monkeypatch.chdir(tmp_path)
        assert main(["fabric"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # no half-printed artefact rows
        assert captured.err.count("\n") == 1
        assert "repro fabric: FAILED" in captured.err
        assert "crash=3" in captured.err
        # The salvaged RunReport is persisted for post-mortem/resume.
        payload = json.loads((tmp_path / "run-report.json").read_text())
        assert payload["counts"] == {"ok": 1, "failed": 1}
        assert payload["failure_taxonomy"] == {"crash": 3}

    def test_generic_failure_exits_1_with_one_line(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom():
            raise RuntimeError("kernel exploded")

        monkeypatch.setitem(cli.EXPERIMENTS, "fabric", ("desc", boom))
        assert main(["fabric"]) == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "repro fabric: FAILED — RuntimeError: kernel exploded" in err


class TestResumeFlag:
    def test_resume_rejects_unsupported_experiments(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--resume", str(tmp_path)])
        assert excinfo.value.code != 0

    def test_resume_rejects_physical_combination(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["integration", "--physical", "--resume", str(tmp_path)])
        assert excinfo.value.code != 0

    def test_resumable_registry_is_a_subset(self):
        from repro.cli import RESUMABLE_EXPERIMENTS

        assert set(RESUMABLE_EXPERIMENTS) <= set(EXPERIMENTS)
        assert {"fabric", "integration"} <= set(RESUMABLE_EXPERIMENTS)

    def test_resume_runs_supervised_and_checkpoints(self, capsys, tmp_path):
        assert main(["fabric", "--resume", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fabric" in out
        # The supervised run left chunk checkpoints under the dir.
        assert list(tmp_path.glob("*/chunk-*.pkl"))
        # A second invocation resumes from them and prints the same rows.
        assert main(["fabric", "--resume", str(tmp_path)]) == 0
        assert capsys.readouterr().out == out


class TestPhysicalStack:
    def test_physical_registry_is_a_subset(self):
        from repro.cli import PHYSICAL_EXPERIMENTS

        assert set(PHYSICAL_EXPERIMENTS) <= set(EXPERIMENTS)
        assert {"cascade", "timing", "integration"} <= set(PHYSICAL_EXPERIMENTS)

    def test_physical_flag_rejects_unsupported_experiments(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--physical"])
        assert excinfo.value.code != 0

    def test_listing_marks_physical_experiments(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "[--physical]" in out

"""Fig. 5 harness: dataset integrity and the CNT-wins ordering."""

import pytest

from repro.benchmarking.datasets import (
    FIG5_REFERENCE,
    IOFF_TARGET_A_PER_UM,
    BenchmarkPoint,
    TechnologySeries,
)
from repro.benchmarking.fig5 import cnt_model_ion_density, run_fig5_benchmark


class TestDataset:
    def test_all_technologies_present(self):
        assert set(FIG5_REFERENCE) == {
            "Si", "InGaAs HEMT", "InAs HEMT", "CNT (measured)",
        }

    def test_point_validation(self):
        with pytest.raises(ValueError):
            BenchmarkPoint(gate_length_nm=-1.0, ion_ua_per_um=100.0)

    def test_off_current_is_100na_per_um(self):
        assert IOFF_TARGET_A_PER_UM == pytest.approx(100e-9)

    def test_series_accessors(self):
        series = FIG5_REFERENCE["InAs HEMT"]
        assert len(series.gate_lengths_nm()) == len(series.ion_ua_per_um())
        assert series.best_ion() == max(series.ion_ua_per_um())

    def test_ion_near_window(self):
        series = FIG5_REFERENCE["Si"]
        assert series.ion_near(30.0) is not None
        assert series.ion_near(30.0, tolerance=0.0001) is None or True

    def test_paper_ordering_cnt_wins(self):
        # "Clearly, the CNTFET outperforms the alternatives" (Fig. 5).
        cnt = FIG5_REFERENCE["CNT (measured)"].best_ion()
        for name in ("Si", "InGaAs HEMT", "InAs HEMT"):
            assert cnt > 2.0 * FIG5_REFERENCE[name].best_ion()

    def test_inas_beats_si_at_matched_length(self):
        inas = FIG5_REFERENCE["InAs HEMT"].ion_near(40.0)
        si = FIG5_REFERENCE["Si"].ion_near(40.0)
        assert inas is not None and si is not None and inas > si


class TestModelSeries:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5_benchmark(gate_lengths_nm=(9.0, 30.0, 100.0))

    def test_model_points_generated(self, result):
        assert len(result.model_cnt) == 3

    def test_model_ion_decreases_with_length(self, result):
        ions = [p.ion_ua_per_um for p in result.model_cnt]
        assert ions[0] > ions[1] > ions[2]

    def test_model_beats_every_alternative(self, result):
        # The headline qualitative claim of Fig. 5.
        model_at_30 = result.model_cnt[1].ion_ua_per_um
        for name in ("Si", "InGaAs HEMT", "InAs HEMT"):
            reference = result.reference[name].best_ion()
            assert model_at_30 > reference

    def test_model_within_factor_five_of_measured(self, result):
        # The model is an intrinsic-ballistic + clean-contact bound; the
        # measured points carry Schottky barriers etc.  Shape match only.
        measured = result.reference["CNT (measured)"]
        for point in result.model_cnt:
            nearest = measured.ion_near(point.gate_length_nm)
            assert nearest is not None
            assert nearest / 5.0 < point.ion_ua_per_um < nearest * 5.0

    def test_rows_cover_all_series(self, result):
        names = {row[0] for row in result.rows()}
        assert "CNT (model)" in names
        assert "Si" in names

    def test_ideal_contact_ceiling_higher(self):
        with_contacts = cnt_model_ion_density(20.0)
        ceiling = cnt_model_ion_density(20.0, contact_length_nm=None)
        assert ceiling.ion_ua_per_um > with_contacts.ion_ua_per_um

"""CNT fabric transistors: parallel composition, shunts, sampling."""

import numpy as np
import pytest

from repro.devices.empirical import AlphaPowerFET
from repro.devices.fabric import CNTFabricFET, sample_fabric


@pytest.fixture
def tube():
    return AlphaPowerFET(k_a_per_v_alpha=2e-5)


class TestComposition:
    def test_validation(self, tube):
        with pytest.raises(ValueError):
            CNTFabricFET([], n_metallic=0)
        with pytest.raises(ValueError):
            CNTFabricFET([tube], n_metallic=-1)
        with pytest.raises(ValueError):
            CNTFabricFET([tube], pitch_nm=0.0)

    def test_parallel_currents_add(self, tube):
        one = CNTFabricFET([tube], pitch_nm=8.0)
        five = CNTFabricFET([tube] * 5, pitch_nm=8.0)
        assert five.current(0.8, 0.5) == pytest.approx(5 * one.current(0.8, 0.5))

    def test_width_is_tubes_times_pitch(self, tube):
        fabric = CNTFabricFET([tube] * 4, n_metallic=1, pitch_nm=8.0)
        assert fabric.n_tubes == 5
        assert fabric.width_nm == pytest.approx(40.0)

    def test_density_independent_of_tube_count_for_uniform_fabric(self, tube):
        small = CNTFabricFET([tube] * 2, pitch_nm=8.0)
        large = CNTFabricFET([tube] * 20, pitch_nm=8.0)
        assert small.current_density_a_per_m(0.8, 0.5) == pytest.approx(
            large.current_density_a_per_m(0.8, 0.5)
        )

    def test_tighter_pitch_higher_density(self, tube):
        loose = CNTFabricFET([tube] * 5, pitch_nm=20.0)
        tight = CNTFabricFET([tube] * 5, pitch_nm=5.0)
        assert tight.current_density_a_per_m(0.8, 0.5) > loose.current_density_a_per_m(
            0.8, 0.5
        )


class TestMetallicShunts:
    def test_shunt_conducts_when_off(self, tube):
        clean = CNTFabricFET([tube] * 5, n_metallic=0)
        dirty = CNTFabricFET([tube] * 5, n_metallic=1)
        assert dirty.current(0.0, 0.5) > 10 * clean.current(0.0, 0.5)

    def test_shunt_kills_on_off_ratio(self, tube):
        clean = CNTFabricFET([tube] * 5, n_metallic=0)
        dirty = CNTFabricFET([tube] * 5, n_metallic=1)
        assert dirty.on_off_ratio(1.0) < clean.on_off_ratio(1.0) / 10.0

    def test_shunt_current_is_ohmic(self, tube):
        fabric = CNTFabricFET([], n_metallic=2, metallic_resistance_ohm=20e3)
        assert fabric.current(0.0, 0.5) == pytest.approx(2 * 0.5 / 20e3)
        assert fabric.current(1.0, 0.5) == pytest.approx(fabric.current(0.0, 0.5))


class TestSampling:
    def test_tube_count_from_width_and_pitch(self):
        fabric = sample_fabric(
            width_um=0.08, pitch_nm=8.0, rng=np.random.default_rng(0)
        )
        assert fabric.n_tubes == 10

    def test_purity_controls_metallic_fraction(self):
        rng = np.random.default_rng(1)
        dirty = sample_fabric(
            width_um=1.0, semiconducting_purity=0.7, rng=rng
        )
        clean = sample_fabric(
            width_um=1.0,
            semiconducting_purity=0.9999,
            rng=np.random.default_rng(1),
        )
        assert dirty.n_metallic > clean.n_metallic
        assert clean.n_metallic <= 1

    def test_sampled_fabric_conducts_and_switches(self):
        fabric = sample_fabric(
            width_um=0.08, semiconducting_purity=1.0, rng=np.random.default_rng(2)
        )
        assert fabric.current(0.6, 0.5) > 1e-5  # ~10 tubes x uA
        assert fabric.on_off_ratio(0.6) > 1e3

    def test_ma_per_um_class_density(self):
        # The integration goal: an aligned fabric at logic pitch delivers
        # mA/um-class drive — competitive with the Fig. 5 field.
        fabric = sample_fabric(
            width_um=0.08, semiconducting_purity=1.0, rng=np.random.default_rng(3)
        )
        density = fabric.current_density_a_per_m(0.6, 0.5)
        assert density > 1e3  # > 1 mA/um

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_fabric(width_um=0.0)
        with pytest.raises(ValueError):
            sample_fabric(width_um=1.0, semiconducting_purity=1.5)

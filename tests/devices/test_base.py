"""FET interface helpers: p-type mirror, curves, derivatives."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.devices.base import (
    PType,
    output_conductance,
    output_curve,
    transconductance,
    transfer_curve,
)
from repro.devices.empirical import AlphaPowerFET


@pytest.fixture
def nfet():
    return AlphaPowerFET()


class TestPType:
    def test_polarity_labels(self, nfet):
        assert nfet.polarity == "n"
        assert PType(nfet).polarity == "p"

    def test_mirror_symmetry(self, nfet):
        pfet = PType(nfet)
        assert pfet.current(-0.7, -0.5) == pytest.approx(-nfet.current(0.7, 0.5))

    def test_off_when_gate_high(self, nfet):
        pfet = PType(nfet)
        # p device with source at VDD: vgs = 0 means off.
        assert abs(pfet.current(0.0, -1.0)) < abs(pfet.current(-1.0, -1.0)) / 100

    @given(st.floats(-1.0, 1.0), st.floats(-1.0, 1.0))
    @settings(
        max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture]
    )
    def test_double_mirror_is_identity(self, nfet, vgs, vds):
        double = PType(PType(nfet))
        assert double.current(vgs, vds) == pytest.approx(
            nfet.current(vgs, vds), rel=1e-12, abs=1e-30
        )


class TestCurveHelpers:
    def test_transfer_curve_shape_and_monotone(self, nfet):
        vgs = np.linspace(0.0, 1.0, 21)
        curve = transfer_curve(nfet, vgs, vds=0.5)
        assert curve.shape == (21,)
        assert np.all(np.diff(curve) > 0.0)

    def test_output_curve_passes_origin(self, nfet):
        vds = np.linspace(0.0, 1.0, 21)
        curve = output_curve(nfet, vds, vgs=0.8)
        assert curve[0] == pytest.approx(0.0)
        assert np.all(np.diff(curve) >= 0.0)

    def test_currents_broadcasting(self, nfet):
        grid = nfet.currents(np.array([[0.4], [0.8]]), np.array([0.2, 0.5]))
        assert grid.shape == (2, 2)


class TestDerivatives:
    def test_gm_positive_above_threshold(self, nfet):
        assert transconductance(nfet, 0.8, 0.5) > 0.0

    def test_gds_positive_and_small_in_saturation(self, nfet):
        g_sat = output_conductance(nfet, 0.8, 0.9)
        g_lin = output_conductance(nfet, 0.8, 0.05)
        assert 0.0 < g_sat < g_lin

    def test_gm_matches_manual_difference(self, nfet):
        dv = 1e-4
        manual = (nfet.current(0.8 + dv, 0.5) - nfet.current(0.8 - dv, 0.5)) / (2 * dv)
        assert transconductance(nfet, 0.8, 0.5, dv) == pytest.approx(manual)

"""Reference Si/III-V devices: calibration to the paper's quoted numbers."""

import math

import pytest

from repro.devices.reference import TrigateFET, inas_hemt_reference, trigate_intel_22nm


class TestTrigate:
    def test_headline_current(self):
        # Paper: "~66 uA at VDS = 1 V and VGS = 1 V".
        trigate = trigate_intel_22nm()
        assert trigate.current(1.0, 1.0) == pytest.approx(66e-6, rel=0.1)

    def test_geometry_matches_paper(self):
        trigate = trigate_intel_22nm()
        assert trigate.fin_height_nm == 35.0
        assert trigate.fin_width_nm == 18.0
        assert trigate.gate_length_nm == 30.0

    def test_effective_width(self):
        assert trigate_intel_22nm().effective_width_nm == pytest.approx(88.0)

    def test_cross_section_vs_cnt(self):
        # Paper: trigate cross-section > 300x that of a ~1.5 nm tube.
        trigate = trigate_intel_22nm()
        tube_area = math.pi * (1.5 / 2.0) ** 2
        assert trigate.cross_section_nm2 / tube_area > 300.0

    def test_current_density_normalisation(self):
        trigate = trigate_intel_22nm()
        density = trigate.current_density_a_per_m(1.0, 1.0)
        assert density == pytest.approx(trigate.current(1.0, 1.0) / 88e-9)

    def test_saturating_behaviour(self):
        trigate = trigate_intel_22nm()
        i_knee = trigate.current(1.0, 0.6)
        i_full = trigate.current(1.0, 1.0)
        assert (i_full - i_knee) / i_full < 0.2


class TestInAsReference:
    def test_per_um_current_scale(self):
        hemt = inas_hemt_reference()
        # ~0.5 mA/um class at the 0.5 V benchmark conditions.
        i = hemt.current(0.5, 0.5)
        assert 2e-4 < i < 2e-3

    def test_low_threshold(self):
        hemt = inas_hemt_reference()
        assert hemt.vt < 0.2

    def test_softer_saturation_than_si(self):
        hemt = inas_hemt_reference()
        trigate = trigate_intel_22nm()
        assert hemt.channel_modulation > trigate.core.channel_modulation

"""CNT tunnel FET: band alignment, turn-on, paper's Fig. 6 anchors."""

import numpy as np
import pytest

from repro.devices.tfet import CNTTunnelFET
from repro.physics.cnt import Chirality


class TestConstruction:
    def test_rejects_metallic(self):
        with pytest.raises(ValueError):
            CNTTunnelFET(Chirality(9, 9))

    def test_rejects_bad_efficiency(self, chirality_056):
        with pytest.raises(ValueError):
            CNTTunnelFET(chirality_056, gate_efficiency=1.5)

    def test_rejects_bad_urbach(self, chirality_056):
        with pytest.raises(ValueError):
            CNTTunnelFET(chirality_056, urbach_ev=0.0)

    def test_screening_length_scales_with_oxide(self, chirality_056):
        thin = CNTTunnelFET(chirality_056, t_ox_nm=2.0)
        thick = CNTTunnelFET(chirality_056, t_ox_nm=20.0)
        assert thin.screening_length_nm < thick.screening_length_nm


class TestBandAlignment:
    def test_negative_gate_raises_channel_bands(self, reference_tfet):
        assert reference_tfet.channel_midgap_ev(-1.0) > reference_tfet.channel_midgap_ev(
            0.0
        )

    def test_overlap_closed_at_equilibrium(self, reference_tfet):
        assert reference_tfet.band_overlap_ev(0.0, 0.0) < 0.0

    def test_reverse_bias_widens_window(self, reference_tfet):
        assert reference_tfet.band_overlap_ev(-1.0, -0.5) > reference_tfet.band_overlap_ev(
            -1.0, 0.0
        )

    def test_gate_drive_widens_window(self, reference_tfet):
        assert reference_tfet.band_overlap_ev(-1.5, -0.5) > reference_tfet.band_overlap_ev(
            -0.5, -0.5
        )


class TestReverseTurnOn:
    def test_btbt_off_before_breakover(self, reference_tfet):
        assert reference_tfet.btbt_current_a(0.5, -0.5) == 0.0

    def test_btbt_on_past_breakover(self, reference_tfet):
        assert reference_tfet.btbt_current_a(-1.5, -0.5) < 0.0  # reverse sign

    def test_transfer_curve_monotone_turn_on(self, reference_tfet):
        v_gate = np.linspace(-2.0, 0.5, 26)
        current = reference_tfet.transfer_curve(v_gate, -0.5)
        # More negative gate -> more current (allowing flat tails).
        assert current[0] > 100 * current[-1]

    def test_ss_in_measured_range(self, reference_tfet):
        # Paper: 83 mV/dec average, individual intervals down to 32.
        ss = reference_tfet.subthreshold_swing_mv_per_decade()
        assert 30.0 < ss < 110.0

    def test_on_current_density_ma_per_um_class(self, reference_tfet):
        density = reference_tfet.on_current_density_a_per_m()
        # Paper: ~1 mA/um = 1e3 A/m; accept the same order of magnitude.
        assert 3e2 < density < 3e4

    def test_thinner_oxide_more_on_current(self, chirality_056):
        thin = CNTTunnelFET(chirality_056, t_ox_nm=3.0)
        thick = CNTTunnelFET(chirality_056, t_ox_nm=10.0)
        assert abs(thin.current(-2.0, -0.5)) > abs(thick.current(-2.0, -0.5))


class TestForwardBias:
    def test_diode_conducts_forward(self, reference_tfet):
        assert reference_tfet.current(0.0, 0.4) > 0.0

    def test_gate_barely_modulates_forward(self, reference_tfet):
        # Paper: "the application of the back voltage is hardly
        # modulating the current" in forward direction.
        on_gate = reference_tfet.current(-2.0, 0.4)
        off_gate = reference_tfet.current(0.5, 0.4)
        assert on_gate / off_gate == pytest.approx(1.0, abs=0.25)

    def test_diode_exponential_in_forward(self, reference_tfet):
        i1 = reference_tfet.diode_current_a(0.2)
        i2 = reference_tfet.diode_current_a(0.3)
        assert i2 > 5.0 * i1

    def test_diode_saturates_in_reverse(self, reference_tfet):
        assert reference_tfet.diode_current_a(-0.5) == pytest.approx(
            -reference_tfet.diode_saturation_a, rel=1e-3
        )


class TestAsymmetry:
    def test_rectification(self, reference_tfet):
        """Diode asymmetry at zero gate: forward >> reverse magnitude."""
        forward = reference_tfet.current(0.0, 0.4)
        reverse = abs(reference_tfet.current(0.0, -0.4))
        assert forward > 10.0 * reverse

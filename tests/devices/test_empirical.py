"""Empirical device models: alpha-power, non-saturating, tabulated."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.iv import saturation_index
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET, TabulatedFET


class TestAlphaPowerFET:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlphaPowerFET(k_a_per_v_alpha=-1.0)
        with pytest.raises(ValueError):
            AlphaPowerFET(alpha=0.5)
        with pytest.raises(ValueError):
            AlphaPowerFET(sat_fraction=0.0)
        with pytest.raises(ValueError):
            AlphaPowerFET(subthreshold_ideality=0.8)

    def test_zero_at_origin(self):
        assert AlphaPowerFET().current(0.7, 0.0) == pytest.approx(0.0)

    def test_subthreshold_slope_set_by_ideality(self):
        fet = AlphaPowerFET(vt=0.4, subthreshold_ideality=1.0)
        i1 = fet.current(0.05, 1.0)
        i2 = fet.current(0.15, 1.0)
        # Softplus width scales with alpha, so SS = n * 60 mV/dec exactly.
        decades = np.log10(i2 / i1)
        ss_mv = 100.0 / decades
        assert ss_mv == pytest.approx(59.5, abs=4.0)

    def test_subthreshold_slope_follows_n(self):
        steep = AlphaPowerFET(vt=0.4, subthreshold_ideality=1.0)
        soft = AlphaPowerFET(vt=0.4, subthreshold_ideality=1.5)
        ratio_steep = steep.current(0.15, 1.0) / steep.current(0.05, 1.0)
        ratio_soft = soft.current(0.15, 1.0) / soft.current(0.05, 1.0)
        assert ratio_steep > ratio_soft

    def test_output_curve_saturates(self):
        fet = AlphaPowerFET()
        vds = np.linspace(0.0, 1.0, 41)
        curve = np.array([fet.current(0.8, float(v)) for v in vds])
        assert saturation_index(vds, curve) > 0.7

    def test_channel_modulation_tilts_saturation(self):
        flat = AlphaPowerFET(channel_modulation=0.0)
        tilted = AlphaPowerFET(channel_modulation=0.3)
        gain_flat = flat.current(0.8, 1.0) - flat.current(0.8, 0.8)
        gain_tilted = tilted.current(0.8, 1.0) - tilted.current(0.8, 0.8)
        assert gain_tilted > gain_flat

    def test_negative_vds_antisymmetric_mapping(self):
        fet = AlphaPowerFET()
        assert fet.current(0.5, -0.3) == pytest.approx(-fet.current(0.8, 0.3))

    @given(st.floats(0.0, 1.2), st.floats(0.0, 1.2))
    @settings(max_examples=40)
    def test_nonnegative_forward(self, vgs, vds):
        assert AlphaPowerFET().current(vgs, vds) >= 0.0

    @given(st.floats(0.3, 1.1))
    @settings(max_examples=20)
    def test_monotone_in_vgs(self, vgs):
        fet = AlphaPowerFET()
        assert fet.current(vgs + 0.05, 0.6) > fet.current(vgs, 0.6)


class TestNonSaturatingFET:
    def test_validation(self):
        with pytest.raises(ValueError):
            NonSaturatingFET(g_on_s=0.0)
        with pytest.raises(ValueError):
            NonSaturatingFET(smoothing_v=-0.1)
        with pytest.raises(ValueError):
            NonSaturatingFET(vt=0.9, v_on=0.5)

    def test_perfectly_linear_in_vds(self):
        fet = NonSaturatingFET()
        i1 = fet.current(0.8, 0.25)
        i2 = fet.current(0.8, 0.5)
        i4 = fet.current(0.8, 1.0)
        assert i2 == pytest.approx(2 * i1)
        assert i4 == pytest.approx(4 * i1)

    def test_never_saturates(self):
        fet = NonSaturatingFET()
        vds = np.linspace(0.0, 1.0, 41)
        curve = np.array([fet.current(1.0, float(v)) for v in vds])
        assert saturation_index(vds, curve) == pytest.approx(0.0, abs=1e-9)

    def test_on_conductance_normalisation(self):
        fet = NonSaturatingFET(g_on_s=1e-4, v_on=1.0)
        assert fet.conductance(1.0) == pytest.approx(1e-4)

    def test_turns_off_below_threshold(self):
        fet = NonSaturatingFET(vt=0.3, smoothing_v=0.05)
        assert fet.conductance(0.0) < fet.conductance(1.0) / 100.0

    def test_negative_vds_gives_negative_current(self):
        fet = NonSaturatingFET()
        assert fet.current(0.8, -0.5) == pytest.approx(-fet.current(0.8, 0.5))


class TestTabulatedFET:
    @pytest.fixture
    def table(self):
        source = AlphaPowerFET()
        vgs = np.linspace(0.0, 1.0, 21)
        vds = np.linspace(0.0, 1.0, 21)
        return TabulatedFET.from_model(source, vgs, vds), source

    def test_reproduces_grid_points(self, table):
        tab, source = table
        assert tab.current(0.5, 0.5) == pytest.approx(source.current(0.5, 0.5))

    def test_interpolates_between_points(self, table):
        tab, source = table
        assert tab.current(0.52, 0.47) == pytest.approx(
            source.current(0.52, 0.47), rel=0.05
        )

    def test_clamps_out_of_range(self, table):
        tab, source = table
        assert tab.current(5.0, 0.5) == pytest.approx(source.current(1.0, 0.5), rel=1e-6)

    def test_negative_vds_symmetry(self, table):
        tab, _ = table
        assert tab.current(0.5, -0.4) == pytest.approx(-tab.current(0.9, 0.4))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TabulatedFET([0, 1], [0, 1], np.zeros((3, 2)))
        with pytest.raises(ValueError):
            TabulatedFET([1, 0], [0, 1], np.zeros((2, 2)))

"""Batched ``currents``/``linearize`` vs the scalar ``current`` contract.

The compiled circuit assembly, the curve helpers and the tabulation all
consume the batched entry points, while spot values, root finders and
density helpers still call scalar ``current``.  These tests pin the two
paths together for every device model with a vectorised override, so an
edit to one side (a clamp, a softplus threshold, a solver tweak) cannot
silently diverge from the other.
"""

import numpy as np
import pytest

from repro.devices.base import PType
from repro.devices.cntfet import CNTFET
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET, TabulatedFET
from repro.devices.fabric import CNTFabricFET
from repro.devices.gnrfet import GNRFET
from repro.devices.reference import trigate_intel_22nm
from repro.physics.gnr import gnr_for_gap


def _tabulated():
    return TabulatedFET.from_model(
        AlphaPowerFET(), np.linspace(-0.3, 1.2, 16), np.linspace(0.0, 1.2, 13)
    )


FAST_DEVICES = {
    "alpha_power": AlphaPowerFET,
    "alpha_power_ptype": lambda: PType(AlphaPowerFET()),
    "alpha_power_double_mirror": lambda: PType(PType(AlphaPowerFET())),
    "non_saturating": NonSaturatingFET,
    "tabulated": _tabulated,
    "trigate": trigate_intel_22nm,
    "fabric": lambda: CNTFabricFET(
        [_tabulated()] * 3 + [AlphaPowerFET()], n_metallic=1
    ),
}

# The physical solvers are slow per point; a handful of biases still
# covers the mirror transform and the batched barrier Newton.
SLOW_DEVICES = {
    "cntfet": CNTFET.reference_device,
    "gnrfet": lambda: GNRFET(gnr_for_gap(0.56), channel_length_nm=20.0),
}


def _bias_grid(n):
    rng = np.random.default_rng(42)
    vgs = rng.uniform(-0.4, 1.2, n)
    vds = rng.uniform(-0.6, 1.2, n)  # both signs: exercises the mirror
    return vgs, vds


@pytest.mark.parametrize("name", FAST_DEVICES)
def test_fast_model_currents_match_scalar(name):
    device = FAST_DEVICES[name]()
    vgs, vds = _bias_grid(60)
    batch = device.currents(vgs, vds)
    scalar = np.array([device.current(float(g), float(d)) for g, d in zip(vgs, vds)])
    np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-30)


@pytest.mark.parametrize("name", SLOW_DEVICES)
def test_physical_model_currents_match_scalar(name):
    device = SLOW_DEVICES[name]()
    vgs, vds = _bias_grid(6)
    batch = device.currents(vgs, vds)
    scalar = np.array([device.current(float(g), float(d)) for g, d in zip(vgs, vds)])
    np.testing.assert_allclose(batch, scalar, rtol=1e-9, atol=1e-30)


def test_linearize_matches_scalar_finite_differences():
    device = PType(AlphaPowerFET())
    vgs, vds = _bias_grid(40)
    delta_v = 1e-5
    current, gm, gds = device.linearize(vgs, vds, delta_v)
    for k in range(vgs.size):
        g, d = float(vgs[k]), float(vds[k])
        assert float(current[k]) == pytest.approx(device.current(g, d), rel=1e-12)
        gm_ref = (
            device.current(g + delta_v, d) - device.current(g - delta_v, d)
        ) / (2 * delta_v)
        gds_ref = (
            device.current(g, d + delta_v) - device.current(g, d - delta_v)
        ) / (2 * delta_v)
        assert float(gm[k]) == pytest.approx(gm_ref, rel=1e-9, abs=1e-18)
        assert float(gds[k]) == pytest.approx(gds_ref, rel=1e-9, abs=1e-18)

"""Ballistic CNT-FET: construction, paper-anchored behaviour, scaling."""

import numpy as np
import pytest

from repro.analysis.iv import saturation_index
from repro.devices.cntfet import CNTFET
from repro.physics.cnt import Chirality


class TestConstruction:
    def test_rejects_metallic_tube(self):
        with pytest.raises(ValueError):
            CNTFET(Chirality(9, 9))

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            CNTFET(Chirality(15, 7), channel_length_nm=0.0)

    def test_rejects_unknown_geometry(self):
        with pytest.raises(ValueError):
            CNTFET(Chirality(15, 7), gate_geometry="trigate")

    def test_for_bandgap_matches_target(self):
        device = CNTFET.for_bandgap(0.7)
        assert device.chirality.bandgap_ev() == pytest.approx(0.7, abs=0.05)

    def test_reference_device_is_paper_tube(self, reference_cntfet):
        assert reference_cntfet.chirality.bandgap_ev() == pytest.approx(0.56, abs=0.02)
        assert reference_cntfet.channel_length_nm == 20.0

    def test_transmission_in_unit_interval(self, reference_cntfet):
        assert 0.0 < reference_cntfet.transmission <= 1.0

    def test_back_gate_weaker_than_gaa(self):
        gaa = CNTFET(Chirality(15, 7), gate_geometry="gaa")
        back = CNTFET(Chirality(15, 7), gate_geometry="back-gate")
        assert back.params.c_ins_f_per_m < gaa.params.c_ins_f_per_m


class TestPaperAnchors:
    def test_on_current_20ua_class(self, reference_cntfet):
        # Section III.E: ~20 uA at V_DS = 0.6 V for a ~1 nm-class device.
        i_on = reference_cntfet.current(0.6, 0.6)
        assert 10e-6 < i_on < 40e-6

    def test_output_saturates(self, reference_cntfet):
        vds = np.linspace(0.0, 0.5, 26)
        curve = np.array([reference_cntfet.current(0.6, float(v)) for v in vds])
        assert saturation_index(vds, curve) > 0.9

    def test_subthreshold_swing_near_ideal(self, reference_cntfet):
        ss = reference_cntfet.subthreshold_swing_mv_per_decade()
        assert 59.0 < ss < 80.0

    def test_on_off_ratio_logic_grade(self, reference_cntfet):
        ratio = reference_cntfet.current(0.6, 0.5) / reference_cntfet.current(0.0, 0.5)
        assert ratio > 1e4

    def test_current_density_diameter_normalised(self, reference_cntfet):
        density = reference_cntfet.current_density_a_per_m(0.6, 0.5)
        # A good CNT-FET carries mA/um-class densities by this metric.
        assert density > 1e3  # 1 mA/um = 1e3 A/m

    def test_density_with_explicit_pitch(self, reference_cntfet):
        d1 = reference_cntfet.current_density_a_per_m(0.6, 0.5)
        d2 = reference_cntfet.current_density_a_per_m(0.6, 0.5, pitch_nm=5.0)
        assert d2 < d1  # wider pitch dilutes the density

    def test_pitch_validation(self, reference_cntfet):
        with pytest.raises(ValueError):
            reference_cntfet.current_density_a_per_m(0.6, 0.5, pitch_nm=0.0)


class TestSymmetryAndScaling:
    def test_negative_vds_antisymmetry(self, reference_cntfet):
        forward = reference_cntfet.current(0.9, 0.4)
        backward = reference_cntfet.current(0.5, -0.4)
        assert backward == pytest.approx(-forward, rel=1e-9)

    def test_zero_vds_zero_current(self, reference_cntfet):
        assert reference_cntfet.current(0.6, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_longer_channel_less_current(self):
        short = CNTFET(Chirality(15, 7), channel_length_nm=20.0)
        long = CNTFET(Chirality(15, 7), channel_length_nm=300.0)
        assert long.current(0.6, 0.5) < short.current(0.6, 0.5)
        assert long.transmission < short.transmission

    def test_operating_point_exposed(self, reference_cntfet):
        op = reference_cntfet.operating_point(0.5, 0.5)
        assert op.current_a == pytest.approx(reference_cntfet.current(0.5, 0.5))
        assert op.charge_per_m > 0.0

    def test_repr_mentions_chirality(self, reference_cntfet):
        assert "15" in repr(reference_cntfet)

"""Surrogate compilation: fidelity, analytic derivatives, cache behaviour.

Covers the tentpole contracts of :mod:`repro.devices.surrogate`:

* golden-tolerance equivalence against direct physical evaluation over
  the declared operating box (including ``PType`` mirrors and
  ``FETVariation``/``ScaledShiftedFET`` transforms composed *around*
  the surrogate without recompilation);
* analytic ``linearize``/``linearize_point`` consistency (no
  finite-difference step on the hot path);
* content-addressed caching: memory hits, disk round-trips that are
  bitwise deterministic, corrupt- and stale-file recovery, cache
  disabling, and the identity fallback for unfingerprintable models.
"""

import numpy as np
import pytest

from repro.circuit.sweep import FETVariation, CircuitMonteCarlo, ScaledShiftedFET, perturbed_circuit
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import DC
from repro.devices.base import FETModel, OperatingBox, PType
from repro.devices.cntfet import CNTFET
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET
from repro.devices import surrogate as surrogate_module
from repro.devices.surrogate import (
    GridSpec,
    SurrogateFET,
    compile_surrogate,
    surrogate_cache_dir,
    surrogate_fidelity,
)
from repro.physics.cnt import Chirality


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Every test gets an empty disk cache and a cleared memory cache."""
    monkeypatch.setenv(surrogate_module.CACHE_ENV, str(tmp_path / "surrogates"))
    surrogate_module.clear_surrogate_memory()
    yield
    surrogate_module.clear_surrogate_memory()


def _covered_points(surrogate, n, seed=3):
    """Random biases inside the region the table covers (incl. mirror)."""
    rng = np.random.default_rng(seed)
    lo_g, hi_g = surrogate.vgs_grid[0], surrogate.vgs_grid[-1]
    lo_d, hi_d = surrogate.vds_grid[0], surrogate.vds_grid[-1]
    if surrogate.mirror_symmetric:
        vgs = rng.uniform(lo_g, hi_g, 2 * n)
        vds = rng.uniform(-hi_d, hi_d, 2 * n)
        keep = (vds >= 0.0) | (vgs - vds <= hi_g)
        return vgs[keep][:n], vds[keep][:n]
    return rng.uniform(lo_g, hi_g, n), rng.uniform(lo_d, hi_d, n)


class TestFidelity:
    def test_smooth_empirical_model_within_acceptance(self):
        device = NonSaturatingFET()
        surrogate = compile_surrogate(device)
        assert surrogate.fit_error <= 1e-4
        assert surrogate_fidelity(surrogate, device) <= 1e-4

    def test_full_box_relative_error_including_negative_vds(self):
        device = NonSaturatingFET()
        surrogate = compile_surrogate(device)
        vgs, vds = _covered_points(surrogate, 400)
        direct = device.currents(vgs, vds)
        approx = surrogate.currents(vgs, vds)
        scale = np.abs(direct).max()
        rel = np.abs(approx - direct) / np.maximum(np.abs(direct), 1e-6 * scale)
        assert rel.max() <= 1e-4

    def test_physical_cntfet_within_acceptance(self):
        # One-subband tube on a trimmed box keeps the fill affordable in
        # tier 1 while exercising the real top-of-barrier solver fill
        # (warm-started columns) end to end.
        # The paper's 0.6 V operating window: both grid axes reach the
        # ~10 mV spacing the kT-smooth surface needs within tier-1 cost.
        device = CNTFET(Chirality(17, 0), n_subbands=1)
        spec = GridSpec(
            box=OperatingBox(vgs_min=-0.1, vgs_max=1.0, vds_max=0.6),
            initial_points=(17, 9),
        )
        surrogate = compile_surrogate(device, spec)
        assert surrogate_fidelity(surrogate, device) <= 1e-4

    def test_zero_current_at_zero_vds_is_exact(self):
        surrogate = compile_surrogate(NonSaturatingFET())
        assert surrogate.currents(np.linspace(-0.2, 1.2, 7), 0.0).tolist() == [0.0] * 7

    def test_mirror_symmetry_of_symmetric_surrogate(self):
        surrogate = compile_surrogate(AlphaPowerFET())
        assert surrogate.mirror_symmetric
        vgs, vds = 0.6, 0.4
        assert surrogate.current(vgs, -vds) == pytest.approx(
            -surrogate.current(vgs + vds, vds), rel=1e-12
        )


class TestAnalyticDerivatives:
    def test_linearize_matches_finite_differences_of_surrogate(self):
        surrogate = compile_surrogate(NonSaturatingFET())
        rng = np.random.default_rng(5)
        vgs = rng.uniform(-0.25, 1.25, 200)
        vds = rng.uniform(-1.25, 1.25, 200)
        _, gm, gds = surrogate.linearize(vgs, vds)
        dv = 1e-6
        gm_fd = (surrogate.currents(vgs + dv, vds) - surrogate.currents(vgs - dv, vds)) / (2 * dv)
        gds_fd = (surrogate.currents(vgs, vds + dv) - surrogate.currents(vgs, vds - dv)) / (2 * dv)
        # Exclude probes straddling the vds = 0 seam, where central
        # differences mix the two quadrants.
        interior = np.abs(vds) > dv
        np.testing.assert_allclose(gm[interior], gm_fd[interior], rtol=1e-6, atol=1e-12)
        np.testing.assert_allclose(gds[interior], gds_fd[interior], rtol=1e-6, atol=1e-12)

    def test_delta_v_knob_is_ignored(self):
        surrogate = compile_surrogate(NonSaturatingFET())
        vgs = np.array([0.3, 0.9])
        vds = np.array([0.2, -0.7])
        base = surrogate.linearize(vgs, vds)
        huge_step = surrogate.linearize(vgs, vds, delta_v=0.25)
        for a, b in zip(base, huge_step):
            assert np.array_equal(a, b)

    def test_linearize_point_bitwise_matches_array_path(self):
        surrogate = compile_surrogate(AlphaPowerFET())
        rng = np.random.default_rng(11)
        vgs = rng.uniform(-0.3, 1.3, 50)
        vds = rng.uniform(-1.3, 1.3, 50)
        current, gm, gds = surrogate.linearize(vgs, vds)
        for k in range(vgs.size):
            point = surrogate.linearize_point(float(vgs[k]), float(vds[k]))
            assert point == (float(current[k]), float(gm[k]), float(gds[k]))

    def test_out_of_box_extrapolation_is_finite_and_first_order(self):
        surrogate = compile_surrogate(NonSaturatingFET())
        hi = surrogate.vgs_grid[-1]
        current, gm, gds = surrogate.linearize(np.array([hi + 0.5]), np.array([0.8]))
        edge_c, edge_gm, edge_gds = surrogate.linearize(np.array([hi]), np.array([0.8]))
        assert np.isfinite(current).all() and np.isfinite(gm).all()
        assert gm[0] == edge_gm[0]  # derivative frozen at the clamped edge
        assert current[0] == pytest.approx(edge_c[0] + 0.5 * edge_gm[0], rel=1e-12)


class TestComposition:
    def test_ptype_compile_unwraps_and_shares_the_surrogate(self):
        nfet = NonSaturatingFET()
        plain = compile_surrogate(nfet)
        mirrored = compile_surrogate(PType(nfet))
        assert isinstance(mirrored, PType)
        assert mirrored.nfet is plain

    def test_ptype_mirror_tracks_direct_ptype(self):
        device = AlphaPowerFET()
        surrogate = compile_surrogate(device)
        rng = np.random.default_rng(9)
        vgs = -rng.uniform(0.0, 1.2, 100)
        vds = -rng.uniform(0.0, 1.2, 100)
        direct = PType(device).currents(vgs, vds)
        approx = PType(surrogate).currents(vgs, vds)
        scale = np.abs(direct).max()
        assert np.abs(approx - direct).max() <= 2e-3 * scale

    def test_scaled_shifted_wrapper_needs_no_recompilation(self):
        device = NonSaturatingFET()
        surrogate = compile_surrogate(device)
        wrapped = ScaledShiftedFET(surrogate, 1.2, 0.03)
        reference = ScaledShiftedFET(device, 1.2, 0.03)
        rng = np.random.default_rng(13)
        # The shift moves the wrapper's effective box: sample where the
        # shifted bias still lands on the tabulated surface.
        vgs = rng.uniform(surrogate.vgs_grid[0] + 0.03, surrogate.vgs_grid[-1], 200)
        vds = rng.uniform(0.0, surrogate.vds_grid[-1], 200)
        approx = wrapped.currents(vgs, vds)
        direct = reference.currents(vgs, vds)
        scale = np.abs(direct).max()
        rel = np.abs(approx - direct) / np.maximum(np.abs(direct), 1e-6 * scale)
        assert rel.max() <= 2e-4

    def test_batched_mc_on_surrogates_matches_scalar_perturbed_clones(self):
        surrogate = compile_surrogate(AlphaPowerFET())
        circuit = Circuit("inv")
        circuit.add_voltage_source("VDD", "vdd", "0", DC(1.0))
        circuit.add_voltage_source("VIN", "in", "0", DC(0.45))
        circuit.add_fet("MP", "out", "in", "vdd", PType(surrogate))
        circuit.add_fet("MN", "out", "in", "0", surrogate)
        engine = CircuitMonteCarlo(circuit)
        variation = FETVariation.sample(
            12, len(engine.fet_names), seed=42, drive_sigma=0.2, vth_sigma_v=0.02
        )
        result = engine.run(variation)
        assert result.converged.all()
        from repro.circuit.solver import solve_dc

        for i in range(variation.n_instances):
            scalar = solve_dc(perturbed_circuit(circuit, variation, i).build_system())
            # Both paths stop at the solver's residual tolerance; at a
            # mid-transition output (small gds) that allows a ~uV-scale
            # gap.  A composition bug would show up at mV scale.
            np.testing.assert_allclose(result.x[i], scalar, atol=1e-5)


class TestCache:
    def _key_of(self, model, spec=None):
        spec = spec or GridSpec()
        box = spec.box or model.operating_box()
        payload, key = surrogate_module._cache_key(
            model, spec, box, model.mirror_symmetric
        )
        return payload, key

    def test_disk_round_trip_is_bitwise_deterministic(self):
        first = compile_surrogate(NonSaturatingFET())
        surrogate_module.clear_surrogate_memory()
        second = compile_surrogate(NonSaturatingFET())
        assert first is not second
        assert np.array_equal(first.table, second.table)
        assert np.array_equal(first.vgs_grid, second.vgs_grid)
        assert first.h_ref == second.h_ref
        assert first.fit_error == second.fit_error

    def test_memory_cache_returns_the_same_instance(self):
        first = compile_surrogate(NonSaturatingFET())
        # Equal parameters hash to the same key even for a new instance.
        second = compile_surrogate(NonSaturatingFET())
        assert first is second

    def test_cache_file_created_and_reused(self):
        compile_surrogate(NonSaturatingFET())
        directory = surrogate_cache_dir()
        files = list(directory.glob("*.npz"))
        assert len(files) == 1
        mtime = files[0].stat().st_mtime_ns
        surrogate_module.clear_surrogate_memory()
        compile_surrogate(NonSaturatingFET())
        assert files[0].stat().st_mtime_ns == mtime  # loaded, not rewritten

    def test_corrupt_cache_file_is_recompiled_and_replaced(self):
        first = compile_surrogate(NonSaturatingFET())
        directory = surrogate_cache_dir()
        (path,) = directory.glob("*.npz")
        path.write_bytes(b"this is not an npz file")
        surrogate_module.clear_surrogate_memory()
        recovered = compile_surrogate(NonSaturatingFET())
        assert np.array_equal(recovered.table, first.table)
        surrogate_module.clear_surrogate_memory()
        reloaded = compile_surrogate(NonSaturatingFET())
        assert np.array_equal(reloaded.table, first.table)

    def test_stale_format_version_is_recompiled(self, monkeypatch):
        first = compile_surrogate(NonSaturatingFET())
        monkeypatch.setattr(surrogate_module, "_CACHE_VERSION", 999)
        surrogate_module.clear_surrogate_memory()
        # Old key is version-tagged, so a bumped version simply misses.
        recompiled = compile_surrogate(NonSaturatingFET())
        assert np.array_equal(recompiled.table, first.table)

    def test_key_mismatch_inside_file_is_rejected(self):
        compile_surrogate(NonSaturatingFET())
        directory = surrogate_cache_dir()
        (path,) = directory.glob("*.npz")
        payload, key = self._key_of(AlphaPowerFET())
        # Pretend the alpha-power table already exists by renaming the
        # nonsat file onto the alpha key: the stored payload disagrees,
        # so the loader must recompile instead of serving a wrong table.
        stale = directory / f"{key}.npz"
        path.rename(stale)
        surrogate = compile_surrogate(AlphaPowerFET())
        assert surrogate.vgs_grid.size >= 4
        assert surrogate_fidelity(surrogate, AlphaPowerFET(), rel_floor=0.05) < 0.05

    def test_env_off_disables_disk(self, monkeypatch):
        monkeypatch.setenv(surrogate_module.CACHE_ENV, "off")
        assert surrogate_cache_dir() is None
        compile_surrogate(NonSaturatingFET())

    def test_unfingerprintable_model_uses_identity_memoisation(self):
        class Opaque(FETModel):
            def current(self, vgs, vds):
                if vds < 0.0:
                    return -self.current(vgs - vds, -vds)
                return 1e-4 * max(vgs, 0.0) * np.tanh(vds / 0.3)

        model = Opaque()
        spec = GridSpec(initial_points=(5, 5), max_refinements=0)
        first = compile_surrogate(model, spec)
        assert compile_surrogate(model, spec) is first
        directory = surrogate_cache_dir()
        assert not list(directory.glob("*.npz"))

    def test_compiling_a_surrogate_is_a_no_op(self):
        surrogate = compile_surrogate(NonSaturatingFET())
        assert compile_surrogate(surrogate) is surrogate


def _hammer_compile(cache_dir):
    """Pool worker: compile the same device into the same disk cache.

    Module level so ProcessPoolExecutor can pickle it; clears the
    (possibly fork-inherited) memory cache first so every worker really
    goes through the disk-cache write path and races the others.
    """
    surrogate_module.clear_surrogate_memory()
    spec = GridSpec(initial_points=(8, 8), max_refinements=1)
    surrogate = compile_surrogate(AlphaPowerFET(), spec, cache_dir=cache_dir)
    return surrogate.table


class TestConcurrentCacheWriters:
    """The disk cache under concurrent writers (recovery satellite)."""

    def test_pool_hammer_one_file_no_litter_identical_tables(self):
        from concurrent.futures import ProcessPoolExecutor

        directory = surrogate_cache_dir()
        with ProcessPoolExecutor(max_workers=4) as pool:
            tables = list(pool.map(_hammer_compile, [str(directory)] * 8))
        for table in tables[1:]:
            assert np.array_equal(table, tables[0])
        # Exactly one published cache file, and no temp-file litter
        # regardless of how the writers interleaved.
        assert len(list(directory.glob("*.npz"))) == 1
        assert not list(directory.glob("*.tmp"))
        surrogate_module.clear_surrogate_memory()
        spec = GridSpec(initial_points=(8, 8), max_refinements=1)
        reloaded = compile_surrogate(AlphaPowerFET(), spec, cache_dir=directory)
        assert np.array_equal(reloaded.table, tables[0])

    def test_interrupted_write_leaves_no_litter(self, monkeypatch):
        spec = GridSpec(initial_points=(8, 8), max_refinements=1)
        surrogate = compile_surrogate(AlphaPowerFET(), spec)
        directory = surrogate_cache_dir()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(surrogate_module.np, "savez", boom)
        target = directory / "interrupted.npz"
        surrogate_module._store_cached(target, surrogate, "payload")
        assert not target.exists()
        assert not list(directory.glob("*.tmp"))


class TestAsymmetricDevices:
    def test_gated_diode_tabulates_both_polarities(self):
        from repro.devices.tfet import CNTTunnelFET

        adapter = CNTTunnelFET(Chirality(13, 0)).as_fet()
        spec = GridSpec(initial_points=(9, 9), max_refinements=1)
        surrogate = compile_surrogate(adapter, spec)
        assert not surrogate.mirror_symmetric
        assert surrogate.vds_grid[0] < 0.0 < surrogate.vds_grid[-1]
        # Reverse-bias BTBT sign survives: the mirror transform would
        # destroy the diode's forward/reverse asymmetry.
        assert surrogate.current(-1.8, -0.5) < 0.0
        assert surrogate.current(0.2, 0.4) > 0.0

"""Schottky-barrier contacts: injection limiting of the ballistic bound."""

import numpy as np
import pytest

from repro.devices.schottky import SchottkyBarrierCNTFET


class TestConstruction:
    def test_validation(self, reference_cntfet):
        with pytest.raises(ValueError):
            SchottkyBarrierCNTFET(reference_cntfet, barrier_ev=-0.1)
        with pytest.raises(ValueError):
            SchottkyBarrierCNTFET(reference_cntfet, tunneling_energy_ev=0.0)


class TestTransmission:
    def test_full_above_barrier(self, reference_cntfet):
        device = SchottkyBarrierCNTFET(reference_cntfet, barrier_ev=0.1)
        assert device.contact_transmission(0.2, band_edge_ev=0.0) == 1.0

    def test_exponential_tail_below(self, reference_cntfet):
        device = SchottkyBarrierCNTFET(
            reference_cntfet, barrier_ev=0.1, tunneling_energy_ev=0.05
        )
        t1 = device.contact_transmission(0.05, band_edge_ev=0.0)
        t2 = device.contact_transmission(0.0, band_edge_ev=0.0)
        assert t1 / t2 == pytest.approx(np.exp(1.0), rel=1e-6)

    def test_edge_reference_shifts_barrier(self, reference_cntfet):
        device = SchottkyBarrierCNTFET(reference_cntfet, barrier_ev=0.1)
        assert device.contact_transmission(0.2, band_edge_ev=0.15) < 1.0


class TestInjectionLimiting:
    def test_zero_barrier_reduces_to_intrinsic(self, reference_cntfet):
        ohmic = SchottkyBarrierCNTFET(reference_cntfet, barrier_ev=0.0)
        for vgs, vds in [(0.4, 0.3), (0.6, 0.5)]:
            assert ohmic.current(vgs, vds) == pytest.approx(
                reference_cntfet.current(vgs, vds), rel=0.02
            )

    def test_barrier_monotonically_suppresses(self, reference_cntfet):
        currents = [
            SchottkyBarrierCNTFET(reference_cntfet, barrier_ev=phi).current(0.6, 0.5)
            for phi in (0.0, 0.1, 0.2, 0.28)
        ]
        assert all(a > b for a, b in zip(currents, currents[1:]))

    def test_never_exceeds_intrinsic(self, reference_cntfet):
        device = SchottkyBarrierCNTFET(reference_cntfet, barrier_ev=0.15)
        for vgs in (0.2, 0.4, 0.6, 0.8):
            assert device.current(vgs, 0.5) <= reference_cntfet.current(vgs, 0.5) * 1.001

    def test_fraction_bounded(self, reference_cntfet):
        device = SchottkyBarrierCNTFET(reference_cntfet, barrier_ev=0.2)
        fraction = device.injection_limited_fraction(0.6, 0.5)
        assert 0.0 < fraction < 1.0

    def test_thicker_barrier_less_tunneling(self, reference_cntfet):
        thin = SchottkyBarrierCNTFET(
            reference_cntfet, barrier_ev=0.2, tunneling_energy_ev=0.1
        )
        thick = SchottkyBarrierCNTFET(
            reference_cntfet, barrier_ev=0.2, tunneling_energy_ev=0.03
        )
        assert thick.current(0.6, 0.5) < thin.current(0.6, 0.5)

    def test_explains_measured_franklin_gap(self, reference_cntfet):
        # A ~0.2 eV barrier brings the ballistic bound down to the few-uA
        # currents of the measured devices in Fig. 5 — the documented
        # model-vs-measured deviation.
        device = SchottkyBarrierCNTFET(reference_cntfet, barrier_ev=0.2)
        current = device.current(0.6, 0.5)
        assert 1e-6 < current < 10e-6

    def test_negative_vds_antisymmetric(self, reference_cntfet):
        device = SchottkyBarrierCNTFET(reference_cntfet, barrier_ev=0.1)
        assert device.current(0.5, -0.3) == pytest.approx(
            -device.current(0.8, 0.3), rel=1e-6
        )

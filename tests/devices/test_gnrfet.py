"""Ballistic GNR-FET and the CNT/GNR comparison of Fig. 1."""

import numpy as np
import pytest

from repro.analysis.iv import saturation_index
from repro.devices.gnrfet import GNRFET
from repro.physics.gnr import ArmchairGNR


class TestConstruction:
    def test_rejects_quasi_metallic_ribbon(self):
        with pytest.raises(ValueError):
            GNRFET(ArmchairGNR(17))  # 3j+2 family

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            GNRFET(ArmchairGNR(18), channel_length_nm=-5.0)

    def test_mfp_override(self):
        clean = GNRFET(ArmchairGNR(18), channel_length_nm=100.0)
        dirty = GNRFET(ArmchairGNR(18), channel_length_nm=100.0, mfp_override_nm=20.0)
        assert dirty.transmission < clean.transmission

    def test_mfp_override_validation(self):
        with pytest.raises(ValueError):
            GNRFET(ArmchairGNR(18), mfp_override_nm=0.0)

    def test_for_bandgap(self):
        device = GNRFET.for_bandgap(0.56)
        assert device.ribbon.bandgap_ev() == pytest.approx(0.56, abs=0.05)


class TestBehaviour:
    def test_saturating_output(self, reference_gnrfet):
        vds = np.linspace(0.0, 0.5, 26)
        curve = np.array([reference_gnrfet.current(0.5, float(v)) for v in vds])
        assert saturation_index(vds, curve) > 0.9

    def test_negative_vds_antisymmetry(self, reference_gnrfet):
        assert reference_gnrfet.current(0.4, -0.3) == pytest.approx(
            -reference_gnrfet.current(0.7, 0.3), rel=1e-9
        )

    def test_current_density_per_width(self, reference_gnrfet):
        density = reference_gnrfet.current_density_a_per_m(0.5, 0.5)
        assert density == pytest.approx(
            reference_gnrfet.current(0.5, 0.5) / (reference_gnrfet.ribbon.width_nm * 1e-9)
        )


class TestFig1Comparison:
    """The equal-gap CNT/GNR comparison that motivates the paper's Fig. 1."""

    def test_log_scale_overlap(self, reference_cntfet, reference_gnrfet):
        vgs = np.linspace(0.1, 0.6, 11)
        cnt = np.array([reference_cntfet.current(float(v), 0.5) for v in vgs])
        gnr = np.array([reference_gnrfet.current(float(v), 0.5) for v in vgs])
        deviation = np.abs(np.log10(cnt / gnr))
        assert np.max(deviation) < 0.6  # well under a decade apart

    def test_linear_scale_small_gap_from_degeneracy(
        self, reference_cntfet, reference_gnrfet
    ):
        # CNT carries roughly 2x the GNR current (4-fold vs 2-fold modes).
        ratio = reference_cntfet.current(0.5, 0.5) / reference_gnrfet.current(0.5, 0.5)
        assert 1.2 < ratio < 3.0

    def test_same_subthreshold_physics(self, reference_cntfet, reference_gnrfet):
        ss_cnt = reference_cntfet.subthreshold_swing_mv_per_decade()
        vgs = np.linspace(0.0, 0.25, 26)
        gnr = np.array([reference_gnrfet.current(float(v), 0.5) for v in vgs])
        slopes = np.diff(vgs) / np.diff(np.log10(gnr))
        ss_gnr = float(np.min(slopes)) * 1e3
        assert ss_gnr == pytest.approx(ss_cnt, rel=0.1)

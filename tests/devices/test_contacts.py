"""Contact resistance: series wrapper self-consistency, transfer-length model."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.iv import saturation_index
from repro.devices.contacts import ContactModel, SeriesResistanceFET
from repro.devices.empirical import AlphaPowerFET
from repro.physics.constants import CNT_QUANTUM_RESISTANCE_OHM


@pytest.fixture
def inner():
    return AlphaPowerFET()


class TestSeriesResistanceFET:
    def test_zero_resistance_is_identity(self, inner):
        wrapped = SeriesResistanceFET(inner, 0.0, 0.0)
        assert wrapped.current(0.8, 0.5) == pytest.approx(inner.current(0.8, 0.5))

    def test_validation(self, inner):
        with pytest.raises(ValueError):
            SeriesResistanceFET(inner, -1.0, 0.0)

    def test_current_always_reduced(self, inner):
        wrapped = SeriesResistanceFET(inner, 10e3, 10e3)
        for vgs, vds in [(0.5, 0.3), (0.8, 0.6), (1.0, 1.0)]:
            assert 0.0 < wrapped.current(vgs, vds) < inner.current(vgs, vds)

    def test_internal_bias_consistency(self, inner):
        r_s, r_d = 20e3, 30e3
        wrapped = SeriesResistanceFET(inner, r_s, r_d)
        vgs, vds = 0.9, 0.8
        current = wrapped.current(vgs, vds)
        internal = inner.current(vgs - current * r_s, vds - current * (r_s + r_d))
        assert internal == pytest.approx(current, rel=1e-9)

    def test_off_state_unaffected(self, inner):
        wrapped = SeriesResistanceFET(inner, 50e3, 50e3)
        assert wrapped.current(0.0, 0.5) == pytest.approx(
            inner.current(0.0, 0.5), rel=0.01
        )

    def test_negative_vds_swaps_roles(self, inner):
        asym = SeriesResistanceFET(inner, 10e3, 90e3)
        # Mirrored device must equal explicit role swap.
        mirrored = SeriesResistanceFET(inner, 90e3, 10e3)
        assert asym.current(0.5, -0.4) == pytest.approx(
            -mirrored.current(0.9, 0.4), rel=1e-9
        )

    def test_linearises_saturated_device(self, reference_cntfet):
        # The Fig. 4 effect: 2 x 50 kOhm turns saturation into a resistor.
        wrapped = SeriesResistanceFET(reference_cntfet, 50e3, 50e3)
        vds = np.linspace(0.0, 0.5, 21)
        ideal = np.array([reference_cntfet.current(0.7, float(v)) for v in vds])
        degraded = np.array([wrapped.current(0.7, float(v)) for v in vds])
        assert saturation_index(vds, ideal) > 0.9
        assert saturation_index(vds, degraded) < 0.3

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.0, 100e3))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_current_bounded_by_intrinsic(self, inner, vgs, vds, resistance):
        wrapped = SeriesResistanceFET(inner, resistance, resistance)
        assert wrapped.current(vgs, vds) <= inner.current(vgs, vds) + 1e-18


class TestContactModel:
    def test_long_contact_floor(self):
        model = ContactModel(transfer_length_nm=40.0, interface_resistance_ohm=2000.0)
        floor = model.resistance_ohm(10000.0)
        assert floor == pytest.approx(
            CNT_QUANTUM_RESISTANCE_OHM / 2.0 + 2000.0, rel=1e-3
        )

    def test_paper_11kohm_series_floor(self):
        # Ref. [16]: total device series resistance as low as ~11 kOhm.
        total = ContactModel().device_series_resistance_ohm(1000.0)
        assert 9e3 < total < 12e3

    def test_short_contacts_blow_up(self):
        model = ContactModel()
        assert model.resistance_ohm(5.0) > 3.0 * model.resistance_ohm(500.0)

    def test_monotone_decreasing_in_length(self):
        model = ContactModel()
        lengths = [5.0, 10.0, 20.0, 40.0, 80.0, 160.0]
        resistances = [model.resistance_ohm(l) for l in lengths]
        assert all(a > b for a, b in zip(resistances, resistances[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ContactModel(transfer_length_nm=0.0)
        with pytest.raises(ValueError):
            ContactModel().resistance_ohm(0.0)

    def test_never_below_quantum_limit(self):
        model = ContactModel(interface_resistance_ohm=0.0)
        assert (
            model.device_series_resistance_ohm(1e6)
            >= CNT_QUANTUM_RESISTANCE_OHM * 0.999
        )

"""Butterfly static noise margin on synthetic and device VTCs."""

import numpy as np
import pytest

from repro.analysis.snm import butterfly_snm
from repro.circuit.cells import inverter_vtc
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET


def steep_vtc(vdd=1.0, steepness=60.0, n=801):
    v_in = np.linspace(0.0, vdd, n)
    v_out = vdd / (1.0 + np.exp(steepness * (v_in - vdd / 2.0)))
    return v_in, v_out


class TestIdealisedCurves:
    def test_near_ideal_inverter_snm_approaches_half_vdd(self):
        v_in, v_out = steep_vtc(steepness=400.0)
        result = butterfly_snm(v_in, v_out)
        assert result.is_bistable
        assert result.snm == pytest.approx(0.5, abs=0.03)

    def test_symmetric_curve_symmetric_lobes(self):
        v_in, v_out = steep_vtc(steepness=40.0)
        result = butterfly_snm(v_in, v_out)
        assert result.snm_low == pytest.approx(result.snm_high, abs=0.01)

    def test_steeper_is_better(self):
        soft = butterfly_snm(*steep_vtc(steepness=10.0))
        hard = butterfly_snm(*steep_vtc(steepness=100.0))
        assert hard.snm > soft.snm

    def test_sub_unity_gain_curve_not_bistable(self):
        # A straight line with |slope| < 1 crosses its mirror only once.
        v_in = np.linspace(0.0, 1.0, 101)
        v_out = 0.9 - 0.8 * v_in
        result = butterfly_snm(v_in, v_out)
        assert not result.is_bistable
        assert result.snm == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            butterfly_snm([0.0, 1.0], [1.0, 0.0])
        with pytest.raises(ValueError):
            butterfly_snm([0.0, 0.5, 0.4, 0.8, 1.0], [1, 1, 1, 0, 0])


class TestDeviceVTCs:
    def test_saturating_inverter_latch_holds_state(self):
        v_in, v_out, _ = inverter_vtc(AlphaPowerFET(), vdd=1.0, n_points=161)
        result = butterfly_snm(v_in, v_out)
        assert result.is_bistable
        assert result.snm > 0.25

    def test_non_saturating_inverter_cannot_store(self):
        # The Fig. 2 argument taken to its storage conclusion: without
        # regeneration there is no bistability, hence no SRAM.
        device = NonSaturatingFET(vt=0.2, smoothing_v=0.3)
        v_in, v_out, _ = inverter_vtc(device, vdd=1.0, n_points=161)
        result = butterfly_snm(v_in, v_out)
        assert not result.is_bistable
        assert result.snm == 0.0


class TestSNMCornerSweep:
    """Corner sweeps of the butterfly analysis through the sweep engine."""

    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.analysis.snm import snm_corner_sweep
        from repro.devices.empirical import AlphaPowerFET

        corners = {
            "slow": AlphaPowerFET(k_a_per_v_alpha=2.0e-4),
            "typical": AlphaPowerFET(),
            "fast": AlphaPowerFET(k_a_per_v_alpha=8.0e-4),
        }
        return snm_corner_sweep(corners, vdd=1.0, n_points=101)

    def test_all_corners_bistable(self, sweep):
        assert sweep.all_bistable()
        assert np.all(sweep.snm_v > 0.05)

    def test_labels_follow_input_order(self, sweep):
        assert sweep.labels == ("slow", "typical", "fast")

    def test_worst_corner_is_minimum(self, sweep):
        label, result = sweep.worst_corner()
        assert result.snm == sweep.snm_v.min()
        assert label in sweep.labels

    def test_non_saturating_corner_kills_snm(self):
        from repro.analysis.snm import snm_corner_sweep
        from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET

        # Same smoothed non-saturating device the butterfly tests use for
        # the sub-unity-gain (non-bistable) case.
        sweep = snm_corner_sweep(
            {"sat": AlphaPowerFET(), "linear": NonSaturatingFET(vt=0.2, smoothing_v=0.3)},
            vdd=1.0,
            n_points=161,
        )
        assert not sweep.all_bistable()
        label, result = sweep.worst_corner()
        assert label == "linear" and result.snm == 0.0

    def test_explicit_pair_and_validation(self):
        from repro.analysis.snm import snm_corner_sweep
        from repro.devices.base import PType
        from repro.devices.empirical import AlphaPowerFET

        nfet = AlphaPowerFET()
        paired = snm_corner_sweep(
            {"pair": (nfet, PType(nfet))}, vdd=1.0, n_points=101
        )
        assert paired.results[0].is_bistable
        with pytest.raises(ValueError):
            snm_corner_sweep({})

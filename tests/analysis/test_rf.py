"""RF metrics: intrinsic gain, f_T, f_max and the no-saturation collapse."""

import math

import numpy as np
import pytest

from repro.analysis.rf import (
    intrinsic_gain,
    rf_metrics,
    rf_metrics_batch,
    small_signal,
)
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET


@pytest.fixture
def saturating():
    return AlphaPowerFET()


@pytest.fixture
def linear():
    return NonSaturatingFET(g_on_s=4e-4, vt=0.2, smoothing_v=0.3)


class TestIntrinsicGain:
    def test_saturating_device_high_gain(self, saturating):
        assert intrinsic_gain(saturating, 0.8, 0.8) > 5.0

    def test_linear_device_gain_near_or_below_unity(self, linear):
        # gds = G(vgs) while gm = G'(vgs) * vds: gain ~ vds G'/G <~ 1.
        assert intrinsic_gain(linear, 0.8, 0.8) < 2.0

    def test_gain_improves_deeper_in_saturation(self, saturating):
        assert intrinsic_gain(saturating, 0.8, 0.9) > intrinsic_gain(
            saturating, 0.8, 0.3
        )


class TestRFMetrics:
    def test_ft_formula(self, saturating):
        metrics = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=100e-18)
        assert metrics.ft_hz == pytest.approx(
            metrics.gm_s / (2 * math.pi * 100e-18), rel=1e-9
        )

    def test_smaller_gate_cap_faster(self, saturating):
        slow = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=200e-18)
        fast = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=50e-18)
        assert fast.ft_hz > slow.ft_hz

    def test_fmax_penalised_by_gate_resistance(self, saturating):
        low_rg = rf_metrics(
            saturating, 0.8, 0.8, c_gate_total_f=100e-18, gate_resistance_ohm=10.0
        )
        high_rg = rf_metrics(
            saturating, 0.8, 0.8, c_gate_total_f=100e-18, gate_resistance_ohm=1000.0
        )
        assert low_rg.fmax_hz > high_rg.fmax_hz

    def test_no_saturation_hurts_fmax_more_than_ft(self, saturating, linear):
        # The paper's Section II chain: both devices have comparable gm/C
        # (f_T), but the linear device's gds wrecks f_max.
        sat = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=60e-18)
        lin = rf_metrics(linear, 0.8, 0.8, c_gate_total_f=60e-18)
        ft_ratio = sat.ft_hz / lin.ft_hz
        fmax_ratio = sat.fmax_hz / lin.fmax_hz
        assert fmax_ratio > ft_ratio
        assert sat.intrinsic_gain > 5.0 > lin.intrinsic_gain

    def test_fmax_over_ft_property(self, saturating):
        metrics = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=60e-18)
        assert metrics.fmax_over_ft == pytest.approx(metrics.fmax_hz / metrics.ft_hz)

    def test_validation(self, saturating):
        with pytest.raises(ValueError):
            rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=0.0)
        with pytest.raises(ValueError):
            rf_metrics(saturating, 0.8, 0.8, 100e-18, gate_resistance_ohm=0.0)
        with pytest.raises(ValueError):
            rf_metrics(saturating, 0.8, 0.8, 100e-18, c_gate_drain_f=200e-18)

    def test_off_device_rejected(self, saturating):
        class NoGm(AlphaPowerFET):
            def current(self, vgs, vds):
                return 1e-6  # flat: zero transconductance

        with pytest.raises(ValueError):
            rf_metrics(NoGm(), 0.8, 0.8, 100e-18)


class TestAnalyticRouting:
    """The RF path must consume linearize_point, not its own FD stepping."""

    def test_no_finite_difference_probing(self, saturating):
        class AnalyticOnly(AlphaPowerFET):
            """Raises on any current() probe; serves derivatives directly."""

            def current(self, vgs, vds):
                raise AssertionError("RF path fell back to FD current probes")

            def linearize_point(self, vgs, vds, delta_v=None):
                return 1e-4, 5e-4, 3e-5

        metrics = rf_metrics(AnalyticOnly(), 0.8, 0.8, c_gate_total_f=60e-18)
        assert metrics.gm_s == pytest.approx(5e-4)
        assert metrics.gds_s == pytest.approx(3e-5)
        assert intrinsic_gain(AnalyticOnly(), 0.8, 0.8) == pytest.approx(5e-4 / 3e-5)

    def test_small_signal_matches_protocol(self, saturating):
        gm, gds = small_signal(saturating, 0.8, 0.8)
        _, gm_ref, gds_ref = saturating.linearize_point(0.8, 0.8)
        assert gm == pytest.approx(gm_ref, rel=1e-15)
        assert gds == pytest.approx(gds_ref, rel=1e-15)


class TestRFMetricsBatch:
    def test_nominal_corners_match_scalar(self, saturating):
        scalar = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=60e-18)
        batch = rf_metrics_batch(
            saturating,
            0.8,
            0.8,
            60e-18,
            drive_scale=np.ones(5),
            vth_shift_v=np.zeros(5),
        )
        assert batch.n_instances == 5
        # linearize (vectorised currents) and linearize_point (scalar
        # current) may round differently at the last few ulps.
        np.testing.assert_allclose(batch.gm_s, scalar.gm_s, rtol=1e-9)
        np.testing.assert_allclose(batch.gds_s, scalar.gds_s, rtol=1e-9)
        np.testing.assert_allclose(batch.ft_hz, scalar.ft_hz, rtol=1e-9)
        np.testing.assert_allclose(batch.fmax_hz, scalar.fmax_hz, rtol=1e-9)
        np.testing.assert_allclose(
            batch.intrinsic_gain, scalar.intrinsic_gain, rtol=1e-9
        )

    def test_drive_scale_doubles_gm_keeps_gain(self, saturating):
        batch = rf_metrics_batch(
            saturating,
            0.8,
            0.8,
            60e-18,
            drive_scale=np.array([1.0, 2.0]),
            vth_shift_v=np.zeros(2),
        )
        # scale multiplies both gm and gds: f_T doubles, A_v unchanged.
        assert batch.gm_s[1] == pytest.approx(2.0 * batch.gm_s[0], rel=1e-12)
        assert batch.ft_hz[1] == pytest.approx(2.0 * batch.ft_hz[0], rel=1e-12)
        assert batch.intrinsic_gain[1] == pytest.approx(
            batch.intrinsic_gain[0], rel=1e-12
        )

    def test_vth_shift_follows_overdrive(self, saturating):
        shifted = rf_metrics_batch(
            saturating,
            0.8,
            0.8,
            60e-18,
            drive_scale=np.ones(2),
            vth_shift_v=np.array([0.0, 0.05]),
        )
        reference = rf_metrics(saturating, 0.75, 0.8, c_gate_total_f=60e-18)
        assert shifted.gm_s[1] == pytest.approx(reference.gm_s, rel=1e-9)

    def test_shape_mismatch_rejected(self, saturating):
        with pytest.raises(ValueError):
            rf_metrics_batch(
                saturating,
                0.8,
                0.8,
                60e-18,
                drive_scale=np.ones(3),
                vth_shift_v=np.zeros(2),
            )

    def test_parasitics_validated(self, saturating):
        with pytest.raises(ValueError):
            rf_metrics_batch(
                saturating,
                0.8,
                0.8,
                0.0,
                drive_scale=np.ones(2),
                vth_shift_v=np.zeros(2),
            )

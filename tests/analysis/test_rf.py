"""RF metrics: intrinsic gain, f_T, f_max and the no-saturation collapse."""

import math

import pytest

from repro.analysis.rf import intrinsic_gain, rf_metrics
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET


@pytest.fixture
def saturating():
    return AlphaPowerFET()


@pytest.fixture
def linear():
    return NonSaturatingFET(g_on_s=4e-4, vt=0.2, smoothing_v=0.3)


class TestIntrinsicGain:
    def test_saturating_device_high_gain(self, saturating):
        assert intrinsic_gain(saturating, 0.8, 0.8) > 5.0

    def test_linear_device_gain_near_or_below_unity(self, linear):
        # gds = G(vgs) while gm = G'(vgs) * vds: gain ~ vds G'/G <~ 1.
        assert intrinsic_gain(linear, 0.8, 0.8) < 2.0

    def test_gain_improves_deeper_in_saturation(self, saturating):
        assert intrinsic_gain(saturating, 0.8, 0.9) > intrinsic_gain(
            saturating, 0.8, 0.3
        )


class TestRFMetrics:
    def test_ft_formula(self, saturating):
        metrics = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=100e-18)
        assert metrics.ft_hz == pytest.approx(
            metrics.gm_s / (2 * math.pi * 100e-18), rel=1e-9
        )

    def test_smaller_gate_cap_faster(self, saturating):
        slow = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=200e-18)
        fast = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=50e-18)
        assert fast.ft_hz > slow.ft_hz

    def test_fmax_penalised_by_gate_resistance(self, saturating):
        low_rg = rf_metrics(
            saturating, 0.8, 0.8, c_gate_total_f=100e-18, gate_resistance_ohm=10.0
        )
        high_rg = rf_metrics(
            saturating, 0.8, 0.8, c_gate_total_f=100e-18, gate_resistance_ohm=1000.0
        )
        assert low_rg.fmax_hz > high_rg.fmax_hz

    def test_no_saturation_hurts_fmax_more_than_ft(self, saturating, linear):
        # The paper's Section II chain: both devices have comparable gm/C
        # (f_T), but the linear device's gds wrecks f_max.
        sat = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=60e-18)
        lin = rf_metrics(linear, 0.8, 0.8, c_gate_total_f=60e-18)
        ft_ratio = sat.ft_hz / lin.ft_hz
        fmax_ratio = sat.fmax_hz / lin.fmax_hz
        assert fmax_ratio > ft_ratio
        assert sat.intrinsic_gain > 5.0 > lin.intrinsic_gain

    def test_fmax_over_ft_property(self, saturating):
        metrics = rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=60e-18)
        assert metrics.fmax_over_ft == pytest.approx(metrics.fmax_hz / metrics.ft_hz)

    def test_validation(self, saturating):
        with pytest.raises(ValueError):
            rf_metrics(saturating, 0.8, 0.8, c_gate_total_f=0.0)
        with pytest.raises(ValueError):
            rf_metrics(saturating, 0.8, 0.8, 100e-18, gate_resistance_ohm=0.0)
        with pytest.raises(ValueError):
            rf_metrics(saturating, 0.8, 0.8, 100e-18, c_gate_drain_f=200e-18)

    def test_off_device_rejected(self, saturating):
        class NoGm(AlphaPowerFET):
            def current(self, vgs, vds):
                return 1e-6  # flat: zero transconductance

        with pytest.raises(ValueError):
            rf_metrics(NoGm(), 0.8, 0.8, 100e-18)

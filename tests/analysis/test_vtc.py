"""VTC metrics on synthetic transfer curves with known geometry."""

import numpy as np
import pytest

from repro.analysis.vtc import analyze_vtc


def steep_vtc(vdd=1.0, vm=0.5, steepness=40.0, n=401):
    v_in = np.linspace(0.0, vdd, n)
    v_out = vdd / (1.0 + np.exp(steepness * (v_in - vm)))
    return v_in, v_out


class TestRegenerativeVTC:
    def test_rails(self):
        v_in, v_out = steep_vtc()
        m = analyze_vtc(v_in, v_out)
        assert m.v_out_high == pytest.approx(1.0, abs=1e-6)
        assert m.v_out_low == pytest.approx(0.0, abs=1e-6)

    def test_gain_exceeds_unity(self):
        v_in, v_out = steep_vtc(steepness=40.0)
        m = analyze_vtc(v_in, v_out)
        assert m.has_regeneration
        assert m.max_abs_gain == pytest.approx(10.0, rel=0.05)  # vdd*k/4

    def test_unity_gain_points_bracket_vm(self):
        v_in, v_out = steep_vtc(vm=0.5)
        m = analyze_vtc(v_in, v_out)
        assert m.v_il is not None and m.v_ih is not None
        assert m.v_il < 0.5 < m.v_ih

    def test_noise_margins_symmetric(self):
        v_in, v_out = steep_vtc(vm=0.5)
        m = analyze_vtc(v_in, v_out)
        assert m.nm_low == pytest.approx(m.nm_high, abs=0.01)
        assert m.nm_low > 0.3

    def test_switching_threshold(self):
        v_in, v_out = steep_vtc(vm=0.5)
        m = analyze_vtc(v_in, v_out)
        assert m.switching_threshold_v == pytest.approx(0.5, abs=0.01)

    def test_steeper_curve_better_margins(self):
        m1 = analyze_vtc(*steep_vtc(steepness=10.0))
        m2 = analyze_vtc(*steep_vtc(steepness=80.0))
        assert m2.nm_low > m1.nm_low


class TestNonRegenerativeVTC:
    def test_shallow_curve_has_zero_margin(self):
        # |gain| max = 0.8 < 1: the paper's non-saturating inverter case.
        v_in = np.linspace(0.0, 1.0, 101)
        v_out = 0.9 - 0.8 * v_in
        m = analyze_vtc(v_in, v_out)
        assert not m.has_regeneration
        assert m.nm_low == 0.0 and m.nm_high == 0.0
        assert m.v_il is None and m.v_ih is None
        assert m.max_abs_gain == pytest.approx(0.8, rel=1e-6)


class TestExactCrossing:
    def test_sample_exactly_on_crossing(self):
        # Grid point sits exactly at v_out = v_in: np.sign(diff) = 0 there.
        v_in = np.linspace(0.0, 1.0, 5)
        v_out = 1.0 - v_in  # crossing exactly at the 0.5 sample
        m = analyze_vtc(v_in, v_out)
        assert m.switching_threshold_v == pytest.approx(0.5)
        assert np.isfinite(m.switching_threshold_v)

    def test_consecutive_exact_samples(self):
        v_in = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        v_out = np.array([1.0, 0.25, 0.5, 0.25, 0.0])  # touches twice
        m = analyze_vtc(v_in, v_out)
        assert m.switching_threshold_v == pytest.approx(0.25)
        assert np.isfinite(m.switching_threshold_v)

    def test_identity_curve_is_finite(self):
        # v_out = v_in everywhere: diff is identically zero.
        v_in = np.linspace(0.0, 1.0, 7)
        m = analyze_vtc(v_in, v_in.copy())
        assert m.switching_threshold_v == pytest.approx(0.0)
        assert np.isfinite(m.switching_threshold_v)

    def test_interpolated_crossing_unchanged(self):
        # Crossing between samples: the interpolation path still rules.
        v_in = np.linspace(0.0, 1.0, 6)  # 0.5 is not a grid point
        v_out = 1.0 - v_in
        m = analyze_vtc(v_in, v_out)
        assert m.switching_threshold_v == pytest.approx(0.5, abs=1e-12)


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            analyze_vtc([0, 0.5, 1.0], [1.0, 0.5])

    def test_non_monotone_input(self):
        with pytest.raises(ValueError):
            analyze_vtc([0.0, 0.5, 0.4, 1.0, 1.1], [1, 1, 1, 0, 0])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            analyze_vtc([0.0, 1.0], [1.0, 0.0])

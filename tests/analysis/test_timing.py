"""Timing/energy extraction from transients and first-order estimators."""

import numpy as np
import pytest

from repro.analysis.timing import (
    cv_over_i_delay_s,
    intrinsic_energy_delay,
    propagation_delays,
    supply_energy_j,
)
from repro.circuit.cells import build_inverter
from repro.circuit.transient import TransientResult, transient
from repro.circuit.waveforms import Pulse
from repro.devices.empirical import AlphaPowerFET


def synthetic_result():
    """Hand-built waveform pair: input rises at 1 ns, output falls at 1.2 ns."""
    t = np.linspace(0.0, 4e-9, 401)
    v_in = np.where(t > 1e-9, 1.0, 0.0) * np.where(t < 3e-9, 1.0, 0.0)
    v_out = 1.0 - np.where(t > 1.2e-9, 1.0, 0.0) * np.where(t < 3.3e-9, 1.0, 0.0)
    i_vdd = np.full_like(t, -1e-6)
    return TransientResult(
        time_s=t,
        voltages={"in": v_in, "out": v_out},
        source_currents={"VDD": i_vdd},
    )


class TestPropagationDelays:
    def test_synthetic_delays(self):
        delays = propagation_delays(synthetic_result(), "in", "out", vdd=1.0)
        assert delays.tp_hl_s == pytest.approx(0.2e-9, abs=2e-11)
        assert delays.tp_lh_s == pytest.approx(0.3e-9, abs=2e-11)
        assert delays.average_s == pytest.approx(0.25e-9, abs=2e-11)

    def test_missing_transition_raises(self):
        t = np.linspace(0, 1e-9, 11)
        flat = TransientResult(
            time_s=t,
            voltages={"in": np.zeros_like(t), "out": np.ones_like(t)},
            source_currents={},
        )
        with pytest.raises(ValueError):
            propagation_delays(flat, "in", "out", vdd=1.0)

    def test_real_inverter_delay_scale(self):
        fet = AlphaPowerFET()
        stimulus = Pulse(
            v1=0.0, v2=1.0, delay_s=0.1e-9, rise_s=10e-12, fall_s=10e-12,
            width_s=1.5e-9, period_s=3e-9,
        )
        cell = build_inverter(
            fet, vdd=1.0, load_capacitance_f=10e-15, input_waveform=stimulus
        )
        result = transient(cell.circuit, 3e-9, 3e-12)
        delays = propagation_delays(result, "in", "out", 1.0)
        # CV/I scale: 10 fF * 1 V / ~0.2 mA ~ 50 ps; transient within 5x.
        estimate = cv_over_i_delay_s(fet, 10e-15, 1.0)
        assert delays.average_s < 5.0 * estimate
        assert delays.average_s > 0.1 * estimate


class TestSupplyEnergy:
    def test_constant_current_energy(self):
        result = synthetic_result()
        # 1 uA for 4 ns at 1 V -> 4 fJ.
        energy = supply_energy_j(result, "VDD", vdd=1.0)
        assert energy == pytest.approx(4e-15, rel=1e-6)

    def test_window_selection(self):
        result = synthetic_result()
        half = supply_energy_j(result, "VDD", 1.0, t_start_s=0.0, t_stop_s=2e-9)
        assert half == pytest.approx(2e-15, rel=1e-6)

    def test_empty_window_raises(self):
        with pytest.raises(ValueError):
            supply_energy_j(synthetic_result(), "VDD", 1.0, 1e-9, 1e-9)


class TestEstimators:
    def test_cv_over_i(self):
        fet = AlphaPowerFET()
        delay = cv_over_i_delay_s(fet, 10e-15, 1.0)
        assert delay == pytest.approx(10e-15 * 1.0 / fet.current(1.0, 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            cv_over_i_delay_s(AlphaPowerFET(), 0.0, 1.0)

    def test_off_device_rejected(self):
        class DeadFET(AlphaPowerFET):
            def current(self, vgs, vds):
                return 0.0

        with pytest.raises(ValueError):
            cv_over_i_delay_s(DeadFET(), 1e-15, 1.0)

    def test_nearly_off_device_is_just_slow(self):
        # A real subthreshold device never carries exactly zero current;
        # the estimator returns a (huge) finite delay.
        slow = AlphaPowerFET(vt=5.0)
        assert cv_over_i_delay_s(slow, 1e-15, 1.0) > 1.0

    def test_energy_delay_pair(self):
        fet = AlphaPowerFET()
        energy, delay = intrinsic_energy_delay(fet, 10e-15, 1.0)
        assert energy == pytest.approx(10e-15)
        assert delay > 0.0


class TestDelayCornerSweep:
    """Corner sweeps of the CV/I estimator through the sweep engine."""

    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.analysis.timing import delay_corner_sweep
        from repro.devices.empirical import AlphaPowerFET

        corners = {
            "slow": AlphaPowerFET(k_a_per_v_alpha=2.0e-4),
            "typical": AlphaPowerFET(),
            "fast": AlphaPowerFET(k_a_per_v_alpha=8.0e-4),
        }
        return delay_corner_sweep(corners, load_f=10e-15, vdd=1.0)

    def test_weaker_drive_is_slower(self, sweep):
        slow, typical, fast = sweep.delays_s
        assert slow > typical > fast

    def test_energy_is_corner_independent_for_fixed_load(self, sweep):
        assert np.allclose(sweep.energies_j, sweep.energies_j[0])

    def test_worst_corner_and_spread(self, sweep):
        label, delay = sweep.worst_corner()
        assert label == "slow"
        assert delay == sweep.delays_s.max()
        assert sweep.spread() == pytest.approx(4.0, rel=0.3)

    def test_validation(self):
        from repro.analysis.timing import delay_corner_sweep

        with pytest.raises(ValueError):
            delay_corner_sweep({}, load_f=1e-15, vdd=1.0)

"""I-V metric extraction on synthetic curves with known answers."""

import numpy as np
import pytest

from repro.analysis.iv import (
    dibl_mv_per_v,
    ion_at_fixed_ioff,
    ion_ioff_ratio,
    saturation_index,
    subthreshold_swing_mv_per_decade,
    threshold_voltage,
)


def exponential_transfer(ss_mv=60.0, i0=1e-9, vgs=None):
    vgs = np.linspace(0.0, 0.5, 101) if vgs is None else vgs
    return vgs, i0 * 10.0 ** (vgs / (ss_mv * 1e-3))


class TestSubthresholdSwing:
    def test_recovers_known_slope(self):
        vgs, current = exponential_transfer(ss_mv=70.0)
        assert subthreshold_swing_mv_per_decade(vgs, current) == pytest.approx(
            70.0, rel=1e-6
        )

    def test_picks_steepest_segment(self):
        vgs = np.linspace(0.0, 0.5, 101)
        current = np.where(
            vgs < 0.25,
            1e-9 * 10 ** (vgs / 0.080),
            1e-9 * 10 ** (0.25 / 0.080) * 10 ** ((vgs - 0.25) / 0.040),
        )
        assert subthreshold_swing_mv_per_decade(vgs, current) == pytest.approx(
            40.0, rel=1e-6
        )

    def test_needs_points(self):
        with pytest.raises(ValueError):
            subthreshold_swing_mv_per_decade([0.0, 0.1], [1e-9, 1e-8])

    def test_flat_curve_rejected(self):
        vgs = np.linspace(0, 0.5, 20)
        with pytest.raises(ValueError):
            subthreshold_swing_mv_per_decade(vgs, np.full(20, 1e-9))


class TestThresholdVoltage:
    def test_log_interpolation(self):
        vgs, current = exponential_transfer(ss_mv=60.0, i0=1e-9)
        # I = 1e-7 requires two decades: vgs = 0.12.
        assert threshold_voltage(vgs, current, 1e-7) == pytest.approx(0.12, abs=1e-4)

    def test_criterion_out_of_range(self):
        vgs, current = exponential_transfer()
        with pytest.raises(ValueError):
            threshold_voltage(vgs, current, 1e3)


class TestDIBL:
    def test_recovers_shift(self):
        vgs = np.linspace(0.0, 0.5, 201)
        low = 1e-9 * 10 ** (vgs / 0.060)
        # 50 mV threshold shift at +0.45 V drain: DIBL = 111 mV/V.
        high = 1e-9 * 10 ** ((vgs + 0.050) / 0.060)
        dibl = dibl_mv_per_v(vgs, low, high, vds_low=0.05, vds_high=0.5)
        assert dibl == pytest.approx(50.0 / 0.45, rel=1e-3)

    def test_order_validation(self):
        vgs, current = exponential_transfer()
        with pytest.raises(ValueError):
            dibl_mv_per_v(vgs, current, current, 0.5, 0.05)


class TestIonIoff:
    def test_ratio_on_exponential(self):
        vgs, current = exponential_transfer(ss_mv=100.0)
        # 0.5 V window at 100 mV/dec = 5 decades.
        assert ion_ioff_ratio(vgs, current, 0.0, 0.5) == pytest.approx(1e5, rel=1e-3)

    def test_fixed_ioff_metric(self):
        vgs, current = exponential_transfer(ss_mv=60.0, i0=1e-9)
        ion = ion_at_fixed_ioff(vgs, current, supply_window_v=0.12, ioff_target_a=1e-8)
        # Two decades above 1e-8.
        assert ion == pytest.approx(1e-6, rel=1e-3)

    def test_fixed_ioff_out_of_sweep(self):
        vgs, current = exponential_transfer()
        with pytest.raises(ValueError):
            ion_at_fixed_ioff(vgs, current, supply_window_v=0.5, ioff_target_a=1e-20)

    def test_window_beyond_sweep_end(self):
        vgs, current = exponential_transfer()
        with pytest.raises(ValueError):
            ion_at_fixed_ioff(vgs, current, supply_window_v=5.0, ioff_target_a=1e-8)

    def test_window_validation(self):
        vgs, current = exponential_transfer()
        with pytest.raises(ValueError):
            ion_at_fixed_ioff(vgs, current, supply_window_v=0.0, ioff_target_a=1e-8)


class TestSaturationIndex:
    def test_resistor_scores_zero(self):
        vds = np.linspace(0.0, 1.0, 50)
        assert saturation_index(vds, 1e-4 * vds) == pytest.approx(0.0, abs=1e-9)

    def test_perfect_source_scores_one(self):
        vds = np.linspace(0.0, 1.0, 50)
        current = np.minimum(vds / 0.1, 1.0) * 1e-5  # hard knee at 0.1 V
        assert saturation_index(vds, current) == pytest.approx(1.0, abs=1e-9)

    def test_intermediate_device(self):
        vds = np.linspace(0.0, 1.0, 100)
        current = 1e-5 * np.tanh(vds / 0.2) * (1.0 + 0.3 * vds)
        index = saturation_index(vds, current)
        assert 0.5 < index < 1.0

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            saturation_index([0, 0.5, 1.0], [0, 1, 2])

    def test_bad_knee_fraction(self):
        vds = np.linspace(0, 1, 50)
        with pytest.raises(ValueError):
            saturation_index(vds, vds, knee_fraction=0.95)

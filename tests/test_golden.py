"""Golden-file regression net over the CLI experiment outputs.

Each snapshot under ``tests/golden/`` stores the exact ``(label,
value...)`` rows the CLI experiment registry produces — the same rows
``python -m repro <experiment>`` prints.  The suite holds the current
code to those committed numbers with tight tolerances, so large
refactors (like the batched sweep engine) stay bitwise-honest about the
artefacts they claim not to change.

After an *intentional* output change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

and commit the refreshed JSON alongside the change that explains it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS

GOLDEN_DIR = Path(__file__).parent / "golden"

# The experiments snapshotted: the two circuit-level artefacts the
# solver/assembly refactors must not move, the ablation sweeps, the
# seeded Section V Monte-Carlo pipeline, the transient-MC timing rows
# (corner sweep + device-spread delay/energy distribution), the
# spline-surrogate accuracy report, and the variation-aware RF
# comparison (nominal table + seeded corner/batched-AC distributions).
GOLDEN_EXPERIMENTS = (
    "fig2",
    "cascade",
    "ablations",
    "integration",
    "timing",
    "surrogate",
    "rf",
)

# Tight by design: these runs are deterministic (fixed seeds, fixed
# grids); the relative slack only absorbs BLAS/libm rounding drift.
RELATIVE_TOLERANCE = 1e-6
ABSOLUTE_TOLERANCE = 1e-12

# Rows whose label carries this marker are machine-dependent timings
# (the surrogate speedup report): their labels are pinned, their values
# are only required to be finite and positive.
from repro.experiments.surrogate_report import WALL_CLOCK_SUFFIX as WALL_CLOCK_MARKER


def _rows_as_json(rows) -> list[list]:
    return [[row[0], *[float(v) for v in row[1:]]] for row in rows]


@pytest.mark.parametrize("name", GOLDEN_EXPERIMENTS)
def test_cli_output_matches_golden(name, request):
    rows = _rows_as_json(EXPERIMENTS[name][1]())
    path = GOLDEN_DIR / f"{name}.json"

    if request.config.getoption("--update-golden", default=False):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(rows, indent=1) + "\n")
        pytest.skip(f"rewrote {path.name}")

    assert path.exists(), (
        f"missing golden file {path}; create it with "
        "pytest tests/test_golden.py --update-golden"
    )
    golden = json.loads(path.read_text())
    assert [row[0] for row in rows] == [row[0] for row in golden], (
        f"{name}: row labels changed — update the golden file if intentional"
    )
    for current, expected in zip(rows, golden):
        if WALL_CLOCK_MARKER in current[0]:
            assert all(v > 0.0 and v == v for v in current[1:]), (
                f"{name}: wall-clock row {current[0]!r} is not a positive time"
            )
            continue
        assert current[1:] == pytest.approx(
            expected[1:], rel=RELATIVE_TOLERANCE, abs=ABSOLUTE_TOLERANCE
        ), f"{name}: row {current[0]!r} drifted from golden"


def test_golden_files_are_committed():
    """Every snapshotted experiment has its golden file in the tree."""
    missing = [
        name
        for name in GOLDEN_EXPERIMENTS
        if not (GOLDEN_DIR / f"{name}.json").exists()
    ]
    assert not missing, f"golden files missing for: {missing}"

"""Cross-cutting invariants every device model must satisfy.

These property-based tests run the same physical sanity checks over the
whole device zoo: passivity at zero drain bias, current sign following
the drain bias, monotonicity in gate drive, and the p-type mirror
symmetry.  A new device model added to the package gets this safety net
by being listed in the fixtures below.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit.netlist import Circuit
from repro.circuit.solver import solve_dc
from repro.circuit.waveforms import DC
from repro.devices.base import PType
from repro.devices.contacts import SeriesResistanceFET
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET, TabulatedFET
from repro.devices.fabric import CNTFabricFET
from repro.devices.reference import inas_hemt_reference, trigate_intel_22nm
from repro.experiments.cascade import build_inverter_chain


def _device_zoo():
    alpha = AlphaPowerFET()
    return {
        "alpha-power": alpha,
        "non-saturating": NonSaturatingFET(),
        "trigate": trigate_intel_22nm(),
        "inas-hemt": inas_hemt_reference(),
        "series-r": SeriesResistanceFET(alpha, 10e3, 10e3),
        "tabulated": TabulatedFET.from_model(
            alpha, np.linspace(-0.2, 1.2, 25), np.linspace(0.0, 1.2, 21)
        ),
        "fabric": CNTFabricFET([alpha] * 3, n_metallic=0),
    }


ZOO = _device_zoo()
bias = st.tuples(st.floats(0.0, 1.2), st.floats(0.0, 1.2))


@pytest.mark.parametrize("name", sorted(ZOO))
class TestUniversalInvariants:
    @given(vgs=st.floats(-0.5, 1.2))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_passive_at_zero_vds(self, name, vgs):
        assert ZOO[name].current(vgs, 0.0) == pytest.approx(0.0, abs=1e-15)

    @given(b=bias)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_forward_current_nonnegative(self, name, b):
        vgs, vds = b
        assert ZOO[name].current(vgs, vds) >= -1e-18

    @given(b=bias)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_monotone_nondecreasing_in_gate(self, name, b):
        vgs, vds = b
        device = ZOO[name]
        assert device.current(vgs + 0.05, vds) >= device.current(vgs, vds) - 1e-15

    @given(b=bias)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_monotone_nondecreasing_in_drain(self, name, b):
        vgs, vds = b
        device = ZOO[name]
        assert device.current(vgs, vds + 0.05) >= device.current(vgs, vds) - 1e-15

    @given(b=bias)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_ptype_mirror(self, name, b):
        vgs, vds = b
        device = ZOO[name]
        mirrored = PType(device)
        assert mirrored.current(-vgs, -vds) == pytest.approx(
            -device.current(vgs, vds), rel=1e-9, abs=1e-18
        )


class TestBallisticDeviceInvariants:
    """The physical devices are expensive; spot-check the same laws."""

    @pytest.mark.parametrize("vgs,vds", [(0.0, 0.3), (0.4, 0.1), (0.6, 0.5)])
    def test_cntfet_nonnegative_and_passive(self, reference_cntfet, vgs, vds):
        assert reference_cntfet.current(vgs, vds) >= 0.0
        assert reference_cntfet.current(vgs, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_cntfet_gate_monotone(self, reference_cntfet):
        sweep = [reference_cntfet.current(v, 0.5) for v in (0.1, 0.3, 0.5, 0.7)]
        assert all(a < b for a, b in zip(sweep, sweep[1:]))

    def test_gnrfet_drain_monotone(self, reference_gnrfet):
        sweep = [reference_gnrfet.current(0.5, v) for v in (0.05, 0.2, 0.4, 0.6)]
        assert all(a < b for a, b in zip(sweep, sweep[1:]))

    def test_tfet_reverse_current_grows_with_gate_drive(self, reference_tfet):
        magnitudes = [
            abs(reference_tfet.current(vg, -0.5)) for vg in (-0.5, -1.0, -1.5, -2.0)
        ]
        assert all(a <= b + 1e-15 for a, b in zip(magnitudes, magnitudes[1:]))


# -- netlist/stamp invariants (property-based) --------------------------------


@st.composite
def resistor_networks(draw):
    """A random connected R network driven by one source, grounded via a chain."""
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    nodes = [f"n{i}" for i in range(n_nodes)]
    circuit = Circuit("random-linear")
    circuit.add_voltage_source(
        "VS", "n0", "0", DC(draw(st.floats(min_value=-2.0, max_value=2.0)))
    )
    previous = "0"
    for i, node in enumerate(nodes):
        r = draw(st.floats(min_value=1e2, max_value=1e6))
        circuit.add_resistor(f"Rchain{i}", node, previous, r)
        previous = node
    extra_edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_nodes - 1),
                st.integers(min_value=0, max_value=n_nodes - 1),
                st.floats(min_value=1e2, max_value=1e6),
            ),
            max_size=4,
        )
    )
    for k, (i, j, r) in enumerate(extra_edges):
        if i != j:
            circuit.add_resistor(f"Rx{k}", nodes[i], nodes[j], r)
    if draw(st.booleans()):
        sink = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        level = draw(st.floats(min_value=-1e-4, max_value=1e-4))
        circuit.add_current_source("IS", nodes[sink], "0", DC(level))
    return circuit


class TestStampInvariants:
    """Properties every compiled netlist must satisfy, on random circuits."""

    @given(circuit=resistor_networks())
    @settings(max_examples=25, deadline=None)
    def test_kcl_residual_vanishes_at_solution(self, circuit):
        system = circuit.build_system()
        x = solve_dc(system)
        residual, _ = system.evaluate(x)
        assert float(np.max(np.abs(residual))) < 1e-8

    @given(circuit=resistor_networks(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_linear_only_jacobian_is_symmetric(self, circuit, seed):
        """R/V/I stamps are reciprocal: J = J^T at any iterate."""
        system = circuit.build_system()
        x = np.random.default_rng(seed).normal(size=system.size)
        _, jacobian = system.evaluate(x)
        jacobian = np.asarray(jacobian)
        assert np.array_equal(jacobian, jacobian.T)

    @pytest.mark.parametrize("n_stages", (1, 3))
    def test_kcl_residual_vanishes_for_fet_chains(self, n_stages):
        chain = build_inverter_chain(
            AlphaPowerFET(), n_stages=n_stages, input_waveform=DC(0.0)
        )
        system = chain.build_system()
        x = solve_dc(system)
        residual, _ = system.evaluate(x)
        assert float(np.max(np.abs(residual))) < 1e-8

"""Cross-cutting invariants every device model must satisfy.

These property-based tests run the same physical sanity checks over the
whole device zoo: passivity at zero drain bias, current sign following
the drain bias, monotonicity in gate drive, and the p-type mirror
symmetry.  A new device model added to the package gets this safety net
by being listed in the fixtures below.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.devices.base import PType
from repro.devices.contacts import SeriesResistanceFET
from repro.devices.empirical import AlphaPowerFET, NonSaturatingFET, TabulatedFET
from repro.devices.fabric import CNTFabricFET
from repro.devices.reference import inas_hemt_reference, trigate_intel_22nm


def _device_zoo():
    alpha = AlphaPowerFET()
    return {
        "alpha-power": alpha,
        "non-saturating": NonSaturatingFET(),
        "trigate": trigate_intel_22nm(),
        "inas-hemt": inas_hemt_reference(),
        "series-r": SeriesResistanceFET(alpha, 10e3, 10e3),
        "tabulated": TabulatedFET.from_model(
            alpha, np.linspace(-0.2, 1.2, 25), np.linspace(0.0, 1.2, 21)
        ),
        "fabric": CNTFabricFET([alpha] * 3, n_metallic=0),
    }


ZOO = _device_zoo()
bias = st.tuples(st.floats(0.0, 1.2), st.floats(0.0, 1.2))


@pytest.mark.parametrize("name", sorted(ZOO))
class TestUniversalInvariants:
    @given(vgs=st.floats(-0.5, 1.2))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_passive_at_zero_vds(self, name, vgs):
        assert ZOO[name].current(vgs, 0.0) == pytest.approx(0.0, abs=1e-15)

    @given(b=bias)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_forward_current_nonnegative(self, name, b):
        vgs, vds = b
        assert ZOO[name].current(vgs, vds) >= -1e-18

    @given(b=bias)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_monotone_nondecreasing_in_gate(self, name, b):
        vgs, vds = b
        device = ZOO[name]
        assert device.current(vgs + 0.05, vds) >= device.current(vgs, vds) - 1e-15

    @given(b=bias)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_monotone_nondecreasing_in_drain(self, name, b):
        vgs, vds = b
        device = ZOO[name]
        assert device.current(vgs, vds + 0.05) >= device.current(vgs, vds) - 1e-15

    @given(b=bias)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_ptype_mirror(self, name, b):
        vgs, vds = b
        device = ZOO[name]
        mirrored = PType(device)
        assert mirrored.current(-vgs, -vds) == pytest.approx(
            -device.current(vgs, vds), rel=1e-9, abs=1e-18
        )


class TestBallisticDeviceInvariants:
    """The physical devices are expensive; spot-check the same laws."""

    @pytest.mark.parametrize("vgs,vds", [(0.0, 0.3), (0.4, 0.1), (0.6, 0.5)])
    def test_cntfet_nonnegative_and_passive(self, reference_cntfet, vgs, vds):
        assert reference_cntfet.current(vgs, vds) >= 0.0
        assert reference_cntfet.current(vgs, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_cntfet_gate_monotone(self, reference_cntfet):
        sweep = [reference_cntfet.current(v, 0.5) for v in (0.1, 0.3, 0.5, 0.7)]
        assert all(a < b for a, b in zip(sweep, sweep[1:]))

    def test_gnrfet_drain_monotone(self, reference_gnrfet):
        sweep = [reference_gnrfet.current(0.5, v) for v in (0.05, 0.2, 0.4, 0.6)]
        assert all(a < b for a, b in zip(sweep, sweep[1:]))

    def test_tfet_reverse_current_grows_with_gate_drive(self, reference_tfet):
        magnitudes = [
            abs(reference_tfet.current(vg, -0.5)) for vg in (-0.5, -1.0, -1.5, -2.0)
        ]
        assert all(a <= b + 1e-15 for a, b in zip(magnitudes, magnitudes[1:]))

"""CLI surface: exit codes, JSON shape, and ``repro lint`` routing."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_repo_exits_zero(capsys):
    assert lint_main([]) == 0
    assert "0 finding(s)" in capsys.readouterr().err


def test_dirty_path_exits_one(capsys):
    assert lint_main(["--no-registry", str(FIXTURES / "rng_bad.py")]) == 1


def test_json_output_is_machine_readable(capsys):
    code = lint_main(["--json", "--no-registry", str(FIXTURES / "rng_bad.py")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert payload["files_scanned"] == 1
    assert {f["rule"] for f in payload["findings"]} == {
        "RNG001",
        "RNG002",
        "RNG003",
        "RNG004",
    }
    for finding in payload["findings"]:
        assert set(finding) >= {"file", "line", "rule", "message"}


def test_list_rules_covers_every_family(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "RNG001",
        "FPR001",
        "PRT001",
        "IOW001",
        "PKN001",
        "MRG001",
        "LNT001",
    ):
        assert rule in out


def test_repro_cli_routes_lint_subcommand(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    assert "RNG001" in capsys.readouterr().out

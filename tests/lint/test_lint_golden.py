"""Golden JSON snapshot of the full fixture-directory lint run.

Pins the machine-readable diagnostic format (``--json`` consumers parse
it in CI) *and* the exact rule/line placement over every fixture.
Regenerate after an intentional rule change with::

    PYTHONPATH=src python -m pytest tests/lint/test_lint_golden.py --update-golden
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent.parent / "golden" / "lint.json"


def _relativized_snapshot() -> dict:
    sys.path.insert(0, str(FIXTURES))
    try:
        result = run_lint(
            [FIXTURES], registry=True, registry_modules=("registry_bad",)
        )
    finally:
        sys.path.remove(str(FIXTURES))
    payload = result.to_dict()
    for section in ("findings", "suppressed"):
        for entry in payload[section]:
            entry["file"] = Path(entry["file"]).name
    return payload


def test_fixture_run_matches_golden(request):
    snapshot = _relativized_snapshot()

    if request.config.getoption("--update-golden", default=False):
        GOLDEN.parent.mkdir(exist_ok=True)
        GOLDEN.write_text(json.dumps(snapshot, indent=1) + "\n")
        pytest.skip(f"rewrote {GOLDEN.name}")

    assert GOLDEN.exists(), (
        f"missing golden file {GOLDEN}; create it with "
        "pytest tests/lint/test_lint_golden.py --update-golden"
    )
    assert snapshot == json.loads(GOLDEN.read_text())

"""Marker-protocol unit tests on synthetic single-file sources."""

from __future__ import annotations

from pathlib import Path

from repro.lint import run_lint


def lint_source(tmp_path: Path, source: str):
    target = tmp_path / "sample.py"
    target.write_text(source, encoding="utf-8")
    return run_lint([target], registry=False)


def test_inline_marker_suppresses_same_line(tmp_path):
    result = lint_source(
        tmp_path,
        "import numpy as np\n"
        "rng = np.random.default_rng()"
        "  # repro-lint: ok[RNG001] -- synthetic test source\n",
    )
    assert result.ok
    assert [f.rule for f, _ in result.suppressed] == ["RNG001"]


def test_own_line_marker_targets_next_source_line(tmp_path):
    result = lint_source(
        tmp_path,
        "import numpy as np\n"
        "# repro-lint: ok[RNG001] -- synthetic test source\n"
        "rng = np.random.default_rng()\n",
    )
    assert result.ok


def test_marker_without_reason_is_lnt001_and_suppresses_nothing(tmp_path):
    result = lint_source(
        tmp_path,
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro-lint: ok[RNG001]\n",
    )
    assert sorted(f.rule for f in result.findings) == ["LNT001", "RNG001"]


def test_unknown_rule_id_is_lnt001(tmp_path):
    result = lint_source(
        tmp_path, "x = 1  # repro-lint: ok[NOPE999] -- not a rule\n"
    )
    assert [f.rule for f in result.findings] == ["LNT001"]


def test_unused_marker_is_lnt002(tmp_path):
    result = lint_source(
        tmp_path, "x = 1  # repro-lint: ok[RNG001] -- nothing random here\n"
    )
    assert [f.rule for f in result.findings] == ["LNT002"]


def test_registry_only_marker_exempt_without_registry(tmp_path):
    """A PRT001 marker cannot be proven used when introspection is off."""
    result = lint_source(
        tmp_path,
        "def currents(self, a, b):  # repro-lint: ok[PRT001] -- adapter\n"
        "    return a\n",
    )
    assert result.ok


def test_marker_examples_in_docstrings_are_ignored(tmp_path):
    result = lint_source(
        tmp_path,
        '"""Docs showing `# repro-lint: ok[RNG001]` must not parse."""\n'
        "x = 1\n",
    )
    assert result.ok
    assert not result.suppressed

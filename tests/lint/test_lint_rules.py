"""The linter test-bed: every rule family fires on its seeded fixture.

Each fixture under ``fixtures/`` tags its deliberate violations with
``# seeded: RULE`` comments; the tests assert that lint findings and
seeded tags agree *exactly* — each rule fires where planted and nowhere
else — and that the real ``src/repro`` tree stays clean.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"
_SEEDED = re.compile(r"#\s*seeded:\s*([A-Z]+\d+)")

AST_FIXTURES = [
    "rng_bad.py",
    "fingerprint_bad.py",
    "protocol_bad.py",
    "io_bad.py",
    "pool_bad.py",
]


def seeded_expectations(name: str) -> set[tuple[str, int]]:
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return {
        (match.group(1), lineno)
        for lineno, line in enumerate(source.splitlines(), start=1)
        if (match := _SEEDED.search(line))
    }


def found(result) -> set[tuple[str, int]]:
    return {(finding.rule, finding.line) for finding in result.findings}


@pytest.mark.parametrize("name", AST_FIXTURES)
def test_ast_fixture_fires_exactly_where_seeded(name):
    expected = seeded_expectations(name)
    assert expected, f"{name} has no seeded violations"
    result = run_lint([FIXTURES / name], registry=False)
    assert found(result) == expected


def test_registry_fixture_fires_exactly_where_seeded():
    sys.path.insert(0, str(FIXTURES))
    try:
        result = run_lint(
            [FIXTURES / "registry_bad.py"],
            registry=True,
            registry_modules=("registry_bad",),
        )
    finally:
        sys.path.remove(str(FIXTURES))
    expected = seeded_expectations("registry_bad.py")
    assert expected
    assert found(result) == expected


def test_marker_fixture_mixes_suppression_and_marker_rules():
    result = run_lint([FIXTURES / "markers_bad.py"], registry=False)
    assert sorted(f.rule for f in result.findings) == [
        "LNT001",  # marker without a reason
        "LNT002",  # marker that suppresses nothing
        "RNG001",  # the violation the malformed marker failed to cover
    ]
    # The well-formed marker suppressed its finding and recorded why.
    assert len(result.suppressed) == 1
    finding, marker = result.suppressed[0]
    assert finding.rule == "RNG001"
    assert marker.reason


def test_every_rule_family_is_exercised():
    exercised: set[str] = set()
    for name in AST_FIXTURES + ["registry_bad.py"]:
        exercised |= {rule for rule, _ in seeded_expectations(name)}
    exercised |= {"LNT001", "LNT002"}  # seeded by markers_bad.py
    assert {rule[:3] for rule in exercised} >= {
        "RNG",
        "FPR",
        "PRT",
        "IOW",
        "PKN",
        "MRG",
        "LNT",
    }


def test_src_repro_is_clean():
    """The acceptance gate: zero findings outside reasoned markers."""
    result = run_lint()
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert all(marker.reason for _, marker in result.suppressed)

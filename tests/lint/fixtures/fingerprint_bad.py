"""Seeded fingerprint-completeness violations (FPR001/FPR002)."""


class LeakyToken:
    """Stores ``gain`` but fingerprints only the class name."""

    def __init__(self, gain: float):
        self.gain = gain  # seeded: FPR001

    def surrogate_token(self):
        return ("LeakyToken",)


class WellTokened:
    """Clean reference: every stored parameter reaches the token."""

    def __init__(self, scale: float):
        self.scale = scale

    def surrogate_token(self):
        return ("WellTokened", self.scale)


class ExtendedState(WellTokened):  # seeded: FPR002
    """Adds ``offset`` but inherits the base fingerprint."""

    def __init__(self, scale: float, offset: float):
        super().__init__(scale)
        self.offset = offset

"""Seeded atomic-write violations (IOW001): torn-file write patterns."""

from pathlib import Path


def torn_open_write(path: Path, payload: str) -> None:
    with open(path, "w") as handle:  # seeded: IOW001
        handle.write(payload)


def torn_write_text(path: Path, payload: str) -> None:
    path.write_text(payload)  # seeded: IOW001
